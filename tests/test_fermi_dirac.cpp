#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "cosmology/fermi_dirac.hpp"

namespace {

using namespace v6d::cosmo;

TEST(FermiDirac, ThermalVelocityScale) {
  // m = 0.4/3 eV per species: u_th ~ 3.77 code units (= 377 km/s).
  const double u_th = neutrino_thermal_velocity(0.4 / 3.0);
  EXPECT_NEAR(u_th, 3.77, 0.05);
  // Inverse proportionality to the mass.
  EXPECT_NEAR(neutrino_thermal_velocity(0.2 / 3.0), 2.0 * u_th, 0.05 * u_th);
}

TEST(FermiDirac, DensityNormalizedToUnity) {
  const double u_th = 2.0;
  // Integral g(|u|) d^3u over a generous radial range.
  const int n = 4000;
  const double umax = 40.0 * u_th;
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = (i + 0.5) * umax / n;
    acc += 4.0 * M_PI * u * u * fd_density(u, u_th) * (umax / n);
  }
  EXPECT_NEAR(acc, 1.0, 1e-6);
}

TEST(FermiDirac, MomentsMatchClosedFormRatios) {
  const double u_th = 1.3;
  // <u>   = u_th * I3/I2, I3 = 7 pi^4/120, I2 = 3 zeta(3)/2.
  const double i2 = 1.8030853547393952;
  const double i3 = 7.0 * std::pow(M_PI, 4) / 120.0;
  EXPECT_NEAR(fd_mean_speed(u_th), u_th * i3 / i2, 1e-4);
  // <u^2> = u_th^2 * I4/I2, I4 = 45 zeta(5) / 2.
  const double zeta5 = 1.0369277551433699;
  const double i4 = 45.0 * zeta5 / 2.0;
  EXPECT_NEAR(fd_rms_speed(u_th), u_th * std::sqrt(i4 / i2), 1e-4);
}

TEST(FermiDiracSampler, SampleMomentsMatchQuadrature) {
  const double u_th = 3.0;
  FermiDiracSampler sampler(u_th);
  v6d::Xoshiro256 rng(2024);
  const int n = 200000;
  double mean = 0.0, mean_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = sampler.sample_speed(rng);
    mean += u;
    mean_sq += u * u;
  }
  mean /= n;
  mean_sq /= n;
  EXPECT_NEAR(mean, fd_mean_speed(u_th), 0.01 * fd_mean_speed(u_th));
  EXPECT_NEAR(std::sqrt(mean_sq), fd_rms_speed(u_th),
              0.01 * fd_rms_speed(u_th));
}

TEST(FermiDiracSampler, VectorSamplingIsIsotropic) {
  FermiDiracSampler sampler(1.0);
  v6d::Xoshiro256 rng(5);
  const int n = 100000;
  double sx = 0.0, sy = 0.0, sz = 0.0, sxx = 0.0, syy = 0.0, szz = 0.0;
  for (int i = 0; i < n; ++i) {
    double ux, uy, uz;
    sampler.sample_velocity(rng, ux, uy, uz);
    sx += ux;
    sy += uy;
    sz += uz;
    sxx += ux * ux;
    syy += uy * uy;
    szz += uz * uz;
  }
  const double rms2 = (sxx + syy + szz) / n;
  EXPECT_NEAR(sx / n, 0.0, 0.02 * std::sqrt(rms2));
  EXPECT_NEAR(sy / n, 0.0, 0.02 * std::sqrt(rms2));
  EXPECT_NEAR(sz / n, 0.0, 0.02 * std::sqrt(rms2));
  // Equal variance in every direction.
  EXPECT_NEAR(sxx / n, rms2 / 3.0, 0.03 * rms2);
  EXPECT_NEAR(syy / n, rms2 / 3.0, 0.03 * rms2);
  EXPECT_NEAR(szz / n, rms2 / 3.0, 0.03 * rms2);
}

TEST(FermiDirac, DistributionHasLongTail) {
  // The defining property the paper exploits (Fig. 5): an FD distribution
  // has substantial mass several thermal speeds out.
  const double u_th = 1.0;
  const int n = 4000;
  const double umax = 40.0;
  double tail = 0.0, total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = (i + 0.5) * umax / n;
    const double w = 4.0 * M_PI * u * u * fd_density(u, u_th) * (umax / n);
    total += w;
    if (u > 3.0 * u_th) tail += w;
  }
  EXPECT_GT(tail / total, 0.3);  // > 30% of neutrinos beyond 3 u_th
}

}  // namespace
