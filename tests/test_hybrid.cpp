#include <gtest/gtest.h>

#include <cmath>

#include "cosmology/neutrino_ic.hpp"
#include "cosmology/zeldovich.hpp"
#include "hybrid/hybrid_solver.hpp"

namespace {

using namespace v6d;

struct HybridSetup {
  double box = 100.0;
  int nx = 6;
  int nu = 8;
  double a0 = 1.0 / 11.0;
  cosmo::Params params = cosmo::Params::planck2015(0.4);

  hybrid::HybridSolver make(bool with_nu = true) {
    cosmo::PowerSpectrum ps(params);
    cosmo::Background bg(params);

    cosmo::ZeldovichOptions zopt;
    zopt.particles_per_side = 12;
    zopt.a_init = a0;
    zopt.seed = 9;
    auto ics = cosmo::zeldovich_ics(ps, box, zopt);

    vlasov::PhaseSpace f;
    if (with_nu) {
      const double u_th =
          cosmo::neutrino_thermal_velocity(params.m_nu_total_ev / 3.0);
      cosmo::NeutrinoIcOptions nopt;
      nopt.a_init = a0;
      nopt.seed = 9;
      auto fields = cosmo::neutrino_linear_fields(ps, box, nx, nopt);
      vlasov::PhaseSpaceDims dims;
      dims.nx = dims.ny = dims.nz = nx;
      dims.nux = dims.nuy = dims.nuz = nu;
      vlasov::PhaseSpaceGeometry geom;
      geom.dx = geom.dy = geom.dz = box / nx;
      geom.umax = nopt.umax_over_uth * u_th;
      geom.dux = geom.duy = geom.duz = 2.0 * geom.umax / nu;
      f = vlasov::PhaseSpace(dims, geom);
      cosmo::initialize_neutrino_phase_space(f, params, u_th, fields.delta,
                                             &fields.bulk_x, &fields.bulk_y,
                                             &fields.bulk_z);
    }
    hybrid::HybridOptions opt;
    opt.pm_grid = nx;
    opt.treepm.theta = 0.6;
    opt.treepm.eps_cells = 0.2;
    return hybrid::HybridSolver(std::move(f), std::move(ics.particles), box,
                                bg, opt);
  }
};

TEST(HybridSolver, TotalMassConserved) {
  HybridSetup setup;
  auto solver = setup.make();
  const double mass0 = solver.total_mass();
  double a = setup.a0;
  for (int s = 0; s < 3; ++s) {
    const double a1 = solver.suggest_next_a(a, 0.02);
    solver.step(a, a1);
    a = a1;
  }
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-3 * mass0);
  EXPECT_GE(solver.neutrinos().min_interior(), 0.0f);
}

TEST(HybridSolver, CflControlKeepsShiftsBounded) {
  HybridSetup setup;
  auto solver = setup.make();
  cosmo::Background bg(setup.params);
  const double a1 = solver.suggest_next_a(setup.a0, 0.5);
  const double shift = vlasov::max_position_shift(
      solver.neutrinos(), bg.drift_factor(setup.a0, a1));
  EXPECT_LE(shift, 0.9 + 1e-6);
  EXPECT_GT(a1, setup.a0);
}

TEST(HybridSolver, NeutrinoDensityTracksCdmOnLargeScales) {
  HybridSetup setup;
  auto solver = setup.make();
  double a = setup.a0;
  for (int s = 0; s < 4; ++s) {
    const double a1 = solver.suggest_next_a(a, 0.03);
    solver.step(a, a1);
    a = a1;
  }
  // Fig. 4 physics: the neutrino field correlates positively with CDM but
  // with much lower contrast.
  const auto& rho_nu = solver.nu_density();
  const auto& rho_cdm = solver.cdm_density();
  double mean_nu = 0.0, mean_cdm = 0.0;
  const int n = setup.nx;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        mean_nu += rho_nu.at(i, j, k);
        mean_cdm += rho_cdm.at(i, j, k);
      }
  mean_nu /= n * n * n;
  mean_cdm /= n * n * n;
  double cov = 0.0, var_nu = 0.0, var_cdm = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        const double dn = rho_nu.at(i, j, k) / mean_nu - 1.0;
        const double dc = rho_cdm.at(i, j, k) / mean_cdm - 1.0;
        cov += dn * dc;
        var_nu += dn * dn;
        var_cdm += dc * dc;
      }
  const double corr = cov / std::sqrt(var_nu * var_cdm);
  EXPECT_GT(corr, 0.3);  // traces CDM
  // Much smoother than CDM: contrast ratio well below 1.
  EXPECT_LT(std::sqrt(var_nu / var_cdm), 0.7);
}

TEST(HybridSolver, CdmOnlyModeRuns) {
  HybridSetup setup;
  auto solver = setup.make(/*with_nu=*/false);
  const double mass0 = solver.total_mass();
  solver.step(setup.a0, setup.a0 + 0.01);
  EXPECT_NEAR(solver.total_mass(), mass0, 1e-12 * mass0);
}

TEST(HybridSolver, TimersAccumulatePerPart) {
  HybridSetup setup;
  auto solver = setup.make();
  const double a1 = solver.suggest_next_a(setup.a0, 0.01);
  solver.step(setup.a0, a1);
  EXPECT_GT(solver.timers().total("vlasov"), 0.0);
  EXPECT_GT(solver.timers().total("pm"), 0.0);
  EXPECT_GT(solver.timers().total("tree"), 0.0);
}

}  // namespace
