#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "diagnostics/field_compare.hpp"
#include "diagnostics/noise.hpp"
#include "diagnostics/projections.hpp"
#include "diagnostics/spectra.hpp"
#include "diagnostics/vdf_probe.hpp"

namespace {

using namespace v6d;
using namespace v6d::diag;

TEST(Spectra, SingleModePowerInRightBin) {
  const int n = 32;
  const double box = 64.0;
  mesh::Grid3D<double> rho(n, n, n);
  const int m = 4;
  const double amp = 0.2;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        rho.at(i, j, k) = 1.0 + amp * std::cos(2.0 * M_PI * m * i / n);
  const auto bins = measure_power(rho, box);
  // P = V |delta_k|^2 with delta_k = amp/2 at +-m: per-mode power
  // V amp^2/4; bin m-1 holds both conjugate modes averaged.
  const double kf = 2.0 * M_PI / box;
  const auto& bin = bins[static_cast<std::size_t>(m - 1)];
  EXPECT_NEAR(bin.k, kf * m, 0.3 * kf);
  const double expected = box * box * box * amp * amp / 4.0;
  // Two modes out of bin.modes carry the power.
  EXPECT_NEAR(bin.power * static_cast<double>(bin.modes),
              2.0 * expected, 0.05 * expected);
}

TEST(Spectra, PoissonSampleShowsShotNoise) {
  // Random (Poisson) particles deposited NGP: P(k) ~ V/N at all k.
  const int n = 32;
  const double box = 100.0;
  const std::size_t np = 40000;
  mesh::Grid3D<double> rho(n, n, n);
  Xoshiro256 rng(6);
  const double h = box / n;
  for (std::size_t i = 0; i < np; ++i) {
    const int ci = static_cast<int>(rng.next_double() * n);
    const int cj = static_cast<int>(rng.next_double() * n);
    const int ck = static_cast<int>(rng.next_double() * n);
    rho.at(ci, cj, ck) += 1.0 / (h * h * h);
  }
  const auto bins = measure_power(rho, box);
  const double shot = shot_noise_level(box, static_cast<double>(np));
  const double measured = high_k_power(bins, 0.3);
  EXPECT_NEAR(measured, shot, 0.3 * shot);
  EXPECT_NEAR(shot_noise_excess(bins, box, static_cast<double>(np)), 1.0,
              0.35);
}

TEST(Spectra, CrossCorrelationOfIdenticalFieldsIsUnity) {
  const int n = 16;
  mesh::Grid3D<double> a(n, n, n);
  Xoshiro256 rng(17);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) a.at(i, j, k) = 1.0 + 0.3 * rng.next_normal();
  std::vector<SpectrumBin> bins;
  const auto r = cross_correlation(a, a, 10.0, &bins);
  for (std::size_t b = 0; b < r.size(); ++b)
    if (bins[b].modes > 0) {
      EXPECT_NEAR(r[b], 1.0, 1e-10);
    }
}

TEST(Spectra, CrossCorrelationOfIndependentFieldsIsSmall) {
  const int n = 16;
  mesh::Grid3D<double> a(n, n, n), b(n, n, n);
  Xoshiro256 r1(1), r2(2);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        a.at(i, j, k) = 1.0 + 0.3 * r1.next_normal();
        b.at(i, j, k) = 1.0 + 0.3 * r2.next_normal();
      }
  std::vector<SpectrumBin> bins;
  const auto r = cross_correlation(a, b, 10.0, &bins);
  // Mid-range bins have many modes: correlation should be < ~0.3.
  for (std::size_t q = 3; q < r.size() - 1; ++q)
    if (bins[q].modes > 50) {
      EXPECT_LT(std::fabs(r[q]), 0.35);
    }
}

TEST(Projections, ProjectionAveragesAlongZ) {
  const int n = 4;
  mesh::Grid3D<double> f(n, n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) f.at(i, j, k) = i + 10.0 * k;
  const auto map = project_z(f);
  // mean over k of (i + 10k) = i + 10*1.5.
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) EXPECT_NEAR(map.at(i, j), i + 15.0, 1e-12);
}

TEST(Projections, LogContrastDistinguishesSmoothFromClustered) {
  const int n = 16;
  mesh::Grid3D<double> smooth(n, n, n), clustered(n, n, n);
  smooth.fill(1.0);
  clustered.fill(0.1);
  clustered.at(3, 3, 3) = 200.0;
  clustered.at(9, 12, 4) = 150.0;
  const double c_smooth = project_z(smooth).log_contrast_rms();
  const double c_clustered = project_z(clustered).log_contrast_rms();
  EXPECT_LT(c_smooth, 1e-12);
  EXPECT_GT(c_clustered, 0.1);
}

TEST(FieldCompare, MetricsBehave) {
  const int n = 8;
  mesh::Grid3D<double> a(n, n, n), b(n, n, n);
  Xoshiro256 rng(5);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        a.at(i, j, k) = rng.next_normal();
        b.at(i, j, k) = a.at(i, j, k) + 0.01 * rng.next_normal();
      }
  const auto d = compare_fields(a, b);
  EXPECT_GT(d.correlation, 0.99);
  EXPECT_LT(d.rel_l2, 0.05);
  EXPECT_GE(d.linf, d.l2);
  EXPECT_GE(d.l2, d.l1 * 0.5);
  const auto self = compare_fields(a, a);
  EXPECT_EQ(self.linf, 0.0);
  EXPECT_NEAR(self.correlation, 1.0, 1e-12);
}

TEST(Noise, EquivalentResolutionMatchesPaperEq10) {
  // Paper: N = 13824^3 neutrino particles in L; S/N = 100 -> L/640.
  const double n_particles = std::pow(13824.0, 3);
  const double dl = equivalent_resolution(1.0, n_particles, 100.0);
  EXPECT_NEAR(dl, 1.0 / 640.0, 0.02 / 640.0);
  // S/N = 50 -> ~ L/1018.
  const double dl50 = equivalent_resolution(1.0, n_particles, 50.0);
  EXPECT_NEAR(dl50, 1.0 / 1018.0, 0.03 / 1018.0);
}

TEST(VdfProbe, SliceIntegratesOverUz) {
  vlasov::PhaseSpaceDims dims;
  dims.nx = dims.ny = dims.nz = 2;
  dims.nux = dims.nuy = dims.nuz = 4;
  vlasov::PhaseSpaceGeometry geom;
  geom.umax = 2.0;
  geom.dux = geom.duy = geom.duz = 1.0;
  vlasov::PhaseSpace f(dims, geom);
  for (int c = 0; c < 4; ++c) f.at(1, 1, 1, 2, 3, c) = 1.0f;
  const auto slice = probe_vdf(f, 1, 1, 1);
  EXPECT_NEAR(slice.at(2, 3), 4.0 * geom.duz, 1e-6);
  EXPECT_NEAR(slice.at(0, 0), 0.0, 1e-12);
}

TEST(VdfProbe, ParticleBinningFindsCellMembers) {
  nbody::Particles p(4);
  p.x = {0.5, 1.5, 0.6, 2.5};
  p.y = {0.5, 0.5, 0.7, 2.5};
  p.z = {0.5, 0.5, 0.4, 2.5};
  p.ux = {1.0, 2.0, 3.0, 4.0};
  p.uy = p.uz = {0.0, 0.0, 0.0, 0.0};
  const auto cell = particles_in_cell(p, 3.0, 3, 0, 0, 0);
  ASSERT_EQ(cell.ux.size(), 2u);
  EXPECT_DOUBLE_EQ(cell.ux[0], 1.0);
  EXPECT_DOUBLE_EQ(cell.ux[1], 3.0);
}

}  // namespace
