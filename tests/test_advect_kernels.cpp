#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vlasov/advect_kernels.hpp"

namespace {

using namespace v6d::vlasov;

// Build L lines of length n (line-major storage: line l at l*n).
std::vector<float> make_lines(int n, int lanes) {
  std::vector<float> data(static_cast<std::size_t>(lanes) * n);
  for (int l = 0; l < lanes; ++l)
    for (int i = 0; i < n; ++i)
      data[static_cast<std::size_t>(l) * n + i] = static_cast<float>(
          std::exp(-0.05 * (i - n / 2.0) * (i - n / 2.0)) * (1.0 + 0.2 * l) +
          0.01 * ((i * 7 + l * 3) % 5));
  return data;
}

class KernelEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(KernelEquivalence, ScalarSimdLatGatherAgree) {
  const double xi = GetParam();
  const int n = 40;
  const int L = kLanes;
  const auto src = make_lines(n, L);
  AdvectWorkspace ws;

  // Scalar reference, line by line.
  std::vector<float> ref(static_cast<std::size_t>(L) * n);
  for (int l = 0; l < L; ++l)
    advect_line_strided_scalar(src.data() + static_cast<std::size_t>(l) * n,
                               1, ref.data() + static_cast<std::size_t>(l) * n,
                               1, n, xi, Limiter::kMpp, GhostMode::kZero, ws);

  // LAT over the same contiguous lines.
  std::vector<float> lat(static_cast<std::size_t>(L) * n);
  advect_lines_lat(src.data(), n, lat.data(), n, n, xi, Limiter::kMpp,
                   GhostMode::kZero, ws);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], lat[i], 2e-6f) << "lat idx " << i;

  // Gather-style SIMD.
  std::vector<float> gat(static_cast<std::size_t>(L) * n);
  advect_lines_lat_gather(src.data(), n, gat.data(), n, n, xi, Limiter::kMpp,
                          GhostMode::kZero, ws);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_NEAR(ref[i], gat[i], 2e-6f) << "gather idx " << i;

  // Lane-interleaved SIMD: transpose the storage so lanes are contiguous.
  std::vector<float> interleaved(static_cast<std::size_t>(n) * L);
  for (int i = 0; i < n; ++i)
    for (int l = 0; l < L; ++l)
      interleaved[static_cast<std::size_t>(i) * L + l] =
          src[static_cast<std::size_t>(l) * n + i];
  std::vector<float> simd_out(static_cast<std::size_t>(n) * L);
  advect_lines_simd(interleaved.data(), L, simd_out.data(), L, n, xi,
                    Limiter::kMpp, GhostMode::kZero, ws);
  for (int i = 0; i < n; ++i)
    for (int l = 0; l < L; ++l)
      ASSERT_NEAR(ref[static_cast<std::size_t>(l) * n + i],
                  simd_out[static_cast<std::size_t>(i) * L + l], 2e-6f)
          << "simd i=" << i << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(ShiftSweep, KernelEquivalence,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0, 1.3, 2.2,
                                           -0.4, -1.1));

TEST(KernelEquivalence, PerLaneShiftsMatchScalar) {
  const int n = 36;
  const int L = kLanes;
  AdvectWorkspace ws;
  const auto lines = make_lines(n, L);
  // Lane-interleaved layout.
  std::vector<float> src(static_cast<std::size_t>(n) * L);
  for (int i = 0; i < n; ++i)
    for (int l = 0; l < L; ++l)
      src[static_cast<std::size_t>(i) * L + l] =
          lines[static_cast<std::size_t>(l) * n + i];

  double xi[16];
  for (int l = 0; l < L; ++l) xi[l] = 0.1 + 0.07 * l;  // same floor (0)

  std::vector<float> out(static_cast<std::size_t>(n) * L);
  advect_lines_simd_multi(src.data(), L, out.data(), L, n, xi, Limiter::kMpp,
                          GhostMode::kZero, ws);

  for (int l = 0; l < L; ++l) {
    std::vector<float> ref(static_cast<std::size_t>(n));
    advect_line_strided_scalar(src.data() + l, L, ref.data(), 1, n, xi[l],
                               Limiter::kMpp, GhostMode::kZero, ws);
    for (int i = 0; i < n; ++i)
      ASSERT_NEAR(ref[static_cast<std::size_t>(i)],
                  out[static_cast<std::size_t>(i) * L + l], 2e-6f)
          << "l=" << l << " i=" << i;
  }
}

TEST(KernelEquivalence, PerLaneMixedFloorFallsBackCorrectly) {
  // Lanes straddling u = 0 (floors -1 and 0) must still match scalar.
  const int n = 30;
  const int L = kLanes;
  AdvectWorkspace ws;
  const auto lines = make_lines(n, L);
  std::vector<float> src(static_cast<std::size_t>(n) * L);
  for (int i = 0; i < n; ++i)
    for (int l = 0; l < L; ++l)
      src[static_cast<std::size_t>(i) * L + l] =
          lines[static_cast<std::size_t>(l) * n + i];

  double xi[16];
  for (int l = 0; l < L; ++l) xi[l] = -0.3 + 0.15 * l;  // spans negative..positive

  std::vector<float> out(static_cast<std::size_t>(n) * L);
  advect_lines_simd_multi(src.data(), L, out.data(), L, n, xi, Limiter::kMpp,
                          GhostMode::kZero, ws);
  for (int l = 0; l < L; ++l) {
    std::vector<float> ref(static_cast<std::size_t>(n));
    advect_line_strided_scalar(src.data() + l, L, ref.data(), 1, n, xi[l],
                               Limiter::kMpp, GhostMode::kZero, ws);
    for (int i = 0; i < n; ++i)
      ASSERT_NEAR(ref[static_cast<std::size_t>(i)],
                  out[static_cast<std::size_t>(i) * L + l], 2e-6f);
  }
}

TEST(GhostModes, ZeroGhostsDrainMassThroughBoundary) {
  // With zero (outflow) ghosts, advecting a blob off the edge removes it.
  const int n = 20;
  AdvectWorkspace ws;
  std::vector<float> f(static_cast<std::size_t>(n), 0.0f);
  f[18] = 1.0f;
  for (int s = 0; s < 10; ++s) {
    std::vector<float> out(static_cast<std::size_t>(n));
    advect_line_strided_scalar(f.data(), 1, out.data(), 1, n, 0.7,
                               Limiter::kMpp, GhostMode::kZero, ws);
    f = out;
  }
  double mass = 0.0;
  for (float v : f) mass += v;
  EXPECT_LT(mass, 1e-3);  // everything left the domain
  for (float v : f) EXPECT_GE(v, 0.0f);
}

TEST(GhostModes, FromSourceReadsNeighborData) {
  // Line embedded in a larger array with valid data on both sides.
  const int n = 16, ghost_extra = 8;
  AdvectWorkspace ws;
  std::vector<float> big(static_cast<std::size_t>(n + 2 * ghost_extra));
  for (int i = 0; i < n + 2 * ghost_extra; ++i)
    big[static_cast<std::size_t>(i)] = static_cast<float>(i);
  std::vector<float> out(static_cast<std::size_t>(n));
  advect_line_strided_scalar(big.data() + ghost_extra, 1, out.data(), 1, n,
                             1.0, Limiter::kNone, GhostMode::kFromSource, ws);
  // Integer shift: out[i] = big[ghost_extra + i - 1].
  for (int i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(i)],
                    big[static_cast<std::size_t>(ghost_extra + i - 1)]);
}

TEST(Workspace, EnsureGrowsMonotonically) {
  AdvectWorkspace ws;
  ws.ensure(10, 3, 8);
  const auto in0 = ws.in.size();
  ws.ensure(5, 3, 8);  // smaller request must not shrink
  EXPECT_EQ(ws.in.size(), in0);
  ws.ensure(100, 5, 8);
  EXPECT_GE(ws.in.size(), static_cast<std::size_t>((100 + 10) * 8));
}

}  // namespace
