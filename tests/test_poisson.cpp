#include <gtest/gtest.h>

#include <cmath>

#include "gravity/poisson.hpp"

namespace {

using namespace v6d::gravity;
using v6d::mesh::Grid3D;

TEST(Poisson, SinusoidalDensityExactWithContinuumGreen) {
  // rho = cos(k x) => phi = -prefactor cos(k x) / k^2 exactly for the
  // continuum Green function (single mode, no discretization error).
  const int n = 16;
  const double box = 2.0 * M_PI;
  PoissonSolver solver(n, box);
  Grid3D<double> rho(n, n, n), phi(n, n, n);
  const double k = 2.0;  // mode 2
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int l = 0; l < n; ++l)
        rho.at(i, j, l) = std::cos(k * (i + 0.0) * box / n);
  PoissonOptions opt;
  opt.prefactor = 4.0 * M_PI;
  solver.solve(rho, phi, opt);
  for (int i = 0; i < n; ++i) {
    const double expected = -4.0 * M_PI * std::cos(k * i * box / n) / (k * k);
    EXPECT_NEAR(phi.at(i, 3, 5), expected, 1e-10) << i;
  }
}

TEST(Poisson, MeanModeIsRemoved) {
  const int n = 8;
  PoissonSolver solver(n, 1.0);
  Grid3D<double> rho(n, n, n), phi(n, n, n);
  rho.fill(42.0);  // pure mean: potential must vanish
  PoissonOptions opt;
  solver.solve(rho, phi, opt);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) EXPECT_NEAR(phi.at(i, j, k), 0.0, 1e-12);
}

TEST(Poisson, DiscreteGreenMatchesFdLaplacian) {
  // With the discrete Green function, applying the 2nd-order 7-point
  // Laplacian to phi must reproduce prefactor * (rho - mean) exactly.
  const int n = 8;
  const double box = 3.0;
  const double h = box / n;
  PoissonSolver solver(n, box);
  Grid3D<double> rho(n, n, n), phi(n, n, n, 1);
  unsigned state = 17;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        state = state * 1664525u + 1013904223u;
        rho.at(i, j, k) = (state % 1000) / 500.0 - 1.0;
      }
  const double mean = rho.sum_interior() / rho.interior_size();
  PoissonOptions opt;
  opt.green = GreenFunction::kDiscreteK2;
  opt.prefactor = 2.5;
  solver.solve(rho, phi, opt);
  phi.fill_ghosts_periodic();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        const double lap =
            (phi.at(i + 1, j, k) + phi.at(i - 1, j, k) +
             phi.at(i, j + 1, k) + phi.at(i, j - 1, k) +
             phi.at(i, j, k + 1) + phi.at(i, j, k - 1) -
             6.0 * phi.at(i, j, k)) /
            (h * h);
        ASSERT_NEAR(lap, 2.5 * (rho.at(i, j, k) - mean), 1e-9);
      }
}

TEST(Poisson, SpectralForcesAreMinusGradPhi) {
  const int n = 16;
  const double box = 2.0 * M_PI;
  PoissonSolver solver(n, box);
  Grid3D<double> rho(n, n, n), gx(n, n, n), gy(n, n, n), gz(n, n, n);
  const int m = 3;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        rho.at(i, j, k) = std::sin(m * j * box / n);
  PoissonOptions opt;
  opt.prefactor = 1.0;
  solver.solve_forces(rho, gx, gy, gz, opt);
  // phi = -sin(m y)/m^2; g = -grad phi => gy = cos(m y)/m.
  for (int j = 0; j < n; ++j) {
    EXPECT_NEAR(gy.at(2, j, 4), std::cos(m * j * box / n) / m, 1e-10);
    EXPECT_NEAR(gx.at(2, j, 4), 0.0, 1e-10);
    EXPECT_NEAR(gz.at(2, j, 4), 0.0, 1e-10);
  }
}

TEST(Poisson, LongRangeFilterSuppressesHighK) {
  // With the exp(-k^2 rs^2) filter, a high-k mode's potential is strongly
  // suppressed while a low-k mode's is nearly untouched.
  const int n = 32;
  const double box = 1.0;
  PoissonSolver solver(n, box);
  Grid3D<double> rho(n, n, n), phi_full(n, n, n), phi_filtered(n, n, n);
  const int m_low = 1, m_high = 12;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        rho.at(i, j, k) = std::cos(2.0 * M_PI * m_low * i / n) +
                          std::cos(2.0 * M_PI * m_high * i / n);
  PoissonOptions opt;
  solver.solve(rho, phi_full, opt);
  opt.longrange_split_rs = 2.0 * box / n;  // rs = 2 cells
  solver.solve(rho, phi_filtered, opt);

  // Project onto the two cosines to compare mode amplitudes.
  auto amplitude = [&](const Grid3D<double>& f, int m) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i)
      acc += f.at(i, 0, 0) * std::cos(2.0 * M_PI * m * i / n);
    return 2.0 * acc / n;
  };
  // exp(-(k_low rs)^2) = exp(-(2 pi / 16)^2) ~ 0.857 for rs = 2 cells.
  const double low_ratio =
      amplitude(phi_filtered, m_low) / amplitude(phi_full, m_low);
  const double high_ratio =
      amplitude(phi_filtered, m_high) / amplitude(phi_full, m_high);
  EXPECT_GT(low_ratio, 0.8);
  EXPECT_LT(high_ratio, 0.05);
}

TEST(Poisson, CicDeconvolutionSharpens) {
  // Deconvolution divides by |W|^2 < 1, so non-zero modes gain amplitude.
  const int n = 16;
  PoissonSolver solver(n, 1.0);
  Grid3D<double> rho(n, n, n), phi_raw(n, n, n), phi_dec(n, n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        rho.at(i, j, k) = std::cos(2.0 * M_PI * 5 * i / n);
  PoissonOptions opt;
  solver.solve(rho, phi_raw, opt);
  opt.deconvolve_order = 2;
  solver.solve(rho, phi_dec, opt);
  double max_raw = 0.0, max_dec = 0.0;
  for (int i = 0; i < n; ++i) {
    max_raw = std::max(max_raw, std::fabs(phi_raw.at(i, 0, 0)));
    max_dec = std::max(max_dec, std::fabs(phi_dec.at(i, 0, 0)));
  }
  EXPECT_GT(max_dec, max_raw * 1.05);
}

}  // namespace
