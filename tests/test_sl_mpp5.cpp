#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "vlasov/sl_mpp5.hpp"

namespace {

using namespace v6d::vlasov;

// Independent construction of the flux weights: Lagrange interpolation of
// the primitive function through six interfaces, evaluated numerically.
std::array<double, 5> reference_weights(double theta) {
  // Nodes t = -3..2 relative to the interface; primitive differences give
  // the cell weights (see sl_mpp5.hpp).
  const double nodes[6] = {-3, -2, -1, 0, 1, 2};
  auto lagrange = [&](int m, double x) {
    double p = 1.0;
    for (int q = 0; q < 6; ++q) {
      if (q == m) continue;
      p *= (x - nodes[q]) / (nodes[m] - nodes[q]);
    }
    return p;
  };
  const double x = -theta;
  const double l0 = lagrange(0, x), l1 = lagrange(1, x), l2 = lagrange(2, x);
  const double l4 = lagrange(4, x), l5 = lagrange(5, x);
  return {l0, l0 + l1, l0 + l1 + l2, -(l4 + l5), -l5};
}

TEST(FluxWeights, MatchesLagrangeConstruction) {
  for (double theta : {0.0, 0.1, 0.25, 0.33, 0.5, 0.75, 0.9, 1.0}) {
    const auto fw = FluxWeights::compute(theta);
    const auto ref = reference_weights(theta);
    for (int k = 0; k < 5; ++k)
      EXPECT_NEAR(fw.w[k], ref[k], 1e-14) << "theta=" << theta << " k=" << k;
  }
}

TEST(FluxWeights, PartitionOfTheta) {
  for (double theta = 0.0; theta <= 1.0; theta += 0.05) {
    const auto fw = FluxWeights::compute(theta);
    const double sum = std::accumulate(fw.w.begin(), fw.w.end(), 0.0);
    EXPECT_NEAR(sum, theta, 1e-14);
  }
}

TEST(FluxWeights, WholeCellShiftIsExact) {
  const auto fw = FluxWeights::compute(1.0);
  EXPECT_NEAR(fw.w[0], 0.0, 1e-15);
  EXPECT_NEAR(fw.w[1], 0.0, 1e-15);
  EXPECT_NEAR(fw.w[2], 1.0, 1e-15);
  EXPECT_NEAR(fw.w[3], 0.0, 1e-15);
  EXPECT_NEAR(fw.w[4], 0.0, 1e-15);
}

class AdvectLineTest : public ::testing::TestWithParam<double> {};

TEST_P(AdvectLineTest, ConstantFieldIsFixedPoint) {
  const double xi = GetParam();
  const int n = 32;
  std::vector<float> f(n, 3.25f);
  advect_line_periodic(f.data(), n, xi, Limiter::kMpp);
  for (float v : f) EXPECT_FLOAT_EQ(v, 3.25f);
}

TEST_P(AdvectLineTest, MassConserved) {
  const double xi = GetParam();
  const int n = 48;
  std::vector<float> f(n);
  for (int i = 0; i < n; ++i)
    f[i] = static_cast<float>(std::exp(-0.05 * (i - 24) * (i - 24)) +
                              0.3 * std::sin(0.5 * i) * std::sin(0.5 * i));
  double mass0 = 0.0;
  for (float v : f) mass0 += v;
  for (int s = 0; s < 25; ++s) advect_line_periodic(f.data(), n, xi, Limiter::kMpp);
  double mass1 = 0.0;
  for (float v : f) mass1 += v;
  EXPECT_NEAR(mass1, mass0, 1e-4 * std::fabs(mass0) + 1e-5);
}

TEST_P(AdvectLineTest, PositivityPreserved) {
  const double xi = GetParam();
  const int n = 40;
  std::vector<float> f(n, 0.0f);
  f[10] = 1.0f;  // extreme profile: a single spike
  f[11] = 0.5f;
  f[30] = 2.0f;
  for (int s = 0; s < 50; ++s) {
    advect_line_periodic(f.data(), n, xi, Limiter::kMpp);
    for (int i = 0; i < n; ++i)
      ASSERT_GE(f[i], 0.0f) << "step " << s << " cell " << i;
  }
}

TEST_P(AdvectLineTest, MonotoneStepProfileStaysMonotone) {
  const double xi = GetParam();
  const int n = 64;
  std::vector<float> f(n);
  for (int i = 0; i < n; ++i) f[i] = i < n / 2 ? 1.0f : 0.0f;
  // A step profile must not develop over/undershoots (MP property; the
  // adaptive-alpha bounds keep it strict for every fractional shift).
  for (int s = 0; s < 20; ++s) {
    advect_line_periodic(f.data(), n, xi, Limiter::kMpp);
    for (int i = 0; i < n; ++i) {
      ASSERT_LE(f[i], 1.0f + 1e-5) << "step " << s;
      ASSERT_GE(f[i], -1e-6) << "step " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShiftSweep, AdvectLineTest,
                         ::testing::Values(0.0, 0.1, 0.37, 0.5, 0.93, 1.0,
                                           1.4, 2.75, -0.25, -0.8, -1.0,
                                           -2.6));

TEST(AdvectLine, IntegerShiftIsExactTranslation) {
  const int n = 24;
  std::vector<float> f(n), expected(n);
  for (int i = 0; i < n; ++i) f[i] = static_cast<float>(i * i % 17);
  for (int shift : {1, 2, -1, -3, 5}) {
    std::vector<float> g = f;
    advect_line_periodic(g.data(), n, static_cast<double>(shift),
                         Limiter::kMpp);
    for (int i = 0; i < n; ++i) {
      const int src = ((i - shift) % n + n) % n;
      EXPECT_FLOAT_EQ(g[i], f[src]) << "shift=" << shift << " i=" << i;
    }
  }
}

TEST(AdvectLine, FifthOrderConvergenceOnSmoothProfile) {
  // Cell-averaged sine advected with the unlimited scheme; truncation
  // error should fall ~ n^-5 until float round-off (~1e-7) dominates.
  const double xi = 0.3;
  const int steps = 4;
  std::vector<double> errors;
  std::vector<int> ns = {8, 12, 18, 27};
  for (int n : ns) {
    std::vector<float> f(static_cast<std::size_t>(n));
    auto cell_avg = [&](int i, double shift) {
      const double a = 2.0 * M_PI * i / n - shift;
      const double b = 2.0 * M_PI * (i + 1) / n - shift;
      return 2.0 + (std::cos(a) - std::cos(b)) / (b - a);
    };
    for (int i = 0; i < n; ++i)
      f[static_cast<std::size_t>(i)] = static_cast<float>(cell_avg(i, 0.0));
    for (int s = 0; s < steps; ++s)
      advect_line_periodic(f.data(), n, xi, Limiter::kNone);
    double err = 0.0;
    const double shift = 2.0 * M_PI * xi * steps / n;
    for (int i = 0; i < n; ++i)
      err = std::max(err, std::fabs(f[static_cast<std::size_t>(i)] -
                                    cell_avg(i, shift)));
    errors.push_back(err);
  }
  // Fit the convergence order across the sweep.
  const double order =
      std::log(errors.front() / errors.back()) /
      std::log(static_cast<double>(ns.back()) / ns.front());
  EXPECT_GT(order, 4.3) << "errors: " << errors[0] << " " << errors[1] << " "
                        << errors[2] << " " << errors[3];
}

TEST(AdvectLine, LimiterDoesNotDegradeSmoothSolutions) {
  // On smooth data the MP limiter must leave the high-order flux intact
  // (accuracy-preserving at smooth extrema is the point of MP5 vs TVD).
  const int n = 32;
  std::vector<float> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = b[i] =
        static_cast<float>(2.0 + std::sin(2.0 * M_PI * (i + 0.5) / n));
  }
  for (int s = 0; s < 5; ++s) {
    advect_line_periodic(a.data(), n, 0.4, Limiter::kNone);
    advect_line_periodic(b.data(), n, 0.4, Limiter::kMpp);
  }
  for (int i = 0; i < n; ++i) EXPECT_NEAR(a[i], b[i], 2e-5) << i;
}

TEST(Mp5Limiter, ClipsOvershootCandidates) {
  // Candidate far above the local neighborhood must be pulled into range.
  const float g = mp_limit(10.0f, 1.0f, 1.0f, 1.0f, 1.2f, 1.1f);
  EXPECT_LE(g, 2.0f);
  // Candidate inside a monotone profile is accepted untouched.
  const float g2 = mp_limit(1.5f, 1.0f, 1.2f, 1.4f, 1.6f, 1.8f);
  EXPECT_FLOAT_EQ(g2, 1.5f);
}

TEST(Rk3Mp5Baseline, AdvectsAndConserves) {
  const int n = 48;
  std::vector<float> f(n);
  for (int i = 0; i < n; ++i)
    f[i] = static_cast<float>(std::exp(-0.08 * (i - 24) * (i - 24)));
  double mass0 = 0.0;
  for (float v : f) mass0 += v;
  for (int s = 0; s < 30; ++s) advect_line_periodic_rk3_mp5(f.data(), n, 0.4);
  double mass1 = 0.0, peak = 0.0;
  for (float v : f) {
    mass1 += v;
    peak = std::max<double>(peak, v);
  }
  EXPECT_NEAR(mass1, mass0, 1e-3 * mass0);
  EXPECT_GT(peak, 0.8);  // profile not destroyed
  // Peak should now sit near cell 24 + 0.4*30 = 36.
  int argmax = 0;
  for (int i = 0; i < n; ++i)
    if (f[i] > f[argmax]) argmax = i;
  EXPECT_NEAR(argmax, 36, 1);
}

TEST(Rk3Mp5Baseline, NegativeVelocityMirrors) {
  const int n = 48;
  std::vector<float> f(n, 0.0f);
  for (int i = 20; i < 28; ++i) f[i] = 1.0f;
  for (int s = 0; s < 10; ++s) advect_line_periodic_rk3_mp5(f.data(), n, -0.5);
  int argmax = 0;
  for (int i = 0; i < n; ++i)
    if (f[i] > f[argmax]) argmax = i;
  EXPECT_NEAR(argmax, 19, 2);  // moved left by 5 cells
}

TEST(RequiredGhost, CoversStencilReach) {
  // Exact integer shifts only read c[i - s].
  EXPECT_EQ(required_ghost(0.0), 0);
  EXPECT_EQ(required_ghost(1.0), 1);
  EXPECT_EQ(required_ghost(-3.0), 3);
  // Every fractional |xi| <= 1 fits the production halo width.
  EXPECT_EQ(required_ghost(0.99), kStencilGhost);
  EXPECT_EQ(required_ghost(-0.5), kStencilGhost);
  EXPECT_EQ(required_ghost(-0.01), kStencilGhost);
  // Larger shifts widen one side: max(s+3, 2-s).
  EXPECT_EQ(required_ghost(1.5), 4);
  EXPECT_EQ(required_ghost(-1.5), 4);
  EXPECT_EQ(required_ghost(-2.5), 5);
  EXPECT_EQ(required_ghost(2.5), 5);
}

}  // namespace
