#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gravity/treepm.hpp"

namespace {

using namespace v6d::gravity;
using v6d::nbody::Particles;

Particles random_particles(std::size_t n, double box, std::uint64_t seed) {
  Particles p(n);
  v6d::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = rng.next_double() * box;
    p.y[i] = rng.next_double() * box;
    p.z[i] = rng.next_double() * box;
    p.id[i] = i;
  }
  p.mass = box * box * box / static_cast<double>(n);  // mean density 1
  return p;
}

TEST(TreePm, MomentumConservation) {
  // Total momentum change (sum m a) must vanish: PM forces on a periodic
  // mesh have no net force, tree forces are pairwise antisymmetric up to
  // the multipole acceptance tolerance.
  const double box = 1.0;
  auto p = random_particles(400, box, 31);
  TreePmOptions opt;
  opt.pm_grid = 16;
  opt.theta = 0.4;
  opt.use_simd = false;
  TreePmSolver solver(box, opt);
  std::vector<double> ax, ay, az;
  solver.accelerations(p, 4.0 * M_PI, ax, ay, az);
  double px = 0.0, py = 0.0, pz = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    px += ax[i];
    py += ay[i];
    pz += az[i];
    scale += std::fabs(ax[i]) + std::fabs(ay[i]) + std::fabs(az[i]);
  }
  EXPECT_LT(std::fabs(px), 2e-2 * scale / p.size() * 10);
  EXPECT_LT(std::fabs(py), 2e-2 * scale / p.size() * 10);
  EXPECT_LT(std::fabs(pz), 2e-2 * scale / p.size() * 10);
}

TEST(TreePm, MatchesDirectEwaldLikeSumOnPair) {
  // Two particles far from others: the total TreePM force must be close
  // to the direct periodic force.  With separation << box the minimum
  // image 1/r^2 dominates the periodic correction.
  const double box = 10.0;
  Particles p(2);
  p.x = {4.0, 6.0};
  p.y = {5.0, 5.0};
  p.z = {5.0, 5.0};
  p.mass = 1.0;
  TreePmOptions opt;
  opt.pm_grid = 32;
  opt.theta = 0.2;
  opt.use_simd = false;
  opt.eps_cells = 0.0;
  TreePmSolver solver(box, opt);
  std::vector<double> ax, ay, az;
  // prefactor 4 pi G with G = 1.
  solver.accelerations(p, 4.0 * M_PI, ax, ay, az);
  const double r = 2.0;
  const double expected = 1.0 / (r * r);  // G m / r^2
  // Periodic images contribute at the ~ (r/box)^3 level; allow a few %.
  EXPECT_NEAR(ax[0], expected, 0.05 * expected);
  EXPECT_NEAR(ax[1], -expected, 0.05 * expected);
  EXPECT_NEAR(ay[0], 0.0, 0.02 * expected);
  EXPECT_NEAR(az[0], 0.0, 0.02 * expected);
}

TEST(TreePm, SplitIsInsensitiveToRs) {
  // The short+long split must reconstruct (nearly) the same total force
  // for different split scales — the defining property of TreePM.
  const double box = 1.0;
  auto p = random_particles(300, box, 77);
  std::vector<std::vector<double>> results;
  for (double rs_cells : {1.0, 1.5, 2.0}) {
    TreePmOptions opt;
    opt.pm_grid = 32;
    opt.theta = 0.25;
    opt.rs_cells = rs_cells;
    opt.rcut_over_rs = 5.0;
    opt.use_simd = false;
    opt.eps_cells = 0.2;
    TreePmSolver solver(box, opt);
    std::vector<double> ax, ay, az;
    solver.accelerations(p, 4.0 * M_PI, ax, ay, az);
    std::vector<double> flat;
    flat.insert(flat.end(), ax.begin(), ax.end());
    flat.insert(flat.end(), ay.begin(), ay.end());
    flat.insert(flat.end(), az.begin(), az.end());
    results.push_back(std::move(flat));
  }
  double rms = 0.0, diff = 0.0;
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    rms += results[0][i] * results[0][i];
    const double d = results[0][i] - results[2][i];
    diff += d * d;
  }
  EXPECT_LT(std::sqrt(diff / rms), 0.05);
}

TEST(TreePm, TimersPopulateBuckets) {
  const double box = 1.0;
  auto p = random_particles(100, box, 5);
  TreePmOptions opt;
  opt.pm_grid = 8;
  TreePmSolver solver(box, opt);
  std::vector<double> ax, ay, az;
  v6d::TimerRegistry timers;
  solver.accelerations(p, 1.0, ax, ay, az, &timers);
  EXPECT_GT(timers.total("pm"), 0.0);
  EXPECT_GT(timers.total("tree"), 0.0);
}

TEST(TreePm, UniformLatticeFeelsNoForce) {
  // Symmetric configuration: forces vanish up to discreteness tolerance.
  const double box = 1.0;
  const int n = 6;
  Particles p(static_cast<std::size_t>(n) * n * n);
  std::size_t idx = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k, ++idx) {
        p.x[idx] = (i + 0.5) / n;
        p.y[idx] = (j + 0.5) / n;
        p.z[idx] = (k + 0.5) / n;
      }
  p.mass = 1.0 / p.size();
  TreePmOptions opt;
  opt.pm_grid = 12;
  opt.theta = 0.3;
  opt.use_simd = false;
  opt.eps_cells = 0.1;
  TreePmSolver solver(box, opt);
  std::vector<double> ax, ay, az;
  solver.accelerations(p, 4.0 * M_PI, ax, ay, az);
  // Compare to the force between two adjacent particles as the scale.
  const double pair_scale = p.mass / std::pow(1.0 / n, 2);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_LT(std::fabs(ax[i]), 0.2 * pair_scale) << i;
    EXPECT_LT(std::fabs(ay[i]), 0.2 * pair_scale) << i;
    EXPECT_LT(std::fabs(az[i]), 0.2 * pair_scale) << i;
  }
}

}  // namespace
