#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "io/pgm.hpp"
#include "io/snapshot.hpp"
#include "io/table_writer.hpp"

namespace {

using namespace v6d;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Snapshot, ParticlesRoundTrip) {
  nbody::Particles p(100);
  Xoshiro256 rng(44);
  p.mass = 3.25;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.next_double();
    p.y[i] = rng.next_double();
    p.z[i] = rng.next_double();
    p.ux[i] = rng.next_normal();
    p.uy[i] = rng.next_normal();
    p.uz[i] = rng.next_normal();
    p.id[i] = i * 7;
  }
  const std::string path = temp_path("v6d_particles_test.bin");
  ASSERT_TRUE(io::write_particles(path, p));
  nbody::Particles q;
  ASSERT_TRUE(io::read_particles(path, q));
  ASSERT_EQ(q.size(), p.size());
  EXPECT_DOUBLE_EQ(q.mass, p.mass);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(q.x[i], p.x[i]);
    EXPECT_DOUBLE_EQ(q.ux[i], p.ux[i]);
    EXPECT_EQ(q.id[i], p.id[i]);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, PhaseSpaceRoundTrip) {
  vlasov::PhaseSpaceDims d;
  d.nx = d.ny = d.nz = 3;
  d.nux = d.nuy = d.nuz = 4;
  vlasov::PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = 2.0;
  g.umax = 5.0;
  g.dux = g.duy = g.duz = 2.5;
  vlasov::PhaseSpace f(d, g);
  Xoshiro256 rng(11);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        float* blk = f.block(ix, iy, iz);
        for (std::size_t v = 0; v < f.block_size(); ++v)
          blk[v] = static_cast<float>(rng.next_double());
      }
  const std::string path = temp_path("v6d_ps_test.bin");
  ASSERT_TRUE(io::write_phase_space(path, f));
  vlasov::PhaseSpace h;
  ASSERT_TRUE(io::read_phase_space(path, h));
  EXPECT_EQ(h.dims().nx, 3);
  EXPECT_EQ(h.dims().nuz, 4);
  EXPECT_DOUBLE_EQ(h.geom().umax, 5.0);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* a = f.block(ix, iy, iz);
        const float* b = h.block(ix, iy, iz);
        for (std::size_t v = 0; v < f.block_size(); ++v)
          ASSERT_EQ(a[v], b[v]);
      }
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsWrongMagic) {
  const std::string path = temp_path("v6d_bad_magic.bin");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  const char junk[64] = "not a snapshot";
  std::fwrite(junk, 1, sizeof(junk), fp);
  std::fclose(fp);
  nbody::Particles p;
  EXPECT_FALSE(io::read_particles(path, p));
  vlasov::PhaseSpace f;
  EXPECT_FALSE(io::read_phase_space(path, f));
  std::remove(path.c_str());
}

TEST(Pgm, WritesValidHeaderAndPayload) {
  diag::Map2D map;
  map.nx = 4;
  map.ny = 6;
  map.values.assign(24, 0.0);
  for (int i = 0; i < 24; ++i) map.values[static_cast<std::size_t>(i)] = i;
  const std::string path = temp_path("v6d_map.pgm");
  ASSERT_TRUE(io::write_pgm(path, map));
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fscanf(fp, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P5");
  int w = 0, h = 0, maxval = 0;
  ASSERT_EQ(std::fscanf(fp, "%d %d %d", &w, &h, &maxval), 3);
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  std::fclose(fp);
  std::remove(path.c_str());
}

TEST(Pgm, CsvHasExpectedCells) {
  diag::Map2D map;
  map.nx = 2;
  map.ny = 2;
  map.values = {1.0, 2.0, 3.0, 4.0};
  const std::string path = temp_path("v6d_map.csv");
  ASSERT_TRUE(io::write_csv(path, map));
  std::FILE* fp = std::fopen(path.c_str(), "r");
  double a, b, c, d;
  ASSERT_EQ(std::fscanf(fp, "%lf,%lf %lf,%lf", &a, &b, &c, &d), 4);
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(d, 4.0);
  std::fclose(fp);
  std::remove(path.c_str());
}

TEST(TableWriter, FormatsAlignedColumns) {
  io::TableWriter table({"run", "nodes", "eff"});
  table.row({"S2", "288", "96.0%"});
  table.row({"H1024", "147456", "82.3%"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("run"), std::string::npos);
  EXPECT_NE(out.find("147456"), std::string::npos);
  EXPECT_NE(out.find("82.3%"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableWriter, NumberFormatting) {
  EXPECT_EQ(io::TableWriter::fmt_pct(0.823), "82.3%");
  EXPECT_EQ(io::TableWriter::fmt_pct(1.0, 0), "100%");
  const std::string s = io::TableWriter::fmt(1234.5678, 3);
  EXPECT_NE(s.find("1234"), std::string::npos);
}

}  // namespace
