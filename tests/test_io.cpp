#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "io/pgm.hpp"
#include "io/snapshot.hpp"
#include "io/table_writer.hpp"

namespace {

using namespace v6d;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Snapshot, ParticlesRoundTrip) {
  nbody::Particles p(100);
  Xoshiro256 rng(44);
  p.mass = 3.25;
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = rng.next_double();
    p.y[i] = rng.next_double();
    p.z[i] = rng.next_double();
    p.ux[i] = rng.next_normal();
    p.uy[i] = rng.next_normal();
    p.uz[i] = rng.next_normal();
    p.id[i] = i * 7;
  }
  const std::string path = temp_path("v6d_particles_test.bin");
  ASSERT_EQ(io::write_particles(path, p), io::SnapshotStatus::kOk);
  nbody::Particles q;
  ASSERT_EQ(io::read_particles(path, q), io::SnapshotStatus::kOk);
  ASSERT_EQ(q.size(), p.size());
  EXPECT_DOUBLE_EQ(q.mass, p.mass);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(q.x[i], p.x[i]);
    EXPECT_DOUBLE_EQ(q.ux[i], p.ux[i]);
    EXPECT_EQ(q.id[i], p.id[i]);
  }
  std::remove(path.c_str());
}

TEST(Snapshot, PhaseSpaceRoundTrip) {
  vlasov::PhaseSpaceDims d;
  d.nx = d.ny = d.nz = 3;
  d.nux = d.nuy = d.nuz = 4;
  vlasov::PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = 2.0;
  g.umax = 5.0;
  g.dux = g.duy = g.duz = 2.5;
  vlasov::PhaseSpace f(d, g);
  Xoshiro256 rng(11);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        float* blk = f.block(ix, iy, iz);
        for (std::size_t v = 0; v < f.block_size(); ++v)
          blk[v] = static_cast<float>(rng.next_double());
      }
  const std::string path = temp_path("v6d_ps_test.bin");
  ASSERT_EQ(io::write_phase_space(path, f), io::SnapshotStatus::kOk);
  vlasov::PhaseSpace h;
  ASSERT_EQ(io::read_phase_space(path, h), io::SnapshotStatus::kOk);
  EXPECT_EQ(h.dims().nx, 3);
  EXPECT_EQ(h.dims().nuz, 4);
  EXPECT_DOUBLE_EQ(h.geom().umax, 5.0);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* a = f.block(ix, iy, iz);
        const float* b = h.block(ix, iy, iz);
        for (std::size_t v = 0; v < f.block_size(); ++v)
          ASSERT_EQ(a[v], b[v]);
      }
  std::remove(path.c_str());
}

TEST(Snapshot, RejectsWrongMagic) {
  const std::string path = temp_path("v6d_bad_magic.bin");
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  const char junk[64] = "not a snapshot";
  std::fwrite(junk, 1, sizeof(junk), fp);
  std::fclose(fp);
  nbody::Particles p;
  EXPECT_EQ(io::read_particles(path, p), io::SnapshotStatus::kBadMagic);
  vlasov::PhaseSpace f;
  EXPECT_EQ(io::read_phase_space(path, f), io::SnapshotStatus::kBadMagic);
  std::remove(path.c_str());
}

TEST(Snapshot, MissingFileIsOpenFailed) {
  nbody::Particles p;
  EXPECT_EQ(io::read_particles(temp_path("v6d_does_not_exist.bin"), p),
            io::SnapshotStatus::kOpenFailed);
}

TEST(Snapshot, TruncatedPayloadIsShortRead) {
  nbody::Particles p(64);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.x[i] = p.y[i] = p.z[i] = 0.5;
    p.ux[i] = p.uy[i] = p.uz[i] = 0.0;
    p.id[i] = i;
  }
  const std::string path = temp_path("v6d_truncated.bin");
  ASSERT_EQ(io::write_particles(path, p), io::SnapshotStatus::kOk);
  // Chop the file mid-payload; the header still advertises 64 particles.
  ASSERT_EQ(std::filesystem::file_size(path) > 128u, true);
  std::filesystem::resize_file(path, 128);
  nbody::Particles q;
  EXPECT_EQ(io::read_particles(path, q), io::SnapshotStatus::kShortRead);
  std::remove(path.c_str());
}

TEST(Snapshot, FutureVersionIsVersionMismatch) {
  vlasov::PhaseSpaceDims d;
  d.nx = d.ny = d.nz = 2;
  d.nux = d.nuy = d.nuz = 2;
  vlasov::PhaseSpace f(d, vlasov::PhaseSpaceGeometry{});
  const std::string path = temp_path("v6d_future_version.bin");
  ASSERT_EQ(io::write_phase_space(path, f), io::SnapshotStatus::kOk);
  // Bump the on-disk version field (bytes 4..7) past the supported one.
  std::FILE* fp = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(fp, nullptr);
  const std::uint32_t future = io::snapshot_version() + 1;
  std::fseek(fp, 4, SEEK_SET);
  std::fwrite(&future, sizeof(future), 1, fp);
  std::fclose(fp);
  vlasov::PhaseSpace g;
  EXPECT_EQ(io::read_phase_space(path, g),
            io::SnapshotStatus::kVersionMismatch);
  std::remove(path.c_str());
}

TEST(Snapshot, CorruptDimsAreBadHeader) {
  vlasov::PhaseSpaceDims d;
  d.nx = d.ny = d.nz = 2;
  d.nux = d.nuy = d.nuz = 2;
  vlasov::PhaseSpace f(d, vlasov::PhaseSpaceGeometry{});
  const std::string path = temp_path("v6d_bad_dims.bin");
  ASSERT_EQ(io::write_phase_space(path, f), io::SnapshotStatus::kOk);
  // A negative dimension must be rejected before any allocation.
  std::FILE* fp = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(fp, nullptr);
  const std::int32_t negative = -4;
  std::fseek(fp, 8, SEEK_SET);  // first dim, after magic + version
  std::fwrite(&negative, sizeof(negative), 1, fp);
  std::fclose(fp);
  vlasov::PhaseSpace g;
  EXPECT_EQ(io::read_phase_space(path, g), io::SnapshotStatus::kBadHeader);
  std::remove(path.c_str());
}

TEST(Snapshot, StatusNamesAreStable) {
  EXPECT_STREQ(io::to_string(io::SnapshotStatus::kOk), "ok");
  EXPECT_STREQ(io::to_string(io::SnapshotStatus::kShortRead), "short-read");
  EXPECT_STREQ(io::to_string(io::SnapshotStatus::kVersionMismatch),
               "version-mismatch");
}

TEST(Pgm, WritesValidHeaderAndPayload) {
  diag::Map2D map;
  map.nx = 4;
  map.ny = 6;
  map.values.assign(24, 0.0);
  for (int i = 0; i < 24; ++i) map.values[static_cast<std::size_t>(i)] = i;
  const std::string path = temp_path("v6d_map.pgm");
  ASSERT_TRUE(io::write_pgm(path, map));
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fscanf(fp, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P5");
  int w = 0, h = 0, maxval = 0;
  ASSERT_EQ(std::fscanf(fp, "%d %d %d", &w, &h, &maxval), 3);
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  std::fclose(fp);
  std::remove(path.c_str());
}

TEST(Pgm, CsvHasExpectedCells) {
  diag::Map2D map;
  map.nx = 2;
  map.ny = 2;
  map.values = {1.0, 2.0, 3.0, 4.0};
  const std::string path = temp_path("v6d_map.csv");
  ASSERT_TRUE(io::write_csv(path, map));
  std::FILE* fp = std::fopen(path.c_str(), "r");
  double a, b, c, d;
  ASSERT_EQ(std::fscanf(fp, "%lf,%lf %lf,%lf", &a, &b, &c, &d), 4);
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(d, 4.0);
  std::fclose(fp);
  std::remove(path.c_str());
}

TEST(TableWriter, FormatsAlignedColumns) {
  io::TableWriter table({"run", "nodes", "eff"});
  table.row({"S2", "288", "96.0%"});
  table.row({"H1024", "147456", "82.3%"});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("run"), std::string::npos);
  EXPECT_NE(out.find("147456"), std::string::npos);
  EXPECT_NE(out.find("82.3%"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableWriter, NumberFormatting) {
  EXPECT_EQ(io::TableWriter::fmt_pct(0.823), "82.3%");
  EXPECT_EQ(io::TableWriter::fmt_pct(1.0, 0), "100%");
  const std::string s = io::TableWriter::fmt(1234.5678, 3);
  EXPECT_NE(s.find("1234"), std::string::npos);
}

}  // namespace
