// Randomized concurrency stress for the comm/overlap layer.
//
// These suites exist to give ThreadSanitizer (the `tsan` preset) real
// scheduling pressure: message storms across many (source, tag) queues,
// barrier/collective churn, aborts landing mid-overlap, and all three
// overlap plans (HaloPlan / GridFoldPlan / SlabExchange) in flight on one
// communicator with their finishes interleaved in random order.  Every
// test is seeded (Xoshiro256) so a failing schedule's *workload* is
// reproducible, and every test also asserts functional correctness, so
// the suites are meaningful under the default presets too.
//
// v6d-analyze: allow-file(tag-space): stress tests drive raw low tags on
// isolated per-test worlds; the kFirstUserTag floor governs production
// exchanges.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/cart.hpp"
#include "comm/communicator.hpp"
#include "comm/faulty_transport.hpp"
#include "comm/runner.hpp"
#include "comm/tcp_transport.hpp"
#include "common/rng.hpp"
#include "fft/parallel_fft.hpp"
#include "mesh/decomposition.hpp"
#include "mesh/grid.hpp"
#include "mesh/halo.hpp"
#include "mesh/halo_plan.hpp"
#include "parallel/field_exchange.hpp"
#include "vlasov/phase_space.hpp"

namespace {

using namespace v6d;
using namespace v6d::comm;

// Deterministic payload byte: every (sender, sequence, offset) triple maps
// to one value, so a receiver can verify content without side channels.
std::uint8_t storm_byte(int src, int seq, std::size_t i) {
  return static_cast<std::uint8_t>(
      hash_mix(static_cast<std::uint64_t>(src) * 1000003u +
               static_cast<std::uint64_t>(seq)) +
      i);
}

std::size_t storm_size(int src, int dst, int seq) {
  // 1..256 bytes; varies enough to churn allocation in the mailbox deques.
  return 1 + (hash_mix(static_cast<std::uint64_t>(src) * 7919u + dst * 31u +
                       static_cast<std::uint64_t>(seq)) &
              0xff);
}

class CommStressRanks : public ::testing::TestWithParam<int> {};

// Every rank floods every peer with tagged messages while draining its own
// mailbox through a randomized mix of blocking pop and try_pop spinning.
// FIFO-per-(source, tag) is asserted on the payload contents.
TEST_P(CommStressRanks, MailboxMessageStorm) {
  const int p = GetParam();
  constexpr int kMessages = 96;  // per (sender, receiver) pair
  constexpr int kTags = 3;
  run(p, [&](Communicator& comm) {
    const int me = comm.rank();
    Xoshiro256 rng(0x57011u + static_cast<std::uint64_t>(me));

    // Send all traffic first (sends are buffered and never block), in a
    // per-rank random destination order so queue insertion interleaves.
    std::vector<int> order;
    for (int d = 0; d < p; ++d)
      for (int s = 0; s < kMessages; ++s) order.push_back(d);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next_u64() % i]);
    std::vector<int> seq(static_cast<std::size_t>(p), 0);
    for (int dst : order) {
      const int s = seq[static_cast<std::size_t>(dst)]++;
      std::vector<std::uint8_t> payload(storm_size(me, dst, s));
      for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = storm_byte(me, s, i);
      comm.send(dst, 100 + s % kTags, payload.data(), payload.size());
    }

    // Drain: per (source, tag) the sequence numbers arrive in send order.
    // Randomly interleave sources/tags and blocking vs non-blocking pops.
    struct Cursor {
      int src, tag;
      std::vector<int> pending;  // sequence numbers, in FIFO order
      std::size_t next = 0;
    };
    std::vector<Cursor> cursors;
    for (int src = 0; src < p; ++src)
      for (int t = 0; t < kTags; ++t) {
        Cursor c{src, 100 + t, {}, 0};
        for (int s = t; s < kMessages; s += kTags) c.pending.push_back(s);
        cursors.push_back(std::move(c));
      }
    std::size_t remaining = static_cast<std::size_t>(p) * kMessages;
    auto& mailbox_comm = comm;
    while (remaining > 0) {
      Cursor& c = cursors[rng.next_u64() % cursors.size()];
      if (c.next == c.pending.size()) continue;
      const int s = c.pending[c.next];
      std::vector<std::uint8_t> payload;
      if (rng.next_u64() & 1) {
        payload = mailbox_comm.recv_bytes(c.src, c.tag);
      } else {
        auto handle = mailbox_comm.irecv(c.src, c.tag);
        while (!handle.ready()) {
        }
        payload = handle.wait();
      }
      ASSERT_EQ(payload.size(), storm_size(c.src, me, s));
      for (std::size_t i = 0; i < payload.size(); ++i)
        ASSERT_EQ(payload[i], storm_byte(c.src, s, i));
      ++c.next;
      --remaining;
    }
  });
}

// Mailbox counters sampled *during* a message storm must never move
// backwards, and the final deltas must equal the scripted traffic exactly.
TEST_P(CommStressRanks, MailboxCountersMonotonicUnderStorm) {
  const int p = GetParam();
  constexpr int kMessages = 64;
  run(p, [&](Communicator& comm) {
    const int me = comm.rank();
    const int next = (me + 1) % p;
    const int prev = (me - 1 + p) % p;
    comm.barrier();
    const auto base = comm.recv_stats();
    comm.barrier();  // nobody sends before every rank snapshots

    std::uint64_t expect_bytes = 0;
    for (int s = 0; s < kMessages; ++s) {
      const std::size_t size = static_cast<std::size_t>(1 + s % 7);
      expect_bytes += size;
      std::vector<std::uint8_t> payload(size, 0x5A);
      comm.send(next, 300, payload.data(), payload.size());
    }

    auto last = comm.recv_stats();
    for (int s = 0; s < kMessages; ++s) {
      const auto payload = comm.recv_bytes(prev, 300);
      ASSERT_EQ(payload.size(), static_cast<std::size_t>(1 + s % 7));
      const auto now = comm.recv_stats();
      EXPECT_GE(now.messages_pushed, last.messages_pushed);
      EXPECT_GE(now.bytes_pushed, last.bytes_pushed);
      EXPECT_GE(now.messages_popped, last.messages_popped);
      EXPECT_GE(now.bytes_popped, last.bytes_popped);
      EXPECT_GE(now.peak_queue_depth, last.peak_queue_depth);
      EXPECT_GE(now.pop_wait_s, last.pop_wait_s);
      last = now;
    }

    // Everything sent to me was popped by me, so the deltas are exact.
    const auto end = comm.recv_stats();
    EXPECT_EQ(end.messages_popped - base.messages_popped,
              static_cast<std::uint64_t>(kMessages));
    EXPECT_EQ(end.bytes_popped - base.bytes_popped, expect_bytes);
    EXPECT_EQ(end.messages_pushed - base.messages_pushed,
              static_cast<std::uint64_t>(kMessages));
    EXPECT_EQ(end.bytes_pushed - base.bytes_pushed, expect_bytes);
    if (p > 1) {
      EXPECT_GE(end.peak_queue_depth, 1u);
    }
  });
}

// Barrier churn: the generation counter must strictly separate rounds even
// when ranks arrive with skewed timing.
TEST_P(CommStressRanks, BarrierStormSeparatesRounds) {
  const int p = GetParam();
  constexpr int kRounds = 200;
  std::vector<std::atomic<int>> arrived(kRounds);
  for (auto& a : arrived) a.store(0);
  run(p, [&](Communicator& comm) {
    Xoshiro256 rng(0xba221e5u + static_cast<std::uint64_t>(comm.rank()));
    for (int r = 0; r < kRounds; ++r) {
      // Random skew: some ranks burn a little time before arriving.
      volatile std::uint64_t sink = 0;
      const std::uint64_t spin = rng.next_u64() % 200;
      for (std::uint64_t i = 0; i < spin; ++i) sink = sink + i;
      arrived[static_cast<std::size_t>(r)].fetch_add(1);
      comm.barrier();
      EXPECT_EQ(arrived[static_cast<std::size_t>(r)].load(), p);
    }
  });
}

// Collectives interleaved with point-to-point ring traffic, many rounds.
TEST_P(CommStressRanks, CollectivesUnderP2PTraffic) {
  const int p = GetParam();
  constexpr int kRounds = 50;
  run(p, [&](Communicator& comm) {
    const int me = comm.rank();
    const int next = (me + 1) % p;
    const int prev = (me + p - 1) % p;
    for (int r = 0; r < kRounds; ++r) {
      // Ring traffic in flight across the collective below.
      const double token = me * 1000.0 + r;
      comm.send(next, 500, &token, 1);

      std::vector<double> acc(4);
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = me + r * 0.5 + static_cast<double>(i);
      comm.allreduce_sum(acc.data(), acc.size());
      for (std::size_t i = 0; i < acc.size(); ++i) {
        double expect = 0.0;
        for (int q = 0; q < p; ++q)
          expect += q + r * 0.5 + static_cast<double>(i);
        EXPECT_DOUBLE_EQ(acc[i], expect);
      }

      double got = 0.0;
      comm.recv(prev, 500, &got, 1);
      EXPECT_DOUBLE_EQ(got, prev * 1000.0 + r);
      EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(me)), p - 1.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommStressRanks,
                         ::testing::Values(2, 4, 8));

// A rank dies at a random point of a message storm while its peers are
// blocked in recv / handle-wait / barrier; every schedule must surface the
// original error (no hang, no AbortedError leaking out).
TEST(CommStress, AbortMidStormSurfacesOriginalError) {
  constexpr int p = 4;
  for (std::uint64_t round = 0; round < 12; ++round) {
    const int thrower = static_cast<int>(round % p);
    try {
      run(p, [&](Communicator& comm) {
        const int me = comm.rank();
        Xoshiro256 rng(0xabc0 + round * 131u + static_cast<std::uint64_t>(me));
        if (me == thrower) {
          // Emit some real traffic first so peers make partial progress.
          const std::uint64_t ops = rng.next_u64() % 8;
          for (std::uint64_t i = 0; i < ops; ++i) {
            const double v = static_cast<double>(i);
            comm.send(static_cast<int>((me + 1) % p), 700, &v, 1);
          }
          throw std::runtime_error("storm rank died");
        }
        // Peers park in different blocking primitives; whichever schedule
        // wins, the abort must wake all of them.
        switch (me % 3) {
          case 0: {
            double sink = 0.0;
            comm.recv(thrower, 900, &sink, 1);  // never sent
            break;
          }
          case 1: {
            auto handle = comm.irecv(thrower, 901);  // never sent
            handle.wait();
            break;
          }
          default:
            comm.barrier();  // thrower never arrives
            break;
        }
        FAIL() << "blocked peers must not resume normally";
      });
      FAIL() << "run() must rethrow the storm error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "storm rank died");
    }
  }
}

// ---------------------------------------------------------------------------
// Overlap-plan interleavings
// ---------------------------------------------------------------------------

// Encode a unique, exactly-representable float per (global cell, velocity
// slot): ghosts filled from a neighbor must reproduce the neighbor's
// interior values, so correctness of every interleaving is checkable from
// global coordinates alone.
float cell_value(int gx, int gy, int gz, std::size_t slot, int n,
                 std::size_t block) {
  return static_cast<float>(
      (static_cast<std::size_t>((gx * n + gy) * n + gz)) * block + slot);
}

struct BrickSetup {
  mesh::BrickDecomposition dec;
  vlasov::PhaseSpaceDims dims;
};

BrickSetup make_brick(comm::CartTopology& cart, int n_global, int nu) {
  BrickSetup s;
  s.dec = mesh::BrickDecomposition({n_global, n_global, n_global},
                                   cart.dims(), cart.coords());
  s.dims.nx = s.dec.local_n(0);
  s.dims.ny = s.dec.local_n(1);
  s.dims.nz = s.dec.local_n(2);
  s.dims.nux = s.dims.nuy = s.dims.nuz = nu;
  return s;
}

void fill_brick(vlasov::PhaseSpace& f, const mesh::BrickDecomposition& dec,
                int n_global) {
  const auto& d = f.dims();
  for (int i = 0; i < d.nx; ++i)
    for (int j = 0; j < d.ny; ++j)
      for (int k = 0; k < d.nz; ++k) {
        float* blk = f.block(i, j, k);
        for (std::size_t s = 0; s < f.block_size(); ++s)
          blk[s] = cell_value(dec.offset(0) + i, dec.offset(1) + j,
                              dec.offset(2) + k, s, n_global, f.block_size());
      }
}

// Check one ghost face of `axis` (at interior transverse positions, which
// is HaloPlan's contract) against the globally expected values.
void expect_face(const vlasov::PhaseSpace& f,
                 const mesh::BrickDecomposition& dec, int n_global, int axis,
                 bool low_side) {
  const auto& d = f.dims();
  const int n[3] = {d.nx, d.ny, d.nz};
  const int g = d.ghost;
  // Iterate the two transverse axes explicitly (ascending order).
  int ta = -1, tb = -1;
  for (int t = 0; t < 3; ++t) {
    if (t == axis) continue;
    (ta < 0 ? ta : tb) = t;
  }
  for (int layer = 0; layer < g; ++layer)
    for (int u = 0; u < n[ta]; ++u)
      for (int v = 0; v < n[tb]; ++v) {
        int idx[3];
        idx[axis] = low_side ? -g + layer : n[axis] + layer;
        idx[ta] = u;
        idx[tb] = v;
        int gidx[3] = {dec.offset(0) + idx[0], dec.offset(1) + idx[1],
                       dec.offset(2) + idx[2]};
        gidx[axis] = ((gidx[axis] % n_global) + n_global) % n_global;
        const float* blk = f.block(idx[0], idx[1], idx[2]);
        for (std::size_t s = 0; s < f.block_size(); ++s)
          ASSERT_EQ(blk[s], cell_value(gidx[0], gidx[1], gidx[2], s, n_global,
                                       f.block_size()))
              << "axis=" << axis << " low=" << low_side << " layer=" << layer;
      }
}

// All three overlap plans in flight at once on one communicator, finished
// in a random order per round — the production pipeline only ever holds a
// subset of these interleavings, so this is strictly harsher than the
// solver path.
TEST(CommStress, ConcurrentPlanBeginFinishInterleavings) {
  constexpr int kRanks = 4;
  constexpr int kGlobal = 8;  // local bricks 4x4x8 under a 2x2x1 split
  constexpr int kNu = 2;
  constexpr int kRounds = 6;
  run(kRanks, [&](Communicator& comm) {
    CartTopology cart(comm, CartTopology::choose_dims(kRanks));
    const auto setup = make_brick(cart, kGlobal, kNu);

    vlasov::PhaseSpace f(setup.dims, {});
    mesh::HaloPlan halo(cart, setup.dims, /*tag_base=*/1000);

    mesh::Grid3D<double> fold_grid(setup.dims.nx, setup.dims.ny,
                                   setup.dims.nz, /*ghost=*/2);
    mesh::GridFoldPlan fold(cart, /*tag_base=*/2000);

    fft::ParallelFft3D pfft(comm, kGlobal);
    mesh::BrickDecomposition mesh_dec({kGlobal, kGlobal, kGlobal},
                                      cart.dims(), cart.coords());
    parallel::SlabExchange slab(mesh_dec, pfft, cart, /*tag_base=*/3000);
    mesh::Grid3D<double> slab_brick(setup.dims.nx, setup.dims.ny,
                                    setup.dims.nz, /*ghost=*/0);

    Xoshiro256 rng(0x9e1a7u + static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      fill_brick(f, setup.dec, kGlobal);

      // Deterministic per-cell deposit including ghosts, so the fold
      // reference is computable on a copy.
      for (int i = -2; i < fold_grid.nx() + 2; ++i)
        for (int j = -2; j < fold_grid.ny() + 2; ++j)
          for (int k = -2; k < fold_grid.nz() + 2; ++k)
            fold_grid.at(i, j, k) =
                static_cast<double>(hash_mix(
                    static_cast<std::uint64_t>(comm.rank() + 1) * 1000000u +
                    static_cast<std::uint64_t>((i + 2) * 10000 +
                                               (j + 2) * 100 + (k + 2)) +
                    static_cast<std::uint64_t>(round) * 77u) %
                    1024) /
                16.0;
      mesh::Grid3D<double> fold_ref = fold_grid;

      for (int i = 0; i < slab_brick.nx(); ++i)
        for (int j = 0; j < slab_brick.ny(); ++j)
          for (int k = 0; k < slab_brick.nz(); ++k)
            slab_brick.at(i, j, k) = static_cast<double>(cell_value(
                mesh_dec.offset(0) + i, mesh_dec.offset(1) + j,
                mesh_dec.offset(2) + k, 0, kGlobal, 1));

      // Begin everything: three halo axes, the fold, and the slab
      // redistribution are now simultaneously in flight.
      for (int axis = 0; axis < 3; ++axis) halo.begin_axis(f, axis);
      fold.begin(fold_grid);
      slab.begin_to_slab(slab_brick);

      // Finish in a random order (per rank, per round).
      std::array<int, 5> finish_order = {0, 1, 2, 3, 4};
      for (std::size_t i = finish_order.size(); i > 1; --i)
        std::swap(finish_order[i - 1],
                  finish_order[static_cast<std::size_t>(rng.next_u64() % i)]);
      std::vector<fft::cplx>* slab_data = nullptr;
      for (int what : finish_order) {
        if (what < 3) {
          halo.finish_axis(f, what);
        } else if (what == 3) {
          fold.finish(fold_grid);
        } else {
          slab_data = &slab.finish_to_slab();
        }
      }

      // Halo ghosts must equal the periodic neighbors' interior values.
      for (int axis = 0; axis < 3; ++axis) {
        expect_face(f, setup.dec, kGlobal, axis, /*low_side=*/true);
        expect_face(f, setup.dec, kGlobal, axis, /*low_side=*/false);
      }

      // Fold must match the blocking reference (bit-identical contract).
      comm.barrier();  // separate plan traffic from the blocking reference
      mesh::fold_grid_halo(fold_ref, cart);
      for (int i = 0; i < fold_grid.nx(); ++i)
        for (int j = 0; j < fold_grid.ny(); ++j)
          for (int k = 0; k < fold_grid.nz(); ++k)
            ASSERT_EQ(fold_grid.at(i, j, k), fold_ref.at(i, j, k));

      // Slab rows must hold the global field; round-trip restores bricks.
      ASSERT_NE(slab_data, nullptr);
      for (int x = 0; x < pfft.local_nx(); ++x)
        for (int y = 0; y < kGlobal; ++y)
          for (int z = 0; z < kGlobal; ++z) {
            const auto& c =
                (*slab_data)[(static_cast<std::size_t>(x) * kGlobal + y) *
                                 kGlobal +
                             z];
            ASSERT_EQ(c.real(), static_cast<double>(cell_value(
                                    pfft.x_offset() + x, y, z, 0, kGlobal, 1)));
            ASSERT_EQ(c.imag(), 0.0);
          }
      slab.begin_to_brick(*slab_data);
      mesh::Grid3D<double> back(slab_brick.nx(), slab_brick.ny(),
                                slab_brick.nz(), 0);
      slab.finish_to_brick(back);
      for (int i = 0; i < back.nx(); ++i)
        for (int j = 0; j < back.ny(); ++j)
          for (int k = 0; k < back.nz(); ++k)
            ASSERT_EQ(back.at(i, j, k), slab_brick.at(i, j, k));

      comm.barrier();
    }
  });
}

// Abort landing while overlap plans are in flight: peers are waiting in
// finish_axis / finish_to_slab handle waits, not plain recv, which is the
// exact hang the PR-5 completion-handle abort path exists to prevent.
TEST(CommStress, AbortMidPlanOverlapWakesFinishers) {
  constexpr int kRanks = 4;
  constexpr int kGlobal = 8;
  constexpr int kNu = 2;
  for (std::uint64_t round = 0; round < 4; ++round) {
    const int thrower = static_cast<int>(round % kRanks);
    try {
      run(kRanks, [&](Communicator& comm) {
        CartTopology cart(comm, CartTopology::choose_dims(kRanks));
        const auto setup = make_brick(cart, kGlobal, kNu);
        vlasov::PhaseSpace f(setup.dims, {});
        mesh::HaloPlan halo(cart, setup.dims, 1000);
        fill_brick(f, setup.dec, kGlobal);

        if (comm.rank() == thrower)
          throw std::runtime_error("overlap rank died");

        // begin_axis's sends are buffered so they complete even with a
        // dead peer.  The thrower's cart-neighbors then block in
        // finish_axis handle waits on its never-sent faces and must be
        // woken with AbortedError; ranks that are not neighbors of the
        // dead rank legitimately finish (their faces all arrived) and
        // park in the barrier the thrower can never join.
        for (int axis = 0; axis < 3; ++axis) halo.begin_axis(f, axis);
        for (int axis = 0; axis < 3; ++axis) halo.finish_axis(f, axis);
        comm.barrier();
        FAIL() << "no rank may get past the dead rank's barrier";
      });
      FAIL() << "run() must rethrow the overlap error";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "overlap rank died");
    }
  }
}

// ---- storms over the transport seam ------------------------------------
// The same pressure the suites above apply to comm::run, pushed through
// run_transport + LaunchOptions::wrap so the Transport indirection and the
// FaultyTransport decorator sit on the hot path under TSan.

// Message storm through wrapped endpoints: every rank's transport is
// decorated with seeded random delays, which perturb thread schedules far
// more than the bare storm (sends park mid-flight while receivers spin).
TEST_P(CommStressRanks, MessageStormOverTransportSeamWithDelays) {
  const int p = GetParam();
  constexpr int kMessages = 24;
  LaunchOptions options;  // inproc: the storm exercises the seam itself
  options.wrap = [](std::unique_ptr<Transport> inner, int rank) {
    FaultPlan plan;
    plan.seed = 0xde1a + static_cast<std::uint64_t>(rank);
    plan.delay_prob = 0.15;
    plan.delay_ms = 0.2;
    return std::unique_ptr<Transport>(
        new FaultyTransport(std::move(inner), plan));
  };
  run_transport(p, options, [&](Communicator& comm) {
    const int me = comm.rank();
    EXPECT_STREQ(comm.transport().name(), "faulty");
    for (int s = 0; s < kMessages; ++s)
      for (int dst = 0; dst < p; ++dst) {
        if (dst == me) continue;
        std::vector<std::uint8_t> payload(storm_size(me, dst, s));
        for (std::size_t i = 0; i < payload.size(); ++i)
          payload[i] = storm_byte(me, s, i);
        comm.send(dst, 300, payload.data(), payload.size());
      }
    // Collectives interleave with the drain (they ride the transport's
    // internal channel, so they must not perturb inbox FIFO order).
    double sum = me;
    comm.allreduce_sum(&sum, 1);
    EXPECT_DOUBLE_EQ(sum, p * (p - 1) / 2.0);
    for (int src = 0; src < p; ++src) {
      if (src == me) continue;
      for (int s = 0; s < kMessages; ++s) {
        const auto payload = comm.recv_bytes(src, 300);
        ASSERT_EQ(payload.size(), storm_size(src, me, s));
        for (std::size_t i = 0; i < payload.size(); ++i)
          ASSERT_EQ(payload[i], storm_byte(src, s, i));
      }
    }
    comm.barrier();
  });
}

// A seeded drop lands mid-storm on one wrapped rank while its peers are
// parked across recv / handle-wait / barrier; every schedule must end in
// the decorator's TransportError — never a hang, never a leaked
// AbortedError.
TEST(CommStress, InjectedDropMidStormAbortsEverySchedule) {
  constexpr int p = 4;
  for (std::uint64_t round = 0; round < 8; ++round) {
    const int victim = static_cast<int>(round % p);
    LaunchOptions options;
    options.wrap = [&](std::unique_ptr<Transport> inner, int rank) {
      if (rank != victim) return inner;
      FaultPlan plan;
      plan.seed = 0xd809 + round;
      plan.drop_after = static_cast<long>(round % 5);
      return std::unique_ptr<Transport>(
          new FaultyTransport(std::move(inner), plan));
    };
    EXPECT_THROW(
        run_transport(p, options, [&](Communicator& comm) {
          const int me = comm.rank();
          // The wrap factory lambda's early return runs once at launch,
          // not in this rank body; every rank reaches this barrier.
          // v6d-analyze: allow(collective-consistency): early return is in the wrap factory lambda, not the rank body
          comm.barrier();
          if (me == victim) {
            for (int s = 0; s < 8; ++s) {
              const double v = s;
              comm.send((me + 1 + s) % p, 710, &v, 1);
            }
            FAIL() << "a drop must fire within the victim's 8 sends";
          }
          switch (me % 3) {
            case 0: {
              double sink = 0.0;
              comm.recv(victim, 910, &sink, 1);  // never sent
              break;
            }
            case 1: {
              auto handle = comm.irecv(victim, 911);  // never sent
              handle.wait();
              break;
            }
            default:
              // v6d-analyze: allow(collective-consistency): deliberately unmatched — the test asserts the injected drop aborts ranks parked here
              comm.barrier();  // victim never arrives
              break;
          }
          FAIL() << "no rank may outlive the injected drop";
        }),
        TransportError);
  }
}

// ---- abort vs liveness-deadline interleavings ---------------------------
// The detection tier of docs/ROBUSTNESS.md has two wake-up paths that can
// race: a rank dying loudly (abort fan-out over kAbort frames) and a rank
// going silent (missed liveness deadline).  These storms pin both across
// world sizes while peers park in every blocking primitive the solver
// uses; whatever interleaving the scheduler picks, every rank must be
// woken with a typed error — no failure path may hang.

class LivenessStormRanks : public ::testing::TestWithParam<int> {};

// Pure-timeout path: the last rank stops heartbeating and goes silent
// while everyone else is parked across recv / handle-wait / barrier /
// allreduce.  The deadline must wake all of them (and the silent rank
// itself, via the fan-out) with kPeerLost naming the victim.
TEST_P(LivenessStormRanks, SilentPeerWakesWaitersParkedEverywhere) {
  const int p = GetParam();
  const int victim = p - 1;
  LaunchOptions options;
  options.backend = "tcp";
  options.timeout_s = 30.0;
  options.liveness_timeout_s = 0.5;
  try {
    run_transport(p, options, [&](Communicator& comm) {
      const int me = comm.rank();
      comm.barrier();
      if (me == victim) {
        auto* tcp = dynamic_cast<TcpTransport*>(&comm.transport());
        ASSERT_NE(tcp, nullptr);
        tcp->debug_suppress_heartbeats();
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        double never = 0.0;
        comm.recv(0, 960, &never, 1);  // the fan-out diagnosis lands here
        FAIL() << "the silent rank must learn it was declared lost";
      }
      switch (me % 4) {
        case 0: {
          double sink = 0.0;
          comm.recv(victim, 960, &sink, 1);  // never sent
          break;
        }
        case 1: {
          auto handle = comm.irecv(victim, 961);  // never sent
          handle.wait();
          break;
        }
        case 2:
          comm.barrier();  // the silent victim never arrives
          break;
        default: {
          double sum = me;
          comm.allreduce_sum(&sum, 1);  // the victim never contributes
          break;
        }
      }
      FAIL() << "no survivor may outlive the missed deadline";
    });
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault(), TransportFault::kPeerLost);
    EXPECT_EQ(e.peer(), victim);
  }
}

// Race the two paths directly: the victim's deadline clock is armed
// (heartbeats suppressed) while rank 0 throws at a round-dependent offset
// inside the deadline window — before it on early rounds, after it on the
// last.  Either wake-up order must surface exactly one of the two typed
// errors on every schedule.
TEST_P(LivenessStormRanks, AbortRacingTheDeadlineNeverHangs) {
  const int p = GetParam();
  const int victim = p - 1;
  for (std::uint64_t round = 0; round < 3; ++round) {
    LaunchOptions options;
    options.backend = "tcp";
    options.timeout_s = 30.0;
    options.liveness_timeout_s = 0.5;
    bool threw = false;
    try {
      run_transport(p, options, [&](Communicator& comm) {
        const int me = comm.rank();
        comm.barrier();
        if (me == victim) {
          auto* tcp = dynamic_cast<TcpTransport*>(&comm.transport());
          ASSERT_NE(tcp, nullptr);
          tcp->debug_suppress_heartbeats();
        }
        if (me == 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(50 + static_cast<long>(round) * 240));
          throw std::runtime_error("storm abort rank died");
        }
        // The victim parks on the thrower; everyone else on the victim.
        const int peer = (me == victim) ? 0 : victim;
        switch (me % 4) {
          case 0: {
            double sink = 0.0;
            comm.recv(peer, 970, &sink, 1);  // never sent
            break;
          }
          case 1: {
            auto handle = comm.irecv(peer, 971);  // never sent
            handle.wait();
            break;
          }
          case 2:
            comm.barrier();  // the thrower never arrives
            break;
          default: {
            double sum = me;
            comm.allreduce_sum(&sum, 1);  // the thrower never contributes
            break;
          }
        }
        FAIL() << "no rank may outlive the abort/deadline race";
      });
      FAIL() << "run_transport must rethrow one of the racing errors";
    } catch (const std::exception& e) {
      threw = true;
      const std::string what = e.what();
      EXPECT_TRUE(what == "storm abort rank died" ||
                  what.find("liveness deadline") != std::string::npos)
          << "unexpected winner of the race: " << what;
    }
    EXPECT_TRUE(threw);
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, LivenessStormRanks,
                         ::testing::Values(2, 4, 8));

}  // namespace
