#include <gtest/gtest.h>
// v6d-analyze: allow-file(tag-space): conformance tests drive raw low tags on isolated per-test worlds; the kFirstUserTag floor governs production exchanges

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "comm/cart.hpp"
#include "comm/communicator.hpp"
#include "comm/perfmodel.hpp"
#include "comm/runner.hpp"

namespace {

using namespace v6d::comm;

class CommRanks : public ::testing::TestWithParam<int> {};

TEST_P(CommRanks, PointToPointRing) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() - 1 + p) % p;
    const double payload = 100.0 + comm.rank();
    comm.send(next, 1, &payload, 1);
    double got = 0.0;
    comm.recv(prev, 1, &got, 1);
    EXPECT_DOUBLE_EQ(got, 100.0 + prev);
  });
}

TEST_P(CommRanks, AllreduceSumMatchesSerial) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    std::vector<double> data(8);
    for (int i = 0; i < 8; ++i) data[static_cast<std::size_t>(i)] = comm.rank() * 10.0 + i;
    comm.allreduce_sum(data.data(), data.size());
    for (int i = 0; i < 8; ++i) {
      double expected = 0.0;
      for (int r = 0; r < p; ++r) expected += r * 10.0 + i;
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(i)], expected);
    }
  });
}

TEST_P(CommRanks, AllreduceMinMax) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    EXPECT_DOUBLE_EQ(comm.allreduce_max(static_cast<double>(comm.rank())),
                     p - 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_min(static_cast<double>(comm.rank())),
                     0.0);
  });
}

TEST_P(CommRanks, BroadcastFromEveryRoot) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      int value = comm.rank() == root ? 555 + root : -1;
      comm.bcast(&value, 1, root);
      EXPECT_EQ(value, 555 + root);
    }
  });
}

TEST_P(CommRanks, AllgatherOrdersByRank) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    const std::int32_t mine[2] = {comm.rank(), comm.rank() * comm.rank()};
    const auto all = comm.allgather(mine, 2);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * p));
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * r);
    }
  });
}

TEST_P(CommRanks, AlltoallTransposesBlocks) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    std::vector<std::int32_t> send(static_cast<std::size_t>(p)),
        recv(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      send[static_cast<std::size_t>(d)] = comm.rank() * 1000 + d;
    comm.alltoall(send.data(), recv.data(), 1);
    for (int s = 0; s < p; ++s)
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], s * 1000 + comm.rank());
  });
}

TEST_P(CommRanks, AlltoallvVariableSizes) {
  const int p = GetParam();
  run(p, [&](Communicator& comm) {
    std::vector<std::vector<std::uint8_t>> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      send[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(comm.rank() + d + 1),
          static_cast<std::uint8_t>(comm.rank() * 16 + d));
    const auto recv = comm.alltoallv(send);
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(),
                static_cast<std::size_t>(s + comm.rank() + 1));
      for (auto byte : recv[static_cast<std::size_t>(s)])
        EXPECT_EQ(byte, static_cast<std::uint8_t>(s * 16 + comm.rank()));
    }
  });
}

TEST_P(CommRanks, BarrierSeparatesPhases) {
  const int p = GetParam();
  std::atomic<int> phase_one{0};
  run(p, [&](Communicator& comm) {
    phase_one.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(phase_one.load(), p);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CommRanks, ::testing::Values(1, 2, 3, 4, 8));

TEST(Comm, TrafficCountersTrackBytes) {
  run(2, [&](Communicator& comm) {
    comm.reset_traffic_counters();
    const double payload[4] = {1, 2, 3, 4};
    comm.send(1 - comm.rank(), 9, payload, 4);
    double sink[4];
    comm.recv(1 - comm.rank(), 9, sink, 4);
    EXPECT_EQ(comm.bytes_sent(), 4 * sizeof(double));
    EXPECT_EQ(comm.messages_sent(), 1u);
  });
}

// Scripted all-to-all exchange with exact, deterministic traffic: every
// rank sends 3 messages of 8/16/24 bytes to every peer, so send-side and
// mailbox-side counters must agree to the byte.
void exchange_with_exact_counts(int p) {
  run(p, [&](Communicator& comm) {
    comm.barrier();
    const auto recv0 = comm.recv_stats();
    comm.barrier();  // nobody sends before every rank snapshots

    const std::uint8_t fill = static_cast<std::uint8_t>(comm.rank());
    std::vector<std::uint8_t> buf(24, fill);
    for (int peer = 0; peer < p; ++peer) {
      if (peer == comm.rank()) continue;
      for (int m = 1; m <= 3; ++m)
        comm.send(peer, 200 + m, buf.data(),
                  static_cast<std::size_t>(8 * m));
    }
    for (int peer = 0; peer < p; ++peer) {
      if (peer == comm.rank()) continue;
      for (int m = 1; m <= 3; ++m) {
        const auto payload = comm.recv_bytes(peer, 200 + m);
        ASSERT_EQ(payload.size(), static_cast<std::size_t>(8 * m));
        EXPECT_EQ(payload[0], static_cast<std::uint8_t>(peer));
      }
    }

    const auto peers = static_cast<std::uint64_t>(p - 1);
    EXPECT_EQ(comm.messages_sent(), 3 * peers);
    EXPECT_EQ(comm.bytes_sent(), (8u + 16u + 24u) * peers);
    for (int peer = 0; peer < p; ++peer) {
      if (peer == comm.rank()) {
        EXPECT_EQ(comm.messages_sent_to(peer), 0u);
        EXPECT_EQ(comm.bytes_sent_to(peer), 0u);
      } else {
        EXPECT_EQ(comm.messages_sent_to(peer), 3u);
        EXPECT_EQ(comm.bytes_sent_to(peer), 48u);
        const auto [msgs, bytes] = comm.received_from(peer);
        EXPECT_EQ(msgs, 3u);
        EXPECT_EQ(bytes, 48u);
      }
    }
    // Every rank popped everything it was sent, so the mailbox deltas are
    // exact (pushes happen-before the pops that drained them).
    const auto recv1 = comm.recv_stats();
    EXPECT_EQ(recv1.messages_popped - recv0.messages_popped, 3 * peers);
    EXPECT_EQ(recv1.bytes_popped - recv0.bytes_popped, 48 * peers);
    EXPECT_EQ(recv1.messages_pushed - recv0.messages_pushed, 3 * peers);
    EXPECT_EQ(recv1.bytes_pushed - recv0.bytes_pushed, 48 * peers);
    if (p > 1) {
      EXPECT_GE(recv1.peak_queue_depth, 1u);
    }
  });
}

TEST(Comm, ExchangeCountsAreExactTwoRanks) { exchange_with_exact_counts(2); }
TEST(Comm, ExchangeCountsAreExactFourRanks) { exchange_with_exact_counts(4); }

TEST(Comm, RecvWaitTimeAccumulates) {
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const double value = 1.5;
      comm.send(1, 3, &value, 1);
    } else {
      const double before = comm.recv_stats().pop_wait_s;
      double got = 0.0;
      comm.recv(0, 3, &got, 1);
      EXPECT_DOUBLE_EQ(got, 1.5);
      // The blocking recv waited for most of the sender's sleep.
      EXPECT_GT(comm.recv_stats().pop_wait_s - before, 0.02);
    }
  });
}

TEST(Comm, ResetClearsSendSideOnlyMailboxStatsAreMonotonic) {
  run(2, [&](Communicator& comm) {
    const double payload = 7.0;
    comm.send(1 - comm.rank(), 11, &payload, 1);
    double sink = 0.0;
    comm.recv(1 - comm.rank(), 11, &sink, 1);
    EXPECT_GT(comm.bytes_sent(), 0u);
    const auto before = comm.recv_stats();
    comm.reset_traffic_counters();
    EXPECT_EQ(comm.bytes_sent(), 0u);
    EXPECT_EQ(comm.messages_sent(), 0u);
    EXPECT_EQ(comm.bytes_sent_to(1 - comm.rank()), 0u);
    // The mailbox view is a lifetime total; reset must not rewind it.
    const auto after = comm.recv_stats();
    EXPECT_EQ(after.messages_popped, before.messages_popped);
    EXPECT_EQ(after.bytes_popped, before.bytes_popped);
    EXPECT_GE(after.messages_popped, 1u);
  });
}

TEST(Comm, ExceptionInRankPropagates) {
  EXPECT_THROW(run(2,
                   [&](Communicator& comm) {
                     comm.barrier();
                     if (comm.rank() == 1)
                       throw std::runtime_error("rank failure");
                   }),
               std::runtime_error);
}

TEST(Comm, ThrowingRankWakesPeerBlockedInRecv) {
  // Rank 0 blocks on a message rank 1 will never send; without the abort
  // path, join() would hang forever.  The original error must surface.
  try {
    run(2, [&](Communicator& comm) {
      if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
      double sink = 0.0;
      comm.recv(1, 42, &sink, 1);  // never satisfied
      FAIL() << "recv from a dead rank must not return";
    });
    FAIL() << "run() must rethrow the rank error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 died");
  }
}

TEST(Comm, ThrowingRankWakesPeersBlockedInBarrier) {
  try {
    run(4, [&](Communicator& comm) {
      if (comm.rank() == 3) throw std::runtime_error("rank 3 died");
      comm.barrier();  // can never complete: rank 3 will not arrive
      FAIL() << "barrier without a dead rank's arrival must not complete";
    });
    FAIL() << "run() must rethrow the rank error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 3 died");
  }
}

TEST(Comm, ThrowingRankWakesPeerBlockedInCollective) {
  // Collectives are built on the shared barrier; a dead rank must abort
  // them too, and the first real error wins over the unwind noise.
  try {
    run(2, [&](Communicator& comm) {
      if (comm.rank() == 0) throw std::runtime_error("rank 0 died");
      comm.allreduce_sum(1.0);
      FAIL() << "allreduce with a dead rank must not complete";
    });
    FAIL() << "run() must rethrow the rank error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died");
  }
}

TEST(Mailbox, TrimsDrainedQueues) {
  Mailbox mailbox;
  EXPECT_EQ(mailbox.queue_count(), 0u);
  // Many distinct (source, tag) pairs, as a long run cycling through
  // phase-scoped tags produces.
  for (int tag = 0; tag < 64; ++tag)
    mailbox.push(0, tag, std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(mailbox.queue_count(), 64u);
  for (int tag = 0; tag < 64; ++tag) {
    const auto payload = mailbox.pop(0, tag);
    EXPECT_EQ(payload.size(), 3u);
  }
  // Drained queues are erased, not kept as empty deques.
  EXPECT_EQ(mailbox.queue_count(), 0u);

  // FIFO order within a queue survives the trim logic.
  mailbox.push(2, 7, std::vector<std::uint8_t>{1});
  mailbox.push(2, 7, std::vector<std::uint8_t>{2});
  EXPECT_EQ(mailbox.queue_count(), 1u);
  EXPECT_EQ(mailbox.pop(2, 7)[0], 1);
  EXPECT_EQ(mailbox.pop(2, 7)[0], 2);
  EXPECT_EQ(mailbox.queue_count(), 0u);
}

TEST(Mailbox, TryPopIsNonBlockingAndFifo) {
  Mailbox mailbox;
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(mailbox.try_pop(0, 5, out));
  mailbox.push(0, 5, std::vector<std::uint8_t>{7});
  mailbox.push(0, 5, std::vector<std::uint8_t>{8});
  ASSERT_TRUE(mailbox.try_pop(0, 5, out));
  EXPECT_EQ(out[0], 7);
  ASSERT_TRUE(mailbox.try_pop(0, 5, out));
  EXPECT_EQ(out[0], 8);
  EXPECT_FALSE(mailbox.try_pop(0, 5, out));
  EXPECT_EQ(mailbox.queue_count(), 0u);
}

TEST(Comm, RecvHandleCompletesAfterOverlappedWork) {
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      // Post the receive *before* doing "interior work"; the peer's send
      // lands while we compute, so wait() returns without blocking.
      auto handle = comm.irecv(1, 9);
      comm.barrier();  // peer sends before this barrier
      double value = 0.0;
      handle.wait_into(&value, 1);
      EXPECT_DOUBLE_EQ(value, 3.5);
    } else {
      const double value = 3.5;
      comm.send(0, 9, &value, 1);
      comm.barrier();
    }
  });
}

TEST(Comm, RecvHandlesCompleteInPostOrder) {
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      auto first = comm.irecv(1, 4);
      auto second = comm.irecv(1, 4);
      EXPECT_EQ(second.wait()[0], 1);  // completion order == post order,
      EXPECT_EQ(first.wait()[0], 2);   // regardless of wait() order
    } else {
      const std::uint8_t a = 1, b = 2;
      comm.send(0, 4, &a, 1);
      comm.send(0, 4, &b, 1);
    }
  });
}

TEST(Comm, RecvHandleReadyDoesNotBlock) {
  run(2, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      auto handle = comm.irecv(1, 11);
      EXPECT_FALSE(handle.ready());  // nothing sent yet
      comm.barrier();
      while (!handle.ready()) {
      }  // arrives without this rank ever blocking
      EXPECT_EQ(handle.wait()[0], 5);
    } else {
      comm.barrier();
      const std::uint8_t v = 5;
      comm.send(0, 11, &v, 1);
    }
  });
}

TEST(Comm, ThrowingRankWakesPeerBlockedInHandleWait) {
  // The async-handle abort regression: a rank dying mid-overlap (between a
  // peer's irecv and its wait) must wake the waiter, and the original
  // error must surface instead of a hang or AbortedError.
  try {
    run(2, [&](Communicator& comm) {
      if (comm.rank() == 1) throw std::runtime_error("rank 1 died mid-overlap");
      auto handle = comm.irecv(1, 77);  // never satisfied
      handle.wait();
      FAIL() << "wait() on a dead rank's message must not return";
    });
    FAIL() << "run() must rethrow the rank error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 died mid-overlap");
  }
}

TEST(Comm, RunCollectGathersValues) {
  const auto values =
      run_collect(4, [](Communicator& comm) { return comm.rank() * 2.5; });
  ASSERT_EQ(values.size(), 4u);
  for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(r)], r * 2.5);
}

TEST(CartTopology, CoordsRoundTrip) {
  run(8, [&](Communicator& comm) {
    CartTopology cart(comm, {2, 2, 2});
    const auto c = cart.coords();
    EXPECT_EQ(cart.rank_of(c), comm.rank());
    // All coords within dims.
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_GE(c[static_cast<std::size_t>(axis)], 0);
      EXPECT_LT(c[static_cast<std::size_t>(axis)], 2);
    }
  });
}

TEST(CartTopology, NeighborsArePeriodic) {
  run(4, [&](Communicator& comm) {
    CartTopology cart(comm, {4, 1, 1});
    const auto nbr = cart.neighbors(0);
    const int me = cart.coords()[0];
    EXPECT_EQ(cart.coords_of(nbr[0])[0], (me + 3) % 4);
    EXPECT_EQ(cart.coords_of(nbr[1])[0], (me + 1) % 4);
    // Degenerate axes are self-neighbors.
    const auto nbr_y = cart.neighbors(1);
    EXPECT_EQ(nbr_y[0], comm.rank());
    EXPECT_EQ(nbr_y[1], comm.rank());
  });
}

TEST(CartTopology, ChooseDimsFactorizes) {
  for (int p : {1, 2, 3, 4, 6, 8, 12, 16, 24, 27, 36, 64, 96, 144}) {
    const auto dims = CartTopology::choose_dims(p);
    EXPECT_EQ(dims[0] * dims[1] * dims[2], p) << "p=" << p;
    EXPECT_GE(dims[0], dims[1]);
    EXPECT_GE(dims[1], dims[2]);
    // Near-cubic: max/min ratio bounded for highly composite counts.
    if (p == 8) {
      EXPECT_EQ(dims[0], 2);
    }
    if (p == 64) {
      EXPECT_EQ(dims[0], 4);
    }
  }
}

TEST(PerfModel, TimesScaleWithVolumeAndLatency) {
  NetworkModel net;
  net.alpha = 1e-6;
  net.beta = 1e9;
  EXPECT_DOUBLE_EQ(net.message_time(0), 1e-6);
  EXPECT_NEAR(net.message_time(1000000), 1e-6 + 1e-3, 1e-12);
  EXPECT_GT(net.allreduce_time(1024, 8), net.allreduce_time(2, 8));
  EXPECT_GT(net.alltoall_time(64, 1 << 20), net.alltoall_time(8, 1 << 20));
  EXPECT_DOUBLE_EQ(net.allreduce_time(1, 8), 0.0);
}

}  // namespace
