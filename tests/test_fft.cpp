#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/fft3d.hpp"
#include "fft/rfft.hpp"

namespace {

using namespace v6d::fft;

std::vector<cplx> random_signal(int n, unsigned seed) {
  std::vector<cplx> x(static_cast<std::size_t>(n));
  unsigned state = seed;
  auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return static_cast<double>(state) / 4294967296.0 - 0.5;
  };
  for (auto& v : x) v = cplx(next(), next());
  return x;
}

class Fft1dSizes : public ::testing::TestWithParam<int> {};

TEST_P(Fft1dSizes, MatchesReferenceDft) {
  const int n = GetParam();
  auto x = random_signal(n, 42);
  const auto ref = dft_reference(x, false);
  FftPlan plan(n);
  auto y = x;
  plan.forward(y.data());
  double scale = 0.0;
  for (const auto& v : ref) scale = std::max(scale, std::abs(v));
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(i)] -
                         ref[static_cast<std::size_t>(i)]),
                0.0, 1e-10 * std::max(1.0, scale))
        << "n=" << n << " bin " << i;
}

TEST_P(Fft1dSizes, RoundTripIsIdentity) {
  const int n = GetParam();
  auto x = random_signal(n, 7);
  auto y = x;
  FftPlan plan(n);
  plan.forward(y.data());
  plan.inverse_normalized(y.data());
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(y[static_cast<std::size_t>(i)] -
                         x[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
}

TEST_P(Fft1dSizes, ParsevalHolds) {
  const int n = GetParam();
  auto x = random_signal(n, 11);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.forward(x.data());
  double freq_energy = 0.0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * std::max(1.0, time_energy));
}

// Mixed-radix sizes (2^a 3^b 5^c 7^d), primes (Bluestein), and awkward
// composites.
INSTANTIATE_TEST_SUITE_P(Sizes, Fft1dSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12,
                                           15, 16, 20, 24, 27, 30, 32, 35,
                                           48, 49, 60, 64, 11, 13, 17, 31,
                                           97, 101, 22, 26, 33, 39, 55, 91));

TEST(Fft1d, DeltaFunctionHasFlatSpectrum) {
  const int n = 32;
  std::vector<cplx> x(n, cplx(0.0, 0.0));
  x[0] = cplx(1.0, 0.0);
  FftPlan plan(n);
  plan.forward(x.data());
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cplx(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft1d, SingleModeLandsInRightBin) {
  const int n = 24, mode = 5;
  std::vector<cplx> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * mode * i / n;
    x[static_cast<std::size_t>(i)] = cplx(std::cos(ang), std::sin(ang));
  }
  FftPlan plan(n);
  plan.forward(x.data());
  for (int k = 0; k < n; ++k) {
    const double expected = k == mode ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[static_cast<std::size_t>(k)]), expected, 1e-10)
        << "bin " << k;
  }
}

TEST(Fft3d, RoundTripAndSingleMode) {
  const int n = 12;
  Fft3D fft(n, n, n);
  std::vector<cplx> x(fft.size());
  // Plane wave along a mixed direction.
  const int mx = 2, my = 3, mz = 1;
  std::size_t o = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k, ++o) {
        const double ang = 2.0 * M_PI * (mx * i + my * j + mz * k) / n;
        x[o] = cplx(std::cos(ang), std::sin(ang));
      }
  auto y = x;
  fft.forward(y.data());
  o = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k, ++o) {
        const double expected =
            (i == mx && j == my && k == mz) ? static_cast<double>(n) * n * n
                                            : 0.0;
        ASSERT_NEAR(std::abs(y[o]), expected, 1e-7)
            << i << " " << j << " " << k;
      }
  fft.inverse_normalized(y.data());
  for (std::size_t q = 0; q < x.size(); ++q)
    ASSERT_NEAR(std::abs(y[q] - x[q]), 0.0, 1e-10);
}

TEST(Fft3d, AnisotropicShape) {
  Fft3D fft(4, 6, 8);
  std::vector<cplx> x(fft.size());
  unsigned state = 3;
  for (auto& v : x) {
    state = state * 1664525u + 1013904223u;
    v = cplx(state % 1000 / 1000.0, 0.0);
  }
  auto y = x;
  fft.forward(y.data());
  fft.inverse_normalized(y.data());
  for (std::size_t q = 0; q < x.size(); ++q)
    ASSERT_NEAR(std::abs(y[q] - x[q]), 0.0, 1e-11);
}

TEST(RealFft3d, HermitianSpectrumAndRoundTrip) {
  const int n = 8;
  RealFft3D rfft(n, n, n);
  std::vector<double> real(static_cast<std::size_t>(n) * n * n);
  unsigned state = 99;
  for (auto& v : real) {
    state = state * 1664525u + 1013904223u;
    v = state % 1000 / 500.0 - 1.0;
  }
  std::vector<cplx> spec(real.size());
  rfft.forward(real.data(), spec.data());
  // Hermitian symmetry: spec(-k) == conj(spec(k)).
  auto idx = [n](int i, int j, int k) {
    return (static_cast<std::size_t>(i) * n + j) * n + k;
  };
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        const auto conj_idx =
            idx((n - i) % n, (n - j) % n, (n - k) % n);
        ASSERT_NEAR(std::abs(spec[idx(i, j, k)] - std::conj(spec[conj_idx])),
                    0.0, 1e-9);
      }
  std::vector<double> back(real.size());
  rfft.inverse(spec.data(), back.data());
  for (std::size_t q = 0; q < real.size(); ++q)
    ASSERT_NEAR(back[q], real[q], 1e-11);
}

}  // namespace
