#include <gtest/gtest.h>

#include <cmath>

#include "cosmology/gaussian_field.hpp"
#include "cosmology/neutrino_ic.hpp"
#include "cosmology/power_spectrum.hpp"
#include "cosmology/zeldovich.hpp"
#include "diagnostics/spectra.hpp"
#include "mesh/deposit.hpp"
#include "vlasov/moments.hpp"

namespace {

using namespace v6d::cosmo;

TEST(GaussianField, RealizationIsDeterministic) {
  const int n = 16;
  const double box = 100.0;
  GaussianField grf(n, box, 42);
  v6d::mesh::Grid3D<double> a(n, n, n), b(n, n, n);
  auto pk = [](double k) { return 1e3 * std::exp(-k * k * 100.0); };
  grf.realize(pk, a);
  GaussianField grf2(n, box, 42);
  grf2.realize(pk, b);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        ASSERT_EQ(a.at(i, j, k), b.at(i, j, k));
}

TEST(GaussianField, DifferentSeedsDecorrelated) {
  const int n = 16;
  GaussianField g1(n, 100.0, 1), g2(n, 100.0, 2);
  v6d::mesh::Grid3D<double> a(n, n, n), b(n, n, n);
  auto pk = [](double) { return 10.0; };
  g1.realize(pk, a);
  g2.realize(pk, b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        dot += a.at(i, j, k) * b.at(i, j, k);
        na += a.at(i, j, k) * a.at(i, j, k);
        nb += b.at(i, j, k) * b.at(i, j, k);
      }
  EXPECT_LT(std::fabs(dot) / std::sqrt(na * nb), 0.1);
}

TEST(GaussianField, FieldIsRealAndMeanZero) {
  const int n = 16;
  GaussianField grf(n, 50.0, 9);
  v6d::mesh::Grid3D<double> delta(n, n, n);
  grf.realize([](double) { return 5.0; }, delta);
  EXPECT_NEAR(delta.sum_interior() / delta.interior_size(), 0.0, 1e-10);
}

TEST(GaussianField, MeasuredPowerMatchesInput) {
  // White-noise-in-k spectrum: every mode has the same expected power, so
  // the shell-averaged estimate converges well even on a small grid.
  const int n = 32;
  const double box = 64.0;
  const double p0 = 123.0;
  GaussianField grf(n, box, 77);
  v6d::mesh::Grid3D<double> delta(n, n, n);
  grf.realize([&](double) { return p0; }, delta);
  // measure_power expects a density; feed 1 + delta.
  v6d::mesh::Grid3D<double> rho(n, n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) rho.at(i, j, k) = 1.0 + delta.at(i, j, k);
  const auto bins = v6d::diag::measure_power(rho, box);
  // Average over mid-k bins (plenty of modes).
  double acc = 0.0;
  long modes = 0;
  for (std::size_t b = 3; b < bins.size() - 2; ++b) {
    acc += bins[b].power * static_cast<double>(bins[b].modes);
    modes += bins[b].modes;
  }
  EXPECT_NEAR(acc / static_cast<double>(modes), p0, 0.15 * p0);
}

TEST(GaussianField, DisplacementIsCurlFreeGradient) {
  // psi = grad(chi) with chi_k = delta_k/k^2 i... verify div psi == -delta
  // spectrally: div(ik/k^2 delta_k) = i^2 k^2/k^2... = -delta? Actually
  // div psi = i k . (i k / k^2) delta = -delta.  Check in real space with
  // finite differences at 2nd order tolerance.
  const int n = 32;
  const double box = 2.0 * M_PI;
  GaussianField grf(n, box, 3);
  v6d::mesh::Grid3D<double> delta(n, n, n), px(n, n, n, 1), py(n, n, n, 1),
      pz(n, n, n, 1);
  grf.realize_with_displacement(
      [](double k) { return std::exp(-k * k); }, delta, px, py, pz);
  px.fill_ghosts_periodic();
  py.fill_ghosts_periodic();
  pz.fill_ghosts_periodic();
  const double h = box / n;
  double rms_delta = 0.0, rms_err = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        const double div =
            (px.at(i + 1, j, k) - px.at(i - 1, j, k) + py.at(i, j + 1, k) -
             py.at(i, j - 1, k) + pz.at(i, j, k + 1) - pz.at(i, j, k - 1)) /
            (2.0 * h);
        const double err = div + delta.at(i, j, k);
        rms_err += err * err;
        rms_delta += delta.at(i, j, k) * delta.at(i, j, k);
      }
  EXPECT_LT(std::sqrt(rms_err / rms_delta), 0.1);  // 2nd-order FD residual
}

TEST(Zeldovich, ParticlesReproduceInputPower) {
  PowerSpectrum ps(Params::planck2015(0.0));
  const double box = 200.0;
  ZeldovichOptions opt;
  opt.particles_per_side = 32;
  opt.a_init = 0.1;
  opt.seed = 11;
  const auto ics = zeldovich_ics(ps, box, opt);
  EXPECT_EQ(ics.particles.size(), 32u * 32u * 32u);

  // Deposit and measure the power spectrum; compare against linear P(k)
  // in the well-sampled k range.
  const int ng = 32;
  v6d::mesh::Grid3D<double> rho(ng, ng, ng, 2);
  v6d::mesh::MeshPatch patch;
  patch.box = box;
  patch.n_global = ng;
  v6d::mesh::deposit(rho, patch, ics.particles.x, ics.particles.y,
                     ics.particles.z, ics.particles.mass,
                     v6d::mesh::Assignment::kCic);
  rho.fold_ghosts_periodic();
  const auto bins = v6d::diag::measure_power(rho, box);
  double ratio_sum = 0.0;
  int count = 0;
  for (std::size_t b = 2; b < 8; ++b) {
    const double expected = ps.matter(bins[b].k, opt.a_init);
    if (expected <= 0.0 || bins[b].modes == 0) continue;
    ratio_sum += bins[b].power / expected;
    ++count;
  }
  ASSERT_GT(count, 0);
  const double mean_ratio = ratio_sum / count;
  EXPECT_GT(mean_ratio, 0.5);
  EXPECT_LT(mean_ratio, 2.0);
}

TEST(Zeldovich, VelocitiesFollowDisplacements) {
  PowerSpectrum ps(Params::planck2015(0.0));
  ZeldovichOptions opt;
  opt.particles_per_side = 8;
  opt.a_init = 0.2;
  const auto ics = zeldovich_ics(ps, 100.0, opt);
  const auto& bg = ps.background();
  const double expect_factor =
      opt.a_init * opt.a_init * bg.hubble(opt.a_init) *
      bg.growth_rate(opt.a_init);
  // u = factor * displacement: check the ratio on particles with a
  // non-negligible displacement.
  const double spacing = 100.0 / 8;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < ics.particles.size(); ++i) {
    const int gx = static_cast<int>(i / 64), gy = static_cast<int>(i / 8 % 8),
              gz = static_cast<int>(i % 8);
    double dx = ics.particles.x[i] - (gx + 0.5) * spacing;
    if (dx > 50.0) dx -= 100.0;
    if (dx < -50.0) dx += 100.0;
    (void)gy;
    (void)gz;
    if (std::fabs(dx) < 0.05) continue;
    EXPECT_NEAR(ics.particles.ux[i] / dx, expect_factor,
                0.02 * std::fabs(expect_factor));
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(NeutrinoIc, PhaseSpaceDensityMatchesTarget) {
  using namespace v6d::vlasov;
  Params params = Params::planck2015(0.4);
  PowerSpectrum ps(params);
  const double box = 200.0;
  const int nx = 6, nu = 10;
  const double u_th = neutrino_thermal_velocity(params.m_nu_total_ev / 3.0);

  NeutrinoIcOptions opt;
  opt.a_init = 1.0 / 11.0;
  auto fields = neutrino_linear_fields(ps, box, nx, opt);

  PhaseSpaceDims dims;
  dims.nx = dims.ny = dims.nz = nx;
  dims.nux = dims.nuy = dims.nuz = nu;
  PhaseSpaceGeometry geom;
  geom.dx = geom.dy = geom.dz = box / nx;
  geom.umax = opt.umax_over_uth * u_th;
  geom.dux = geom.duy = geom.duz = 2.0 * geom.umax / nu;
  PhaseSpace f(dims, geom);
  initialize_neutrino_phase_space(f, params, u_th, fields.delta,
                                  &fields.bulk_x, &fields.bulk_y,
                                  &fields.bulk_z);

  // 0th moment must equal Omega_nu (1 + delta) cell by cell (discrete
  // renormalization guarantees this).
  v6d::mesh::Grid3D<double> rho(nx, nx, nx);
  compute_density(f, rho);
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < nx; ++j)
      for (int k = 0; k < nx; ++k) {
        const double target =
            params.omega_nu * (1.0 + fields.delta.at(i, j, k));
        ASSERT_NEAR(rho.at(i, j, k), target, 1e-5 * params.omega_nu);
      }
  // Total mass = Omega_nu * V within the delta fluctuation average.
  EXPECT_NEAR(f.total_mass(), params.omega_nu * box * box * box,
              0.05 * params.omega_nu * box * box * box);
}

TEST(NeutrinoIc, SampledParticlesHaveThermalSpread) {
  Params params = Params::planck2015(0.4);
  PowerSpectrum ps(params);
  const double u_th = neutrino_thermal_velocity(params.m_nu_total_ev / 3.0);
  NeutrinoIcOptions opt;
  auto p = sample_neutrino_particles(ps, 100.0, 8, u_th, opt);
  ASSERT_EQ(p.size(), 8u * 8u * 8u);
  double rms = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i)
    rms += p.ux[i] * p.ux[i] + p.uy[i] * p.uy[i] + p.uz[i] * p.uz[i];
  rms = std::sqrt(rms / static_cast<double>(p.size()));
  // rms speed of FD ~ 3.6 u_th; bulk flow adds a little.
  EXPECT_GT(rms, 2.5 * u_th);
  EXPECT_LT(rms, 5.0 * u_th);
}

}  // namespace
