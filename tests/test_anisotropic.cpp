// Anisotropic / quasi-low-dimensional configurations.
//
// Classic Vlasov test problems (two-stream, Landau-type setups) run in
// quasi-1D boxes: many cells along x, few along y/z.  These tests pin the
// generalized Poisson solver on non-cubic grids and the full solver stack
// on degenerate spatial shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "gravity/poisson.hpp"
#include "vlasov/solver.hpp"

namespace {

using namespace v6d;
using gravity::PoissonOptions;
using gravity::PoissonSolver;

TEST(AnisotropicPoisson, SinusoidExactOnNonCubicGrid) {
  // 16 x 4 x 8 grid over box lengths (2pi, 1, 3); a single x mode must be
  // solved exactly by the continuum Green function.
  const int nx = 16, ny = 4, nz = 8;
  PoissonSolver solver(nx, ny, nz, 2.0 * M_PI, 1.0, 3.0);
  mesh::Grid3D<double> rho(nx, ny, nz), phi(nx, ny, nz);
  const double k = 2.0;
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int l = 0; l < nz; ++l)
        rho.at(i, j, l) = std::cos(k * i * 2.0 * M_PI / nx);
  PoissonOptions opt;
  solver.solve(rho, phi, opt);
  for (int i = 0; i < nx; ++i)
    EXPECT_NEAR(phi.at(i, 1, 3),
                -std::cos(k * i * 2.0 * M_PI / nx) / (k * k), 1e-10)
        << i;
}

TEST(AnisotropicPoisson, ModeAlongShortAxis) {
  // The wavevector must use each axis's own box length: a j-mode on a
  // short y axis has a *large* k_y.
  const int nx = 4, ny = 12, nz = 4;
  const double ly = 3.0;
  PoissonSolver solver(nx, ny, nz, 10.0, ly, 10.0);
  mesh::Grid3D<double> rho(nx, ny, nz), phi(nx, ny, nz);
  const int m = 2;
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int l = 0; l < nz; ++l)
        rho.at(i, j, l) = std::sin(2.0 * M_PI * m * j / ny);
  PoissonOptions opt;
  solver.solve(rho, phi, opt);
  const double ky = 2.0 * M_PI * m / ly;
  for (int j = 0; j < ny; ++j)
    EXPECT_NEAR(phi.at(2, j, 1),
                -std::sin(2.0 * M_PI * m * j / ny) / (ky * ky), 1e-10)
        << j;
}

TEST(AnisotropicPoisson, ForcesMatchAnalyticGradient) {
  const int nx = 8, ny = 16, nz = 4;
  PoissonSolver solver(nx, ny, nz, 4.0, 2.0 * M_PI, 1.0);
  mesh::Grid3D<double> rho(nx, ny, nz), gx(nx, ny, nz), gy(nx, ny, nz),
      gz(nx, ny, nz);
  const int m = 3;
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      for (int l = 0; l < nz; ++l)
        rho.at(i, j, l) = std::sin(2.0 * M_PI * m * j / ny);
  PoissonOptions opt;
  solver.solve_forces(rho, gx, gy, gz, opt);
  // phi = -sin(m y)/m^2 (ky = m with Ly = 2pi) -> gy = cos(m y)/m.
  for (int j = 0; j < ny; ++j) {
    const double y = 2.0 * M_PI * j / ny;
    EXPECT_NEAR(gy.at(3, j, 2), std::cos(m * y) / m, 1e-10);
    EXPECT_NEAR(gx.at(3, j, 2), 0.0, 1e-10);
    EXPECT_NEAR(gz.at(3, j, 2), 0.0, 1e-10);
  }
}

vlasov::PhaseSpace quasi_1d_phase_space(int nx, int nu) {
  vlasov::PhaseSpaceDims d;
  d.nx = nx;
  d.ny = d.nz = 2;
  d.nux = nu;
  d.nuy = d.nuz = 4;
  vlasov::PhaseSpaceGeometry g;
  const double box = 2.0 * M_PI;
  g.dx = box / nx;
  g.dy = g.dz = box / 2;
  g.umax = 1.2;
  g.dux = 2.0 * g.umax / nu;
  g.duy = g.duz = 2.0 * g.umax / 4;
  return vlasov::PhaseSpace(d, g);
}

void fill_perturbed_maxwellian(vlasov::PhaseSpace& f, double amp,
                               double sigma) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const double n = 1.0 + amp * std::cos(g.x(ix));
        float* blk = f.block(ix, iy, iz);
        std::size_t v = 0;
        for (int a = 0; a < d.nux; ++a)
          for (int b = 0; b < d.nuy; ++b)
            for (int c = 0; c < d.nuz; ++c, ++v) {
              const double u2 = g.ux(a) * g.ux(a) + g.uy(b) * g.uy(b) +
                                g.uz(c) * g.uz(c);
              blk[v] = static_cast<float>(
                  n * std::exp(-u2 / (2.0 * sigma * sigma)));
            }
      }
}

TEST(Quasi1dSolver, RunsAndConservesMass) {
  auto f = quasi_1d_phase_space(16, 12);
  fill_perturbed_maxwellian(f, 0.05, 0.25);
  vlasov::VlasovSolverOptions opt;
  opt.four_pi_g = 1.0;
  vlasov::VlasovSolver solver(std::move(f), 2.0 * M_PI, opt);
  const double mass0 = solver.phase_space().total_mass();
  const double dt = 0.5 * solver.max_dt();
  for (int s = 0; s < 5; ++s) solver.step(dt);
  EXPECT_NEAR(solver.phase_space().total_mass(), mass0, 2e-4 * mass0);
  EXPECT_GE(solver.phase_space().min_interior(), 0.0f);
}

TEST(Quasi1dSolver, FreeStreamingDampsDensityMode) {
  // Collisionless (Landau-type) phase-mixing: without gravity, a seeded
  // density mode on a warm distribution decays as velocity spread shears
  // it apart in phase space — the physics of collisionless damping the
  // paper's neutrinos exhibit (§3: "suppress ... through collisionless
  // damping").
  auto f = quasi_1d_phase_space(24, 16);
  fill_perturbed_maxwellian(f, 0.1, 0.4);
  vlasov::VlasovSolverOptions opt;
  opt.self_gravity = false;
  mesh::Grid3D<double> zero(24, 2, 2);
  vlasov::VlasovSolver solver(std::move(f), 2.0 * M_PI, opt);
  solver.set_external_accel(&zero, &zero, &zero);

  auto mode_amp = [&]() {
    mesh::Grid3D<double> rho(24, 2, 2);
    vlasov::compute_density(solver.phase_space(), rho);
    double re = 0.0, im = 0.0;
    for (int i = 0; i < 24; ++i) {
      re += rho.at(i, 0, 0) * std::cos(2.0 * M_PI * i / 24);
      im += rho.at(i, 0, 0) * std::sin(2.0 * M_PI * i / 24);
    }
    return std::sqrt(re * re + im * im);
  };

  const double amp0 = mode_amp();
  const double dt = 0.5 * solver.max_dt();
  // Maxwellian phase mixing damps the mode as exp(-(k sigma t)^2 / 2):
  // with k = 1, sigma = 0.4, reaching t ~ 6 requires ~60 CFL-limited
  // steps and predicts a residual ~ exp(-2.9) ~ 6%.
  for (int s = 0; s < 60; ++s) solver.step(dt);
  EXPECT_LT(mode_amp(), 0.2 * amp0);
  // And well clear of the discrete recurrence time 2 pi / (k du) ~ 42.
}

TEST(Quasi1dSolver, GravityResistsDamping) {
  // The same configuration *with* strong self-gravity keeps (or grows)
  // the mode — gravitational support vs free streaming, the competition
  // that decides the neutrino suppression scale.
  auto make = [&](bool gravity) {
    auto f = quasi_1d_phase_space(24, 16);
    fill_perturbed_maxwellian(f, 0.1, 0.4);
    vlasov::VlasovSolverOptions opt;
    opt.self_gravity = gravity;
    opt.four_pi_g = 6.0;
    return vlasov::VlasovSolver(std::move(f), 2.0 * M_PI, opt);
  };
  auto grav = make(true);
  auto free_stream = make(false);
  mesh::Grid3D<double> zero(24, 2, 2);
  free_stream.set_external_accel(&zero, &zero, &zero);

  auto mode_amp = [](vlasov::VlasovSolver& s) {
    mesh::Grid3D<double> rho(24, 2, 2);
    vlasov::compute_density(s.phase_space(), rho);
    double re = 0.0, im = 0.0;
    for (int i = 0; i < 24; ++i) {
      re += rho.at(i, 0, 0) * std::cos(2.0 * M_PI * i / 24);
      im += rho.at(i, 0, 0) * std::sin(2.0 * M_PI * i / 24);
    }
    return std::sqrt(re * re + im * im);
  };
  const double dt = 0.4 * grav.max_dt();
  for (int s = 0; s < 40; ++s) {
    grav.step(dt);
    free_stream.step(dt);
  }
  EXPECT_GT(mode_amp(grav), 2.0 * mode_amp(free_stream));
}

}  // namespace
