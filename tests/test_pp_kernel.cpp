#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gravity/pp_kernel.hpp"

namespace {

using namespace v6d::gravity;

TEST(ShortrangeS, LimitsAndMonotonicity) {
  EXPECT_NEAR(shortrange_s(0.0), 1.0, 1e-14);   // no cut at r = 0
  EXPECT_LT(shortrange_s(4.0), 1e-5);           // fully cut far away
  double prev = shortrange_s(0.0);
  for (double u = 0.1; u < 4.0; u += 0.1) {
    const double s = shortrange_s(u);
    EXPECT_LT(s, prev + 1e-12) << u;  // monotonically decreasing
    prev = s;
  }
}

TEST(CutoffPoly, FitsBelowTolerance) {
  const CutoffPoly poly(2.25, 14);
  EXPECT_LT(poly.max_fit_error(), 5e-6);
}

TEST(CutoffPoly, ZeroBeyondCutoff) {
  const CutoffPoly poly(2.0, 12);
  EXPECT_EQ(poly.eval(2.001f), 0.0f);
  EXPECT_GT(poly.eval(0.0f), 0.99f);
}

struct PpFixture : ::testing::Test {
  void SetUp() override {
    v6d::Xoshiro256 rng(1234);
    const int ns = 200, nt = 16;
    for (int i = 0; i < ns; ++i) {
      sx.push_back(rng.next_double() * 2.0 - 1.0);
      sy.push_back(rng.next_double() * 2.0 - 1.0);
      sz.push_back(rng.next_double() * 2.0 - 1.0);
      sm.push_back(0.5 + rng.next_double());
    }
    for (int i = 0; i < nt; ++i) {
      tx.push_back(rng.next_double() * 2.0 - 1.0);
      ty.push_back(rng.next_double() * 2.0 - 1.0);
      tz.push_back(rng.next_double() * 2.0 - 1.0);
    }
  }
  std::vector<double> sx, sy, sz, sm, tx, ty, tz;
};

TEST_F(PpFixture, SimdMatchesScalarNoCutoff) {
  PpKernelParams params;
  params.eps = 0.05;
  std::vector<double> ax(tx.size(), 0.0), ay(tx.size(), 0.0),
      az(tx.size(), 0.0);
  pp_accumulate_scalar(tx.data(), ty.data(), tz.data(), tx.size(), sx.data(),
                       sy.data(), sz.data(), sm.data(), sx.size(), params,
                       ax.data(), ay.data(), az.data());

  std::vector<float> fsx(sx.begin(), sx.end()), fsy(sy.begin(), sy.end()),
      fsz(sz.begin(), sz.end()), fsm(sm.begin(), sm.end()),
      ftx(tx.begin(), tx.end()), fty(ty.begin(), ty.end()),
      ftz(tz.begin(), tz.end());
  std::vector<float> fax(tx.size(), 0.0f), fay(tx.size(), 0.0f),
      faz(tx.size(), 0.0f);
  CutoffPoly poly(3.0, 12);
  pp_accumulate_simd(ftx.data(), fty.data(), ftz.data(), ftx.size(),
                     fsx.data(), fsy.data(), fsz.data(), fsm.data(),
                     fsx.size(), params, poly, fax.data(), fay.data(),
                     faz.data());
  for (std::size_t i = 0; i < tx.size(); ++i) {
    const double scale = std::fabs(ax[i]) + std::fabs(ay[i]) +
                         std::fabs(az[i]) + 1.0;
    EXPECT_NEAR(fax[i], ax[i], 2e-4 * scale) << i;
    EXPECT_NEAR(fay[i], ay[i], 2e-4 * scale) << i;
    EXPECT_NEAR(faz[i], az[i], 2e-4 * scale) << i;
  }
}

TEST_F(PpFixture, SimdMatchesScalarWithSplitCutoff) {
  PpKernelParams params;
  params.eps = 0.05;
  params.rs = 0.15;
  params.rcut = 4.5 * params.rs;
  std::vector<double> ax(tx.size(), 0.0), ay(tx.size(), 0.0),
      az(tx.size(), 0.0);
  pp_accumulate_scalar(tx.data(), ty.data(), tz.data(), tx.size(), sx.data(),
                       sy.data(), sz.data(), sm.data(), sx.size(), params,
                       ax.data(), ay.data(), az.data());

  std::vector<float> fsx(sx.begin(), sx.end()), fsy(sy.begin(), sy.end()),
      fsz(sz.begin(), sz.end()), fsm(sm.begin(), sm.end()),
      ftx(tx.begin(), tx.end()), fty(ty.begin(), ty.end()),
      ftz(tz.begin(), tz.end());
  std::vector<float> fax(tx.size(), 0.0f), fay(tx.size(), 0.0f),
      faz(tx.size(), 0.0f);
  CutoffPoly poly(params.rcut / (2.0 * params.rs), 14);
  pp_accumulate_simd(ftx.data(), fty.data(), ftz.data(), ftx.size(),
                     fsx.data(), fsy.data(), fsz.data(), fsm.data(),
                     fsx.size(), params, poly, fax.data(), fay.data(),
                     faz.data());
  double worst = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < tx.size(); ++i) {
    worst = std::max({worst, std::fabs(fax[i] - ax[i]),
                      std::fabs(fay[i] - ay[i]), std::fabs(faz[i] - az[i])});
    norm = std::max({norm, std::fabs(ax[i]), std::fabs(ay[i]),
                     std::fabs(az[i])});
  }
  EXPECT_LT(worst, 5e-4 * std::max(norm, 1.0));
}

TEST(PpKernel, NewtonThirdLawPair) {
  // Two particles exert equal and opposite forces.
  PpKernelParams params;
  params.eps = 0.0;
  const double px[2] = {0.0, 1.0}, py[2] = {0.0, 0.0}, pz[2] = {0.0, 0.0};
  const double m[2] = {2.0, 3.0};
  double ax[2] = {0, 0}, ay[2] = {0, 0}, az[2] = {0, 0};
  pp_accumulate_scalar(px, py, pz, 2, px, py, pz, m, 2, params, ax, ay, az);
  // a0 = +m1/r^2 = 3, a1 = -m0/r^2 = -2 (acceleration, not force).
  EXPECT_NEAR(ax[0], 3.0, 1e-12);
  EXPECT_NEAR(ax[1], -2.0, 1e-12);
  // Momentum: m0 a0 + m1 a1 = 0.
  EXPECT_NEAR(m[0] * ax[0] + m[1] * ax[1], 0.0, 1e-12);
}

TEST(PpKernel, InverseSquareLaw) {
  PpKernelParams params;
  const double sx[1] = {0.0}, sy[1] = {0.0}, sz[1] = {0.0}, sm[1] = {1.0};
  double prev = 1e30;
  for (double r : {1.0, 2.0, 4.0}) {
    const double tx[1] = {r}, ty[1] = {0.0}, tz[1] = {0.0};
    double ax[1] = {0}, ay[1] = {0}, az[1] = {0};
    pp_accumulate_scalar(tx, ty, tz, 1, sx, sy, sz, sm, 1, params, ax, ay,
                         az);
    EXPECT_NEAR(ax[0], -1.0 / (r * r), 1e-12);
    EXPECT_LT(std::fabs(ax[0]), prev);
    prev = std::fabs(ax[0]);
  }
}

TEST(PpKernel, SofteningBoundsCloseForce) {
  PpKernelParams params;
  params.eps = 0.1;
  const double sx[1] = {0.0}, sy[1] = {0.0}, sz[1] = {0.0}, sm[1] = {1.0};
  const double tx[1] = {1e-6}, ty[1] = {0.0}, tz[1] = {0.0};
  double ax[1] = {0}, ay[1] = {0}, az[1] = {0};
  pp_accumulate_scalar(tx, ty, tz, 1, sx, sy, sz, sm, 1, params, ax, ay, az);
  EXPECT_LT(std::fabs(ax[0]), 1.0 / (params.eps * params.eps));
}

}  // namespace
