#include <gtest/gtest.h>

#include <cmath>

#include "vlasov/phase_space.hpp"

namespace {

using namespace v6d::vlasov;

PhaseSpace make_ps(int nx, int nu) {
  PhaseSpaceDims d;
  d.nx = d.ny = d.nz = nx;
  d.nux = d.nuy = d.nuz = nu;
  PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = 1.0;
  g.umax = 1.0;
  g.dux = g.duy = g.duz = 2.0 / nu;
  return PhaseSpace(d, g);
}

TEST(PhaseSpace, GeometryCellCenters) {
  PhaseSpaceGeometry g;
  g.x0 = 10.0;
  g.dx = 2.0;
  g.umax = 4.0;
  g.dux = 1.0;
  EXPECT_DOUBLE_EQ(g.x(0), 11.0);
  EXPECT_DOUBLE_EQ(g.x(3), 17.0);
  EXPECT_DOUBLE_EQ(g.ux(0), -3.5);
  EXPECT_DOUBLE_EQ(g.ux(7), 3.5);
}

TEST(PhaseSpace, BlockLayoutMatchesListOne) {
  // Velocity block of a spatial cell must be contiguous with uz innermost
  // (the paper's List 1 layout that the LAT method depends on).
  auto f = make_ps(4, 6);
  float* b = f.block(1, 2, 3);
  EXPECT_EQ(&f.at(1, 2, 3, 0, 0, 1) - b, 1);
  EXPECT_EQ(&f.at(1, 2, 3, 0, 1, 0) - b, 6);
  EXPECT_EQ(&f.at(1, 2, 3, 1, 0, 0) - b, 36);
}

TEST(PhaseSpace, SpatialStridesInBlocks) {
  auto f = make_ps(4, 4);
  const auto bs = static_cast<std::ptrdiff_t>(f.block_size());
  EXPECT_EQ(f.block(0, 0, 1) - f.block(0, 0, 0), bs * 1);
  EXPECT_EQ(f.block(0, 1, 0) - f.block(0, 0, 0),
            bs * static_cast<std::ptrdiff_t>(f.block_stride_y()));
  EXPECT_EQ(f.block(1, 0, 0) - f.block(0, 0, 0),
            bs * static_cast<std::ptrdiff_t>(f.block_stride_x()));
}

TEST(PhaseSpace, TotalMassIntegratesPhaseSpaceVolume) {
  auto f = make_ps(3, 4);
  f.fill(0.0f);
  // One phase-space cell with f = 2.0.
  f.at(1, 1, 1, 2, 2, 2) = 2.0f;
  const double expected = 2.0 * f.geom().du3() * f.geom().dvol();
  EXPECT_NEAR(f.total_mass(), expected, 1e-12);
}

TEST(PhaseSpace, GhostFillPeriodicWrapsAllAxes) {
  auto f = make_ps(3, 2);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 3; ++k)
        f.at(i, j, k, 0, 0, 0) = static_cast<float>(100 * i + 10 * j + k);
  f.fill_ghosts_periodic();
  EXPECT_FLOAT_EQ(f.at(-1, 0, 0, 0, 0, 0), f.at(2, 0, 0, 0, 0, 0));
  EXPECT_FLOAT_EQ(f.at(3, 1, 2, 0, 0, 0), f.at(0, 1, 2, 0, 0, 0));
  EXPECT_FLOAT_EQ(f.at(-2, -3, 4, 0, 0, 0), f.at(1, 0, 1, 0, 0, 0));
}

TEST(PhaseSpace, MinInteriorIgnoresGhosts) {
  auto f = make_ps(3, 2);
  f.fill(1.0f);
  f.at(-1, 0, 0, 0, 0, 0) = -5.0f;  // ghost: must not count
  EXPECT_FLOAT_EQ(f.min_interior(), 1.0f);
  f.at(2, 2, 2, 1, 1, 1) = -0.5f;
  EXPECT_FLOAT_EQ(f.min_interior(), -0.5f);
}

TEST(PhaseSpace, DimsHelpers) {
  PhaseSpaceDims d;
  d.nx = 2;
  d.ny = 3;
  d.nz = 4;
  d.nux = 5;
  d.nuy = 6;
  d.nuz = 7;
  EXPECT_EQ(d.spatial_cells(), 24u);
  EXPECT_EQ(d.velocity_cells(), 210u);
  EXPECT_EQ(d.total_interior(), 24u * 210u);
}

}  // namespace
