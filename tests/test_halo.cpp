#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "comm/runner.hpp"
#include "mesh/decomposition.hpp"
#include "mesh/halo.hpp"
#include "mesh/halo_plan.hpp"

namespace {

using namespace v6d;

// Global analytic value for a (grid, velocity) index.
float cell_value(int gx, int gy, int gz, std::size_t v) {
  return static_cast<float>(gx * 10000 + gy * 100 + gz) +
         static_cast<float>(v) * 1e-4f;
}

class HaloRanks : public ::testing::TestWithParam<int> {};

TEST_P(HaloRanks, PhaseSpaceHaloMatchesGlobalPeriodicField) {
  const int p = GetParam();
  const int n_global = 8;
  const int nu = 2;
  comm::run(p, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, comm::CartTopology::choose_dims(p));
    mesh::BrickDecomposition dec({n_global, n_global, n_global}, cart.dims(),
                                 cart.coords());
    vlasov::PhaseSpaceDims dims;
    dims.nx = dec.local_n(0);
    dims.ny = dec.local_n(1);
    dims.nz = dec.local_n(2);
    dims.nux = dims.nuy = dims.nuz = nu;
    vlasov::PhaseSpaceGeometry geom;
    vlasov::PhaseSpace f(dims, geom);

    for (int i = 0; i < dims.nx; ++i)
      for (int j = 0; j < dims.ny; ++j)
        for (int k = 0; k < dims.nz; ++k) {
          float* blk = f.block(i, j, k);
          for (std::size_t v = 0; v < f.block_size(); ++v)
            blk[v] = cell_value(dec.offset(0) + i, dec.offset(1) + j,
                                dec.offset(2) + k, v);
        }

    mesh::exchange_phase_space_halo(f, cart);

    const int g = dims.ghost;
    auto wrap = [&](int i) { return ((i % n_global) + n_global) % n_global; };
    for (int i = -g; i < dims.nx + g; ++i)
      for (int j = -g; j < dims.ny + g; ++j)
        for (int k = -g; k < dims.nz + g; ++k) {
          const float* blk = f.block(i, j, k);
          const int gx = wrap(dec.offset(0) + i);
          const int gy = wrap(dec.offset(1) + j);
          const int gz = wrap(dec.offset(2) + k);
          for (std::size_t v = 0; v < f.block_size(); ++v)
            ASSERT_FLOAT_EQ(blk[v], cell_value(gx, gy, gz, v))
                << "rank " << comm.rank() << " cell " << i << "," << j << ","
                << k;
        }
  });
}

TEST_P(HaloRanks, GridHaloMatchesGlobalField) {
  const int p = GetParam();
  const int n_global = 12;
  comm::run(p, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, comm::CartTopology::choose_dims(p));
    mesh::BrickDecomposition dec({n_global, n_global, n_global}, cart.dims(),
                                 cart.coords());
    mesh::Grid3D<double> grid(dec.local_n(0), dec.local_n(1), dec.local_n(2),
                              2);
    for (int i = 0; i < grid.nx(); ++i)
      for (int j = 0; j < grid.ny(); ++j)
        for (int k = 0; k < grid.nz(); ++k)
          grid.at(i, j, k) = (dec.offset(0) + i) * 1e4 +
                             (dec.offset(1) + j) * 1e2 + (dec.offset(2) + k);
    mesh::exchange_grid_halo(grid, cart);
    auto wrap = [&](int i) { return ((i % n_global) + n_global) % n_global; };
    for (int i = -2; i < grid.nx() + 2; ++i)
      for (int j = -2; j < grid.ny() + 2; ++j)
        for (int k = -2; k < grid.nz() + 2; ++k) {
          const double expected = wrap(dec.offset(0) + i) * 1e4 +
                                  wrap(dec.offset(1) + j) * 1e2 +
                                  wrap(dec.offset(2) + k);
          ASSERT_DOUBLE_EQ(grid.at(i, j, k), expected);
        }
  });
}

TEST_P(HaloRanks, FoldHaloAccumulatesDepositsOnce) {
  const int p = GetParam();
  const int n_global = 8;
  comm::run(p, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, comm::CartTopology::choose_dims(p));
    mesh::BrickDecomposition dec({n_global, n_global, n_global}, cart.dims(),
                                 cart.coords());
    mesh::Grid3D<double> grid(dec.local_n(0), dec.local_n(1), dec.local_n(2),
                              1);
    // Every rank deposits 1.0 into *every* cell of its extended region
    // (interior + ghosts).  After folding, each interior cell must hold
    // exactly the number of extended regions that cover its global index.
    for (int i = -1; i < grid.nx() + 1; ++i)
      for (int j = -1; j < grid.ny() + 1; ++j)
        for (int k = -1; k < grid.nz() + 1; ++k) grid.at(i, j, k) = 1.0;
    mesh::fold_grid_halo(grid, cart);

    // Each global cell collects one contribution per covering *image* of
    // every rank's extended region (interior + 1-cell ghost ring); with
    // few ranks per axis the same rank can cover a cell through multiple
    // periodic images (e.g. single-rank axes fold their own ghosts back).
    auto coverage = [&](int gx, int gy, int gz) {
      int count = 0;
      for (int cx = 0; cx < cart.dims()[0]; ++cx)
        for (int cy = 0; cy < cart.dims()[1]; ++cy)
          for (int cz = 0; cz < cart.dims()[2]; ++cz) {
            mesh::BrickDecomposition d2(
                {n_global, n_global, n_global}, cart.dims(), {cx, cy, cz});
            auto images = [&](int g, int axis) {
              int n_img = 0;
              for (int img = -1; img <= 1; ++img) {
                const int local = g + img * n_global - d2.offset(axis);
                if (local >= -1 && local <= d2.local_n(axis)) ++n_img;
              }
              return n_img;
            };
            count += images(gx, 0) * images(gy, 1) * images(gz, 2);
          }
      return count;
    };
    for (int i = 0; i < grid.nx(); ++i)
      for (int j = 0; j < grid.ny(); ++j)
        for (int k = 0; k < grid.nz(); ++k) {
          const int expected = coverage(dec.offset(0) + i, dec.offset(1) + j,
                                        dec.offset(2) + k);
          ASSERT_DOUBLE_EQ(grid.at(i, j, k), expected)
              << i << " " << j << " " << k;
        }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, HaloRanks, ::testing::Values(1, 2, 4, 8));

TEST(HaloValidation, RejectsDecomposedAxisThinnerThanGhost) {
  // 4 cells split over 4 ranks -> local extent 1 < ghost 3: the pack would
  // read out-of-range interior; the exchange must refuse instead.
  EXPECT_THROW(
      comm::run(4,
                [&](comm::Communicator& comm) {
                  comm::CartTopology cart(comm, {4, 1, 1});
                  mesh::BrickDecomposition dec({4, 4, 4}, cart.dims(),
                                               cart.coords());
                  vlasov::PhaseSpaceDims dims;
                  dims.nx = dec.local_n(0);
                  dims.ny = dec.local_n(1);
                  dims.nz = dec.local_n(2);
                  dims.nux = dims.nuy = dims.nuz = 2;
                  vlasov::PhaseSpace f(dims, vlasov::PhaseSpaceGeometry{});
                  mesh::exchange_phase_space_halo(f, cart);
                }),
      std::invalid_argument);

  EXPECT_THROW(
      comm::run(4,
                [&](comm::Communicator& comm) {
                  comm::CartTopology cart(comm, {4, 1, 1});
                  mesh::Grid3D<double> grid(1, 8, 8, 2);  // 1 < ghost 2
                  mesh::exchange_grid_halo(grid, cart);
                }),
      std::invalid_argument);

  EXPECT_THROW(
      comm::run(4,
                [&](comm::Communicator& comm) {
                  comm::CartTopology cart(comm, {4, 1, 1});
                  mesh::Grid3D<double> grid(1, 8, 8, 2);
                  mesh::fold_grid_halo(grid, cart);
                }),
      std::invalid_argument);
}

TEST(HaloValidation, UndecomposedAxisThinnerThanGhostWrapsPeriodically) {
  // ny = nz = 2 with ghost 3 (the quasi-1D two_stream shape): the halo of
  // the undecomposed axes must be the periodic wrap — a self-send of
  // "interior slabs" would read out-of-range cells.
  const int n_global = 8, thin = 2, nu = 2;
  comm::run(2, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, {2, 1, 1});
    mesh::BrickDecomposition dec({n_global, thin, thin}, cart.dims(),
                                 cart.coords());
    vlasov::PhaseSpaceDims dims;
    dims.nx = dec.local_n(0);
    dims.ny = thin;
    dims.nz = thin;
    dims.nux = dims.nuy = dims.nuz = nu;
    vlasov::PhaseSpaceGeometry geom;
    vlasov::PhaseSpace f(dims, geom);
    for (int i = 0; i < dims.nx; ++i)
      for (int j = 0; j < dims.ny; ++j)
        for (int k = 0; k < dims.nz; ++k) {
          float* blk = f.block(i, j, k);
          for (std::size_t v = 0; v < f.block_size(); ++v)
            blk[v] = cell_value(dec.offset(0) + i, j, k, v);
        }

    mesh::exchange_phase_space_halo(f, cart);

    const int g = dims.ghost;
    auto wrap = [](int i, int n) { return ((i % n) + n) % n; };
    for (int i = -g; i < dims.nx + g; ++i)
      for (int j = -g; j < dims.ny + g; ++j)
        for (int k = -g; k < dims.nz + g; ++k) {
          const float* blk = f.block(i, j, k);
          const int gx = wrap(dec.offset(0) + i, n_global);
          for (std::size_t v = 0; v < f.block_size(); ++v)
            ASSERT_FLOAT_EQ(blk[v],
                            cell_value(gx, wrap(j, thin), wrap(k, thin), v))
                << "rank " << comm.rank() << " cell " << i << "," << j << ","
                << k;
        }
  });
}

TEST(HaloValidation, FoldAcrossThinUndecomposedAxesAccumulatesOnce) {
  // Deposit-style fold on an (8, 2, 2) grid split 2 ways along x; the thin
  // y/z axes (extent 2 < ghost 2+... ) wrap multiple times, so the fold
  // must place every ghost contribution on its periodic image exactly
  // once.  With all-ones deposits the result is a pure coverage count, and
  // the fold must conserve the deposited total.
  const int nx = 8, thin = 2, ghost = 2;
  comm::run(2, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, {2, 1, 1});
    mesh::BrickDecomposition dec({nx, thin, thin}, cart.dims(),
                                 cart.coords());
    mesh::Grid3D<double> grid(dec.local_n(0), thin, thin, ghost);
    for (int i = -ghost; i < grid.nx() + ghost; ++i)
      for (int j = -ghost; j < thin + ghost; ++j)
        for (int k = -ghost; k < thin + ghost; ++k) grid.at(i, j, k) = 1.0;
    const double deposited =
        static_cast<double>(grid.nx() + 2 * ghost) * (thin + 2 * ghost) *
        (thin + 2 * ghost);
    mesh::fold_grid_halo(grid, cart);

    // Images of global index g covered by an extended region of extent
    // `local` at `off` along an axis of global size `n` (multi-wrap aware).
    auto images = [&](int g, int n, int off, int local) {
      int count = 0;
      for (int img = -2; img <= 2; ++img) {
        const int local_idx = g + img * n - off;
        if (local_idx >= -ghost && local_idx < local + ghost) ++count;
      }
      return count;
    };
    for (int i = 0; i < grid.nx(); ++i)
      for (int j = 0; j < thin; ++j)
        for (int k = 0; k < thin; ++k) {
          int expected = 0;
          for (int cx = 0; cx < 2; ++cx) {
            mesh::BrickDecomposition d2({nx, thin, thin}, cart.dims(),
                                        {cx, 0, 0});
            expected += images(dec.offset(0) + i, nx, d2.offset(0),
                               d2.local_n(0)) *
                        images(j, thin, 0, thin) * images(k, thin, 0, thin);
          }
          ASSERT_DOUBLE_EQ(grid.at(i, j, k), expected)
              << i << " " << j << " " << k;
        }

    // Conservation: nothing deposited is lost or duplicated.
    const double total = comm.allreduce_sum(grid.sum_interior());
    EXPECT_DOUBLE_EQ(total, 2.0 * deposited);
  });
}

// ---------------------------------------------------------------------------
// Split (overlapped) exchange plans
// ---------------------------------------------------------------------------

TEST(HaloPlan, AxisRangesMatchDecomposition) {
  comm::run(4, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, {2, 2, 1});
    mesh::BrickDecomposition dec({8, 8, 8}, cart.dims(), cart.coords());
    vlasov::PhaseSpaceDims dims;
    dims.nx = dec.local_n(0);  // 4
    dims.ny = dec.local_n(1);  // 4
    dims.nz = dec.local_n(2);  // 8
    dims.nux = dims.nuy = dims.nuz = 2;
    mesh::HaloPlan plan(cart, dims, 900);

    // x and y are decomposed; local extent 4 < 2*ghost = 6, so the split
    // (interior/boundary) pipeline is not eligible there.
    EXPECT_TRUE(plan.axis(0).decomposed);
    EXPECT_FALSE(plan.axis(0).split);
    EXPECT_TRUE(plan.axis(1).decomposed);
    EXPECT_FALSE(plan.axis(1).split);
    // z lives wholly on this rank.
    EXPECT_FALSE(plan.axis(2).decomposed);
    EXPECT_FALSE(plan.axis(2).split);

    // Interior transverse extents, ascending-axis order.
    EXPECT_EQ(plan.axis(0).n, 4);
    EXPECT_EQ(plan.axis(0).t1n, 4);   // y
    EXPECT_EQ(plan.axis(0).t2n, 8);   // z
    EXPECT_EQ(plan.axis(2).t1n, 4);   // x
    EXPECT_EQ(plan.axis(2).t2n, 4);   // y
    // One face = ghost layers x interior transverse x velocity block.
    EXPECT_EQ(plan.axis(0).face_floats,
              static_cast<std::size_t>(3) * 4 * 8 * 8);
  });
}

TEST(HaloPlan, SplitAxisExchangeFillsAxisGhosts) {
  // begin/finish per axis must deliver exactly the ghost blocks the
  // position sweep of that axis reads: the axis ghosts at interior
  // transverse positions, equal to the global periodic field.
  const int n_global = 12, nu = 2;
  comm::run(4, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, {2, 2, 1});
    mesh::BrickDecomposition dec({n_global, n_global, n_global}, cart.dims(),
                                 cart.coords());
    vlasov::PhaseSpaceDims dims;
    dims.nx = dec.local_n(0);
    dims.ny = dec.local_n(1);
    dims.nz = dec.local_n(2);
    dims.nux = dims.nuy = dims.nuz = nu;
    vlasov::PhaseSpace f(dims, vlasov::PhaseSpaceGeometry{});
    for (int i = 0; i < dims.nx; ++i)
      for (int j = 0; j < dims.ny; ++j)
        for (int k = 0; k < dims.nz; ++k) {
          float* blk = f.block(i, j, k);
          for (std::size_t v = 0; v < f.block_size(); ++v)
            blk[v] = cell_value(dec.offset(0) + i, dec.offset(1) + j,
                                dec.offset(2) + k, v);
        }
    mesh::HaloPlan plan(cart, dims, 900);
    const int g = dims.ghost;
    auto wrap = [&](int i) { return ((i % n_global) + n_global) % n_global; };
    const int n_axis[3] = {dims.nx, dims.ny, dims.nz};
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_TRUE(plan.axis(axis).split || axis == 2);
      plan.begin_axis(f, axis);
      plan.finish_axis(f, axis);
      for (int a = -g; a < n_axis[axis] + g; ++a) {
        if (a >= 0 && a < n_axis[axis]) continue;  // interior untouched
        for (int t1 = 0; t1 < plan.axis(axis).t1n; ++t1)
          for (int t2 = 0; t2 < plan.axis(axis).t2n; ++t2) {
            int idx[3];
            idx[axis] = a;
            int tpos = 0;
            for (int t = 0; t < 3; ++t) {
              if (t == axis) continue;
              idx[t] = tpos == 0 ? t1 : t2;
              ++tpos;
            }
            const float* blk = f.block(idx[0], idx[1], idx[2]);
            const int gx = wrap(dec.offset(0) + idx[0]);
            const int gy = wrap(dec.offset(1) + idx[1]);
            const int gz = wrap(dec.offset(2) + idx[2]);
            for (std::size_t v = 0; v < f.block_size(); ++v)
              ASSERT_FLOAT_EQ(blk[v], cell_value(gx, gy, gz, v))
                  << "axis " << axis << " cell " << idx[0] << "," << idx[1]
                  << "," << idx[2];
          }
      }
    }
  });
}

TEST(HaloPlan, RejectsDecomposedAxisThinnerThanGhost) {
  EXPECT_THROW(
      comm::run(4,
                [&](comm::Communicator& comm) {
                  comm::CartTopology cart(comm, {4, 1, 1});
                  vlasov::PhaseSpaceDims dims;
                  dims.nx = 1;  // < ghost 3 on a decomposed axis
                  dims.ny = dims.nz = 4;
                  dims.nux = dims.nuy = dims.nuz = 2;
                  mesh::HaloPlan plan(cart, dims, 900);
                }),
      std::invalid_argument);
}

TEST(GridFoldPlan, SplitFoldIsBitIdenticalToBlockingFold) {
  // Same deposits, two fold paths: begin/finish (with arbitrary local
  // work between) must reproduce fold_grid_halo exactly — same summation
  // order, so bit-for-bit equality, not just tolerance.
  const int n_global = 8;
  for (int p : {1, 2, 4, 8}) {
    comm::run(p, [&](comm::Communicator& comm) {
      comm::CartTopology cart(comm, comm::CartTopology::choose_dims(p));
      mesh::BrickDecomposition dec({n_global, n_global, n_global},
                                   cart.dims(), cart.coords());
      mesh::Grid3D<double> blocking(dec.local_n(0), dec.local_n(1),
                                    dec.local_n(2), 2);
      for (int i = -2; i < blocking.nx() + 2; ++i)
        for (int j = -2; j < blocking.ny() + 2; ++j)
          for (int k = -2; k < blocking.nz() + 2; ++k)
            blocking.at(i, j, k) =
                0.1 * comm.rank() + 1e-3 * i + 7e-5 * j + 3e-6 * k + 1.0;
      mesh::Grid3D<double> split = blocking;

      mesh::fold_grid_halo(blocking, cart);

      mesh::GridFoldPlan plan(cart, 940);
      plan.begin(split);
      double sink = 0.0;  // "interior work" between the halves
      for (int w = 0; w < 100; ++w) sink += std::sqrt(1.0 + w);
      plan.finish(split);
      ASSERT_GT(sink, 0.0);

      for (int i = -2; i < blocking.nx() + 2; ++i)
        for (int j = -2; j < blocking.ny() + 2; ++j)
          for (int k = -2; k < blocking.nz() + 2; ++k)
            ASSERT_EQ(split.at(i, j, k), blocking.at(i, j, k))
                << p << " ranks, cell " << i << " " << j << " " << k;
    });
  }
}

TEST(GridFoldPlan, ThinUndecomposedAxesMatchBlockingFold) {
  // The quasi-1D two_stream shape: y/z wrap multiple times locally.
  const int nx = 8, thin = 2;
  comm::run(2, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, {2, 1, 1});
    mesh::BrickDecomposition dec({nx, thin, thin}, cart.dims(),
                                 cart.coords());
    mesh::Grid3D<double> blocking(dec.local_n(0), thin, thin, 2);
    for (int i = -2; i < blocking.nx() + 2; ++i)
      for (int j = -2; j < thin + 2; ++j)
        for (int k = -2; k < thin + 2; ++k)
          blocking.at(i, j, k) = 1.0 + 0.01 * i + 0.1 * j + 0.3 * k;
    mesh::Grid3D<double> split = blocking;
    mesh::fold_grid_halo(blocking, cart);
    mesh::GridFoldPlan plan(cart, 940);
    plan.begin(split);
    plan.finish(split);
    for (int i = -2; i < blocking.nx() + 2; ++i)
      for (int j = -2; j < thin + 2; ++j)
        for (int k = -2; k < thin + 2; ++k)
          ASSERT_EQ(split.at(i, j, k), blocking.at(i, j, k));
  });
}

}  // namespace
