#include <gtest/gtest.h>

#include <climits>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/log.hpp"
#include "common/ndview.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace {

using namespace v6d;

TEST(Aligned, VectorIsSimdAligned) {
  AlignedVector<float> v(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlign, 0u);
  AlignedVector<double> w(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kSimdAlign, 0u);
}

TEST(NdView, StridedAccess) {
  std::vector<double> data(24);
  for (int i = 0; i < 24; ++i) data[static_cast<std::size_t>(i)] = i;
  View3D<double> v(data.data(), 2, 3, 4);
  EXPECT_EQ(v(0, 0, 0), 0.0);
  EXPECT_EQ(v(1, 2, 3), 23.0);
  EXPECT_EQ(v(1, 0, 2), 14.0);
  EXPECT_EQ(v.stride(0), 12);
  EXPECT_EQ(v.stride(1), 4);
  EXPECT_EQ(v.stride(2), 1);

  View2D<double> m(data.data(), 4, 6);
  EXPECT_EQ(m.row(2)(3), 15.0);
  EXPECT_EQ(m.col(1)(3), 19.0);
}

TEST(Rng, DeterministicAndWellDistributed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  Xoshiro256 rng(7);
  double mean = 0.0, var = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    mean += x;
  }
  mean /= n;
  EXPECT_NEAR(mean, 0.5, 0.01);
  Xoshiro256 rng2(7);
  for (int i = 0; i < n; ++i) {
    const double d = rng2.next_double() - 0.5;
    var += d * d;
  }
  EXPECT_NEAR(var / n, 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(99);
  const int n = 200000;
  double mean = 0.0, var = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    mean += x;
    var += x * x;
  }
  EXPECT_NEAR(mean / n, 0.0, 0.01);
  EXPECT_NEAR(var / n, 1.0, 0.02);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Xoshiro256 parent(1);
  Xoshiro256 child = parent.split();
  int agree = 0;
  for (int i = 0; i < 64; ++i)
    if ((parent.next_u64() & 1) == (child.next_u64() & 1)) ++agree;
  EXPECT_GT(agree, 16);  // not complementary
  EXPECT_LT(agree, 48);  // not identical
}

TEST(Rng, HashMixSpreadsBits) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(hash_mix(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Timer, AccumulatesAndMedians) {
  TimerRegistry reg;
  reg.add("part", 1.0);
  reg.add("part", 2.0);
  EXPECT_DOUBLE_EQ(reg.total("part"), 3.0);
  reg.add_sample("step", 5.0);
  reg.add_sample("step", 1.0);
  reg.add_sample("step", 3.0);
  EXPECT_DOUBLE_EQ(reg.median_sample("step"), 3.0);
  reg.add_sample("step", 100.0);
  EXPECT_DOUBLE_EQ(reg.median_sample("step"), 4.0);  // (3+5)/2
  EXPECT_DOUBLE_EQ(reg.total("missing"), 0.0);
  EXPECT_EQ(reg.buckets().size(), 2u);
}

TEST(Timer, ScopedTimerMeasuresElapsed) {
  TimerRegistry reg;
  {
    ScopedTimer t(reg, "sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(reg.total("sleepy"), 0.005);
  EXPECT_LT(reg.total("sleepy"), 1.0);
}

TEST(Log, SinkCapturesFormattedLinesWithMonotonicTimestamps) {
  std::vector<std::string> lines;
  log::set_sink([&](const std::string& line) { lines.push_back(line); });
  log::set_rank(5);
  log::info("halo ", 3, " done");
  log::set_rank(-1);
  log::warn("untagged");
  log::set_sink(nullptr);  // restore stderr before any assertion can log

  ASSERT_EQ(lines.size(), 2u);
  // [seconds][LEVEL][rank N] message — no trailing newline.
  EXPECT_NE(lines[0].find("[INFO][rank 5] halo 3 done"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("[WARN] untagged"), std::string::npos) << lines[1];
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '[');
    EXPECT_EQ(line.find('\n'), std::string::npos);
  }
  // The leading field is seconds-since-start and must not go backwards.
  const double t0 = std::stod(lines[0].substr(1));
  const double t1 = std::stod(lines[1].substr(1));
  EXPECT_GE(t0, 0.0);
  EXPECT_GE(t1, t0);
}

TEST(Options, ParsesKeyValueAndDefaults) {
  const char* argv[] = {"prog", "grid=32", "box=12.5", "simd=off"};
  Options opt(4, const_cast<char**>(argv));
  EXPECT_EQ(opt.get_int("grid", 8), 32);
  EXPECT_DOUBLE_EQ(opt.get_double("box", 1.0), 12.5);
  EXPECT_FALSE(opt.get_bool("simd", true));
  EXPECT_EQ(opt.get_int("missing", 7), 7);
  EXPECT_TRUE(opt.has("grid"));
  EXPECT_FALSE(opt.has("nothere"));
}

TEST(Options, NumericParsingIsCheckedNotAtoi) {
  const char* argv[] = {"prog", "junk=abc", "huge=99999999999999999999",
                        "neg=-99999999999999999999", "dbl=nonsense",
                        "mixed=12cells"};
  Options opt(6, const_cast<char**>(argv));
  // Unparseable text falls back to the default instead of atoi's silent 0.
  EXPECT_EQ(opt.get_int("junk", 7), 7);
  EXPECT_EQ(opt.get_double("dbl", 2.5), 2.5);
  // Out-of-range values saturate instead of invoking undefined behaviour.
  EXPECT_EQ(opt.get_int("huge", 0), INT_MAX);
  EXPECT_EQ(opt.get_int("neg", 0), INT_MIN);
  // strtol semantics: a leading numeric prefix still parses.
  EXPECT_EQ(opt.get_int("mixed", 0), 12);
}

TEST(Options, EnvironmentFallback) {
  setenv("V6D_TESTKEY", "41", 1);
  Options opt;
  EXPECT_EQ(opt.get_int("testkey", 0), 41);
  unsetenv("V6D_TESTKEY");
  EXPECT_EQ(opt.get_int("testkey", 5), 5);
}

TEST(Options, ParseCliSeparatesPositionalAndHelp) {
  const char* argv[] = {"prog", "run", "box=42", "--help", "cfgfile"};
  const CliArgs cli = parse_cli(5, const_cast<char**>(argv));
  EXPECT_TRUE(cli.help);
  ASSERT_EQ(cli.positional.size(), 2u);
  EXPECT_EQ(cli.positional[0], "run");
  EXPECT_EQ(cli.positional[1], "cfgfile");
  EXPECT_EQ(cli.options.get_int("box", 0), 42);
}

TEST(Options, LoadFileSectionsCommentsAndPrecedence) {
  const auto path =
      std::filesystem::temp_directory_path() / "v6d_options_test.cfg";
  {
    std::ofstream out(path);
    out << "# full-line comment\n"
        << "alpha = 1\n"
        << "beta = 2  ; trailing comment\n"
        << "\n"
        << "[tree]\n"
        << "theta = 0.7\n";
  }
  Options opt;
  opt.set("alpha", "9");  // CLI value must survive the file load
  std::string error;
  ASSERT_TRUE(opt.load_file(path.string(), &error)) << error;
  EXPECT_EQ(opt.get_int("alpha", 0), 9);
  EXPECT_EQ(opt.get_int("beta", 0), 2);
  EXPECT_DOUBLE_EQ(opt.get_double("tree.theta", 0.0), 0.7);
  std::filesystem::remove(path);
}

TEST(Options, LoadFileRejectsMalformedLinesAndMissingFiles) {
  Options opt;
  std::string error;
  EXPECT_FALSE(opt.load_file("/nonexistent/v6d.cfg", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);

  const auto path =
      std::filesystem::temp_directory_path() / "v6d_malformed.cfg";
  {
    std::ofstream out(path);
    out << "this line has no equals sign\n";
  }
  EXPECT_FALSE(opt.load_file(path.string(), &error));
  EXPECT_NE(error.find(":1:"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Rng, StateRoundTripContinuesStream) {
  Xoshiro256 rng(2024);
  rng.next_normal();  // leave a cached Box-Muller value in the state
  const auto state = rng.state();
  Xoshiro256 other(1);
  other.set_state(state);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(other.next_u64(), rng.next_u64());
    EXPECT_EQ(other.next_normal(), rng.next_normal());
  }
}

}  // namespace
