#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "mesh/decomposition.hpp"
#include "mesh/deposit.hpp"
#include "mesh/grid.hpp"
#include "mesh/interp.hpp"

namespace {

using namespace v6d::mesh;

TEST(Grid3D, InteriorAndGhostIndexing) {
  Grid3D<double> g(4, 5, 6, 2);
  g.at(-2, -2, -2) = 1.0;
  g.at(5, 6, 7) = 2.0;
  g.at(0, 0, 0) = 3.0;
  EXPECT_DOUBLE_EQ(g.at(-2, -2, -2), 1.0);
  EXPECT_DOUBLE_EQ(g.at(5, 6, 7), 2.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0, 0), 3.0);
  EXPECT_EQ(g.interior_size(), 4u * 5u * 6u);
}

TEST(Grid3D, PeriodicGhostFill) {
  Grid3D<double> g(4, 4, 4, 2);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      for (int k = 0; k < 4; ++k) g.at(i, j, k) = i * 100 + j * 10 + k;
  g.fill_ghosts_periodic();
  EXPECT_DOUBLE_EQ(g.at(-1, 0, 0), g.at(3, 0, 0));
  EXPECT_DOUBLE_EQ(g.at(4, 1, 2), g.at(0, 1, 2));
  EXPECT_DOUBLE_EQ(g.at(-2, -1, 5), g.at(2, 3, 1));
}

TEST(Grid3D, FoldGhostsAccumulates) {
  Grid3D<double> g(4, 4, 4, 1);
  g.at(-1, 0, 0) = 2.0;   // image of (3, 0, 0)
  g.at(4, 0, 0) = 3.0;    // image of (0, 0, 0)
  g.at(0, 0, 0) = 1.0;
  g.fold_ghosts_periodic();
  EXPECT_DOUBLE_EQ(g.at(3, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(g.at(-1, 0, 0), 0.0);  // ghosts zeroed
}

TEST(BrickDecomposition, SharesCoverGlobal) {
  for (int global : {16, 17, 31}) {
    for (int parts : {1, 2, 3, 4, 5}) {
      int total = 0;
      int prev_end = 0;
      for (int c = 0; c < parts; ++c) {
        const int n = BrickDecomposition::share(global, parts, c);
        const int off = BrickDecomposition::share_offset(global, parts, c);
        EXPECT_EQ(off, prev_end);
        prev_end = off + n;
        total += n;
      }
      EXPECT_EQ(total, global);
    }
  }
}

TEST(BrickDecomposition, OwnerCoordInvertsOffsets) {
  const int global = 23, parts = 4;
  for (int g = 0; g < global; ++g) {
    const int c = BrickDecomposition::owner_coord(global, parts, g);
    const int off = BrickDecomposition::share_offset(global, parts, c);
    const int n = BrickDecomposition::share(global, parts, c);
    EXPECT_GE(g, off);
    EXPECT_LT(g, off + n);
  }
}

class DepositKernels : public ::testing::TestWithParam<Assignment> {};

TEST_P(DepositKernels, ConservesTotalMass) {
  const Assignment kind = GetParam();
  Grid3D<double> rho(8, 8, 8, 2);
  MeshPatch patch;
  patch.box = 10.0;
  patch.n_global = 8;
  std::vector<double> x{0.1, 3.7, 9.99, 5.0, 2.34},
      y{9.7, 0.01, 4.4, 5.0, 8.88}, z{1.0, 2.0, 3.0, 5.0, 0.0};
  deposit(rho, patch, x, y, z, 2.5, kind);
  rho.fold_ghosts_periodic();
  const double h = patch.h();
  EXPECT_NEAR(rho.sum_interior() * h * h * h, 2.5 * 5, 1e-10);
}

TEST_P(DepositKernels, UniformLatticeGivesUniformDensity) {
  const Assignment kind = GetParam();
  const int n = 8;
  Grid3D<double> rho(n, n, n, 2);
  MeshPatch patch;
  patch.box = 1.0;
  patch.n_global = n;
  std::vector<double> x, y, z;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        x.push_back((i + 0.5) / n);
        y.push_back((j + 0.5) / n);
        z.push_back((k + 0.5) / n);
      }
  deposit(rho, patch, x, y, z, 1.0, kind);
  rho.fold_ghosts_periodic();
  const double expected = static_cast<double>(x.size()) / 1.0;  // N/V
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        ASSERT_NEAR(rho.at(i, j, k), expected, 1e-9 * expected);
}

TEST_P(DepositKernels, InterpolationIsPartitionOfUnity) {
  const Assignment kind = GetParam();
  const int n = 8;
  Grid3D<double> field(n, n, n, 2);
  field.fill(7.0);
  field.fill_ghosts_periodic();
  MeshPatch patch;
  patch.box = 4.0;
  patch.n_global = n;
  for (double x : {0.0, 0.2, 1.3, 3.99})
    for (double y : {0.1, 2.5})
      EXPECT_NEAR(interpolate(field, patch, x, y, 1.7, kind), 7.0, 1e-12);
}

TEST_P(DepositKernels, RejectsNonFinitePositions) {
  // A NaN/inf position used to reach a float->int cast (undefined
  // behaviour); it must surface as a diagnosable error instead.
  const Assignment kind = GetParam();
  Grid3D<double> rho(8, 8, 8, 2);
  MeshPatch patch;
  patch.box = 10.0;
  patch.n_global = 8;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> x{1.0, nan}, y{1.0, 1.0}, z{1.0, 1.0};
  EXPECT_THROW(deposit(rho, patch, x, y, z, 1.0, kind), std::domain_error);
  EXPECT_THROW(interpolate(rho, patch, inf, 0.0, 0.0, kind),
               std::domain_error);
}

TEST_P(DepositKernels, TinyNegativePositionWrapsIntoBox) {
  // -1e-18 cells wraps to n by floating rounding; the wrap must fold it
  // back into [0, n) so mass lands on the periodic image, not past it.
  const Assignment kind = GetParam();
  Grid3D<double> rho(8, 8, 8, 2);
  MeshPatch patch;
  patch.box = 10.0;
  patch.n_global = 8;
  std::vector<double> x{-1e-18}, y{5.0}, z{5.0};
  deposit(rho, patch, x, y, z, 1.0, kind);
  rho.fold_ghosts_periodic();
  const double h = patch.h();
  EXPECT_NEAR(rho.sum_interior() * h * h * h, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Kernels, DepositKernels,
                         ::testing::Values(Assignment::kNgp, Assignment::kCic,
                                           Assignment::kTsc));

TEST(Deposit, CicSplitsLinearly) {
  // A particle exactly halfway between two cell centers splits 50/50.
  const int n = 4;
  Grid3D<double> rho(n, n, n, 1);
  MeshPatch patch;
  patch.box = 4.0;
  patch.n_global = n;  // h = 1, centers at 0.5, 1.5, ...
  std::vector<double> x{1.0}, y{0.5}, z{0.5};
  deposit(rho, patch, x, y, z, 1.0, Assignment::kCic);
  rho.fold_ghosts_periodic();
  EXPECT_NEAR(rho.at(0, 0, 0), 0.5, 1e-12);
  EXPECT_NEAR(rho.at(1, 0, 0), 0.5, 1e-12);
}

TEST(Deposit, GatherMatchesDepositAdjoint) {
  // interpolate(deposit(delta_p)) at the deposit point equals the kernel's
  // self-overlap; more usefully, a linear field is reproduced exactly by
  // CIC interpolation (linear interpolation reproduces linears).
  const int n = 16;
  Grid3D<double> field(n, n, n, 2);
  MeshPatch patch;
  patch.box = 8.0;
  patch.n_global = n;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        field.at(i, j, k) = 2.0 * (i + 0.5) - 0.5 * (j + 0.5) + (k + 0.5);
  field.fill_ghosts_periodic();
  // Stay away from the periodic wrap where linearity breaks.
  for (double x : {1.0, 2.3, 3.7})
    for (double y : {1.5, 2.8}) {
      const double h = patch.h();
      const double expected =
          2.0 * (x / h) - 0.5 * (y / h) + (2.0 / h);
      EXPECT_NEAR(
          interpolate(field, patch, x, y, 2.0, Assignment::kCic),
          expected, 1e-10);
    }
}

TEST(GradientFd4, ExactForCubicPolynomials) {
  // 4th-order differences are exact on cubics.
  const int n = 12;
  Grid3D<double> f(n, n, n, 2), gx(n, n, n), gy(n, n, n), gz(n, n, n);
  const double h = 0.5;
  for (int i = -2; i < n + 2; ++i)
    for (int j = -2; j < n + 2; ++j)
      for (int k = -2; k < n + 2; ++k) {
        const double x = i * h, y = j * h, z = k * h;
        f.at(i, j, k) = x * x * x - 2.0 * y * y + 3.0 * z + x * y;
      }
  gradient_fd4(f, h, gx, gy, gz);
  for (int i = 2; i < n - 2; ++i)
    for (int j = 2; j < n - 2; ++j)
      for (int k = 2; k < n - 2; ++k) {
        const double x = i * h, y = j * h;
        EXPECT_NEAR(gx.at(i, j, k), 3.0 * x * x + y, 1e-9);
        EXPECT_NEAR(gy.at(i, j, k), -4.0 * y + x, 1e-9);
        EXPECT_NEAR(gz.at(i, j, k), 3.0, 1e-9);
      }
}

}  // namespace
