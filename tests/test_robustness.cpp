// Failure-path suite for the fault-tolerance stack: retry schedules,
// scripted transient outages, liveness deadlines, teardown races, torn
// checkpoints, and supervisor exit classification.
//
// The contract under test is the failure model of docs/ROBUSTNESS.md:
// every fault either heals invisibly (retry), surfaces as a typed
// TransportError on every rank (detection), or is recoverable from the
// last committed checkpoint (restart) — and no path may hang.
//
// v6d-analyze: allow-file(tag-space): fault tests drive raw low tags on
// isolated per-test worlds; the kFirstUserTag floor governs production.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/faulty_transport.hpp"
#include "comm/retry.hpp"
#include "comm/runner.hpp"
#include "comm/tcp_transport.hpp"
#include "comm/transport.hpp"
#include "common/options.hpp"
#include "driver/checkpoint.hpp"
#include "driver/config.hpp"
#include "driver/driver.hpp"
#include "driver/supervisor.hpp"

namespace {

using namespace v6d;
using namespace v6d::comm;

namespace fs = std::filesystem;

LaunchOptions backend_options(const std::string& backend) {
  LaunchOptions options;
  options.backend = backend;
  options.timeout_s = 30.0;
  return options;
}

LaunchOptions faulty_options(const std::string& backend, int victim,
                             const FaultPlan& plan) {
  LaunchOptions options = backend_options(backend);
  options.wrap = [victim, plan](std::unique_ptr<Transport> inner, int rank) {
    if (rank != victim) return inner;
    return std::unique_ptr<Transport>(
        new FaultyTransport(std::move(inner), plan));
  };
  return options;
}

// ---- retry schedule ---------------------------------------------------

TEST(RetrySchedule, ExponentialWithoutJitterIsExact) {
  RetryPolicy policy{1.0, 8.0, 2.0, 0.0, 0, 0x5eedu};
  RetrySchedule schedule(policy);
  EXPECT_DOUBLE_EQ(schedule.next_delay_ms(), 1.0);
  EXPECT_DOUBLE_EQ(schedule.next_delay_ms(), 2.0);
  EXPECT_DOUBLE_EQ(schedule.next_delay_ms(), 4.0);
  EXPECT_DOUBLE_EQ(schedule.next_delay_ms(), 8.0);
  EXPECT_DOUBLE_EQ(schedule.next_delay_ms(), 8.0);  // capped at max
  EXPECT_EQ(schedule.attempts(), 5);
  EXPECT_FALSE(schedule.exhausted());  // max_attempts = 0 -> unbounded
}

TEST(RetrySchedule, JitterIsDeterministicPerSeedAndBounded) {
  RetryPolicy policy{10.0, 80.0, 2.0, 0.25, 0, 42};
  RetrySchedule a(policy), b(policy);
  RetrySchedule other(RetryPolicy{10.0, 80.0, 2.0, 0.25, 0, 43});
  bool any_diverged = false;
  double base = 10.0;
  for (int i = 0; i < 8; ++i) {
    const double da = a.next_delay_ms();
    EXPECT_DOUBLE_EQ(da, b.next_delay_ms());  // same seed -> same delays
    if (da != other.next_delay_ms()) any_diverged = true;
    // Jitter only shaves: delay stays in [(1 - jitter) * base, base].
    EXPECT_LE(da, base);
    EXPECT_GE(da, 0.75 * base);
    base = std::min(base * 2.0, 80.0);
  }
  EXPECT_TRUE(any_diverged) << "different seeds must jitter differently";
}

TEST(RetrySchedule, ExhaustionAndReset) {
  RetryPolicy policy{1.0, 4.0, 2.0, 0.0, 3, 0x5eedu};
  RetrySchedule schedule(policy);
  EXPECT_FALSE(schedule.exhausted());
  (void)schedule.next_delay_ms();
  (void)schedule.next_delay_ms();
  (void)schedule.next_delay_ms();
  EXPECT_TRUE(schedule.exhausted());
  schedule.reset();
  EXPECT_FALSE(schedule.exhausted());
  EXPECT_EQ(schedule.attempts(), 0);
  EXPECT_DOUBLE_EQ(schedule.next_delay_ms(), 1.0);  // sequence replays
}

// ---- scripted transient outages --------------------------------------

class RobustnessBackends : public ::testing::TestWithParam<const char*> {};

TEST_P(RobustnessBackends, TransientOutageHealsInsideRetryBudget) {
  // The third send hits a 3-attempt outage; the 6-attempt budget outlasts
  // it, so every message still arrives exactly once, in order — the fault
  // is invisible to the receiver.
  FaultPlan plan;
  plan.transient_fail_at = 2;
  plan.transient_outage = 3;
  run_transport(2, faulty_options(GetParam(), 1, plan),
                [&](Communicator& comm) {
                  if (comm.rank() == 1) {
                    for (std::int32_t m = 0; m < 6; ++m)
                      comm.send(0, 4, &m, 1);
                    auto* faulty =
                        dynamic_cast<FaultyTransport*>(&comm.transport());
                    ASSERT_NE(faulty, nullptr);
                    EXPECT_EQ(faulty->transient_retries(), 3);
                  } else {
                    for (std::int32_t m = 0; m < 6; ++m) {
                      std::int32_t got = -1;
                      comm.recv(1, 4, &got, 1);
                      EXPECT_EQ(got, m);
                    }
                  }
                  comm.barrier();  // world healthy after the outage
                });
}

TEST_P(RobustnessBackends, TransientOutageBeyondBudgetAbortsTyped) {
  // A 7-attempt outage against a 6-attempt budget: the schedule exhausts,
  // the failing rank throws kInjected, and the parked receiver is woken
  // instead of hanging.
  FaultPlan plan;
  plan.transient_fail_at = 0;
  plan.transient_outage = 7;
  try {
    run_transport(2, faulty_options(GetParam(), 1, plan),
                  [&](Communicator& comm) {
                    comm.barrier();
                    if (comm.rank() == 1) {
                      const double v = 1.0;
                      comm.send(0, 4, &v, 1);
                      FAIL() << "exhausted retry budget must throw";
                    }
                    double got = 0.0;
                    comm.recv(1, 4, &got, 1);
                    FAIL() << "receiver of an undelivered message must abort";
                  });
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault(), TransportFault::kInjected);
    EXPECT_NE(std::string(e.what()).find("retry budget"), std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RobustnessBackends,
                         ::testing::Values("inproc", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- liveness deadlines (TCP only: heartbeats live on the wire) -------

TEST(TransportLiveness, SilentPeerSurfacesAsPeerLostWithinDeadline) {
  // Rank 1 stops heartbeating and goes silent; every other rank is parked
  // on a recv from it.  The liveness deadline must wake them with a typed
  // kPeerLost naming the victim — and the victim itself must be aborted
  // (via the fan-out) rather than left running.
  const int kVictim = 1;
  LaunchOptions options = backend_options("tcp");
  options.liveness_timeout_s = 0.8;
  try {
    run_transport(3, options, [&](Communicator& comm) {
      comm.barrier();
      if (comm.rank() == kVictim) {
        auto* tcp = dynamic_cast<TcpTransport*>(&comm.transport());
        ASSERT_NE(tcp, nullptr);
        tcp->debug_suppress_heartbeats();
        std::this_thread::sleep_for(std::chrono::milliseconds(2500));
      }
      double never = 0.0;
      comm.recv(kVictim == comm.rank() ? 0 : kVictim, 9, &never, 1);
      FAIL() << "no rank may outlive a missed liveness deadline";
    });
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.fault(), TransportFault::kPeerLost);
    EXPECT_EQ(e.peer(), kVictim);
    EXPECT_NE(std::string(e.what()).find("liveness deadline"),
              std::string::npos);
  }
}

TEST(TransportLiveness, HeartbeatsKeepAnIdleWorldAlive) {
  // The inverse: ranks that exchange nothing for several deadlines must
  // NOT be declared lost — heartbeats alone carry the liveness signal.
  LaunchOptions options = backend_options("tcp");
  options.liveness_timeout_s = 0.2;
  run_transport(3, options, [&](Communicator& comm) {
    comm.barrier();
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    double sum = comm.rank();
    comm.allreduce_sum(&sum, 1);  // world still intact after the idle gap
    EXPECT_DOUBLE_EQ(sum, 3.0);
  });
}

// ---- teardown race: goodbye then gone ---------------------------------

TEST_P(RobustnessBackends, PeerVanishingAfterGoodbyeIsACleanShutdown) {
  // Rank 2 flushes its goodbyes and drops every connection immediately
  // (a rank reaped right after its last barrier).  The survivors' own
  // goodbye writes may hit a dead socket — that race must read as a
  // departure, not a crash: the job still completes cleanly.
  FaultPlan plan;
  plan.vanish_after_bye = true;
  run_transport(3, faulty_options(GetParam(), 2, plan),
                [&](Communicator& comm) {
                  const int next = (comm.rank() + 1) % 3;
                  const int prev = (comm.rank() + 2) % 3;
                  const std::int32_t v = comm.rank();
                  comm.send(next, 6, &v, 1);
                  std::int32_t got = -1;
                  comm.recv(prev, 6, &got, 1);
                  EXPECT_EQ(got, prev);
                  comm.barrier();
                });  // must not throw: shutdown happens inside run_transport
}

// ---- torn checkpoints --------------------------------------------------

driver::SimulationConfig tiny_distributed_config(const std::string& dir) {
  driver::SimulationConfig cfg;
  cfg.scenario = "vlasov_only";
  cfg.nx = 8;
  cfg.nu = 6;
  cfg.seed = 9;
  cfg.a_final = 0.5;
  cfg.da_max = 0.01;
  cfg.max_steps = 2;
  cfg.ranks = 2;
  cfg.checkpoint_dir = dir;
  return cfg;
}

std::string temp_dir(const std::string& name) {
  const auto path = fs::temp_directory_path() / name;
  fs::remove_all(path);
  return path.string();
}

/// First payload file the committed meta references (shards preferred).
std::string any_payload(const std::string& dir) {
  driver::Checkpoint meta;
  EXPECT_EQ(driver::read_checkpoint_meta(dir, meta), io::SnapshotStatus::kOk);
  if (!meta.shard_files.empty()) return meta.shard_files.front();
  return meta.phase_space_file;
}

TEST(TornCheckpoint, TruncatedShardIsRejectedOnResume) {
  const auto dir = temp_dir("v6d_torn_truncated");
  driver::Driver d(tiny_distributed_config(dir));
  d.run();  // stops at max_steps and commits a sharded checkpoint

  const auto shard = fs::path(dir) / any_payload(dir);
  const auto full = fs::file_size(shard);
  ASSERT_GT(full, 16u);
  fs::resize_file(shard, full / 2);  // torn: commit protocol violated

  try {
    (void)driver::Driver::resume(dir, Options{});
    FAIL() << "resume must reject a truncated shard";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to resume"),
              std::string::npos)
        << e.what();
  }
}

TEST(TornCheckpoint, MissingShardIsRejectedOnResume) {
  const auto dir = temp_dir("v6d_torn_missing");
  driver::Driver d(tiny_distributed_config(dir));
  d.run();
  fs::remove(fs::path(dir) / any_payload(dir));
  try {
    (void)driver::Driver::resume(dir, Options{});
    FAIL() << "resume must reject a missing shard";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refusing to resume"),
              std::string::npos)
        << e.what();
  }
}

TEST(TornCheckpoint, GcKeepsValidCheckpointsAndSweepsDebris) {
  const auto dir = temp_dir("v6d_gc_valid");
  driver::Driver d(tiny_distributed_config(dir));
  d.run();

  // Debris a crashed worker can leave behind: an in-flight tmp file and a
  // stray payload no meta references.
  std::ofstream(fs::path(dir) / "meta.tmp") << "half a commit";
  std::ofstream(fs::path(dir) / "phase_space.999.r0.bin") << "orphan";
  driver::gc_checkpoint_leftovers(dir);

  EXPECT_FALSE(fs::exists(fs::path(dir) / "meta.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "phase_space.999.r0.bin"));
  driver::Checkpoint meta;
  ASSERT_EQ(driver::read_checkpoint_meta(dir, meta), io::SnapshotStatus::kOk);
  EXPECT_EQ(driver::validate_checkpoint_payloads(dir, meta),
            io::SnapshotStatus::kOk)
      << "GC must not touch a valid checkpoint";
}

TEST(TornCheckpoint, GcRemovesATornCheckpointEntirely) {
  const auto dir = temp_dir("v6d_gc_torn");
  driver::Driver d(tiny_distributed_config(dir));
  d.run();
  const auto shard = fs::path(dir) / any_payload(dir);
  fs::resize_file(shard, fs::file_size(shard) / 2);

  driver::gc_checkpoint_leftovers(dir);
  // The corpse is gone: no meta, no payloads — the next launch starts
  // fresh instead of refusing to resume forever.
  EXPECT_FALSE(fs::exists(fs::path(dir) / "meta"));
  EXPECT_FALSE(fs::exists(shard));
  driver::Checkpoint meta;
  EXPECT_NE(driver::read_checkpoint_meta(dir, meta), io::SnapshotStatus::kOk);
}

TEST(TornCheckpoint, FsyncFileReportsMissingTarget) {
  EXPECT_FALSE(driver::fsync_file("/nonexistent/v6d/file"));
  const auto dir = temp_dir("v6d_fsync");
  fs::create_directories(dir);
  const auto path = fs::path(dir) / "x";
  std::ofstream(path) << "bytes";
  EXPECT_TRUE(driver::fsync_file(path.string()));
}

// ---- supervisor exit classification -----------------------------------

int wait_status_of(void (*child)()) {
  const pid_t pid = fork();
  if (pid == 0) {
    child();
    _exit(0);
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

TEST(Supervisor, ClassifiesRealWaitStatuses) {
  using driver::ExitClass;
  EXPECT_EQ(driver::classify_exit_status(wait_status_of([] { _exit(0); })),
            ExitClass::kClean);
  EXPECT_EQ(driver::classify_exit_status(
                wait_status_of([] { _exit(driver::kTransientExitCode); })),
            ExitClass::kTransient);
  EXPECT_EQ(driver::classify_exit_status(wait_status_of([] { _exit(3); })),
            ExitClass::kFatal);
  EXPECT_EQ(driver::classify_exit_status(
                wait_status_of([] { raise(SIGKILL); })),
            ExitClass::kSignal);
}

TEST(Supervisor, ExitClassNamesAreStable) {
  using driver::ExitClass;
  EXPECT_STREQ(driver::to_string(ExitClass::kClean), "clean");
  EXPECT_STREQ(driver::to_string(ExitClass::kTransient), "transient");
  EXPECT_STREQ(driver::to_string(ExitClass::kSignal), "signal");
  EXPECT_STREQ(driver::to_string(ExitClass::kFatal), "fatal");
}

TEST(Supervisor, RejectsNonsenseOptions) {
  driver::SupervisorOptions options;
  options.world = 0;
  EXPECT_THROW(driver::run_supervised(options), std::invalid_argument);
  options.world = 2;
  options.min_world = 3;
  EXPECT_THROW(driver::run_supervised(options), std::invalid_argument);
  options.min_world = 1;
  options.command = "dance";
  EXPECT_THROW(driver::run_supervised(options), std::invalid_argument);
}

}  // namespace
