#include <gtest/gtest.h>

#include <cmath>

#include "comm/runner.hpp"
#include "fft/fft3d.hpp"
#include "fft/parallel_fft.hpp"

namespace {

using namespace v6d;
using fft::cplx;

std::vector<cplx> global_field(int n, unsigned seed) {
  std::vector<cplx> x(static_cast<std::size_t>(n) * n * n);
  unsigned state = seed;
  for (auto& v : x) {
    state = state * 1664525u + 1013904223u;
    const double re = (state % 2000) / 1000.0 - 1.0;
    state = state * 1664525u + 1013904223u;
    const double im = (state % 2000) / 1000.0 - 1.0;
    v = cplx(re, im);
  }
  return x;
}

class ParallelFftRanks : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFftRanks, MatchesSerialSpectrum) {
  const int p = GetParam();
  const int n = 16;
  const auto field = global_field(n, 77);

  // Serial reference.
  auto serial = field;
  fft::Fft3D serial_fft(n, n, n);
  serial_fft.forward(serial.data());

  comm::run(p, [&](comm::Communicator& comm) {
    fft::ParallelFft3D pfft(comm, n);
    std::vector<cplx> local(
        static_cast<std::size_t>(pfft.local_nx()) * n * n);
    for (int x = 0; x < pfft.local_nx(); ++x)
      for (int y = 0; y < n; ++y)
        for (int z = 0; z < n; ++z)
          local[(static_cast<std::size_t>(x) * n + y) * n + z] =
              field[(static_cast<std::size_t>(pfft.x_offset() + x) * n + y) *
                        n +
                    z];
    pfft.forward(local);
    double worst = 0.0;
    pfft.for_each_mode(local, [&](int kx, int ky, int kz, cplx& v) {
      const cplx ref =
          serial[(static_cast<std::size_t>(kx) * n + ky) * n + kz];
      worst = std::max(worst, std::abs(v - ref));
    });
    EXPECT_LT(worst, 1e-9);
  });
}

TEST_P(ParallelFftRanks, RoundTripRestoresField) {
  const int p = GetParam();
  const int n = 12;  // non-divisible by most p: exercises remainder slabs
  const auto field = global_field(n, 3);
  comm::run(p, [&](comm::Communicator& comm) {
    fft::ParallelFft3D pfft(comm, n);
    std::vector<cplx> local(
        static_cast<std::size_t>(pfft.local_nx()) * n * n);
    for (int x = 0; x < pfft.local_nx(); ++x)
      for (int y = 0; y < n; ++y)
        for (int z = 0; z < n; ++z)
          local[(static_cast<std::size_t>(x) * n + y) * n + z] =
              field[(static_cast<std::size_t>(pfft.x_offset() + x) * n + y) *
                        n +
                    z];
    pfft.forward(local);
    pfft.inverse_normalized(local);
    for (int x = 0; x < pfft.local_nx(); ++x)
      for (int y = 0; y < n; ++y)
        for (int z = 0; z < n; ++z) {
          const cplx ref =
              field[(static_cast<std::size_t>(pfft.x_offset() + x) * n + y) *
                        n +
                    z];
          ASSERT_LT(
              std::abs(local[(static_cast<std::size_t>(x) * n + y) * n + z] -
                       ref),
              1e-11);
        }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelFftRanks,
                         ::testing::Values(1, 2, 3, 4));

TEST(ParallelFft, CommVolumeGrowsWithRankCount) {
  // The defining scaling property: per-rank alltoall volume ~ n^3/p, so
  // total traffic stays ~ n^3 per transpose while latency count grows.
  const int n = 16;
  std::uint64_t bytes_2 = 0, bytes_4 = 0;
  for (int p : {2, 4}) {
    std::uint64_t total = 0;
    std::mutex m;
    comm::run(p, [&](comm::Communicator& comm) {
      fft::ParallelFft3D pfft(comm, n);
      std::vector<cplx> local(
          static_cast<std::size_t>(pfft.local_nx()) * n * n,
          cplx(1.0, 0.0));
      comm.reset_traffic_counters();
      pfft.forward(local);
      std::lock_guard<std::mutex> lock(m);
      total += comm.bytes_sent();
    });
    (p == 2 ? bytes_2 : bytes_4) = total;
  }
  EXPECT_GT(bytes_2, 0u);
  // Total transpose traffic is roughly constant in p (each element moves
  // once); allow generous slack for self-sends bookkeeping.
  EXPECT_LT(bytes_4, bytes_2 * 3);
  EXPECT_GT(bytes_4, bytes_2 / 3);
}

}  // namespace
