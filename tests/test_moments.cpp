#include <gtest/gtest.h>

#include <cmath>

#include "cosmology/fermi_dirac.hpp"
#include "vlasov/moments.hpp"

namespace {

using namespace v6d::vlasov;

PhaseSpace make_ps(int nx, int nu, double umax) {
  PhaseSpaceDims d;
  d.nx = d.ny = d.nz = nx;
  d.nux = d.nuy = d.nuz = nu;
  PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = 1.0;
  g.umax = umax;
  g.dux = g.duy = g.duz = 2.0 * umax / nu;
  return PhaseSpace(d, g);
}

// Fill one cell with a discrete Maxwellian at bulk (bx,by,bz), sigma s.
void fill_maxwellian(PhaseSpace& f, int ix, int iy, int iz, double n0,
                     double bx, double by, double bz, double s) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  double sum = 0.0;
  std::vector<double> w(f.block_size());
  std::size_t v = 0;
  for (int a = 0; a < d.nux; ++a)
    for (int b = 0; b < d.nuy; ++b)
      for (int c = 0; c < d.nuz; ++c, ++v) {
        const double dx = g.ux(a) - bx, dy = g.uy(b) - by, dz = g.uz(c) - bz;
        w[v] = std::exp(-(dx * dx + dy * dy + dz * dz) / (2.0 * s * s));
        sum += w[v];
      }
  float* blk = f.block(ix, iy, iz);
  for (v = 0; v < f.block_size(); ++v)
    blk[v] = static_cast<float>(n0 * w[v] / (sum * g.du3()));
}

TEST(Moments, DensityOfDiscreteMaxwellianIsExact) {
  auto f = make_ps(2, 12, 6.0);
  fill_maxwellian(f, 0, 0, 0, 3.5, 0.0, 0.0, 0.0, 1.0);
  fill_maxwellian(f, 1, 1, 1, 0.7, 0.5, -0.5, 0.2, 1.5);
  v6d::mesh::Grid3D<double> rho(2, 2, 2);
  compute_density(f, rho);
  EXPECT_NEAR(rho.at(0, 0, 0), 3.5, 1e-5);
  EXPECT_NEAR(rho.at(1, 1, 1), 0.7, 1e-6);
  EXPECT_NEAR(rho.at(0, 1, 0), 0.0, 1e-12);
}

TEST(Moments, MeanVelocityRecoversBulkFlow) {
  auto f = make_ps(2, 16, 8.0);
  fill_maxwellian(f, 1, 0, 1, 1.0, 1.25, -0.75, 2.0, 1.0);
  MomentFields m(2, 2, 2);
  compute_moments(f, m);
  EXPECT_NEAR(m.mean_ux.at(1, 0, 1), 1.25, 1e-3);
  EXPECT_NEAR(m.mean_uy.at(1, 0, 1), -0.75, 1e-3);
  EXPECT_NEAR(m.mean_uz.at(1, 0, 1), 2.0, 1e-3);
  EXPECT_NEAR(m.speed(1, 0, 1),
              std::sqrt(1.25 * 1.25 + 0.75 * 0.75 + 4.0), 1e-3);
}

TEST(Moments, DispersionRecoversSigma) {
  auto f = make_ps(1, 20, 10.0);
  const double sigma = 1.75;
  fill_maxwellian(f, 0, 0, 0, 2.0, 0.0, 0.0, 0.0, sigma);
  MomentFields m(1, 1, 1);
  compute_moments(f, m);
  EXPECT_NEAR(m.sigma(0, 0, 0), sigma, 0.02 * sigma);
  // Isotropic: off-diagonal terms vanish.
  EXPECT_NEAR(m.sigma_xy.at(0, 0, 0), 0.0, 1e-3);
  EXPECT_NEAR(m.sigma_xz.at(0, 0, 0), 0.0, 1e-3);
  EXPECT_NEAR(m.sigma_yz.at(0, 0, 0), 0.0, 1e-3);
}

TEST(Moments, DispersionUnaffectedByBulkFlow) {
  auto f1 = make_ps(1, 20, 10.0);
  auto f2 = make_ps(1, 20, 10.0);
  fill_maxwellian(f1, 0, 0, 0, 1.0, 0.0, 0.0, 0.0, 1.2);
  fill_maxwellian(f2, 0, 0, 0, 1.0, 2.0, 1.0, -1.0, 1.2);
  MomentFields m1(1, 1, 1), m2(1, 1, 1);
  compute_moments(f1, m1);
  compute_moments(f2, m2);
  EXPECT_NEAR(m1.sigma(0, 0, 0), m2.sigma(0, 0, 0), 5e-3);
}

TEST(Moments, FermiDiracDispersionMatchesQuadrature) {
  // The velocity dispersion of the discretized FD profile must match the
  // analytic rms/sqrt(3) (isotropic, per-axis).
  const double u_th = 1.0;
  auto f = make_ps(1, 24, 8.0 * u_th);
  const auto& d = f.dims();
  const auto& g = f.geom();
  float* blk = f.block(0, 0, 0);
  std::size_t v = 0;
  for (int a = 0; a < d.nux; ++a)
    for (int b = 0; b < d.nuy; ++b)
      for (int c = 0; c < d.nuz; ++c, ++v) {
        const double s = std::sqrt(g.ux(a) * g.ux(a) + g.uy(b) * g.uy(b) +
                                   g.uz(c) * g.uz(c));
        blk[v] = static_cast<float>(v6d::cosmo::fd_density(s, u_th));
      }
  MomentFields m(1, 1, 1);
  compute_moments(f, m);
  const double expected =
      v6d::cosmo::fd_rms_speed(u_th) / std::sqrt(3.0);
  // Velocity-cube truncation at 8 u_th clips a bit of the tail.
  EXPECT_NEAR(m.sigma(0, 0, 0), expected, 0.05 * expected);
}

TEST(Moments, EmptyCellProducesZeros) {
  auto f = make_ps(1, 4, 1.0);
  MomentFields m(1, 1, 1);
  compute_moments(f, m);
  EXPECT_EQ(m.density.at(0, 0, 0), 0.0);
  EXPECT_EQ(m.mean_ux.at(0, 0, 0), 0.0);
  EXPECT_EQ(m.sigma(0, 0, 0), 0.0);
}

}  // namespace
