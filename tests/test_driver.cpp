#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "driver/checkpoint.hpp"
#include "driver/config.hpp"
#include "driver/driver.hpp"
#include "driver/scenario.hpp"

namespace {

using namespace v6d;

std::string temp_dir(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(path);
  return path.string();
}

/// The smoke-sized neutrino_box: a few adaptive steps, every species on.
driver::SimulationConfig tiny_config() {
  driver::SimulationConfig cfg;
  cfg.scenario = "neutrino_box";
  cfg.box = 100.0;
  cfg.m_nu_ev = 0.4;
  cfg.nx = 4;
  cfg.nu = 6;
  cfg.np = 8;
  cfg.a_final = 0.2;
  cfg.da_max = 0.03;
  cfg.seed = 9;
  cfg.checkpoint_dir.clear();
  return cfg;
}

void expect_bit_identical(const hybrid::HybridSolver& lhs,
                          const hybrid::HybridSolver& rhs) {
  const auto& f1 = lhs.neutrinos();
  const auto& f2 = rhs.neutrinos();
  ASSERT_EQ(f1.dims().nx, f2.dims().nx);
  const auto& d = f1.dims();
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* a = f1.block(ix, iy, iz);
        const float* b = f2.block(ix, iy, iz);
        for (std::size_t v = 0; v < f1.block_size(); ++v)
          ASSERT_EQ(a[v], b[v]) << "f differs at cell (" << ix << "," << iy
                                << "," << iz << ") slot " << v;
      }

  const auto& p1 = lhs.cdm();
  const auto& p2 = rhs.cdm();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1.x[i], p2.x[i]) << "x differs at particle " << i;
    ASSERT_EQ(p1.y[i], p2.y[i]) << "y differs at particle " << i;
    ASSERT_EQ(p1.z[i], p2.z[i]) << "z differs at particle " << i;
    ASSERT_EQ(p1.ux[i], p2.ux[i]) << "ux differs at particle " << i;
    ASSERT_EQ(p1.uy[i], p2.uy[i]) << "uy differs at particle " << i;
    ASSERT_EQ(p1.uz[i], p2.uz[i]) << "uz differs at particle " << i;
    ASSERT_EQ(p1.id[i], p2.id[i]) << "id differs at particle " << i;
  }
}

TEST(SimulationConfig, KvRoundTripIsExact) {
  driver::SimulationConfig cfg;
  cfg.a_init = 1.0 / 11.0;  // not representable in short decimal
  cfg.a_final = 2.0 / 3.0;
  cfg.da_max = 0.1;
  cfg.seed = 0xdeadbeefcafeULL;
  cfg.enable_tree = false;
  cfg.checkpoint_dir = "some/dir";
  const auto kv = cfg.to_kv();
  const auto back = driver::SimulationConfig::from_kv(kv);
  EXPECT_EQ(back.a_init, cfg.a_init);
  EXPECT_EQ(back.a_final, cfg.a_final);
  EXPECT_EQ(back.da_max, cfg.da_max);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.enable_tree, cfg.enable_tree);
  EXPECT_EQ(back.checkpoint_dir, cfg.checkpoint_dir);
  EXPECT_EQ(back.scenario, cfg.scenario);
}

TEST(SimulationConfig, PrecedenceCliOverFileOverScenario) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "v6d_test.cfg").string();
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "scenario = cosmic_web\n"
        << "np = 12   ; trailing comment\n"
        << "a_final = 0.3\n";
  }
  Options options;  // as if from the command line
  options.set("np", "10");
  std::string error;
  ASSERT_TRUE(options.load_file(path, &error)) << error;
  const auto cfg = driver::make_config(options);
  EXPECT_EQ(cfg.scenario, "cosmic_web");
  EXPECT_EQ(cfg.np, 10);             // CLI beats file
  EXPECT_DOUBLE_EQ(cfg.a_final, 0.3);  // file beats scenario default
  EXPECT_DOUBLE_EQ(cfg.box, 150.0);  // scenario default survives
  EXPECT_EQ(cfg.m_nu_ev, 0.0);       // scenario default survives
  std::remove(path.c_str());
}

TEST(ScenarioRegistry, AllScenariosBuildAndStep) {
  for (const auto& scenario : driver::scenarios()) {
    Options overrides;
    overrides.set("nx", "4");
    overrides.set("nu", "6");
    overrides.set("checkpoint_dir", "");
    auto cfg = driver::make_config(overrides, scenario.name);
    if (cfg.np > 0) cfg.np = 8;  // keep particle-free scenarios that way
    cfg.a_final = cfg.a_init + 0.02;
    cfg.da_max = 0.02;
    driver::Driver d(cfg);
    const auto result = d.run();
    EXPECT_EQ(result.reason, driver::StopReason::kFinished)
        << scenario.name;
    EXPECT_GE(result.steps, 1) << scenario.name;
    EXPECT_GT(d.solver().total_mass(), 0.0) << scenario.name;
  }
}

TEST(ScenarioRegistry, UnknownScenarioThrows) {
  Options options;
  options.set("scenario", "warp_drive");
  EXPECT_THROW(driver::make_config(options), std::invalid_argument);
}

// The acceptance test: N steps straight through vs. checkpoint-at-k +
// resume must agree bit-for-bit in phase space and particle arrays.
TEST(Driver, CheckpointResumeIsBitIdentical) {
  const std::string dir = temp_dir("v6d_ckpt_determinism");

  auto cfg = tiny_config();
  driver::Driver continuous(cfg);
  const auto full = continuous.run();
  ASSERT_EQ(full.reason, driver::StopReason::kFinished);
  ASSERT_GE(full.total_steps, 4) << "test wants a multi-step run";

  auto cfg2 = tiny_config();
  cfg2.max_steps = 2;
  cfg2.checkpoint_dir = dir;
  driver::Driver interrupted(cfg2);
  const auto head = interrupted.run();
  ASSERT_EQ(head.reason, driver::StopReason::kMaxSteps);
  ASSERT_EQ(head.checkpoint, dir);

  Options overrides;
  overrides.set("max_steps", "0");
  driver::Driver resumed = driver::Driver::resume(dir, overrides);
  EXPECT_EQ(resumed.step_count(), 2);
  const auto tail = resumed.run();
  ASSERT_EQ(tail.reason, driver::StopReason::kFinished);

  EXPECT_EQ(resumed.step_count(), full.total_steps);
  EXPECT_EQ(resumed.scale_factor(), continuous.scale_factor());
  expect_bit_identical(continuous.solver(), resumed.solver());
  std::filesystem::remove_all(dir);
}

// Writing a periodic checkpoint must not perturb the run itself.
TEST(Driver, PeriodicCheckpointDoesNotPerturbRun) {
  const std::string dir = temp_dir("v6d_ckpt_passive");

  auto cfg = tiny_config();
  driver::Driver plain(cfg);
  plain.run();

  auto cfg2 = tiny_config();
  cfg2.checkpoint_every = 1;
  cfg2.checkpoint_dir = dir;
  driver::Driver checkpointing(cfg2);
  checkpointing.run();

  expect_bit_identical(plain.solver(), checkpointing.solver());
  std::filesystem::remove_all(dir);
}

TEST(Driver, ResumeRejectsPhysicsShapeChange) {
  const std::string dir = temp_dir("v6d_ckpt_mismatch");
  auto cfg = tiny_config();
  cfg.max_steps = 1;
  cfg.checkpoint_dir = dir;
  driver::Driver d(cfg);
  ASSERT_EQ(d.run().reason, driver::StopReason::kMaxSteps);

  Options overrides;
  overrides.set("nx", "6");  // incompatible with the stored payload
  EXPECT_THROW(driver::Driver::resume(dir, overrides), std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Driver, ResumeOfMissingCheckpointThrows) {
  EXPECT_THROW(driver::Driver::resume(temp_dir("v6d_no_such_ckpt")),
               std::runtime_error);
}

TEST(Checkpoint, MetaRoundTripsRngAndScaleFactor) {
  const std::string dir = temp_dir("v6d_ckpt_meta");
  std::filesystem::create_directories(dir);

  Xoshiro256 rng(123);
  rng.next_normal();  // populate the Box-Muller cache
  driver::Checkpoint meta;
  meta.config = tiny_config();
  meta.a = 1.0 / 7.0;
  meta.step = 42;
  meta.rng = rng.state();
  ASSERT_EQ(driver::write_checkpoint(dir, meta, nullptr, nullptr, nullptr),
            io::SnapshotStatus::kOk);

  driver::Checkpoint back;
  ASSERT_EQ(driver::read_checkpoint_meta(dir, back),
            io::SnapshotStatus::kOk);
  EXPECT_EQ(back.a, meta.a);
  EXPECT_EQ(back.step, 42);
  EXPECT_EQ(back.config.seed, meta.config.seed);
  EXPECT_EQ(back.config.nx, meta.config.nx);

  // The restored stream must continue exactly where the original does.
  Xoshiro256 restored(1);
  restored.set_state(back.rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.next_normal(), rng.next_normal());
    EXPECT_EQ(restored.next_u64(), rng.next_u64());
  }
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptMetaReportsDistinctErrors) {
  const std::string dir = temp_dir("v6d_ckpt_corrupt");
  std::filesystem::create_directories(dir);
  const auto meta_path = std::filesystem::path(dir) / "meta";

  driver::Checkpoint meta;
  {
    std::ofstream out(meta_path);
    out << "something-else 1\n";
  }
  EXPECT_EQ(driver::read_checkpoint_meta(dir, meta),
            io::SnapshotStatus::kBadMagic);
  {
    std::ofstream out(meta_path);
    out << "v6d-checkpoint 999\n";
  }
  EXPECT_EQ(driver::read_checkpoint_meta(dir, meta),
            io::SnapshotStatus::kVersionMismatch);
  {
    std::ofstream out(meta_path);
    out << "v6d-checkpoint " << driver::checkpoint_version() << "\n"
        << "a=0.5\n";  // remaining required fields missing
  }
  EXPECT_EQ(driver::read_checkpoint_meta(dir, meta),
            io::SnapshotStatus::kShortRead);
  std::filesystem::remove_all(dir);
}

}  // namespace
