// Scalar-vs-vector equivalence of the six directional sweeps under the
// dispatch contract: the SIMD / LAT kernels mirror advect_line_scalar
// operation-for-operation, so on any one build the vectorized result must
// match the scalar reference exactly or to 1 ulp (FMA-contracting builds
// may re-round the flux polynomial once; nothing else is allowed).
//
// Deliberately awkward shapes: odd velocity extents produce tail lanes
// (partial groups fall back to the scalar path mid-sweep), odd extents
// also misalign every lane group after the first (blocks are 64-byte
// aligned, interior group offsets are not), and mixed-sign uz lanes make
// the spatial z sweep straddle the floor(xi) boundary inside a group.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "mesh/grid.hpp"
#include "simd/dispatch.hpp"
#include "vlasov/splitting.hpp"
#include "vlasov/sweeps.hpp"

namespace {

using namespace v6d;
using vlasov::PhaseSpace;
using vlasov::SweepKernel;

/// Distance in representable floats (0 = bit-identical).  Signed-magnitude
/// trick: map the float ordering onto the integer ordering.
std::int64_t ulp_diff(float a, float b) {
  auto key = [](float x) {
    std::int32_t i;
    std::memcpy(&i, &x, sizeof(i));
    return static_cast<std::int64_t>(i < 0 ? INT32_MIN - i : i);
  };
  return std::abs(key(a) - key(b));
}

PhaseSpace make_odd_ps(int nx, int ny, int nz, int nux, int nuy, int nuz) {
  vlasov::PhaseSpaceDims d;
  d.nx = nx;
  d.ny = ny;
  d.nz = nz;
  d.nux = nux;
  d.nuy = nuy;
  d.nuz = nuz;
  vlasov::PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = 1.0;
  g.umax = 1.0;
  g.dux = 2.0 / nux;
  g.duy = 2.0 / nuy;
  g.duz = 2.0 / nuz;
  PhaseSpace f(d, g);
  // Deterministic rough field (positive, non-smooth) so the MP limiter
  // and positivity clamp both take real branches.
  Xoshiro256 rng(42);
  const auto& dims = f.dims();
  for (int ix = 0; ix < dims.nx; ++ix)
    for (int iy = 0; iy < dims.ny; ++iy)
      for (int iz = 0; iz < dims.nz; ++iz) {
        float* blk = f.block(ix, iy, iz);
        for (std::size_t v = 0; v < f.block_size(); ++v)
          blk[v] = static_cast<float>(0.05 + rng.next_double());
      }
  return f;
}

mesh::Grid3D<double> make_accel(const PhaseSpace& f) {
  const auto& d = f.dims();
  mesh::Grid3D<double> accel(d.nx, d.ny, d.nz);
  for (int i = 0; i < d.nx; ++i)
    for (int j = 0; j < d.ny; ++j)
      for (int k = 0; k < d.nz; ++k)
        accel.at(i, j, k) = 0.013 * (i + 1) - 0.017 * j + 0.011 * k;
  return accel;
}

std::int64_t worst_ulp(const PhaseSpace& a, const PhaseSpace& b) {
  const auto& d = a.dims();
  std::int64_t worst = 0;
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* pa = a.block(ix, iy, iz);
        const float* pb = b.block(ix, iy, iz);
        for (std::size_t v = 0; v < a.block_size(); ++v)
          worst = std::max(worst, ulp_diff(pa[v], pb[v]));
      }
  return worst;
}

struct Shape {
  int nx, ny, nz, nux, nuy, nuz;
};

// Odd extents everywhere; nuz chosen to exercise 0-3 tail lanes for any
// kLanes in {4, 8, 16}.
const Shape kShapes[] = {
    {5, 4, 6, 7, 9, 11},   // odd velocity extents, tail lanes on all axes
    {4, 5, 3, 8, 5, 13},   // nuz = 13: one more full group + 5-lane tail
    {6, 3, 5, 6, 10, 19},  // nuz = 19: unaligned groups deep into the block
};

class VlasovSimdEquivalence : public ::testing::TestWithParam<SweepKernel> {};

TEST_P(VlasovSimdEquivalence, PositionSweepsMatchScalarTo1Ulp) {
  for (const Shape& s : kShapes) {
    for (int axis = 0; axis < 3; ++axis) {
      auto fa = make_odd_ps(s.nx, s.ny, s.nz, s.nux, s.nuy, s.nuz);
      auto fb = fa;
      // Large enough that floor(xi) differs across the velocity sign
      // boundary; non-round so theta never vanishes.
      const double drift = 0.73 * fa.geom().dx / fa.geom().umax;
      fa.fill_ghosts_periodic();
      fb.fill_ghosts_periodic();
      vlasov::advect_position_axis(fa, axis, drift, SweepKernel::kScalar);
      vlasov::advect_position_axis(fb, axis, drift, GetParam());
      EXPECT_LE(worst_ulp(fa, fb), 1)
          << "position axis " << axis << " shape {" << s.nx << "," << s.ny
          << "," << s.nz << "," << s.nux << "," << s.nuy << "," << s.nuz
          << "}";
    }
  }
}

TEST_P(VlasovSimdEquivalence, VelocitySweepsMatchScalarTo1Ulp) {
  for (const Shape& s : kShapes) {
    const auto accel_proto =
        make_accel(make_odd_ps(s.nx, s.ny, s.nz, s.nux, s.nuy, s.nuz));
    for (int axis = 0; axis < 3; ++axis) {
      auto fa = make_odd_ps(s.nx, s.ny, s.nz, s.nux, s.nuy, s.nuz);
      auto fb = fa;
      vlasov::advect_velocity_axis(fa, axis, accel_proto, 1.7,
                                   SweepKernel::kScalar);
      vlasov::advect_velocity_axis(fb, axis, accel_proto, 1.7, GetParam());
      EXPECT_LE(worst_ulp(fa, fb), 1)
          << "velocity axis " << axis << " shape {" << s.nx << "," << s.ny
          << "," << s.nz << "," << s.nux << "," << s.nuy << "," << s.nuz
          << "}";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, VlasovSimdEquivalence,
                         ::testing::Values(SweepKernel::kSimd,
                                           SweepKernel::kLat,
                                           SweepKernel::kAuto));

TEST(VlasovFusedKick, BitIdenticalToPerAxisSweeps) {
  // The fused kick must be a pure memory-traffic optimization: blocks are
  // independent, so per-block axis fusion cannot change a single bit.
  for (const SweepKernel kernel :
       {SweepKernel::kScalar, SweepKernel::kSimd, SweepKernel::kAuto}) {
    auto fa = make_odd_ps(5, 4, 3, 7, 9, 11);
    auto fb = fa;
    const auto accel = make_accel(fa);
    for (int axis = 0; axis < 3; ++axis)
      vlasov::advect_velocity_axis(fa, axis, accel, 0.9, kernel);
    vlasov::advect_velocity_all(fb, accel, accel, accel, 0.9, kernel);
    EXPECT_EQ(worst_ulp(fa, fb), 0)
        << "kernel " << simd::to_string(kernel);
  }
}

TEST(SweepDispatch, ExplicitKernelsPassThrough) {
  for (const bool contiguous : {false, true}) {
    EXPECT_EQ(simd::resolve_sweep_kernel(SweepKernel::kScalar, contiguous),
              SweepKernel::kScalar);
    EXPECT_EQ(simd::resolve_sweep_kernel(SweepKernel::kSimd, contiguous),
              SweepKernel::kSimd);
    EXPECT_EQ(simd::resolve_sweep_kernel(SweepKernel::kLat, contiguous),
              SweepKernel::kLat);
  }
}

TEST(SweepDispatch, AutoPicksTable1Winners) {
  // (The V6D_KERNEL override is read once per process; these expectations
  // hold in the test environment where it is unset.)
  EXPECT_EQ(simd::resolve_sweep_kernel(SweepKernel::kAuto, false),
            SweepKernel::kSimd);
  EXPECT_EQ(simd::resolve_sweep_kernel(SweepKernel::kAuto, true),
            SweepKernel::kLat);
}

TEST(SweepDispatch, ParseRoundTrips) {
  for (const SweepKernel k : {SweepKernel::kScalar, SweepKernel::kSimd,
                              SweepKernel::kLat, SweepKernel::kAuto})
    EXPECT_EQ(simd::parse_sweep_kernel(simd::to_string(k),
                                       SweepKernel::kScalar),
              k);
  EXPECT_EQ(simd::parse_sweep_kernel("nonsense", SweepKernel::kAuto),
            SweepKernel::kAuto);
  EXPECT_EQ(simd::parse_sweep_kernel("", SweepKernel::kLat),
            SweepKernel::kLat);
}

}  // namespace
