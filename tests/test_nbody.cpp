#include <gtest/gtest.h>

#include <cmath>

#include "cosmology/neutrino_ic.hpp"
#include "cosmology/zeldovich.hpp"
#include "nbody/nbody_solver.hpp"

namespace {

using namespace v6d;
using namespace v6d::nbody;

TEST(Particles, WrapPositionsIntoBox) {
  Particles p(3);
  p.x = {-0.5, 10.5, 3.0};
  p.y = {0.0, -20.0, 5.0};
  p.z = {9.999, 10.0, -0.001};
  p.wrap_positions(10.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(p.x[i], 0.0);
    EXPECT_LT(p.x[i], 10.0);
    EXPECT_GE(p.y[i], 0.0);
    EXPECT_LT(p.y[i], 10.0);
    EXPECT_GE(p.z[i], 0.0);
    EXPECT_LT(p.z[i], 10.0);
  }
  EXPECT_DOUBLE_EQ(p.x[0], 9.5);
  EXPECT_DOUBLE_EQ(p.x[1], 0.5);
}

TEST(Integrator, KickAndDriftAreExactlyLinear) {
  Particles p(2);
  p.x = {1.0, 2.0};
  p.y = {1.0, 2.0};
  p.z = {1.0, 2.0};
  p.ux = {0.5, -0.5};
  p.uy = {0.0, 0.0};
  p.uz = {1.0, 1.0};
  std::vector<double> ax{1.0, 2.0}, ay{0.0, 0.0}, az{-1.0, 0.5};
  kick(p, ax, ay, az, 0.1);
  EXPECT_DOUBLE_EQ(p.ux[0], 0.6);
  EXPECT_DOUBLE_EQ(p.uz[1], 1.05);
  drift(p, 2.0, 100.0);
  EXPECT_DOUBLE_EQ(p.x[0], 1.0 + 2.0 * 0.6);
}

TEST(Integrator, KineticEnergy) {
  Particles p(2);
  p.mass = 2.0;
  p.ux = {1.0, 0.0};
  p.uy = {0.0, 2.0};
  p.uz = {0.0, 0.0};
  p.x = p.y = p.z = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(kinetic_energy(p), 0.5 * 2.0 * (1.0 + 4.0));
}

TEST(NBodySolver, LinearGrowthMatchesTheory) {
  // Evolve Zel'dovich ICs over a modest interval; the density contrast of
  // a long-wavelength mode must grow by ~ D(a1)/D(a0).
  cosmo::Params params = cosmo::Params::planck2015(0.0);
  cosmo::PowerSpectrum ps(params);
  cosmo::Background bg(params);
  const double box = 250.0;

  cosmo::ZeldovichOptions zopt;
  zopt.particles_per_side = 16;
  zopt.a_init = 0.1;
  zopt.seed = 4;
  auto ics = cosmo::zeldovich_ics(ps, box, zopt);

  NBodySolverOptions opt;
  opt.treepm.pm_grid = 16;
  opt.treepm.theta = 0.6;
  opt.treepm.eps_cells = 0.2;
  NBodySolver solver(box, bg, opt);
  solver.set_cdm(std::move(ics.particles));

  auto rms_contrast = [&](const Particles& p) {
    mesh::Grid3D<double> rho(16, 16, 16, 2);
    mesh::MeshPatch patch;
    patch.box = box;
    patch.n_global = 16;
    mesh::deposit(rho, patch, p.x, p.y, p.z, p.mass, mesh::Assignment::kCic);
    rho.fold_ghosts_periodic();
    const double mean = rho.sum_interior() / rho.interior_size();
    double acc = 0.0;
    for (int i = 0; i < 16; ++i)
      for (int j = 0; j < 16; ++j)
        for (int k = 0; k < 16; ++k) {
          const double d = rho.at(i, j, k) / mean - 1.0;
          acc += d * d;
        }
    return std::sqrt(acc / (16.0 * 16.0 * 16.0));
  };

  const double c0 = rms_contrast(solver.cdm());
  const double a_end = 0.2;
  double a = 0.1;
  const int steps = 8;
  for (int s = 0; s < steps; ++s) {
    const double a1 = 0.1 + (a_end - 0.1) * (s + 1) / steps;
    solver.step(a, a1);
    a = a1;
  }
  const double c1 = rms_contrast(solver.cdm());
  const double expected_growth =
      bg.growth_factor(a_end) / bg.growth_factor(0.1);
  EXPECT_NEAR(c1 / c0, expected_growth, 0.25 * expected_growth);
}

TEST(NBodySolver, MomentumStaysNearZero) {
  cosmo::Params params = cosmo::Params::planck2015(0.0);
  cosmo::PowerSpectrum ps(params);
  cosmo::Background bg(params);
  const double box = 100.0;
  cosmo::ZeldovichOptions zopt;
  zopt.particles_per_side = 8;
  zopt.a_init = 0.2;
  auto ics = cosmo::zeldovich_ics(ps, box, zopt);

  NBodySolverOptions opt;
  opt.treepm.pm_grid = 8;
  NBodySolver solver(box, bg, opt);
  solver.set_cdm(std::move(ics.particles));
  solver.step(0.2, 0.25);
  solver.step(0.25, 0.3);

  const auto& p = solver.cdm();
  double px = 0.0, pn = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    px += p.ux[i];
    pn += std::fabs(p.ux[i]);
  }
  EXPECT_LT(std::fabs(px), 0.05 * pn + 1e-12);
}

TEST(NBodySolver, HotSpeciesFeelsGravityAndKeepsThermalSpread) {
  cosmo::Params params = cosmo::Params::planck2015(0.4);
  cosmo::PowerSpectrum ps(params);
  cosmo::Background bg(params);
  const double box = 100.0;
  cosmo::ZeldovichOptions zopt;
  zopt.particles_per_side = 8;
  zopt.a_init = 0.2;
  auto ics = cosmo::zeldovich_ics(ps, box, zopt);

  const double u_th =
      cosmo::neutrino_thermal_velocity(params.m_nu_total_ev / 3.0);
  cosmo::NeutrinoIcOptions nopt;
  nopt.a_init = 0.2;
  auto nu = cosmo::sample_neutrino_particles(ps, box, 8, u_th, nopt);

  NBodySolverOptions opt;
  opt.treepm.pm_grid = 8;
  NBodySolver solver(box, bg, opt);
  solver.set_cdm(std::move(ics.particles));
  solver.set_hot(std::move(nu));
  solver.step(0.2, 0.24);

  double rms = 0.0;
  const auto& hot = *solver.hot();
  for (std::size_t i = 0; i < hot.size(); ++i)
    rms += hot.ux[i] * hot.ux[i] + hot.uy[i] * hot.uy[i] +
           hot.uz[i] * hot.uz[i];
  rms = std::sqrt(rms / static_cast<double>(hot.size()));
  // Canonical thermal velocities are frozen; gravity adds only a little.
  EXPECT_GT(rms, 2.0 * u_th);
  EXPECT_LT(rms, 6.0 * u_th);
}

}  // namespace
