// Distributed execution path: decomposition planning, brick <-> slab
// redistribution, N-rank vs serial equivalence of full driver runs,
// distributed moments, conservation, and per-rank checkpoint shard resume.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/runner.hpp"
#include "driver/distributed.hpp"
#include "driver/driver.hpp"
#include "driver/scenario.hpp"
#include "gravity/poisson.hpp"
#include "mesh/decomposition.hpp"
#include "mesh/halo.hpp"
#include "mesh/halo_plan.hpp"
#include "parallel/decomp_plan.hpp"
#include "parallel/distributed_solver.hpp"
#include "parallel/field_exchange.hpp"
#include "vlasov/moments.hpp"

namespace {

using namespace v6d;

driver::SimulationConfig make_cfg(
    const std::string& scenario,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  Options options;
  for (const auto& [key, value] : kv) options.set(key, value);
  auto cfg = driver::make_config(options, scenario);
  return cfg;
}

// ---------------------------------------------------------------------------
// Decomposition planning
// ---------------------------------------------------------------------------

TEST(DecompPlan, ParseAcceptsExplicitSpecs) {
  EXPECT_EQ(parallel::parse_decomp("2x2x1"), (std::array<int, 3>{2, 2, 1}));
  EXPECT_EQ(parallel::parse_decomp("8x1x1"), (std::array<int, 3>{8, 1, 1}));
  EXPECT_EQ(parallel::parse_decomp(""), (std::array<int, 3>{0, 0, 0}));
  EXPECT_EQ(parallel::parse_decomp("auto"), (std::array<int, 3>{0, 0, 0}));
  EXPECT_THROW(parallel::parse_decomp("2x2"), std::invalid_argument);
  EXPECT_THROW(parallel::parse_decomp("axbxc"), std::invalid_argument);
  EXPECT_THROW(parallel::parse_decomp("2x2x0"), std::invalid_argument);
  EXPECT_THROW(parallel::parse_decomp("2x2x2junk"), std::invalid_argument);
}

TEST(DecompPlan, ChoosePrefersCubicFeasibleSplits) {
  parallel::DecompConstraints c;
  c.vlasov = {8, 8, 8};
  c.pm_grid = 8;
  EXPECT_EQ(parallel::choose_decomp(8, c), (std::array<int, 3>{2, 2, 2}));
  const auto d2 = parallel::choose_decomp(2, c);
  EXPECT_EQ(d2[0] * d2[1] * d2[2], 2);
}

TEST(DecompPlan, ChooseAvoidsAxesThinnerThanGhost) {
  parallel::DecompConstraints c;
  c.vlasov = {16, 2, 2};  // quasi-1D two_stream shape
  c.pm_grid = 16;
  c.vlasov_ghost = 3;
  // y/z cannot be split (local extent would be 1 < ghost 3).
  EXPECT_EQ(parallel::choose_decomp(4, c), (std::array<int, 3>{4, 1, 1}));
  // 32 ranks cannot fit: x allows at most 16/3 -> 5 -> divisors 2, 4.
  EXPECT_THROW(parallel::choose_decomp(32, c), std::invalid_argument);
}

TEST(DecompPlan, ValidateRejectsIndivisibleAndThinBricks) {
  parallel::DecompConstraints c;
  c.vlasov = {8, 8, 8};
  c.pm_grid = 8;
  EXPECT_NO_THROW(parallel::validate_decomp({2, 2, 2}, 8, c));
  EXPECT_THROW(parallel::validate_decomp({2, 2, 1}, 8, c),
               std::invalid_argument);  // wrong product
  EXPECT_THROW(parallel::validate_decomp({8, 1, 1}, 8, c),
               std::invalid_argument);  // local 1 < ghost 3
  c.vlasov = {9, 9, 9};
  c.pm_grid = 9;
  EXPECT_THROW(parallel::validate_decomp({2, 1, 1}, 2, c),
               std::invalid_argument);  // 9 % 2 != 0
}

// ---------------------------------------------------------------------------
// Brick <-> slab redistribution
// ---------------------------------------------------------------------------

TEST(FieldExchange, BrickSlabRoundTripPreservesValues) {
  const int n = 8;
  for (int p : {1, 2, 4}) {
    comm::run(p, [&](comm::Communicator& comm) {
      comm::CartTopology cart(comm, comm::CartTopology::choose_dims(p));
      mesh::BrickDecomposition dec({n, n, n}, cart.dims(), cart.coords());
      mesh::Grid3D<double> brick(dec.local_n(0), dec.local_n(1),
                                 dec.local_n(2), 2);
      for (int i = 0; i < brick.nx(); ++i)
        for (int j = 0; j < brick.ny(); ++j)
          for (int k = 0; k < brick.nz(); ++k)
            brick.at(i, j, k) = (dec.offset(0) + i) * 1e4 +
                                (dec.offset(1) + j) * 1e2 +
                                (dec.offset(2) + k);
      fft::ParallelFft3D pfft(comm, n);
      auto slab = parallel::brick_to_slab(brick, dec, pfft, cart);
      // The slab must hold the global field rows this rank owns.
      for (int x = 0; x < pfft.local_nx(); ++x)
        for (int y = 0; y < n; ++y)
          for (int z = 0; z < n; ++z) {
            const double expected =
                (pfft.x_offset() + x) * 1e4 + y * 1e2 + z;
            ASSERT_DOUBLE_EQ(
                slab[(static_cast<std::size_t>(x) * n + y) * n + z].real(),
                expected);
          }
      mesh::Grid3D<double> back(dec.local_n(0), dec.local_n(1),
                                dec.local_n(2), 2);
      parallel::slab_to_brick(slab, pfft, dec, cart, back);
      for (int i = 0; i < brick.nx(); ++i)
        for (int j = 0; j < brick.ny(); ++j)
          for (int k = 0; k < brick.nz(); ++k)
            ASSERT_DOUBLE_EQ(back.at(i, j, k), brick.at(i, j, k));
    });
  }
}

TEST(FieldExchange, AllgatherBricksAssemblesGlobalField) {
  const int n = 6;
  comm::run(4, [&](comm::Communicator& comm) {
    comm::CartTopology cart(comm, comm::CartTopology::choose_dims(4));
    mesh::BrickDecomposition dec({n, n, n}, cart.dims(), cart.coords());
    mesh::Grid3D<double> brick(dec.local_n(0), dec.local_n(1),
                               dec.local_n(2));
    for (int i = 0; i < brick.nx(); ++i)
      for (int j = 0; j < brick.ny(); ++j)
        for (int k = 0; k < brick.nz(); ++k)
          brick.at(i, j, k) = (dec.offset(0) + i) + 10.0 * (dec.offset(1) + j) +
                              100.0 * (dec.offset(2) + k);
    mesh::Grid3D<double> global(n, n, n);
    parallel::allgather_bricks(brick, dec, comm, global);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        for (int k = 0; k < n; ++k)
          ASSERT_DOUBLE_EQ(global.at(i, j, k), i + 10.0 * j + 100.0 * k);
  });
}

// ---------------------------------------------------------------------------
// Serial vs N-rank equivalence of full driver runs
// ---------------------------------------------------------------------------

struct RunOutcome {
  mesh::Grid3D<double> density;
  double mass_before = 0.0, mass_after = 0.0;
  nbody::Particles particles;
};

RunOutcome run_scenario(const driver::SimulationConfig& cfg) {
  driver::Driver d(cfg);
  RunOutcome out;
  out.mass_before = d.solver().total_mass();
  d.run();
  out.mass_after = d.solver().total_mass();
  const auto& dims = d.solver().neutrinos().dims();
  out.density = mesh::Grid3D<double>(dims.nx, dims.ny, dims.nz);
  if (dims.total_interior() > 0)
    vlasov::compute_density(d.solver().neutrinos(), out.density);
  out.particles = d.solver().cdm();
  return out;
}

double max_rel_density_diff(const mesh::Grid3D<double>& a,
                            const mesh::Grid3D<double>& b) {
  double scale = 0.0;
  for (int i = 0; i < a.nx(); ++i)
    for (int j = 0; j < a.ny(); ++j)
      for (int k = 0; k < a.nz(); ++k)
        scale = std::max(scale, std::fabs(a.at(i, j, k)));
  double diff = 0.0;
  for (int i = 0; i < a.nx(); ++i)
    for (int j = 0; j < a.ny(); ++j)
      for (int k = 0; k < a.nz(); ++k)
        diff = std::max(diff, std::fabs(a.at(i, j, k) - b.at(i, j, k)));
  return scale > 0.0 ? diff / scale : diff;
}

class DistributedRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistributedRanks, VlasovOnlyMatchesSerial) {
  const int p = GetParam();
  const std::vector<std::pair<std::string, std::string>> base = {
      {"nx", "8"},     {"nu", "6"},           {"max_steps", "2"},
      {"seed", "11"},  {"checkpoint_dir", ""}};
  auto serial_cfg = make_cfg("vlasov_only", base);
  auto dist_cfg = serial_cfg;
  dist_cfg.ranks = p;

  const auto serial = run_scenario(serial_cfg);
  const auto dist = run_scenario(dist_cfg);

  // Same realization, same steps; the only divergence is FFT / reduction
  // rounding, so the density fields agree far beyond discretization error.
  EXPECT_LT(max_rel_density_diff(serial.density, dist.density), 2e-5);
  // Decomposition adds no conservation error: the distributed mass
  // trajectory tracks the serial one to <= 1e-12 relative.  (The scheme's
  // intrinsic drift — outflow through the zero-padded velocity-cube
  // boundary, ~1e-8 here — is identical in both runs.)
  EXPECT_NEAR(dist.mass_after, serial.mass_after,
              1e-12 * std::fabs(serial.mass_after));
  EXPECT_NEAR(dist.mass_after - dist.mass_before,
              serial.mass_after - serial.mass_before,
              1e-12 * std::fabs(serial.mass_before));
}

TEST_P(DistributedRanks, NeutrinoBoxMatchesSerial) {
  const int p = GetParam();
  const std::vector<std::pair<std::string, std::string>> base = {
      {"nx", "8"},      {"nu", "6"},  {"np", "8"},
      {"max_steps", "2"}, {"seed", "7"}, {"checkpoint_dir", ""}};
  auto serial_cfg = make_cfg("neutrino_box", base);
  auto dist_cfg = serial_cfg;
  dist_cfg.ranks = p;

  const auto serial = run_scenario(serial_cfg);
  const auto dist = run_scenario(dist_cfg);

  EXPECT_LT(max_rel_density_diff(serial.density, dist.density), 2e-5);
  // The acceptance bar: an N-rank neutrino_box conserves mass exactly as
  // well as the single-rank run — the decomposition contributes <= 1e-12
  // relative on top of the scheme's intrinsic drift.
  EXPECT_NEAR(dist.mass_after, serial.mass_after,
              1e-12 * std::fabs(serial.mass_after));
  EXPECT_NEAR(dist.mass_after - dist.mass_before,
              serial.mass_after - serial.mass_before,
              1e-12 * std::fabs(serial.mass_before));

  // Replicated particles see the same tree force and a PM force that
  // differs only by FFT rounding.
  ASSERT_EQ(serial.particles.size(), dist.particles.size());
  double max_dx = 0.0;
  for (std::size_t i = 0; i < serial.particles.size(); ++i) {
    max_dx = std::max(max_dx,
                      std::fabs(serial.particles.x[i] - dist.particles.x[i]));
    max_dx = std::max(max_dx,
                      std::fabs(serial.particles.y[i] - dist.particles.y[i]));
    max_dx = std::max(max_dx,
                      std::fabs(serial.particles.z[i] - dist.particles.z[i]));
  }
  EXPECT_LT(max_dx, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedRanks,
                         ::testing::Values(2, 4, 8));

TEST(DistributedTwoStream, MatchesSerialAcrossThinAxes) {
  // ny = nz = 2 < ghost 3: exercises the local periodic wrap path of the
  // halo exchange on the undecomposed axes.
  const std::vector<std::pair<std::string, std::string>> base = {
      {"nx", "16"}, {"nu", "8"}, {"max_steps", "3"}, {"checkpoint_dir", ""}};
  auto serial_cfg = make_cfg("two_stream", base);
  auto dist_cfg = serial_cfg;
  dist_cfg.ranks = 4;  // auto decomp must pick 4x1x1

  const auto serial = run_scenario(serial_cfg);
  const auto dist = run_scenario(dist_cfg);

  EXPECT_LT(max_rel_density_diff(serial.density, dist.density), 2e-5);
  EXPECT_NEAR(dist.mass_after, serial.mass_after,
              1e-12 * std::fabs(serial.mass_after));
}

TEST(DistributedConservation, PositionSweepsConserveMassAcrossRanks) {
  // Pure drift cycle (no velocity sweeps, so no velocity-boundary
  // outflow): flux-form advection through exchanged halos is structurally
  // conservative — interface fluxes at brick boundaries are computed from
  // identical stencil values on both sides.  Only per-cell float store
  // rounding remains.
  const int n = 8, nu = 6;
  for (int p : {2, 8}) {
    comm::run(p, [&](comm::Communicator& comm) {
      comm::CartTopology cart(comm, comm::CartTopology::choose_dims(p));
      mesh::BrickDecomposition dec({n, n, n}, cart.dims(), cart.coords());
      vlasov::PhaseSpaceDims dims;
      dims.nx = dec.local_n(0);
      dims.ny = dec.local_n(1);
      dims.nz = dec.local_n(2);
      dims.nux = dims.nuy = dims.nuz = nu;
      vlasov::PhaseSpaceGeometry geom;
      geom.umax = 1.0;
      geom.dux = geom.duy = geom.duz = 2.0 / nu;
      vlasov::PhaseSpace f(dims, geom);
      for (int i = 0; i < dims.nx; ++i)
        for (int j = 0; j < dims.ny; ++j)
          for (int k = 0; k < dims.nz; ++k) {
            float* blk = f.block(i, j, k);
            for (std::size_t v = 0; v < f.block_size(); ++v)
              blk[v] = 0.3f +
                       0.1f * std::sin(0.7f * (dec.offset(0) + i) +
                                       0.4f * (dec.offset(1) + j) +
                                       0.9f * (dec.offset(2) + k) + 0.05f * v);
          }
      const double m0 = comm.allreduce_sum(f.total_mass());
      for (int s = 0; s < 3; ++s)
        for (int axis : {2, 1, 0}) {
          mesh::exchange_phase_space_halo(f, cart);
          vlasov::advect_position_axis(f, axis, 0.37, vlasov::SweepKernel::kAuto);
        }
      const double m1 = comm.allreduce_sum(f.total_mass());
      // Bound: random-walk of per-cell float rounding over ~10^5 cells,
      // a few 1e-10 relative; decomposition must not add to it.
      EXPECT_NEAR(m1, m0, 1e-9 * m0) << p << " ranks";
    });
  }
}

// ---------------------------------------------------------------------------
// Overlapped vs synchronous stepping (exact equality)
// ---------------------------------------------------------------------------

// Force the interior/boundary sweep split on (its auto heuristic backs
// off to lean blocking exchanges on single-hardware-thread hosts), so
// these tests always exercise the full overlap pipeline.
struct ScopedSplitOn {
  ScopedSplitOn() { setenv("V6D_OVERLAP_SPLIT", "on", 1); }
  ~ScopedSplitOn() { unsetenv("V6D_OVERLAP_SPLIT"); }
};

// The overlapped pipeline restructures *when* communication happens, never
// what is computed: every stage performs the same floating-point
// operations in the same order.  So overlap=on must match overlap=off bit
// for bit — EXPECT_EQ on doubles, not a tolerance.
void expect_runs_bit_identical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.mass_before, b.mass_before);
  EXPECT_EQ(a.mass_after, b.mass_after);
  for (int i = 0; i < a.density.nx(); ++i)
    for (int j = 0; j < a.density.ny(); ++j)
      for (int k = 0; k < a.density.nz(); ++k)
        ASSERT_EQ(a.density.at(i, j, k), b.density.at(i, j, k))
            << "density cell " << i << " " << j << " " << k;
  ASSERT_EQ(a.particles.size(), b.particles.size());
  for (std::size_t i = 0; i < a.particles.size(); ++i) {
    ASSERT_EQ(a.particles.x[i], b.particles.x[i]) << "particle " << i;
    ASSERT_EQ(a.particles.y[i], b.particles.y[i]) << "particle " << i;
    ASSERT_EQ(a.particles.z[i], b.particles.z[i]) << "particle " << i;
    ASSERT_EQ(a.particles.ux[i], b.particles.ux[i]) << "particle " << i;
    ASSERT_EQ(a.particles.uy[i], b.particles.uy[i]) << "particle " << i;
    ASSERT_EQ(a.particles.uz[i], b.particles.uz[i]) << "particle " << i;
  }
}

TEST_P(DistributedRanks, OverlapBitIdenticalVlasovOnly) {
  ScopedSplitOn split_on;
  const int p = GetParam();
  auto sync_cfg = make_cfg("vlasov_only", {{"nx", "8"},
                                           {"nu", "6"},
                                           {"max_steps", "2"},
                                           {"seed", "11"},
                                           {"checkpoint_dir", ""}});
  sync_cfg.ranks = p;
  sync_cfg.overlap = false;
  auto overlap_cfg = sync_cfg;
  overlap_cfg.overlap = true;
  expect_runs_bit_identical(run_scenario(sync_cfg),
                            run_scenario(overlap_cfg));
}

TEST_P(DistributedRanks, OverlapBitIdenticalNeutrinoBox) {
  ScopedSplitOn split_on;
  const int p = GetParam();
  auto sync_cfg = make_cfg("neutrino_box", {{"nx", "8"},
                                            {"nu", "6"},
                                            {"np", "8"},
                                            {"max_steps", "2"},
                                            {"seed", "7"},
                                            {"checkpoint_dir", ""}});
  sync_cfg.ranks = p;
  sync_cfg.overlap = false;
  auto overlap_cfg = sync_cfg;
  overlap_cfg.overlap = true;
  expect_runs_bit_identical(run_scenario(sync_cfg),
                            run_scenario(overlap_cfg));
}

TEST(DistributedOverlap, BitIdenticalAcrossThinTwoStreamAxes) {
  ScopedSplitOn split_on;
  // ny = nz = 2 < 2*ghost: the overlapped drift must fall back to the
  // blocking full-line path on the thin (undecomposed, wrap-filled) axes
  // while still splitting the decomposed x axis — and stay bit-identical.
  auto sync_cfg = make_cfg("two_stream", {{"nx", "16"},
                                          {"nu", "8"},
                                          {"max_steps", "3"},
                                          {"checkpoint_dir", ""}});
  sync_cfg.ranks = 4;
  sync_cfg.overlap = false;
  auto overlap_cfg = sync_cfg;
  overlap_cfg.overlap = true;
  expect_runs_bit_identical(run_scenario(sync_cfg),
                            run_scenario(overlap_cfg));
}

TEST(DistributedOverlap, AbortMidOverlapWakesPeers) {
  // A rank dying between begin and finish of an overlapped exchange must
  // wake peers blocked on its never-coming faces, and the original error
  // must surface (the overlap pipeline's variant of the PR-4 abort fix).
  try {
    comm::run(2, [&](comm::Communicator& comm) {
      comm::CartTopology cart(comm, {2, 1, 1});
      vlasov::PhaseSpaceDims dims;
      dims.nx = 8;
      dims.ny = dims.nz = 8;
      dims.nux = dims.nuy = dims.nuz = 2;
      vlasov::PhaseSpace f(dims, vlasov::PhaseSpaceGeometry{});
      mesh::HaloPlan plan(cart, dims, 960);
      if (comm.rank() == 0) {
        plan.begin_axis(f, 0);
        throw std::runtime_error("rank 0 died mid-overlap");
      }
      // Rank 1's first round completes (rank 0's faces were sent), but the
      // second round blocks on faces rank 0 never posts.
      // v6d-analyze: allow(overlap-window): rank 0's begin above is that rank's own instance (it threw mid-overlap on purpose); this is rank 1's first begin
      plan.begin_axis(f, 0);
      plan.finish_axis(f, 0);
      plan.begin_axis(f, 0);
      plan.finish_axis(f, 0);
      FAIL() << "finish_axis against a dead rank must not return";
    });
    FAIL() << "run() must rethrow the rank error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0 died mid-overlap");
  }
}

// ---------------------------------------------------------------------------
// Distributed moments
// ---------------------------------------------------------------------------

TEST(DistributedMoments, LocalDensityBricksAssembleToSerialDensity) {
  auto cfg = make_cfg("vlasov_only", {{"nx", "8"},
                                      {"nu", "6"},
                                      {"checkpoint_dir", ""}});
  cfg.ranks = 4;
  driver::Driver d(cfg);
  const auto& f = d.solver().neutrinos();
  mesh::Grid3D<double> serial(f.dims().nx, f.dims().ny, f.dims().nz);
  vlasov::compute_density(f, serial);

  const auto dims = driver::resolve_run_decomp(cfg, d.solver());
  comm::run(4, [&](comm::Communicator& comm) {
    parallel::DistributedHybridSolver ds(d.solver(), comm, dims);
    const auto& lf = ds.local_f();
    mesh::Grid3D<double> local(lf.dims().nx, lf.dims().ny, lf.dims().nz);
    vlasov::compute_density(lf, local);
    mesh::Grid3D<double> global(f.dims().nx, f.dims().ny, f.dims().nz);
    parallel::allgather_bricks(local, ds.decomposition(), comm, global);
    // Per-cell moments are local reductions over identical float blocks:
    // the assembly must match the serial moment exactly.
    for (int i = 0; i < serial.nx(); ++i)
      for (int j = 0; j < serial.ny(); ++j)
        for (int k = 0; k < serial.nz(); ++k)
          ASSERT_DOUBLE_EQ(global.at(i, j, k), serial.at(i, j, k));
  });
}

// ---------------------------------------------------------------------------
// Per-rank checkpoint shards
// ---------------------------------------------------------------------------

TEST(DistributedCheckpoint, ShardedResumeIsBitIdentical) {
  namespace fs = std::filesystem;
  const auto base_dir = fs::temp_directory_path() / "v6d_dist_ckpt";
  fs::remove_all(base_dir);
  const std::string dir_full = (base_dir / "full").string();
  const std::string dir_resumed = (base_dir / "resumed").string();

  const std::vector<std::pair<std::string, std::string>> base = {
      {"nx", "8"}, {"nu", "6"}, {"np", "8"}, {"seed", "5"}};
  auto cfg = make_cfg("neutrino_box", base);
  cfg.ranks = 2;

  // Uninterrupted 4-step run.
  auto cfg_full = cfg;
  cfg_full.max_steps = 4;
  cfg_full.checkpoint_dir = dir_full;
  driver::Driver full(cfg_full);
  full.run();

  // Killed-at-2 + resumed-to-4 run.
  auto cfg_half = cfg;
  cfg_half.max_steps = 2;
  cfg_half.checkpoint_dir = dir_resumed;
  driver::Driver half(cfg_half);
  half.run();
  Options overrides;
  overrides.set("max_steps", "4");
  driver::Driver resumed = driver::Driver::resume(dir_resumed, overrides);
  EXPECT_EQ(resumed.step_count(), 2);
  resumed.run();
  EXPECT_EQ(resumed.step_count(), 4);

  // The checkpoints written at step 4 must agree bit for bit: shards,
  // particles, and the step-boundary force cache.
  for (int r = 0; r < 2; ++r) {
    const std::string shard = "phase_space.4.r" + std::to_string(r) + ".bin";
    std::ifstream a(fs::path(dir_full) / shard, std::ios::binary);
    std::ifstream b(fs::path(dir_resumed) / shard, std::ios::binary);
    ASSERT_TRUE(a.good() && b.good()) << shard;
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b) << shard;
  }
  for (const char* payload : {"particles.4.bin", "forces.4.bin"}) {
    std::ifstream a(fs::path(dir_full) / payload, std::ios::binary);
    std::ifstream b(fs::path(dir_resumed) / payload, std::ios::binary);
    ASSERT_TRUE(a.good() && b.good()) << payload;
    const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b) << payload;
  }
  fs::remove_all(base_dir);
}

TEST(DistributedCheckpoint, GarbageCollectionKeepsLiveShards) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "v6d_dist_gc";
  fs::remove_all(dir);
  auto cfg = make_cfg("vlasov_only", {{"nx", "8"}, {"nu", "6"}});
  cfg.ranks = 2;
  cfg.max_steps = 2;
  cfg.checkpoint_every = 1;  // supersede the step-1 checkpoint with step 2
  cfg.checkpoint_dir = dir.string();
  driver::Driver d(cfg);
  d.run();
  EXPECT_TRUE(fs::exists(dir / "phase_space.2.r0.bin"));
  EXPECT_TRUE(fs::exists(dir / "phase_space.2.r1.bin"));
  EXPECT_FALSE(fs::exists(dir / "phase_space.1.r0.bin"));
  EXPECT_FALSE(fs::exists(dir / "phase_space.1.r1.bin"));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Green-function sharing
// ---------------------------------------------------------------------------

TEST(GreenFunction, FreeFunctionMatchesSolverConventions) {
  gravity::PoissonOptions options;
  options.prefactor = 2.5;
  options.deconvolve_order = 2;
  EXPECT_DOUBLE_EQ(
      gravity::green_times_window(0, 0, 0, 8, 8, 8, 1.0, 1.0, 1.0, options),
      0.0);
  const double g = gravity::green_times_window(1, 2, 3, 8, 8, 8, 1.0, 1.0,
                                               1.0, options);
  EXPECT_LT(g, 0.0);  // attractive potential
  EXPECT_DOUBLE_EQ(gravity::fft_wavenumber(0, 8, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(gravity::fft_wavenumber(7, 8, 1.0), -2.0 * M_PI);
}

}  // namespace
