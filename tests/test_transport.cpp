// Cross-backend conformance suite for the transport seam.
//
// Every behavioral test is value-parameterized over {inproc, tcp} and runs
// through run_transport, so the two backends are held to one contract:
// per-pair FIFO ordering, zero-length and multi-megabyte payloads,
// out-of-tag-order irecv drains, collectives under concurrent p2p traffic,
// abort propagation into parked waiters, and identical traffic accounting.
// The fault-injection half wraps ranks in FaultyTransport and asserts the
// failure surface: a lost or truncated message ends the job with a clean
// TransportError/AbortedError on every rank — never a hang, never a
// partially delivered message.
//
// v6d-analyze: allow-file(tag-space): conformance tests drive raw low
// tags on isolated per-test worlds; the kFirstUserTag floor governs
// production exchanges.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/faulty_transport.hpp"
#include "comm/runner.hpp"
#include "comm/transport.hpp"

namespace {

using namespace v6d::comm;

LaunchOptions backend_options(const std::string& backend) {
  LaunchOptions options;
  options.backend = backend;
  options.timeout_s = 30.0;
  return options;
}

std::vector<std::uint8_t> pattern_payload(int seed, std::size_t bytes) {
  std::vector<std::uint8_t> payload(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    payload[i] = static_cast<std::uint8_t>((seed * 131 + i * 7) & 0xff);
  return payload;
}

class TransportConformance
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TransportConformance, NameMatchesBackend) {
  run_transport(2, backend_options(GetParam()), [&](Communicator& comm) {
    EXPECT_STREQ(comm.transport().name(), GetParam());
    EXPECT_EQ(comm.size(), 2);
  });
}

TEST_P(TransportConformance, FifoOrderingPerPeerPair) {
  const int p = 3;
  const int kMessages = 64;
  run_transport(p, backend_options(GetParam()), [&](Communicator& comm) {
    // Every rank floods every peer on one tag; FIFO per (source, tag)
    // means sequence numbers arrive strictly ascending per sender.
    for (int m = 0; m < kMessages; ++m)
      for (int dest = 0; dest < p; ++dest) {
        if (dest == comm.rank()) continue;
        const std::int32_t seq[2] = {comm.rank(), m};
        comm.send(dest, 7, seq, 2);
      }
    for (int source = 0; source < p; ++source) {
      if (source == comm.rank()) continue;
      for (int m = 0; m < kMessages; ++m) {
        std::int32_t seq[2] = {-1, -1};
        comm.recv(source, 7, seq, 2);
        EXPECT_EQ(seq[0], source);
        EXPECT_EQ(seq[1], m) << "out-of-order from rank " << source;
      }
    }
  });
}

TEST_P(TransportConformance, ZeroLengthAndMultiMegabytePayloads) {
  const std::size_t kBig = 3 * (std::size_t{1} << 20) + 17;  // ~3 MiB, odd
  run_transport(2, backend_options(GetParam()), [&](Communicator& comm) {
    const int peer = 1 - comm.rank();
    const auto big = pattern_payload(comm.rank(), kBig);
    comm.send_bytes(peer, 1, nullptr, 0);
    comm.send_bytes(peer, 2, big.data(), big.size());
    comm.send_bytes(peer, 3, nullptr, 0);

    EXPECT_TRUE(comm.recv_bytes(peer, 1).empty());
    const auto got = comm.recv_bytes(peer, 2);
    ASSERT_EQ(got.size(), kBig);
    EXPECT_EQ(got, pattern_payload(peer, kBig));
    EXPECT_TRUE(comm.recv_bytes(peer, 3).empty());
  });
}

TEST_P(TransportConformance, InterleavedIrecvAndBlockingRecvDrains) {
  run_transport(2, backend_options(GetParam()), [&](Communicator& comm) {
    const int peer = 1 - comm.rank();
    for (int tag = 10; tag <= 14; ++tag) {
      const double value = 100.0 * comm.rank() + tag;
      comm.send(peer, tag, &value, 1);
    }
    // Drain out of tag order, mixing posted handles with blocking recvs;
    // per-(source, tag) queues are independent, so this must not block.
    auto h14 = comm.irecv(peer, 14);
    auto h10 = comm.irecv(peer, 10);
    double v12 = 0.0, v11 = 0.0, v13 = 0.0;
    comm.recv(peer, 12, &v12, 1);
    double v14 = 0.0;
    h14.wait_into(&v14, 1);
    comm.recv(peer, 13, &v13, 1);
    double v10 = 0.0;
    h10.wait_into(&v10, 1);
    comm.recv(peer, 11, &v11, 1);
    EXPECT_DOUBLE_EQ(v10, 100.0 * peer + 10);
    EXPECT_DOUBLE_EQ(v11, 100.0 * peer + 11);
    EXPECT_DOUBLE_EQ(v12, 100.0 * peer + 12);
    EXPECT_DOUBLE_EQ(v13, 100.0 * peer + 13);
    EXPECT_DOUBLE_EQ(v14, 100.0 * peer + 14);
  });
}

TEST_P(TransportConformance, CollectivesUnderConcurrentP2PTraffic) {
  const int p = 3;
  run_transport(p, backend_options(GetParam()), [&](Communicator& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() - 1 + p) % p;
    double ring_sum = 0.0;
    for (int round = 0; round < 8; ++round) {
      // p2p in flight...
      const double out = comm.rank() + 1000.0 * round;
      comm.send(next, 40 + round, &out, 1);
      // ...while the whole world does collectives on the same step.
      double reduced = comm.rank() + round;
      comm.allreduce_sum(&reduced, 1);
      EXPECT_DOUBLE_EQ(reduced, p * (p - 1) / 2.0 + p * round);
      int blessed = comm.rank() == round % p ? 99 + round : -1;
      comm.bcast(&blessed, 1, round % p);
      EXPECT_EQ(blessed, 99 + round);
      comm.barrier();
      double in = 0.0;
      comm.recv(prev, 40 + round, &in, 1);
      ring_sum += in;
      EXPECT_DOUBLE_EQ(in, prev + 1000.0 * round);
    }
    EXPECT_DOUBLE_EQ(comm.allreduce_max(ring_sum),
                     comm.allreduce_max(ring_sum));  // world still sane
  });
}

TEST_P(TransportConformance, AlltoallvVariableSizes) {
  const int p = 3;
  run_transport(p, backend_options(GetParam()), [&](Communicator& comm) {
    std::vector<std::vector<std::uint8_t>> send(p);
    for (int dest = 0; dest < p; ++dest)
      send[static_cast<std::size_t>(dest)] = pattern_payload(
          comm.rank() * p + dest,
          static_cast<std::size_t>((comm.rank() + 1) * (dest + 2) * 37));
    const auto recv = comm.alltoallv(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(p));
    for (int source = 0; source < p; ++source)
      EXPECT_EQ(recv[static_cast<std::size_t>(source)],
                pattern_payload(
                    source * p + comm.rank(),
                    static_cast<std::size_t>((source + 1) *
                                             (comm.rank() + 2) * 37)));
  });
}

TEST_P(TransportConformance, ReductionsBitIdenticalToSerialSum) {
  // Rank-ordered summation is part of the transport contract: the reduced
  // value must equal the serial left-to-right sum bit for bit.
  const int p = 4;
  run_transport(p, backend_options(GetParam()), [&](Communicator& comm) {
    const double mine = 0.1 * (comm.rank() + 1) + 1e-13 * comm.rank();
    double reduced = mine;
    comm.allreduce_sum(&reduced, 1);
    double serial = 0.0;
    for (int r = 0; r < p; ++r) serial += 0.1 * (r + 1) + 1e-13 * r;
    EXPECT_EQ(reduced, serial);  // exact, not almost-equal
  });
}

TEST_P(TransportConformance, SelfSendDelivers) {
  run_transport(2, backend_options(GetParam()), [&](Communicator& comm) {
    const std::int64_t value = 42 + comm.rank();
    comm.send(comm.rank(), 5, &value, 1);
    std::int64_t got = 0;
    comm.recv(comm.rank(), 5, &got, 1);
    EXPECT_EQ(got, value);
  });
}

TEST_P(TransportConformance, AbortWhileParkedWakesWaiter) {
  // Rank 1 fails while rank 0 is parked on a message that will never
  // arrive; the abort must wake rank 0 (AbortedError, suppressed by the
  // runner) and the original exception must reach the caller.
  EXPECT_THROW(
      run_transport(2, backend_options(GetParam()),
                    [&](Communicator& comm) {
                      comm.barrier();  // both ranks up before the failure
                      if (comm.rank() == 1)
                        throw std::runtime_error("rank 1 exploded");
                      double never = 0.0;
                      comm.recv(1, 9, &never, 1);  // must not hang
                    }),
      std::runtime_error);
}

TEST_P(TransportConformance, TrafficCountersIdenticalAcrossBackends) {
  // The accounting contract: p2p traffic is counted, collectives are not.
  // Whatever numbers a pattern produces in-process, TCP must reproduce.
  const int p = 2;
  auto measure = [&](const std::string& backend) {
    std::vector<std::uint64_t> sent(p), msgs(p), popped(p);
    run_transport(p, backend_options(backend), [&](Communicator& comm) {
      const int peer = 1 - comm.rank();
      const auto payload = pattern_payload(comm.rank(), 1024);
      comm.send_bytes(peer, 1, payload.data(), payload.size());
      comm.send_bytes(peer, 2, payload.data(), 100);
      double x = 1.0;
      comm.allreduce_sum(&x, 1);  // must not appear in any counter
      (void)comm.recv_bytes(peer, 1);
      (void)comm.recv_bytes(peer, 2);
      comm.barrier();
      const auto r = static_cast<std::size_t>(comm.rank());
      sent[r] = comm.bytes_sent();
      msgs[r] = comm.messages_sent();
      popped[r] = comm.recv_stats().bytes_popped;
    });
    return std::make_tuple(sent, msgs, popped);
  };
  EXPECT_EQ(measure("inproc"), measure(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values("inproc", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// ---- fault injection --------------------------------------------------

/// LaunchOptions that wrap `victim`'s endpoint in a FaultyTransport.
LaunchOptions faulty_options(const std::string& backend, int victim,
                             const FaultPlan& plan) {
  LaunchOptions options = backend_options(backend);
  options.wrap = [victim, plan](std::unique_ptr<Transport> inner, int rank) {
    if (rank != victim) return inner;
    return std::unique_ptr<Transport>(
        new FaultyTransport(std::move(inner), plan));
  };
  return options;
}

class TransportFaults : public ::testing::TestWithParam<const char*> {};

TEST_P(TransportFaults, DroppedMessageAbortsCleanlyNeverHangs) {
  FaultPlan plan;
  plan.drop_after = 0;  // the very first send is lost
  EXPECT_THROW(
      run_transport(2, faulty_options(GetParam(), 1, plan),
                    [&](Communicator& comm) {
                      comm.barrier();
                      if (comm.rank() == 1) {
                        const double v = 3.0;
                        comm.send(0, 1, &v, 1);  // dropped -> throws
                        FAIL() << "dropped send must not return";
                      }
                      double got = 0.0;
                      comm.recv(1, 1, &got, 1);  // woken, not hung
                      FAIL() << "receiver of a dropped message must abort";
                    }),
      TransportError);
}

TEST_P(TransportFaults, ShortWriteAbortsWithoutPartialDelivery) {
  FaultPlan plan;
  plan.fail_send_after = 1;  // first send intact, second truncated
  EXPECT_THROW(
      run_transport(2, faulty_options(GetParam(), 1, plan),
                    [&](Communicator& comm) {
                      if (comm.rank() == 1) {
                        const auto ok = pattern_payload(1, 512);
                        comm.send_bytes(0, 1, ok.data(), ok.size());
                        comm.send_bytes(0, 2, ok.data(), ok.size());
                        FAIL() << "short write must not return";
                      }
                      // The intact message arrives whole...
                      const auto got = comm.recv_bytes(1, 1);
                      EXPECT_EQ(got, pattern_payload(1, 512));
                      // ...the truncated one is never delivered: this pop
                      // wakes with AbortedError instead of bytes.
                      (void)comm.recv_bytes(1, 2);
                      FAIL() << "truncated message must never be delivered";
                    }),
      TransportError);
}

TEST_P(TransportFaults, DelaysAreBenign) {
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_ms = 2.0;
  run_transport(2, faulty_options(GetParam(), 0, plan),
                [&](Communicator& comm) {
                  const int peer = 1 - comm.rank();
                  for (int m = 0; m < 5; ++m) {
                    const std::int32_t v = 10 * comm.rank() + m;
                    comm.send(peer, m, &v, 1);
                  }
                  for (int m = 0; m < 5; ++m) {
                    std::int32_t v = -1;
                    comm.recv(peer, m, &v, 1);
                    EXPECT_EQ(v, 10 * peer + m);
                  }
                  double sum = comm.rank();
                  comm.allreduce_sum(&sum, 1);
                  EXPECT_DOUBLE_EQ(sum, 1.0);
                });
}

TEST_P(TransportFaults, PeerDisconnectMidJobSurfacesCleanError) {
  // The victim vanishes abruptly (fail_hard: over TCP, a half-written
  // frame then a dead socket).  Survivors must diagnose a dead peer and
  // abort — the partial frame is discarded, never delivered as data.
  FaultPlan plan;
  plan.disconnect_after = 1;  // one good message, then the plug is pulled
  EXPECT_THROW(
      run_transport(3, faulty_options(GetParam(), 2, plan),
                    [&](Communicator& comm) {
                      comm.barrier();
                      if (comm.rank() == 2) {
                        const auto ok = pattern_payload(2, 256);
                        comm.send_bytes(0, 1, ok.data(), ok.size());
                        comm.send_bytes(1, 1, ok.data(), ok.size());
                        FAIL() << "disconnected send must not return";
                      }
                      const auto got = comm.recv_bytes(2, 1);
                      EXPECT_EQ(got, pattern_payload(2, 256));
                      (void)comm.recv_bytes(2, 2);  // never sent
                      FAIL() << "waiting on a dead peer must abort";
                    }),
      TransportError);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportFaults,
                         ::testing::Values("inproc", "tcp"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
