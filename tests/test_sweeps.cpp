#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "vlasov/moments.hpp"
#include "vlasov/splitting.hpp"
#include "vlasov/sweeps.hpp"

namespace {

using namespace v6d::vlasov;

PhaseSpace make_ps(int nx, int nu, double box = 8.0, double umax = 1.0) {
  PhaseSpaceDims d;
  d.nx = d.ny = d.nz = nx;
  d.nux = d.nuy = d.nuz = nu;
  PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = box / nx;
  g.umax = umax;
  g.dux = g.duy = g.duz = 2.0 * umax / nu;
  return PhaseSpace(d, g);
}

// Gaussian blob in space x Maxwellian in velocity.
void fill_blob(PhaseSpace& f, double center_frac = 0.5) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double cx = center_frac * d.nx * g.dx;
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        float* blk = f.block(ix, iy, iz);
        const double rx = g.x(ix) - cx, ry = g.y(iy) - cx, rz = g.z(iz) - cx;
        const double amp =
            std::exp(-(rx * rx + ry * ry + rz * rz) / (2.0 * 1.5 * 1.5));
        std::size_t v = 0;
        for (int a = 0; a < d.nux; ++a)
          for (int b = 0; b < d.nuy; ++b)
            for (int c = 0; c < d.nuz; ++c, ++v) {
              const double u2 = g.ux(a) * g.ux(a) + g.uy(b) * g.uy(b) +
                                g.uz(c) * g.uz(c);
              blk[v] = static_cast<float>(
                  amp * std::exp(-u2 / (2.0 * 0.3 * 0.3)));
            }
      }
}

class SweepKernels : public ::testing::TestWithParam<SweepKernel> {};

TEST_P(SweepKernels, PositionSweepsConserveMass) {
  auto f = make_ps(8, 8);
  fill_blob(f);
  const double mass0 = f.total_mass();
  for (int axis = 0; axis < 3; ++axis) {
    f.fill_ghosts_periodic();
    advect_position_axis(f, axis, 0.9 * f.geom().dx / f.geom().umax,
                         GetParam());
  }
  EXPECT_NEAR(f.total_mass(), mass0, 2e-5 * mass0);
  EXPECT_GE(f.min_interior(), 0.0f);
}

TEST_P(SweepKernels, VelocitySweepsConserveMassWithinDomain) {
  // Wide velocity cube (edge at ~6.7 sigma) so the Maxwellian tail carries
  // negligible mass through the open boundary during a small kick.
  auto f = make_ps(4, 16, 8.0, 2.0);
  fill_blob(f);
  const double mass0 = f.total_mass();
  v6d::mesh::Grid3D<double> accel(4, 4, 4);
  accel.fill(0.02);
  for (int axis = 0; axis < 3; ++axis)
    advect_velocity_axis(f, axis, accel, 1.0, GetParam());
  EXPECT_NEAR(f.total_mass(), mass0, 1e-4 * mass0);
  EXPECT_GE(f.min_interior(), 0.0f);
}

TEST_P(SweepKernels, MatchesScalarReference) {
  if (GetParam() == SweepKernel::kScalar) GTEST_SKIP();
  auto fa = make_ps(6, 8);
  auto fb = make_ps(6, 8);
  fill_blob(fa);
  fill_blob(fb);
  v6d::mesh::Grid3D<double> accel(6, 6, 6);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j)
      for (int k = 0; k < 6; ++k)
        accel.at(i, j, k) = 0.02 * (i - j + 2 * k);

  for (int axis = 0; axis < 3; ++axis) {
    fa.fill_ghosts_periodic();
    fb.fill_ghosts_periodic();
    advect_position_axis(fa, axis, 0.5 * fa.geom().dx, SweepKernel::kScalar);
    advect_position_axis(fb, axis, 0.5 * fb.geom().dx, GetParam());
    advect_velocity_axis(fa, axis, accel, 0.7, SweepKernel::kScalar);
    advect_velocity_axis(fb, axis, accel, 0.7, GetParam());
  }
  const auto& d = fa.dims();
  float worst = 0.0f;
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* a = fa.block(ix, iy, iz);
        const float* b = fb.block(ix, iy, iz);
        for (std::size_t v = 0; v < fa.block_size(); ++v)
          worst = std::max(worst, std::fabs(a[v] - b[v]));
      }
  EXPECT_LT(worst, 5e-6f);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SweepKernels,
                         ::testing::Values(SweepKernel::kScalar,
                                           SweepKernel::kSimd,
                                           SweepKernel::kLat,
                                           SweepKernel::kAuto));

TEST(Sweeps, FreeStreamingTranslatesBlob) {
  // Pure drift: each velocity slice translates by u * drift / dx cells.
  // Use a velocity grid whose cell centers give integer shifts for an
  // exact check.
  const int nx = 8, nu = 4;
  auto f = make_ps(nx, nu, /*box=*/8.0, /*umax=*/2.0);
  // u centers: -1.5, -0.5, 0.5, 1.5; drift = 2 -> shifts -3,-1,1,3 cells
  // along x with dx = 1.
  fill_blob(f);
  auto ref = f;
  f.fill_ghosts_periodic();
  advect_position_axis(f, 0, 2.0, SweepKernel::kAuto);
  const auto& d = f.dims();
  const auto& g = f.geom();
  for (int a = 0; a < nu; ++a) {
    const int shift = static_cast<int>(std::lround(g.ux(a) * 2.0 / g.dx));
    for (int ix = 0; ix < nx; ++ix) {
      const int src = ((ix - shift) % nx + nx) % nx;
      for (int iy = 0; iy < d.ny; ++iy)
        for (int iz = 0; iz < d.nz; ++iz)
          for (int b = 0; b < nu; ++b)
            for (int c = 0; c < nu; ++c)
              ASSERT_NEAR(f.at(ix, iy, iz, a, b, c),
                          ref.at(src, iy, iz, a, b, c), 1e-6)
                  << "a=" << a << " ix=" << ix;
    }
  }
}

TEST(Sweeps, VelocityKickShiftsMeanVelocity) {
  auto f = make_ps(4, 16, 8.0, 2.0);
  fill_blob(f);
  v6d::mesh::Grid3D<double> accel(4, 4, 4);
  accel.fill(0.25);
  MomentFields m0(4, 4, 4), m1(4, 4, 4);
  compute_moments(f, m0);
  advect_velocity_axis(f, 0, accel, 1.0, SweepKernel::kAuto);
  compute_moments(f, m1);
  // du = accel * dt = 0.25.
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(m1.mean_ux.at(i, 2, 2) - m0.mean_ux.at(i, 2, 2), 0.25, 5e-3);
  // Other components untouched.
  EXPECT_NEAR(m1.mean_uy.at(2, 2, 2), m0.mean_uy.at(2, 2, 2), 1e-4);
}

TEST(Sweeps, MaxShiftHelpers) {
  auto f = make_ps(8, 8, 8.0, 2.0);
  // umax_eff = 2 - du/2 = 1.75; dx = 1.
  EXPECT_NEAR(max_position_shift(f, 1.0), 1.75, 1e-12);
  EXPECT_NEAR(max_position_shift(f, 0.5), 0.875, 1e-12);
  v6d::mesh::Grid3D<double> gx(8, 8, 8), gy(8, 8, 8), gz(8, 8, 8);
  gx.fill(0.1);
  gy.fill(-0.3);
  gz.fill(0.2);
  // du = 0.5: max |xi| = 0.3 * dt / 0.5.
  EXPECT_NEAR(max_velocity_shift(f, gx, gy, gz, 2.0), 0.3 * 2.0 / 0.5,
              1e-12);
}

TEST(Splitting, FixedAccelStepRoundTripsWithReversedKicks) {
  // Kick(+dt/2) Drift(dt) Kick(+dt/2) followed by the exact inverse
  // sequence returns the initial state up to scheme diffusion; mass must
  // be identical and the field close.  Velocity cube wide enough (6.7
  // sigma) that boundary outflow is negligible.
  auto f = make_ps(6, 12, 8.0, 2.0);
  fill_blob(f);
  auto ref = f;
  v6d::mesh::Grid3D<double> gx(6, 6, 6), gy(6, 6, 6), gz(6, 6, 6);
  gx.fill(0.05);
  gy.fill(-0.05);
  gz.fill(0.02);
  SplitStepConfig cfg;
  cfg.drift = 0.4;
  cfg.kick_pre = 0.2;
  cfg.kick_post = 0.2;
  split_step_fixed_accel(f, gx, gy, gz, cfg, periodic_halo_filler());
  SplitStepConfig back;
  back.drift = -0.4;
  back.kick_pre = -0.2;
  back.kick_post = -0.2;
  split_step_fixed_accel(f, gx, gy, gz, back, periodic_halo_filler());
  EXPECT_NEAR(f.total_mass(), ref.total_mass(), 1e-5 * ref.total_mass());
  double err = 0.0, norm = 0.0;
  const auto& d = f.dims();
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* va = f.block(ix, iy, iz);
        const float* vb = ref.block(ix, iy, iz);
        for (std::size_t v = 0; v < f.block_size(); ++v) {
          err += (va[v] - vb[v]) * (va[v] - vb[v]);
          norm += vb[v] * vb[v];
        }
      }
  EXPECT_LT(std::sqrt(err / norm), 0.05);
}

// ---------------------------------------------------------------------------
// Range-restricted sweeps (overlap pipeline building blocks)
// ---------------------------------------------------------------------------

void expect_bit_identical(const PhaseSpace& a, const PhaseSpace& b) {
  const auto& d = a.dims();
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* va = a.block(ix, iy, iz);
        const float* vb = b.block(ix, iy, iz);
        for (std::size_t v = 0; v < a.block_size(); ++v)
          ASSERT_EQ(va[v], vb[v])
              << "cell " << ix << "," << iy << "," << iz << " lane " << v;
      }
}

TEST(RangeSweeps, InteriorPlusBoundaryMatchesFullSweepBitForBit) {
  // The overlapped drift's decomposition of one axis sweep: snapshot the
  // boundary windows, advect the ghost-independent interior in place,
  // load the (already filled) ghosts, sweep the two boundary shells.  The
  // result must equal the full-line sweep bit for bit — this is the
  // property the distributed overlap=on/off equivalence rests on.
  for (int axis = 0; axis < 3; ++axis) {
    for (double drift : {0.37, -0.52}) {
      PhaseSpace full = make_ps(8, 6);
      fill_blob(full);
      PhaseSpace split = full;
      const int g = full.dims().ghost;
      const int n = full.dims().nx;

      full.fill_ghosts_periodic();
      advect_position_axis(full, axis, drift, SweepKernel::kAuto);

      split.fill_ghosts_periodic();
      PositionBoundarySlabs slabs;
      save_position_boundary(split, axis, slabs);
      advect_position_axis_range(split, axis, drift, SweepKernel::kAuto, g,
                                 n - g);
      load_position_boundary_ghosts(split, axis, slabs);
      advect_position_axis_boundary(split, axis, drift, SweepKernel::kAuto,
                                    slabs);

      expect_bit_identical(full, split);
    }
  }
}

TEST(RangeSweeps, FullRangeEqualsFullSweep) {
  PhaseSpace a = make_ps(7, 6);  // odd extent: exercises uneven ranges
  fill_blob(a);
  PhaseSpace b = a;
  a.fill_ghosts_periodic();
  b.fill_ghosts_periodic();
  advect_position_axis(a, 1, 0.43, SweepKernel::kAuto);
  advect_position_axis_range(b, 1, 0.43, SweepKernel::kAuto, 0,
                             a.dims().ny);
  expect_bit_identical(a, b);
}

TEST(RangeSweeps, BoundaryHelpersRejectThinAxes) {
  PhaseSpace f = make_ps(4, 4);  // n = 4 < 2*ghost = 6
  PositionBoundarySlabs slabs;
  EXPECT_THROW(save_position_boundary(f, 0, slabs), std::invalid_argument);
  EXPECT_THROW(advect_position_axis_boundary(f, 0, 0.1, SweepKernel::kAuto,
                                             slabs),
               std::invalid_argument);
}

}  // namespace
