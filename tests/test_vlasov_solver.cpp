#include <gtest/gtest.h>

#include <cmath>

#include "vlasov/solver.hpp"

namespace {

using namespace v6d::vlasov;

PhaseSpace make_ps(int nx, int nu, double box, double umax) {
  PhaseSpaceDims d;
  d.nx = d.ny = d.nz = nx;
  d.nux = d.nuy = d.nuz = nu;
  PhaseSpaceGeometry g;
  g.dx = g.dy = g.dz = box / nx;
  g.umax = umax;
  g.dux = g.duy = g.duz = 2.0 * umax / nu;
  return PhaseSpace(d, g);
}

void fill_jeans_perturbation(PhaseSpace& f, double box, double sigma,
                             double amplitude) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const double n =
            1.0 + amplitude * std::cos(2.0 * M_PI * g.x(ix) / box);
        float* blk = f.block(ix, iy, iz);
        std::size_t v = 0;
        double sum = 0.0;
        std::vector<double> w(f.block_size());
        for (int a = 0; a < d.nux; ++a)
          for (int b = 0; b < d.nuy; ++b)
            for (int c = 0; c < d.nuz; ++c, ++v) {
              const double u2 = g.ux(a) * g.ux(a) + g.uy(b) * g.uy(b) +
                                g.uz(c) * g.uz(c);
              w[v] = std::exp(-u2 / (2.0 * sigma * sigma));
              sum += w[v];
            }
        for (v = 0; v < f.block_size(); ++v)
          blk[v] = static_cast<float>(n * w[v] / (sum * g.du3()));
      }
}

TEST(VlasovSolver, MassConservedOverManySteps) {
  auto f = make_ps(8, 8, 4.0, 1.0);
  fill_jeans_perturbation(f, 4.0, 0.3, 0.05);
  VlasovSolverOptions opt;
  opt.four_pi_g = 1.0;
  VlasovSolver solver(std::move(f), 4.0, opt);
  const double mass0 = solver.phase_space().total_mass();
  const double dt = 0.5 * solver.max_dt();
  for (int s = 0; s < 5; ++s) solver.step(dt);
  EXPECT_NEAR(solver.phase_space().total_mass(), mass0, 1e-4 * mass0);
  EXPECT_GE(solver.phase_space().min_interior(), 0.0f);
}

TEST(VlasovSolver, StablePlasmaOscillationConservesEnergyScale) {
  // A warm stable configuration: density stays bounded and positive.
  auto f = make_ps(8, 10, 4.0, 1.5);
  fill_jeans_perturbation(f, 4.0, 0.5, 0.1);
  VlasovSolverOptions opt;
  opt.four_pi_g = 0.5;
  VlasovSolver solver(std::move(f), 4.0, opt);
  const double dt = 0.4 * solver.max_dt();
  double max_rho = 0.0;
  for (int s = 0; s < 8; ++s) {
    solver.step(dt);
    for (int i = 0; i < 8; ++i)
      max_rho = std::max(max_rho, solver.density().at(i, 0, 0));
  }
  EXPECT_LT(max_rho, 3.0);  // no blow-up
}

TEST(VlasovSolver, JeansInstabilityGrowsOverdensity) {
  // Cold-ish distribution with strong gravity: the seeded mode must grow
  // (gravitational instability), unlike the free-streaming case.
  auto f_grav = make_ps(8, 10, 4.0, 0.8);
  fill_jeans_perturbation(f_grav, 4.0, 0.08, 0.05);
  VlasovSolverOptions opt;
  opt.four_pi_g = 8.0;  // deep in the unstable regime
  VlasovSolver grav(std::move(f_grav), 4.0, opt);

  auto f_free = make_ps(8, 10, 4.0, 0.8);
  fill_jeans_perturbation(f_free, 4.0, 0.08, 0.05);
  VlasovSolverOptions opt_free = opt;
  opt_free.self_gravity = false;
  v6d::mesh::Grid3D<double> zero(8, 8, 8);
  VlasovSolver free_stream(std::move(f_free), 4.0, opt_free);
  free_stream.set_external_accel(&zero, &zero, &zero);

  auto contrast = [](VlasovSolver& s) {
    v6d::mesh::Grid3D<double> rho(8, 8, 8);
    compute_density(s.phase_space(), rho);
    double lo = 1e30, hi = -1e30;
    for (int i = 0; i < 8; ++i)
      for (int j = 0; j < 8; ++j)
        for (int k = 0; k < 8; ++k) {
          lo = std::min(lo, rho.at(i, j, k));
          hi = std::max(hi, rho.at(i, j, k));
        }
    return (hi - lo) / (hi + lo);
  };

  const double c0 = contrast(grav);
  const double dt = 0.3 * grav.max_dt();
  for (int s = 0; s < 10; ++s) {
    grav.step(dt);
    free_stream.step(dt);
  }
  EXPECT_GT(contrast(grav), 1.5 * c0);       // gravity amplifies
  EXPECT_LT(contrast(free_stream), 1.2 * c0);  // free streaming damps/keeps
}

TEST(VlasovSolver, MaxDtScalesWithGrid) {
  auto f1 = make_ps(8, 8, 4.0, 1.0);
  auto f2 = make_ps(16, 8, 4.0, 1.0);
  VlasovSolverOptions opt;
  VlasovSolver s1(std::move(f1), 4.0, opt), s2(std::move(f2), 4.0, opt);
  // Halving dx halves the CFL-limited dt.
  EXPECT_NEAR(s1.max_dt() / s2.max_dt(), 2.0, 1e-9);
}

}  // namespace
