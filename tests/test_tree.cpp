#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gravity/tree.hpp"

namespace {

using namespace v6d::gravity;
using v6d::nbody::Particles;

Particles random_particles(std::size_t n, double box, std::uint64_t seed) {
  Particles p(n);
  v6d::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    p.x[i] = rng.next_double() * box;
    p.y[i] = rng.next_double() * box;
    p.z[i] = rng.next_double() * box;
    p.id[i] = i;
  }
  p.mass = 1.0 / static_cast<double>(n);
  return p;
}

// Direct minimum-image summation reference.
void direct_forces(const Particles& p, double box,
                   const PpKernelParams& params, std::vector<double>& ax,
                   std::vector<double>& ay, std::vector<double>& az) {
  const std::size_t n = p.size();
  ax.assign(n, 0.0);
  ay.assign(n, 0.0);
  az.assign(n, 0.0);
  auto mi = [box](double d) {
    if (d > 0.5 * box) return d - box;
    if (d < -0.5 * box) return d + box;
    return d;
  };
  const double eps2 = params.eps * params.eps;
  for (std::size_t t = 0; t < n; ++t)
    for (std::size_t s = 0; s < n; ++s) {
      if (s == t) continue;
      const double dx = mi(p.x[s] - p.x[t]);
      const double dy = mi(p.y[s] - p.y[t]);
      const double dz = mi(p.z[s] - p.z[t]);
      const double r2 = dx * dx + dy * dy + dz * dz + eps2;
      const double r = std::sqrt(r2);
      if (params.rcut > 0.0 && r > params.rcut) continue;
      double f = p.mass / (r2 * r);
      if (params.rs > 0.0) f *= shortrange_s(r / (2.0 * params.rs));
      ax[t] += f * dx;
      ay[t] += f * dy;
      az[t] += f * dz;
    }
}

TEST(BarnesHutTree, SmallThetaMatchesDirectSummation) {
  const double box = 1.0;
  const auto p = random_particles(300, box, 99);
  PpKernelParams params;
  params.eps = 0.01;
  std::vector<double> dax, day, daz;
  direct_forces(p, box, params, dax, day, daz);

  BarnesHutTree tree(p, box, 8);
  CutoffPoly poly(3.0, 12);
  std::vector<double> tax, tay, taz;
  tree.accelerations(p, params, poly, /*theta=*/0.1, /*use_simd=*/false, tax,
                     tay, taz);
  double rms_ref = 0.0, rms_err = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    rms_ref += dax[i] * dax[i] + day[i] * day[i] + daz[i] * daz[i];
    const double ex = tax[i] - dax[i], ey = tay[i] - day[i],
                 ez = taz[i] - daz[i];
    rms_err += ex * ex + ey * ey + ez * ez;
  }
  EXPECT_LT(std::sqrt(rms_err / rms_ref), 2e-3);
}

TEST(BarnesHutTree, AccuracyDegradesGracefullyWithTheta) {
  const double box = 1.0;
  const auto p = random_particles(200, box, 7);
  PpKernelParams params;
  params.eps = 0.01;
  std::vector<double> dax, day, daz;
  direct_forces(p, box, params, dax, day, daz);
  BarnesHutTree tree(p, box, 8);
  CutoffPoly poly(3.0, 12);

  // Monopole-only acceptance: expected rms force error grows steeply with
  // the opening angle (a few 1e-4 at 0.2, percent-level at 0.5, tens of
  // percent at the aggressive 0.9).
  const double theta_values[] = {0.2, 0.5, 0.9};
  const double bounds[] = {5e-3, 5e-2, 0.5};
  for (int t = 0; t < 3; ++t) {
    std::vector<double> tax, tay, taz;
    tree.accelerations(p, params, poly, theta_values[t], false, tax, tay,
                       taz);
    double rms_ref = 0.0, rms_err = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      rms_ref += dax[i] * dax[i] + day[i] * day[i] + daz[i] * daz[i];
      const double ex = tax[i] - dax[i], ey = tay[i] - day[i],
                   ez = taz[i] - daz[i];
      rms_err += ex * ex + ey * ey + ez * ez;
    }
    const double err = std::sqrt(rms_err / rms_ref);
    EXPECT_LT(err, bounds[t]) << "theta " << theta_values[t];
  }
}

TEST(BarnesHutTree, CutoffPruningMatchesDirectCutoff) {
  const double box = 1.0;
  const auto p = random_particles(250, box, 3);
  PpKernelParams params;
  params.eps = 0.005;
  params.rs = 0.04;
  params.rcut = 4.5 * params.rs;
  std::vector<double> dax, day, daz;
  direct_forces(p, box, params, dax, day, daz);
  BarnesHutTree tree(p, box, 8);
  CutoffPoly poly(params.rcut / (2.0 * params.rs), 14);
  std::vector<double> tax, tay, taz;
  TreeStats stats;
  tree.accelerations(p, params, poly, 0.3, false, tax, tay, taz, &stats);
  double rms_ref = 1e-30, rms_err = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    rms_ref += dax[i] * dax[i] + day[i] * day[i] + daz[i] * daz[i];
    const double ex = tax[i] - dax[i], ey = tay[i] - day[i],
                 ez = taz[i] - daz[i];
    rms_err += ex * ex + ey * ey + ez * ez;
  }
  EXPECT_LT(std::sqrt(rms_err / rms_ref), 0.02);
  // Pruning must make the interaction count far below N^2.
  EXPECT_LT(stats.p2p_interactions, 250ull * 250ull / 2ull);
}

TEST(BarnesHutTree, SimdWalkMatchesScalarWalk) {
  const double box = 1.0;
  const auto p = random_particles(200, box, 21);
  PpKernelParams params;
  params.eps = 0.01;
  params.rs = 0.05;
  params.rcut = 4.5 * params.rs;
  BarnesHutTree tree(p, box, 8);
  CutoffPoly poly(params.rcut / (2.0 * params.rs), 14);
  std::vector<double> sax, say, saz, vax, vay, vaz;
  tree.accelerations(p, params, poly, 0.4, false, sax, say, saz);
  tree.accelerations(p, params, poly, 0.4, true, vax, vay, vaz);
  double norm = 1e-30;
  for (std::size_t i = 0; i < p.size(); ++i)
    norm = std::max({norm, std::fabs(sax[i]), std::fabs(say[i]),
                     std::fabs(saz[i])});
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(vax[i], sax[i], 1e-3 * norm);
    EXPECT_NEAR(vay[i], say[i], 1e-3 * norm);
    EXPECT_NEAR(vaz[i], saz[i], 1e-3 * norm);
  }
}

TEST(BarnesHutTree, TotalMassAndNodeBounds) {
  const auto p = random_particles(500, 2.0, 5);
  BarnesHutTree tree(p, 2.0, 16);
  EXPECT_NEAR(tree.total_mass(), p.mass * 500.0, 1e-12);
  EXPECT_GT(tree.node_count(), 8);
  EXPECT_LT(tree.node_count(), 2 * 500);
}

TEST(BarnesHutTree, HandlesCoincidentParticles) {
  // Degenerate input: many particles at one point must not recurse
  // infinitely (depth cap) and must produce finite forces elsewhere.
  Particles p(64);
  for (std::size_t i = 0; i < 32; ++i) {
    p.x[i] = p.y[i] = p.z[i] = 0.5;
  }
  v6d::Xoshiro256 rng(8);
  for (std::size_t i = 32; i < 64; ++i) {
    p.x[i] = rng.next_double();
    p.y[i] = rng.next_double();
    p.z[i] = rng.next_double();
  }
  p.mass = 1.0;
  BarnesHutTree tree(p, 1.0, 2);
  PpKernelParams params;
  params.eps = 0.05;
  CutoffPoly poly(3.0, 10);
  std::vector<double> ax, ay, az;
  tree.accelerations(p, params, poly, 0.5, false, ax, ay, az);
  for (double v : ax) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
