#include <gtest/gtest.h>

#include <cmath>

#include "cosmology/background.hpp"
#include "cosmology/power_spectrum.hpp"
#include "cosmology/transfer.hpp"

namespace {

using namespace v6d::cosmo;

TEST(Params, NeutrinoMassMapsToOmegaNu) {
  Params p = Params::planck2015(0.4);
  // Omega_nu h^2 = 0.4 / 93.14 ~ 0.004295 -> Omega_nu ~ 0.00936 at h=0.6774.
  EXPECT_NEAR(p.omega_nu, 0.4 / 93.14 / (0.6774 * 0.6774), 1e-6);
  EXPECT_NEAR(p.f_nu(), p.omega_nu / p.omega_m, 1e-12);
  EXPECT_LT(p.omega_cdm(), p.omega_m);
}

TEST(Background, HubbleLimits) {
  Background bg(Params::planck2015(0.0));
  EXPECT_NEAR(bg.hubble(1.0), 1.0, 1e-12);  // H(a=1) = H0
  // Matter domination at early times: H ~ sqrt(Om) a^-3/2.
  const double a = 0.01;
  EXPECT_NEAR(bg.hubble(a), std::sqrt(0.3089) * std::pow(a, -1.5),
              0.01 * bg.hubble(a));
}

TEST(Background, AgeOfEdSUniverseMatchesClosedForm) {
  // Einstein-de Sitter (Om = 1): t(a) = (2/3) a^{3/2} / H0.
  Params p;
  p.omega_m = 1.0;
  p.omega_lambda = 0.0;
  Background bg(p);
  for (double a : {0.1, 0.5, 1.0})
    EXPECT_NEAR(bg.time_of(a), 2.0 / 3.0 * std::pow(a, 1.5), 1e-6);
}

TEST(Background, AOfTimeInvertsTimeOf) {
  Background bg(Params::planck2015(0.4));
  for (double a : {0.05, 0.2, 0.5, 0.9}) {
    EXPECT_NEAR(bg.a_of_time(bg.time_of(a)), a, 1e-6);
  }
}

TEST(Background, DriftKickFactorsEdSClosedForm) {
  // EdS: drift = int da/(a^3 H) = int a^{-3/2} da = 2 (a0^-1/2 - a1^-1/2);
  //      kick  = int da/(a H)   = int a^{-1/2}... wait: 1/(aH) = a^{1/2}
  //      => kick = (2/3)(a1^{3/2} - a0^{3/2}).
  Params p;
  p.omega_m = 1.0;
  p.omega_lambda = 0.0;
  Background bg(p);
  const double a0 = 0.25, a1 = 0.64;
  EXPECT_NEAR(bg.drift_factor(a0, a1),
              2.0 * (1.0 / std::sqrt(a0) - 1.0 / std::sqrt(a1)), 1e-9);
  EXPECT_NEAR(bg.kick_factor(a0, a1),
              (2.0 / 3.0) * (std::pow(a1, 1.5) - std::pow(a0, 1.5)), 1e-9);
}

TEST(Background, GrowthFactorEdSIsScaleFactor) {
  Params p;
  p.omega_m = 1.0;
  p.omega_lambda = 0.0;
  Background bg(p);
  for (double a : {0.1, 0.3, 0.7}) {
    EXPECT_NEAR(bg.growth_factor(a), a, 2e-3);
    EXPECT_NEAR(bg.growth_rate(a), 1.0, 2e-3);
  }
}

TEST(Background, LcdmGrowthSuppressedVsEdS) {
  Background bg(Params::planck2015(0.0));
  // In LCDM, D(a)/a decreases at late times and f = dlnD/dlna < 1 today.
  EXPECT_LT(bg.growth_factor(1.0) / 1.0,
            bg.growth_factor(0.1) / 0.1 + 1e-9);
  const double f = bg.growth_rate(1.0);
  // f ~ Om(a)^0.55 ~ 0.52 for Om = 0.31.
  EXPECT_NEAR(f, std::pow(0.3089, 0.55), 0.03);
}

TEST(Transfer, NormalizedAtLargeScales) {
  Transfer t(Params::planck2015(0.0));
  EXPECT_NEAR(t.matter(1e-5), 1.0, 1e-3);
  // Small-scale suppression is strong and monotone.
  EXPECT_LT(t.matter(1.0), 0.1);
  EXPECT_GT(t.matter(0.01), t.matter(0.1));
  EXPECT_GT(t.matter(0.1), t.matter(1.0));
}

TEST(Transfer, BbksAndEh98AgreeInShape) {
  const Params p = Params::planck2015(0.0);
  Transfer eh(p, TransferShape::kEisensteinHu98);
  Transfer bbks(p, TransferShape::kBbks);
  for (double k : {0.01, 0.1, 0.5}) {
    const double r = eh.matter(k) / bbks.matter(k);
    EXPECT_GT(r, 0.5) << k;
    EXPECT_LT(r, 2.0) << k;
  }
}

TEST(Transfer, NeutrinoSuppressionScalesWithMassAndK) {
  Params heavy = Params::planck2015(0.4);
  Params light = Params::planck2015(0.2);
  Transfer th(heavy), tl(light);
  const double a = 1.0;
  // No suppression at very large scales.
  EXPECT_NEAR(th.neutrino_suppression(1e-4, a), 1.0, 1e-2);
  // Strong suppression at small scales.
  EXPECT_LT(th.neutrino_suppression(1.0, a), 0.1);
  // Heavier neutrinos free-stream less: higher k_fs, weaker suppression at
  // fixed k.
  EXPECT_GT(th.k_freestream(a), tl.k_freestream(a));
  EXPECT_GT(th.neutrino_suppression(0.5, a), tl.neutrino_suppression(0.5, a));
}

TEST(PowerSpectrum, Sigma8NormalizationHolds) {
  PowerSpectrum ps(Params::planck2015(0.0));
  EXPECT_NEAR(ps.sigma_r(8.0), 0.8159, 1e-3);
}

TEST(PowerSpectrum, GrowthScalesPower) {
  PowerSpectrum ps(Params::planck2015(0.0));
  const double k = 0.1;
  const double d = ps.background().growth_factor(0.5);
  EXPECT_NEAR(ps.matter(k, 0.5), ps.matter_z0(k) * d * d, 1e-12);
}

TEST(PowerSpectrum, NeutrinoPowerBelowMatterPower) {
  PowerSpectrum ps(Params::planck2015(0.4));
  for (double k : {0.05, 0.2, 1.0})
    EXPECT_LT(ps.neutrino(k, 1.0), ps.matter(k, 1.0) + 1e-30);
  // and the ratio falls with k.
  const double r1 = ps.neutrino(0.05, 1.0) / ps.matter(0.05, 1.0);
  const double r2 = ps.neutrino(0.5, 1.0) / ps.matter(0.5, 1.0);
  EXPECT_GT(r1, r2);
}

TEST(PowerSpectrum, PeakAroundMatterRadiationScale)
{
  PowerSpectrum ps(Params::planck2015(0.0));
  // P(k) should peak near k ~ 0.02 h/Mpc and fall on both sides.
  const double p_peak = ps.matter_z0(0.02);
  EXPECT_GT(p_peak, ps.matter_z0(0.001));
  EXPECT_GT(p_peak, ps.matter_z0(0.5));
}

}  // namespace
