// common/trace: the per-thread event ring, the enabled() gate, and the
// Chrome trace_event writer (emit -> parse -> nesting validated).
//
// Every test brackets itself with reset()/enable() ... disable()/reset()
// because the registry is process-global and suites share the binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/runner.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace {

using namespace v6d;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Count non-overlapping occurrences of `needle`.
std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::disable();
    trace::reset();
  }
  void TearDown() override {
    trace::disable();
    trace::reset();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    trace::Span span("ignored");
    trace::instant("ignored-too");
    trace::counter("ignored-counter", 1.0);
  }
  EXPECT_EQ(trace::collect().size(), 0u);
  EXPECT_EQ(trace::stats().recorded, 0u);
}

TEST_F(TraceTest, SpanNestingRoundtrip) {
  trace::enable();
  trace::set_rank(0);
  {
    trace::Span outer("outer");
    {
      trace::Span inner("inner");
    }
  }
  trace::disable();

  const auto events = trace::collect();
  ASSERT_EQ(events.size(), 2u);
  // Destructor order: inner is recorded first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_LE(events[1].t0_ns, events[0].t0_ns);
  EXPECT_GE(events[1].t1_ns, events[0].t1_ns);

  const std::string path = "test_trace_nesting.json";
  std::string error;
  ASSERT_TRUE(trace::write_chrome_trace(path, events, &error)) << error;
  const std::string json = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 2u);
  // File order must nest: B outer, B inner, E inner, E outer.
  const std::size_t b_outer = json.find("{\"name\":\"outer\",\"ph\":\"B\"");
  const std::size_t b_inner = json.find("{\"name\":\"inner\",\"ph\":\"B\"");
  const std::size_t e_inner = json.find("{\"name\":\"inner\",\"ph\":\"E\"");
  const std::size_t e_outer = json.find("{\"name\":\"outer\",\"ph\":\"E\"");
  ASSERT_NE(b_outer, std::string::npos);
  ASSERT_NE(b_inner, std::string::npos);
  ASSERT_NE(e_inner, std::string::npos);
  ASSERT_NE(e_outer, std::string::npos);
  EXPECT_LT(b_outer, b_inner);
  EXPECT_LT(b_inner, e_inner);
  EXPECT_LT(e_inner, e_outer);
}

TEST_F(TraceTest, ScopedTimerEmitsSpanWhenEnabled) {
  trace::enable();
  TimerRegistry reg;
  {
    ScopedTimer t(reg, "unit-test-bucket");
  }
  trace::disable();
  const auto events = trace::collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit-test-bucket");
  EXPECT_EQ(events[0].kind, trace::Kind::kSpan);
  // The timer bucket still accumulated normally.
  EXPECT_GT(reg.total("unit-test-bucket"), 0.0);
}

TEST_F(TraceTest, CounterAndInstantCarryPayload) {
  trace::enable();
  trace::set_rank(3);
  trace::counter("unit-counter", 2.5);
  trace::instant("unit-marker");
  trace::disable();
  const auto events = trace::collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, trace::Kind::kCounter);
  EXPECT_DOUBLE_EQ(events[0].value, 2.5);
  EXPECT_EQ(events[0].rank, 3);
  EXPECT_EQ(events[1].kind, trace::Kind::kInstant);
  EXPECT_EQ(events[1].t0_ns, events[1].t1_ns);

  const std::string path = "test_trace_counter.json";
  std::string error;
  ASSERT_TRUE(trace::write_chrome_trace(path, events, &error)) << error;
  const std::string json = slurp(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":2.5}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

TEST_F(TraceTest, FullBufferDropsNewEventsAndCounts) {
  trace::enable(4);
  for (int i = 0; i < 10; ++i) trace::instant("flood");
  trace::disable();
  const auto s = trace::stats();
  EXPECT_EQ(s.recorded, 4u);
  EXPECT_EQ(s.dropped, 6u);
  EXPECT_EQ(trace::collect().size(), 4u);
  // reset() restores capacity and clears the drop counter.
  trace::reset();
  EXPECT_EQ(trace::stats().dropped, 0u);
}

TEST_F(TraceTest, ZeroLengthSpanStaysOrderedInFile) {
  trace::enable();
  const std::uint64_t t = trace::now_ns();
  trace::emit_span("zero", t, t);
  trace::disable();
  const std::string path = "test_trace_zero.json";
  std::string error;
  ASSERT_TRUE(trace::write_chrome_trace(path, trace::collect(), &error))
      << error;
  const std::string json = slurp(path);
  std::remove(path.c_str());
  const std::size_t b = json.find("\"ph\":\"B\"");
  const std::size_t e = json.find("\"ph\":\"E\"");
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  EXPECT_LT(b, e);  // clamped to 1 ns, so B sorts strictly before E
}

TEST_F(TraceTest, MultiRankRoundtripTagsEveryRank) {
  trace::enable();
  comm::run(4, [&](comm::Communicator& comm) {
    trace::set_rank(comm.rank());
    trace::Span span("rank-work");
    trace::counter("rank-bytes", static_cast<double>(comm.rank()) * 8.0);
    comm.barrier();
  });
  trace::disable();

  const auto events = trace::collect();
  // 4 spans + 4 counters from the rank threads (the barrier itself does
  // not record).
  std::vector<int> span_ranks;
  std::vector<int> counter_ranks;
  for (const auto& e : events) {
    if (std::string(e.name) == "rank-work") span_ranks.push_back(e.rank);
    if (std::string(e.name) == "rank-bytes") counter_ranks.push_back(e.rank);
  }
  std::sort(span_ranks.begin(), span_ranks.end());
  std::sort(counter_ranks.begin(), counter_ranks.end());
  EXPECT_EQ(span_ranks, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(counter_ranks, (std::vector<int>{0, 1, 2, 3}));

  const std::string path = "test_trace_ranks.json";
  std::string error;
  ASSERT_TRUE(trace::write_chrome_trace(path, events, &error)) << error;
  const std::string json = slurp(path);
  std::remove(path.c_str());
  // Every rank appears as its own pid lane, B/E balanced overall.
  for (int r = 0; r < 4; ++r) {
    const std::string pid = "\"pid\":" + std::to_string(r);
    EXPECT_NE(json.find(pid), std::string::npos) << pid;
  }
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), count_of(json, "\"ph\":\"E\""));
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 4u);
  EXPECT_EQ(count_of(json, "\"ph\":\"C\""), 4u);
}

TEST_F(TraceTest, NameLongerThanSlotIsTruncatedNotCorrupted) {
  trace::enable();
  const std::string longname(100, 'x');
  trace::instant(longname.c_str());
  trace::disable();
  const auto events = trace::collect();
  ASSERT_EQ(events.size(), 1u);
  const std::string got = events[0].name;
  EXPECT_EQ(got.size(), sizeof(trace::Event{}.name) - 1);
  EXPECT_EQ(got, longname.substr(0, got.size()));
}

}  // namespace
