#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "simd/dispatch.hpp"
#include "simd/pack.hpp"
#include "simd/transpose.hpp"

namespace {

using namespace v6d::simd;

template <int N>
void expect_transpose_roundtrip() {
  float data[N][N];
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) data[i][j] = static_cast<float>(i * N + j);
  Pack<float, N> rows[N];
  for (int i = 0; i < N; ++i) rows[i] = Pack<float, N>::load(data[i]);
  transpose(rows);
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j)
      ASSERT_EQ(rows[i][j], data[j][i]) << "N=" << N << " i=" << i << " j=" << j;
  transpose(rows);
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) ASSERT_EQ(rows[i][j], data[i][j]);
}

TEST(SimdTranspose, Exact4) { expect_transpose_roundtrip<4>(); }
TEST(SimdTranspose, Exact8) { expect_transpose_roundtrip<8>(); }
TEST(SimdTranspose, Exact16) { expect_transpose_roundtrip<16>(); }

TEST(SimdTranspose, TileMoveMatchesScalar) {
  constexpr int N = kNativeFloatWidth;
  const long stride = 37;  // deliberately non-multiple of N
  std::vector<float> src(static_cast<std::size_t>(N) * stride);
  std::iota(src.begin(), src.end(), 0.0f);
  std::vector<float> dst(static_cast<std::size_t>(N) * 41, -1.0f);
  transpose_tile<float, N>(src.data(), stride, dst.data(), 41);
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j)
      EXPECT_EQ(dst[static_cast<std::size_t>(i) * 41 + j],
                src[static_cast<std::size_t>(j) * stride + i]);
}

TEST(SimdPack, ArithmeticMatchesScalar) {
  constexpr int N = 8;
  using P = Pack<float, N>;
  float a_raw[N], b_raw[N];
  for (int i = 0; i < N; ++i) {
    a_raw[i] = 0.5f * i - 2.0f;
    b_raw[i] = 1.0f + 0.25f * i;
  }
  const P a = P::load(a_raw), b = P::load(b_raw);
  const P sum = a + b, diff = a - b, prod = a * b, quot = a / b;
  for (int i = 0; i < N; ++i) {
    EXPECT_FLOAT_EQ(sum[i], a_raw[i] + b_raw[i]);
    EXPECT_FLOAT_EQ(diff[i], a_raw[i] - b_raw[i]);
    EXPECT_FLOAT_EQ(prod[i], a_raw[i] * b_raw[i]);
    EXPECT_FLOAT_EQ(quot[i], a_raw[i] / b_raw[i]);
  }
}

TEST(SimdPack, MinMaxAbsSelect) {
  constexpr int N = 8;
  using P = Pack<float, N>;
  float a_raw[N], b_raw[N];
  for (int i = 0; i < N; ++i) {
    a_raw[i] = (i % 2 ? -1.0f : 1.0f) * i;
    b_raw[i] = 3.0f - i;
  }
  const P a = P::load(a_raw), b = P::load(b_raw);
  const P lo = v6d::simd::min(a, b), hi = v6d::simd::max(a, b), ab = abs(a);
  for (int i = 0; i < N; ++i) {
    EXPECT_FLOAT_EQ(lo[i], std::min(a_raw[i], b_raw[i]));
    EXPECT_FLOAT_EQ(hi[i], std::max(a_raw[i], b_raw[i]));
    EXPECT_FLOAT_EQ(ab[i], std::fabs(a_raw[i]));
  }
}

float scalar_minmod(float a, float b) {
  if (a * b <= 0.0f) return 0.0f;
  return std::fabs(a) < std::fabs(b) ? a : b;
}

TEST(SimdPack, MinmodAndMedianMatchScalar) {
  constexpr int N = 8;
  using P = Pack<float, N>;
  const float cases[][2] = {{1.0f, 2.0f},  {-1.0f, 2.0f}, {2.0f, 1.0f},
                            {-2.0f, -1.0f}, {0.0f, 3.0f},  {3.0f, 0.0f},
                            {-0.5f, -3.0f}, {1.5f, 1.5f}};
  float a_raw[N], b_raw[N];
  for (int i = 0; i < N; ++i) {
    a_raw[i] = cases[i][0];
    b_raw[i] = cases[i][1];
  }
  const P mm = minmod(P::load(a_raw), P::load(b_raw));
  for (int i = 0; i < N; ++i)
    EXPECT_FLOAT_EQ(mm[i], scalar_minmod(a_raw[i], b_raw[i])) << i;

  // median(a,b,c) must be the middle value.
  const P med = median(P::broadcast(5.0f), P::broadcast(1.0f),
                       P::broadcast(3.0f));
  for (int i = 0; i < N; ++i) EXPECT_FLOAT_EQ(med[i], 3.0f);
}

TEST(SimdPack, SqrtAndFma) {
  constexpr int N = 8;
  using P = Pack<float, N>;
  float raw[N];
  for (int i = 0; i < N; ++i) raw[i] = 1.0f + i * i;
  const P s = v6d::simd::sqrt(P::load(raw));
  for (int i = 0; i < N; ++i) EXPECT_FLOAT_EQ(s[i], std::sqrt(raw[i]));
  const P f = fma(P::broadcast(2.0f), P::broadcast(3.0f), P::broadcast(4.0f));
  for (int i = 0; i < N; ++i) EXPECT_FLOAT_EQ(f[i], 10.0f);
}

TEST(SimdPack, HorizontalSum) {
  constexpr int N = 8;
  using P = Pack<float, N>;
  float raw[N];
  for (int i = 0; i < N; ++i) raw[i] = static_cast<float>(i + 1);
  EXPECT_FLOAT_EQ(horizontal_sum(P::load(raw)), 36.0f);
}

TEST(SimdDispatch, ReportsIsa) {
  const IsaInfo info = isa_info();
  EXPECT_FALSE(info.name.empty());
  EXPECT_GE(info.float_width, 4);
  EXPECT_EQ(info.float_width, kNativeFloatWidth);
}

}  // namespace
