#!/usr/bin/env python3
"""Lint: every TimerRegistry bucket a bench/report *reads* must be one the
code actually *writes*.

    python3 tools/lint_timer_buckets.py [repo-root]
    python3 tools/lint_timer_buckets.py --self-test

The scaling benches and the driver's perf report query buckets by string
name (`timers.total("halo-wait")`); a renamed producer bucket silently
turns those metrics into zeros — `compare_bench.py` then gates CI on a
metric that no longer measures anything.  This lint cross-references:

  producers — `ScopedTimer t(reg, "name")`, `reg.add("name", s)`,
              `reg.add_sample("name", s)` in src/
  consumers — `reg.total("name")`, `reg.median_sample("name")`,
              `reg.samples("name")` in src/, apps/, bench/, examples/

A consumer name is also accepted with a `TimerRegistry::merge` prefix
(e.g. `solver:vlasov` when some caller merges with prefix `"solver:"`).
tests/ are excluded: suites produce and consume their own ad-hoc buckets.
Stdlib only; exit 0 when every consumed bucket has a producer.
"""
import os
import re
import sys
import tempfile

PRODUCER_DIRS = ("src",)
CONSUMER_DIRS = ("src", "apps", "bench", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

_PRODUCE = [
    re.compile(r"\bScopedTimer\s+\w+\s*\(\s*[^,()]+,\s*\"([^\"]+)\""),
    re.compile(r"\badd\s*\(\s*\"([^\"]+)\"\s*,"),
    re.compile(r"\badd_sample\s*\(\s*\"([^\"]+)\"\s*,"),
]
_CONSUME = [
    re.compile(r"\btotal\s*\(\s*\"([^\"]+)\"\s*\)"),
    re.compile(r"\bmedian_sample\s*\(\s*\"([^\"]+)\"\s*\)"),
    re.compile(r"\bsamples\s*\(\s*\"([^\"]+)\"\s*\)"),
]
_MERGE_PREFIX = re.compile(r"\bmerge\s*\(\s*[^,()]+,\s*\"([^\"]+)\"\s*\)")


def scan(root, dirs, patterns):
    """Return {name: [(relpath, lineno), ...]} for every pattern match."""
    found = {}
    for sub in dirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, "r", encoding="utf-8", errors="replace") as f:
                    for lineno, line in enumerate(f, start=1):
                        for pat in patterns:
                            for m in pat.finditer(line):
                                found.setdefault(m.group(1), []).append(
                                    (rel, lineno))
    return found


def lint_tree(root):
    produced = scan(root, PRODUCER_DIRS, _PRODUCE)
    consumed = scan(root, CONSUMER_DIRS, _CONSUME)
    prefixes = scan(root, CONSUMER_DIRS, [_MERGE_PREFIX])
    names = set(produced)
    for prefix in prefixes:
        names.update(prefix + n for n in produced)
    failures = []
    for name, sites in sorted(consumed.items()):
        if name in names:
            continue
        for rel, lineno in sites:
            failures.append((rel, lineno, name))
    return failures, produced, consumed


CLEAN_FIXTURE_SRC = """\
void step(v6d::TimerRegistry& reg) {
  v6d::ScopedTimer t(reg, "halo");
  reg.add("fold-wait", 0.25);
  reg.add_sample("step", 1.0);
  merged.merge(reg, "solver:");
}
"""

CLEAN_FIXTURE_BENCH = """\
double report(const v6d::TimerRegistry& reg) {
  return reg.total("halo") + reg.median_sample("step") +
         reg.total("fold-wait") + reg.total("solver:halo");
}
"""

SEEDED_VIOLATION_BENCH = """\
double broken(const v6d::TimerRegistry& reg) {
  return reg.total("halo-watt") + reg.median_sample("steps");
}
"""


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        os.makedirs(os.path.join(tmp, "bench"))
        with open(os.path.join(tmp, "src", "solver.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_SRC)
        with open(os.path.join(tmp, "bench", "report.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_BENCH)
        failures, _, _ = lint_tree(tmp)
        if failures:
            print(f"self-test FAIL: clean fixture flagged: {failures}")
            return 1
        with open(os.path.join(tmp, "bench", "broken.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(SEEDED_VIOLATION_BENCH)
        failures, _, _ = lint_tree(tmp)
        got = {name for (_, _, name) in failures}
        if got != {"halo-watt", "steps"}:
            print(f"self-test FAIL: flagged {sorted(got)}, expected "
                  "['halo-watt', 'steps']")
            return 1
    print("self-test OK: 2 seeded phantom buckets caught, clean fixture clean")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures, produced, consumed = lint_tree(root)
    for rel, lineno, name in failures:
        print(f"FAIL {rel}:{lineno}: bucket \"{name}\" is read but never "
              "written by any ScopedTimer/add/add_sample in src/")
    if failures:
        print(f"{len(failures)} phantom timer-bucket read(s); known buckets: "
              + ", ".join(sorted(produced)))
        return 1
    print(f"OK   {len(consumed)} consumed bucket name(s) all have producers "
          f"({len(produced)} produced)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
