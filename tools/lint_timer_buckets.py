#!/usr/bin/env python3
"""Lint: every TimerRegistry bucket a bench/report *reads* must be one the
code actually *writes*.

    python3 tools/lint_timer_buckets.py [repo-root]
    python3 tools/lint_timer_buckets.py --self-test

The scaling benches and the driver's perf report query buckets by string
name (`timers.total("halo-wait")`); a renamed producer bucket silently
turns those metrics into zeros — `compare_bench.py` then gates CI on a
metric that no longer measures anything.  This lint cross-references:

  producers — `ScopedTimer t(reg, "name")`, `reg.add("name", s)`,
              `reg.add_sample("name", s)` in src/
  consumers — `reg.total("name")`, `reg.median_sample("name")`,
              `reg.samples("name")` in src/, apps/, bench/, examples/

A consumer name is also accepted with a `TimerRegistry::merge` prefix
(e.g. `solver:vlasov` when some caller merges with prefix `"solver:"`).
tests/ are excluded: suites produce and consume their own ad-hoc buckets.

The same failure mode exists for trace events: tools/trace_summary.py
keys its analysis on span/counter names (KNOWN_EVENTS), and a renamed
`trace::Span` would silently drop out of the summary.  So this lint also
cross-references, in BOTH directions:

  trace producers — `trace::Span x("name")`, `trace::instant("name")`,
                    `trace::counter("name", ...)` literals in src/, plus
                    every ScopedTimer bucket (ScopedTimer emits a span
                    named after its bucket when tracing is on)
  trace contract  — the KNOWN_EVENTS set literal in tools/trace_summary.py

Stdlib only; exit 0 when every consumed bucket has a producer and the
trace contract matches the producers exactly.
"""
import os
import re
import sys
import tempfile

PRODUCER_DIRS = ("src",)
CONSUMER_DIRS = ("src", "apps", "bench", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

_PRODUCE = [
    re.compile(r"\bScopedTimer\s+\w+\s*\(\s*[^,()]+,\s*\"([^\"]+)\""),
    re.compile(r"\badd\s*\(\s*\"([^\"]+)\"\s*,"),
    re.compile(r"\badd_sample\s*\(\s*\"([^\"]+)\"\s*,"),
]
_CONSUME = [
    re.compile(r"\btotal\s*\(\s*\"([^\"]+)\"\s*\)"),
    re.compile(r"\bmedian_sample\s*\(\s*\"([^\"]+)\"\s*\)"),
    re.compile(r"\bsamples\s*\(\s*\"([^\"]+)\"\s*\)"),
]
_MERGE_PREFIX = re.compile(r"\bmerge\s*\(\s*[^,()]+,\s*\"([^\"]+)\"\s*\)")
_TRACE_PRODUCE = [
    re.compile(r"\btrace::Span\s+\w+\s*(?:\(|\{)\s*\"([^\"]+)\""),
    re.compile(r"\btrace::instant\s*\(\s*\"([^\"]+)\""),
    re.compile(r"\btrace::counter\s*\(\s*\"([^\"]+)\""),
]
_KNOWN_EVENTS_BLOCK = re.compile(
    r"KNOWN_EVENTS\s*=\s*\{(.*?)\}", re.DOTALL)
_STRING_LITERAL = re.compile(r"\"([^\"]+)\"")


def trace_contract(root):
    """Parse the KNOWN_EVENTS set literal out of tools/trace_summary.py.

    Returns None when the file is absent (self-test fixtures without a
    tools/ dir skip the trace check)."""
    path = os.path.join(root, "tools", "trace_summary.py")
    if not os.path.isfile(path):
        return None
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        m = _KNOWN_EVENTS_BLOCK.search(f.read())
    if not m:
        return set()
    return set(_STRING_LITERAL.findall(m.group(1)))


def lint_trace_events(root):
    """Cross-check src/ trace-event names against KNOWN_EVENTS, both ways.

    Returns (failures, n_produced) where each failure is a message
    string.  ScopedTimer buckets count as trace producers because the
    timer emits a span named after its bucket; plain add()/add_sample()
    buckets do not (they never reach the trace)."""
    contract = trace_contract(root)
    if contract is None:
        return [], 0
    spans = scan(root, PRODUCER_DIRS, _TRACE_PRODUCE)
    timer_spans = scan(root, PRODUCER_DIRS, [_PRODUCE[0]])
    names = set(spans) | set(timer_spans)
    failures = []
    for name in sorted(names - contract):
        sites = spans.get(name) or timer_spans.get(name) or []
        at = f" ({sites[0][0]}:{sites[0][1]})" if sites else ""
        failures.append(
            f"trace event \"{name}\"{at} is produced in src/ but missing "
            "from KNOWN_EVENTS in tools/trace_summary.py")
    for name in sorted(contract - names):
        failures.append(
            f"KNOWN_EVENTS entry \"{name}\" in tools/trace_summary.py is "
            "never produced by any trace::Span/instant/counter or "
            "ScopedTimer bucket in src/")
    return failures, len(names)


def scan(root, dirs, patterns):
    """Return {name: [(relpath, lineno), ...]} for every pattern match."""
    found = {}
    for sub in dirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, "r", encoding="utf-8", errors="replace") as f:
                    for lineno, line in enumerate(f, start=1):
                        for pat in patterns:
                            for m in pat.finditer(line):
                                found.setdefault(m.group(1), []).append(
                                    (rel, lineno))
    return found


def lint_tree(root):
    produced = scan(root, PRODUCER_DIRS, _PRODUCE)
    consumed = scan(root, CONSUMER_DIRS, _CONSUME)
    prefixes = scan(root, CONSUMER_DIRS, [_MERGE_PREFIX])
    names = set(produced)
    for prefix in prefixes:
        names.update(prefix + n for n in produced)
    failures = []
    for name, sites in sorted(consumed.items()):
        if name in names:
            continue
        for rel, lineno in sites:
            failures.append((rel, lineno, name))
    return failures, produced, consumed


CLEAN_FIXTURE_SRC = """\
void step(v6d::TimerRegistry& reg) {
  v6d::ScopedTimer t(reg, "halo");
  reg.add("fold-wait", 0.25);
  reg.add_sample("step", 1.0);
  merged.merge(reg, "solver:");
}
"""

CLEAN_FIXTURE_BENCH = """\
double report(const v6d::TimerRegistry& reg) {
  return reg.total("halo") + reg.median_sample("step") +
         reg.total("fold-wait") + reg.total("solver:halo");
}
"""

SEEDED_VIOLATION_BENCH = """\
double broken(const v6d::TimerRegistry& reg) {
  return reg.total("halo-watt") + reg.median_sample("steps");
}
"""

CLEAN_FIXTURE_TRACE_SRC = """\
void traced() {
  trace::Span span("deposit");
  trace::instant("marker");
  trace::counter("mass-drift", 0.0);
}
"""

# Matches CLEAN_FIXTURE_TRACE_SRC plus the one ScopedTimer bucket from
# CLEAN_FIXTURE_SRC ("halo") — ScopedTimer buckets double as span names;
# add()/add_sample() buckets ("fold-wait", "step") never reach the trace
# and must NOT be required in KNOWN_EVENTS.
CLEAN_FIXTURE_SUMMARY = """\
KNOWN_EVENTS = {
    "halo",
    "deposit",
    "marker",
    "mass-drift",
}
"""

SEEDED_VIOLATION_TRACE_SRC = """\
void broken_traced() {
  trace::Span span("unlisted-span");
}
"""


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        os.makedirs(os.path.join(tmp, "bench"))
        os.makedirs(os.path.join(tmp, "tools"))
        with open(os.path.join(tmp, "src", "solver.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_SRC)
        with open(os.path.join(tmp, "src", "traced.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_TRACE_SRC)
        with open(os.path.join(tmp, "bench", "report.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_BENCH)
        with open(os.path.join(tmp, "tools", "trace_summary.py"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_SUMMARY)
        failures, _, _ = lint_tree(tmp)
        trace_failures, _ = lint_trace_events(tmp)
        if failures or trace_failures:
            print("self-test FAIL: clean fixture flagged: "
                  f"{failures} {trace_failures}")
            return 1
        with open(os.path.join(tmp, "bench", "broken.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(SEEDED_VIOLATION_BENCH)
        failures, _, _ = lint_tree(tmp)
        got = {name for (_, _, name) in failures}
        if got != {"halo-watt", "steps"}:
            print(f"self-test FAIL: flagged {sorted(got)}, expected "
                  "['halo-watt', 'steps']")
            return 1
        # Seed trace violations in both directions: a span the contract
        # does not list, and a contract entry nothing produces.
        with open(os.path.join(tmp, "src", "broken_traced.cpp"), "w",
                  encoding="utf-8") as f:
            f.write(SEEDED_VIOLATION_TRACE_SRC)
        with open(os.path.join(tmp, "tools", "trace_summary.py"), "w",
                  encoding="utf-8") as f:
            f.write(CLEAN_FIXTURE_SUMMARY.replace(
                '    "marker",\n', '    "marker",\n    "ghost-event",\n'))
        trace_failures, _ = lint_trace_events(tmp)
        msgs = "\n".join(trace_failures)
        if ("unlisted-span" not in msgs or "ghost-event" not in msgs
                or len(trace_failures) != 2):
            print(f"self-test FAIL: trace check flagged: {trace_failures}")
            return 1
    print("self-test OK: 2 seeded phantom buckets + 2 seeded trace "
          "mismatches caught, clean fixtures clean")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures, produced, consumed = lint_tree(root)
    for rel, lineno, name in failures:
        print(f"FAIL {rel}:{lineno}: bucket \"{name}\" is read but never "
              "written by any ScopedTimer/add/add_sample in src/")
    trace_failures, n_trace = lint_trace_events(root)
    for msg in trace_failures:
        print(f"FAIL {msg}")
    if failures:
        print(f"{len(failures)} phantom timer-bucket read(s); known buckets: "
              + ", ".join(sorted(produced)))
    if failures or trace_failures:
        return 1
    print(f"OK   {len(consumed)} consumed bucket name(s) all have producers "
          f"({len(produced)} produced); {n_trace} trace event name(s) match "
          "KNOWN_EVENTS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
