#!/usr/bin/env python3
"""Chaos-test the supervised checkpoint-restart loop.

Stdlib only (CI runs it without installing anything):

    python3 tools/chaos_run.py path/to/v6d workdir \
        [--ranks 4] [--kills 2] [--steps 200] [--seed 7] [--lost-host]

Default (kill) mode proves crash recovery end to end:

  1. runs an uninterrupted reference world (`spawn=N`) to a final
     checkpoint,
  2. runs the same scenario under `v6d supervise`, SIGKILLing a randomly
     chosen worker mid-step `--kills` times (different rounds, different
     ranks — the schedule is seeded and printed),
  3. asserts the supervised run still exits 0, restarted at least once
     per landed kill, and its final checkpoint payloads are
     **byte-identical** to the reference — recovery is invisible in the
     physics.

`--lost-host` mode proves graceful degradation: the same rank is killed
right after every launch (a permanently dead host), so the supervisor
sees repeated rounds with no checkpoint progress, shrinks the world by
one, and the run completes on the smaller topology.  Asserts exit 0, a
shrink event, and a final world of N-1 (no bit-identity claim — the
decomposition legitimately changed).

Exit status 0 when every assertion holds, 1 otherwise.  A supervised run
that outlives --timeout is killed and counted as a failure: no failure
path may hang.
"""

import argparse
import json
import os
import pathlib
import random
import re
import shutil
import signal
import subprocess
import sys
import time

PID_LINE = re.compile(r"supervise: rank (\d+) pid (\d+) \(round (\d+)\)")
SHRINK_LINE = re.compile(r"supervise: shrinking world (\d+) -> (\d+)")

SCENARIO_KEYS = [
    "nu=6", "seed=9", "a_final=0.5", "da_max=0.001", "progress_every=0",
]


def run(cmd, label):
    print(f"[{label}] $ {' '.join(str(c) for c in cmd)}", flush=True)
    result = subprocess.run([str(c) for c in cmd],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        print(result.stdout)
        print(f"FAIL: {label} exited {result.returncode}")
        sys.exit(1)
    return result.stdout


def checkpoint_payload_names(ckpt_dir):
    return sorted(p.name for p in ckpt_dir.iterdir() if p.name != "meta")


def compare_checkpoints(ref_dir, chaos_dir):
    ref_names = checkpoint_payload_names(ref_dir)
    chaos_names = checkpoint_payload_names(chaos_dir)
    if ref_names != chaos_names:
        print(f"FAIL: payload sets differ: {ref_names} vs {chaos_names}")
        return False
    ok = True
    for name in ref_names:
        if (ref_dir / name).read_bytes() != (chaos_dir / name).read_bytes():
            print(f"FAIL: {name} differs from the uninterrupted reference")
            ok = False
        else:
            print(f"  ok: {name} byte-identical to reference")
    return ok


def read_done_event(log_path):
    for line in log_path.read_text().splitlines():
        event = json.loads(line)
        if event.get("event") == "done":
            return event
    return None


class Supervised:
    """A `v6d supervise` child whose stdout we scan for pid lines."""

    def __init__(self, cmd, label):
        print(f"[{label}] $ {' '.join(str(c) for c in cmd)}", flush=True)
        self.proc = subprocess.Popen([str(c) for c in cmd],
                                     stdout=subprocess.PIPE,
                                     stderr=subprocess.STDOUT, text=True)
        self.lines = []

    def next_round_pids(self, world):
        """Block until the next full round's pid lines appear; returns
        {rank: pid} or None when the child exits first."""
        pids, round_no = {}, None
        for line in self.proc.stdout:
            self.lines.append(line)
            match = PID_LINE.search(line)
            if not match:
                continue
            rank, pid, rnd = (int(g) for g in match.groups())
            if round_no is None:
                round_no = rnd
            if rnd != round_no:  # stale line from a round we skipped
                pids, round_no = {}, rnd
            pids[rank] = pid
            if len(pids) == world:
                return round_no, pids
        return None

    def finish(self, timeout):
        try:
            rest, _ = self.proc.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            rest, _ = self.proc.communicate()
            self.lines.append(rest or "")
            print("".join(self.lines))
            print(f"FAIL: supervised run still alive after {timeout}s — "
                  "a failure path hung")
            sys.exit(1)
        self.lines.append(rest or "")
        return self.proc.returncode, "".join(self.lines)


def supervise_cmd(v6d, workdir, common, ranks, extra):
    return [v6d, "supervise", "vlasov_only", *common, f"spawn={ranks}",
            "restart=on-failure", f"checkpoint_dir={workdir / 'ckpt'}",
            f"supervise_log={workdir / 'supervise.jsonl'}",
            "transport_timeout=5", *extra]


def kill_mode(args, v6d, work, common):
    ref = work / "ref"
    ref.mkdir(parents=True)
    run([v6d, "run", "vlasov_only", *common, f"spawn={args.ranks}",
         f"checkpoint_dir={ref / 'ckpt'}"], "reference")

    chaos = work / "chaos"
    chaos.mkdir(parents=True)
    rng = random.Random(args.seed)
    sup = Supervised(
        supervise_cmd(v6d, chaos, common, args.ranks,
                      [f"max_restarts={args.kills + 4}", "shrink_after=99"]),
        "chaos")

    kills = 0
    killed_rounds = set()
    while kills < args.kills:
        launched = sup.next_round_pids(args.ranks)
        if launched is None:
            break  # ran out of rounds before landing every kill
        round_no, pids = launched
        if round_no in killed_rounds:
            continue
        delay = rng.uniform(0.2, 0.8)
        victim = rng.choice(sorted(pids))
        time.sleep(delay)
        try:
            os.kill(pids[victim], signal.SIGKILL)
        except ProcessLookupError:
            print(f"  (round {round_no} finished before the kill landed)")
            continue
        kills += 1
        killed_rounds.add(round_no)
        print(f"  chaos: SIGKILL rank {victim} (pid {pids[victim]}) "
              f"in round {round_no} after {delay:.2f}s", flush=True)

    code, output = sup.finish(args.timeout)
    if code != 0:
        print(output)
        print(f"FAIL: supervised run exited {code}")
        return False
    if kills < args.kills:
        print(output)
        print(f"FAIL: only landed {kills}/{args.kills} kills — "
              "raise --steps so rounds last long enough")
        return False
    done = read_done_event(chaos / "supervise.jsonl")
    if not done or done["restarts"] < kills:
        print(output)
        print(f"FAIL: expected >= {kills} restarts, got {done}")
        return False
    print(f"  supervised run recovered from {kills} kills "
          f"({done['restarts']} restarts, {done['rounds']} rounds)")
    return compare_checkpoints(ref / "ckpt", chaos / "ckpt")


def lost_host_mode(args, v6d, work, common):
    chaos = work / "lost-host"
    chaos.mkdir(parents=True)
    dead_rank = args.ranks - 1
    sup = Supervised(
        supervise_cmd(v6d, chaos, common, args.ranks,
                      ["max_restarts=12", "shrink_after=2",
                       f"min_world={args.ranks - 1}",
                       "checkpoint_every=1000"]),
        "lost-host")

    shrunk = False
    while not shrunk:
        launched = sup.next_round_pids(args.ranks)
        if launched is None:
            break  # child exited; verdict comes from the exit code below
        round_no, pids = launched
        # Let the mesh form first: a rank killed mid-rendezvous makes the
        # survivors burn the (long) connect budget instead of the fast
        # peer-loss path, and either way the round fails without progress.
        time.sleep(0.5)
        try:
            os.kill(pids[dead_rank], signal.SIGKILL)
            print(f"  chaos: host of rank {dead_rank} still dead "
                  f"(round {round_no})", flush=True)
        except ProcessLookupError:
            pass
        shrunk = any(SHRINK_LINE.search(line) for line in sup.lines)

    code, output = sup.finish(args.timeout)
    if code != 0:
        print(output)
        print(f"FAIL: degraded run exited {code}")
        return False
    done = read_done_event(chaos / "supervise.jsonl")
    if not done or done["shrinks"] < 1 or done["final_world"] != args.ranks - 1:
        print(output)
        print(f"FAIL: expected a shrink to world {args.ranks - 1}, got {done}")
        return False
    print(f"  lost-host run degraded {args.ranks} -> {done['final_world']} "
          f"and completed (last_step={done['last_step']})")
    return True


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("v6d", type=pathlib.Path, help="v6d CLI binary")
    parser.add_argument("workdir", type=pathlib.Path)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--kills", type=int, default=2)
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--checkpoint-every", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--timeout", type=float, default=300.0)
    parser.add_argument("--lost-host", action="store_true",
                        help="kill the same rank every round until the "
                             "world shrinks, instead of random kills")
    args = parser.parse_args()

    work = args.workdir.resolve()
    if work.exists():
        shutil.rmtree(work)
    work.mkdir(parents=True)
    v6d = args.v6d.resolve()

    # Lost-host mode shrinks the world from N to N-1 ranks, so the grid
    # must decompose evenly for both counts (12 divides by 4, 3, and 2);
    # kill mode keeps the world size and can use the cheaper 8^3 grid.
    nx = 12 if args.lost_host else 8
    common = SCENARIO_KEYS + [f"nx={nx}", f"max_steps={args.steps}",
                              f"checkpoint_every={args.checkpoint_every}"]
    ok = (lost_host_mode if args.lost_host else kill_mode)(
        args, v6d, work, common)
    if not ok:
        print("chaos run FAILED")
        return 1
    print("chaos run passed: supervised recovery is bit-exact" if
          not args.lost_host else
          "chaos run passed: lost host degraded gracefully")
    return 0


if __name__ == "__main__":
    sys.exit(main())
