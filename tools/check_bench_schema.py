#!/usr/bin/env python3
"""Validate BENCH_*.json / perf.json files against the v6d-perf/1 schema.

Stdlib only (CI runs it without installing anything):

    python3 tools/check_bench_schema.py build/BENCH_*.json

Exit status 0 when every file conforms, 1 otherwise.  The check is
structural (required keys, types, value sanity) — it never fails on how
fast or slow a phase ran, so perf noise cannot break CI.
"""
import json
import sys

SCHEMA = "v6d-perf/1"


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")
    if doc.get("schema") != SCHEMA:
        return fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        return fail(path, "missing or empty 'name'")

    context = doc.get("context")
    if not isinstance(context, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in context.items()
    ):
        return fail(path, "'context' must be an object of string values")
    for key in ("isa", "float_width", "threads"):
        if key not in context:
            return fail(path, f"context is missing '{key}'")

    phases = doc.get("phases")
    if not isinstance(phases, list):
        return fail(path, "'phases' must be an array")
    for i, p in enumerate(phases):
        if not isinstance(p, dict):
            return fail(path, f"phases[{i}] is not an object")
        if not isinstance(p.get("name"), str) or not p["name"]:
            return fail(path, f"phases[{i}] missing 'name'")
        for key in ("seconds", "seconds_per_rep"):
            if not is_num(p.get(key)) or p[key] < 0:
                return fail(path, f"phases[{i}] ('{p['name']}') bad '{key}'")
        if not isinstance(p.get("reps"), int) or p["reps"] < 1:
            return fail(path, f"phases[{i}] ('{p['name']}') bad 'reps'")
        for key in ("cells", "bytes", "cell_updates_per_s", "gb_per_s"):
            if key in p and (not is_num(p[key]) or p[key] < 0):
                return fail(path, f"phases[{i}] ('{p['name']}') bad '{key}'")

    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return fail(path, "'metrics' must be an array")
    for i, m in enumerate(metrics):
        if not isinstance(m, dict):
            return fail(path, f"metrics[{i}] is not an object")
        if not isinstance(m.get("name"), str) or not m["name"]:
            return fail(path, f"metrics[{i}] missing 'name'")
        if not is_num(m.get("value")):
            return fail(path, f"metrics[{i}] ('{m['name']}') bad 'value'")
        if not isinstance(m.get("unit"), str):
            return fail(path, f"metrics[{i}] ('{m['name']}') bad 'unit'")

    n_ph, n_me = len(phases), len(metrics)
    print(f"OK   {path}: {doc['name']} ({n_ph} phases, {n_me} metrics)")
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
