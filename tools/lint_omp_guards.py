#!/usr/bin/env python3
"""Lint: every `#pragma omp` must sit inside an `_OPENMP` preprocessor guard.

    python3 tools/lint_omp_guards.py [repo-root]
    python3 tools/lint_omp_guards.py --self-test

The serial preset compiles with OpenMP off but still parses every pragma
token; worse, GCC with `-Wunknown-pragmas` is silent about `omp` pragmas
it was told to ignore, so an unguarded pragma builds everywhere and then
quietly changes semantics between presets.  PR 1 fixed six such regions
by hand (src/vlasov/{moments,position_advection,velocity_advection}.cpp);
this lint makes the rule mechanical:

    #ifdef _OPENMP
    #pragma omp parallel for collapse(2) schedule(static)
    #endif

A pragma is accepted when any enclosing preprocessor conditional branch
is controlled by `_OPENMP` in the positive sense — `#ifdef _OPENMP`,
`#if defined(_OPENMP)`, the `#else` of `#ifndef _OPENMP`, or an
`#elif defined(_OPENMP)`.  Stdlib only; exit 0 when clean, 1 otherwise.
"""
import os
import re
import sys
import tempfile

SCAN_DIRS = ("src", "apps", "bench", "tests", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

_PRAGMA_OMP = re.compile(r"^\s*#\s*pragma\s+omp\b")
_COND_START = re.compile(r"^\s*#\s*(if|ifdef|ifndef)\b(.*)$")
_COND_ELIF = re.compile(r"^\s*#\s*elif\b(.*)$")
_COND_ELSE = re.compile(r"^\s*#\s*else\b")
_COND_END = re.compile(r"^\s*#\s*endif\b")


class Frame:
    """One preprocessor conditional; tracks whether the *current* branch
    is the positive-`_OPENMP` one."""

    def __init__(self, directive, expr):
        mentions = "_OPENMP" in expr
        if directive == "ifdef":
            self.positive_branches = [mentions]
        elif directive == "ifndef":
            # The guard is the #else branch of an #ifndef _OPENMP.
            self.positive_branches = [False]
            self.else_is_positive = mentions
        else:  # if
            self.positive_branches = [mentions and "!defined" not in expr.replace(" ", "")]
        self.else_is_positive = getattr(self, "else_is_positive", False)
        self.branch_positive = self.positive_branches[0]

    def elif_branch(self, expr):
        self.branch_positive = "_OPENMP" in expr
        self.else_is_positive = False

    def else_branch(self):
        self.branch_positive = self.else_is_positive


def lint_file(path):
    """Return a list of (line_number, line_text) unguarded-pragma hits."""
    violations = []
    stack = []
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        continued = ""
        for lineno, raw in enumerate(f, start=1):
            line = continued + raw.rstrip("\n")
            if line.endswith("\\"):
                continued = line[:-1]
                continue
            continued = ""
            m = _COND_START.match(line)
            if m:
                stack.append(Frame(m.group(1), m.group(2)))
                continue
            m = _COND_ELIF.match(line)
            if m and stack:
                stack[-1].elif_branch(m.group(1))
                continue
            if _COND_ELSE.match(line) and stack:
                stack[-1].else_branch()
                continue
            if _COND_END.match(line):
                if stack:
                    stack.pop()
                continue
            if _PRAGMA_OMP.match(line):
                if not any(fr.branch_positive for fr in stack):
                    violations.append((lineno, line.strip()))
    return violations


def lint_tree(root):
    failures = []
    for sub in SCAN_DIRS:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                for lineno, text in lint_file(path):
                    failures.append((os.path.relpath(path, root), lineno, text))
    return failures


GUARDED_FIXTURE = """\
#ifdef _OPENMP
#pragma omp parallel for
#endif
void a();
#if defined(_OPENMP)
#pragma omp parallel for collapse(2)
#endif
#ifndef _OPENMP
void serial_only();
#else
#pragma omp simd
#endif
#if defined(OTHER)
void other();
#elif defined(_OPENMP)
#pragma omp parallel
#endif
"""

SEEDED_VIOLATIONS = """\
#pragma omp parallel for
#ifdef SOMETHING_ELSE
#pragma omp simd
#endif
#ifdef _OPENMP
void fine();
#else
#pragma omp critical
#endif
#ifndef _OPENMP
#pragma omp parallel
#endif
"""


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        clean = os.path.join(tmp, "src", "clean.cpp")
        with open(clean, "w", encoding="utf-8") as f:
            f.write(GUARDED_FIXTURE)
        if lint_tree(tmp):
            print("self-test FAIL: guarded fixture was flagged")
            return 1
        seeded = os.path.join(tmp, "src", "seeded.cpp")
        with open(seeded, "w", encoding="utf-8") as f:
            f.write(SEEDED_VIOLATIONS)
        hits = lint_tree(tmp)
        want_lines = {1, 3, 8, 11}
        got_lines = {lineno for (_, lineno, _) in hits}
        if got_lines != want_lines:
            print(f"self-test FAIL: flagged lines {sorted(got_lines)}, "
                  f"expected {sorted(want_lines)}")
            return 1
    print("self-test OK: 4 seeded violations caught, guarded fixture clean")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures = lint_tree(root)
    for relpath, lineno, text in failures:
        print(f"FAIL {relpath}:{lineno}: unguarded OpenMP pragma: {text}")
    if failures:
        print(f"{len(failures)} unguarded `#pragma omp` line(s); wrap them in "
              "`#ifdef _OPENMP` ... `#endif` (see docs/DEVELOPMENT.md)")
        return 1
    print("OK   no unguarded OpenMP pragmas")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
