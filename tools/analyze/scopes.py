#!/usr/bin/env python3
"""Scope and call-site extraction over cxxlex token streams.

Brace-aware utilities shared by every v6d-analyze check:

  * functions(tokens)  — function definitions with qualified names and
    body token spans (lambdas stay inside their enclosing function; class
    bodies are recursed into so member functions are found).
  * if_statements(...) — `if (cond) then [else …]` spans for the
    collective-consistency analysis, with `else if` chains linked.
  * call_args(...)     — argument spans of a call, split at top-level
    commas.
  * statement_span(...)— one statement starting at an index (compound
    blocks, control headers, plain `…;`).

All spans are half-open `(start, end)` token-index pairs.  Stdlib only.
"""
from collections import namedtuple

Function = namedtuple("Function", ["name", "qualname", "body", "line"])
IfStmt = namedtuple("IfStmt", ["cond", "then", "orelse", "line"])

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CONTROL = {"if", "for", "while", "switch", "catch", "do", "else",
            "return", "sizeof", "alignof", "decltype", "new", "delete"}


def match_forward(tokens, i):
    """Index of the token matching the bracket at `i` (or len(tokens))."""
    close = _OPEN[tokens[i].text]
    opener = tokens[i].text
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text == opener:
            depth += 1
        elif t.text == close:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens)


def functions(tokens):
    """Extract function definitions: a `{` preceded (modulo trailing
    qualifiers) by a `(...)` parameter list whose head token is an
    identifier that is not a control keyword.  Returns them in source
    order; bodies never overlap (scanning resumes after each body)."""
    out = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.text == "{":
            info = _function_at(tokens, i)
            if info is not None:
                name, qual, line = info
                end = match_forward(tokens, i)
                out.append(Function(name, qual, (i + 1, end), line))
                i = end + 1
                continue
        i += 1
    return out


def _function_at(tokens, brace):
    """If the `{` at `brace` opens a function body, return (name,
    qualname, line); else None."""
    j = brace - 1
    # Skip trailing qualifiers / trailing-return-type tokens between the
    # parameter list and the body: const noexcept override final mutable
    # `-> Type`, `noexcept(...)`, attribute brackets.
    guard = 0
    while j >= 0 and guard < 24:
        t = tokens[j]
        if t.kind == "punct" and t.text == ")":
            k = _match_backward(tokens, j)
            if k is None:
                return None
            # `noexcept(...)` / attribute parens: keep walking left.
            if k >= 1 and tokens[k - 1].kind == "ident" \
                    and tokens[k - 1].text in ("noexcept", "alignas"):
                j = k - 2
                guard += 1
                continue
            return _name_before_paren(tokens, k)
        if t.kind == "ident" and t.text in (
                "const", "noexcept", "override", "final", "mutable",
                "volatile", "try"):
            j -= 1
            guard += 1
            continue
        if t.kind == "punct" and t.text in ("&", "&&"):
            j -= 1
            guard += 1
            continue
        if t.kind == "punct" and t.text == "->":  # trailing return: skip type
            j -= 1
            guard += 1
            continue
        if t.kind == "ident" or (t.kind == "punct" and t.text in
                                 ("::", "<", ">", "*", ",", "]", "[")):
            # Could be part of a trailing return type; walk left a bit.
            j -= 1
            guard += 1
            continue
        return None
    return None


def _match_backward(tokens, close):
    depth = 0
    for k in range(close, -1, -1):
        t = tokens[k]
        if t.kind != "punct":
            continue
        if t.text == ")":
            depth += 1
        elif t.text == "(":
            depth -= 1
            if depth == 0:
                return k
    return None


def _name_before_paren(tokens, paren):
    k = paren - 1
    if k < 0:
        return None
    t = tokens[k]
    if t.kind != "ident" or t.text in _CONTROL:
        return None
    # Reject lambdas: `[...](` has `]` before the head identifier chain's
    # start only when there is no identifier — already excluded — but also
    # reject `operator()` handled below and calls like `foo(...)  {` that
    # are really initializer lists of a declaration; those are rare in
    # this tree and harmless if misclassified (body scans still work).
    name = t.text
    qual = [name]
    k -= 1
    while k >= 1 and tokens[k].kind == "punct" and tokens[k].text == "::" \
            and tokens[k - 1].kind == "ident":
        qual.insert(0, tokens[k - 1].text)
        k -= 2
    return name, "::".join(qual), t.line


def statement_span(tokens, i, end):
    """Half-open span of the statement starting at token `i` (< end)."""
    if i >= end:
        return (i, i)
    t = tokens[i]
    if t.kind == "punct" and t.text == "{":
        return (i, min(match_forward(tokens, i) + 1, end))
    if t.kind == "ident" and t.text in ("if", "for", "while", "switch"):
        j = i + 1
        if t.text == "if" and j < end and tokens[j].kind == "ident" \
                and tokens[j].text == "constexpr":
            j += 1
        if j < end and tokens[j].kind == "punct" and tokens[j].text == "(":
            j = match_forward(tokens, j) + 1
        body_start, body_end = statement_span(tokens, j, end)
        if t.text == "if" and body_end < end \
                and tokens[body_end].kind == "ident" \
                and tokens[body_end].text == "else":
            _, else_end = statement_span(tokens, body_end + 1, end)
            return (i, else_end)
        return (i, body_end)
    if t.kind == "ident" and t.text == "do":
        body_start, body_end = statement_span(tokens, i + 1, end)
        j = body_end
        while j < end and not (tokens[j].kind == "punct"
                               and tokens[j].text == ";"):
            j += 1
        return (i, min(j + 1, end))
    # Plain statement: to the `;` at depth 0.
    depth = 0
    for j in range(i, end):
        tj = tokens[j]
        if tj.kind != "punct":
            continue
        if tj.text in "([{":
            depth += 1
        elif tj.text in ")]}":
            depth -= 1
            if depth < 0:
                return (i, j)
        elif tj.text == ";" and depth == 0:
            return (i, j + 1)
    return (i, end)


def if_statements(tokens, span):
    """All `if` statements (any nesting depth) inside `span`, as IfStmt
    with cond/then/orelse half-open token spans.  `else if` chains appear
    both as the outer if's orelse and as their own IfStmt."""
    out = []
    start, end = span
    i = start
    while i < end:
        t = tokens[i]
        if t.kind == "ident" and t.text == "if":
            j = i + 1
            if j < end and tokens[j].kind == "ident" \
                    and tokens[j].text == "constexpr":
                j += 1
            if j < end and tokens[j].kind == "punct" and tokens[j].text == "(":
                cond_end = match_forward(tokens, j)
                cond = (j + 1, cond_end)
                then = statement_span(tokens, cond_end + 1, end)
                orelse = None
                k = then[1]
                if k < end and tokens[k].kind == "ident" \
                        and tokens[k].text == "else":
                    orelse = statement_span(tokens, k + 1, end)
                out.append(IfStmt(cond, then, orelse, t.line))
        i += 1
    return out


def call_args(tokens, open_paren):
    """Argument token spans of the call whose `(` is at `open_paren`,
    split at top-level commas.  Empty argument list -> []."""
    close = match_forward(tokens, open_paren)
    args = []
    depth = 0
    arg_start = open_paren + 1
    if arg_start >= close:
        return []
    for j in range(open_paren + 1, close):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
        elif t.text == "," and depth == 0:
            args.append((arg_start, j))
            arg_start = j + 1
    args.append((arg_start, close))
    return args


def member_calls(tokens, span, names):
    """Yield (method_name, receiver_name_or_None, open_paren_index, line)
    for every call `recv.name(` / `recv->name(` / bare `name(` inside
    `span` where name ∈ names.  The receiver is the single identifier
    immediately left of the access operator (chained accesses yield the
    rightmost identifier, e.g. `a.b_->name(` -> `b_`)."""
    start, end = span
    for i in range(start, end):
        t = tokens[i]
        if t.kind != "ident" or t.text not in names:
            continue
        if i + 1 >= end or tokens[i + 1].kind != "punct" \
                or tokens[i + 1].text != "(":
            continue
        receiver = None
        if i >= 2 and tokens[i - 1].kind == "punct" \
                and tokens[i - 1].text in (".", "->") \
                and tokens[i - 2].kind == "ident":
            receiver = tokens[i - 2].text
        elif i >= 1 and tokens[i - 1].kind == "punct" \
                and tokens[i - 1].text in (".", "->"):
            receiver = ""  # complex receiver expression (call chain, index)
        yield t.text, receiver, i + 1, t.line
