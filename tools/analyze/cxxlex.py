#!/usr/bin/env python3
"""Shared C++ lexer for the v6d-analyze checks (tools/analyze/).

A real token-level pass, not a regex scrape: comments (line and block,
including block comments containing braces), ordinary/char/raw string
literals (`R"delim(...)delim"` spanning lines), preprocessor directives
with backslash continuations, and literally-disabled conditional regions
(`#if 0` ... `#endif`) are all handled before any check sees a token.
Digraphs are deliberately NOT folded (the tree is digraph-free; `<:` in
`vector<::v6d::X>` must lex as `<` `::`), and maximal munch covers the
multi-character operators the checks care about (`::`, `->`, `==`,
compound assignments, shifts).

Tokens carry (kind, text, line):
    kind ∈ {"ident", "num", "str", "chr", "punct", "pp"}
A "pp" token holds the whole (continuation-joined) directive text and is
emitted in source order, so brace-depth tracking in the scope layer is
never confused by directives.  Tokens inside disabled regions are not
emitted at all.  Stdlib only; `python3 tools/analyze/cxxlex.py` runs the
lexer's own self-test.
"""
import re
import sys
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])

# Longest-first so maximal munch is a plain prefix test.
_MULTI_PUNCT = [
    "<<=", ">>=", "->*", "...",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "##",
]

_IDENT_START = re.compile(r"[A-Za-z_]")
_IDENT_BODY = re.compile(r"[A-Za-z0-9_]")
_RAW_PREFIX = re.compile(r'(?:u8|[uUL])?R$')

_PP_IF = re.compile(r"^#\s*if\b(.*)$", re.S)
_PP_IFDEF = re.compile(r"^#\s*(ifdef|ifndef)\b", re.S)
_PP_ELIF = re.compile(r"^#\s*elif\b(.*)$", re.S)
_PP_ELSE = re.compile(r"^#\s*else\b")
_PP_ENDIF = re.compile(r"^#\s*endif\b")


def _literal_truth(expr):
    """0/false -> False, 1/true -> True, anything else -> None."""
    expr = expr.strip()
    if expr in ("0", "false", "(0)"):
        return False
    if expr in ("1", "true", "(1)"):
        return True
    return None


class _CondFrame:
    """One #if/#ifdef conditional; tracks whether the current branch is
    statically disabled (only literal `#if 0`/`#if 1` decide anything —
    every other condition scans both branches)."""

    def __init__(self, literal):
        self.literal = literal          # truth of the opening condition
        self.in_else = False

    def branch_enabled(self):
        if self.literal is None:
            return True
        return self.literal != self.in_else


def lex(text):
    """Lex `text` into a list of Token.  Never raises on malformed input;
    unterminated constructs consume to end of file."""
    tokens = []
    i, n, line = 0, len(text), 1
    cond_stack = []

    def enabled():
        return all(fr.branch_enabled() for fr in cond_stack)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # ---- comments ----
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                i = n if j < 0 else j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j < 0:
                    break
                line += text.count("\n", i, j + 2)
                i = j + 2
                continue
        # ---- preprocessor directive (with continuations) ----
        if c == "#" and _at_line_start(text, i):
            start_line = line
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    k = n
                if k > j and text[k - 1] == "\\":
                    line += 1
                    j = k + 1
                else:
                    j = k
                    break
            directive = re.sub(r"\\\n", " ", text[i:j])
            _track_conditional(cond_stack, directive)
            if enabled() and not _is_conditional(directive):
                tokens.append(Token("pp", directive.strip(), start_line))
            i = j
            continue
        if not enabled():
            # Skip a disabled region token-blind but line-accurately; raw
            # newline accounting happens at the top of the loop, so just
            # consume one char here.
            i += 1
            continue
        # ---- raw string ----
        if c == '"' and tokens and tokens[-1].kind == "ident" \
                and _RAW_PREFIX.search(tokens[-1].text):
            prefix = tokens.pop()
            close = _raw_string_end(text, i)
            body = text[i:close]
            line_at = prefix.line
            line += body.count("\n")
            tokens.append(Token("str", prefix.text + body, line_at))
            i = close
            continue
        # ---- string / char literal ----
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; tolerate
                j += 1
            j = min(j + 1, n)
            tokens.append(Token("str" if c == '"' else "chr",
                                text[i:j], line))
            i = j
            continue
        # ---- identifier ----
        if _IDENT_START.match(c):
            j = i + 1
            while j < n and _IDENT_BODY.match(text[j]):
                j += 1
            tokens.append(Token("ident", text[i:j], line))
            i = j
            continue
        # ---- number (pp-number: handles hex, digit separators, exponents) ----
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch.isalnum() or ch in "._'":
                    j += 1
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        # ---- punctuation (maximal munch) ----
        for op in _MULTI_PUNCT:
            if text.startswith(op, i):
                tokens.append(Token("punct", op, line))
                i += len(op)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens


def _at_line_start(text, i):
    j = i - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    return j < 0 or text[j] == "\n"


def _raw_string_end(text, i):
    """`text[i]` is the opening quote of a raw string (R already consumed);
    return the index one past the closing quote."""
    m = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
    if not m:
        return min(i + 1, len(text))
    delim = ")" + m.group(1) + '"'
    j = text.find(delim, i + m.end())
    return len(text) if j < 0 else j + len(delim)


def _is_conditional(directive):
    return bool(_PP_IF.match(directive) or _PP_IFDEF.match(directive)
                or _PP_ELIF.match(directive) or _PP_ELSE.match(directive)
                or _PP_ENDIF.match(directive))


def _track_conditional(stack, directive):
    m = _PP_IF.match(directive)
    if m:
        stack.append(_CondFrame(_literal_truth(m.group(1))))
        return
    if _PP_IFDEF.match(directive):
        stack.append(_CondFrame(None))
        return
    m = _PP_ELIF.match(directive)
    if m and stack:
        fr = stack[-1]
        if fr.literal is False:
            # A dead #if 0 can be revived by a literally-true #elif.
            fr.literal = _literal_truth(m.group(1))
            if fr.literal is None:
                fr.literal = None
        elif fr.literal is True:
            fr.literal = True
            fr.in_else = True  # taken branch passed; rest is dead
        return
    if _PP_ELSE.match(directive) and stack:
        stack[-1].in_else = True
        return
    if _PP_ENDIF.match(directive) and stack:
        stack.pop()


def int_value(num_text):
    """Value of an integer literal token text, or None (floats, etc.)."""
    t = num_text.replace("'", "").rstrip("uUlL")
    try:
        return int(t, 0)
    except ValueError:
        return None


# --------------------------------------------------------------------------
# Self-test: the corpus-driven edge cases the satellite task names — raw
# strings, block comments containing braces, preprocessor-disabled regions,
# digraph-free token sequences — plus continuation and literal handling.

_FIXTURE_CASES = [
    # (source, expected (kind, text) list or predicate description)
    ("int a = 3; // brace in comment {",
     [("ident", "int"), ("ident", "a"), ("punct", "="), ("num", "3"),
      ("punct", ";")]),
    ("/* { nested } braces { in block comment */ foo",
     [("ident", "foo")]),
    ('auto s = R"x(unbalanced { " )incomplete )x"; next',
     [("ident", "auto"), ("ident", "s"), ("punct", "="),
      ("str", 'R"x(unbalanced { " )incomplete )x"'), ("punct", ";"),
      ("ident", "next")]),
    ('auto p = R"(plain { raw)"; after',
     [("ident", "auto"), ("ident", "p"), ("punct", "="),
      ("str", 'R"(plain { raw)"'), ("punct", ";"), ("ident", "after")]),
    # Disabled region: the { } and call inside #if 0 must not appear.
    ("#if 0\nbarrier();\n{\n#else\nkept();\n#endif\ntail",
     [("ident", "kept"), ("punct", "("), ("punct", ")"), ("punct", ";"),
      ("ident", "tail")]),
    ("#if 1\ntaken();\n#else\ndead {\n#endif\nrest",
     [("ident", "taken"), ("punct", "("), ("punct", ")"), ("punct", ";"),
      ("ident", "rest")]),
    # Non-literal conditionals keep both branches.
    ("#ifdef _OPENMP\na();\n#else\nb();\n#endif",
     [("ident", "a"), ("punct", "("), ("punct", ")"), ("punct", ";"),
      ("ident", "b"), ("punct", "("), ("punct", ")"), ("punct", ";")]),
    # Digraph-free: `<:` must lex as `<` `::`-chain pieces, not `[`.
    ("vector<::v6d::X> v;",
     [("ident", "vector"), ("punct", "<"), ("punct", "::"),
      ("ident", "v6d"), ("punct", "::"), ("ident", "X"), ("punct", ">"),
      ("ident", "v"), ("punct", ";")]),
    ("x<=y; p->q; a::b; s <<= 2; t >>= 1; u != v;",
     [("ident", "x"), ("punct", "<="), ("ident", "y"), ("punct", ";"),
      ("ident", "p"), ("punct", "->"), ("ident", "q"), ("punct", ";"),
      ("ident", "a"), ("punct", "::"), ("ident", "b"), ("punct", ";"),
      ("ident", "s"), ("punct", "<<="), ("num", "2"), ("punct", ";"),
      ("ident", "t"), ("punct", ">>="), ("num", "1"), ("punct", ";"),
      ("ident", "u"), ("punct", "!="), ("ident", "v"), ("punct", ";")]),
    ('const char* s = "quote \\" and { brace"; int z;',
     [("ident", "const"), ("ident", "char"), ("punct", "*"),
      ("ident", "s"), ("punct", "="),
      ("str", '"quote \\" and { brace"'), ("punct", ";"),
      ("ident", "int"), ("ident", "z"), ("punct", ";")]),
    ("int hex = 0x6a7; double d = 1.5e+3; int sep = 1'000;",
     [("ident", "int"), ("ident", "hex"), ("punct", "="),
      ("num", "0x6a7"), ("punct", ";"),
      ("ident", "double"), ("ident", "d"), ("punct", "="),
      ("num", "1.5e+3"), ("punct", ";"),
      ("ident", "int"), ("ident", "sep"), ("punct", "="),
      ("num", "1'000"), ("punct", ";")]),
    # Continued #define is one pp token; code resumes after.
    ("#define M(a) \\\n  ((a) + 1)\nint after_define;",
     [("pp", "#define M(a)    ((a) + 1)"),
      ("ident", "int"), ("ident", "after_define"), ("punct", ";")]),
    ("'\\'' x", [("chr", "'\\''"), ("ident", "x")]),
    # A nested #if inside a disabled region must not re-enable it: the
    # inner `#if 1` frame is locally true but the outer `#if 0` still
    # suppresses everything down to ITS #endif.
    ("#if 0\n#if 1\nx();\n#endif\nstill_dead();\n#endif\nalive",
     [("ident", "alive")]),
    # A raw string whose body contains a decoy `)x"` terminator for a
    # DIFFERENT delimiter: only `)y"` closes it.
    ('auto q = R"y(not )x" yet)y"; tail',
     [("ident", "auto"), ("ident", "q"), ("punct", "="),
      ("str", 'R"y(not )x" yet)y"'), ("punct", ";"), ("ident", "tail")]),
]


def self_test():
    failures = 0
    for idx, (src, want) in enumerate(_FIXTURE_CASES):
        got = [(t.kind, t.text) for t in lex(src)]
        if got != want:
            failures += 1
            print(f"lexer self-test FAIL case {idx}:\n  src:  {src!r}\n"
                  f"  want: {want}\n  got:  {got}")
    # Line-number accuracy through multi-line constructs.
    src = '/* one\ntwo */\nint a;\nauto r = R"(l4\nl5)";\nint b;\n'
    lines = {t.text: t.line for t in lex(src) if t.kind == "ident"}
    if lines.get("a") != 3 or lines.get("b") != 6:
        failures += 1
        print(f"lexer self-test FAIL line numbers: {lines}")
    if int_value("0x6a7") != 0x6a7 or int_value("1'000u") != 1000 \
            or int_value("1.5") is not None:
        failures += 1
        print("lexer self-test FAIL int_value")
    if failures:
        print(f"lexer self-test: {failures} case(s) failed")
        return 1
    print(f"lexer self-test OK ({len(_FIXTURE_CASES) + 2} cases)")
    return 0


if __name__ == "__main__":
    sys.exit(self_test())
