"""tag-space: user message tags are provably disjoint — from the
transport's reserved internal channel and from each other.

The comm contract (src/comm/transport.hpp): tags below
`comm::kFirstUserTag` are reserved for the transport's internal
collective/control channel (today the TCP backend runs collectives over a
separate internal mailbox, but a single-tag-space backend — real MPI —
must map its op-sequence tags into the reserved range).  Every tag a user
passes to `send`/`recv`/`irecv`/`sendrecv` must therefore resolve to a
value >= kFirstUserTag, and the tag *ranges* of distinct exchange kinds
(`kHaloTagBase`, `kPsHaloTagBase`, …) must be pairwise disjoint, or two
concurrent exchanges on one communicator would cross-match messages.

How the proof works, entirely statically:

1.  Every `constexpr int` in the tree is collected and constant-folded
    (file-level and function-local; hex, shifts, arithmetic, references
    to earlier constants).
2.  Every p2p call site outside src/comm/ has its tag argument resolved:
    - to an exact value (literals, constants, folded locals), or
    - to an offset range over a `tag_base` parameter (`tag_base + axis*4
      + 1` with the documented axis∈[0,3) bound), or
    - flagged as unanalyzable.
3.  Anchors (constexpr whose name contains `Tag`) are widened into
    intervals: direct-use offsets plus the offset span of every consumer
    (constructor/function with a `tag_base` parameter) the anchor is
    passed to; consumer spans come from the files defining that
    consumer's member functions.
4.  All intervals and exact tags must sit at/above kFirstUserTag and be
    pairwise disjoint.

src/comm/ itself is exempt from the call-site scan: it is the machinery
that moves tags, not a user of the tag space.  Its tag *constants* are
held to the inverse contract instead: an anchor declared inside src/comm/
names a reserved internal channel (the heartbeat beacon, control frames),
so its range must sit strictly below kFirstUserTag — inside the reserved
band — and the reserved channels must be pairwise disjoint, or heartbeat
and control frames would cross-match on a single-tag-space backend.
"""
import re

from .. import cxxlex, scopes
from . import Finding

NAME = "tag-space"
DESCRIPTION = ("user tags at send/recv/irecv sites resolve statically, "
               "stay >= comm::kFirstUserTag (reserved internal channel), "
               "tag-base ranges are pairwise disjoint, and src/comm/ "
               "anchors stay inside the reserved band, also disjoint")

FLOOR_CONSTANT = "kFirstUserTag"

# method name -> 0-based tag argument positions
_P2P_TAG_ARGS = {
    "send": (1,), "recv": (1,), "irecv": (1,),
    "send_bytes": (1,), "recv_bytes": (1,),
    "sendrecv": (1, 5),
}

# Documented project bounds for loop/axis variables inside tag offset
# expressions: 3 spatial axes, 2 directions.
_BOUNDED_VARS = {"axis": (0, 2), "a": (0, 2), "ax": (0, 2),
                 "dir": (0, 1), "d": (0, 2)}

_TAG_BASE_IDENTS = {"tag_base", "tag_base_"}
_ANCHOR_NAME = re.compile(r"[Tt]ag")

_COMM_INTERNAL = re.compile(r"(^|/)src/comm/")


def run(files):
    findings = []
    consts = _collect_constexprs(files)
    floor = consts.get(FLOOR_CONSTANT)
    floor_val = floor.value if floor is not None else 0
    p2p_sites = 0

    consumers = _collect_consumers(files)          # name -> set of files
    consumer_span = _consumer_offset_spans(files)  # qualclass -> (lo, hi)

    exact_uses = []     # (lo, hi, file, line) — anchor-free resolved tags
    anchor_extra = {}   # anchor name -> widest direct-use offset (lo, hi)
    for sf in files:
        if _COMM_INTERNAL.search(sf.rel):
            continue
        file_consts = {n: c.value for n, c in consts.items()}
        for fn in sf.functions:
            local = dict(file_consts)
            local.update(_local_const_ints(sf.tokens, fn.body, file_consts))
            bounded = _bounded_locals(sf.tokens, fn.body, local, consts)
            for method, receiver, paren, line in scopes.member_calls(
                    sf.tokens, fn.body, set(_P2P_TAG_ARGS)):
                if receiver is None:
                    # `std::vector<std::uint64_t> recv_bytes(n, 0);` is a
                    # declaration, not traffic; real p2p always goes
                    # through a Communicator/Transport object.
                    continue
                args = scopes.call_args(sf.tokens, paren)
                for pos in _P2P_TAG_ARGS[method]:
                    if pos >= len(args):
                        continue
                    p2p_sites += 1
                    span = args[pos]
                    res = _resolve_tag(sf.tokens, span, local, consts)
                    if res is None and span[1] - span[0] == 1 \
                            and sf.tokens[span[0]].kind == "ident" \
                            and sf.tokens[span[0]].text in bounded:
                        # A bounded-but-unfoldable local like
                        # `const int tag_fwd = kHaloTagBase + axis * 4;`
                        # or `= tag_base + axis * 4;`.
                        lo_b, hi_b, saw_base, anchors_b = \
                            bounded[sf.tokens[span[0]].text]
                        if saw_base:
                            # tag_base offset: accounted for through the
                            # enclosing consumer's span.
                            continue
                        res = ("range", lo_b, hi_b, anchors_b)
                    if res is None:
                        text = _span_text(sf.tokens, span)
                        findings.append(Finding(
                            NAME, sf.rel, line,
                            f"unanalyzable tag expression `{text}` at "
                            f"`{method}` call; use a literal, a constexpr "
                            "tag constant, or a bounded tag_base offset"))
                        continue
                    if res[0] == "base-offset":
                        # Range over a tag_base parameter: contributes to
                        # the span of this function's class (consumer).
                        continue
                    _, lo_v, hi_v, anchors = res
                    if not anchors:
                        exact_uses.append((lo_v, hi_v, sf.rel, line))
                    if lo_v < floor_val:
                        findings.append(Finding(
                            NAME, sf.rel, line,
                            f"tag {_fmt_range(lo_v, hi_v)} at `{method}` "
                            "call collides with the reserved internal "
                            f"collective channel [0, {floor_val}) "
                            f"({FLOOR_CONSTANT})"))
                    for name in anchors:
                        lo, hi = anchor_extra.get(name, (0, 0))
                        av = consts[name].value
                        anchor_extra[name] = (min(lo, lo_v - av),
                                              max(hi, hi_v - av))
    # Anchor intervals: value + direct offsets + consumer spans.  Anchors
    # declared inside src/comm/ are reserved internal channels and live
    # under the inverse contract (inside [0, floor), mutually disjoint).
    intervals = []
    reserved = []
    for name, const in consts.items():
        if name == FLOOR_CONSTANT or not _ANCHOR_NAME.search(name):
            continue
        lo_off, hi_off = anchor_extra.get(name, (0, 0))
        for consumer in _anchor_consumers(files, name, consumers):
            span = consumer_span.get(consumer)
            if span:
                lo_off = min(lo_off, span[0])
                hi_off = max(hi_off, span[1])
        lo, hi = const.value + lo_off, const.value + hi_off
        if _COMM_INTERNAL.search(const.rel):
            reserved.append((lo, hi, name, const))
            if not (0 <= lo and hi < floor_val):
                findings.append(Finding(
                    NAME, const.rel, const.line,
                    f"reserved internal channel `{name}` spans "
                    f"[{lo}, {hi}] but must sit inside the internal band "
                    f"[0, {floor_val}) ({FLOOR_CONSTANT}); a src/comm/ "
                    "tag constant in user space would collide with "
                    "production exchanges"))
            continue
        intervals.append((lo, hi, name, const))
        if lo < floor_val:
            findings.append(Finding(
                NAME, const.rel, const.line,
                f"tag range [{lo}, {hi}] of `{name}` overlaps the reserved "
                f"internal collective channel [0, {floor_val}) "
                f"({FLOOR_CONSTANT})"))
    reserved.sort()
    for prev, cur in zip(reserved, reserved[1:]):
        if cur[0] <= prev[1]:
            findings.append(Finding(
                NAME, cur[3].rel, cur[3].line,
                f"reserved internal channel `{cur[2]}` [{cur[0]}, {cur[1]}] "
                f"overlaps `{prev[2]}` [{prev[0]}, {prev[1]}] (declared at "
                f"{prev[3].rel}:{prev[3].line}); heartbeat and control "
                "frames would cross-match"))
    intervals.sort()
    for prev, cur in zip(intervals, intervals[1:]):
        if cur[0] <= prev[1]:
            findings.append(Finding(
                NAME, cur[3].rel, cur[3].line,
                f"tag range [{cur[0]}, {cur[1]}] of `{cur[2]}` overlaps "
                f"[{prev[0]}, {prev[1]}] of `{prev[2]}` "
                f"(declared at {prev[3].rel}:{prev[3].line}); concurrent "
                "exchanges would cross-match messages"))
    # Raw (anchor-free) tags must not land inside a named exchange's range.
    for lo_v, hi_v, rel, line in exact_uses:
        for lo, hi, name, const in intervals:
            if lo_v <= hi and lo <= hi_v:
                findings.append(Finding(
                    NAME, rel, line,
                    f"literal tag {_fmt_range(lo_v, hi_v)} falls inside "
                    f"the range [{lo}, {hi}] of `{name}` (declared at "
                    f"{const.rel}:{const.line}); concurrent exchanges "
                    "would cross-match messages"))
    if floor is None and (p2p_sites or intervals):
        anchor_file = files[0].rel if files else "<none>"
        findings.append(Finding(
            NAME, anchor_file, 1,
            f"constexpr `{FLOOR_CONSTANT}` (reserved internal tag range) "
            "not found in the scanned tree; the tag floor contract is "
            "unverifiable"))
    return findings


class _Const:
    __slots__ = ("value", "rel", "line")

    def __init__(self, value, rel, line):
        self.value = value
        self.rel = rel
        self.line = line


def _collect_constexprs(files):
    """name -> _Const for every `constexpr int NAME = expr;` in the tree
    (file scope and function-local alike), constant-folded in two passes
    so later-file references resolve."""
    decls = []
    for sf in files:
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind == "ident" and t.text == "constexpr" \
                    and i + 3 < len(toks) \
                    and toks[i + 1].kind == "ident" \
                    and toks[i + 1].text in ("int", "auto", "long",
                                             "unsigned", "short") \
                    and toks[i + 2].kind == "ident" \
                    and toks[i + 3].kind == "punct" \
                    and toks[i + 3].text == "=":
                expr_start = i + 4
                j = expr_start
                while j < len(toks) and not (toks[j].kind == "punct"
                                             and toks[j].text == ";"):
                    j += 1
                decls.append((toks[i + 2].text, sf, (expr_start, j),
                              toks[i + 2].line))
    table = {}
    for _ in range(3):  # fixpoint over forward references
        progress = False
        for name, sf, span, line in decls:
            if name in table:
                continue
            value = _fold(sf.tokens, span,
                          {n: c.value for n, c in table.items()})
            if value is not None:
                table[name] = _Const(value, sf.rel, line)
                progress = True
        if not progress:
            break
    return table


def _local_const_ints(tokens, body, known):
    """`const int x = expr;` / `constexpr int x = expr;` locals folded
    against `known` (applied iteratively so chains resolve)."""
    out = {}
    start, end = body
    for _ in range(4):
        progress = False
        i = start
        while i < end - 3:
            t = tokens[i]
            if t.kind == "ident" and t.text in ("int", "auto") \
                    and i >= 1 and tokens[i - 1].kind == "ident" \
                    and tokens[i - 1].text in ("const", "constexpr") \
                    and tokens[i + 1].kind == "ident" \
                    and tokens[i + 2].kind == "punct" \
                    and tokens[i + 2].text == "=":
                name = tokens[i + 1].text
                j = i + 3
                while j < end and not (tokens[j].kind == "punct"
                                       and tokens[j].text == ";"):
                    j += 1
                if name not in out:
                    env = dict(known)
                    env.update(out)
                    value = _fold(tokens, (i + 3, j), env)
                    if value is not None:
                        out[name] = value
                        progress = True
                i = j
                continue
            i += 1
        if not progress:
            break
    return out


def _fold(tokens, span, env):
    """Constant-fold an integer expression span; None if unresolvable."""
    parts = []
    for j in range(*span):
        t = tokens[j]
        if t.kind == "num":
            v = cxxlex.int_value(t.text)
            if v is None:
                return None
            parts.append(str(v))
        elif t.kind == "ident":
            if t.text in env:
                parts.append(str(env[t.text]))
            elif t.text in ("static_cast", "int"):
                continue  # static_cast<int>(...) noise
            else:
                return None
        elif t.kind == "punct":
            if t.text in ("+", "-", "*", "/", "%", "(", ")", "<<", ">>",
                          "|", "&", "^"):
                parts.append(t.text)
            elif t.text in ("<", ">"):
                continue  # static_cast<int> angle brackets
            else:
                return None
        else:
            return None
    if not parts:
        return None
    expr = " ".join(parts)
    if not re.fullmatch(r"[\d\s()+\-*/%|&^<>]+", expr):
        return None
    try:
        value = eval(expr, {"__builtins__": {}}, {})  # noqa: S307
    except Exception:
        return None
    return value if isinstance(value, int) else None


def _fmt_range(lo, hi):
    return str(lo) if lo == hi else f"range [{lo}, {hi}]"


def _span_anchors(tokens, span, consts):
    return {tokens[j].text for j in range(*span)
            if tokens[j].kind == "ident" and tokens[j].text in consts
            and _ANCHOR_NAME.search(tokens[j].text)}


def _resolve_tag(tokens, span, local_env, consts):
    """Classify one tag argument:
    ("range", lo, hi, anchors_used) for a resolved value or bounded
    interval, ("base-offset", lo, hi) for a tag_base offset, or None."""
    value = _fold(tokens, span, local_env)
    if value is not None:
        return ("range", value, value,
                _span_anchors(tokens, span, consts))
    rng = _bound_expr(tokens, span, local_env, allow_base=True)
    if rng is None:
        return None
    lo, hi, saw_base = rng
    if saw_base:
        return ("base-offset", lo, hi)
    return ("range", lo, hi, _span_anchors(tokens, span, consts))


def _bound_expr(tokens, span, env, allow_base):
    """Interval-evaluate a + / * expression of numbers, env constants,
    bounded vars, and (once) a tag_base ident treated as 0.  Returns
    (lo, hi, saw_base) or None."""
    # Shunting-free: split on top-level + and -, bound each term.
    terms = []
    start, end = span
    depth = 0
    term_start = start
    sign = 1
    j = start
    pending_sign = 1
    while j < end:
        t = tokens[j]
        if t.kind == "punct" and t.text in "([{":
            depth += 1
        elif t.kind == "punct" and t.text in ")]}":
            depth -= 1
        elif depth == 0 and t.kind == "punct" and t.text in "+-" \
                and j > term_start:
            terms.append((pending_sign, (term_start, j)))
            pending_sign = 1 if t.text == "+" else -1
            term_start = j + 1
        j += 1
    terms.append((pending_sign, (term_start, end)))

    lo = hi = 0
    saw_base = False
    for sign, (ts, te) in terms:
        if ts >= te:
            return None
        r = _bound_term(tokens, (ts, te), env, allow_base and not saw_base)
        if r is None:
            return None
        tlo, thi, is_base = r
        if is_base:
            saw_base = True
        if sign < 0:
            tlo, thi = -thi, -tlo
        lo += tlo
        hi += thi
    return (lo, hi, saw_base)


def _bound_term(tokens, span, env, allow_base):
    """Bound a single product term.  Returns (lo, hi, is_base) or None."""
    factors = []
    start, end = span
    j = start
    while j < end:
        t = tokens[j]
        if t.kind == "punct" and t.text in ("*", "(", ")"):
            j += 1
            continue
        if t.kind == "num":
            v = cxxlex.int_value(t.text)
            if v is None:
                return None
            factors.append((v, v))
        elif t.kind == "ident":
            if t.text in env:
                factors.append((env[t.text], env[t.text]))
            elif t.text in _TAG_BASE_IDENTS:
                if not allow_base:
                    return None
                if any(tokens[k].kind == "punct" and tokens[k].text == "*"
                       for k in range(start, end)):
                    return None  # a scaled tag_base is not boundable
                return (0, 0, True)
            elif t.text in _BOUNDED_VARS:
                factors.append(_BOUNDED_VARS[t.text])
            else:
                return None
        else:
            return None
        j += 1
    if not factors:
        return None
    lo, hi = 1, 1
    for flo, fhi in factors:
        candidates = [lo * flo, lo * fhi, hi * flo, hi * fhi]
        lo, hi = min(candidates), max(candidates)
    return (lo, hi, False)


def _collect_consumers(files):
    """Names of functions/classes taking a `tag_base` parameter, mapped to
    the files where their definitions (and so their offsets) live.  A
    constructor names its class; member functions using `tag_base_` add
    their file via the qualname prefix."""
    consumers = {}
    for sf in files:
        for fn in sf.functions:
            # Parameter list lives just before the body; cheap re-scan of
            # the header slice for the `tag_base` ident.
            hdr_start = max(0, fn.body[0] - 64)
            header = sf.tokens[hdr_start:fn.body[0]]
            if any(t.kind == "ident" and t.text == "tag_base"
                   for t in header):
                consumers.setdefault(fn.name, set()).add(sf.rel)
    return consumers


def _consumer_offset_spans(files):
    """For each consumer name, the (lo, hi) offset range its code applies
    to tag_base / tag_base_ at p2p call sites.  Located via qualnames:
    offsets in `HaloPlan::begin_axis` belong to consumer `HaloPlan`; a
    free function's offsets belong to its own name."""
    spans = {}

    def widen(name, lo, hi):
        cur = spans.get(name, (0, 0))
        spans[name] = (min(cur[0], lo), max(cur[1], hi))

    for sf in files:
        for fn in sf.functions:
            owners = {fn.name}
            if "::" in fn.qualname:
                owners.add(fn.qualname.split("::")[0])
            locals_env = {}
            # tag locals like `const int tag_fwd = tag_base + axis*4;`
            base_locals = {
                n: (lo, hi)
                for n, (lo, hi, saw_base, _anchors)
                in _bounded_locals(sf.tokens, fn.body, {}, {}).items()
                if saw_base}
            for method, _, paren, _line in scopes.member_calls(
                    sf.tokens, fn.body, set(_P2P_TAG_ARGS)):
                args = scopes.call_args(sf.tokens, paren)
                for pos in _P2P_TAG_ARGS[method]:
                    if pos >= len(args):
                        continue
                    span = args[pos]
                    # Substitute a single-ident arg through base_locals.
                    if span[1] - span[0] == 1 \
                            and sf.tokens[span[0]].kind == "ident" \
                            and sf.tokens[span[0]].text in base_locals:
                        lo, hi = base_locals[sf.tokens[span[0]].text]
                        for owner in owners:
                            widen(owner, lo, hi)
                        continue
                    r = _bound_expr(sf.tokens, span, locals_env,
                                    allow_base=True)
                    if r is not None and r[2]:
                        for owner in owners:
                            widen(owner, r[0], r[1])
    return spans


def _bounded_locals(tokens, body, env, consts):
    """Local `const int x = <expr>;` decls whose initializer bounds to an
    interval: name -> (lo, hi, saw_base, anchors).  Covers tag_base
    offsets (`tag_base + axis * 4`) and anchored ranges
    (`kHaloTagBase + 50 + axis * 4`) alike."""
    out = {}
    start, end = body
    i = start
    while i < end - 3:
        t = tokens[i]
        if t.kind == "ident" and t.text == "int" \
                and tokens[i + 1].kind == "ident" \
                and tokens[i + 2].kind == "punct" \
                and tokens[i + 2].text == "=":
            j = i + 3
            while j < end and not (tokens[j].kind == "punct"
                                   and tokens[j].text == ";"):
                j += 1
            r = _bound_expr(tokens, (i + 3, j), env, allow_base=True)
            if r is not None:
                out[tokens[i + 1].text] = (
                    r[0], r[1], r[2],
                    _span_anchors(tokens, (i + 3, j), consts))
            i = j
            continue
        i += 1
    return out


def _anchor_consumers(files, anchor, consumers):
    """Consumer names that `anchor` is passed to as a call argument."""
    hit = set()
    for sf in files:
        toks = sf.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text != anchor:
                continue
            # Walk left to the call head: `Name(...anchor...)`.
            depth = 0
            for k in range(i - 1, max(0, i - 200), -1):
                tk = toks[k]
                if tk.kind != "punct":
                    continue
                if tk.text == ")":
                    depth += 1
                elif tk.text == "(":
                    if depth == 0:
                        if k >= 1 and toks[k - 1].kind == "ident" \
                                and toks[k - 1].text in consumers:
                            hit.add(toks[k - 1].text)
                        break
                    depth -= 1
    return hit


def _span_text(tokens, span):
    return " ".join(tokens[j].text for j in range(*span))
