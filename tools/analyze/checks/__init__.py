"""v6d-analyze check registry.

Each check module exports:
    NAME        -- kebab-case check id (used by allow(...) suppressions)
    DESCRIPTION -- one-line catalog entry
    run(files)  -- list[Finding] over the parsed SourceFile list

Checks receive every parsed file at once: tag-space needs cross-file
constant flow, and the others simply iterate.
"""
from collections import namedtuple

# path is repo-relative; line is 1-based and anchors suppressions.
Finding = namedtuple("Finding", ["check", "path", "line", "message"])

from . import (  # noqa: E402  (registry import order is the module list)
    collective_consistency,
    tag_space,
    overlap_window,
    abort_order,
    omp_shared_write,
)

ALL_CHECKS = [
    collective_consistency,
    tag_space,
    overlap_window,
    abort_order,
    omp_shared_write,
]
