"""collective-consistency: no collective call reachable on a strict subset
of ranks.

Every Communicator collective (`barrier`, `allreduce_*`, `bcast`,
`allgather`, `alltoall*`) must be called by all ranks in matching order
(src/comm/transport.hpp contract).  The classic distributed-deadlock
shape is a collective guarded by a rank-dependent condition:

    if (comm.rank() == 0) comm.barrier();          // ranks != 0 never arrive

or the early-return variant:

    if (!lead) return;
    comm.allreduce_sum(&x, 1);                     // lead-only allreduce

The analysis is per function: a tiny taint pass marks identifiers derived
from `rank()` / `rank` / `is_lead*` locals (`const bool lead =
comm.rank() == 0;` taints `lead`), then every `if` whose condition is
tainted must call the same multiset of collective names in both branches,
and a tainted branch that returns/throws must not be followed by
collectives later in the function body.  MUST/MPI-Checker style
collective-consistency, scoped to this project's comm API.
"""
import re

from .. import scopes
from . import Finding

NAME = "collective-consistency"
DESCRIPTION = ("collectives must be unconditionally reachable on every "
               "rank: both branches of a rank-dependent if, never after a "
               "rank-dependent early return")

COLLECTIVES = {
    "barrier", "allreduce_sum", "allreduce_max", "allreduce_min",
    "bcast", "bcast_bytes", "allgather", "allgather_bytes",
    "alltoall", "alltoall_bytes", "alltoallv",
    # Project collective helpers (every rank must call; field_exchange.hpp).
    "brick_to_slab", "slab_to_brick", "allgather_bricks",
}

_RANK_IDENT = re.compile(r"^(rank_?|my_?rank|world_?rank|is_lead\w*|lead\w*)$")


def run(files):
    findings = []
    for sf in files:
        for fn in sf.functions:
            findings.extend(_check_function(sf, fn))
    return findings


def _check_function(sf, fn):
    tokens = sf.tokens
    start, end = fn.body
    tainted = _taint_pass(tokens, start, end)
    findings = []
    divergence = None  # (line, cond_desc) after a rank-dependent early exit
    for stmt in scopes.if_statements(tokens, fn.body):
        if not _cond_tainted(tokens, stmt.cond, tainted):
            continue
        then_calls = _collectives_in(tokens, stmt.then)
        else_calls = _collectives_in(tokens, stmt.orelse) \
            if stmt.orelse else {}
        for name, lines in then_calls.items():
            if name not in else_calls:
                for line in lines:
                    findings.append(Finding(
                        NAME, sf.rel, line,
                        f"collective `{name}` only on the taken branch of "
                        f"the rank-dependent `if` at line {stmt.line}; "
                        "ranks on the other branch never arrive "
                        "(distributed deadlock)"))
        for name, lines in else_calls.items():
            if name not in then_calls:
                for line in lines:
                    findings.append(Finding(
                        NAME, sf.rel, line,
                        f"collective `{name}` only on the else branch of "
                        f"the rank-dependent `if` at line {stmt.line}; "
                        "ranks taking the branch never arrive "
                        "(distributed deadlock)"))
        if divergence is None and stmt.orelse is None \
                and _exits_scope(tokens, stmt.then):
            divergence = stmt
    if divergence is not None:
        div_end = divergence.then[1]
        for name, _, _, line in scopes.member_calls(
                tokens, (div_end, end), COLLECTIVES):
            findings.append(Finding(
                NAME, sf.rel, line,
                f"collective `{name}` is unreachable for ranks that took "
                f"the rank-dependent early exit at line {divergence.line} "
                "(distributed deadlock)"))
    return findings


def _taint_pass(tokens, start, end):
    """Identifiers assigned from rank-dependent expressions in this body."""
    tainted = set()
    i = start
    while i < end:
        t = tokens[i]
        # Declaration-with-init: `... name = expr ;` / `... name(expr)` —
        # taint `name` when expr mentions rank state.  One forward pass is
        # enough for the `const bool lead = rank() == 0;` idiom.
        if t.kind == "ident" and i + 1 < end \
                and tokens[i + 1].kind == "punct" \
                and tokens[i + 1].text == "=" \
                and not t.text[0].isdigit():
            stmt_end = i + 1
            depth = 0
            while stmt_end < end:
                tt = tokens[stmt_end]
                if tt.kind == "punct":
                    if tt.text in "([{":
                        depth += 1
                    elif tt.text in ")]}":
                        depth -= 1
                        if depth < 0:
                            break
                    elif tt.text == ";" and depth == 0:
                        break
                stmt_end += 1
            if _span_mentions_rank(tokens, (i + 2, stmt_end), tainted):
                tainted.add(t.text)
            i = stmt_end
            continue
        i += 1
    return tainted


def _span_mentions_rank(tokens, span, tainted):
    for j in range(*span):
        t = tokens[j]
        if t.kind != "ident":
            continue
        if t.text in tainted or _RANK_IDENT.match(t.text):
            return True
        if t.text == "rank":
            return True
    return False


def _cond_tainted(tokens, cond, tainted):
    return _span_mentions_rank(tokens, cond, tainted)


def _collectives_in(tokens, span):
    calls = {}
    for name, _, _, line in scopes.member_calls(tokens, span, COLLECTIVES):
        calls.setdefault(name, []).append(line)
    return calls


def _exits_scope(tokens, span):
    """True if the statement span unconditionally returns from the
    function.  Only `return` counts: a rank-dependent `throw` is not a
    deadlock in this runtime (a throwing rank aborts the world and wakes
    every parked peer — tests/test_comm.cpp asserts exactly that), and
    `continue`/`break` are loop-local, so collectives after the loop are
    still reached by every rank."""
    start, end = span
    depth = 0
    for j in range(start, end):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
        elif t.kind == "ident" and depth <= 1 and t.text == "return":
            return True
    return False
