"""omp-shared-write: no unsynchronized scalar writes in parallel regions.

Inside a `#pragma omp parallel` region, a plain write to a scalar that
lives *outside* the region (captured by reference, a member, a local of
the enclosing function) is a data race unless the pragma names it in a
`reduction`/`private`-family clause or the write sits under
`#pragma omp critical` / `#pragma omp atomic`.  The serial preset and
TSan cannot see these (OpenMP is off in both), so the heuristic runs
statically:

  flag  `x += …`, `x = …`, `++x` …  inside the region when `x` is
        -  not declared inside the region,
        -  not a loop induction variable of the region's (collapsed) fors,
        -  not covered by reduction/private/firstprivate/lastprivate/linear,
        -  not under a critical/atomic sub-pragma, and
        -  a bare scalar identifier (array elements `a[i]`, member calls
           `g.at(i,j,k)`, and pointer/member dereferences are *not*
           flagged — per-element disjoint writes are the parallel
           pattern this tree uses everywhere).

This is a heuristic by design: it trades missed array aliasing for a
near-zero false-positive rate on scalar accumulators, the bug class that
actually bites (`sum += …` without `reduction(+: sum)`).
"""
import re

from .. import scopes
from . import Finding

NAME = "omp-shared-write"
DESCRIPTION = ("scalar writes to enclosing-scope state inside `#pragma "
               "omp parallel` need a reduction/critical/atomic or a "
               "private clause")

_OMP_PARALLEL = re.compile(r"^#\s*pragma\s+omp\s+.*\bparallel\b")
_OMP_GUARD = re.compile(r"^#\s*pragma\s+omp\s+(critical|atomic)\b")
_CLAUSE = re.compile(
    r"\b(reduction|private|firstprivate|lastprivate|linear|shared)\s*\(")
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_TYPE_TAIL = {"int", "long", "short", "char", "float", "double", "bool",
              "auto", "size_t", "ptrdiff_t", "int64_t", "uint64_t",
              "int32_t", "uint32_t", "uint8_t", "int8_t"}


def run(files):
    findings = []
    for sf in files:
        findings.extend(_check_file(sf))
    return findings


def _check_file(sf):
    findings = []
    tokens = sf.tokens
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind != "pp" or not _OMP_PARALLEL.match(t.text):
            continue
        protected = _clause_names(t.text)
        region = _region_span(tokens, i + 1, n)
        if region is None:
            continue
        local = _declared_in_region(tokens, region)
        local |= _induction_vars(tokens, region)
        guarded = _guarded_spans(tokens, region)
        for w_idx, name, line in _scalar_writes(tokens, region):
            if name in protected or name in local:
                continue
            if any(lo <= w_idx < hi for lo, hi in guarded):
                continue
            findings.append(Finding(
                NAME, sf.rel, line,
                f"write to `{name}` (declared outside this `#pragma omp "
                "parallel` region) without reduction/critical/atomic — "
                "data race when OpenMP is on"))
    return findings


def _clause_names(directive):
    """Identifiers protected by the pragma's data-sharing clauses.
    `shared(...)` names are NOT protected — being listed shared is the
    race, not the cure — but reduction/private-family names are."""
    names = set()
    for m in _CLAUSE.finditer(directive):
        kind = m.group(1)
        depth = 1
        j = m.end()
        body = []
        while j < len(directive) and depth:
            c = directive[j]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            body.append(c)
            j += 1
        if kind == "shared":
            continue
        text = "".join(body)
        if kind == "reduction" and ":" in text:
            text = text.split(":", 1)[1]
        names.update(re.findall(r"[A-Za-z_]\w*", text))
    return names


def _region_span(tokens, i, n):
    """Token span of the structured block the pragma applies to: skip any
    stacked omp pragmas, then one statement (block or for-statement)."""
    while i < n and tokens[i].kind == "pp":
        i += 1
    if i >= n:
        return None
    return scopes.statement_span(tokens, i, n)


def _declared_in_region(tokens, region):
    """Identifiers declared inside the region (approximate): `Type name`
    where the previous token is a type-ish identifier or `>`/`*`/`&`, and
    name is followed by `=`, `;`, `{`, `(`, or `,`.  Comma-chained
    declarators (`double sx = 0.0, sy = 0.0, sz = 0.0;`) declare every
    name in the chain, so after the first declarator the statement is
    walked to its `;` collecting `, name =`/`, name ;` idents at the
    declaration's paren/bracket depth."""
    names = set()
    start, end = region
    for j in range(start + 1, end):
        t = tokens[j]
        if t.kind != "ident":
            continue
        prev = tokens[j - 1]
        nxt = tokens[j + 1] if j + 1 < end else None
        if nxt is None or nxt.kind != "punct" \
                or nxt.text not in ("=", ";", "{", ",", ")"):
            continue
        is_decl = False
        if prev.kind == "ident" and (prev.text in _TYPE_TAIL
                                     or prev.text[0].isupper()
                                     or prev.text == "const"):
            is_decl = True
        elif prev.kind == "punct" and prev.text in (">", "*", "&"):
            # `Grid3D<double> g`, `float* p`, `auto& r` — walk back one
            # more: a declaration, not a comparison, when the token before
            # the sigil chain is an identifier or `>`.
            if j >= 2 and tokens[j - 2].kind in ("ident",):
                is_decl = True
        if not is_decl:
            continue
        names.add(t.text)
        # Follow the declarator chain to the statement's `;`.
        depth = 0
        k = j + 1
        while k < end:
            tk = tokens[k]
            if tk.kind == "punct":
                if tk.text in "([{":
                    depth += 1
                elif tk.text in ")]}":
                    depth -= 1
                    if depth < 0:
                        break
                elif tk.text == ";" and depth == 0:
                    break
                elif tk.text == "," and depth == 0:
                    if k + 1 < end and tokens[k + 1].kind == "ident":
                        names.add(tokens[k + 1].text)
            k += 1
    return names


def _induction_vars(tokens, region):
    names = set()
    start, end = region
    for j in range(start, end):
        t = tokens[j]
        if t.kind == "ident" and t.text == "for" and j + 1 < end \
                and tokens[j + 1].kind == "punct" \
                and tokens[j + 1].text == "(":
            close = scopes.match_forward(tokens, j + 1)
            for k in range(j + 2, min(close, end)):
                tk = tokens[k]
                if tk.kind == "punct" and tk.text == ";":
                    break
                if tk.kind == "ident" and k + 1 < end \
                        and tokens[k + 1].kind == "punct" \
                        and tokens[k + 1].text in ("=", ":"):
                    names.add(tk.text)
    return names


def _guarded_spans(tokens, region):
    """Spans protected by `#pragma omp critical` / `#pragma omp atomic`
    inside the region (the pragma's one following statement)."""
    spans = []
    start, end = region
    for j in range(start, end):
        t = tokens[j]
        if t.kind == "pp" and _OMP_GUARD.match(t.text):
            spans.append(scopes.statement_span(tokens, j + 1, end))
    return spans


def _scalar_writes(tokens, region):
    """(token_index, name, line) for bare-identifier writes in region."""
    start, end = region
    for j in range(start, end):
        t = tokens[j]
        if t.kind == "punct" and t.text in ("++", "--"):
            # ++x / x++ — the adjacent ident is the write target.
            for k in (j + 1, j - 1):
                if start <= k < end and tokens[k].kind == "ident":
                    side_ok = _bare_lhs(tokens, k if k == j + 1 else k,
                                        start)
                    if side_ok:
                        yield k, tokens[k].text, tokens[k].line
                    break
            continue
        if t.kind != "punct" or t.text not in _ASSIGN_OPS:
            continue
        k = j - 1
        if k < start or tokens[k].kind != "ident":
            continue  # `a[i] =`, `*p =`, `g.at(..) =` — not a bare scalar
        if not _bare_lhs(tokens, k, start):
            continue
        yield k, tokens[k].text, tokens[k].line


def _bare_lhs(tokens, k, start):
    """True when the identifier at `k` is a bare scalar lvalue: not a
    member access (`x.f`), not preceded by `.`/`->`/`]`/`)`/`*`, and not
    itself a declaration-with-init (handled by the declared set)."""
    if k - 1 >= start:
        prev = tokens[k - 1]
        if prev.kind == "punct" and prev.text in (".", "->", "]", ")", "*"):
            return False
    return True
