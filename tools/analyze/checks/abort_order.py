"""abort-memory-order: abort-flag atomics use exactly the documented
orderings.

The comm layer's abort protocol (src/comm/context.hpp `Context::abort`,
src/comm/mailbox.hpp header comment) is release/acquire by design, and
the intent is documented at every site.  TSan can prove the absence of
races but not the *intent* of an ordering, so this check pins the
contract statically.  For every atomic whose name mentions `abort`:

  * `.load(...)`     must pass `std::memory_order_acquire`
  * `.store(...)`    must pass `std::memory_order_release`
  * `.exchange(...)` must pass `std::memory_order_acq_rel`
  * implicit accesses (`if (aborted_)`, `aborted_ = true`) are flagged:
    they compile to seq_cst, which hides the documented protocol and is
    needlessly strong on the hot paths that poll the flag.

Pointers-to-atomic (`const std::atomic<bool>* abort_`) are recognized;
their bare uses are pointer null-tests, only `->load(...)` etc. are
ordering-checked.  Taking the address (`&aborted_`) and the declaration
itself are of course allowed.
"""
import re

from .. import scopes
from . import Finding

NAME = "abort-memory-order"
DESCRIPTION = ("abort-flag atomics use the documented orderings: "
               "load=acquire, store=release, exchange=acq_rel, no "
               "implicit seq_cst accesses")

_ABORT_NAME = re.compile(r"abort", re.I)

_REQUIRED = {
    "load": "memory_order_acquire",
    "store": "memory_order_release",
    "exchange": "memory_order_acq_rel",
}
_ATOMIC_OPS = set(_REQUIRED) | {
    "compare_exchange_strong", "compare_exchange_weak", "fetch_or",
    "fetch_and", "fetch_add", "fetch_sub",
}


def run(files):
    findings = []
    for sf in files:
        flags = _atomic_abort_decls(sf.tokens)
        if not flags:
            continue
        shadowed = _plain_abort_decls(sf.tokens)
        findings.extend(_check_uses(sf, flags, shadowed))
    return findings


def _plain_abort_decls(tokens):
    """Abort-named variables declared as plain (non-atomic) scalars in the
    same file — e.g. Barrier's mutex-guarded `bool aborted_` living next
    to Context's `std::atomic<bool> aborted_`.  Bare uses of such a name
    cannot be attributed to the atomic, so they are not flagged; the
    `.load/.store/.exchange` ordering checks still apply (a plain bool has
    no such members)."""
    names = set()
    for i, t in enumerate(tokens):
        if t.kind == "ident" and t.text in ("bool", "int") \
                and i + 1 < len(tokens) \
                and tokens[i + 1].kind == "ident" \
                and _ABORT_NAME.search(tokens[i + 1].text):
            names.add(tokens[i + 1].text)
    return names


def _atomic_abort_decls(tokens):
    """name -> is_pointer for `std::atomic<...> name` declarations whose
    name mentions abort."""
    flags = {}
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text != "atomic":
            continue
        if i + 1 >= len(tokens) or tokens[i + 1].text != "<":
            continue
        j = _close_angle(tokens, i + 1)
        if j is None:
            continue
        is_pointer = False
        k = j + 1
        while k < len(tokens) and tokens[k].kind == "punct" \
                and tokens[k].text in ("*", "&"):
            is_pointer = is_pointer or tokens[k].text == "*"
            k += 1
        if k < len(tokens) and tokens[k].kind == "ident" \
                and _ABORT_NAME.search(tokens[k].text):
            flags[tokens[k].text] = is_pointer
    return flags


def _close_angle(tokens, open_idx):
    depth = 0
    for j in range(open_idx, min(open_idx + 32, len(tokens))):
        t = tokens[j]
        if t.kind != "punct":
            continue
        if t.text == "<":
            depth += 1
        elif t.text == ">":
            depth -= 1
            if depth == 0:
                return j
        elif t.text == ">>":
            depth -= 2
            if depth <= 0:
                return j
    return None


def _check_uses(sf, flags, shadowed):
    findings = []
    tokens = sf.tokens
    for i, t in enumerate(tokens):
        if t.kind != "ident" or t.text not in flags:
            continue
        is_pointer = flags[t.text]
        prev = tokens[i - 1] if i > 0 else None
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        # Address-of (`&aborted_`) is how the flag is published: fine.
        if prev is not None and prev.kind == "punct" and prev.text == "&":
            continue
        # Declaration site: `atomic<bool> aborted_{false};` (prev is `>`)
        # or `const std::atomic<bool>* abort_ = nullptr;` (prev is `*`).
        if prev is not None and prev.kind == "punct" \
                and prev.text in ("*", ">") \
                and nxt is not None and nxt.kind == "punct" \
                and nxt.text in ("{", ";", "=", ")", ","):
            continue
        if nxt is not None and nxt.kind == "punct" \
                and nxt.text in (".", "->"):
            op = tokens[i + 2] if i + 2 < len(tokens) else None
            if op is None or op.kind != "ident":
                continue
            if op.text not in _ATOMIC_OPS:
                continue
            required = _REQUIRED.get(op.text)
            if required is None:
                findings.append(Finding(
                    NAME, sf.rel, t.line,
                    f"`{t.text}.{op.text}` is outside the documented "
                    "abort protocol (load/store/exchange only); extend "
                    "the contract in comm/context.hpp before using it"))
                continue
            paren = i + 3
            if paren >= len(tokens) or tokens[paren].text != "(":
                continue
            args = scopes.call_args(tokens, paren)
            arg_text = " ".join(
                tokens[j].text for a in args for j in range(*a))
            if required not in arg_text:
                got = [o for o in ("memory_order_relaxed",
                                   "memory_order_consume",
                                   "memory_order_acquire",
                                   "memory_order_release",
                                   "memory_order_acq_rel",
                                   "memory_order_seq_cst")
                       if o in arg_text]
                detail = got[0] if got else "implicit seq_cst"
                findings.append(Finding(
                    NAME, sf.rel, t.line,
                    f"`{t.text}.{op.text}` uses {detail}; the documented "
                    f"abort contract requires std::{required} "
                    "(comm/context.hpp, comm/mailbox.hpp)"))
            continue
        if is_pointer:
            continue  # bare pointer use: null test, assignment of pointer
        if t.text in shadowed:
            continue  # same name also declared as a plain scalar: this
            # bare use may be the mutex-guarded variable, not the atomic
        # Bare use of the atomic itself: implicit seq_cst load/store.
        if nxt is not None and nxt.kind == "punct" and nxt.text == "=" :
            findings.append(Finding(
                NAME, sf.rel, t.line,
                f"implicit seq_cst store `{t.text} = ...`; use "
                f"`.store(..., std::memory_order_release)` per the "
                "documented abort contract"))
        else:
            findings.append(Finding(
                NAME, sf.rel, t.line,
                f"implicit seq_cst load of `{t.text}`; use "
                f"`.load(std::memory_order_acquire)` per the documented "
                "abort contract"))
    return findings
