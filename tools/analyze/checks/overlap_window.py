"""overlap-window: nothing blocks between a plan's begin and finish.

The overlap plans (`mesh::HaloPlan`, `mesh::GridFoldPlan`,
`parallel::SlabExchange`, field_exchange.hpp / halo_plan.hpp) split an
exchange into a non-blocking `begin*` half and a completing `finish*`
half so the caller can compute while messages fly.  A blocking primitive
between the halves — `barrier`, a blocking `recv`/`recv_bytes`,
`Mailbox::pop`, a collective, or waiting someone else's handle —
serializes the pipeline the split exists to overlap, and a second
`begin*` on the same instance violates the one-exchange-in-flight
contract both plan headers document.

The analysis is lexical and per function: a window opens at
`obj.begin*(…)` and closes at the next `obj.finish*(…)` on the same
receiver.  Finishing a *different* plan inside a window is allowed — the
step pipeline deliberately chains plans — but the raw blocking
primitives above are not.  Windows left open at the end of a function
(begin/finish split across methods) simply extend to the function end.
"""
from .. import scopes
from . import Finding

NAME = "overlap-window"
DESCRIPTION = ("no blocking comm (barrier/recv/pop/collectives/foreign "
               "wait) and no double-begin between a plan's begin*/finish* "
               "halves")

_BEGIN = {"begin_axis", "begin_to_slab", "begin_to_brick", "begin"}
_FINISH = {"finish_axis", "finish_axis_into", "finish_to_slab",
           "finish_to_brick", "finish"}
# `begin`/`finish` are also std iterator spellings; a plan's halves always
# take at least one argument (the field being exchanged), an iterator
# accessor never does.
_AMBIGUOUS = {"begin", "finish"}

_BLOCKING = {
    "barrier", "recv", "recv_bytes", "pop", "wait", "wait_into",
    "sendrecv", "allreduce_sum", "allreduce_max", "allreduce_min",
    "bcast", "bcast_bytes", "allgather", "allgather_bytes",
    "alltoall", "alltoall_bytes", "alltoallv",
}

_ALL = _BEGIN | _FINISH | _BLOCKING


def run(files):
    findings = []
    for sf in files:
        for fn in sf.functions:
            findings.extend(_check_function(sf, fn))
    return findings


def _check_function(sf, fn):
    findings = []
    open_windows = {}  # receiver -> (method, line)
    for name, receiver, paren, line in scopes.member_calls(
            sf.tokens, fn.body, _ALL):
        has_args = bool(scopes.call_args(sf.tokens, paren))
        is_member = receiver is not None
        if name in _BEGIN and is_member:
            if name in _AMBIGUOUS and not has_args:
                continue  # container.begin() iterator
            if receiver in open_windows:
                prev_method, prev_line = open_windows[receiver]
                findings.append(Finding(
                    NAME, sf.rel, line,
                    f"`{receiver}.{name}` while `{receiver}."
                    f"{prev_method}` from line {prev_line} is still in "
                    "flight; plans allow one exchange in flight per "
                    "instance"))
            else:
                open_windows[receiver] = (name, line)
            continue
        if name in _FINISH and is_member:
            if name in _AMBIGUOUS and not has_args:
                continue
            open_windows.pop(receiver, None)
            continue
        if name in _BLOCKING and open_windows:
            if name in ("wait", "wait_into") and receiver in open_windows:
                # A plan completing its own handles is its finish path.
                continue
            opened = ", ".join(
                f"`{r}.{m}` (line {ln})"
                for r, (m, ln) in sorted(open_windows.items()))
            findings.append(Finding(
                NAME, sf.rel, line,
                f"blocking `{name}` inside the overlap window of {opened}; "
                "this serializes the split exchange the plan exists to "
                "overlap"))
    return findings
