// Corpus: collective-consistency — clean fixture; zero findings expected.

struct Comm {
  int rank() const;
  void barrier();
  void allreduce_sum(double* p, int n);
  void bcast(int* p, int n, int root);
};

// Rank-dependent branch doing local work only, collectives outside it.
void all_ranks_collect(Comm& comm, double* x) {
  comm.barrier();
  if (comm.rank() == 0) {
    x[0] = 1.0;
  }
  comm.allreduce_sum(x, 1);
}

// Rank-dependent if, but the same collective on both branches: every
// rank arrives exactly once whichever way it goes.
void matched_branches(Comm& comm, int* v) {
  if (comm.rank() == 0) {
    v[0] = 42;
    comm.bcast(v, 1, 0);
  } else {
    comm.bcast(v, 1, 0);
  }
}

// Early exit that is NOT rank-dependent: a size-0 fast path every rank
// takes identically.
void size_guard(Comm& comm, double* x, int n) {
  if (n == 0) {
    return;
  }
  comm.allreduce_sum(x, n);
}

// A rank-guarded throw is not a deadlock in this runtime: a throwing
// rank aborts the world and wakes every parked peer.
void throwing_rank(Comm& comm, double* x) {
  if (comm.rank() == 0) {
    throw 1;
  }
  comm.allreduce_sum(x, 1);
}

// `continue` under a rank-derived guard is loop-local; the collective
// after the loop is still reached by every rank.
void skip_self(Comm& comm, double* x, int n) {
  const int my_rank = comm.rank();
  for (int r = 0; r < n; ++r) {
    if (r == my_rank) {
      continue;
    }
    x[r] += 1.0;
  }
  comm.barrier();
}
