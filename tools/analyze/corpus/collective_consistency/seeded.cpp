// Corpus: collective-consistency — seeded distributed deadlocks.
// Each `SEED(collective-consistency)` line must be flagged by exactly
// that check; nothing else in this file may fire.

struct Comm {
  int rank() const;
  void barrier();
  void allreduce_sum(double* p, int n);
  void bcast(int* p, int n, int root);
};

// Classic lead-only collective: ranks != 0 never reach the barrier.
void lead_only_barrier(Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // SEED(collective-consistency)
  }
}

// Taint flows through a local: `lead` is derived from rank().
void early_exit_allreduce(Comm& comm, double* x) {
  const bool lead = comm.rank() == 0;
  if (!lead) {
    return;
  }
  comm.allreduce_sum(x, 1);  // SEED(collective-consistency)
}

// Both branches call collectives, but not the *same* collectives:
// rank 0 sits in bcast while everyone else sits in barrier.
void mismatched_branches(Comm& comm, int* v) {
  const int my_rank = comm.rank();
  if (my_rank == 0) {
    comm.bcast(v, 1, 0);  // SEED(collective-consistency)
  } else {
    comm.barrier();  // SEED(collective-consistency)
  }
}
