// Corpus: omp-shared-write — clean fixture; reductions, private
// clauses, critical sections, region-local declarations, and
// per-element array writes are all fine.

void reduced_sum(const double* x, int n, double* out) {
  double sum = 0.0;
#pragma omp parallel for reduction(+ : sum)
  for (int i = 0; i < n; ++i) {
    sum += x[i];
  }
  *out = sum;
}

void guarded_count(double* f, int n) {
  int count = 0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    f[i] = 2.0 * f[i];
    if (f[i] > 4.0) {
#pragma omp critical
      {
        count += 1;
      }
    }
  }
  f[0] = static_cast<double>(count);
}

void private_scratch(double* f, int n) {
  double tmp = 0.0;
#pragma omp parallel for private(tmp)
  for (int i = 0; i < n; ++i) {
    tmp = f[i] * 2.0;
    f[i] = tmp;
  }
}

void region_local(double* f, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    double scaled = f[i] * 0.5;
    scaled += 1.0;
    f[i] = scaled;
  }
}

// Comma-chained declarators: every name in the chain is region-local
// (the moments-accumulator shape).
void chained_declarators(const double* x, double* out, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    double sx = 0.0, sy = 0.0, sz = 0.0;
    sx += x[i];
    sy += x[i] * 2.0;
    sz += x[i] * 3.0;
    out[i] = sx + sy + sz;
  }
}
