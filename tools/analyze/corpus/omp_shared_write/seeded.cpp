// Corpus: omp-shared-write — unsynchronized scalar writes to
// enclosing-scope state inside parallel regions.

void racy_sum(const double* x, int n, double* out) {
  double sum = 0.0;
#pragma omp parallel for
  for (int i = 0; i < n; ++i) {
    sum += x[i];  // SEED(omp-shared-write)
  }
  *out = sum;
}

void racy_flag(double* f, int n) {
  bool hit = false;
  int count = 0;
#pragma omp parallel
  {
#pragma omp for
    for (int i = 0; i < n; ++i) {
      if (f[i] > 1.0) {
        hit = true;  // SEED(omp-shared-write)
        ++count;     // SEED(omp-shared-write)
      }
    }
  }
  f[0] = hit ? static_cast<double>(count) : 0.0;
}
