// Corpus: tag-space — seeded collisions and unprovable tags.

constexpr int kFirstUserTag = 64;

struct Comm {
  void send(int peer, int tag, const double* p, int n);
  void recv(int peer, int tag, double* p, int n);
};

constexpr int kAlphaTagBase = 100;
constexpr int kBetaTagBase = 104;  // SEED(tag-space) inside alpha's span

// Consumer: offsets tag_base by axis*4 + 1, so an anchor passed here
// owns [base+1, base+9] — kBetaTagBase at 104 lands inside kAlpha's.
void push_axis(Comm& comm, const double* p, int tag_base, int axis) {
  comm.send(1, tag_base + axis * 4 + 1, p, 8);
}

void alpha(Comm& comm, const double* p) {
  push_axis(comm, p, kAlphaTagBase, 0);
}

void beta(Comm& comm, double* p) {
  comm.recv(0, kBetaTagBase, p, 8);
}

// Tag 7 sits below kFirstUserTag: collides with the transport's
// reserved internal collective channel.
void low_tag(Comm& comm, const double* p) {
  comm.send(1, 7, p, 8);  // SEED(tag-space)
}

// A raw literal inside a named exchange's range cross-matches with it.
void inside_range(Comm& comm, double* p) {
  comm.recv(0, 101, p, 8);  // SEED(tag-space)
}

// Runtime-computed tag the analysis cannot bound.
void opaque(Comm& comm, const double* p, int step) {
  comm.send(1, step * 2, p, 8);  // SEED(tag-space)
}
