// Corpus: tag-space — kFirstUserTag absent. // SEED(tag-space)
// With p2p traffic present but no reserved-floor constant in the
// scanned set, the contract is unverifiable and the check says so
// (anchored at line 1 of the first scanned file).

struct Comm {
  void send(int peer, int tag, const double* p, int n);
};

void ship(Comm& comm, const double* p) {
  comm.send(1, 200, p, 4);
}
