// Corpus: tag-space — clean fixture; disjoint ranges, all above the
// reserved floor, zero findings expected.

constexpr int kFirstUserTag = 64;

struct Comm {
  void send(int peer, int tag, const double* p, int n);
  void recv(int peer, int tag, double* p, int n);
};

// Spaced 16 apart; push_axis consumes [base+0, base+9].
constexpr int kFieldTagBase = 128;
constexpr int kFluxTagBase = 144;

void push_axis(Comm& comm, const double* out, double* in, int tag_base,
               int axis) {
  const int tag_fwd = tag_base + axis * 4;
  comm.send(1, tag_fwd, out, 8);
  comm.recv(0, tag_base + axis * 4 + 1, in, 8);
}

void exchange(Comm& comm, const double* out, double* in) {
  push_axis(comm, out, in, kFieldTagBase, 0);
  push_axis(comm, out, in, kFluxTagBase, 1);
}

// A folded constant expression well clear of every named range.
void gather(Comm& comm, double* in) {
  constexpr int kGatherTag = 0x200 + 3;
  comm.recv(0, kGatherTag, in, 8);
}

// An anchored-but-unfoldable local (the halo.cpp shape): bounded to
// [kGhostTagBase + 1, kGhostTagBase + 9] via the documented axis bound,
// disjoint from every other anchor above.
constexpr int kGhostTagBase = 160;

void anchored_local(Comm& comm, const double* out, int axis) {
  const int tag_fwd = kGhostTagBase + axis * 4 + 1;
  comm.send(1, tag_fwd, out, 8);
}

// A declaration that merely *looks* like a p2p call (`recv_bytes(n, 0)`
// constructor syntax) has no receiver and is not traffic.
struct Recorder {
  void observe(int n) {
    long recv_bytes(n);
    recv_bytes = 0;
    (void)recv_bytes;
  }
};
