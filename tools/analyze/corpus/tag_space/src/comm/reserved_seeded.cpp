// Corpus: tag-space — seeded reserved-channel violations.  A src/comm/
// anchor escaping the internal band, and two internal channels that
// collide with each other.

constexpr int kFirstUserTag = 64;

// Escapes the reserved band [0, 64): would collide with production
// exchanges on a single-tag-space backend.
constexpr int kLeakTag = 70;  // SEED(tag-space)

// Two internal channels on the same tag: heartbeat and control frames
// would cross-match.
constexpr int kPingTag = 2;
constexpr int kPongTag = 2;  // SEED(tag-space)
