// Corpus: tag-space — clean reserved-channel fixture.  Anchors declared
// under src/comm/ are the transport's internal channels: they must sit
// strictly below kFirstUserTag and stay pairwise disjoint.  Zero
// findings expected.

constexpr int kFirstUserTag = 64;

// The liveness beacon and a control channel, disjoint inside [0, 64).
constexpr int kHeartbeatTag = 0;
constexpr int kControlTagBase = 8;

struct Comm {
  void send(int peer, int tag, const double* p, int n);
};

// src/comm/ is exempt from the call-site scan: internal machinery may
// drive reserved tags directly.
void beat(Comm& comm, const double* p) {
  comm.send(1, kHeartbeatTag, p, 0);
}
