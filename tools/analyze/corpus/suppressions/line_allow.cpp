// Corpus: suppression syntax — same-line allow, line-above allow, and
// the unused-suppression meta-finding for stale justifications.

constexpr int kFirstUserTag = 64;

struct Comm {
  void send(int peer, int tag, const double* p, int n);
};

void low_tag_same_line(Comm& comm, const double* p) {
  comm.send(1, 3, p, 4);  // v6d-analyze: allow(tag-space): corpus drives the reserved channel on purpose
}

void low_tag_line_above(Comm& comm, const double* p) {
  // v6d-analyze: allow(tag-space): corpus drives the reserved channel on purpose
  comm.send(1, 4, p, 4);
}

void stale(Comm& comm, const double* p) {
  comm.send(1, 0x100, p, 4);  // v6d-analyze: allow(tag-space): stale reason  // SEED(unused-suppression)
}
