// Corpus: suppression syntax — a file-wide allow silences every
// finding of the named check without touching the others.
// v6d-analyze: allow-file(tag-space): fixture drives raw low tags across the whole file

constexpr int kFirstUserTag = 64;

struct Comm {
  void send(int peer, int tag, const double* p, int n);
};

void drive(Comm& comm, const double* p) {
  comm.send(1, 1, p, 4);
  comm.send(1, 2, p, 4);
}
