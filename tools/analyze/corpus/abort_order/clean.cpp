// Corpus: abort-memory-order — clean fixture following the documented
// protocol (load=acquire, store=release, exchange=acq_rel); pointer
// null-tests and address-of publication are allowed.

#include <atomic>

struct Ctx {
  std::atomic<bool> aborted_{false};
  const std::atomic<bool>* abort_ = nullptr;

  void abort() {
    aborted_.exchange(true, std::memory_order_acq_rel);
  }

  bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  void clear() {
    aborted_.store(false, std::memory_order_release);
  }

  void attach(const std::atomic<bool>* flag) {
    abort_ = flag;
  }

  bool poll() const {
    return abort_ && abort_->load(std::memory_order_acquire);
  }

  const std::atomic<bool>* publish() const {
    return &aborted_;
  }
};

// A mutex-guarded plain bool sharing the atomic's name (Barrier-style):
// its bare uses are ordered by the mutex, not the atomic protocol, and
// must not be attributed to the atomic above.
struct Gate {
  bool aborted_ = false;

  void cancel() {
    aborted_ = true;
  }

  bool dead() const {
    return aborted_;
  }
};
