// Corpus: abort-memory-order — accesses off the documented protocol.

#include <atomic>

struct Ctx {
  std::atomic<bool> aborted_{false};

  void abort() {
    aborted_.exchange(true);  // SEED(abort-memory-order)
  }

  bool polled() const {
    return aborted_.load(std::memory_order_relaxed);  // SEED(abort-memory-order)
  }

  void reset() {
    aborted_ = false;  // SEED(abort-memory-order)
  }

  bool raw() const {
    return aborted_;  // SEED(abort-memory-order)
  }

  void widen() {
    aborted_.fetch_or(true);  // SEED(abort-memory-order)
  }
};
