// Corpus: overlap-window — blocking calls and double-begins inside the
// begin*/finish* window.

constexpr int kFirstUserTag = 64;

struct Comm {
  void barrier();
  void recv(int peer, int tag, double* p, int n);
};

struct HaloPlan {
  void begin_axis(double* f, int axis);
  void finish_axis(double* f, int axis);
};

// A barrier between begin and finish serializes the overlap.
void blocked_window(Comm& comm, HaloPlan& halo, double* f) {
  halo.begin_axis(f, 0);
  comm.barrier();  // SEED(overlap-window)
  halo.finish_axis(f, 0);
}

// Two exchanges in flight on the same plan instance.
void double_begin(HaloPlan& halo, double* f) {
  halo.begin_axis(f, 0);
  halo.begin_axis(f, 1);  // SEED(overlap-window)
  halo.finish_axis(f, 1);
}

// A blocking point-to-point receive inside the window stalls the
// pipeline just as hard as a collective.
void recv_inside(Comm& comm, HaloPlan& halo, double* f, double* in) {
  halo.begin_axis(f, 1);
  comm.recv(0, 0x80, in, 4);  // SEED(overlap-window)
  halo.finish_axis(f, 1);
}
