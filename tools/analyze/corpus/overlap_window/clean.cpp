// Corpus: overlap-window — clean fixture; zero findings expected.

constexpr int kFirstUserTag = 64;

struct Comm {
  void barrier();
};

struct HaloPlan {
  void begin_axis(double* f, int axis);
  void finish_axis(double* f, int axis);
};

struct GridFoldPlan {
  void begin(double* f, int level);
  void finish(double* f, int level);
};

struct Buffer {
  double* begin();
  double* end();
};

// Compute in the window, block only after it closes; chained plans
// (a second plan's begin inside the first's window) are the intended
// pipeline shape.
void overlapped(Comm& comm, HaloPlan& halo, GridFoldPlan& fold,
                double* f, double* g) {
  halo.begin_axis(f, 0);
  g[0] += f[0];
  halo.finish_axis(f, 0);
  comm.barrier();
  fold.begin(g, 1);
  halo.begin_axis(f, 1);
  halo.finish_axis(f, 1);
  fold.finish(g, 1);
}

// Zero-argument begin()/end() are iterator accessors, not plan halves.
void iterate(Buffer& b) {
  for (double* it = b.begin(); it != b.end(); ++it) {
    *it = 0.0;
  }
}
