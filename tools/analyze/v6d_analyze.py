#!/usr/bin/env python3
"""v6d-analyze: semantic static analysis for the comm layer's unwritten
contracts.

    python3 tools/analyze/v6d_analyze.py [--root DIR] [--build-dir DIR]
                                         [--check NAME ...] [--list]
    python3 tools/analyze/v6d_analyze.py --self-test

Unlike the regex lints (tools/lint_*.py) this is a token-level pass: a
shared C++ lexer (cxxlex.py) plus per-function scope/call extraction
(scopes.py) feed a check suite encoding the concurrency contracts the
compiler and the runtime tools cannot see — collective call consistency
across ranks, tag-space disjointness, overlap-window purity, the abort
flag's memory-order protocol, and OpenMP shared-write races.  Run
`--list` for the catalog; docs/DEVELOPMENT.md has the policy.

File discovery is driven by compile_commands.json when a configured
build is available (`--build-dir`, or the first of build/{release,debug,
tsan,asan,serial,.} that has one): the scanned set is exactly the
in-tree TUs the build compiles, plus every header under the source
prefixes.  Without any configured build the tree is walked directly, so
the tool still runs on a fresh checkout.

Findings are fixed-or-justified.  A false positive is suppressed on its
line (or the line above) with a named, reasoned comment:

    // v6d-analyze: allow(tag-space): conformance tests exercise raw tags
    comm.send(peer, 7, seq, 2);

File-wide suppressions use `allow-file(<check>): <reason>` anywhere in
the file.  Unused line suppressions are themselves findings, so stale
justifications cannot accumulate.  `--self-test` proves every check
still catches its seeded corpus (tools/analyze/corpus/) and that the
clean fixtures and the suppression syntax behave; exit 0 = clean tree.
Stdlib only.
"""
import argparse
import json
import os
import re
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from analyze import cxxlex, scopes  # noqa: F401
    from analyze.checks import ALL_CHECKS, Finding
else:
    from . import cxxlex, scopes  # noqa: F401
    from .checks import ALL_CHECKS, Finding

SOURCE_PREFIXES = ("src", "apps", "bench", "tests", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")
DEFAULT_BUILD_DIRS = ("build/release", "build/debug", "build/tsan",
                      "build/asan", "build/serial", "build")

_ALLOW_LINE = re.compile(
    r"//\s*v6d-analyze:\s*allow\(([a-z][a-z0-9-]*)\):\s*(\S.*)")
_ALLOW_FILE = re.compile(
    r"//\s*v6d-analyze:\s*allow-file\(([a-z][a-z0-9-]*)\):\s*(\S.*)")


class SourceFile:
    """One parsed source file: raw lines for suppression scanning, token
    stream, extracted functions."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self.tokens = cxxlex.lex(self.text)
        self.functions = scopes.functions(self.tokens)
        self.allow_lines = {}   # (check, line) -> reason
        self.allow_file = {}    # check -> reason
        for lineno, line in enumerate(self.lines, start=1):
            m = _ALLOW_LINE.search(line)
            if m:
                self.allow_lines[(m.group(1), lineno)] = m.group(2)
            m = _ALLOW_FILE.search(line)
            if m:
                self.allow_file[m.group(1)] = m.group(2)


def discover_files(root, build_dir):
    """(files, how) — repo-relative source paths to scan."""
    tus = None
    how = "tree walk (no compile_commands.json found)"
    if build_dir:
        cc = os.path.join(build_dir, "compile_commands.json")
        if os.path.exists(cc):
            with open(cc, encoding="utf-8") as f:
                entries = json.load(f)
            tus = set()
            for entry in entries:
                path = entry["file"]
                if not os.path.isabs(path):
                    path = os.path.join(entry.get("directory", ""), path)
                rel = os.path.relpath(os.path.normpath(path), root)
                if rel.split(os.sep, 1)[0] in SOURCE_PREFIXES:
                    tus.add(rel)
            how = (f"compile_commands.json ({os.path.relpath(build_dir, root)}"
                   f": {len(tus)} TUs) + in-tree headers")
    files = set(tus or ())
    for prefix in SOURCE_PREFIXES:
        base = os.path.join(root, prefix)
        for dirpath, _, filenames in os.walk(base):
            for name in filenames:
                if not name.endswith(EXTENSIONS):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                if tus is None or not name.endswith((".cpp", ".cc")):
                    files.add(rel)
    return sorted(files), how


def find_build_dir(root, requested):
    candidates = [requested] if requested else DEFAULT_BUILD_DIRS
    for cand in candidates:
        path = os.path.join(root, cand)
        if os.path.exists(os.path.join(path, "compile_commands.json")):
            return path
    return None


def run_checks(files, check_names=None):
    findings = []
    for check in ALL_CHECKS:
        if check_names and check.NAME not in check_names:
            continue
        findings.extend(check.run(files))
    return findings


def apply_suppressions(files, findings):
    """Split findings into (reported, suppressed) and synthesize findings
    for unused line-level suppressions."""
    by_rel = {sf.rel: sf for sf in files}
    reported, suppressed = [], []
    used = set()
    for f in findings:
        sf = by_rel.get(f.path)
        if sf is None:
            reported.append(f)
            continue
        if f.check in sf.allow_file:
            suppressed.append(f)
            continue
        key = None
        for line in (f.line, f.line - 1):
            if (f.check, line) in sf.allow_lines:
                key = (f.path, f.check, line)
                break
        if key:
            used.add(key)
            suppressed.append(f)
        else:
            reported.append(f)
    for sf in files:
        for (check, line) in sf.allow_lines:
            if (sf.rel, check, line) not in used:
                reported.append(Finding(
                    "unused-suppression", sf.rel, line,
                    f"allow({check}) suppresses nothing; remove it or fix "
                    "the check name"))
    return reported, suppressed


def scan(root, build_dir, check_names=None, quiet=False):
    files_rel, how = discover_files(root, build_dir)
    if not quiet:
        print(f"v6d-analyze: {len(files_rel)} file(s) via {how}")
    files = [SourceFile(os.path.join(root, rel), rel.replace(os.sep, "/"))
             for rel in files_rel]
    findings = run_checks(files, check_names)
    reported, suppressed = apply_suppressions(files, findings)
    reported.sort(key=lambda f: (f.path, f.line, f.check))
    for f in reported:
        print(f"FAIL {f.path}:{f.line}: [{f.check}] {f.message}")
    if reported:
        print(f"{len(reported)} finding(s) "
              f"({len(suppressed)} suppressed); fix the code or add a "
              "justified `// v6d-analyze: allow(<check>): <reason>` "
              "(docs/DEVELOPMENT.md)")
        return 1
    if not quiet:
        checks = len(check_names) if check_names else len(ALL_CHECKS)
        print(f"OK   {len(files)} file(s) clean under {checks} check(s) "
              f"({len(suppressed)} suppressed finding(s))")
    return 0


# ---------------------------------------------------------------------------
# Self-test: corpus-driven.  Every corpus/<check-dir>/*.cpp file is scanned
# with the full suite; lines carrying `// SEED(<check>)` markers must be
# flagged by exactly that check, and nothing else in the file may fire.

_SEED = re.compile(r"//\s*SEED\(([a-z][a-z0-9-]*)\)")


def self_test():
    corpus = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "corpus")
    failures = 0
    lexer_rc = cxxlex.self_test()
    if lexer_rc != 0:
        failures += 1
    case_files = []
    for dirpath, _, filenames in os.walk(corpus):
        for name in sorted(filenames):
            if name.endswith(EXTENSIONS):
                case_files.append(os.path.join(dirpath, name))
    if not case_files:
        print("self-test FAIL: no corpus files under tools/analyze/corpus/")
        return 1
    seeded_total = 0
    checks_hit = set()
    for path in case_files:
        rel = os.path.relpath(path, corpus)
        sf = SourceFile(path, rel)
        expected = {}
        for lineno, line in enumerate(sf.lines, start=1):
            for m in _SEED.finditer(line):
                expected.setdefault(m.group(1), set()).add(lineno)
                seeded_total += 1
        findings = run_checks([sf])
        reported, _ = apply_suppressions([sf], findings)
        got = {}
        for f in reported:
            got.setdefault(f.check, set()).add(f.line)
        if got != expected:
            failures += 1
            print(f"self-test FAIL {rel}:")
            for check in sorted(set(expected) | set(got)):
                want = sorted(expected.get(check, ()))
                have = sorted(got.get(check, ()))
                if want != have:
                    print(f"  [{check}] expected lines {want}, got {have}")
            for f in reported:
                print(f"    reported {f.path}:{f.line}: [{f.check}] "
                      f"{f.message}")
        checks_hit.update(expected)
    missing = {c.NAME for c in ALL_CHECKS} - checks_hit
    if missing:
        failures += 1
        print(f"self-test FAIL: no seeded corpus case for check(s): "
              f"{sorted(missing)}")
    if failures:
        print(f"self-test: {failures} failure(s)")
        return 1
    print(f"self-test OK: {len(case_files)} corpus file(s), "
          f"{seeded_total} seeded violation(s) across "
          f"{len(checks_hit)} check(s), lexer suite green")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--build-dir", default=None,
                        help="configured build dir for "
                             "compile_commands.json-driven file discovery")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME", help="run only the named check(s)")
    parser.add_argument("--list", action="store_true",
                        help="print the check catalog and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation corpus + lexer suite")
    opts = parser.parse_args(argv[1:])

    if opts.list:
        for check in ALL_CHECKS:
            print(f"{check.NAME:24s} {check.DESCRIPTION}")
        return 0
    if opts.self_test:
        return self_test()

    root = os.path.abspath(opts.root) if opts.root else os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    known = {c.NAME for c in ALL_CHECKS}
    if opts.check:
        unknown = set(opts.check) - known
        if unknown:
            print(f"unknown check(s): {sorted(unknown)}; --list shows the "
                  "catalog")
            return 2
    build_dir = find_build_dir(root, opts.build_dir)
    return scan(root, build_dir, opts.check)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
