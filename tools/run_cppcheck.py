#!/usr/bin/env python3
"""Run cppcheck over the tree using a preset build's compile_commands.json.

    python3 tools/run_cppcheck.py [--build-dir build/release] [--require]
                                  [--jobs N]

cppcheck is not part of the minimal toolchain image, so by default a
missing binary SKIPs (exit 0) with a notice — local developer machines
without it stay green.  CI passes --require, which turns a missing
binary into a failure: the gate must actually run there.  The binary is
resolved from $CPPCHECK, then PATH.

The check set is deliberately narrow — warning/performance/portability
on top of the always-on error class — because cppcheck's `style` tier
overlaps clang-tidy (which already gates the tree) and is noisy on
template-heavy code.  Known false positives are curated in
tools/cppcheck_suppressions.txt with one justification comment per
entry; inline suppressions in source are not used, so the whole
exception surface is reviewable in one file.  Stdlib only.
"""
import argparse
import multiprocessing
import os
import shutil
import subprocess
import sys

DEFAULT_BUILD_DIRS = ("build/release", "build/debug", "build/tsan",
                      "build/asan", "build/serial")


def find_cppcheck():
    env = os.environ.get("CPPCHECK")
    if env:
        return env if shutil.which(env) or os.path.exists(env) else None
    return shutil.which("cppcheck")


def find_build_dir(root, requested):
    candidates = [requested] if requested else DEFAULT_BUILD_DIRS
    for cand in candidates:
        path = os.path.join(root, cand)
        if os.path.exists(os.path.join(path, "compile_commands.json")):
            return path
    return None


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) if cppcheck is unavailable "
                             "instead of skipping")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    opts = parser.parse_args(argv[1:])

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = find_cppcheck()
    if binary is None:
        msg = "cppcheck not found (set $CPPCHECK or install it); "
        if opts.require:
            print("FAIL " + msg + "--require demands the gate actually runs")
            return 2
        print("SKIP " + msg + "gate passes vacuously on this machine")
        return 0

    build_dir = find_build_dir(root, opts.build_dir)
    if build_dir is None:
        print("FAIL no compile_commands.json under "
              + (opts.build_dir or "/".join(DEFAULT_BUILD_DIRS))
              + "; configure a preset first (cmake --preset release)")
        return 2

    suppressions = os.path.join(root, "tools", "cppcheck_suppressions.txt")
    cmd = [
        binary,
        "--project=" + os.path.join(build_dir, "compile_commands.json"),
        "--enable=warning,performance,portability",
        # FetchContent'd third-party TUs (gtest) compile from the build
        # dir; everything under it is out of scope.
        "-i", build_dir,
        "--suppressions-list=" + suppressions,
        "--error-exitcode=1",
        "--inconclusive",
        "--quiet",
        "-j", str(opts.jobs),
    ]
    print(f"running {binary} over compile_commands.json "
          f"[{os.path.relpath(build_dir, root)}] with {opts.jobs} job(s)")
    proc = subprocess.run(cmd, cwd=root)
    if proc.returncode != 0:
        print("cppcheck gate failed (see findings above; curated "
              "suppressions live in tools/cppcheck_suppressions.txt)")
        return 1
    print("OK   cppcheck clean (warning,performance,portability)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
