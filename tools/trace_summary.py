#!/usr/bin/env python3
"""Summarize a v6d Chrome trace: per-rank critical paths, measured halo
overlap efficiency, and rank imbalance.  Optionally folds in the telemetry
JSONL heartbeat and cross-checks the trace-derived overlap efficiency
against the bucket-derived value in a v6d-perf/1 report.

Usage:
  python3 tools/trace_summary.py TRACE.json
      [--telemetry telemetry.jsonl] [--perf perf.json] [--tolerance 0.10]
  python3 tools/trace_summary.py --self-test

Exit status is non-zero when --perf is given and the trace-derived halo
overlap efficiency disagrees with the report's bucket-derived value by
more than --tolerance (relative).  stdlib only; CI runs this after the
traced distributed-smoke run.
"""

import argparse
import json
import sys

# Every span/instant/counter name the C++ side can produce.  Kept in
# lockstep with src/ by tools/lint_timer_buckets.py (both directions), so
# a renamed span fails the lint rather than silently vanishing from the
# summary.  ScopedTimer buckets double as span names.
KNOWN_EVENTS = {
    # ScopedTimer buckets (see tools/lint_timer_buckets.py KNOWN_BUCKETS)
    "checkpoint-io",
    "halo",
    "pm",
    "poisson",
    "retry-backoff",
    "step-control",
    "supervise-relaunch",
    "supervise-wait",
    "sweep-boundary",
    "sweep-full",
    "sweep-interior",
    "tree",
    "vlasov",
    "vlasov-moments",
    # explicit trace::Span names
    "step",
    "deposit",
    "kick",
    "fft-forward",
    "fft-inverse",
    "halo-begin",
    "halo-finish",
    "halo-wait",
    "fold-begin",
    "fold-finish",
    "fold-wait",
    "slab-begin",
    "slab-finish",
    "slab-wait",
    # trace::counter names
    "comm-bytes-sent",
    "mass-drift",
}


def load_events(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    return data.get("traceEvents", [])


def analyze(events):
    """Fold a traceEvents list into per-rank statistics.

    Returns a dict:
      ranks: {pid: {"total": {name: us}, "self": {name: us},
                    "steps": n, "step_us": us, "wall_us": us}}
      counters: {pid: {name: last_value}}
      unknown: sorted list of event names outside KNOWN_EVENTS
    """
    ranks = {}
    counters = {}
    unknown = set()
    stacks = {}  # (pid, tid) -> [[name, start_ts, child_us], ...]
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("B", "E", "i", "C"):
            continue
        name = ev["name"]
        pid = ev.get("pid", 0)
        if name not in KNOWN_EVENTS:
            unknown.add(name)
        rank = ranks.setdefault(
            pid,
            {"total": {}, "self": {}, "steps": 0, "step_us": 0.0,
             "first_us": None, "last_us": 0.0},
        )
        ts = ev.get("ts", 0.0)
        if ph in ("B", "E", "i", "C"):
            if rank["first_us"] is None:
                rank["first_us"] = ts
            rank["last_us"] = max(rank["last_us"], ts)
        if ph == "C":
            counters.setdefault(pid, {})[name] = (
                ev.get("args", {}).get("value", 0.0)
            )
            continue
        key = (pid, ev.get("tid", 0))
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append([name, ts, 0.0])
        elif ph == "E" and stack and stack[-1][0] == name:
            _, t0, child_us = stack.pop()
            dur = max(ts - t0, 0.0)
            rank["total"][name] = rank["total"].get(name, 0.0) + dur
            # Self time excludes nested spans — the critical-path view.
            rank["self"][name] = rank["self"].get(name, 0.0) + max(
                dur - child_us, 0.0
            )
            if stack:
                stack[-1][2] += dur
            if name == "step":
                rank["steps"] += 1
                rank["step_us"] += dur
    for rank in ranks.values():
        if rank["first_us"] is None:
            rank["first_us"] = 0.0
        rank["wall_us"] = rank["last_us"] - rank["first_us"]
    return {"ranks": ranks, "counters": counters, "unknown": sorted(unknown)}


def overlap_efficiency(ranks, mode="sum"):
    """Exposed halo wait / total halo time: 0 = fully hidden, 1 = fully
    on the critical path.  The 'halo' ScopedTimer bucket covers
    begin+finish+wait; 'halo-wait' spans cover only the blocking waits.

    The mode must match the producer being compared against:
      sum  — all ranks aggregated (the summary's headline number);
      lead — rank 0 only (a driver perf report's solver:* phases are the
             lead rank's timers);
      max  — ratio of per-rank maxima (how the table3 bench reduces
             halo_wait_seconds / halo_seconds across ranks).
    """
    waits = [r["total"].get("halo-wait", 0.0) for r in ranks.values()]
    halos = [r["total"].get("halo", 0.0) for r in ranks.values()]
    if mode == "lead":
        waits = [ranks[0]["total"].get("halo-wait", 0.0)] if 0 in ranks else []
        halos = [ranks[0]["total"].get("halo", 0.0)] if 0 in ranks else []
    reduce = max if mode == "max" else sum
    if not halos or reduce(halos) <= 0.0:
        return None
    return reduce(waits) / reduce(halos)


def rank_imbalance(ranks):
    """(max - min) / max of per-rank total step time; 0 = perfectly even."""
    totals = [r["step_us"] for r in ranks.values() if r["steps"] > 0]
    if len(totals) < 2 or max(totals) <= 0.0:
        return 0.0
    return (max(totals) - min(totals)) / max(totals)


def perf_bucket_efficiency(perf, nranks):
    """Pull the bucket-derived overlap efficiency out of a v6d-perf/1
    report: prefer the explicit metric (a max-over-ranks reduction, see
    bench/scaling_harness.hpp), else derive from the halo phases (the
    lead rank's timers in a driver report).

    Returns (value, trace_mode) where trace_mode names the
    overlap_efficiency() reduction that measures the same thing."""
    for m in perf.get("metrics", []):
        if m.get("name") == f"halo_overlap_efficiency_ranks_{nranks}":
            return float(m["value"]), "max"
    phases = {p["name"]: p["seconds"] for p in perf.get("phases", [])}
    halo = phases.get("solver:halo")
    wait = phases.get("solver:halo-wait")
    if halo and wait is not None and halo > 0.0:
        return wait / halo, "lead"
    return None, "sum"


def summarize_telemetry(path):
    rows = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    if not rows:
        return None
    last = rows[-1]
    return {
        "heartbeats": len(rows),
        "last_step": last.get("step"),
        "last_a": last.get("a"),
        "mass_drift": last.get("mass_drift"),
        "total_step_s": sum(r.get("step_seconds", 0.0) for r in rows),
        "comm_bytes": last.get("comm_bytes"),
        "rss_mb": last.get("rss_mb"),
    }


def print_summary(result, top=8):
    ranks = result["ranks"]
    for pid in sorted(ranks):
        r = ranks[pid]
        print(
            f"rank {pid}: {r['steps']} steps, "
            f"{r['step_us'] / 1e6:.3f} s in step spans, "
            f"{r['wall_us'] / 1e6:.3f} s traced wall"
        )
        ordered = sorted(
            r["self"].items(), key=lambda kv: kv[1], reverse=True
        )[:top]
        for name, us in ordered:
            total = r["total"].get(name, 0.0)
            print(
                f"    {name:<16} self {us / 1e6:9.3f} s   "
                f"total {total / 1e6:9.3f} s"
            )
    eff = overlap_efficiency(ranks)
    if eff is not None:
        print(f"halo overlap efficiency (trace): {eff:.3f} "
              "(exposed wait / total halo; lower = better hidden)")
    imb = rank_imbalance(ranks)
    print(f"rank imbalance (step time): {imb:.3f}")
    if result["unknown"]:
        print(f"WARNING: unknown event names: {', '.join(result['unknown'])}")


def self_test():
    us = 1.0  # timestamps below are already in microseconds

    def ev(ph, name, ts, pid=0, tid=0, **extra):
        out = {"name": name, "ph": ph, "pid": pid, "tid": tid, "ts": ts}
        out.update(extra)
        return out

    # rank 0: step [0,100] containing halo [10,40] containing
    # halo-wait [20,30]; rank 1: step [0,50], halo [10,30], no wait.
    events = [
        ev("B", "step", 0 * us),
        ev("B", "halo", 10 * us),
        ev("B", "halo-wait", 20 * us),
        ev("E", "halo-wait", 30 * us),
        ev("E", "halo", 40 * us),
        ev("E", "step", 100 * us),
        ev("B", "step", 0 * us, pid=1),
        ev("B", "halo", 10 * us, pid=1),
        ev("E", "halo", 30 * us, pid=1),
        ev("E", "step", 50 * us, pid=1),
        ev("C", "comm-bytes-sent", 50 * us, pid=1, args={"value": 64}),
    ]
    r = analyze(events)
    assert r["unknown"] == [], r["unknown"]
    assert r["ranks"][0]["steps"] == 1
    # self(step) = 100 - 30(halo) ; self(halo) = 30 - 10(wait)
    assert abs(r["ranks"][0]["self"]["step"] - 70.0) < 1e-9
    assert abs(r["ranks"][0]["self"]["halo"] - 20.0) < 1e-9
    eff = overlap_efficiency(r["ranks"])
    assert abs(eff - 10.0 / 50.0) < 1e-9, eff  # 10 wait / (30+20) halo
    imb = rank_imbalance(r["ranks"])
    assert abs(imb - 0.5) < 1e-9, imb  # (100-50)/100
    assert r["counters"][1]["comm-bytes-sent"] == 64

    # Reduction modes: lead uses rank 0 only; max is a ratio of maxima
    # (rank 0 holds both maxima here: wait 10, halo 50).
    assert abs(overlap_efficiency(r["ranks"], "lead") - 10.0 / 30.0) < 1e-9
    assert abs(overlap_efficiency(r["ranks"], "max") - 10.0 / 30.0) < 1e-9

    perf = {
        "metrics": [
            {"name": "halo_overlap_efficiency_ranks_2", "value": 0.21}
        ],
        "phases": [],
    }
    assert perf_bucket_efficiency(perf, 2) == (0.21, "max")
    perf2 = {
        "metrics": [],
        "phases": [
            {"name": "solver:halo", "seconds": 2.0},
            {"name": "solver:halo-wait", "seconds": 0.5},
        ],
    }
    value, mode = perf_bucket_efficiency(perf2, 4)
    assert abs(value - 0.25) < 1e-9 and mode == "lead"

    bad = analyze([ev("B", "mystery", 0), ev("E", "mystery", 1)])
    assert bad["unknown"] == ["mystery"]
    print("trace_summary self-test OK")


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        self_test()
        return 0
    parser = argparse.ArgumentParser(
        description="Summarize a v6d Chrome trace."
    )
    parser.add_argument("trace")
    parser.add_argument("--telemetry", help="telemetry JSONL heartbeat file")
    parser.add_argument("--perf", help="v6d-perf/1 report to cross-check")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="max relative disagreement between trace- and bucket-derived "
        "halo overlap efficiency (default 0.10)",
    )
    args = parser.parse_args(argv[1:])

    result = analyze(load_events(args.trace))
    print_summary(result)

    if args.telemetry:
        t = summarize_telemetry(args.telemetry)
        if t is None:
            print(f"ERROR: no heartbeats in {args.telemetry}")
            return 1
        print(
            f"telemetry: {t['heartbeats']} heartbeats, last step "
            f"{t['last_step']} at a={t['last_a']:.6g}, mass drift "
            f"{t['mass_drift']:.3g}, {t['total_step_s']:.3f} s stepping, "
            f"comm {t['comm_bytes']} B, rss {t['rss_mb']:.1f} MB"
        )

    if args.perf:
        with open(args.perf, encoding="utf-8") as f:
            perf = json.load(f)
        nranks = int(perf.get("context", {}).get("ranks", "1"))
        bucket_eff, mode = perf_bucket_efficiency(perf, nranks)
        trace_eff = overlap_efficiency(result["ranks"], mode)
        if bucket_eff is None or trace_eff is None:
            print("cross-check skipped: no halo activity on one side")
            return 0
        # Small absolute epsilon keeps near-zero efficiencies (tiny traced
        # runs where nothing waits) from tripping the relative gate.
        denom = max(abs(bucket_eff), 0.05)
        rel = abs(trace_eff - bucket_eff) / denom
        verdict = "OK" if rel <= args.tolerance else "FAIL"
        print(
            f"cross-check ({mode}): trace {trace_eff:.3f} vs buckets "
            f"{bucket_eff:.3f} (rel diff {rel:.3f}, tol "
            f"{args.tolerance:.2f}) {verdict}"
        )
        if verdict == "FAIL":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
