#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by common/trace.

Checks (stdlib only, used by CI's distributed-smoke job and by tests):
  * the file is valid JSON with a ``traceEvents`` list;
  * every event has name/ph/pid/tid/ts with the right types;
  * ``ts`` is non-decreasing in file order (the writer globally sorts);
  * per (pid, tid), B/E events are stack-balanced with matching names and
    every span closes (no dangling B at end of stream);
  * counter events carry a numeric ``args.value``.

Usage:
  python3 tools/check_trace.py TRACE.json [...]
  python3 tools/check_trace.py --self-test
"""

import json
import sys


def check_trace(data, label="trace"):
    """Return a list of problem strings (empty = valid)."""
    problems = []
    if not isinstance(data, dict) or not isinstance(
        data.get("traceEvents"), list
    ):
        return [f"{label}: missing traceEvents list"]
    events = data["traceEvents"]
    last_ts = None
    stacks = {}  # (pid, tid) -> [names]
    for i, ev in enumerate(events):
        where = f"{label}: event {i}"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":  # metadata events are exempt from ordering
            continue
        name = ev.get("name")
        ts = ev.get("ts")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
            continue
        if ph not in ("B", "E", "i", "C"):
            problems.append(f"{where}: unexpected ph {ph!r}")
            continue
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: non-numeric ts")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            problems.append(f"{where}: missing pid/tid")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"{where}: ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = ts
        key = (ev["pid"], ev["tid"])
        stack = stacks.setdefault(key, [])
        if ph == "B":
            stack.append(name)
        elif ph == "E":
            if not stack:
                problems.append(f"{where}: E '{name}' with empty stack {key}")
            elif stack[-1] != name:
                problems.append(
                    f"{where}: E '{name}' does not match open span "
                    f"'{stack[-1]}' on {key}"
                )
                stack.pop()
            else:
                stack.pop()
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter without numeric args.value")
    for key, stack in stacks.items():
        if stack:
            problems.append(f"{label}: unclosed span(s) {stack} on {key}")
    return problems


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: {err}"]
    return check_trace(data, path)


def self_test():
    def trace(events):
        return {"traceEvents": events}

    def ev(ph, name, ts, pid=0, tid=0, **extra):
        out = {"name": name, "ph": ph, "pid": pid, "tid": tid, "ts": ts}
        out.update(extra)
        return out

    good = trace(
        [
            ev("B", "step", 0.0),
            ev("B", "halo", 1.0),
            ev("E", "halo", 2.0),
            ev("C", "comm-bytes-sent", 2.5, args={"value": 128}),
            ev("i", "marker", 2.6, s="t"),
            ev("E", "step", 3.0),
            ev("B", "step", 3.0, pid=1),  # other rank interleaves freely
            ev("E", "step", 4.0, pid=1),
        ]
    )
    assert check_trace(good) == [], check_trace(good)

    bad_cases = [
        ("not json object", [], "missing traceEvents"),
        (
            "backwards ts",
            trace([ev("i", "a", 5.0, s="t"), ev("i", "b", 4.0, s="t")]),
            "goes backwards",
        ),
        (
            "unbalanced",
            trace([ev("B", "step", 0.0), ev("E", "halo", 1.0)]),
            "does not match",
        ),
        (
            "dangling B",
            trace([ev("B", "step", 0.0)]),
            "unclosed span",
        ),
        (
            "E on empty stack",
            trace([ev("E", "step", 0.0)]),
            "empty stack",
        ),
        (
            "counter without value",
            trace([ev("C", "bytes", 0.0)]),
            "numeric args.value",
        ),
    ]
    for label, data, expect in bad_cases:
        problems = check_trace(data)
        assert any(expect in p for p in problems), (label, problems)
    print("check_trace self-test OK")


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        self_test()
        return 0
    if len(argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        problems = check_file(path)
        for p in problems:
            print(f"ERROR: {p}")
        if problems:
            failed = True
        else:
            with open(path, encoding="utf-8") as f:
                n = len(json.load(f)["traceEvents"])
            print(f"{path}: OK ({n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
