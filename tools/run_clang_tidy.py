#!/usr/bin/env python3
"""Run clang-tidy over the tree using a preset build's compile_commands.json.

    python3 tools/run_clang_tidy.py [--build-dir build/release] [--require]
                                    [--jobs N] [paths...]

Every preset exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS
is set unconditionally in the top-level CMakeLists), so any configured
build dir works; the default picks the first of build/{release,debug,
tsan,asan,serial} that has one.

clang-tidy is not part of the minimal toolchain image, so by default a
missing binary SKIPs (exit 0) with a notice — local developer machines
without LLVM stay green.  CI passes --require, which turns a missing
binary into a failure: the gate must actually run there.  The binary is
resolved from $CLANG_TIDY, then PATH (clang-tidy, clang-tidy-21 ... -14).

Checks and the NOLINT policy live in .clang-tidy at the repo root;
warnings are errors (WarningsAsErrors: '*'), so any finding fails the
gate.  Stdlib only.

--analyzer switches to a second, deeper pass: the Clang Static
Analyzer's path-sensitive core/cplusplus packages (null derefs, uses of
moved-from or deleted objects, leaked news) over the comm and parallel
layers only — the hand-rolled threading is where a path-sensitive
verdict earns its ~10x compile cost.  That pass replaces the .clang-tidy
check set via --checks=; everything else (discovery, gating, --require)
is shared.
"""
import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

DEFAULT_BUILD_DIRS = ("build/release", "build/debug", "build/tsan",
                      "build/asan", "build/serial")
SOURCE_PREFIXES = ("src/", "apps/", "bench/", "tests/", "examples/")
VERSIONS = range(21, 13, -1)

# --analyzer: path-sensitive Clang Static Analyzer packages, scoped to
# the layers whose bugs are cross-thread and therefore cheapest to catch
# statically.  clang-analyzer-deadcode/optin are excluded on purpose —
# their findings on this tree are style-tier and already covered.
ANALYZER_CHECKS = "-*,clang-analyzer-core.*,clang-analyzer-cplusplus.*"
ANALYZER_PREFIXES = ("src/comm/", "src/parallel/")


def find_clang_tidy():
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) or os.path.exists(env) else None
    for name in ["clang-tidy"] + [f"clang-tidy-{v}" for v in VERSIONS]:
        if shutil.which(name):
            return name
    return None


def find_build_dir(root, requested):
    candidates = [requested] if requested else DEFAULT_BUILD_DIRS
    for cand in candidates:
        path = os.path.join(root, cand)
        if os.path.exists(os.path.join(path, "compile_commands.json")):
            return path
    return None


def select_sources(root, build_dir, path_filters):
    """Translation units from compile_commands.json that live in our tree
    (FetchContent'd third-party TUs compile from the build dir and are
    excluded by construction)."""
    with open(os.path.join(build_dir, "compile_commands.json"),
              encoding="utf-8") as f:
        entries = json.load(f)
    sources = []
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
            if not os.path.isabs(entry["file"]) else entry["file"])
        rel = os.path.relpath(path, root)
        if not rel.startswith(SOURCE_PREFIXES):
            continue
        if path_filters and not any(rel.startswith(p) for p in path_filters):
            continue
        sources.append(path)
    return sorted(set(sources))


def run_one(args):
    binary, build_dir, source, extra = args
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet"] + extra + [source],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    return source, proc.returncode, proc.stdout


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=None,
                        help="build dir holding compile_commands.json")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) if clang-tidy is unavailable "
                             "instead of skipping")
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--analyzer", action="store_true",
                        help="run the Clang Static Analyzer packages "
                             "(clang-analyzer-core.*, -cplusplus.*) over "
                             "the comm/parallel layers instead of the "
                             ".clang-tidy check set")
    parser.add_argument("paths", nargs="*",
                        help="restrict to these repo-relative prefixes")
    opts = parser.parse_args(argv[1:])
    if opts.analyzer and not opts.paths:
        opts.paths = list(ANALYZER_PREFIXES)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = find_clang_tidy()
    if binary is None:
        msg = ("clang-tidy not found (set $CLANG_TIDY or install LLVM); ")
        if opts.require:
            print("FAIL " + msg + "--require demands the gate actually runs")
            return 2
        print("SKIP " + msg + "gate passes vacuously on this machine")
        return 0

    build_dir = find_build_dir(root, opts.build_dir)
    if build_dir is None:
        print("FAIL no compile_commands.json under "
              + (opts.build_dir or "/".join(DEFAULT_BUILD_DIRS))
              + "; configure a preset first (cmake --preset release)")
        return 2

    sources = select_sources(root, build_dir, tuple(opts.paths))
    if not sources:
        print("FAIL compile_commands.json lists no in-tree sources")
        return 2

    extra = []
    mode = ".clang-tidy"
    if opts.analyzer:
        # --checks replaces the .clang-tidy set for this invocation;
        # analyzer diagnostics are promoted to errors so the gate fails
        # on any finding, matching the WarningsAsErrors policy.
        extra = [f"--checks={ANALYZER_CHECKS}",
                 "--warnings-as-errors=clang-analyzer-*"]
        mode = "clang-analyzer core/cplusplus"
    print(f"running {binary} ({mode}) over {len(sources)} TU(s) "
          f"[{os.path.relpath(build_dir, root)}] with {opts.jobs} job(s)")
    failures = 0
    with multiprocessing.Pool(opts.jobs) as pool:
        work = [(binary, build_dir, s, extra) for s in sources]
        for source, code, output in pool.imap_unordered(run_one, work):
            rel = os.path.relpath(source, root)
            if code != 0:
                failures += 1
                print(f"FAIL {rel}")
                sys.stdout.write(output)
            elif output.strip():
                # Zero exit but noise (e.g. suppressed-warning summary).
                print(f"ok   {rel}")
    if failures:
        print(f"{failures}/{len(sources)} TU(s) failed the {mode} gate")
        return 1
    print(f"OK   {len(sources)} TU(s) clean under {mode}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
