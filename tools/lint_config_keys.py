#!/usr/bin/env python3
"""Lint: config keys read through common/options and the docs must agree.

    python3 tools/lint_config_keys.py [repo-root]
    python3 tools/lint_config_keys.py --self-test

Three cross-checks, all by string literal:

  1. Every key read in src/ or apps/ (`opt.get("key", ...)`, `get_int`,
     `get_double`, `get_bool`, `has`) must be documented in a key table of
     docs/CONFIG.md — the driver surface is the user contract.
  2. Every key read in bench/ or examples/ must be documented in
     docs/CONFIG.md or docs/BENCHMARKING.md (bench-only knobs live there).
  3. Every documented key must be read somewhere in src/apps/bench/
     examples — stale rows rot faster than missing ones.
     Keys used in configs/*.cfg are also checked against the docs.

A "key table" is any markdown table whose header's first cell is `Key`;
the key is the backticked name in the first column.  Keys beginning with
`-` are CLI flags, not config keys, and are ignored.  Stdlib only.
"""
import glob
import os
import re
import sys
import tempfile

CODE_DIRS_STRICT = ("src", "apps")       # must be in CONFIG.md
CODE_DIRS_BENCH = ("bench", "examples")  # CONFIG.md or BENCHMARKING.md
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

_READ = re.compile(
    r"\b(?:get_int|get_double|get_bool|get|has)\s*\(\s*\"([^\"]+)\"")
_TABLE_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|")
_TABLE_HEADER = re.compile(r"^\|\s*([^|]+?)\s*\|")
_CFG_LINE = re.compile(r"^\s*([A-Za-z0-9_.\-]+)\s*=")
_CFG_SECTION = re.compile(r"^\s*\[([^\]]+)\]")


def scan_code_keys(root, dirs):
    """{key: [(relpath, lineno), ...]} of option reads with literal keys."""
    found = {}
    for sub in dirs:
        base = os.path.join(root, sub)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, "r", encoding="utf-8", errors="replace") as f:
                    for lineno, line in enumerate(f, start=1):
                        for m in _READ.finditer(line):
                            key = m.group(1)
                            if key.startswith("-"):
                                continue  # CLI flag spelling, not a key
                            found.setdefault(key, []).append((rel, lineno))
    return found


def scan_doc_keys(path):
    """Backticked first-column entries of tables headed `| Key | ... |`."""
    keys = set()
    if not os.path.exists(path):
        return keys
    in_key_table = False
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            if not line.startswith("|"):
                in_key_table = False
                continue
            header = _TABLE_HEADER.match(line)
            if header and header.group(1).strip() == "Key":
                in_key_table = True
                continue
            if not in_key_table:
                continue
            row = _TABLE_ROW.match(line)
            if row:
                keys.add(row.group(1).strip())
    return keys


def scan_cfg_keys(root):
    """{key: [(relpath, lineno), ...]} from configs/*.cfg INI files."""
    found = {}
    for path in sorted(glob.glob(os.path.join(root, "configs", "*.cfg"))):
        rel = os.path.relpath(path, root)
        section = ""
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                stripped = line.split("#")[0].split(";")[0]
                sec = _CFG_SECTION.match(stripped)
                if sec:
                    section = sec.group(1).strip() + "."
                    continue
                m = _CFG_LINE.match(stripped)
                if m:
                    found.setdefault(section + m.group(1), []).append(
                        (rel, lineno))
    return found


def lint_tree(root):
    failures = []
    config_keys = scan_doc_keys(os.path.join(root, "docs", "CONFIG.md"))
    bench_keys = scan_doc_keys(os.path.join(root, "docs", "BENCHMARKING.md"))
    strict_reads = scan_code_keys(root, CODE_DIRS_STRICT)
    bench_reads = scan_code_keys(root, CODE_DIRS_BENCH)
    cfg_reads = scan_cfg_keys(root)

    for key, sites in sorted(strict_reads.items()):
        if key not in config_keys:
            rel, lineno = sites[0]
            failures.append((rel, lineno,
                             f'key "{key}" is read here but undocumented in '
                             "docs/CONFIG.md"))
    for key, sites in sorted(bench_reads.items()):
        if key not in config_keys | bench_keys:
            rel, lineno = sites[0]
            failures.append((rel, lineno,
                             f'key "{key}" is read here but undocumented in '
                             "docs/CONFIG.md or docs/BENCHMARKING.md"))
    for key, sites in sorted(cfg_reads.items()):
        if key not in config_keys:
            rel, lineno = sites[0]
            failures.append((rel, lineno,
                             f'config file sets "{key}" which docs/CONFIG.md '
                             "does not document"))

    all_reads = set(strict_reads) | set(bench_reads)
    for key in sorted(config_keys | bench_keys):
        if key not in all_reads:
            doc = "CONFIG.md" if key in config_keys else "BENCHMARKING.md"
            failures.append((f"docs/{doc}", 0,
                             f'documented key "{key}" is never read via '
                             "common/options in src/apps/bench/examples"))
    return failures


CLEAN_SRC = """\
void apply(const v6d::Options& opt) {
  nx = opt.get_int("nx", nx);
  label = opt.get("label", label);
  if (opt.has("cfl")) cfl = opt.get_double("cfl", cfl);
  json = opt.get("--json-out", "");  // CLI flag: exempt
}
"""

CLEAN_DOC = """\
# Config

| Key | Default | Meaning |
| --- | --- | --- |
| `nx` | `8` | Grid. |
| `label` | *(empty)* | Name. |
| `cfl` | `0.9` | Bound. |

| Scenario | Species |
| --- | --- |
| `not_a_key` | ignored (header is not Key). |
"""

SEEDED_SRC = """\
void apply(const v6d::Options& opt) {
  nx = opt.get_int("nx", nx);
  ghost = opt.get_int("ghost_width", 3);
}
"""

SEEDED_DOC = """\
# Config

| Key | Default | Meaning |
| --- | --- | --- |
| `nx` | `8` | Grid. |
| `retired_key` | `0` | No longer read anywhere. |
"""


def _write(root, rel, content):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


def self_test():
    with tempfile.TemporaryDirectory() as tmp:
        _write(tmp, "src/config.cpp", CLEAN_SRC)
        _write(tmp, "docs/CONFIG.md", CLEAN_DOC)
        failures = lint_tree(tmp)
        if failures:
            print(f"self-test FAIL: clean fixture flagged: {failures}")
            return 1
    with tempfile.TemporaryDirectory() as tmp:
        _write(tmp, "src/config.cpp", SEEDED_SRC)
        _write(tmp, "docs/CONFIG.md", SEEDED_DOC)
        _write(tmp, "configs/run.cfg", "nx = 8\nundocumented_cfg_key = 1\n")
        failures = lint_tree(tmp)
        got = {msg.split('"')[1] for (_, _, msg) in failures}
        want = {"ghost_width", "retired_key", "undocumented_cfg_key"}
        if got != want:
            print(f"self-test FAIL: flagged {sorted(got)}, expected "
                  f"{sorted(want)}")
            return 1
    print("self-test OK: undocumented/stale/config-file violations caught, "
          "clean fixture clean")
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--self-test":
        return self_test()
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures = lint_tree(root)
    for rel, lineno, msg in failures:
        where = f"{rel}:{lineno}" if lineno else rel
        print(f"FAIL {where}: {msg}")
    if failures:
        print(f"{len(failures)} config-key doc mismatch(es); keep code, "
              "configs/ and docs/CONFIG.md in lockstep "
              "(see docs/DEVELOPMENT.md)")
        return 1
    print("OK   config keys, configs/ and docs agree")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
