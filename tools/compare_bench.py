#!/usr/bin/env python3
"""Diff two v6d-perf/1 BENCH_*.json files and fail on metric regressions.

Stdlib only (CI runs it without installing anything):

    python3 tools/compare_bench.py baseline.json current.json \
        --metric fused_sweep_speedup:40:higher \
        --metric halo_overlap_efficiency_ranks_8:25:lower

Each --metric takes  name[:max_regress_pct[:direction]] :

  * name            exact metric name in the files' "metrics" arrays
  * max_regress_pct allowed regression in percent (default 25)
  * direction       'higher' = bigger is better (speedups, scaling
                    efficiencies), 'lower' = smaller is better (seconds,
                    exposed waits).  Defaults to 'lower' when the baseline
                    metric's unit is "s" or its name marks an exposed-cost
                    ratio ("overlap_efficiency", "exposed", "wait"), else
                    'higher'.  Pass the direction explicitly for anything
                    gating CI.

A metric present in the baseline but missing from the current file is a
failure (a silently dropped metric would otherwise hide a regression
forever); extra metrics in the current file are reported as "new".  With
no --metric arguments every metric common to both files is compared at the
default threshold.

Exit status 0 when nothing regressed beyond its threshold, 1 otherwise.
Timing noise on shared CI hardware is real: thresholds are per-metric so
stable ratios (speedups) can be held tighter than raw seconds.
"""
import argparse
import json
import sys

SCHEMA = "v6d-perf/1"


def load_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"FAIL {path}: unreadable or invalid JSON: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"FAIL {path}: schema is {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
    metrics = {}
    for m in doc.get("metrics", []):
        if isinstance(m, dict) and isinstance(m.get("name"), str):
            metrics[m["name"]] = m
    return metrics


def parse_spec(spec, default_pct):
    parts = spec.split(":")
    name = parts[0]
    pct = float(parts[1]) if len(parts) > 1 and parts[1] else default_pct
    direction = parts[2] if len(parts) > 2 and parts[2] else None
    if direction not in (None, "higher", "lower"):
        sys.exit(f"FAIL: bad direction {direction!r} in --metric {spec!r}")
    return name, pct, direction


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--metric", action="append", default=[],
                    help="name[:max_regress_pct[:higher|lower]]; repeatable")
    ap.add_argument("--default-pct", type=float, default=25.0,
                    help="threshold used when a spec omits one (default 25)")
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    if args.metric:
        specs = [parse_spec(s, args.default_pct) for s in args.metric]
    else:
        specs = [(name, args.default_pct, None) for name in sorted(base)]

    ok = True
    for name, pct, direction in specs:
        if name not in base:
            print(f"FAIL {name}: not in baseline {args.baseline}")
            ok = False
            continue
        if name not in cur:
            print(f"FAIL {name}: present in baseline but missing from "
                  f"{args.current}")
            ok = False
            continue
        b, c = base[name], cur[name]
        bv, cv = b.get("value"), c.get("value")
        if not isinstance(bv, (int, float)) or not isinstance(cv, (int, float)):
            print(f"FAIL {name}: non-numeric value ({bv!r} vs {cv!r})")
            ok = False
            continue
        if direction is None:
            lower_marks = ("overlap_efficiency", "exposed", "wait")
            is_cost = (b.get("unit") == "s" or
                       any(mark in name for mark in lower_marks))
            direction = "lower" if is_cost else "higher"
        if bv == 0:
            # A zero baseline carries no relative-change signal (e.g. a
            # pipeline stage that was disengaged on the baseline host);
            # report it instead of manufacturing an infinite regression.
            print(f"n/a  {name}: baseline 0 -> {cv:.6g} "
                  f"(no relative signal, not gated)")
            continue
        change_pct = (cv - bv) / abs(bv) * 100.0
        regress_pct = -change_pct if direction == "higher" else change_pct
        status = "FAIL" if regress_pct > pct else "ok  "
        arrow = "better" if regress_pct < 0 else "worse"
        print(f"{status} {name}: {bv:.6g} -> {cv:.6g} "
              f"({abs(regress_pct):.1f}% {arrow}, {direction} is better, "
              f"limit {pct:.0f}%)")
        if regress_pct > pct:
            ok = False

    for name in sorted(set(cur) - set(base)):
        print(f"new  {name}: {cur[name].get('value'):.6g} (not in baseline)")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
