#!/usr/bin/env python3
"""Prove the TCP transport reproduces the in-process runtime bit for bit.

Stdlib only (CI runs it without installing anything):

    python3 tools/check_tcp_equivalence.py path/to/v6d workdir \
        [--config configs/smoke.cfg] [--ranks 2] [--steps 3] [--resume-steps 5]

Drives the same tiny distributed scenario twice through the `v6d` CLI —
once as thread ranks in one process (`ranks=N`), once as N OS processes
over loopback TCP (`spawn=N`) — then asserts the runs are *equivalent*,
not merely close:

  * every per-rank phase-space checkpoint shard is byte-identical,
  * the particles / force-cache payloads are byte-identical,
  * the telemetry trajectories agree exactly on every deterministic field
    (step, a, da, mass, mass_drift, cfl_shift, comm_bytes — timing and
    RSS fields are machine noise and are ignored),
  * both checkpoints resume (inproc resume vs spawned TCP resume) to
    byte-identical shards again.

Exit status 0 when the backends are indistinguishable, 1 otherwise.
"""

import argparse
import json
import pathlib
import shutil
import subprocess
import sys

DETERMINISTIC_FIELDS = (
    "step", "a", "da", "mass", "mass_drift", "cfl_shift", "comm_bytes",
)


def run(cmd, label):
    print(f"[{label}] $ {' '.join(str(c) for c in cmd)}", flush=True)
    result = subprocess.run([str(c) for c in cmd],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        print(result.stdout)
        print(f"FAIL: {label} exited {result.returncode}")
        sys.exit(1)
    return result.stdout


def compare_files(a_dir, b_dir, names, label):
    ok = True
    for name in names:
        fa, fb = a_dir / name, b_dir / name
        if not fa.exists() or not fb.exists():
            print(f"FAIL: {label}: {name} missing "
                  f"(inproc={fa.exists()} tcp={fb.exists()})")
            ok = False
        elif fa.read_bytes() != fb.read_bytes():
            print(f"FAIL: {label}: {name} differs between backends")
            ok = False
        else:
            print(f"  ok: {label}: {name} byte-identical")
    return ok


def checkpoint_payload_names(ckpt_dir):
    """Every payload file in a checkpoint dir (meta holds run-local paths
    like checkpoint_dir/telemetry, so it is compared field-filtered
    elsewhere, not byte-compared)."""
    return sorted(p.name for p in ckpt_dir.iterdir() if p.name != "meta")


def compare_telemetry(a_path, b_path):
    rows_a = [json.loads(line) for line in a_path.read_text().splitlines()]
    rows_b = [json.loads(line) for line in b_path.read_text().splitlines()]
    if len(rows_a) != len(rows_b):
        print(f"FAIL: telemetry row counts differ: "
              f"{len(rows_a)} inproc vs {len(rows_b)} tcp")
        return False
    ok = True
    for i, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        for field in DETERMINISTIC_FIELDS:
            if ra.get(field) != rb.get(field):
                print(f"FAIL: telemetry row {i} field '{field}': "
                      f"{ra.get(field)!r} != {rb.get(field)!r}")
                ok = False
    if ok:
        print(f"  ok: telemetry trajectories identical "
              f"({len(rows_a)} rows x {len(DETERMINISTIC_FIELDS)} fields)")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("v6d", type=pathlib.Path, help="v6d CLI binary")
    parser.add_argument("workdir", type=pathlib.Path)
    parser.add_argument("--config", default=None,
                        help="config file or scenario name "
                             "(default: bundled tiny neutrino_box keys)")
    parser.add_argument("--ranks", type=int, default=2)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--resume-steps", type=int, default=5)
    parser.add_argument("--set", dest="overrides", action="append",
                        default=[], metavar="KEY=VALUE",
                        help="extra key=value override passed to both runs "
                             "(e.g. --set nx=8 to make a tiny config "
                             "decomposable across the ranks)")
    args = parser.parse_args()

    work = args.workdir.resolve()
    if work.exists():
        shutil.rmtree(work)
    inp, tcp = work / "inproc", work / "tcp"
    inp.mkdir(parents=True)
    tcp.mkdir(parents=True)

    if args.config:
        target, scenario_keys = args.config, []
    else:
        target = "neutrino_box"
        scenario_keys = ["box=100", "nx=8", "nu=6", "np=8", "seed=9",
                         "a_final=0.3", "da_max=0.03"]
    common = scenario_keys + args.overrides + [f"max_steps={args.steps}",
                                               "checkpoint_every=0",
                                               "progress_every=0"]

    run([args.v6d, "run", target, *common, f"ranks={args.ranks}",
         f"checkpoint_dir={inp / 'ckpt'}", f"telemetry={inp / 't.jsonl'}"],
        "run/inproc")
    run([args.v6d, "run", target, *common, f"spawn={args.ranks}",
         f"checkpoint_dir={tcp / 'ckpt'}", f"telemetry={tcp / 't.jsonl'}"],
        "run/tcp")

    ok = compare_telemetry(inp / "t.jsonl", tcp / "t.jsonl")
    names = checkpoint_payload_names(inp / "ckpt")
    if names != checkpoint_payload_names(tcp / "ckpt"):
        print("FAIL: checkpoint payload sets differ: "
              f"{names} vs {checkpoint_payload_names(tcp / 'ckpt')}")
        ok = False
    else:
        ok = compare_files(inp / "ckpt", tcp / "ckpt", names, "run") and ok

    # Resume both checkpoints a few more steps: the inproc checkpoint on
    # thread ranks, the TCP checkpoint on freshly spawned processes.
    resume = [f"max_steps={args.resume_steps}", "progress_every=0"]
    run([args.v6d, "resume", inp / "ckpt", *resume], "resume/inproc")
    run([args.v6d, "resume", tcp / "ckpt", *resume, f"spawn={args.ranks}"],
        "resume/tcp")

    names = checkpoint_payload_names(inp / "ckpt")
    if names != checkpoint_payload_names(tcp / "ckpt"):
        print("FAIL: resumed payload sets differ: "
              f"{names} vs {checkpoint_payload_names(tcp / 'ckpt')}")
        ok = False
    else:
        ok = compare_files(inp / "ckpt", tcp / "ckpt", names, "resume") and ok

    if not ok:
        print("TCP/inproc equivalence check FAILED")
        return 1
    print("TCP/inproc equivalence check passed: backends byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
