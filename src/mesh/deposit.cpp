#include "mesh/deposit.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace v6d::mesh {

namespace {

// Kernel weights and the index of the lowest touched cell for one axis.
// Positions are in units of cells, measured so cell centers sit at i + 0.5.
struct AxisWeights {
  int lo;          // lowest global cell index touched
  double w[3];     // up to three weights (NGP: 1, CIC: 2, TSC: 3)
  int count;
};

inline AxisWeights axis_weights(double xc, Assignment assignment) {
  AxisWeights aw{};
  switch (assignment) {
    case Assignment::kNgp: {
      aw.lo = static_cast<int>(std::floor(xc));
      aw.w[0] = 1.0;
      aw.count = 1;
      break;
    }
    case Assignment::kCic: {
      // Distance from the center of the cell containing x.
      const double s = xc - 0.5;
      const int i = static_cast<int>(std::floor(s));
      const double frac = s - i;
      aw.lo = i;
      aw.w[0] = 1.0 - frac;
      aw.w[1] = frac;
      aw.count = 2;
      break;
    }
    case Assignment::kTsc: {
      const int i = static_cast<int>(std::floor(xc));
      const double d = xc - (i + 0.5);  // in (-0.5, 0.5]
      aw.lo = i - 1;
      aw.w[0] = 0.5 * (0.5 - d) * (0.5 - d);
      aw.w[1] = 0.75 - d * d;
      aw.w[2] = 0.5 * (0.5 + d) * (0.5 + d);
      aw.count = 3;
      break;
    }
  }
  return aw;
}

// Wrap a position (in cell units) into [0, n).  Two hazards beyond the
// plain fmod: rounding in `c - n*floor(c/n)` can land exactly on n for
// tiny negative inputs (fold it back), and a non-finite position would
// make the later float->int casts undefined behaviour (UBSan:
// float-cast-overflow) instead of a diagnosable error — so reject it
// here, at the first point the particle state is interpreted.
inline double wrap_cells(double c, int n) {
  if (!std::isfinite(c))
    throw std::domain_error("mesh: non-finite particle position");
  c -= n * std::floor(c / n);
  if (c >= n) c -= n;
  return c;
}

}  // namespace

void deposit(Grid3D<double>& rho, const MeshPatch& patch,
             std::span<const double> x, std::span<const double> y,
             std::span<const double> z, double particle_mass,
             Assignment assignment) {
  assert(x.size() == y.size() && y.size() == z.size());
  const double h = patch.h();
  const double inv_h = 1.0 / h;
  const double w_mass = particle_mass / (h * h * h);
  const int n = patch.n_global;

  for (std::size_t p = 0; p < x.size(); ++p) {
    // Position in cell units, wrapped into [0, n).
    const double cx = wrap_cells(x[p] * inv_h, n);
    const double cy = wrap_cells(y[p] * inv_h, n);
    const double cz = wrap_cells(z[p] * inv_h, n);

    const AxisWeights ax = axis_weights(cx, assignment);
    const AxisWeights ay = axis_weights(cy, assignment);
    const AxisWeights az = axis_weights(cz, assignment);
    for (int a = 0; a < ax.count; ++a) {
      const int gi = ax.lo + a;
      for (int b = 0; b < ay.count; ++b) {
        const int gj = ay.lo + b;
        const double wab = ax.w[a] * ay.w[b] * w_mass;
        for (int c = 0; c < az.count; ++c) {
          const int gk = az.lo + c;
          // Local indices relative to this patch; periodic wrap against the
          // *global* mesh, then shift.  Deposits near the brick boundary
          // land in ghost cells and are folded by the caller.
          int li = Grid3D<double>::wrap(gi, n) - patch.offset[0];
          int lj = Grid3D<double>::wrap(gj, n) - patch.offset[1];
          int lk = Grid3D<double>::wrap(gk, n) - patch.offset[2];
          // Prefer the ghost-image representation when the wrapped index
          // jumped across the box (single-rank patches cover the whole box).
          if (li >= rho.nx() + rho.ghost()) li -= n;
          if (li < -rho.ghost()) li += n;
          if (lj >= rho.ny() + rho.ghost()) lj -= n;
          if (lj < -rho.ghost()) lj += n;
          if (lk >= rho.nz() + rho.ghost()) lk -= n;
          if (lk < -rho.ghost()) lk += n;
          rho.at(li, lj, lk) += wab * az.w[c];
        }
      }
    }
  }
}

double interpolate(const Grid3D<double>& field, const MeshPatch& patch,
                   double x, double y, double z, Assignment assignment) {
  const double inv_h = 1.0 / patch.h();
  const int n = patch.n_global;
  const double cx = wrap_cells(x * inv_h, n);
  const double cy = wrap_cells(y * inv_h, n);
  const double cz = wrap_cells(z * inv_h, n);

  const AxisWeights ax = axis_weights(cx, assignment);
  const AxisWeights ay = axis_weights(cy, assignment);
  const AxisWeights az = axis_weights(cz, assignment);
  double acc = 0.0;
  for (int a = 0; a < ax.count; ++a) {
    int li = Grid3D<double>::wrap(ax.lo + a, n) - patch.offset[0];
    if (li >= field.nx() + field.ghost()) li -= n;
    if (li < -field.ghost()) li += n;
    for (int b = 0; b < ay.count; ++b) {
      int lj = Grid3D<double>::wrap(ay.lo + b, n) - patch.offset[1];
      if (lj >= field.ny() + field.ghost()) lj -= n;
      if (lj < -field.ghost()) lj += n;
      const double wab = ax.w[a] * ay.w[b];
      for (int c = 0; c < az.count; ++c) {
        int lk = Grid3D<double>::wrap(az.lo + c, n) - patch.offset[2];
        if (lk >= field.nz() + field.ghost()) lk -= n;
        if (lk < -field.ghost()) lk += n;
        acc += wab * az.w[c] * field.at(li, lj, lk);
      }
    }
  }
  return acc;
}

void gradient_fd4(const Grid3D<double>& field, double h, Grid3D<double>& gx,
                  Grid3D<double>& gy, Grid3D<double>& gz) {
  assert(field.ghost() >= 2);
  const double c1 = 8.0 / (12.0 * h);
  const double c2 = 1.0 / (12.0 * h);
  for (int i = 0; i < field.nx(); ++i)
    for (int j = 0; j < field.ny(); ++j)
      for (int k = 0; k < field.nz(); ++k) {
        gx.at(i, j, k) = c1 * (field.at(i + 1, j, k) - field.at(i - 1, j, k)) -
                         c2 * (field.at(i + 2, j, k) - field.at(i - 2, j, k));
        gy.at(i, j, k) = c1 * (field.at(i, j + 1, k) - field.at(i, j - 1, k)) -
                         c2 * (field.at(i, j + 2, k) - field.at(i, j - 2, k));
        gz.at(i, j, k) = c1 * (field.at(i, j, k + 1) - field.at(i, j, k - 1)) -
                         c2 * (field.at(i, j, k + 2) - field.at(i, j, k - 2));
      }
}

}  // namespace v6d::mesh
