// Grid3D<T>: a 3-D scalar field with ghost layers.
//
// Used for PM mesh quantities (density, potential, force components) and for
// the moment fields of the Vlasov solver.  Row-major with z contiguous,
// matching the phase-space spatial layout so deposits and interpolation
// traverse memory in the same order.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/aligned.hpp"

namespace v6d::mesh {

template <class T>
class Grid3D {
 public:
  Grid3D() = default;
  Grid3D(int nx, int ny, int nz, int ghost = 0)
      : nx_(nx), ny_(ny), nz_(nz), ghost_(ghost),
        sy_(nz + 2 * ghost),
        sx_(static_cast<std::ptrdiff_t>(ny + 2 * ghost) * (nz + 2 * ghost)),
        data_(static_cast<std::size_t>(nx + 2 * ghost) * (ny + 2 * ghost) *
                  (nz + 2 * ghost),
              T{}) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int ghost() const { return ghost_; }
  std::size_t interior_size() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }

  /// Interior indices 0..n-1; ghosts at -ghost..n+ghost-1.
  T& at(int i, int j, int k) { return data_[index(i, j, k)]; }
  const T& at(int i, int j, int k) const { return data_[index(i, j, k)]; }

  /// Periodic interior access (wraps any integer index).
  T& atp(int i, int j, int k) {
    return at(wrap(i, nx_), wrap(j, ny_), wrap(k, nz_));
  }
  const T& atp(int i, int j, int k) const {
    return at(wrap(i, nx_), wrap(j, ny_), wrap(k, nz_));
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copy ghost layers from the periodic image of the interior.
  void fill_ghosts_periodic() {
    if (ghost_ == 0) return;
    const int g = ghost_;
    for (int i = -g; i < nx_ + g; ++i)
      for (int j = -g; j < ny_ + g; ++j)
        for (int k = -g; k < nz_ + g; ++k) {
          const bool interior =
              i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
          if (!interior)
            at(i, j, k) = at(wrap(i, nx_), wrap(j, ny_), wrap(k, nz_));
        }
  }

  /// Accumulate ghost-layer contributions back onto their periodic interior
  /// images and zero the ghosts (used after scatter-style deposits).
  void fold_ghosts_periodic() {
    if (ghost_ == 0) return;
    const int g = ghost_;
    for (int i = -g; i < nx_ + g; ++i)
      for (int j = -g; j < ny_ + g; ++j)
        for (int k = -g; k < nz_ + g; ++k) {
          const bool interior =
              i >= 0 && i < nx_ && j >= 0 && j < ny_ && k >= 0 && k < nz_;
          if (!interior) {
            at(wrap(i, nx_), wrap(j, ny_), wrap(k, nz_)) += at(i, j, k);
            at(i, j, k) = T{};
          }
        }
  }

  double sum_interior() const {
    double s = 0.0;
    for (int i = 0; i < nx_; ++i)
      for (int j = 0; j < ny_; ++j)
        for (int k = 0; k < nz_; ++k) s += static_cast<double>(at(i, j, k));
    return s;
  }

  T* raw() { return data_.data(); }
  const T* raw() const { return data_.data(); }
  std::size_t raw_size() const { return data_.size(); }

  static int wrap(int i, int n) { return ((i % n) + n) % n; }

 private:
  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(i + ghost_) * sx_ +
           static_cast<std::size_t>(j + ghost_) * sy_ +
           static_cast<std::size_t>(k + ghost_);
  }

  int nx_ = 0, ny_ = 0, nz_ = 0, ghost_ = 0;
  std::ptrdiff_t sy_ = 0, sx_ = 0;
  AlignedVector<T> data_;
};

using GridF = Grid3D<float>;
using GridD = Grid3D<double>;

}  // namespace v6d::mesh
