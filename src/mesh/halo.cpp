#include "mesh/halo.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace v6d::mesh {

namespace {

// Tags: axis * 4 + (0: to backward neighbor, 1: to forward neighbor) + a
// base offset distinguishing exchange kinds.
constexpr int kHaloTagBase = 100;
constexpr int kFoldTagBase = 200;

struct Range {
  int lo, hi;  // half-open interval of cell indices
  int count() const { return hi - lo; }
};

inline int wrap(int i, int n) { return ((i % n) + n) % n; }

// A decomposed axis sends `ghost` *interior* layers to each neighbor; if
// the local extent is smaller than the ghost width the pack would silently
// read out-of-range (ghost) cells and corrupt the neighbor's halo.  Fail
// loudly instead — the decomposition has too many ranks along this axis.
void require_ghost_fits(const char* fn, int axis, int n_axis, int ghost,
                        int ranks_along_axis) {
  if (n_axis >= ghost) return;
  throw std::invalid_argument(
      std::string(fn) + ": local extent " + std::to_string(n_axis) +
      " along axis " + std::to_string(axis) + " is smaller than the ghost " +
      "width " + std::to_string(ghost) + " (axis split over " +
      std::to_string(ranks_along_axis) +
      " ranks); use fewer ranks along this axis");
}

// Generic axis exchange over an indexable 3-D container of `Cell` payloads.
// get/set copy whole payload units (a scalar for mesh grids, a velocity
// block for phase space).
template <class Pack, class Unpack>
void exchange_axis(comm::CartTopology& cart, int axis, int n_axis, int ghost,
                   Range t1, Range t2, int tag_base, Pack&& pack,
                   Unpack&& unpack) {
  auto& comm = cart.comm();
  const auto nbr = cart.neighbors(axis);

  // Persistent per-rank (thread) scratch: halo exchange runs several times
  // per step, so per-call vectors were steady-state allocation churn.
  thread_local std::vector<float> send_hi, send_lo, recv_buf;

  const int tag_fwd = tag_base + axis * 4 + 0;  // travelling +axis
  const int tag_bwd = tag_base + axis * 4 + 1;  // travelling -axis

  // Send our low interior layers to the backward neighbor (they become its
  // high ghosts) and vice versa.
  // High interior -> forward neighbor's low ghosts.
  pack(n_axis - ghost, ghost, t1, t2, send_hi);
  comm.send(nbr[1], tag_fwd, send_hi.data(), send_hi.size());
  // Low interior -> backward neighbor's high ghosts.
  pack(0, ghost, t1, t2, send_lo);
  comm.send(nbr[0], tag_bwd, send_lo.data(), send_lo.size());

  recv_buf.resize(send_hi.size());
  comm.recv(nbr[0], tag_fwd, recv_buf.data(), recv_buf.size());
  unpack(-ghost, ghost, t1, t2, recv_buf);

  recv_buf.resize(send_lo.size());
  comm.recv(nbr[1], tag_bwd, recv_buf.data(), recv_buf.size());
  unpack(n_axis, ghost, t1, t2, recv_buf);
}

}  // namespace

void exchange_phase_space_halo(vlasov::PhaseSpace& f,
                               comm::CartTopology& cart) {
  if (cart.comm().size() == 1) {
    f.fill_ghosts_periodic();
    return;
  }
  const auto& d = f.dims();
  const int g = d.ghost;
  const std::size_t bs = f.block_size();
  const int n[3] = {d.nx, d.ny, d.nz};

  // Axis-by-axis; transverse ranges grow as earlier axes fill their ghosts.
  for (int axis = 0; axis < 3; ++axis) {
    // Transverse extents: axes already exchanged include ghosts.
    Range r[3];
    for (int t = 0; t < 3; ++t)
      r[t] = t < axis ? Range{-g, n[t] + g} : Range{0, n[t]};

    auto cell = [&](int a, int b, int c) -> float* {
      int idx[3];
      idx[axis] = a;
      int tpos = 0;
      for (int t = 0; t < 3; ++t) {
        if (t == axis) continue;
        idx[t] = tpos == 0 ? b : c;
        ++tpos;
      }
      return f.block(idx[0], idx[1], idx[2]);
    };
    // Identify the two transverse axes (in increasing order).
    int ta = -1, tb = -1;
    for (int t = 0; t < 3; ++t) {
      if (t == axis) continue;
      (ta < 0 ? ta : tb) = t;
    }

    if (cart.dims()[static_cast<std::size_t>(axis)] == 1) {
      // Undecomposed axis: the whole axis lives on this rank, so the halo
      // is the local periodic wrap.  The modulo handles extents smaller
      // than the ghost width (quasi-1D grids), which a self-send of
      // interior slabs cannot.
      for (int a = -g; a < n[axis] + g; ++a) {
        if (a >= 0 && a < n[axis]) continue;
        const int src = wrap(a, n[axis]);
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c)
            std::memcpy(cell(a, b, c), cell(src, b, c), bs * sizeof(float));
      }
      continue;
    }
    require_ghost_fits("exchange_phase_space_halo", axis, n[axis], g,
                       cart.dims()[static_cast<std::size_t>(axis)]);

    auto pack = [&](int lo, int count, Range t1, Range t2,
                    std::vector<float>& buf) {
      buf.resize(static_cast<std::size_t>(count) * t1.count() * t2.count() *
                 bs);
      std::size_t o = 0;
      for (int a = lo; a < lo + count; ++a)
        for (int b = t1.lo; b < t1.hi; ++b)
          for (int c = t2.lo; c < t2.hi; ++c) {
            std::memcpy(buf.data() + o, cell(a, b, c), bs * sizeof(float));
            o += bs;
          }
    };
    auto unpack = [&](int lo, int count, Range t1, Range t2,
                      const std::vector<float>& buf) {
      std::size_t o = 0;
      for (int a = lo; a < lo + count; ++a)
        for (int b = t1.lo; b < t1.hi; ++b)
          for (int c = t2.lo; c < t2.hi; ++c) {
            std::memcpy(cell(a, b, c), buf.data() + o, bs * sizeof(float));
            o += bs;
          }
    };
    exchange_axis(cart, axis, n[axis], g, r[ta], r[tb], kHaloTagBase, pack,
                  unpack);
  }
}

namespace {

template <class T>
void exchange_grid_halo_impl(Grid3D<T>& grid, comm::CartTopology& cart) {
  if (cart.comm().size() == 1) {
    grid.fill_ghosts_periodic();
    return;
  }
  auto& comm = cart.comm();
  const int g = grid.ghost();
  if (g == 0) return;
  const int n[3] = {grid.nx(), grid.ny(), grid.nz()};

  for (int axis = 0; axis < 3; ++axis) {
    Range r[3];
    for (int t = 0; t < 3; ++t)
      r[t] = t < axis ? Range{-g, n[t] + g} : Range{0, n[t]};
    int ta = -1, tb = -1;
    for (int t = 0; t < 3; ++t) {
      if (t == axis) continue;
      (ta < 0 ? ta : tb) = t;
    }
    auto at = [&](int a, int b, int c) -> T& {
      int idx[3];
      idx[axis] = a;
      int tpos = 0;
      for (int t = 0; t < 3; ++t) {
        if (t == axis) continue;
        idx[t] = tpos == 0 ? b : c;
        ++tpos;
      }
      return grid.at(idx[0], idx[1], idx[2]);
    };
    if (cart.dims()[static_cast<std::size_t>(axis)] == 1) {
      for (int a = -g; a < n[axis] + g; ++a) {
        if (a >= 0 && a < n[axis]) continue;
        const int src = wrap(a, n[axis]);
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c) at(a, b, c) = at(src, b, c);
      }
      continue;
    }
    require_ghost_fits("exchange_grid_halo", axis, n[axis], g,
                       cart.dims()[static_cast<std::size_t>(axis)]);
    const auto nbr = cart.neighbors(axis);
    thread_local std::vector<T> send_hi, send_lo, recv_buf;
    auto pack = [&](int lo, std::vector<T>& buf) {
      buf.clear();
      buf.reserve(static_cast<std::size_t>(g) * r[ta].count() *
                  r[tb].count());
      for (int a = lo; a < lo + g; ++a)
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c) buf.push_back(at(a, b, c));
    };
    auto unpack = [&](int lo, int count, const std::vector<T>& buf) {
      std::size_t o = 0;
      for (int a = lo; a < lo + count; ++a)
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c) at(a, b, c) = buf[o++];
    };
    const int tag_fwd = kHaloTagBase + 50 + axis * 4;
    const int tag_bwd = kHaloTagBase + 50 + axis * 4 + 1;
    pack(n[axis] - g, send_hi);
    comm.send(nbr[1], tag_fwd, send_hi.data(), send_hi.size());
    pack(0, send_lo);
    comm.send(nbr[0], tag_bwd, send_lo.data(), send_lo.size());
    recv_buf.resize(send_hi.size());
    comm.recv(nbr[0], tag_fwd, recv_buf.data(), recv_buf.size());
    unpack(-g, g, recv_buf);
    recv_buf.resize(send_lo.size());
    comm.recv(nbr[1], tag_bwd, recv_buf.data(), recv_buf.size());
    unpack(n[axis], g, recv_buf);
  }
}

}  // namespace

void exchange_grid_halo(Grid3D<double>& g, comm::CartTopology& cart) {
  exchange_grid_halo_impl(g, cart);
}
void exchange_grid_halo(Grid3D<float>& g, comm::CartTopology& cart) {
  exchange_grid_halo_impl(g, cart);
}

void fold_grid_halo(Grid3D<double>& grid, comm::CartTopology& cart) {
  if (cart.comm().size() == 1) {
    grid.fold_ghosts_periodic();
    return;
  }
  auto& comm = cart.comm();
  const int g = grid.ghost();
  if (g == 0) return;
  const int n[3] = {grid.nx(), grid.ny(), grid.nz()};

  // Reverse order of the halo fill: fold z, then y, then x, shrinking the
  // transverse range as we go so every ghost contribution lands exactly once.
  for (int axis = 2; axis >= 0; --axis) {
    Range r[3];
    for (int t = 0; t < 3; ++t)
      r[t] = t < axis ? Range{-g, n[t] + g} : Range{0, n[t]};
    int ta = -1, tb = -1;
    for (int t = 0; t < 3; ++t) {
      if (t == axis) continue;
      (ta < 0 ? ta : tb) = t;
    }
    auto at = [&](int a, int b, int c) -> double& {
      int idx[3];
      idx[axis] = a;
      int tpos = 0;
      for (int t = 0; t < 3; ++t) {
        if (t == axis) continue;
        idx[t] = tpos == 0 ? b : c;
        ++tpos;
      }
      return grid.at(idx[0], idx[1], idx[2]);
    };
    if (cart.dims()[static_cast<std::size_t>(axis)] == 1) {
      // Undecomposed axis: fold ghosts onto their periodic interior image
      // locally (modulo wrap handles extents below the ghost width).
      for (int a = -g; a < n[axis] + g; ++a) {
        if (a >= 0 && a < n[axis]) continue;
        const int dst = wrap(a, n[axis]);
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c) {
            at(dst, b, c) += at(a, b, c);
            at(a, b, c) = 0.0;
          }
      }
      continue;
    }
    require_ghost_fits("fold_grid_halo", axis, n[axis], g,
                       cart.dims()[static_cast<std::size_t>(axis)]);
    const auto nbr = cart.neighbors(axis);
    thread_local std::vector<double> send_hi, send_lo, recv_buf;
    auto pack = [&](int lo, std::vector<double>& buf) {
      buf.clear();
      buf.reserve(static_cast<std::size_t>(g) * r[ta].count() *
                  r[tb].count());
      for (int a = lo; a < lo + g; ++a)
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c) {
            buf.push_back(at(a, b, c));
            at(a, b, c) = 0.0;
          }
    };
    auto add = [&](int lo, int count, const std::vector<double>& buf) {
      std::size_t o = 0;
      for (int a = lo; a < lo + count; ++a)
        for (int b = r[ta].lo; b < r[ta].hi; ++b)
          for (int c = r[tb].lo; c < r[tb].hi; ++c) at(a, b, c) += buf[o++];
    };
    const int tag_fwd = kFoldTagBase + axis * 4;
    const int tag_bwd = kFoldTagBase + axis * 4 + 1;
    // Our high ghosts belong to the forward neighbor's low interior.
    pack(n[axis], send_hi);
    comm.send(nbr[1], tag_fwd, send_hi.data(), send_hi.size());
    pack(-g, send_lo);
    comm.send(nbr[0], tag_bwd, send_lo.data(), send_lo.size());
    recv_buf.resize(send_hi.size());
    comm.recv(nbr[0], tag_fwd, recv_buf.data(), recv_buf.size());
    add(0, g, recv_buf);
    recv_buf.resize(send_lo.size());
    comm.recv(nbr[1], tag_bwd, recv_buf.data(), recv_buf.size());
    add(n[axis] - g, g, recv_buf);
  }
}

}  // namespace v6d::mesh
