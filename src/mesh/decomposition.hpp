// Brick decomposition of a global periodic grid over a Cartesian rank
// topology (paper §5.1.3: physical space is decomposed evenly along each
// axis; velocity space never is).
#pragma once

#include <array>

namespace v6d::mesh {

class BrickDecomposition {
 public:
  BrickDecomposition() = default;
  /// global[i] cells split over dims[i] ranks along axis i; this rank sits
  /// at coords[i].  Remainder cells go to the lowest-coordinate ranks.
  BrickDecomposition(std::array<int, 3> global, std::array<int, 3> dims,
                     std::array<int, 3> coords);

  std::array<int, 3> global() const { return global_; }
  std::array<int, 3> dims() const { return dims_; }
  std::array<int, 3> coords() const { return coords_; }

  /// Local interior cell count along `axis`.
  int local_n(int axis) const { return local_n_[static_cast<std::size_t>(axis)]; }
  /// Global index of the first local cell along `axis`.
  int offset(int axis) const { return offset_[static_cast<std::size_t>(axis)]; }

  /// Extents of an arbitrary rank's brick along an axis.
  static int share(int global, int parts, int coord);
  static int share_offset(int global, int parts, int coord);

  /// Which rank coordinate owns global cell index g along an axis.
  static int owner_coord(int global, int parts, int g);

 private:
  std::array<int, 3> global_{};
  std::array<int, 3> dims_{};
  std::array<int, 3> coords_{};
  std::array<int, 3> local_n_{};
  std::array<int, 3> offset_{};
};

}  // namespace v6d::mesh
