// Halo (ghost layer) exchange across the brick decomposition.
//
// Position-space Vlasov sweeps need `ghost` spatial layers of full velocity
// blocks from the neighboring bricks (paper §5.1.3: this copy dominates the
// position-sweep cost relative to the communication-free velocity sweeps).
// Mesh fields (density/potential) use the same pattern with scalar cells.
//
// The exchange runs axis by axis (x, then y, then z) over slabs that span
// the already-extended transverse range, so edge and corner ghosts are
// filled transitively.  Buffered sends keep periodic rings deadlock-free.
#pragma once

#include "comm/cart.hpp"
#include "mesh/grid.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::mesh {

/// Exchange all spatial ghost blocks of the local phase-space brick.
/// Single-rank topologies fall back to the periodic self-copy.
void exchange_phase_space_halo(vlasov::PhaseSpace& f,
                               comm::CartTopology& cart);

/// Exchange ghost cells of a scalar mesh field.
void exchange_grid_halo(Grid3D<double>& g, comm::CartTopology& cart);
void exchange_grid_halo(Grid3D<float>& g, comm::CartTopology& cart);

/// Add ghost-cell contributions onto the owning neighbor's interior and
/// zero the local ghosts (the parallel counterpart of
/// Grid3D::fold_ghosts_periodic; used after CIC deposits near brick edges).
void fold_grid_halo(Grid3D<double>& g, comm::CartTopology& cart);

}  // namespace v6d::mesh
