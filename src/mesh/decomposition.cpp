#include "mesh/decomposition.hpp"

namespace v6d::mesh {

BrickDecomposition::BrickDecomposition(std::array<int, 3> global,
                                       std::array<int, 3> dims,
                                       std::array<int, 3> coords)
    : global_(global), dims_(dims), coords_(coords) {
  for (int i = 0; i < 3; ++i) {
    const auto a = static_cast<std::size_t>(i);
    local_n_[a] = share(global[a], dims[a], coords[a]);
    offset_[a] = share_offset(global[a], dims[a], coords[a]);
  }
}

int BrickDecomposition::share(int global, int parts, int coord) {
  const int base = global / parts;
  const int extra = global % parts;
  return base + (coord < extra ? 1 : 0);
}

int BrickDecomposition::share_offset(int global, int parts, int coord) {
  const int base = global / parts;
  const int extra = global % parts;
  return coord * base + (coord < extra ? coord : extra);
}

int BrickDecomposition::owner_coord(int global, int parts, int g) {
  // Invert share_offset by scanning; parts is small (<= a few hundred).
  for (int c = parts - 1; c >= 0; --c)
    if (share_offset(global, parts, c) <= g) return c;
  return 0;
}

}  // namespace v6d::mesh
