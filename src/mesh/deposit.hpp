// Mass assignment (deposit) and field interpolation (gather) between
// particles and mesh, with the standard NGP / CIC / TSC kernels.
//
// The PM part of the TreePM solver deposits CDM particle mass with CIC
// (cloud-in-cell), solves Poisson in k-space, and gathers forces back at
// particle positions with the *same* kernel — using matching deposit and
// gather kernels keeps the self-force zero on a periodic mesh.
#pragma once

#include <span>

#include "mesh/grid.hpp"

namespace v6d::mesh {

enum class Assignment { kNgp, kCic, kTsc };

/// Geometry of the (local) mesh patch in global coordinates.
struct MeshPatch {
  double box = 1.0;       // global box length (cubic, periodic)
  int n_global = 1;       // global cells per axis (cubic)
  int offset[3] = {0, 0, 0};  // global index of local cell (0,0,0)

  double h() const { return box / n_global; }
};

/// Accumulate particle mass density onto the grid: rho += m_i W(x - x_i)/h^3.
/// Positions are global, periodic in [0, box).  Contributions within the
/// `ghost` ring are deposited to ghost cells; callers fold them afterwards
/// (Grid3D::fold_ghosts_periodic or mesh::fold_grid_halo).  CIC needs
/// ghost >= 1, TSC ghost >= 1 as well (their support is <= 1 cell beyond
/// the owner when the owner is local).
void deposit(Grid3D<double>& rho, const MeshPatch& patch,
             std::span<const double> x, std::span<const double> y,
             std::span<const double> z, double particle_mass,
             Assignment assignment);

/// Interpolate a mesh field to a particle position with the same kernels.
/// Requires filled ghosts (>= 1 layer for CIC/TSC).
double interpolate(const Grid3D<double>& field, const MeshPatch& patch,
                   double x, double y, double z, Assignment assignment);

/// 4th-order centered finite-difference gradient of a scalar field
/// (requires ghost >= 2, filled): out_d = d(field)/d(axis d).
void gradient_fd4(const Grid3D<double>& field, double h, Grid3D<double>& gx,
                  Grid3D<double>& gy, Grid3D<double>& gz);

}  // namespace v6d::mesh
