#include "mesh/interp.hpp"

#include <cassert>

namespace v6d::mesh {

void gather_forces(const Grid3D<double>& fx, const Grid3D<double>& fy,
                   const Grid3D<double>& fz, const MeshPatch& patch,
                   std::span<const double> x, std::span<const double> y,
                   std::span<const double> z, std::span<double> ax,
                   std::span<double> ay, std::span<double> az,
                   Assignment assignment) {
  assert(x.size() == ax.size());
  for (std::size_t p = 0; p < x.size(); ++p) {
    ax[p] = interpolate(fx, patch, x[p], y[p], z[p], assignment);
    ay[p] = interpolate(fy, patch, x[p], y[p], z[p], assignment);
    az[p] = interpolate(fz, patch, x[p], y[p], z[p], assignment);
  }
}

}  // namespace v6d::mesh
