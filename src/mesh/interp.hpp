// Higher-level gather helpers: interpolate force fields to many particle
// positions at once (the PM "gather" phase).
#pragma once

#include <span>

#include "mesh/deposit.hpp"

namespace v6d::mesh {

/// Gather the three force components at every particle position.
void gather_forces(const Grid3D<double>& fx, const Grid3D<double>& fy,
                   const Grid3D<double>& fz, const MeshPatch& patch,
                   std::span<const double> x, std::span<const double> y,
                   std::span<const double> z, std::span<double> ax,
                   std::span<double> ay, std::span<double> az,
                   Assignment assignment);

}  // namespace v6d::mesh
