// Precomputed plans + persistent buffers for the *overlapped* halo
// exchanges of the distributed stepping path (paper §5.1.3: halo exchange
// is the dominant non-compute cost; hiding it behind interior updates is
// what makes the Fugaku runs scale).
//
// mesh/halo.hpp keeps the blocking reference exchanges; the plans here
// restructure the same data movement into begin/finish halves so the
// caller can advect interior cells (or accumulate local density) while the
// face messages are in flight:
//
//  * HaloPlan — split single-axis phase-space exchange.  A position sweep
//    along axis a reads only that axis' ghost blocks at interior
//    transverse positions, so each sweep needs one face pair, not the full
//    transitively-extended 3-axis exchange.  begin_axis() packs both faces
//    into persistent buffers, posts the (buffered, non-blocking) sends and
//    the receive handles; finish_axis() completes the receives and unpacks
//    into the axis ghosts.  Undecomposed axes do the local periodic wrap
//    in begin_axis() (no communication to overlap).
//
//  * GridFoldPlan — split ghost-deposit fold.  begin() runs the fold from
//    axis z down through any local-wrap axes and stops after posting the
//    sends of the first decomposed axis; finish() completes that axis and
//    runs the remaining ones.  The per-axis operations and summation
//    order are exactly fold_grid_halo's, so the folded field is
//    bit-identical to the blocking path.
//
// Both plans accumulate the time spent *blocked* waiting for messages
// (take_wait()), which is the exposed communication cost the overlap
// metrics report; pack/unpack loops are OpenMP-parallel.
#pragma once

#include "comm/cart.hpp"
#include "common/aligned.hpp"
#include "mesh/grid.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::mesh {

class HaloPlan {
 public:
  struct AxisPlan {
    bool decomposed = false;  // more than one rank along the axis
    bool split = false;       // overlap-eligible: decomposed and n >= 2*ghost
    int n = 0;                // local interior extent along the axis
    int t1n = 0, t2n = 0;     // interior transverse extents (ascending axes)
    std::size_t face_floats = 0;  // ghost * t1n * t2n * block_size
  };

  HaloPlan() = default;
  /// Plan the single-axis face exchanges for bricks of shape `dims` on
  /// `cart`.  `tag_base` must be distinct from every other exchange kind
  /// live on the same communicator.  Throws std::invalid_argument if a
  /// decomposed axis is thinner than the ghost width (same rule as
  /// exchange_phase_space_halo).
  HaloPlan(comm::CartTopology& cart, const vlasov::PhaseSpaceDims& dims,
           int tag_base);

  const AxisPlan& axis(int a) const {
    return axes_[static_cast<std::size_t>(a)];
  }

  /// Pack + send both faces of `axis` and post the ghost receives
  /// (undecomposed axes locally wrap instead).  The caller may mutate any
  /// interior cell except the two ghost-width face shells until
  /// finish_axis() returns.
  void begin_axis(vlasov::PhaseSpace& f, int axis);
  /// Complete both receives and unpack them into the axis ghosts at
  /// interior transverse positions.  No-op for undecomposed axes.
  void finish_axis(vlasov::PhaseSpace& f, int axis);

  /// Complete both receives of a *split* axis straight into the overlapped
  /// sweep's boundary windows, skipping f's ghost blocks entirely: a face
  /// payload has exactly the window-chunk layout ([layer][t1][t2][block]),
  /// so completion is two plain copies.  `lo_face` receives the backward
  /// neighbor's face (window cells [-ghost, 0)), `hi_face` the forward
  /// one's (window cells [n, n+ghost)); each must hold axis(a).face_floats
  /// floats.  Only valid after begin_axis on a decomposed axis.
  void finish_axis_into(float* lo_face, float* hi_face, int axis);

  /// Seconds spent blocked in message waits since the last call (the
  /// exposed, un-overlapped communication time).
  double take_wait() {
    const double w = wait_s_;
    wait_s_ = 0.0;
    return w;
  }

 private:
  void wrap_axis(vlasov::PhaseSpace& f, int axis) const;
  void pack_face(const vlasov::PhaseSpace& f, int axis, int lo,
                 float* buf) const;
  void unpack_face(vlasov::PhaseSpace& f, int axis, int lo,
                   const float* buf) const;

  comm::CartTopology* cart_ = nullptr;
  int tag_base_ = 0;
  int ghost_ = 0;
  std::size_t block_ = 0;
  std::array<AxisPlan, 3> axes_{};
  std::array<AlignedVector<float>, 3> send_lo_, send_hi_;
  AlignedVector<float> recv_buf_;
  std::array<comm::Communicator::RecvHandle, 3> pending_lo_, pending_hi_;
  double wait_s_ = 0.0;
};

class GridFoldPlan {
 public:
  GridFoldPlan() = default;
  GridFoldPlan(comm::CartTopology& cart, int tag_base)
      : cart_(&cart), tag_base_(tag_base) {}

  /// Start the fold: single-rank topologies run the (whole) periodic fold
  /// here; otherwise axes z -> x are folded locally until the first
  /// decomposed axis, whose ghost sends are posted.  The caller must not
  /// touch `grid` until finish().
  void begin(Grid3D<double>& grid);
  /// Complete the posted axis and fold the remaining ones (blocking, with
  /// persistent buffers).  begin()/finish() together perform exactly
  /// fold_grid_halo's operations in the same order.
  void finish(Grid3D<double>& grid);

  double take_wait() {
    const double w = wait_s_;
    wait_s_ = 0.0;
    return w;
  }

 private:
  void fold_axis_wrap(Grid3D<double>& grid, int axis) const;
  void post_axis(Grid3D<double>& grid, int axis);
  void complete_axis(Grid3D<double>& grid, int axis);

  comm::CartTopology* cart_ = nullptr;
  int tag_base_ = 0;
  int pending_axis_ = -1;
  std::vector<double> send_lo_, send_hi_, recv_buf_;
  comm::Communicator::RecvHandle h_lo_, h_hi_;
  double wait_s_ = 0.0;
};

}  // namespace v6d::mesh
