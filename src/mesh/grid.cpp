#include "mesh/grid.hpp"

// Grid3D is header-only; this translation unit pins explicit instantiations
// of the common element types so template code is compiled (and warned
// about) exactly once.
namespace v6d::mesh {

template class Grid3D<float>;
template class Grid3D<double>;

}  // namespace v6d::mesh
