#include "mesh/halo_plan.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "common/timer.hpp"
#include "common/trace.hpp"

namespace v6d::mesh {

namespace {

inline int wrap(int i, int n) { return ((i % n) + n) % n; }

// Identify the two transverse axes of `axis` in increasing order.
inline void transverse_axes(int axis, int& ta, int& tb) {
  ta = -1;
  tb = -1;
  for (int t = 0; t < 3; ++t) {
    if (t == axis) continue;
    (ta < 0 ? ta : tb) = t;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// HaloPlan — split single-axis phase-space face exchange
// ---------------------------------------------------------------------------

HaloPlan::HaloPlan(comm::CartTopology& cart,
                   const vlasov::PhaseSpaceDims& dims, int tag_base)
    : cart_(&cart), tag_base_(tag_base), ghost_(dims.ghost),
      block_(dims.velocity_cells()) {
  const int n[3] = {dims.nx, dims.ny, dims.nz};
  std::size_t max_face = 0;
  for (int axis = 0; axis < 3; ++axis) {
    auto& ap = axes_[static_cast<std::size_t>(axis)];
    int ta = 0, tb = 0;
    transverse_axes(axis, ta, tb);
    ap.n = n[axis];
    ap.t1n = n[ta];
    ap.t2n = n[tb];
    ap.decomposed = cart.dims()[static_cast<std::size_t>(axis)] > 1;
    ap.split = ap.decomposed && ap.n >= 2 * ghost_;
    ap.face_floats = static_cast<std::size_t>(ghost_) * ap.t1n * ap.t2n *
                     block_;
    if (ap.decomposed && ap.n < ghost_)
      throw std::invalid_argument(
          "HaloPlan: local extent " + std::to_string(ap.n) + " along axis " +
          std::to_string(axis) + " is smaller than the ghost width " +
          std::to_string(ghost_) + "; use fewer ranks along this axis");
    if (ap.decomposed) {
      send_lo_[static_cast<std::size_t>(axis)].resize(ap.face_floats);
      send_hi_[static_cast<std::size_t>(axis)].resize(ap.face_floats);
      max_face = std::max(max_face, ap.face_floats);
    }
  }
  recv_buf_.resize(max_face);
}

void HaloPlan::pack_face(const vlasov::PhaseSpace& f, int axis, int lo,
                         float* buf) const {
  const auto& ap = axes_[static_cast<std::size_t>(axis)];
  const std::size_t row = static_cast<std::size_t>(ap.t2n) * block_;
  const std::size_t bytes = block_ * sizeof(float);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
  for (int a = 0; a < ghost_; ++a)
    for (int b = 0; b < ap.t1n; ++b) {
      std::size_t o = (static_cast<std::size_t>(a) * ap.t1n + b) * row;
      for (int c = 0; c < ap.t2n; ++c, o += block_) {
        int idx[3];
        idx[axis] = lo + a;
        int tpos = 0;
        for (int t = 0; t < 3; ++t) {
          if (t == axis) continue;
          idx[t] = tpos == 0 ? b : c;
          ++tpos;
        }
        std::memcpy(buf + o, f.block(idx[0], idx[1], idx[2]), bytes);
      }
    }
}

void HaloPlan::unpack_face(vlasov::PhaseSpace& f, int axis, int lo,
                           const float* buf) const {
  const auto& ap = axes_[static_cast<std::size_t>(axis)];
  const std::size_t row = static_cast<std::size_t>(ap.t2n) * block_;
  const std::size_t bytes = block_ * sizeof(float);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
  for (int a = 0; a < ghost_; ++a)
    for (int b = 0; b < ap.t1n; ++b) {
      std::size_t o = (static_cast<std::size_t>(a) * ap.t1n + b) * row;
      for (int c = 0; c < ap.t2n; ++c, o += block_) {
        int idx[3];
        idx[axis] = lo + a;
        int tpos = 0;
        for (int t = 0; t < 3; ++t) {
          if (t == axis) continue;
          idx[t] = tpos == 0 ? b : c;
          ++tpos;
        }
        std::memcpy(f.block(idx[0], idx[1], idx[2]), buf + o, bytes);
      }
    }
}

void HaloPlan::wrap_axis(vlasov::PhaseSpace& f, int axis) const {
  // Whole axis on this rank: the ghosts are the local periodic image (the
  // modulo handles extents below the ghost width, as in halo.cpp).
  const auto& ap = axes_[static_cast<std::size_t>(axis)];
  const std::size_t bytes = block_ * sizeof(float);
  for (int a = -ghost_; a < ap.n + ghost_; ++a) {
    if (a >= 0 && a < ap.n) continue;
    const int src = wrap(a, ap.n);
    for (int b = 0; b < ap.t1n; ++b)
      for (int c = 0; c < ap.t2n; ++c) {
        int idx[3], sidx[3];
        idx[axis] = a;
        sidx[axis] = src;
        int tpos = 0;
        for (int t = 0; t < 3; ++t) {
          if (t == axis) continue;
          idx[t] = sidx[t] = tpos == 0 ? b : c;
          ++tpos;
        }
        std::memcpy(f.block(idx[0], idx[1], idx[2]),
                    f.block(sidx[0], sidx[1], sidx[2]), bytes);
      }
  }
}

void HaloPlan::begin_axis(vlasov::PhaseSpace& f, int axis) {
  trace::Span span("halo-begin");
  const auto& ap = axes_[static_cast<std::size_t>(axis)];
  if (!ap.decomposed) {
    wrap_axis(f, axis);
    return;
  }
  auto& comm = cart_->comm();
  const auto nbr = cart_->neighbors(axis);
  const auto ax = static_cast<std::size_t>(axis);
  const int tag_fwd = tag_base_ + axis * 4 + 0;  // travelling +axis
  const int tag_bwd = tag_base_ + axis * 4 + 1;  // travelling -axis
  // High interior -> forward neighbor's low ghosts, and vice versa
  // (buffered sends: posting both before any receive cannot deadlock).
  pack_face(f, axis, ap.n - ghost_, send_hi_[ax].data());
  comm.send(nbr[1], tag_fwd, send_hi_[ax].data(), ap.face_floats);
  pack_face(f, axis, 0, send_lo_[ax].data());
  comm.send(nbr[0], tag_bwd, send_lo_[ax].data(), ap.face_floats);
  pending_lo_[ax] = comm.irecv(nbr[0], tag_fwd);
  pending_hi_[ax] = comm.irecv(nbr[1], tag_bwd);
}

void HaloPlan::finish_axis(vlasov::PhaseSpace& f, int axis) {
  trace::Span span("halo-finish");
  const auto& ap = axes_[static_cast<std::size_t>(axis)];
  if (!ap.decomposed) return;
  const auto ax = static_cast<std::size_t>(axis);
  {
    trace::Span wait_span("halo-wait");
    Stopwatch w;
    pending_lo_[ax].wait_into(recv_buf_.data(), ap.face_floats);
    wait_s_ += w.seconds();
  }
  unpack_face(f, axis, -ghost_, recv_buf_.data());
  {
    trace::Span wait_span("halo-wait");
    Stopwatch w;
    pending_hi_[ax].wait_into(recv_buf_.data(), ap.face_floats);
    wait_s_ += w.seconds();
  }
  unpack_face(f, axis, ap.n, recv_buf_.data());
}

void HaloPlan::finish_axis_into(float* lo_face, float* hi_face, int axis) {
  trace::Span span("halo-finish");
  const auto& ap = axes_[static_cast<std::size_t>(axis)];
  const auto ax = static_cast<std::size_t>(axis);
  {
    trace::Span wait_span("halo-wait");
    Stopwatch w;
    pending_lo_[ax].wait_into(lo_face, ap.face_floats);
    wait_s_ += w.seconds();
  }
  {
    trace::Span wait_span("halo-wait");
    Stopwatch w;
    pending_hi_[ax].wait_into(hi_face, ap.face_floats);
    wait_s_ += w.seconds();
  }
}

// ---------------------------------------------------------------------------
// GridFoldPlan — split ghost-deposit fold
// ---------------------------------------------------------------------------

namespace {

struct FoldRange {
  int lo, hi;
  int count() const { return hi - lo; }
};

// Transverse ranges of `axis` in the fold order (z, then y, then x): axes
// *below* the current one still carry live ghost contributions and must be
// included; higher axes are already folded.  Mirrors fold_grid_halo.
inline void fold_ranges(const Grid3D<double>& grid, int axis, FoldRange r[3]) {
  const int g = grid.ghost();
  const int n[3] = {grid.nx(), grid.ny(), grid.nz()};
  for (int t = 0; t < 3; ++t)
    r[t] = t < axis ? FoldRange{-g, n[t] + g} : FoldRange{0, n[t]};
}

inline double& fold_at(Grid3D<double>& grid, int axis, int a, int b, int c) {
  int idx[3];
  idx[axis] = a;
  int tpos = 0;
  for (int t = 0; t < 3; ++t) {
    if (t == axis) continue;
    idx[t] = tpos == 0 ? b : c;
    ++tpos;
  }
  return grid.at(idx[0], idx[1], idx[2]);
}

}  // namespace

void GridFoldPlan::fold_axis_wrap(Grid3D<double>& grid, int axis) const {
  const int g = grid.ghost();
  const int n = axis == 0 ? grid.nx() : axis == 1 ? grid.ny() : grid.nz();
  FoldRange r[3];
  fold_ranges(grid, axis, r);
  int ta = 0, tb = 0;
  transverse_axes(axis, ta, tb);
  for (int a = -g; a < n + g; ++a) {
    if (a >= 0 && a < n) continue;
    const int dst = wrap(a, n);
    for (int b = r[ta].lo; b < r[ta].hi; ++b)
      for (int c = r[tb].lo; c < r[tb].hi; ++c) {
        fold_at(grid, axis, dst, b, c) += fold_at(grid, axis, a, b, c);
        fold_at(grid, axis, a, b, c) = 0.0;
      }
  }
}

void GridFoldPlan::post_axis(Grid3D<double>& grid, int axis) {
  const int g = grid.ghost();
  const int n = axis == 0 ? grid.nx() : axis == 1 ? grid.ny() : grid.nz();
  if (n < g)
    throw std::invalid_argument(
        "GridFoldPlan: local extent " + std::to_string(n) + " along axis " +
        std::to_string(axis) + " is smaller than the ghost width " +
        std::to_string(g) + "; use fewer ranks along this axis");
  FoldRange r[3];
  fold_ranges(grid, axis, r);
  int ta = 0, tb = 0;
  transverse_axes(axis, ta, tb);
  const std::size_t count =
      static_cast<std::size_t>(g) * r[ta].count() * r[tb].count();
  auto pack = [&](int lo, std::vector<double>& buf) {
    buf.resize(count);
    std::size_t o = 0;
    for (int a = lo; a < lo + g; ++a)
      for (int b = r[ta].lo; b < r[ta].hi; ++b)
        for (int c = r[tb].lo; c < r[tb].hi; ++c) {
          buf[o++] = fold_at(grid, axis, a, b, c);
          fold_at(grid, axis, a, b, c) = 0.0;
        }
  };
  auto& comm = cart_->comm();
  const auto nbr = cart_->neighbors(axis);
  const int tag_fwd = tag_base_ + axis * 4;
  const int tag_bwd = tag_base_ + axis * 4 + 1;
  // Our high ghosts belong to the forward neighbor's low interior.
  pack(n, send_hi_);
  comm.send(nbr[1], tag_fwd, send_hi_.data(), send_hi_.size());
  pack(-g, send_lo_);
  comm.send(nbr[0], tag_bwd, send_lo_.data(), send_lo_.size());
  h_lo_ = comm.irecv(nbr[0], tag_fwd);
  h_hi_ = comm.irecv(nbr[1], tag_bwd);
}

void GridFoldPlan::complete_axis(Grid3D<double>& grid, int axis) {
  const int g = grid.ghost();
  const int n = axis == 0 ? grid.nx() : axis == 1 ? grid.ny() : grid.nz();
  FoldRange r[3];
  fold_ranges(grid, axis, r);
  int ta = 0, tb = 0;
  transverse_axes(axis, ta, tb);
  const std::size_t count =
      static_cast<std::size_t>(g) * r[ta].count() * r[tb].count();
  auto add = [&](int lo) {
    std::size_t o = 0;
    for (int a = lo; a < lo + g; ++a)
      for (int b = r[ta].lo; b < r[ta].hi; ++b)
        for (int c = r[tb].lo; c < r[tb].hi; ++c)
          fold_at(grid, axis, a, b, c) += recv_buf_[o++];
  };
  recv_buf_.resize(count);
  {
    trace::Span wait_span("fold-wait");
    Stopwatch w;
    h_lo_.wait_into(recv_buf_.data(), count);
    wait_s_ += w.seconds();
  }
  add(0);
  {
    trace::Span wait_span("fold-wait");
    Stopwatch w;
    h_hi_.wait_into(recv_buf_.data(), count);
    wait_s_ += w.seconds();
  }
  add(n - g);
}

void GridFoldPlan::begin(Grid3D<double>& grid) {
  trace::Span span("fold-begin");
  pending_axis_ = -1;
  if (cart_->comm().size() == 1) {
    // Bit-identical to the blocking path: the single-rank fold is the
    // direct periodic scan, not the axis-by-axis chain.
    grid.fold_ghosts_periodic();
    return;
  }
  if (grid.ghost() == 0) return;
  for (int axis = 2; axis >= 0; --axis) {
    if (cart_->dims()[static_cast<std::size_t>(axis)] == 1) {
      fold_axis_wrap(grid, axis);
      continue;
    }
    post_axis(grid, axis);
    pending_axis_ = axis;
    return;
  }
}

void GridFoldPlan::finish(Grid3D<double>& grid) {
  trace::Span span("fold-finish");
  if (pending_axis_ < 0) return;
  complete_axis(grid, pending_axis_);
  for (int axis = pending_axis_ - 1; axis >= 0; --axis) {
    if (cart_->dims()[static_cast<std::size_t>(axis)] == 1) {
      fold_axis_wrap(grid, axis);
      continue;
    }
    post_axis(grid, axis);
    complete_axis(grid, axis);
  }
  pending_axis_ = -1;
}

}  // namespace v6d::mesh
