// Shot-noise and effective-resolution metrics (paper §7.2, Eq. 9-10).
#pragma once

#include "diagnostics/spectra.hpp"

namespace v6d::diag {

/// Effective spatial resolution of an N-body neutrino field smoothed to
/// reach signal-to-noise S/N (paper Eq. 9): DeltaL = L / N^(1/3) * (S/N)^(2/3).
double equivalent_resolution(double box, double n_particles,
                             double signal_to_noise);

/// Average measured P(k) over the top `frac` of the k range — near the
/// Nyquist frequency a Poisson-sampled field is shot-noise dominated, so
/// this estimates the noise floor.
double high_k_power(const std::vector<SpectrumBin>& bins, double frac = 0.25);

/// Ratio of measured small-scale power to the analytic Poisson level
/// (~1 for pure shot noise, >> 1 for resolved structure).
double shot_noise_excess(const std::vector<SpectrumBin>& bins, double box,
                         double n_particles);

}  // namespace v6d::diag
