// 2-D projections of 3-D fields (the density maps of Figs. 4, 6, 8).
#pragma once

#include <string>
#include <vector>

#include "mesh/grid.hpp"

namespace v6d::diag {

struct Map2D {
  int nx = 0, ny = 0;
  std::vector<double> values;  // row-major, ny contiguous

  double& at(int i, int j) { return values[static_cast<std::size_t>(i) * ny + j]; }
  double at(int i, int j) const {
    return values[static_cast<std::size_t>(i) * ny + j];
  }
  double min() const;
  double max() const;
  double mean() const;
  /// rms of log10(value/mean) over positive cells — the clustering
  /// contrast statistic quoted for the paper's density maps.
  double log_contrast_rms() const;
};

/// Project (average) along the z axis.
Map2D project_z(const mesh::Grid3D<double>& field);

/// Project a sub-box [lo, hi) cells (zoom levels of Fig. 8).
Map2D project_z_region(const mesh::Grid3D<double>& field, int lo, int hi);

/// log10(value / mean) of a map, for visual output.
Map2D log_overdensity(const Map2D& map);

}  // namespace v6d::diag
