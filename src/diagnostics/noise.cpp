#include "diagnostics/noise.hpp"

#include <cmath>

namespace v6d::diag {

double equivalent_resolution(double box, double n_particles,
                             double signal_to_noise) {
  // Paper Eq. 9: smoothing over Ns = (S/N)^2 particles gives
  // DeltaL = Ns^(1/3) L / N^(1/3).
  const double ns = signal_to_noise * signal_to_noise;
  return std::cbrt(ns) * box / std::cbrt(n_particles);
}

double high_k_power(const std::vector<SpectrumBin>& bins, double frac) {
  if (bins.empty()) return 0.0;
  const std::size_t start =
      static_cast<std::size_t>((1.0 - frac) * static_cast<double>(bins.size()));
  double acc = 0.0;
  long count = 0;
  for (std::size_t b = start; b < bins.size(); ++b) {
    if (bins[b].modes == 0) continue;
    acc += bins[b].power;
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

double shot_noise_excess(const std::vector<SpectrumBin>& bins, double box,
                         double n_particles) {
  const double shot = shot_noise_level(box, n_particles);
  return shot > 0.0 ? high_k_power(bins) / shot : 0.0;
}

}  // namespace v6d::diag
