#include "diagnostics/projections.hpp"

#include <algorithm>
#include <cmath>

namespace v6d::diag {

double Map2D::min() const {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}
double Map2D::max() const {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}
double Map2D::mean() const {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double Map2D::log_contrast_rms() const {
  const double m = mean();
  if (m <= 0.0) return 0.0;
  double acc = 0.0;
  long count = 0;
  for (double v : values) {
    if (v <= 0.0) continue;
    const double l = std::log10(v / m);
    acc += l * l;
    ++count;
  }
  return count > 0 ? std::sqrt(acc / static_cast<double>(count)) : 0.0;
}

Map2D project_z(const mesh::Grid3D<double>& field) {
  return project_z_region(field, 0, field.nz());
}

Map2D project_z_region(const mesh::Grid3D<double>& field, int lo, int hi) {
  Map2D map;
  map.nx = field.nx();
  map.ny = field.ny();
  map.values.assign(static_cast<std::size_t>(map.nx) * map.ny, 0.0);
  const int depth = hi - lo;
  for (int i = 0; i < field.nx(); ++i)
    for (int j = 0; j < field.ny(); ++j) {
      double acc = 0.0;
      for (int k = lo; k < hi; ++k) acc += field.at(i, j, k);
      map.at(i, j) = acc / std::max(1, depth);
    }
  return map;
}

Map2D log_overdensity(const Map2D& map) {
  Map2D out = map;
  const double mean = map.mean();
  for (double& v : out.values)
    v = (v > 0.0 && mean > 0.0) ? std::log10(v / mean) : -10.0;
  return out;
}

}  // namespace v6d::diag
