#include "diagnostics/spectra.hpp"

#include <cmath>
#include <complex>

#include "fft/fft3d.hpp"

namespace v6d::diag {

namespace {

inline int signed_mode(int i, int n) { return i <= n / 2 ? i : i - n; }

std::vector<fft::cplx> delta_spectrum(const mesh::Grid3D<double>& rho) {
  const int n = rho.nx();
  const double mean = rho.sum_interior() / rho.interior_size();
  std::vector<fft::cplx> spec(rho.interior_size());
  std::size_t o = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k)
        spec[o++] = fft::cplx(
            mean > 0.0 ? rho.at(i, j, k) / mean - 1.0 : rho.at(i, j, k), 0.0);
  fft::Fft3D fft(n, n, n);
  fft.forward(spec.data());
  return spec;
}

}  // namespace

std::vector<SpectrumBin> measure_power(const mesh::Grid3D<double>& rho,
                                       double box) {
  const int n = rho.nx();
  const auto spec = delta_spectrum(rho);
  const double kf = 2.0 * M_PI / box;
  const double volume = box * box * box;
  const double n3 = static_cast<double>(n) * n * n;
  // delta_k from the unnormalized FFT carries a factor N^3; the discrete
  // estimator is P(k) = V |delta_k / N^3|^2.
  const double norm = volume / (n3 * n3);

  const int nbins = n / 2;
  std::vector<SpectrumBin> bins(static_cast<std::size_t>(nbins));
  std::vector<double> ksum(static_cast<std::size_t>(nbins), 0.0);
  std::size_t o = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k, ++o) {
        const int mi = signed_mode(i, n), mj = signed_mode(j, n),
                  mk = signed_mode(k, n);
        const double km = kf * std::sqrt(static_cast<double>(mi) * mi +
                                         static_cast<double>(mj) * mj +
                                         static_cast<double>(mk) * mk);
        if (km == 0.0) continue;
        const int bin = static_cast<int>(km / kf - 0.5);
        if (bin < 0 || bin >= nbins) continue;
        const double p = std::norm(spec[o]) * norm;
        bins[static_cast<std::size_t>(bin)].power += p;
        bins[static_cast<std::size_t>(bin)].modes += 1;
        ksum[static_cast<std::size_t>(bin)] += km;
      }
  for (int b = 0; b < nbins; ++b) {
    auto& bin = bins[static_cast<std::size_t>(b)];
    if (bin.modes > 0) {
      bin.power /= static_cast<double>(bin.modes);
      bin.k = ksum[static_cast<std::size_t>(b)] / static_cast<double>(bin.modes);
    } else {
      bin.k = kf * (b + 1);
    }
  }
  return bins;
}

std::vector<double> cross_correlation(const mesh::Grid3D<double>& a,
                                      const mesh::Grid3D<double>& b,
                                      double box,
                                      std::vector<SpectrumBin>* bins_out) {
  const int n = a.nx();
  const auto sa = delta_spectrum(a);
  const auto sb = delta_spectrum(b);
  const double kf = 2.0 * M_PI / box;
  const int nbins = n / 2;
  std::vector<double> pab(static_cast<std::size_t>(nbins), 0.0),
      paa(static_cast<std::size_t>(nbins), 0.0),
      pbb(static_cast<std::size_t>(nbins), 0.0);
  std::vector<SpectrumBin> bins(static_cast<std::size_t>(nbins));

  std::size_t o = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k, ++o) {
        const int mi = signed_mode(i, n), mj = signed_mode(j, n),
                  mk = signed_mode(k, n);
        const double km = kf * std::sqrt(static_cast<double>(mi) * mi +
                                         static_cast<double>(mj) * mj +
                                         static_cast<double>(mk) * mk);
        if (km == 0.0) continue;
        const int bin = static_cast<int>(km / kf - 0.5);
        if (bin < 0 || bin >= nbins) continue;
        const auto ib = static_cast<std::size_t>(bin);
        pab[ib] += (sa[o] * std::conj(sb[o])).real();
        paa[ib] += std::norm(sa[o]);
        pbb[ib] += std::norm(sb[o]);
        bins[ib].modes += 1;
        bins[ib].k += km;
      }
  std::vector<double> r(static_cast<std::size_t>(nbins), 0.0);
  for (int bidx = 0; bidx < nbins; ++bidx) {
    const auto ib = static_cast<std::size_t>(bidx);
    if (bins[ib].modes > 0) {
      bins[ib].k /= static_cast<double>(bins[ib].modes);
      const double denom = std::sqrt(paa[ib] * pbb[ib]);
      r[ib] = denom > 0.0 ? pab[ib] / denom : 0.0;
    }
  }
  if (bins_out) *bins_out = bins;
  return r;
}

}  // namespace v6d::diag
