#include "diagnostics/field_compare.hpp"

#include <cmath>

namespace v6d::diag {

FieldDiff compare_fields(const mesh::Grid3D<double>& a,
                         const mesh::Grid3D<double>& b) {
  FieldDiff d;
  double sum_abs = 0.0, sum_sq = 0.0, sum_a2 = 0.0;
  double sa = 0.0, sb = 0.0, sab = 0.0, saa = 0.0, sbb = 0.0;
  const double n = static_cast<double>(a.interior_size());
  for (int i = 0; i < a.nx(); ++i)
    for (int j = 0; j < a.ny(); ++j)
      for (int k = 0; k < a.nz(); ++k) {
        const double va = a.at(i, j, k), vb = b.at(i, j, k);
        const double diff = va - vb;
        sum_abs += std::fabs(diff);
        sum_sq += diff * diff;
        sum_a2 += va * va;
        d.linf = std::max(d.linf, std::fabs(diff));
        sa += va;
        sb += vb;
        sab += va * vb;
        saa += va * va;
        sbb += vb * vb;
      }
  d.l1 = sum_abs / n;
  d.l2 = std::sqrt(sum_sq / n);
  d.rel_l2 = sum_a2 > 0.0 ? std::sqrt(sum_sq / sum_a2) : 0.0;
  const double cov = sab / n - (sa / n) * (sb / n);
  const double var_a = saa / n - (sa / n) * (sa / n);
  const double var_b = sbb / n - (sb / n) * (sb / n);
  d.correlation =
      var_a > 0.0 && var_b > 0.0 ? cov / std::sqrt(var_a * var_b) : 0.0;
  return d;
}

}  // namespace v6d::diag
