// Velocity-distribution probe at a single spatial cell (Fig. 5): the
// Vlasov f(ux, uy) slice (integrated over uz) versus the velocities of the
// N-body particles occupying the same cell.
#pragma once

#include <vector>

#include "nbody/particles.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::diag {

struct VdfSlice {
  int nux = 0, nuy = 0;
  double umax = 0.0;
  std::vector<double> values;  // f integrated over uz; row-major, nuy contig

  double at(int a, int b) const {
    return values[static_cast<std::size_t>(a) * nuy + b];
  }
  double max() const;
  /// Number of decades of f resolved between the peak and the smallest
  /// positive value — the "smooth, long-tailed distribution" statistic.
  double resolved_decades() const;
};

/// Integrate f over uz at spatial cell (ix, iy, iz).
VdfSlice probe_vdf(const vlasov::PhaseSpace& f, int ix, int iy, int iz);

struct CellParticles {
  std::vector<double> ux, uy, uz;
};

/// Velocities of all particles inside spatial cell (ix, iy, iz) of a grid
/// with cell size (box / n) per axis.
CellParticles particles_in_cell(const nbody::Particles& particles,
                                double box, int n, int ix, int iy, int iz);

}  // namespace v6d::diag
