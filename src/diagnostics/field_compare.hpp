// Field-versus-field error metrics (Vlasov vs N-body comparisons, Fig. 6).
#pragma once

#include "mesh/grid.hpp"

namespace v6d::diag {

struct FieldDiff {
  double l1 = 0.0;        // mean |a - b|
  double l2 = 0.0;        // rms difference
  double linf = 0.0;      // max difference
  double rel_l2 = 0.0;    // rms difference / rms of a
  double correlation = 0.0;  // Pearson correlation of the two fields
};

FieldDiff compare_fields(const mesh::Grid3D<double>& a,
                         const mesh::Grid3D<double>& b);

}  // namespace v6d::diag
