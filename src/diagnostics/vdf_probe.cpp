#include "diagnostics/vdf_probe.hpp"

#include <algorithm>
#include <cmath>

namespace v6d::diag {

double VdfSlice::max() const {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

double VdfSlice::resolved_decades() const {
  const double peak = max();
  if (peak <= 0.0) return 0.0;
  double smallest = peak;
  for (double v : values)
    if (v > 0.0) smallest = std::min(smallest, v);
  return std::log10(peak / smallest);
}

VdfSlice probe_vdf(const vlasov::PhaseSpace& f, int ix, int iy, int iz) {
  const auto& d = f.dims();
  VdfSlice slice;
  slice.nux = d.nux;
  slice.nuy = d.nuy;
  slice.umax = f.geom().umax;
  slice.values.assign(static_cast<std::size_t>(d.nux) * d.nuy, 0.0);
  const float* block = f.block(ix, iy, iz);
  for (int a = 0; a < d.nux; ++a)
    for (int b = 0; b < d.nuy; ++b) {
      double acc = 0.0;
      for (int c = 0; c < d.nuz; ++c)
        acc += block[f.velocity_index(a, b, c)];
      slice.values[static_cast<std::size_t>(a) * d.nuy + b] =
          acc * f.geom().duz;
    }
  return slice;
}

CellParticles particles_in_cell(const nbody::Particles& particles,
                                double box, int n, int ix, int iy, int iz) {
  CellParticles out;
  const double h = box / n;
  for (std::size_t p = 0; p < particles.size(); ++p) {
    const int ci = static_cast<int>(particles.x[p] / h);
    const int cj = static_cast<int>(particles.y[p] / h);
    const int ck = static_cast<int>(particles.z[p] / h);
    if (ci == ix && cj == iy && ck == iz) {
      out.ux.push_back(particles.ux[p]);
      out.uy.push_back(particles.uy[p]);
      out.uz.push_back(particles.uz[p]);
    }
  }
  return out;
}

}  // namespace v6d::diag
