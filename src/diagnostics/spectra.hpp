// Power-spectrum measurement of gridded density fields.
#pragma once

#include <vector>

#include "mesh/grid.hpp"

namespace v6d::diag {

struct SpectrumBin {
  double k = 0.0;       // bin-average wavenumber [h/Mpc]
  double power = 0.0;   // P(k) [(h^-1 Mpc)^3]
  long modes = 0;       // mode count in the bin
};

/// P(k) of the overdensity of `rho` (delta = rho/<rho> - 1) on a periodic
/// box of length `box`.  Bins are linear in k with width 2*pi/box.
std::vector<SpectrumBin> measure_power(const mesh::Grid3D<double>& rho,
                                       double box);

/// Cross-correlation coefficient r(k) = P_ab / sqrt(P_a P_b) per bin.
std::vector<double> cross_correlation(const mesh::Grid3D<double>& a,
                                      const mesh::Grid3D<double>& b,
                                      double box,
                                      std::vector<SpectrumBin>* bins = nullptr);

/// Poisson shot-noise level V / N for a sampled field.
inline double shot_noise_level(double box, double n_particles) {
  return box * box * box / n_particles;
}

}  // namespace v6d::diag
