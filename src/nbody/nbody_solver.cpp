#include "nbody/nbody_solver.hpp"

namespace v6d::nbody {

NBodySolver::NBodySolver(double box, const cosmo::Background& background,
                         const NBodySolverOptions& options)
    : box_(box), background_(background), options_(options) {
  treepm_ = std::make_unique<gravity::TreePmSolver>(box, options.treepm);
}

void NBodySolver::compute_forces(double a) {
  const double prefactor = poisson_prefactor(a);
  auto& pm = treepm_->pm();

  // --- mesh (PM long-range) from *all* species ---
  {
    Stopwatch watch;
    pm.set_prefactor(prefactor);
    pm.clear_density();
    pm.deposit_particles(cdm_);
    if (hot_) pm.deposit_particles(*hot_);
    pm.solve_forces();
    ax_.assign(cdm_.size(), 0.0);
    ay_.assign(cdm_.size(), 0.0);
    az_.assign(cdm_.size(), 0.0);
    pm.gather(cdm_, ax_, ay_, az_);
    if (hot_) {
      hax_.assign(hot_->size(), 0.0);
      hay_.assign(hot_->size(), 0.0);
      haz_.assign(hot_->size(), 0.0);
      pm.gather(*hot_, hax_, hay_, haz_);
    }
    timers_.add("pm", watch.seconds());
  }

  // --- tree (short-range) sourced by CDM ---
  {
    Stopwatch watch;
    const double g_pair = prefactor / (4.0 * M_PI);
    gravity::BarnesHutTree tree(cdm_, box_, options_.treepm.leaf_size);
    gravity::PpKernelParams params;
    params.eps = treepm_->eps();
    params.rs = treepm_->rs();
    params.rcut = treepm_->rcut();
    gravity::CutoffPoly poly(options_.treepm.rcut_over_rs / 2.0,
                             options_.treepm.cutoff_poly_degree);

    scratch_x_.assign(cdm_.size(), 0.0);
    scratch_y_.assign(cdm_.size(), 0.0);
    scratch_z_.assign(cdm_.size(), 0.0);
    tree.accelerations(cdm_, params, poly, options_.treepm.theta,
                       options_.treepm.use_simd, scratch_x_, scratch_y_,
                       scratch_z_);
    for (std::size_t i = 0; i < cdm_.size(); ++i) {
      ax_[i] += g_pair * scratch_x_[i];
      ay_[i] += g_pair * scratch_y_[i];
      az_[i] += g_pair * scratch_z_[i];
    }
    if (hot_ && options_.hot_species_feels_tree) {
      scratch_x_.assign(hot_->size(), 0.0);
      scratch_y_.assign(hot_->size(), 0.0);
      scratch_z_.assign(hot_->size(), 0.0);
      tree.accumulate(hot_->x.data(), hot_->y.data(), hot_->z.data(),
                      hot_->size(), params, poly, options_.treepm.theta,
                      options_.treepm.use_simd, scratch_x_.data(),
                      scratch_y_.data(), scratch_z_.data());
      for (std::size_t i = 0; i < hot_->size(); ++i) {
        hax_[i] += g_pair * scratch_x_[i];
        hay_[i] += g_pair * scratch_y_[i];
        haz_[i] += g_pair * scratch_z_[i];
      }
    }
    timers_.add("tree", watch.seconds());
  }
  forces_fresh_ = true;
}

void NBodySolver::step(double a0, double a1) {
  const double a_mid = 0.5 * (a0 + a1);
  if (!forces_fresh_) compute_forces(a0);

  const double kick_pre = background_.kick_factor(a0, a_mid);
  kick(cdm_, ax_, ay_, az_, kick_pre);
  if (hot_) kick(*hot_, hax_, hay_, haz_, kick_pre);

  const double drift_f = background_.drift_factor(a0, a1);
  drift(cdm_, drift_f, box_);
  if (hot_) drift(*hot_, drift_f, box_);

  compute_forces(a1);

  const double kick_post = background_.kick_factor(a_mid, a1);
  kick(cdm_, ax_, ay_, az_, kick_post);
  if (hot_) kick(*hot_, hax_, hay_, haz_, kick_post);
}

}  // namespace v6d::nbody
