// Kick-drift-kick leapfrog pieces for comoving coordinates.
//
// Canonical velocity u = a^2 dx/dt gives the clean pair
//   dx/dt = u / a^2   ->  x += u * Integral(dt / a^2)   (drift factor)
//   du/dt = -grad(phi) ->  u += g * Integral(dt)        (kick factor)
// with the integrals supplied by cosmo::Background.  The same factors feed
// the Vlasov sweeps, keeping both components on one clock (paper §5.1.2).
#pragma once

#include <vector>

#include "nbody/particles.hpp"

namespace v6d::nbody {

/// u += g * dt_kick (element-wise over particles).
void kick(Particles& particles, const std::vector<double>& ax,
          const std::vector<double>& ay, const std::vector<double>& az,
          double dt_kick);

/// x += u * drift_factor, then wrap into the periodic box.
void drift(Particles& particles, double drift_factor, double box);

/// Kinetic energy sum(m u^2 / 2) in canonical units (diagnostics).
double kinetic_energy(const Particles& particles);

}  // namespace v6d::nbody
