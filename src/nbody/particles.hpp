// Particle container for the N-body (CDM) component.
//
// Structure-of-arrays in double precision — the paper stores N-body
// positions and velocities as doubles while the Vlasov distribution is
// single precision (mixed precision, §5.1.2).  Velocities are the canonical
// momentum u = a^2 dx/dt used throughout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace v6d::nbody {

class Particles {
 public:
  Particles() = default;
  explicit Particles(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    x.resize(n);
    y.resize(n);
    z.resize(n);
    ux.resize(n);
    uy.resize(n);
    uz.resize(n);
    id.resize(n);
  }
  std::size_t size() const { return x.size(); }

  /// Wrap all positions into [0, box).
  void wrap_positions(double box);

  /// Append all particles of `other`.
  void append(const Particles& other);

  std::vector<double> x, y, z;     // comoving positions
  std::vector<double> ux, uy, uz;  // canonical velocities u = a^2 dx/dt
  std::vector<std::uint64_t> id;
  double mass = 1.0;  // equal-mass particles
};

}  // namespace v6d::nbody
