#include "nbody/particles.hpp"

#include <cmath>

namespace v6d::nbody {

void Particles::wrap_positions(double box) {
  for (std::size_t i = 0; i < size(); ++i) {
    x[i] -= box * std::floor(x[i] / box);
    y[i] -= box * std::floor(y[i] / box);
    z[i] -= box * std::floor(z[i] / box);
  }
}

void Particles::append(const Particles& other) {
  x.insert(x.end(), other.x.begin(), other.x.end());
  y.insert(y.end(), other.y.begin(), other.y.end());
  z.insert(z.end(), other.z.begin(), other.z.end());
  ux.insert(ux.end(), other.ux.begin(), other.ux.end());
  uy.insert(uy.end(), other.uy.begin(), other.uy.end());
  uz.insert(uz.end(), other.uz.begin(), other.uz.end());
  id.insert(id.end(), other.id.begin(), other.id.end());
}

}  // namespace v6d::nbody
