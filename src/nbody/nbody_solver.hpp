// Cosmological N-body solver (TreePM), optionally with a second "hot"
// particle species — the TianNu-style baseline configuration the paper
// compares against in §5.4 and §7.2: CDM particles plus Fermi-Dirac-
// sampled neutrino particles.
//
// Force assignment mirrors the hybrid code: CDM gets PM long-range + tree
// short-range; the hot species sources and feels the mesh force (its
// short-range self-interaction is negligible by free streaming) and also
// feels the CDM tree force at its positions.
#pragma once

#include <optional>

#include "common/timer.hpp"
#include "cosmology/background.hpp"
#include "gravity/treepm.hpp"
#include "nbody/integrator.hpp"

namespace v6d::nbody {

struct NBodySolverOptions {
  gravity::TreePmOptions treepm;
  bool hot_species_feels_tree = true;
};

class NBodySolver {
 public:
  NBodySolver(double box, const cosmo::Background& background,
              const NBodySolverOptions& options);

  Particles& cdm() { return cdm_; }
  std::optional<Particles>& hot() { return hot_; }
  void set_cdm(Particles p) { cdm_ = std::move(p); }
  void set_hot(Particles p) { hot_ = std::move(p); }

  /// One KDK step from scale factor a0 to a1.
  void step(double a0, double a1);

  /// Poisson prefactor at scale factor a (code units; see params.hpp).
  static double poisson_prefactor(double a) { return 1.5 / a; }

  TimerRegistry& timers() { return timers_; }
  gravity::TreePmSolver& treepm() { return *treepm_; }

 private:
  void compute_forces(double a);

  double box_;
  cosmo::Background background_;
  NBodySolverOptions options_;
  std::unique_ptr<gravity::TreePmSolver> treepm_;
  Particles cdm_;
  std::optional<Particles> hot_;
  std::vector<double> ax_, ay_, az_;        // CDM accelerations
  std::vector<double> hax_, hay_, haz_;     // hot-species accelerations
  std::vector<double> scratch_x_, scratch_y_, scratch_z_;  // tree-walk scratch
  bool forces_fresh_ = false;
  TimerRegistry timers_;
};

}  // namespace v6d::nbody
