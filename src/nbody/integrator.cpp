#include "nbody/integrator.hpp"

#include <cassert>

namespace v6d::nbody {

void kick(Particles& particles, const std::vector<double>& ax,
          const std::vector<double>& ay, const std::vector<double>& az,
          double dt_kick) {
  const std::size_t n = particles.size();
  assert(ax.size() == n && ay.size() == n && az.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    particles.ux[i] += ax[i] * dt_kick;
    particles.uy[i] += ay[i] * dt_kick;
    particles.uz[i] += az[i] * dt_kick;
  }
}

void drift(Particles& particles, double drift_factor, double box) {
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    particles.x[i] += particles.ux[i] * drift_factor;
    particles.y[i] += particles.uy[i] * drift_factor;
    particles.z[i] += particles.uz[i] * drift_factor;
  }
  particles.wrap_positions(box);
}

double kinetic_energy(const Particles& particles) {
  double acc = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const double u2 = particles.ux[i] * particles.ux[i] +
                      particles.uy[i] * particles.uy[i] +
                      particles.uz[i] * particles.uz[i];
    acc += u2;
  }
  return 0.5 * particles.mass * acc;
}

}  // namespace v6d::nbody
