// Hybrid Vlasov / N-body solver — the paper's production configuration
// (§5.1): CDM as TreePM particles, massive neutrinos as a 6-D phase-space
// fluid, coupled through one gravitational potential whose source is the
// sum of the CIC-deposited CDM density and the 0th velocity moment of f.
//
// Force assembly per step (KDK, shared clock):
//   CDM  <- PM long-range from rho_cdm (CIC-deconvolved, exp(-k^2 rs^2))
//         + tree short-range from CDM particles
//         + full mesh force from rho_nu (neutrinos are smooth; they have
//           no short-range complement)
//   nu   <- full mesh force from rho_cdm (deconvolved) + rho_nu, evaluated
//           on the Vlasov spatial grid (the paper's Vlasov component sees
//           gravity at PM resolution).
//
// The neutrino kicks are the velocity-space sweeps of Eq. (4)-(5); the
// drifts are the position-space sweeps; both components share the same
// drift/kick factors from the background integrator.
#pragma once

#include <functional>
#include <memory>

#include "common/timer.hpp"
#include "cosmology/background.hpp"
#include "gravity/poisson.hpp"
#include "gravity/pp_kernel.hpp"
#include "gravity/tree.hpp"
#include "gravity/treepm.hpp"
#include "mesh/deposit.hpp"
#include "nbody/integrator.hpp"
#include "vlasov/moments.hpp"
#include "vlasov/splitting.hpp"

namespace v6d::hybrid {

struct HybridOptions {
  int pm_grid = 16;                       // PM mesh per axis
  gravity::TreePmOptions treepm;          // tree parameters (grid ignored)
  vlasov::SweepKernel kernel = vlasov::SweepKernel::kAuto;
  double cfl = 0.9;                       // position-sweep |xi| bound
  bool enable_tree = true;                // PM-only when false
};

/// TreePM force-split lengths derived from the options and the mesh
/// spacing.  Shared by the serial and distributed solvers so the split
/// numerics cannot drift apart.
struct TreePmDerived {
  double rs = 0.0;    // long/short split scale
  double rcut = 0.0;  // short-range cutoff radius
  double eps = 0.0;   // force softening
  gravity::CutoffPoly poly;

  static TreePmDerived from(const HybridOptions& options, double box);
};

/// Accumulate (+=) the Barnes-Hut short-range accelerations of the full
/// particle set, scaled by the Poisson prefactor.  No-op when the tree is
/// disabled or there are no particles.  Serial and distributed solvers
/// call this same block.
void add_tree_accelerations(const nbody::Particles& cdm, double box,
                            const HybridOptions& options,
                            const TreePmDerived& derived, double prefactor,
                            std::vector<double>& ax, std::vector<double>& ay,
                            std::vector<double>& az);

/// CFL-limited step search: the largest a1 <= a0 + da_max with
/// max_shift(a1) <= cfl, via the shared backoff iteration.  `max_shift`
/// supplies the position-sweep bound (local, or allreduce-d by the
/// distributed solver).
double cfl_limited_step(double a0, double da_max, double cfl,
                        const std::function<double(double)>& max_shift);

class HybridSolver {
 public:
  /// Takes ownership of the phase space (may have zero-size dims if the
  /// run is CDM-only) and the particle set.
  HybridSolver(vlasov::PhaseSpace f, nbody::Particles cdm, double box,
               const cosmo::Background& background,
               const HybridOptions& options);

  vlasov::PhaseSpace& neutrinos() { return f_; }
  const vlasov::PhaseSpace& neutrinos() const { return f_; }
  nbody::Particles& cdm() { return cdm_; }
  const nbody::Particles& cdm() const { return cdm_; }

  /// Construction parameters, exposed so the distributed solver
  /// (src/parallel/) can shard an already built solver without re-plumbing
  /// the scenario layer.
  const HybridOptions& options() const { return options_; }
  const cosmo::Background& background() const { return background_; }
  double box() const { return box_; }

  /// One KDK step from scale factor a0 to a1 (caller controls step size;
  /// see suggest_next_a for the CFL-limited choice).
  void step(double a0, double a1);

  /// Largest a1 <= a0 + da_max keeping every position sweep under the CFL
  /// bound.
  double suggest_next_a(double a0, double da_max) const;

  /// Total mass (CDM + neutrino) in critical-density units (conservation
  /// diagnostics).
  double total_mass() const;

  /// Neutrino density on the PM grid (refreshed by the last force solve).
  const mesh::Grid3D<double>& nu_density() const { return rho_nu_; }
  const mesh::Grid3D<double>& cdm_density() const { return rho_cdm_; }

  TimerRegistry& timers() { return timers_; }
  static double poisson_prefactor(double a) { return 1.5 / a; }

  /// The step-boundary force cache: accelerations computed from the
  /// post-drift state at the end of the last step and reused by the next
  /// step's leading kick.  Checkpoints must carry it — recomputing from
  /// the post-kick f reproduces it only to rounding (velocity sweeps
  /// conserve the density moment approximately), which would break
  /// bit-identical restart.
  struct StepForces {
    bool fresh = false;
    mesh::Grid3D<double> nu_ax, nu_ay, nu_az;  // Vlasov-grid accelerations
    std::vector<double> ax, ay, az;            // particle accelerations
  };
  StepForces export_step_forces() const;
  /// Restore a cache exported from an identically configured solver;
  /// returns false (and leaves the cache stale) on shape mismatch.
  bool import_step_forces(const StepForces& forces);

 private:
  void compute_forces(double a);
  void deposit_nu_density();

  vlasov::PhaseSpace f_;
  nbody::Particles cdm_;
  double box_;
  cosmo::Background background_;
  HybridOptions options_;

  gravity::PoissonSolver poisson_;
  mesh::MeshPatch patch_;
  TreePmDerived treepm_derived_;

  mesh::Grid3D<double> rho_cdm_, rho_nu_;
  mesh::Grid3D<double> gx_cdm_, gy_cdm_, gz_cdm_;  // filtered (for particles)
  mesh::Grid3D<double> gx_nu_, gy_nu_, gz_nu_;     // full (for Vlasov kicks)
  mesh::Grid3D<double> nu_ax_, nu_ay_, nu_az_;     // accel on Vlasov grid
  std::vector<double> ax_, ay_, az_;               // particle accelerations
  bool forces_fresh_ = false;
  bool has_nu_ = false;

  TimerRegistry timers_;
};

}  // namespace v6d::hybrid
