#include "hybrid/hybrid_solver.hpp"

#include <cmath>

#include "common/trace.hpp"
#include "mesh/interp.hpp"

namespace v6d::hybrid {

TreePmDerived TreePmDerived::from(const HybridOptions& options, double box) {
  TreePmDerived d;
  const double h = box / options.pm_grid;
  d.rs = options.treepm.rs_cells * h;
  d.rcut = options.treepm.rcut_over_rs * d.rs;
  d.eps = options.treepm.eps_cells * h;
  d.poly = gravity::CutoffPoly(options.treepm.rcut_over_rs / 2.0,
                               options.treepm.cutoff_poly_degree);
  return d;
}

void add_tree_accelerations(const nbody::Particles& cdm, double box,
                            const HybridOptions& options,
                            const TreePmDerived& derived, double prefactor,
                            std::vector<double>& ax, std::vector<double>& ay,
                            std::vector<double>& az) {
  if (!options.enable_tree || cdm.size() == 0) return;
  const double g_pair = prefactor / (4.0 * M_PI);
  gravity::BarnesHutTree tree(cdm, box, options.treepm.leaf_size);
  gravity::PpKernelParams params;
  params.eps = derived.eps;
  params.rs = derived.rs;
  params.rcut = derived.rcut;
  std::vector<double> tx(cdm.size(), 0.0), ty(cdm.size(), 0.0),
      tz(cdm.size(), 0.0);
  tree.accelerations(cdm, params, derived.poly, options.treepm.theta,
                     options.treepm.use_simd, tx, ty, tz);
  for (std::size_t i = 0; i < cdm.size(); ++i) {
    ax[i] += g_pair * tx[i];
    ay[i] += g_pair * ty[i];
    az[i] += g_pair * tz[i];
  }
}

double cfl_limited_step(double a0, double da_max, double cfl,
                        const std::function<double(double)>& max_shift) {
  double a1 = a0 + da_max;
  for (int it = 0; it < 20; ++it) {
    const double shift = max_shift(a1);
    if (shift <= cfl) break;
    // Shift is nearly linear in (a1 - a0): rescale and re-check.
    const double scale = cfl / shift;
    a1 = a0 + (a1 - a0) * std::min(0.95, scale);
  }
  return a1;
}

HybridSolver::HybridSolver(vlasov::PhaseSpace f, nbody::Particles cdm,
                           double box, const cosmo::Background& background,
                           const HybridOptions& options)
    : f_(std::move(f)),
      cdm_(std::move(cdm)),
      box_(box),
      background_(background),
      options_(options),
      poisson_(options.pm_grid, box),
      rho_cdm_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      rho_nu_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      gx_cdm_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      gy_cdm_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      gz_cdm_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      gx_nu_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      gy_nu_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      gz_nu_(options.pm_grid, options.pm_grid, options.pm_grid, 2),
      nu_ax_(f_.dims().nx, f_.dims().ny, f_.dims().nz),
      nu_ay_(f_.dims().nx, f_.dims().ny, f_.dims().nz),
      nu_az_(f_.dims().nx, f_.dims().ny, f_.dims().nz) {
  patch_.box = box;
  patch_.n_global = options.pm_grid;
  treepm_derived_ = TreePmDerived::from(options, box);
  has_nu_ = f_.dims().total_interior() > 0;
}

void HybridSolver::deposit_nu_density() {
  // 0th moment on the Vlasov spatial grid, then conservative injection
  // onto the PM mesh: every Vlasov cell deposits its mass (rho * dvol) at
  // its center with CIC.  When the two grids coincide, CIC at cell
  // centers reduces to the identity.
  const auto& d = f_.dims();
  const auto& g = f_.geom();
  mesh::Grid3D<double> rho_v(d.nx, d.ny, d.nz);
  vlasov::compute_density(f_, rho_v);

  rho_nu_.fill(0.0);
  const double cell_mass_factor = g.dvol();
  const double h = box_ / options_.pm_grid;
  const double inv_h3 = 1.0 / (h * h * h);
  std::vector<double> px(1), py(1), pz(1);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        px[0] = g.x(ix);
        py[0] = g.y(iy);
        pz[0] = g.z(iz);
        const double mass = rho_v.at(ix, iy, iz) * cell_mass_factor;
        mesh::deposit(rho_nu_, patch_, px, py, pz, mass,
                      mesh::Assignment::kCic);
      }
  (void)inv_h3;
  rho_nu_.fold_ghosts_periodic();
}

void HybridSolver::compute_forces(double a) {
  const double prefactor = poisson_prefactor(a);

  // --- densities ---
  {
    ScopedTimer t(timers_, "pm");
    rho_cdm_.fill(0.0);
    mesh::deposit(rho_cdm_, patch_, cdm_.x, cdm_.y, cdm_.z, cdm_.mass,
                  mesh::Assignment::kCic);
    rho_cdm_.fold_ghosts_periodic();
  }
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov-moments");
    deposit_nu_density();
  }

  // --- mesh force solves ---
  {
    ScopedTimer t(timers_, "pm");
    gravity::PoissonOptions cdm_opts;
    cdm_opts.prefactor = prefactor;
    cdm_opts.deconvolve_order = 2;  // CIC
    cdm_opts.green = gravity::GreenFunction::kExactK2;

    // (a) filtered CDM field for the particle long-range force.
    gravity::PoissonOptions cdm_long = cdm_opts;
    cdm_long.longrange_split_rs =
        options_.enable_tree ? treepm_derived_.rs : 0.0;
    poisson_.solve_forces(rho_cdm_, gx_cdm_, gy_cdm_, gz_cdm_, cdm_long);

    // (b) full CDM field for the Vlasov kicks.
    poisson_.solve_forces(rho_cdm_, gx_nu_, gy_nu_, gz_nu_, cdm_opts);

    if (has_nu_) {
      // (c) full neutrino field: add to both force sets (no deconvolution
      // — the moment field was injected, not particle-deposited).
      gravity::PoissonOptions nu_opts;
      nu_opts.prefactor = prefactor;
      nu_opts.deconvolve_order = 0;
      mesh::Grid3D<double> tx(options_.pm_grid, options_.pm_grid,
                              options_.pm_grid, 2),
          ty(options_.pm_grid, options_.pm_grid, options_.pm_grid, 2),
          tz(options_.pm_grid, options_.pm_grid, options_.pm_grid, 2);
      poisson_.solve_forces(rho_nu_, tx, ty, tz, nu_opts);
      for (int i = 0; i < options_.pm_grid; ++i)
        for (int j = 0; j < options_.pm_grid; ++j)
          for (int k = 0; k < options_.pm_grid; ++k) {
            gx_cdm_.at(i, j, k) += tx.at(i, j, k);
            gy_cdm_.at(i, j, k) += ty.at(i, j, k);
            gz_cdm_.at(i, j, k) += tz.at(i, j, k);
            gx_nu_.at(i, j, k) += tx.at(i, j, k);
            gy_nu_.at(i, j, k) += ty.at(i, j, k);
            gz_nu_.at(i, j, k) += tz.at(i, j, k);
          }
    }
    gx_cdm_.fill_ghosts_periodic();
    gy_cdm_.fill_ghosts_periodic();
    gz_cdm_.fill_ghosts_periodic();
    gx_nu_.fill_ghosts_periodic();
    gy_nu_.fill_ghosts_periodic();
    gz_nu_.fill_ghosts_periodic();

    // Particle long-range gather.
    ax_.assign(cdm_.size(), 0.0);
    ay_.assign(cdm_.size(), 0.0);
    az_.assign(cdm_.size(), 0.0);
    mesh::gather_forces(gx_cdm_, gy_cdm_, gz_cdm_, patch_, cdm_.x, cdm_.y,
                        cdm_.z, ax_, ay_, az_, mesh::Assignment::kCic);

    // Vlasov-grid acceleration sampling (CIC from the PM mesh at Vlasov
    // cell centers; identity when the grids match).
    if (has_nu_) {
      const auto& d = f_.dims();
      const auto& g = f_.geom();
      for (int ix = 0; ix < d.nx; ++ix)
        for (int iy = 0; iy < d.ny; ++iy)
          for (int iz = 0; iz < d.nz; ++iz) {
            const double x = g.x(ix), y = g.y(iy), z = g.z(iz);
            nu_ax_.at(ix, iy, iz) = mesh::interpolate(
                gx_nu_, patch_, x, y, z, mesh::Assignment::kCic);
            nu_ay_.at(ix, iy, iz) = mesh::interpolate(
                gy_nu_, patch_, x, y, z, mesh::Assignment::kCic);
            nu_az_.at(ix, iy, iz) = mesh::interpolate(
                gz_nu_, patch_, x, y, z, mesh::Assignment::kCic);
          }
    }
  }

  // --- tree short-range (CDM only) ---
  if (options_.enable_tree && cdm_.size() > 0) {
    ScopedTimer t(timers_, "tree");
    add_tree_accelerations(cdm_, box_, options_, treepm_derived_, prefactor,
                           ax_, ay_, az_);
  }
  forces_fresh_ = true;
}

void HybridSolver::step(double a0, double a1) {
  const double a_mid = 0.5 * (a0 + a1);
  if (!forces_fresh_) compute_forces(a0);

  const double kick_pre = background_.kick_factor(a0, a_mid);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    trace::Span kick_span("kick");
    vlasov::kick_half(f_, nu_ax_, nu_ay_, nu_az_, kick_pre,
                      options_.kernel);
  }
  nbody::kick(cdm_, ax_, ay_, az_, kick_pre);

  const double drift_f = background_.drift_factor(a0, a1);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    vlasov::drift_full(f_, drift_f, options_.kernel,
                       vlasov::periodic_halo_filler());
  }
  nbody::drift(cdm_, drift_f, box_);

  compute_forces(a1);

  const double kick_post = background_.kick_factor(a_mid, a1);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    trace::Span kick_span("kick");
    vlasov::kick_half(f_, nu_ax_, nu_ay_, nu_az_, kick_post,
                      options_.kernel);
  }
  nbody::kick(cdm_, ax_, ay_, az_, kick_post);
}

double HybridSolver::suggest_next_a(double a0, double da_max) const {
  if (!has_nu_) return a0 + da_max;
  return cfl_limited_step(a0, da_max, options_.cfl, [&](double a1) {
    return vlasov::max_position_shift(f_, background_.drift_factor(a0, a1));
  });
}

HybridSolver::StepForces HybridSolver::export_step_forces() const {
  StepForces forces;
  forces.fresh = forces_fresh_;
  if (!forces_fresh_) return forces;
  forces.nu_ax = nu_ax_;
  forces.nu_ay = nu_ay_;
  forces.nu_az = nu_az_;
  forces.ax = ax_;
  forces.ay = ay_;
  forces.az = az_;
  return forces;
}

bool HybridSolver::import_step_forces(const StepForces& forces) {
  if (!forces.fresh) {
    forces_fresh_ = false;
    return true;
  }
  if (forces.nu_ax.nx() != nu_ax_.nx() || forces.nu_ax.ny() != nu_ax_.ny() ||
      forces.nu_ax.nz() != nu_ax_.nz() || forces.ax.size() != cdm_.size())
    return false;
  nu_ax_ = forces.nu_ax;
  nu_ay_ = forces.nu_ay;
  nu_az_ = forces.nu_az;
  ax_ = forces.ax;
  ay_ = forces.ay;
  az_ = forces.az;
  forces_fresh_ = true;
  return true;
}

double HybridSolver::total_mass() const {
  double mass = cdm_.mass * static_cast<double>(cdm_.size());
  if (has_nu_) mass += f_.total_mass();
  return mass;
}

}  // namespace v6d::hybrid
