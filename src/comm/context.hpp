// Shared state behind a group of simulated ranks (internal header).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "comm/mailbox.hpp"

namespace v6d::comm {

/// Reusable generation barrier (std::barrier without completion step,
/// usable an unbounded number of times).  Supports abort(): every current
/// and future waiter throws AbortedError instead of blocking on ranks
/// that will never arrive.
class Barrier {
 public:
  explicit Barrier(int count) : count_(count), waiting_(0), generation_(0) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw AbortedError();
    const std::uint64_t gen = generation_;
    if (++waiting_ == count_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen || aborted_; });
      if (generation_ == gen) {
        // Woken by abort before the barrier completed.
        --waiting_;
        throw AbortedError();
      }
    }
  }

  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

 private:
  int count_;
  int waiting_;
  std::uint64_t generation_;
  bool aborted_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
};

class Context {
 public:
  explicit Context(int nranks)
      : nranks_(nranks),
        mailboxes_(nranks),
        barrier_(nranks),
        stage_(nranks, nullptr),
        stage_bytes_(nranks, 0) {
    for (auto& mailbox : mailboxes_) mailbox.set_abort_flag(&aborted_);
  }

  int size() const { return nranks_; }
  Mailbox& mailbox(int rank) { return mailboxes_[rank]; }
  Barrier& barrier() { return barrier_; }

  /// Mark the context dead and wake every rank blocked in Mailbox::pop or
  /// Barrier::arrive_and_wait; they throw AbortedError.  Called by
  /// comm::run when a rank's body throws, so peers cannot hang forever on
  /// messages or barrier arrivals that will never come.  Idempotent; the
  /// context is unusable afterwards.
  void abort() noexcept {
    if (aborted_.exchange(true, std::memory_order_acq_rel)) return;
    barrier_.abort();
    for (auto& mailbox : mailboxes_) mailbox.notify_abort();
  }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Pointer staging area used by the collectives: every rank publishes a
  /// pointer, synchronizes, reads peers' pointers, synchronizes again.
  void stage(int rank, const void* ptr, std::size_t bytes) {
    stage_[rank] = ptr;
    stage_bytes_[rank] = bytes;
  }
  const void* staged_ptr(int rank) const { return stage_[rank]; }
  std::size_t staged_bytes(int rank) const { return stage_bytes_[rank]; }

 private:
  int nranks_;
  std::vector<Mailbox> mailboxes_;
  Barrier barrier_;
  std::atomic<bool> aborted_{false};
  std::vector<const void*> stage_;
  std::vector<std::size_t> stage_bytes_;
};

}  // namespace v6d::comm
