// Shared state behind a group of simulated ranks (internal header).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "comm/mailbox.hpp"

namespace v6d::comm {

/// Reusable generation barrier (std::barrier without completion step,
/// usable an unbounded number of times).  Supports abort(): every current
/// and future waiter throws AbortedError instead of blocking on ranks
/// that will never arrive.
///
/// All barrier state (generation counter, waiter count, aborted flag) is
/// guarded by one mutex; the mutex's release/acquire edges are what order
/// pre-barrier writes of one rank before post-barrier reads of another
/// (the collectives' staged pointers rely on exactly this).  abort() sets
/// the flag under the same mutex, so a waiter's predicate re-check cannot
/// miss it.
class Barrier {
 public:
  explicit Barrier(int count) : count_(count), waiting_(0), generation_(0) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw AbortedError();
    const std::uint64_t gen = generation_;
    if (++waiting_ == count_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen || aborted_; });
      if (generation_ == gen) {
        // Woken by abort before the barrier completed.
        --waiting_;
        throw AbortedError();
      }
    }
  }

  void abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    cv_.notify_all();
  }

 private:
  int count_;
  int waiting_;
  std::uint64_t generation_;
  bool aborted_ = false;
  std::mutex mutex_;
  std::condition_variable cv_;
};

class Context {
 public:
  explicit Context(int nranks)
      : nranks_(nranks),
        mailboxes_(nranks),
        barrier_(nranks),
        stage_(nranks, nullptr),
        stage_bytes_(nranks, 0) {
    for (auto& mailbox : mailboxes_) mailbox.set_abort_flag(&aborted_);
  }

  int size() const { return nranks_; }
  Mailbox& mailbox(int rank) { return mailboxes_[rank]; }
  /// Receive-side traffic counters of `rank`'s mailbox (monotonic for the
  /// context lifetime; see MailboxStats).
  MailboxStats mailbox_stats(int rank) const { return mailboxes_[rank].stats(); }
  Barrier& barrier() { return barrier_; }

  /// Mark the context dead and wake every rank blocked in Mailbox::pop or
  /// Barrier::arrive_and_wait; they throw AbortedError.  Called by
  /// comm::run when a rank's body throws, so peers cannot hang forever on
  /// messages or barrier arrivals that will never come.  Idempotent; the
  /// context is unusable afterwards.
  ///
  /// Memory-order contract (see also mailbox.hpp):
  ///  * The flag flips exactly once; the release half of the acq_rel
  ///    exchange publishes everything the aborting rank wrote before it
  ///    died to any rank that *observes the flag* (the acquire loads in
  ///    Mailbox::pop/try_pop and aborted() below).
  ///  * Visibility alone cannot wake a rank already parked in a condition
  ///    wait, so abort() additionally round-trips each waiter's mutex
  ///    (Barrier::abort takes the barrier mutex; Mailbox::notify_abort
  ///    takes the mailbox mutex before notifying).  That lock/unlock
  ///    pairs with the predicate re-check under the same mutex, closing
  ///    the set-flag / park-waiter race: a waiter either sees the flag in
  ///    its predicate or is woken by the notify that follows the lock.
  ///  * abort() is noexcept and safe to call from any rank thread,
  ///    concurrently with every other context operation.
  void abort() noexcept {
    if (aborted_.exchange(true, std::memory_order_acq_rel)) return;
    barrier_.abort();
    for (auto& mailbox : mailboxes_) mailbox.notify_abort();
  }
  /// Acquire load: pairs with the release half of abort()'s exchange.
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Pointer staging area used by the collectives: every rank publishes a
  /// pointer, synchronizes, reads peers' pointers, synchronizes again.
  void stage(int rank, const void* ptr, std::size_t bytes) {
    stage_[rank] = ptr;
    stage_bytes_[rank] = bytes;
  }
  const void* staged_ptr(int rank) const { return stage_[rank]; }
  std::size_t staged_bytes(int rank) const { return stage_bytes_[rank]; }

 private:
  int nranks_;
  std::vector<Mailbox> mailboxes_;
  Barrier barrier_;
  std::atomic<bool> aborted_{false};
  std::vector<const void*> stage_;
  std::vector<std::size_t> stage_bytes_;
};

}  // namespace v6d::comm
