// TCP transport backend: one OS process (or thread, in tests) per rank,
// length-prefixed frames over nonblocking sockets.
//
// Modeled on active-message queues over sendrecv (DASH's
// dart_active_messages_sendrecv): every message travels as one frame —
// fixed header (magic, kind, tag, payload length) followed by the payload
// — over a persistent full-mesh of connections, and a per-rank receiver
// thread reassembles frames and delivers them into the same tag-matched
// Mailbox the in-process backend uses.  That keeps the entire blocking /
// abort / FIFO-per-peer contract in one place (mailbox.hpp) and makes the
// wire path byte-for-byte interchangeable with thread ranks.
//
// Rendezvous: `hosts` is either an explicit "host:port,host:port,..."
// listen list (entry r = rank r's address — multi-host capable, e.g. via
// the V6D_TRANSPORT_HOSTS environment variable) or a shared directory
// path: each rank binds an ephemeral loopback port and publishes it as
// `<dir>/rank.<r>` (atomic rename), then polls for its peers' files.
// Connections are dialed with exponential backoff until `timeout_s` —
// ranks of a job never start simultaneously.
//
// Topology: rank r dials every lower rank and accepts from every higher
// rank, identifying itself with a hello frame; connects go strictly
// downward while accepts come strictly from ranks still dialing, so
// the mesh setup cannot deadlock.  Sends are written directly by the
// calling thread (serialized per peer); the receiver thread always
// drains, so two ranks flooding each other cannot wedge on full kernel
// buffers.
//
// Failure model: abort() broadcasts an abort frame and wakes local
// waiters; a peer that disappears without a goodbye frame (EOF or reset
// mid-stream) aborts the world — a partially received frame is discarded,
// never delivered, so a crashed peer surfaces as AbortedError, not as a
// truncated message.  shutdown() exchanges goodbye frames so clean exits
// are distinguishable from crashes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.hpp"

namespace v6d::comm {

struct TcpOptions {
  int rank = -1;
  int world = 0;
  /// "host:port,..." listen list or rendezvous directory (see above).
  std::string hosts;
  /// Rendezvous + connect + graceful-teardown budget.
  double timeout_s = 60.0;
  /// Ceiling of the exponential connect backoff.
  double backoff_max_ms = 100.0;
  /// Liveness deadline: a peer from which *nothing* (data, control or
  /// heartbeat frames) arrives for this long is declared lost and the
  /// world aborts with TransportError{kPeerLost, rank}.  0 disables
  /// detection (the default — idle worlds are legal without it).
  double liveness_timeout_s = 0.0;
  /// Heartbeat send period.  0 = derive from the liveness deadline
  /// (a quarter of it), so every configuration that *expects* traffic
  /// also produces it; negative = never send (test hook for simulating
  /// a wedged peer).
  double heartbeat_interval_s = 0.0;
};

class TcpTransport final : public Transport {
 public:
  /// Binds, rendezvouses, dials the mesh and starts the receiver thread.
  /// Throws TransportError when the mesh cannot be established within
  /// options.timeout_s.
  explicit TcpTransport(const TcpOptions& options);
  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  const char* name() const override { return "tcp"; }
  int rank() const override { return rank_; }
  int world() const override { return world_; }

  void send(int dest, int tag, const void* data, std::size_t bytes) override;
  Mailbox& inbox() override { return inbox_; }

  void barrier() override;
  void gather_all(
      const void* local, std::size_t bytes,
      const std::function<void(const StageView&)>& consume) override;
  void bcast(void* data, std::size_t bytes, int root) override;
  std::vector<std::vector<std::uint8_t>> alltoallv(
      const std::vector<std::vector<std::uint8_t>>& send) override;

  void abort() noexcept override;
  bool aborted() const override {
    return aborted_.load(std::memory_order_acquire);
  }
  void fail_hard() noexcept override;
  void shutdown() override;
  void depart_abruptly() override;
  void rethrow_diagnosis() override;

  /// The port this rank's listener bound (useful with ephemeral ports).
  int port() const { return port_; }

  /// Stop emitting heartbeat frames (test hook): to its peers this rank
  /// now looks wedged — alive at the TCP level but silent — which is
  /// exactly what a liveness deadline exists to catch.
  void debug_suppress_heartbeats() noexcept {
    heartbeats_enabled_.store(false, std::memory_order_relaxed);
  }

 private:
  struct PeerRx;  // per-peer frame reassembly state (tcp_transport.cpp)

  void connect_mesh(const TcpOptions& options);
  void receiver_loop();
  /// Frame write with per-peer serialization; returns false once the
  /// world aborted mid-write.  Throws TransportError on channel failure
  /// (after aborting the world).
  bool write_frame(int dest, std::uint8_t kind, int tag, const void* data,
                   std::size_t bytes);
  void internal_send(int dest, int tag, const void* data, std::size_t bytes);
  std::vector<std::uint8_t> internal_pop(int source, int tag);
  /// Receiver-side failure: abort the world, remembering the diagnosis
  /// (fault class, peer, reason) so the next blocking caller can
  /// surface a descriptive TransportError instead of a bare abort.
  void remote_abort(TransportFault fault, int peer,
                    const std::string& why) noexcept;
  /// Best-effort goodbye to every peer.  A channel that fails mid-bye
  /// marks that peer as already departed instead of aborting the world,
  /// and never stops goodbyes to the remaining peers.
  void send_goodbyes() noexcept;
  void wake_receiver() noexcept;
  void close_all() noexcept;

  int rank_ = -1;
  int world_ = 0;
  int port_ = 0;
  double timeout_s_ = 60.0;
  double liveness_timeout_s_ = 0.0;
  double heartbeat_interval_s_ = 0.0;  // resolved; <= 0 means never send

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};        // self-pipe: wakes the poll loop
  std::vector<int> peer_fd_;           // [world]; own rank = -1
  std::vector<std::unique_ptr<std::mutex>> send_mutex_;  // per peer

  Mailbox inbox_;      // user p2p channel (Communicator traffic counters)
  Mailbox internal_;   // collective/control channel (never in user stats)
  std::atomic<bool> aborted_{false};
  std::atomic<std::uint32_t> op_seq_{0};  // collective sequence tags

  std::mutex state_mutex_;  // guards bye_seen_ / abort_why_ & friends
  std::condition_variable state_cv_;
  std::vector<bool> bye_seen_;         // peer sent its goodbye frame
  std::string abort_why_;              // first diagnosed failure wins
  TransportFault abort_fault_ = TransportFault::kUnknown;
  int abort_peer_ = -1;
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> bye_sent_{false};  // our goodbyes are on the wire
  std::atomic<bool> heartbeats_enabled_{true};
  bool shutdown_done_ = false;
  std::thread receiver_;
};

}  // namespace v6d::comm
