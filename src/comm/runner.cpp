#include "comm/runner.hpp"

#include <exception>
#include <mutex>
#include <thread>

#include "comm/context.hpp"
#include "common/log.hpp"

namespace v6d::comm {

void run(int nranks, const std::function<void(Communicator&)>& fn) {
  Context ctx(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      log::set_rank(r);
      Communicator comm(&ctx, r);
      try {
        fn(comm);
      } catch (const AbortedError&) {
        // A peer already failed and aborted the context; its error is the
        // one worth reporting, so secondary unwind noise is dropped.
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Wake peers blocked in Mailbox::pop / Barrier::arrive_and_wait on
        // this rank's never-coming messages so join() below returns.
        ctx.abort();
      }
      log::set_rank(-1);
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<double> run_collect(
    int nranks, const std::function<double(Communicator&)>& fn) {
  std::vector<double> results(static_cast<std::size_t>(nranks), 0.0);
  run(nranks, [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

}  // namespace v6d::comm
