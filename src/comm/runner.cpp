#include "comm/runner.hpp"

#include <unistd.h>

#include <cstdlib>
#include <exception>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "comm/context.hpp"
#include "comm/inproc_transport.hpp"
#include "comm/tcp_transport.hpp"
#include "common/log.hpp"

namespace v6d::comm {

namespace {

/// Fresh rendezvous directory for an unnamed local TCP world.
std::string make_temp_rendezvous() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base && *base ? base : "/tmp") +
                     "/v6d-tcp-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (!::mkdtemp(buf.data()))
    throw TransportError("cannot create rendezvous directory " + tmpl);
  return std::string(buf.data());
}

}  // namespace

void run_transport(int nranks, const LaunchOptions& options,
                   const std::function<void(Communicator&)>& fn) {
  const bool tcp = options.backend == "tcp";
  if (!tcp && options.backend != "inproc")
    throw std::invalid_argument("comm: unknown transport backend '" +
                                options.backend + "'");

  // Shared state per backend: the Context for thread ranks, a rendezvous
  // directory (possibly temporary) for loopback TCP ranks.
  std::optional<Context> ctx;
  if (!tcp) ctx.emplace(nranks);
  std::string rendezvous = options.rendezvous;
  bool temp_rendezvous = false;
  if (tcp && rendezvous.empty()) {
    rendezvous = make_temp_rendezvous();
    temp_rendezvous = true;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      log::set_rank(r);
      std::unique_ptr<Transport> transport;
      try {
        if (tcp) {
          TcpOptions tcp_options;
          tcp_options.rank = r;
          tcp_options.world = nranks;
          tcp_options.hosts = rendezvous;
          tcp_options.timeout_s = options.timeout_s;
          tcp_options.liveness_timeout_s = options.liveness_timeout_s;
          tcp_options.heartbeat_interval_s = options.heartbeat_interval_s;
          transport = std::make_unique<TcpTransport>(tcp_options);
        } else {
          transport = std::make_unique<InProcTransport>(&*ctx, r);
        }
        if (options.wrap) transport = options.wrap(std::move(transport), r);
        Communicator comm(*transport);
        fn(comm);
        transport->shutdown();
      } catch (const AbortedError&) {
        // A peer already failed and aborted the world; its error is the
        // one worth reporting, so secondary unwind noise is dropped —
        // unless THIS rank's endpoint diagnosed the primary failure (a
        // lost peer, a liveness deadline): then the diagnosis is the
        // report, since the dead rank will never speak for itself.
        try {
          if (transport) transport->rethrow_diagnosis();
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Wake peers blocked in Mailbox::pop / barriers on this rank's
        // never-coming messages so join() below returns.  Transport
        // construction itself may have failed; peers then time out of
        // their own rendezvous.
        if (transport) transport->abort();
      }
      log::set_rank(-1);
    });
  }
  for (auto& t : threads) t.join();
  if (temp_rendezvous) {
    std::error_code ec;
    std::filesystem::remove_all(rendezvous, ec);
  }
  if (first_error) std::rethrow_exception(first_error);
}

void run(int nranks, const std::function<void(Communicator&)>& fn) {
  run_transport(nranks, LaunchOptions{}, fn);
}

std::vector<double> run_collect(
    int nranks, const std::function<double(Communicator&)>& fn) {
  std::vector<double> results(static_cast<std::size_t>(nranks), 0.0);
  run(nranks, [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] = fn(comm);
  });
  return results;
}

}  // namespace v6d::comm
