// Bounded exponential backoff with deterministic jitter — the retry
// policy object behind every transient-fault recovery path in the comm
// layer and the supervisor.
//
// The same schedule drives three very different waits:
//   * TcpTransport mesh setup — rendezvous polling and connection dials
//     retry until the deadline (ranks of a job never start
//     simultaneously, and a hello write that dies mid-handshake is
//     simply re-dialed: nothing but the idempotent hello frame was in
//     flight, so the re-send is safe).
//   * FaultyTransport scripted transient faults — a send that hits an
//     injected link outage is retried on this schedule and the
//     undelivered frame re-sent once the outage clears, proving the
//     retry surface deterministic in unit tests.
//   * driver::run_supervised — worker relaunch pacing after a failure.
//
// Jitter is deterministic: a splitmix64 stream seeded from the policy,
// so a given (policy, attempt) pair always produces the same delay and
// a failing test replays exactly.  Jitter shortens delays (never
// lengthens them), keeping the schedule bounded by the un-jittered
// exponential curve.
#pragma once

#include <algorithm>
#include <cstdint>

namespace v6d::comm {

/// What a retry loop is allowed to do.  `max_attempts == 0` means the
/// schedule itself never gives up — the caller bounds the loop with a
/// deadline instead (the mesh-setup shape).
struct RetryPolicy {
  double initial_delay_ms = 1.0;
  double max_delay_ms = 100.0;
  double multiplier = 2.0;
  /// Fraction [0, 1) of each delay that deterministic jitter may shave
  /// off; 0 keeps the raw exponential curve.
  double jitter = 0.0;
  int max_attempts = 0;
  std::uint64_t seed = 0x5eedu;
};

/// One retry loop's state: hands out successive delays and tracks the
/// attempt budget.  Cheap to construct per loop; copyable.
class RetrySchedule {
 public:
  explicit RetrySchedule(const RetryPolicy& policy)
      : policy_(policy),
        delay_ms_(policy.initial_delay_ms),
        rng_state_(policy.seed) {}

  /// Delay to sleep before the next attempt, advancing the schedule.
  /// Deterministic for a given (policy, attempt index).
  double next_delay_ms() {
    ++attempts_;
    double delay = delay_ms_;
    if (policy_.jitter > 0.0)
      delay *= 1.0 - policy_.jitter * next_uniform();
    delay_ms_ = std::min(delay_ms_ * policy_.multiplier,
                         policy_.max_delay_ms);
    return delay;
  }

  /// Attempts handed out so far (next_delay_ms calls).
  int attempts() const { return attempts_; }

  /// True once the attempt budget is spent (never for max_attempts 0).
  bool exhausted() const {
    return policy_.max_attempts > 0 && attempts_ >= policy_.max_attempts;
  }

  /// Rewind to attempt 0 with the original delay and jitter stream —
  /// the schedule replays identically after a reset.
  void reset() {
    attempts_ = 0;
    delay_ms_ = policy_.initial_delay_ms;
    rng_state_ = policy_.seed;
  }

 private:
  /// splitmix64 step mapped to [0, 1): small, seedable, and identical
  /// on every platform — unlike std::mt19937 distributions, whose
  /// mapping is implementation-defined.
  double next_uniform() {
    rng_state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rng_state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  RetryPolicy policy_;
  double delay_ms_;
  std::uint64_t rng_state_;
  int attempts_ = 0;
};

}  // namespace v6d::comm
