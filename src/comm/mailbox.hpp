// Tag-matched point-to-point mailboxes for the simulated MPI runtime.
//
// Each rank owns one Mailbox.  send() is buffered (never blocks), so halo
// exchange cycles cannot deadlock; recv() blocks until a message with a
// matching (source, tag) arrives.  Message order between a fixed
// (source, tag) pair is FIFO, mirroring MPI's non-overtaking guarantee.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

namespace v6d::comm {

class Mailbox {
 public:
  void push(int source, int tag, std::vector<std::uint8_t> payload);
  /// Blocks until a matching message arrives; returns its payload.
  std::vector<std::uint8_t> pop(int source, int tag);
  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int source, int tag);

 private:
  using Key = std::pair<int, int>;  // (source, tag)
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> queues_;
};

}  // namespace v6d::comm
