// Tag-matched point-to-point mailboxes for the simulated MPI runtime.
//
// Each rank owns one Mailbox.  send() is buffered (never blocks), so halo
// exchange cycles cannot deadlock; recv() blocks until a message with a
// matching (source, tag) arrives.  Message order between a fixed
// (source, tag) pair is FIFO, mirroring MPI's non-overtaking guarantee.
//
// Blocking pops also observe a context-wide abort flag (installed by
// Context): when a peer rank dies, every waiter is woken and throws
// AbortedError instead of blocking forever on a message that will never
// arrive.
//
// Memory-order contract for the abort flag (owned by Context::abort):
//  * The flag is written once, with release semantics; pop/try_pop read
//    it with acquire loads, so a rank that throws AbortedError also sees
//    every write the aborting rank made before dying.
//  * The acquire load alone is only the *visibility* half.  The *wakeup*
//    half is notify_abort(): it acquires and releases the mailbox mutex
//    before notifying, which orders the flag write before any waiter's
//    next predicate evaluation (predicates run under that mutex).  A
//    waiter therefore either observes the flag when it re-checks, or has
//    not yet parked and will observe it on first check — the flag cannot
//    be set "between" a final predicate check and the park.
//  * Queued messages outrank the abort: a pop whose message is already
//    buffered returns it even after abort, so completed exchanges drain
//    deterministically during unwind.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace v6d::comm {

/// Thrown out of blocking comm operations when the owning Context has been
/// aborted (a peer rank threw).  comm::run suppresses these in favour of
/// the original error.
class AbortedError : public std::runtime_error {
 public:
  AbortedError()
      : std::runtime_error("comm: context aborted (a peer rank failed)") {}
};

/// Monotonic receive-side traffic counters, snapshot under the mailbox
/// mutex (stats()).  "pushed" counts what peers delivered, "popped" what
/// the owning rank consumed; `pop_wait_s` is the total wall time blocked
/// inside pop() (including waits that ended in AbortedError).  Counters
/// only ever grow for the lifetime of the Context — callers that want
/// per-interval numbers take deltas of snapshots.
struct MailboxStats {
  std::uint64_t messages_pushed = 0;
  std::uint64_t bytes_pushed = 0;
  std::uint64_t messages_popped = 0;
  std::uint64_t bytes_popped = 0;
  std::uint64_t peak_queue_depth = 0;  // high-water mark of queued messages
  double pop_wait_s = 0.0;
};

class Mailbox {
 public:
  void push(int source, int tag, std::vector<std::uint8_t> payload);
  /// Blocks until a matching message arrives; returns its payload.
  /// Throws AbortedError if the context is aborted while waiting.
  std::vector<std::uint8_t> pop(int source, int tag);
  /// Non-blocking pop: moves a matching message into `out` and returns
  /// true, or returns false if none is queued.  Throws AbortedError once
  /// the context is aborted, so completion-handle pollers cannot spin on a
  /// message that will never arrive.
  bool try_pop(int source, int tag, std::vector<std::uint8_t>& out);
  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int source, int tag);

  /// Install the context-wide abort flag consulted by blocking pops.
  /// Must be called before any rank thread touches the mailbox.
  void set_abort_flag(const std::atomic<bool>* abort) { abort_ = abort; }
  /// Wake every blocked pop so it can observe the abort flag.
  void notify_abort();

  /// Number of live (source, tag) queues.  pop() erases a queue it has
  /// drained, so long runs cycling through step-scoped tags do not grow
  /// the map without bound; tests assert on this.
  std::size_t queue_count() const;

  /// Consistent snapshot of the traffic counters.
  MailboxStats stats() const;
  /// (messages, bytes) successfully popped that arrived from `source`.
  std::pair<std::uint64_t, std::uint64_t> received_from(int source) const;

 private:
  using Key = std::pair<int, int>;  // (source, tag)
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> queues_;
  const std::atomic<bool>* abort_ = nullptr;
  // Traffic accounting, all guarded by mutex_.
  MailboxStats stats_;
  std::uint64_t depth_ = 0;  // currently queued messages
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> per_source_;
};

}  // namespace v6d::comm
