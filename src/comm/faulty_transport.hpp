// Fault-injection decorator for any Transport backend.
//
// Wraps an inner transport and perturbs the user send() path according to
// a seeded FaultPlan: messages can be dropped before they reach the wire,
// delayed, truncated ("short write"), or the rank can be disconnected
// abruptly mid-job (inner->fail_hard(), simulating a crash).  Faults are
// deterministic for a given (seed, call sequence), so a failing test case
// replays exactly.
//
// Failure semantics mirror the real thing: a transport that loses a
// message cannot deliver "most of it" or hang the receiver — the fault
// aborts the world and surfaces as TransportError on the faulting rank
// and AbortedError on every parked peer.  The conformance suite asserts
// exactly that: clean errors, never hangs, never partial messages.
#pragma once

#include <cstdint>
#include <memory>
#include <random>

#include "comm/retry.hpp"
#include "comm/transport.hpp"

namespace v6d::comm {

/// What to inject and when.  Counters are per-wrapped-transport (i.e. per
/// rank when used with LaunchOptions::wrap); -1 disables a trigger.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  /// Probability [0,1] that any given send() is dropped (then aborts).
  double drop_prob = 0.0;
  /// Drop (and abort) on the Nth send(), 0-based.  -1 = never.
  long drop_after = -1;
  /// Probability [0,1] that a send() is delayed by delay_ms first.
  double delay_prob = 0.0;
  double delay_ms = 1.0;
  /// Simulate a short write on the Nth send(): the message is lost
  /// mid-frame and the world aborts.  -1 = never.
  long fail_send_after = -1;
  /// Abrupt disconnect (inner->fail_hard()) on the Nth send() — peers see
  /// a dead connection, possibly with a partial frame.  -1 = never.  This
  /// is the scripted peer-loss-at-message-K schedule.
  long disconnect_after = -1;

  // ---- scripted schedules (deterministic by construction, no dice) ----
  /// Transient outage starting at the Nth send(): that send's link is
  /// down for `transient_outage` consecutive attempts.  The decorator
  /// retries on the `retry` schedule and re-sends the undelivered frame
  /// once the outage clears — inside the retry grace window the fault is
  /// invisible to peers (the frame arrives exactly once, just late).
  /// If the schedule exhausts first, the world aborts with
  /// TransportError{kInjected}.  -1 = never.
  long transient_fail_at = -1;
  /// How many attempts the scripted outage eats before the link heals.
  int transient_outage = 1;
  /// Backoff schedule for transient retries; max_attempts bounds the
  /// grace window (0 = retry forever, which a scripted outage always
  /// outlasts eventually).
  RetryPolicy retry{1.0, 8.0, 2.0, 0.0, 6, 0x5eedu};
  /// Teardown race: shutdown() flushes goodbyes, then drops every
  /// connection immediately (inner->depart_abruptly()) instead of
  /// lingering for the peers' goodbyes — a rank reaped right after its
  /// final barrier.  Peers must see a departure, not a crash.
  bool vanish_after_bye = false;
};

class FaultyTransport final : public Transport {
 public:
  FaultyTransport(std::unique_ptr<Transport> inner, const FaultPlan& plan);
  ~FaultyTransport() override;

  const char* name() const override { return "faulty"; }
  int rank() const override { return inner_->rank(); }
  int world() const override { return inner_->world(); }

  /// Applies the fault plan, then forwards.  Injected drops/short-writes
  /// abort the world and throw TransportError; an injected disconnect
  /// calls inner->fail_hard() and throws TransportError.
  void send(int dest, int tag, const void* data, std::size_t bytes) override;
  Mailbox& inbox() override { return inner_->inbox(); }

  // Collectives and control flow pass through untouched: the plan targets
  // the p2p data path, where loss is observable per message.
  void barrier() override { inner_->barrier(); }
  void gather_all(
      const void* local, std::size_t bytes,
      const std::function<void(const StageView&)>& consume) override {
    inner_->gather_all(local, bytes, consume);
  }
  void bcast(void* data, std::size_t bytes, int root) override {
    inner_->bcast(data, bytes, root);
  }
  std::vector<std::vector<std::uint8_t>> alltoallv(
      const std::vector<std::vector<std::uint8_t>>& send) override {
    return inner_->alltoallv(send);
  }

  void abort() noexcept override { inner_->abort(); }
  bool aborted() const override { return inner_->aborted(); }
  void fail_hard() noexcept override { inner_->fail_hard(); }
  /// Honors plan.vanish_after_bye (goodbye-then-drop); otherwise
  /// forwards the graceful teardown.
  void shutdown() override;
  void depart_abruptly() override { inner_->depart_abruptly(); }
  void rethrow_diagnosis() override { inner_->rethrow_diagnosis(); }

  /// Number of send() calls observed so far (fired or not).
  long sends_seen() const { return sends_; }
  /// Retry attempts burned by scripted transient outages so far.
  int transient_retries() const { return transient_retries_; }

 private:
  std::unique_ptr<Transport> inner_;
  FaultPlan plan_;
  std::mt19937_64 rng_;
  long sends_ = 0;
  int transient_retries_ = 0;
};

}  // namespace v6d::comm
