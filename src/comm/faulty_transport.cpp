#include "comm/faulty_transport.hpp"

#include <chrono>
#include <string>
#include <thread>

namespace v6d::comm {

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 const FaultPlan& plan)
    : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {}

FaultyTransport::~FaultyTransport() = default;

void FaultyTransport::send(int dest, int tag, const void* data,
                           std::size_t bytes) {
  const long n = sends_++;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  if (plan_.disconnect_after >= 0 && n >= plan_.disconnect_after) {
    // Crash simulation: the rank vanishes without ceremony.  fail_hard()
    // leaves peers a dead (possibly mid-frame) connection to diagnose.
    inner_->fail_hard();
    throw TransportError(TransportFault::kInjected, dest,
                         "injected disconnect before send #" +
                             std::to_string(n) + " to rank " +
                             std::to_string(dest));
  }
  if (plan_.transient_fail_at >= 0 && n == plan_.transient_fail_at) {
    // Scripted transient outage: the link is down for the next
    // `transient_outage` attempts.  Burn attempts against the retry
    // schedule, sleeping each backoff delay; if the schedule still has
    // budget when the outage ends, the frame goes out exactly once —
    // late, but invisible to the receiver.  Peers were never told, so
    // nothing needs re-synchronizing: this is the idempotent re-send of
    // an undelivered frame within the grace window.
    RetrySchedule schedule(plan_.retry);
    int outage_left = plan_.transient_outage;
    while (outage_left > 0) {
      --outage_left;  // this attempt hit the dead link; frame undelivered
      if (schedule.exhausted()) {
        inner_->abort();
        throw TransportError(
            TransportFault::kInjected, dest,
            "transient fault on send #" + std::to_string(n) + " to rank " +
                std::to_string(dest) + " outlived the retry budget (" +
                std::to_string(schedule.attempts()) + " attempts)");
      }
      ++transient_retries_;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          schedule.next_delay_ms()));
    }
  }
  const bool drop =
      (plan_.drop_after >= 0 && n == plan_.drop_after) ||
      (plan_.drop_prob > 0.0 && uniform(rng_) < plan_.drop_prob);
  if (drop) {
    // A lost message must not strand its receiver in pop(): the only
    // correct surface is a world abort — TransportError here, a clean
    // AbortedError wherever a peer is parked.
    inner_->abort();
    throw TransportError(TransportFault::kInjected, dest,
                         "injected drop of send #" + std::to_string(n) +
                             " to rank " + std::to_string(dest) + " (tag " +
                             std::to_string(tag) + ")");
  }
  if (plan_.fail_send_after >= 0 && n == plan_.fail_send_after) {
    // Short write: the frame went out truncated, so the channel is junk
    // from here on.  Same abort surface as a drop — the bytes that did
    // leave must never be delivered as a message.
    inner_->abort();
    throw TransportError(TransportFault::kInjected, dest,
                         "injected short write on send #" +
                             std::to_string(n) + " to rank " +
                             std::to_string(dest));
  }
  if (plan_.delay_prob > 0.0 && uniform(rng_) < plan_.delay_prob) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(plan_.delay_ms));
  }
  inner_->send(dest, tag, data, bytes);
}

void FaultyTransport::shutdown() {
  if (plan_.vanish_after_bye) {
    // Goodbye-then-gone: the rank flushes its goodbyes and drops every
    // connection without waiting for the peers' own goodbyes.
    inner_->depart_abruptly();
    return;
  }
  inner_->shutdown();
}

}  // namespace v6d::comm
