// Simulated MPI: a message-passing runtime over pluggable transports.
//
// Substitutes for MPI on Fugaku (see DESIGN.md §2).  The API deliberately
// mirrors the MPI subset the paper's code needs (blocking tagged p2p,
// barrier, allreduce, bcast, gather, alltoall, Cartesian topology), so
// porting to real MPI is mechanical.  What a "rank" physically is belongs
// to the Transport underneath (transport.hpp): threads of one process
// (InProcTransport, the default under comm::run) or one OS process per
// rank over TCP sockets (TcpTransport, the `transport=tcp` driver path).
// All traffic is counted per rank, and the scaling benches feed those
// measured volumes into the alpha-beta network model (perfmodel.hpp) to
// extrapolate to the paper's node counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/transport.hpp"

namespace v6d::comm {

class Communicator {
 public:
  /// Wrap one rank's transport endpoint.  The transport must outlive the
  /// communicator (comm::run and the driver own both).
  explicit Communicator(Transport& transport);

  int rank() const { return rank_; }
  int size() const { return transport_->world(); }

  // ---- point-to-point (blocking, buffered sends) ----
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  std::vector<std::uint8_t> recv_bytes(int source, int tag);

  // ---- non-blocking receive (completion handles) ----
  // Sends are buffered and never block, so the asynchronous half of an
  // overlapped exchange is the receive: irecv() records a pending
  // (source, tag) match that the caller completes after doing useful work.
  // Handles on the same (source, tag) complete in post order (the mailbox
  // is FIFO per pair).  wait() observes the context abort flag, so a peer
  // dying mid-overlap wakes the waiter with AbortedError.
  class RecvHandle {
   public:
    RecvHandle() = default;
    bool valid() const { return comm_ != nullptr; }
    /// Non-blocking completion test; caches the payload when it arrives.
    bool ready();
    /// Blocks until the message arrives and returns its payload; the
    /// handle is spent afterwards.
    std::vector<std::uint8_t> wait();
    /// wait() + typed size-checked copy-out (mirrors recv<T>).
    template <class T>
    void wait_into(T* data, std::size_t count) {
      auto payload = wait();
      if (payload.size() != count * sizeof(T))
        throw_size_mismatch(payload.size(), count * sizeof(T));
      std::memcpy(data, payload.data(), payload.size());
    }

   private:
    friend class Communicator;
    RecvHandle(Communicator* comm, int source, int tag)
        : comm_(comm), source_(source), tag_(tag) {}
    Communicator* comm_ = nullptr;
    int source_ = 0, tag_ = 0;
    bool done_ = false;
    std::vector<std::uint8_t> payload_;
  };

  /// Post a non-blocking receive for (source, tag).
  RecvHandle irecv(int source, int tag) {
    return RecvHandle(this, source, tag);
  }

  template <class T>
  void send(int dest, int tag, const T* data, std::size_t count) {
    send_bytes(dest, tag, data, count * sizeof(T));
  }
  template <class T>
  void recv(int source, int tag, T* data, std::size_t count) {
    auto payload = recv_bytes(source, tag);
    if (payload.size() != count * sizeof(T))
      throw_size_mismatch(payload.size(), count * sizeof(T));
    std::memcpy(data, payload.data(), payload.size());
  }
  /// Paired exchange (send to `dest`, receive from `source`); the buffered
  /// send makes this deadlock-free around periodic rings.
  template <class T>
  void sendrecv(int dest, int send_tag, const T* send_data,
                std::size_t send_count, int source, int recv_tag,
                T* recv_data, std::size_t recv_count) {
    send(dest, send_tag, send_data, send_count);
    recv(source, recv_tag, recv_data, recv_count);
  }

  // ---- collectives (all ranks must call in matching order) ----
  void barrier();

  /// Element-wise sum-reduction of `n` values in place across all ranks.
  /// Summation reads contributions in rank order on every backend, so the
  /// floating-point result is bit-identical across transports.
  void allreduce_sum(double* data, std::size_t n);
  void allreduce_sum(float* data, std::size_t n);
  double allreduce_sum(double x) {
    allreduce_sum(&x, 1);
    return x;
  }
  double allreduce_max(double x);
  double allreduce_min(double x);
  std::int64_t allreduce_sum(std::int64_t x);

  void bcast_bytes(void* data, std::size_t bytes, int root);
  template <class T>
  void bcast(T* data, std::size_t count, int root) {
    bcast_bytes(data, count * sizeof(T), root);
  }

  /// Gathers `count` elements from every rank; result (size*count) valid on
  /// every rank (allgather semantics).
  template <class T>
  std::vector<T> allgather(const T* data, std::size_t count) {
    std::vector<T> out(static_cast<std::size_t>(size()) * count);
    allgather_bytes(data, count * sizeof(T), out.data());
    return out;
  }

  /// Personalized all-to-all: block i of `send` (count elements) goes to
  /// rank i; block j of `recv` arrives from rank j.
  template <class T>
  void alltoall(const T* send, T* recv, std::size_t count) {
    alltoall_bytes(send, recv, count * sizeof(T));
  }

  /// Variable all-to-all over byte buffers.
  std::vector<std::vector<std::uint8_t>> alltoallv(
      const std::vector<std::vector<std::uint8_t>>& send);

  // ---- traffic accounting ----
  // Counts point-to-point traffic only: collectives move data through the
  // transport's internal collective channel (the staging area in-process,
  // internal frames over TCP), not the inbox mailbox, so they appear in
  // neither the send counters nor the mailbox stats.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  /// (bytes, messages) this rank sent to `dest`.
  std::uint64_t bytes_sent_to(int dest) const;
  std::uint64_t messages_sent_to(int dest) const;
  /// Receive-side counters: this rank's mailbox stats (delivered/consumed
  /// messages and bytes, queue high-water mark, blocked-in-pop seconds).
  MailboxStats recv_stats() const;
  /// (messages, bytes) this rank consumed that `source` sent it.
  std::pair<std::uint64_t, std::uint64_t> received_from(int source) const;
  /// Zero the send-side counters (benches isolate measured sections).
  /// Mailbox stats are monotonic for the transport lifetime and are *not*
  /// reset — interval consumers take snapshots and subtract.
  void reset_traffic_counters();

  Transport& transport() { return *transport_; }

 private:
  void allgather_bytes(const void* data, std::size_t bytes, void* out);
  void alltoall_bytes(const void* send, void* recv, std::size_t bytes_each);
  [[noreturn]] static void throw_size_mismatch(std::size_t got,
                                               std::size_t want);

  Transport* transport_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::vector<std::uint64_t> bytes_to_;  // per-peer send counters
  std::vector<std::uint64_t> msgs_to_;
};

/// Spawn `nranks` threads each running fn(comm) over the in-process
/// transport.  Exceptions from rank threads are collected and the first is
/// rethrown on the caller.
void run(int nranks, const std::function<void(Communicator&)>& fn);

}  // namespace v6d::comm
