// Alpha-beta network performance model.
//
// The scaling experiments (Tables 3-4 / Fig. 7) ran on up to 147,456 Fugaku
// nodes; this repo runs on one box.  The benches therefore combine
//   * per-rank compute time, measured on this machine, and
//   * communication volumes, measured exactly by the simulated runtime,
// with an analytic per-message cost  t = alpha + bytes / beta  whose
// (alpha, beta) defaults approximate a Tofu-D-class interconnect.  The model
// reproduces the *shape* of the paper's scaling tables: halo exchange
// (surface/volume) keeps the Vlasov part near-ideal, while the 2-D-
// decomposed FFT's alltoall makes the PM part degrade first.
#pragma once

#include <cstddef>
#include <cstdint>

namespace v6d::comm {

struct NetworkModel {
  double alpha = 1.0e-6;   // per-message latency [s] (Tofu-D ~ 1 us)
  double beta = 6.8e9;     // per-link bandwidth [bytes/s] (Tofu-D ~ 6.8 GB/s)

  double message_time(std::uint64_t bytes) const {
    return alpha + static_cast<double>(bytes) / beta;
  }

  /// Time for one rank to send `messages` point-to-point messages totalling
  /// `bytes` (serialized on its injection port).
  double p2p_time(std::uint64_t messages, std::uint64_t bytes) const {
    return static_cast<double>(messages) * alpha +
           static_cast<double>(bytes) / beta;
  }

  /// Ring/doubling allreduce of `bytes` across `nranks`.
  double allreduce_time(int nranks, std::uint64_t bytes) const;

  /// Pairwise-exchange alltoall: every rank sends `bytes_per_peer` to each
  /// of (nranks - 1) peers; steps are serialized.
  double alltoall_time(int nranks, std::uint64_t bytes_per_peer) const;
};

/// One simulation part's modeled wall time at a given scale.
struct ModeledPart {
  double compute = 0.0;  // max over ranks of measured compute [s]
  double comm = 0.0;     // modeled communication [s]
  double total() const { return compute + comm; }
};

}  // namespace v6d::comm
