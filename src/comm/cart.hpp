// Cartesian process topology (the paper's nx x ny x nz brick decomposition,
// §5.1.3).  Mirrors MPI_Cart_create / MPI_Cart_shift semantics with fully
// periodic boundaries (the simulation box is periodic).
#pragma once

#include <array>

#include "comm/communicator.hpp"

namespace v6d::comm {

class CartTopology {
 public:
  /// dims must multiply to comm.size().
  CartTopology(Communicator& comm, std::array<int, 3> dims);

  const std::array<int, 3>& dims() const { return dims_; }
  const std::array<int, 3>& coords() const { return coords_; }
  std::array<int, 3> coords_of(int rank) const;
  int rank_of(std::array<int, 3> coords) const;

  /// Neighbor ranks one step along `axis`: {backward (-1), forward (+1)}.
  std::array<int, 2> neighbors(int axis) const;

  /// Pick a near-cubic factorization of `nranks` (MPI_Dims_create-like).
  static std::array<int, 3> choose_dims(int nranks);

  Communicator& comm() { return comm_; }

 private:
  Communicator& comm_;
  std::array<int, 3> dims_;
  std::array<int, 3> coords_;
};

}  // namespace v6d::comm
