#include <algorithm>
#include <cstring>

#include "comm/communicator.hpp"
#include "comm/context.hpp"

namespace v6d::comm {

namespace {

// Every collective has the shape: publish local buffer, barrier, read
// peers, barrier.  The trailing barrier keeps a fast rank from re-staging
// before a slow one has finished reading.
template <class Fn>
void staged_collective(Context* ctx, int rank, const void* local,
                       std::size_t bytes, Fn&& consume) {
  ctx->stage(rank, local, bytes);
  ctx->barrier().arrive_and_wait();
  consume();
  ctx->barrier().arrive_and_wait();
}

template <class T>
void allreduce_sum_impl(Context* ctx, Communicator& comm, T* data,
                        std::size_t n) {
  std::vector<T> local(data, data + n);
  staged_collective(ctx, comm.rank(), local.data(), n * sizeof(T), [&] {
    std::fill(data, data + n, T(0));
    for (int r = 0; r < ctx->size(); ++r) {
      const T* src = static_cast<const T*>(ctx->staged_ptr(r));
      for (std::size_t i = 0; i < n; ++i) data[i] += src[i];
    }
  });
}

}  // namespace

void Communicator::allreduce_sum(double* data, std::size_t n) {
  allreduce_sum_impl(ctx_, *this, data, n);
  bytes_sent_ += n * sizeof(double);
}

void Communicator::allreduce_sum(float* data, std::size_t n) {
  allreduce_sum_impl(ctx_, *this, data, n);
  bytes_sent_ += n * sizeof(float);
}

std::int64_t Communicator::allreduce_sum(std::int64_t x) {
  std::int64_t v = x;
  staged_collective(ctx_, rank_, &v, sizeof(v), [&] {
    x = 0;
    for (int r = 0; r < ctx_->size(); ++r)
      x += *static_cast<const std::int64_t*>(ctx_->staged_ptr(r));
  });
  bytes_sent_ += sizeof(std::int64_t);
  return x;
}

double Communicator::allreduce_max(double x) {
  double v = x;
  staged_collective(ctx_, rank_, &v, sizeof(v), [&] {
    for (int r = 0; r < ctx_->size(); ++r)
      x = std::max(x, *static_cast<const double*>(ctx_->staged_ptr(r)));
  });
  bytes_sent_ += sizeof(double);
  return x;
}

double Communicator::allreduce_min(double x) {
  double v = x;
  staged_collective(ctx_, rank_, &v, sizeof(v), [&] {
    for (int r = 0; r < ctx_->size(); ++r)
      x = std::min(x, *static_cast<const double*>(ctx_->staged_ptr(r)));
  });
  bytes_sent_ += sizeof(double);
  return x;
}

void Communicator::bcast_bytes(void* data, std::size_t bytes, int root) {
  staged_collective(ctx_, rank_, data, bytes, [&] {
    if (rank_ != root)
      std::memcpy(data, ctx_->staged_ptr(root), bytes);
  });
  if (rank_ == root) bytes_sent_ += bytes;
}

void Communicator::allgather_bytes(const void* data, std::size_t bytes,
                                   void* out) {
  staged_collective(ctx_, rank_, data, bytes, [&] {
    auto* dst = static_cast<std::uint8_t*>(out);
    for (int r = 0; r < ctx_->size(); ++r)
      std::memcpy(dst + static_cast<std::size_t>(r) * bytes,
                  ctx_->staged_ptr(r), bytes);
  });
  bytes_sent_ += bytes;
}

void Communicator::alltoall_bytes(const void* send, void* recv,
                                  std::size_t bytes_each) {
  staged_collective(ctx_, rank_, send, bytes_each * ctx_->size(), [&] {
    auto* dst = static_cast<std::uint8_t*>(recv);
    for (int r = 0; r < ctx_->size(); ++r) {
      const auto* src = static_cast<const std::uint8_t*>(ctx_->staged_ptr(r));
      std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each,
                  src + static_cast<std::size_t>(rank_) * bytes_each,
                  bytes_each);
    }
  });
  bytes_sent_ += bytes_each * static_cast<std::size_t>(ctx_->size() - 1);
}

std::vector<std::vector<std::uint8_t>> Communicator::alltoallv(
    const std::vector<std::vector<std::uint8_t>>& send) {
  const int n = ctx_->size();
  std::vector<std::vector<std::uint8_t>> recv(static_cast<std::size_t>(n));
  staged_collective(ctx_, rank_, &send, 0, [&] {
    for (int r = 0; r < n; ++r) {
      const auto* peer =
          static_cast<const std::vector<std::vector<std::uint8_t>>*>(
              ctx_->staged_ptr(r));
      recv[static_cast<std::size_t>(r)] =
          (*peer)[static_cast<std::size_t>(rank_)];
    }
  });
  for (const auto& buf : send) {
    bytes_sent_ += buf.size();
    if (!buf.empty()) ++messages_sent_;
  }
  return recv;
}

}  // namespace v6d::comm
