// Collectives over the transport seam.  Each one is built on the
// Transport's staged-gather / bcast / alltoallv primitives; reductions
// read the per-rank contributions in rank order, so the floating-point
// results are bit-identical across backends (and identical to the
// pre-seam in-process runtime).
#include <algorithm>
#include <cstring>

#include "comm/communicator.hpp"

namespace v6d::comm {

namespace {

template <class T>
void allreduce_sum_impl(Transport* transport, int nranks, T* data,
                        std::size_t n) {
  std::vector<T> local(data, data + n);
  transport->gather_all(local.data(), n * sizeof(T), [&](const StageView& v) {
    std::fill(data, data + n, T(0));
    for (int r = 0; r < nranks; ++r) {
      const T* src = static_cast<const T*>(v.data(r));
      for (std::size_t i = 0; i < n; ++i) data[i] += src[i];
    }
  });
}

}  // namespace

void Communicator::allreduce_sum(double* data, std::size_t n) {
  allreduce_sum_impl(transport_, size(), data, n);
  bytes_sent_ += n * sizeof(double);
}

void Communicator::allreduce_sum(float* data, std::size_t n) {
  allreduce_sum_impl(transport_, size(), data, n);
  bytes_sent_ += n * sizeof(float);
}

std::int64_t Communicator::allreduce_sum(std::int64_t x) {
  std::int64_t v = x;
  transport_->gather_all(&v, sizeof(v), [&](const StageView& view) {
    x = 0;
    for (int r = 0; r < size(); ++r)
      x += *static_cast<const std::int64_t*>(view.data(r));
  });
  bytes_sent_ += sizeof(std::int64_t);
  return x;
}

double Communicator::allreduce_max(double x) {
  double v = x;
  transport_->gather_all(&v, sizeof(v), [&](const StageView& view) {
    for (int r = 0; r < size(); ++r)
      x = std::max(x, *static_cast<const double*>(view.data(r)));
  });
  bytes_sent_ += sizeof(double);
  return x;
}

double Communicator::allreduce_min(double x) {
  double v = x;
  transport_->gather_all(&v, sizeof(v), [&](const StageView& view) {
    for (int r = 0; r < size(); ++r)
      x = std::min(x, *static_cast<const double*>(view.data(r)));
  });
  bytes_sent_ += sizeof(double);
  return x;
}

void Communicator::bcast_bytes(void* data, std::size_t bytes, int root) {
  transport_->bcast(data, bytes, root);
  if (rank_ == root) bytes_sent_ += bytes;
}

void Communicator::allgather_bytes(const void* data, std::size_t bytes,
                                   void* out) {
  transport_->gather_all(data, bytes, [&](const StageView& view) {
    auto* dst = static_cast<std::uint8_t*>(out);
    for (int r = 0; r < size(); ++r)
      std::memcpy(dst + static_cast<std::size_t>(r) * bytes, view.data(r),
                  bytes);
  });
  bytes_sent_ += bytes;
}

void Communicator::alltoall_bytes(const void* send, void* recv,
                                  std::size_t bytes_each) {
  const int n = size();
  transport_->gather_all(
      send, bytes_each * static_cast<std::size_t>(n),
      [&](const StageView& view) {
        auto* dst = static_cast<std::uint8_t*>(recv);
        for (int r = 0; r < n; ++r) {
          const auto* src = static_cast<const std::uint8_t*>(view.data(r));
          std::memcpy(dst + static_cast<std::size_t>(r) * bytes_each,
                      src + static_cast<std::size_t>(rank_) * bytes_each,
                      bytes_each);
        }
      });
  bytes_sent_ += bytes_each * static_cast<std::size_t>(n - 1);
}

std::vector<std::vector<std::uint8_t>> Communicator::alltoallv(
    const std::vector<std::vector<std::uint8_t>>& send) {
  auto recv = transport_->alltoallv(send);
  for (const auto& buf : send) {
    bytes_sent_ += buf.size();
    if (!buf.empty()) ++messages_sent_;
  }
  return recv;
}

}  // namespace v6d::comm
