// Thread launchers for the simulated MPI runtime (comm::run itself is
// declared in communicator.hpp).  run_transport generalizes comm::run
// over the transport seam: the same rank body can execute over in-process
// mailboxes or over per-rank TCP endpoints exchanged through loopback —
// which is how the conformance suite proves the backends interchangeable
// without forking processes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/transport.hpp"

namespace v6d::comm {

/// How run_transport builds each rank's endpoint.
struct LaunchOptions {
  /// "inproc" (shared Context) or "tcp" (one TcpTransport per rank thread,
  /// rendezvousing over loopback — process-grade framing without fork).
  std::string backend = "inproc";
  /// tcp: explicit "host:port,host:port,..." listen list (entry r = rank
  /// r) or a rendezvous directory path; empty = a fresh temporary
  /// directory, removed afterwards.
  std::string rendezvous;
  /// tcp: rendezvous/connect/teardown timeout.
  double timeout_s = 30.0;
  /// tcp: liveness deadline — a peer silent for this long is declared
  /// lost (TransportError{kPeerLost, rank}).  0 disables detection, the
  /// default here and the only meaningful setting for inproc (thread
  /// ranks cannot vanish without unwinding).
  double liveness_timeout_s = 0.0;
  /// tcp: heartbeat send period; 0 derives it from the liveness
  /// deadline, negative disables sending (see TcpOptions).
  double heartbeat_interval_s = 0.0;
  /// Optional per-rank decorator applied to every endpoint before use —
  /// the fault-injection hook (wrap rank k in a FaultyTransport, pass the
  /// rest through).  Called on the rank's own thread.
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>, int)>
      wrap;
};

/// Run fn(comm) on `nranks` ranks over the requested backend with
/// comm::run's error semantics: secondary AbortedError unwinds are
/// dropped, the first real exception aborts the world and is rethrown on
/// the caller.
void run_transport(int nranks, const LaunchOptions& options,
                   const std::function<void(Communicator&)>& fn);

/// Run fn on every rank and gather each rank's double result into a vector
/// indexed by rank (valid on the caller).  Convenience for the benches.
std::vector<double> run_collect(int nranks,
                                const std::function<double(Communicator&)>& fn);

}  // namespace v6d::comm
