// Thread launcher for the simulated MPI runtime (declared in
// communicator.hpp as comm::run); this header only exposes helpers for
// collecting per-rank results.
#pragma once

#include <functional>
#include <vector>

#include "comm/communicator.hpp"

namespace v6d::comm {

/// Run fn on every rank and gather each rank's double result into a vector
/// indexed by rank (valid on the caller).  Convenience for the benches.
std::vector<double> run_collect(int nranks,
                                const std::function<double(Communicator&)>& fn);

}  // namespace v6d::comm
