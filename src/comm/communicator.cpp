#include "comm/communicator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "comm/context.hpp"

namespace v6d::comm {

Communicator::Communicator(Context* ctx, int rank)
    : ctx_(ctx),
      rank_(rank),
      bytes_to_(static_cast<std::size_t>(ctx->size()), 0),
      msgs_to_(static_cast<std::size_t>(ctx->size()), 0) {}

int Communicator::size() const { return ctx_->size(); }

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t bytes) {
  std::vector<std::uint8_t> payload(bytes);
  std::memcpy(payload.data(), data, bytes);
  ctx_->mailbox(dest).push(rank_, tag, std::move(payload));
  bytes_sent_ += bytes;
  ++messages_sent_;
  bytes_to_[static_cast<std::size_t>(dest)] += bytes;
  msgs_to_[static_cast<std::size_t>(dest)] += 1;
}

std::uint64_t Communicator::bytes_sent_to(int dest) const {
  return bytes_to_[static_cast<std::size_t>(dest)];
}

std::uint64_t Communicator::messages_sent_to(int dest) const {
  return msgs_to_[static_cast<std::size_t>(dest)];
}

MailboxStats Communicator::recv_stats() const {
  return ctx_->mailbox(rank_).stats();
}

std::pair<std::uint64_t, std::uint64_t> Communicator::received_from(
    int source) const {
  return ctx_->mailbox(rank_).received_from(source);
}

void Communicator::reset_traffic_counters() {
  bytes_sent_ = 0;
  messages_sent_ = 0;
  std::fill(bytes_to_.begin(), bytes_to_.end(), 0);
  std::fill(msgs_to_.begin(), msgs_to_.end(), 0);
}

std::vector<std::uint8_t> Communicator::recv_bytes(int source, int tag) {
  return ctx_->mailbox(rank_).pop(source, tag);
}

bool Communicator::RecvHandle::ready() {
  if (done_) return true;
  done_ = comm_->ctx_->mailbox(comm_->rank_).try_pop(source_, tag_, payload_);
  return done_;
}

std::vector<std::uint8_t> Communicator::RecvHandle::wait() {
  if (!done_) payload_ = comm_->ctx_->mailbox(comm_->rank_).pop(source_, tag_);
  done_ = false;  // spent: a reused handle must not return stale bytes
  return std::move(payload_);
}

void Communicator::barrier() { ctx_->barrier().arrive_and_wait(); }

void Communicator::throw_size_mismatch(std::size_t got, std::size_t want) {
  throw std::runtime_error("comm: recv size mismatch: got " +
                           std::to_string(got) + " bytes, expected " +
                           std::to_string(want));
}

}  // namespace v6d::comm
