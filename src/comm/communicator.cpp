#include "comm/communicator.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace v6d::comm {

Communicator::Communicator(Transport& transport)
    : transport_(&transport),
      rank_(transport.rank()),
      bytes_to_(static_cast<std::size_t>(transport.world()), 0),
      msgs_to_(static_cast<std::size_t>(transport.world()), 0) {}

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t bytes) {
  transport_->send(dest, tag, data, bytes);
  bytes_sent_ += bytes;
  ++messages_sent_;
  bytes_to_[static_cast<std::size_t>(dest)] += bytes;
  msgs_to_[static_cast<std::size_t>(dest)] += 1;
}

std::uint64_t Communicator::bytes_sent_to(int dest) const {
  return bytes_to_[static_cast<std::size_t>(dest)];
}

std::uint64_t Communicator::messages_sent_to(int dest) const {
  return msgs_to_[static_cast<std::size_t>(dest)];
}

MailboxStats Communicator::recv_stats() const {
  return transport_->inbox().stats();
}

std::pair<std::uint64_t, std::uint64_t> Communicator::received_from(
    int source) const {
  return transport_->inbox().received_from(source);
}

void Communicator::reset_traffic_counters() {
  bytes_sent_ = 0;
  messages_sent_ = 0;
  std::fill(bytes_to_.begin(), bytes_to_.end(), 0);
  std::fill(msgs_to_.begin(), msgs_to_.end(), 0);
}

std::vector<std::uint8_t> Communicator::recv_bytes(int source, int tag) {
  return transport_->inbox().pop(source, tag);
}

bool Communicator::RecvHandle::ready() {
  if (done_) return true;
  done_ = comm_->transport_->inbox().try_pop(source_, tag_, payload_);
  return done_;
}

std::vector<std::uint8_t> Communicator::RecvHandle::wait() {
  if (!done_) payload_ = comm_->transport_->inbox().pop(source_, tag_);
  done_ = false;  // spent: a reused handle must not return stale bytes
  return std::move(payload_);
}

void Communicator::barrier() { transport_->barrier(); }

void Communicator::throw_size_mismatch(std::size_t got, std::size_t want) {
  throw std::runtime_error("comm: recv size mismatch: got " +
                           std::to_string(got) + " bytes, expected " +
                           std::to_string(want));
}

}  // namespace v6d::comm
