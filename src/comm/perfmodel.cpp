#include "comm/perfmodel.hpp"

#include <cmath>

namespace v6d::comm {

double NetworkModel::allreduce_time(int nranks, std::uint64_t bytes) const {
  if (nranks <= 1) return 0.0;
  // Recursive doubling: ceil(log2(p)) rounds of (alpha + bytes/beta).
  const double rounds = std::ceil(std::log2(static_cast<double>(nranks)));
  return rounds * message_time(bytes);
}

double NetworkModel::alltoall_time(int nranks,
                                   std::uint64_t bytes_per_peer) const {
  if (nranks <= 1) return 0.0;
  return static_cast<double>(nranks - 1) * message_time(bytes_per_peer);
}

}  // namespace v6d::comm
