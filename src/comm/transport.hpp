// The byte-level transport seam under the simulated-MPI runtime.
//
// Communicator (communicator.hpp) implements the MPI-shaped API — typed
// sends, collectives, traffic accounting — but everything that actually
// *moves bytes between ranks* goes through this interface.  A Transport is
// one rank's endpoint into a world of `world()` peers; backends decide what
// a "peer" is:
//
//   * InProcTransport (inproc_transport.hpp) — today's thread ranks inside
//     one process, sharing a Context of mailboxes, a generation barrier and
//     a zero-copy pointer staging area.  Bit-identical in behaviour and
//     performance to the pre-seam runtime.
//   * TcpTransport (tcp_transport.hpp) — one OS process per rank,
//     length-prefixed frames over nonblocking loopback/LAN sockets, so the
//     same solver spans address spaces.
//   * FaultyTransport (faulty_transport.hpp) — a decorator injecting
//     seeded faults (drops, delays, short writes, disconnects) to prove the
//     comm layer degrades to clean errors instead of hangs or corruption.
//
// Contract highlights (the conformance suite in tests/test_transport.cpp
// asserts these on every backend):
//   * send() is buffered and non-blocking with respect to the receiver: a
//     rank may send arbitrarily many messages before the peer receives any
//     (framing/queueing must absorb them), so periodic exchange rings
//     cannot deadlock.
//   * Messages between a fixed (source, dest) pair arrive in send order
//     for a given tag (MPI's non-overtaking rule); delivery lands in the
//     destination's inbox() Mailbox, which owns tag matching and the
//     blocking/abort semantics.
//   * Collectives must be called by every rank in matching order.  They
//     move data on an internal channel that never appears in inbox()
//     stats (mirrors the in-process staging area's accounting).
//   * abort() is noexcept, idempotent, callable from any thread, and must
//     wake every rank parked in a blocking receive or collective — local
//     *and* remote — with AbortedError.  A transport that detects a dead
//     peer (disconnect without goodbye, framing violation) aborts itself;
//     a partially transferred message is never delivered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/mailbox.hpp"

namespace v6d::comm {

/// First tag available to user point-to-point traffic.  Tags in
/// [0, kFirstUserTag) are reserved for the transport's internal
/// collective/control channel: today both backends move collective
/// payloads out-of-band (the in-process staging area, TCP's separate
/// internal mailbox keyed by an op-sequence counter), but a
/// single-tag-space backend — real MPI — must map those op-sequence
/// tags somewhere, and this reserves the range so user exchanges can
/// never cross-match them.  tools/analyze's `tag-space` check proves
/// statically that every user tag in the tree resolves at or above
/// this floor.
inline constexpr int kFirstUserTag = 64;

/// Tag carried by transport liveness (heartbeat) frames inside the
/// reserved internal channel.  Heartbeats are control traffic: they must
/// never be matchable by a user receive, so the tag sits below
/// kFirstUserTag — the `tag-space` analyze check verifies that every
/// reserved-channel constant declared under src/comm/ stays inside
/// [0, kFirstUserTag) and that no two reservations collide.
inline constexpr int kHeartbeatTag = 0;

/// Why a transport operation failed — the classification the failure
/// detector and the supervisor act on.  kPeerLost and kTimeout are
/// retryable from a checkpoint (the peer or the fabric died); kProtocol
/// means corrupted framing (a bug or a bad actor, not worth retrying
/// blindly); kInjected marks FaultyTransport's scripted faults so tests
/// can assert the exact path taken.
enum class TransportFault {
  kUnknown,
  kPeerLost,   // crash, EOF mid-stream, or missed liveness deadline
  kTimeout,    // mesh establishment (rendezvous / connect / accept)
  kProtocol,   // framing violation: bad magic, oversize, unknown kind
  kInjected,   // scripted fault from FaultyTransport
};

/// Thrown by transport operations that fail for transport-level reasons
/// (peer unreachable, connection lost, framing violation, injected
/// fault).  Distinct from AbortedError: a TransportError identifies the
/// *first* failure, AbortedError the secondary wakeups it causes.
/// Carries the fault class and (when known) the peer rank involved, so
/// callers — the driver's exit-code mapping, the supervisor's restart
/// decision — can react without parsing the message.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error("transport: " + what) {}
  TransportError(TransportFault fault, int peer, const std::string& what)
      : std::runtime_error("transport: " + what),
        fault_(fault),
        peer_(peer) {}

  TransportFault fault() const { return fault_; }
  /// Rank of the peer involved in the failure; -1 when unknown.
  int peer() const { return peer_; }

 private:
  TransportFault fault_ = TransportFault::kUnknown;
  int peer_ = -1;
};

/// Read-only view of every rank's contribution to a staged collective.
/// Pointers are valid only inside the gather_all() consume callback.
class StageView {
 public:
  virtual ~StageView() = default;
  virtual const void* data(int rank) const = 0;
  virtual std::size_t size(int rank) const = 0;
};

class Transport {
 public:
  virtual ~Transport();

  /// Backend identifier ("inproc", "tcp", ...), recorded in perf-report
  /// contexts so bench baselines are comparable per transport.
  virtual const char* name() const = 0;
  virtual int rank() const = 0;
  virtual int world() const = 0;

  // ---- rank-addressed point-to-point bytes ----
  /// Buffered send of `bytes` to `dest`'s inbox under `tag`.  Never blocks
  /// on the receiver; throws AbortedError after an abort, TransportError
  /// when the underlying channel fails (and aborts the world first, so
  /// peers cannot hang on the missing message).  dest == rank() loops back
  /// through the local inbox.
  virtual void send(int dest, int tag, const void* data,
                    std::size_t bytes) = 0;
  /// The local rank's tag-matched receive side.  All blocking/abort
  /// semantics live in Mailbox (see mailbox.hpp).
  virtual Mailbox& inbox() = 0;

  // ---- collectives (matching call order on every rank) ----
  virtual void barrier() = 0;
  /// Staged collective: contribute `bytes` bytes at `local`, then run
  /// `consume` with a view of every rank's contribution (all ranks
  /// contribute the same byte count; rank order of reads is up to the
  /// consumer, which is what keeps floating-point reductions bit-identical
  /// across backends).  `local` stays valid for the whole call.
  virtual void gather_all(
      const void* local, std::size_t bytes,
      const std::function<void(const StageView&)>& consume) = 0;
  /// Broadcast root's `bytes` bytes into every rank's `data`.
  virtual void bcast(void* data, std::size_t bytes, int root) = 0;
  /// Personalized variable all-to-all: block i of `send` goes to rank i,
  /// block j of the result arrived from rank j.
  virtual std::vector<std::vector<std::uint8_t>> alltoallv(
      const std::vector<std::vector<std::uint8_t>>& send) = 0;

  // ---- failure propagation / teardown ----
  /// Mark the world dead and wake every parked rank, local and remote.
  /// noexcept, idempotent, thread-safe (see mailbox.hpp for the abort-flag
  /// memory-order contract the backends must preserve).
  virtual void abort() noexcept = 0;
  virtual bool aborted() const = 0;
  /// Die abruptly, as a crashing process would: no goodbye, connections
  /// dropped (for TcpTransport: mid-frame, so peers exercise the
  /// short-read path).  Fault-injection hook; default = abort().
  virtual void fail_hard() noexcept { abort(); }
  /// Graceful teardown: flush goodbyes so peers can distinguish a clean
  /// exit from a crash.  Idempotent; default no-op (in-process ranks junk
  /// their Context wholesale).
  virtual void shutdown() {}
  /// Teardown for a rank that says goodbye but cannot linger: goodbyes
  /// are flushed, then every connection drops immediately without
  /// waiting for the peers' own goodbyes — the window a process killed
  /// right after its final barrier exits through.  Peers must treat it
  /// as a clean departure, not a crash.  Default = shutdown().
  virtual void depart_abruptly() { shutdown(); }
  /// If this endpoint diagnosed the failure that aborted the world
  /// (lost peer, liveness deadline, framing violation), throw it as the
  /// descriptive TransportError; otherwise return.  Lets a caller that
  /// woke with a *secondary* AbortedError surface the primary cause.
  virtual void rethrow_diagnosis() {}
};

}  // namespace v6d::comm
