#include "comm/inproc_transport.hpp"

#include <cstring>

namespace v6d::comm {

namespace {

/// Every staged collective has the shape: publish local buffer, barrier,
/// consume peers' buffers, barrier.  The trailing barrier keeps a fast
/// rank from re-staging before a slow one has finished reading.
template <class Fn>
void staged_collective(Context* ctx, int rank, const void* local,
                       std::size_t bytes, Fn&& consume) {
  ctx->stage(rank, local, bytes);
  ctx->barrier().arrive_and_wait();
  consume();
  ctx->barrier().arrive_and_wait();
}

/// StageView over the Context's published pointers: zero-copy reads of
/// every rank's contribution, valid between the two barriers.
class ContextStageView final : public StageView {
 public:
  explicit ContextStageView(const Context* ctx) : ctx_(ctx) {}
  const void* data(int rank) const override { return ctx_->staged_ptr(rank); }
  std::size_t size(int rank) const override {
    return ctx_->staged_bytes(rank);
  }

 private:
  const Context* ctx_;
};

}  // namespace

void InProcTransport::send(int dest, int tag, const void* data,
                           std::size_t bytes) {
  std::vector<std::uint8_t> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  ctx_->mailbox(dest).push(rank_, tag, std::move(payload));
}

void InProcTransport::gather_all(
    const void* local, std::size_t bytes,
    const std::function<void(const StageView&)>& consume) {
  staged_collective(ctx_, rank_, local, bytes,
                    [&] { consume(ContextStageView(ctx_)); });
}

void InProcTransport::bcast(void* data, std::size_t bytes, int root) {
  staged_collective(ctx_, rank_, data, bytes, [&] {
    if (rank_ != root) std::memcpy(data, ctx_->staged_ptr(root), bytes);
  });
}

std::vector<std::vector<std::uint8_t>> InProcTransport::alltoallv(
    const std::vector<std::vector<std::uint8_t>>& send) {
  const int n = ctx_->size();
  std::vector<std::vector<std::uint8_t>> recv(static_cast<std::size_t>(n));
  // Stages a pointer to the whole send vector (bytes = 0): peers copy the
  // one block addressed to them straight out of the sender's memory.
  staged_collective(ctx_, rank_, &send, 0, [&] {
    for (int r = 0; r < n; ++r) {
      const auto* peer =
          static_cast<const std::vector<std::vector<std::uint8_t>>*>(
              ctx_->staged_ptr(r));
      recv[static_cast<std::size_t>(r)] =
          (*peer)[static_cast<std::size_t>(rank_)];
    }
  });
  return recv;
}

}  // namespace v6d::comm
