#include "comm/mailbox.hpp"

namespace v6d::comm {

void Mailbox::push(int source, int tag, std::vector<std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[{source, tag}].push_back(std::move(payload));
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  cv_.wait(lock, [&] {
    if (abort_ && abort_->load(std::memory_order_acquire)) return true;
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) throw AbortedError();
  std::vector<std::uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  // Trim drained queues: tags are often step- or phase-scoped, so keeping
  // empty deques around grows the map unboundedly over long runs.
  if (it->second.empty()) queues_.erase(it);
  return payload;
}

bool Mailbox::try_pop(int source, int tag, std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  if (it == queues_.end() || it->second.empty()) {
    if (abort_ && abort_->load(std::memory_order_acquire))
      throw AbortedError();
    return false;
  }
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return true;
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  return it != queues_.end() && !it->second.empty();
}

void Mailbox::notify_abort() {
  // Lock to pair with the waiter's predicate check (no lost wakeups).
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

std::size_t Mailbox::queue_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_.size();
}

}  // namespace v6d::comm
