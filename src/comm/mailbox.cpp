#include "comm/mailbox.hpp"

#include <algorithm>
#include <chrono>

namespace v6d::comm {

namespace {
double seconds_between(std::chrono::steady_clock::time_point t0,
                       std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}
}  // namespace

void Mailbox::push(int source, int tag, std::vector<std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.messages_pushed += 1;
    stats_.bytes_pushed += payload.size();
    depth_ += 1;
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, depth_);
    queues_[{source, tag}].push_back(std::move(payload));
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  const auto wait_start = std::chrono::steady_clock::now();
  cv_.wait(lock, [&] {
    if (abort_ && abort_->load(std::memory_order_acquire)) return true;
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  // Wait time is charged even when the wait ends in an abort: the blocked
  // interval is real and trace consumers want to see it.
  stats_.pop_wait_s +=
      seconds_between(wait_start, std::chrono::steady_clock::now());
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) throw AbortedError();
  std::vector<std::uint8_t> payload = std::move(it->second.front());
  it->second.pop_front();
  stats_.messages_popped += 1;
  stats_.bytes_popped += payload.size();
  depth_ -= 1;
  auto& from = per_source_[source];
  from.first += 1;
  from.second += payload.size();
  // Trim drained queues: tags are often step- or phase-scoped, so keeping
  // empty deques around grows the map unboundedly over long runs.
  if (it->second.empty()) queues_.erase(it);
  return payload;
}

bool Mailbox::try_pop(int source, int tag, std::vector<std::uint8_t>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  if (it == queues_.end() || it->second.empty()) {
    if (abort_ && abort_->load(std::memory_order_acquire))
      throw AbortedError();
    return false;
  }
  out = std::move(it->second.front());
  it->second.pop_front();
  stats_.messages_popped += 1;
  stats_.bytes_popped += out.size();
  depth_ -= 1;
  auto& from = per_source_[source];
  from.first += 1;
  from.second += out.size();
  if (it->second.empty()) queues_.erase(it);
  return true;
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  return it != queues_.end() && !it->second.empty();
}

void Mailbox::notify_abort() {
  // Lock to pair with the waiter's predicate check (no lost wakeups).
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

std::size_t Mailbox::queue_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queues_.size();
}

MailboxStats Mailbox::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::pair<std::uint64_t, std::uint64_t> Mailbox::received_from(
    int source) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = per_source_.find(source);
  if (it == per_source_.end()) return {0, 0};
  return it->second;
}

}  // namespace v6d::comm
