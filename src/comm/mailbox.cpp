#include "comm/mailbox.hpp"

namespace v6d::comm {

void Mailbox::push(int source, int tag, std::vector<std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[{source, tag}].push_back(std::move(payload));
  }
  cv_.notify_all();
}

std::vector<std::uint8_t> Mailbox::pop(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  const Key key{source, tag};
  cv_.wait(lock, [&] {
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto& queue = queues_[key];
  std::vector<std::uint8_t> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = queues_.find({source, tag});
  return it != queues_.end() && !it->second.empty();
}

}  // namespace v6d::comm
