#include "comm/cart.hpp"

#include <stdexcept>

namespace v6d::comm {

CartTopology::CartTopology(Communicator& comm, std::array<int, 3> dims)
    : comm_(comm), dims_(dims) {
  if (dims[0] * dims[1] * dims[2] != comm.size())
    throw std::invalid_argument("CartTopology: dims do not match comm size");
  coords_ = coords_of(comm.rank());
}

std::array<int, 3> CartTopology::coords_of(int rank) const {
  // Row-major rank ordering: rank = (cx * ny + cy) * nz + cz.
  std::array<int, 3> c;
  c[2] = rank % dims_[2];
  rank /= dims_[2];
  c[1] = rank % dims_[1];
  c[0] = rank / dims_[1];
  return c;
}

int CartTopology::rank_of(std::array<int, 3> coords) const {
  auto wrap = [](int i, int n) { return ((i % n) + n) % n; };
  return (wrap(coords[0], dims_[0]) * dims_[1] + wrap(coords[1], dims_[1])) *
             dims_[2] +
         wrap(coords[2], dims_[2]);
}

std::array<int, 2> CartTopology::neighbors(int axis) const {
  std::array<int, 3> lo = coords_, hi = coords_;
  lo[static_cast<std::size_t>(axis)] -= 1;
  hi[static_cast<std::size_t>(axis)] += 1;
  return {rank_of(lo), rank_of(hi)};
}

std::array<int, 3> CartTopology::choose_dims(int nranks) {
  // Greedy near-cubic factorization: repeatedly peel the largest prime
  // factor onto the currently smallest dimension.
  std::array<int, 3> dims{1, 1, 1};
  int n = nranks;
  for (int p = 2; p * p <= n || n > 1;) {
    if (n % p == 0) {
      int smallest = 0;
      for (int i = 1; i < 3; ++i)
        if (dims[i] < dims[smallest]) smallest = i;
      dims[smallest] *= p;
      n /= p;
    } else {
      ++p;
      if (p * p > n && n > 1) {
        int smallest = 0;
        for (int i = 1; i < 3; ++i)
          if (dims[i] < dims[smallest]) smallest = i;
        dims[smallest] *= n;
        n = 1;
      }
    }
  }
  // Sort descending so dims[0] >= dims[1] >= dims[2].
  if (dims[0] < dims[1]) std::swap(dims[0], dims[1]);
  if (dims[1] < dims[2]) std::swap(dims[1], dims[2]);
  if (dims[0] < dims[1]) std::swap(dims[0], dims[1]);
  return dims;
}

}  // namespace v6d::comm
