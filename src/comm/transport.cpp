#include "comm/transport.hpp"

namespace v6d::comm {

// Out-of-line key function: anchors the vtable in one TU.
Transport::~Transport() = default;

}  // namespace v6d::comm
