// In-process transport backend: thread ranks sharing one Context.
//
// This is the pre-seam runtime verbatim, just spoken through the
// Transport interface: point-to-point bytes land in the destination's
// Mailbox directly, and the collectives use the Context's zero-copy
// pointer staging area (publish local pointer, barrier, read peers,
// barrier) — the consume callback reads each rank's bytes in place, so
// extracting the seam costs the hot reductions nothing.
#pragma once

#include "comm/context.hpp"
#include "comm/transport.hpp"

namespace v6d::comm {

class InProcTransport final : public Transport {
 public:
  /// One endpoint of `ctx`'s world.  The Context must outlive every
  /// transport built on it (comm::run owns both).
  InProcTransport(Context* ctx, int rank) : ctx_(ctx), rank_(rank) {}

  const char* name() const override { return "inproc"; }
  int rank() const override { return rank_; }
  int world() const override { return ctx_->size(); }

  void send(int dest, int tag, const void* data, std::size_t bytes) override;
  Mailbox& inbox() override { return ctx_->mailbox(rank_); }

  void barrier() override { ctx_->barrier().arrive_and_wait(); }
  void gather_all(
      const void* local, std::size_t bytes,
      const std::function<void(const StageView&)>& consume) override;
  void bcast(void* data, std::size_t bytes, int root) override;
  std::vector<std::vector<std::uint8_t>> alltoallv(
      const std::vector<std::vector<std::uint8_t>>& send) override;

  void abort() noexcept override { ctx_->abort(); }
  bool aborted() const override { return ctx_->aborted(); }

  Context* context() { return ctx_; }

 private:
  Context* ctx_;
  int rank_;
};

}  // namespace v6d::comm
