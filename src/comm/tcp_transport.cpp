#include "comm/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "comm/retry.hpp"
#include "common/log.hpp"

namespace v6d::comm {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kMagic = 0x76364431;  // "v6D1"
// Frames larger than this are a protocol violation, not a payload: the
// limit protects the receiver from allocating on a corrupt length field.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 34;  // 16 GiB

enum FrameKind : std::uint8_t {
  kHello = 1,      // connection handshake; tag = dialing rank
  kData = 2,       // user p2p message (Communicator::send)
  kInternal = 3,   // collective/control channel (barrier, gathers)
  kBye = 4,        // graceful close follows; EOF after this is clean
  kAbort = 5,      // sender aborted the world
  kHeartbeat = 6,  // liveness beacon (tag = kHeartbeatTag, no payload)
};

struct FrameHeader {
  std::uint32_t magic;
  std::uint8_t kind;
  std::uint8_t pad[3];
  std::int32_t tag;
  std::uint64_t size;  // payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 24, "wire layout is part of the ABI");

struct HostPort {
  std::string host;
  int port = 0;
};

bool parse_host_port(const std::string& text, HostPort& out) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 >= text.size()) return false;
  out.host = text.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(text.c_str() + colon + 1, &end, 10);
  if (!end || *end != '\0' || port <= 0 || port > 65535) return false;
  out.port = static_cast<int>(port);
  return true;
}

/// Split an explicit "host:port,host:port,..." listen list.
std::vector<HostPort> parse_host_list(const std::string& hosts, int world) {
  std::vector<HostPort> out;
  std::size_t start = 0;
  while (start <= hosts.size()) {
    const auto comma = hosts.find(',', start);
    const std::string item =
        hosts.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (!item.empty()) {
      HostPort hp;
      if (!parse_host_port(item, hp))
        throw TransportError("bad host:port entry '" + item + "' in '" +
                             hosts + "'");
      out.push_back(hp);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (static_cast<int>(out.size()) != world)
    throw TransportError("host list '" + hosts + "' names " +
                         std::to_string(out.size()) + " ranks, world is " +
                         std::to_string(world));
  return out;
}

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking full write on a (possibly nonblocking) socket; used only
/// during mesh setup, before the receiver thread exists.
bool write_fully_blocking(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      bytes -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR)) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

bool read_fully_blocking(int fd, void* data, std::size_t bytes,
                         double timeout_s) {
  auto* p = static_cast<std::uint8_t*>(data);
  const auto deadline = Clock::now() + std::chrono::duration<double>(timeout_s);
  while (bytes > 0) {
    const ssize_t n = ::recv(fd, p, bytes, 0);
    if (n > 0) {
      p += n;
      bytes -= static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Clock::now() >= deadline) return false;
      struct pollfd pfd = {fd, POLLIN, 0};
      ::poll(&pfd, 1, 50);
      continue;
    }
    return false;
  }
  return true;
}

/// StageView over per-rank byte blobs received on the internal channel
/// (the local rank's contribution aliases the caller's buffer).
class BlobStageView final : public StageView {
 public:
  BlobStageView(const std::vector<std::vector<std::uint8_t>>* blobs,
                const void* local, std::size_t local_bytes, int rank)
      : blobs_(blobs), local_(local), local_bytes_(local_bytes),
        rank_(rank) {}
  const void* data(int rank) const override {
    if (rank == rank_) return local_;
    return (*blobs_)[static_cast<std::size_t>(rank)].data();
  }
  std::size_t size(int rank) const override {
    if (rank == rank_) return local_bytes_;
    return (*blobs_)[static_cast<std::size_t>(rank)].size();
  }

 private:
  const std::vector<std::vector<std::uint8_t>>* blobs_;
  const void* local_;
  std::size_t local_bytes_;
  int rank_;
};

}  // namespace

/// Per-peer frame reassembly: bytes stream in, complete frames come out.
struct TcpTransport::PeerRx {
  std::vector<std::uint8_t> buf;  // unparsed bytes (header + partial payload)
  bool open = false;
};

TcpTransport::TcpTransport(const TcpOptions& options)
    : rank_(options.rank),
      world_(options.world),
      timeout_s_(options.timeout_s),
      liveness_timeout_s_(options.liveness_timeout_s) {
  if (options.heartbeat_interval_s > 0.0) {
    heartbeat_interval_s_ = options.heartbeat_interval_s;
  } else if (options.heartbeat_interval_s == 0.0 &&
             liveness_timeout_s_ > 0.0) {
    // Beat well inside the deadline so one dropped poll round cannot
    // false-positive a healthy but idle peer.
    heartbeat_interval_s_ = std::max(liveness_timeout_s_ / 4.0, 1e-3);
  }
  if (world_ <= 0 || rank_ < 0 || rank_ >= world_)
    throw TransportError("bad tcp rank/world: rank=" + std::to_string(rank_) +
                         " world=" + std::to_string(world_));
  peer_fd_.assign(static_cast<std::size_t>(world_), -1);
  bye_seen_.assign(static_cast<std::size_t>(world_), false);
  send_mutex_.reserve(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r)
    send_mutex_.push_back(std::make_unique<std::mutex>());
  inbox_.set_abort_flag(&aborted_);
  internal_.set_abort_flag(&aborted_);
  if (::pipe(wake_pipe_) != 0)
    throw TransportError(errno_text("cannot create wake pipe"));
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  try {
    connect_mesh(options);
  } catch (...) {
    close_all();
    throw;
  }
  if (world_ > 1) receiver_ = std::thread([this] { receiver_loop(); });
}

void TcpTransport::connect_mesh(const TcpOptions& options) {
  const bool explicit_list = options.hosts.find(':') != std::string::npos;
  std::vector<HostPort> listen_list;
  if (explicit_list) listen_list = parse_host_list(options.hosts, world_);

  // 1. Listen.  Explicit lists bind the named port on any interface;
  //    rendezvous-directory mode binds an ephemeral loopback port.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw TransportError(errno_text("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      explicit_list ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  addr.sin_port =
      explicit_list ? htons(static_cast<std::uint16_t>(
                          listen_list[static_cast<std::size_t>(rank_)].port))
                    : 0;
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0)
    throw TransportError(errno_text("bind"));
  if (::listen(listen_fd_, world_ > 8 ? world_ : 8) != 0)
    throw TransportError(errno_text("listen"));
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_s_);

  // Backoff for every mesh-setup retry loop below.  Unbounded attempts —
  // the deadline is the budget — with jitter seeded per rank so a whole
  // job restarting at once does not dial in lockstep, yet each rank's
  // delay sequence replays identically for a given seed.
  RetryPolicy dial_policy;
  dial_policy.initial_delay_ms = 1.0;
  dial_policy.max_delay_ms = options.backoff_max_ms;
  dial_policy.jitter = 0.25;
  dial_policy.seed = 0x5eedu + static_cast<std::uint64_t>(rank_);
  const auto backoff = [](RetrySchedule& schedule) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(schedule.next_delay_ms()));
  };

  // 2. Rendezvous: publish our address, learn the peers'.
  std::vector<HostPort> peers(static_cast<std::size_t>(world_));
  if (explicit_list) {
    for (int r = 0; r < world_; ++r)
      peers[static_cast<std::size_t>(r)] =
          listen_list[static_cast<std::size_t>(r)];
  } else {
    const fs::path dir(options.hosts);
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path mine = dir / ("rank." + std::to_string(rank_));
    const fs::path tmp = dir / ("rank." + std::to_string(rank_) + ".tmp");
    {
      std::ofstream out(tmp);
      out << "127.0.0.1:" << port_ << "\n";
      if (!out) throw TransportError("cannot publish " + mine.string());
    }
    fs::rename(tmp, mine, ec);
    if (ec) throw TransportError("cannot publish " + mine.string());
    // Discover lower ranks (the ones we dial); higher ranks dial us and
    // need no lookup.
    for (int r = 0; r < rank_; ++r) {
      const fs::path theirs = dir / ("rank." + std::to_string(r));
      RetrySchedule schedule(dial_policy);
      for (;;) {
        std::ifstream in(theirs);
        std::string line;
        if (in && std::getline(in, line) &&
            parse_host_port(line, peers[static_cast<std::size_t>(r)]))
          break;
        if (Clock::now() >= deadline)
          throw TransportError(TransportFault::kTimeout, r,
                               "rendezvous timeout waiting for " +
                                   theirs.string());
        backoff(schedule);
      }
    }
  }

  // 3. Dial every lower rank (retry with backoff — it may not be
  //    listening yet) and introduce ourselves with a hello frame.  A
  //    connection that dies before the hello lands is re-dialed within
  //    the same deadline: only the idempotent hello was in flight, so a
  //    fresh connection plus a re-sent hello is indistinguishable from a
  //    first attempt (the peer discards the dead socket on EOF).
  for (int r = 0; r < rank_; ++r) {
    const HostPort& hp = peers[static_cast<std::size_t>(r)];
    RetrySchedule schedule(dial_policy);
    int fd = -1;
    for (;;) {
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      const std::string port_str = std::to_string(hp.port);
      if (::getaddrinfo(hp.host.c_str(), port_str.c_str(), &hints, &res) ==
              0 &&
          res) {
        fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
        if (fd >= 0 &&
            ::connect(fd, res->ai_addr, res->ai_addrlen) == 0) {
          ::freeaddrinfo(res);
          FrameHeader hello{kMagic, kHello, {0, 0, 0}, rank_, 0};
          if (write_fully_blocking(fd, &hello, sizeof(hello))) break;
          ::close(fd);  // reset mid-handshake: re-dial, re-introduce
          fd = -1;
        } else {
          if (fd >= 0) ::close(fd);
          fd = -1;
          ::freeaddrinfo(res);
        }
      }
      if (Clock::now() >= deadline)
        throw TransportError(TransportFault::kTimeout, r,
                             "connect timeout dialing rank " +
                                 std::to_string(r) + " at " + hp.host + ":" +
                                 std::to_string(hp.port));
      backoff(schedule);
    }
    peer_fd_[static_cast<std::size_t>(r)] = fd;
  }

  // 4. Accept every higher rank; its hello frame says who it is.
  int expected = world_ - 1 - rank_;
  while (expected > 0) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) {
      if (Clock::now() >= deadline)
        throw TransportError(TransportFault::kTimeout, -1,
                             "accept timeout: " + std::to_string(expected) +
                                 " higher rank(s) never dialed in");
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    FrameHeader hello{};
    if (!read_fully_blocking(fd, &hello, sizeof(hello), timeout_s_)) {
      // The dialer hung up mid-handshake (it will re-dial); just drop
      // the dead socket and keep accepting.
      ::close(fd);
      continue;
    }
    if (hello.magic != kMagic || hello.kind != kHello || hello.size != 0 ||
        hello.tag <= rank_ || hello.tag >= world_ ||
        peer_fd_[static_cast<std::size_t>(hello.tag)] != -1) {
      ::close(fd);
      throw TransportError(TransportFault::kProtocol, -1,
                           "bad hello on accepted connection");
    }
    peer_fd_[static_cast<std::size_t>(hello.tag)] = fd;
    --expected;
  }

  for (int r = 0; r < world_; ++r) {
    const int fd = peer_fd_[static_cast<std::size_t>(r)];
    if (fd < 0) continue;
    set_nonblocking(fd);
    set_nodelay(fd);
  }
}

TcpTransport::~TcpTransport() {
  try {
    shutdown();
  } catch (...) {
    // Teardown must not throw; abort-path cleanup happens below anyway.
  }
  close_all();
}

void TcpTransport::close_all() noexcept {
  if (receiver_.joinable()) {
    shutting_down_.store(true, std::memory_order_release);
    wake_receiver();
    receiver_.join();
  }
  for (auto& fd : peer_fd_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TcpTransport::wake_receiver() noexcept {
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void TcpTransport::send_goodbyes() noexcept {
  // Flag first: once set, the receiver treats an EOF without a goodbye
  // as a peer that left the same teardown window we are in — we have
  // promised to send nothing more, so there is nothing left to lose.
  bye_sent_.store(true, std::memory_order_release);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    const int fd = peer_fd_[static_cast<std::size_t>(r)];
    if (fd < 0) continue;
    FrameHeader header{kMagic, kBye, {0, 0, 0}, 0, 0};
    bool sent;
    {
      std::lock_guard<std::mutex> lock(
          *send_mutex_[static_cast<std::size_t>(r)]);
      sent = write_fully_blocking(fd, &header, sizeof(header));
    }
    if (!sent) {
      // This peer is already gone (EPIPE/reset).  During teardown that
      // is a departure, not a crash: mark its goodbye as seen so the
      // wait below completes, and keep flushing goodbyes to the rest.
      std::lock_guard<std::mutex> lock(state_mutex_);
      bye_seen_[static_cast<std::size_t>(r)] = true;
      state_cv_.notify_all();
    }
  }
}

void TcpTransport::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (world_ > 1 && !aborted()) {
    // Goodbyes: tell every peer our stream ends cleanly, then wait for
    // theirs so closing our sockets cannot be mistaken for a crash (and
    // cannot yank frames a slower peer is still reading).
    send_goodbyes();
    std::unique_lock<std::mutex> lock(state_mutex_);
    const auto deadline =
        Clock::now() + std::chrono::duration<double>(timeout_s_);
    state_cv_.wait_until(lock, deadline, [&] {
      if (aborted()) return true;
      for (int r = 0; r < world_; ++r)
        if (r != rank_ && !bye_seen_[static_cast<std::size_t>(r)])
          return false;
      return true;
    });
  }
  close_all();
}

void TcpTransport::depart_abruptly() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (world_ > 1 && !aborted()) send_goodbyes();
  // No wait for the peers' goodbyes: the connections drop now, which is
  // exactly the goodbye/close race peers must absorb without aborting.
  close_all();
}

void TcpTransport::abort() noexcept {
  if (aborted_.exchange(true, std::memory_order_acq_rel)) return;
  // Best-effort abort frames so remote waiters wake too; local waiters
  // are woken through the mailbox abort protocol (see mailbox.hpp).
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    const int fd = peer_fd_[static_cast<std::size_t>(r)];
    if (fd < 0) continue;
    std::unique_lock<std::mutex> lock(*send_mutex_[static_cast<std::size_t>(r)],
                                      std::try_to_lock);
    if (!lock.owns_lock())
      continue;  // a send in flight will observe the flag itself
    FrameHeader header{kMagic, kAbort, {0, 0, 0}, 0, 0};
    write_fully_blocking(fd, &header, sizeof(header));
  }
  inbox_.notify_abort();
  internal_.notify_abort();
  state_cv_.notify_all();
  wake_receiver();
}

void TcpTransport::fail_hard() noexcept {
  // Crash simulation: half a frame header, then the plug is pulled — no
  // goodbye, no abort frame.  Peers must treat the short read + EOF as a
  // dead rank and abort cleanly (never delivering the partial frame).
  aborted_.store(true, std::memory_order_release);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    const int fd = peer_fd_[static_cast<std::size_t>(r)];
    if (fd < 0) continue;
    std::unique_lock<std::mutex> lock(*send_mutex_[static_cast<std::size_t>(r)],
                                      std::try_to_lock);
    FrameHeader header{kMagic, kData, {0, 0, 0}, 0, 1 << 20};
    [[maybe_unused]] const ssize_t n =
        ::send(fd, &header, sizeof(header) / 2, MSG_NOSIGNAL);
  }
  inbox_.notify_abort();
  internal_.notify_abort();
  state_cv_.notify_all();
  shutdown_done_ = true;  // no goodbyes on the way down
  close_all();
}

void TcpTransport::remote_abort(TransportFault fault, int peer,
                                const std::string& why) noexcept {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (abort_why_.empty()) {
      abort_why_ = why;
      abort_fault_ = fault;
      abort_peer_ = peer;
    }
  }
  log::warn("tcp transport: ", why);
  abort();
}

void TcpTransport::rethrow_diagnosis() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!abort_why_.empty())
    throw TransportError(abort_fault_, abort_peer_, abort_why_);
}

bool TcpTransport::write_frame(int dest, std::uint8_t kind, int tag,
                               const void* data, std::size_t bytes) {
  const int fd = peer_fd_[static_cast<std::size_t>(dest)];
  if (fd < 0) {
    abort();
    throw TransportError(TransportFault::kPeerLost, dest,
                         "send to rank " + std::to_string(dest) +
                             " on a closed connection");
  }
  FrameHeader header{kMagic, kind, {0, 0, 0}, tag,
                     static_cast<std::uint64_t>(bytes)};
  bool channel_dead = false;
  {
    std::lock_guard<std::mutex> lock(
        *send_mutex_[static_cast<std::size_t>(dest)]);
    // One frame = header + payload, written back to back under the peer
    // lock so concurrent senders cannot interleave frames.
    const std::uint8_t* parts[2] = {
        reinterpret_cast<const std::uint8_t*>(&header),
        static_cast<const std::uint8_t*>(data)};
    std::size_t part_bytes[2] = {sizeof(header), bytes};
    for (int part = 0; part < 2 && !channel_dead; ++part) {
      const std::uint8_t* p = parts[part];
      std::size_t remaining = part_bytes[part];
      while (remaining > 0) {
        const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
        if (n > 0) {
          p += n;
          remaining -= static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          // Kernel buffer full: the peer's receiver thread will drain it.
          // Poll with a bounded slice so an abort can interrupt the wait.
          if (aborted()) return false;
          struct pollfd pfd = {fd, POLLOUT, 0};
          ::poll(&pfd, 1, 50);
          continue;
        }
        channel_dead = true;  // EPIPE / ECONNRESET / ...
        break;
      }
    }
  }
  if (channel_dead) {
    remote_abort(TransportFault::kPeerLost, dest,
                 "connection to rank " + std::to_string(dest) +
                     " failed mid-send");
    throw TransportError(TransportFault::kPeerLost, dest,
                         "connection to rank " + std::to_string(dest) +
                             " failed mid-send");
  }
  return !aborted() || kind == kAbort;
}

void TcpTransport::send(int dest, int tag, const void* data,
                        std::size_t bytes) {
  if (aborted()) throw AbortedError();
  if (dest == rank_) {
    std::vector<std::uint8_t> payload(bytes);
    if (bytes > 0) std::memcpy(payload.data(), data, bytes);
    inbox_.push(rank_, tag, std::move(payload));
    return;
  }
  if (!write_frame(dest, kData, tag, data, bytes)) throw AbortedError();
}

void TcpTransport::internal_send(int dest, int tag, const void* data,
                                 std::size_t bytes) {
  if (dest == rank_) {
    std::vector<std::uint8_t> payload(bytes);
    if (bytes > 0) std::memcpy(payload.data(), data, bytes);
    internal_.push(rank_, tag, std::move(payload));
    return;
  }
  if (!write_frame(dest, kInternal, tag, data, bytes)) throw AbortedError();
}

std::vector<std::uint8_t> TcpTransport::internal_pop(int source, int tag) {
  try {
    return internal_.pop(source, tag);
  } catch (const AbortedError&) {
    // Surface the receiver thread's diagnosis when it was a transport
    // failure (peer died, framing violation) rather than a peer abort.
    rethrow_diagnosis();
    throw;
  }
}

void TcpTransport::barrier() {
  if (world_ == 1) return;
  const int seq = static_cast<int>(op_seq_.fetch_add(1));
  if (rank_ == 0) {
    for (int r = 1; r < world_; ++r) internal_pop(r, seq);
    for (int r = 1; r < world_; ++r) internal_send(r, seq, nullptr, 0);
  } else {
    internal_send(0, seq, nullptr, 0);
    internal_pop(0, seq);
  }
}

void TcpTransport::gather_all(
    const void* local, std::size_t bytes,
    const std::function<void(const StageView&)>& consume) {
  const int seq = static_cast<int>(op_seq_.fetch_add(1));
  std::vector<std::vector<std::uint8_t>> blobs(
      static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r)
    if (r != rank_) internal_send(r, seq, local, bytes);
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    auto blob = internal_pop(r, seq);
    if (blob.size() != bytes)
      throw TransportError("collective size mismatch from rank " +
                           std::to_string(r) + ": got " +
                           std::to_string(blob.size()) + ", expected " +
                           std::to_string(bytes));
    blobs[static_cast<std::size_t>(r)] = std::move(blob);
  }
  consume(BlobStageView(&blobs, local, bytes, rank_));
}

void TcpTransport::bcast(void* data, std::size_t bytes, int root) {
  if (world_ == 1) return;
  const int seq = static_cast<int>(op_seq_.fetch_add(1));
  if (rank_ == root) {
    for (int r = 0; r < world_; ++r)
      if (r != rank_) internal_send(r, seq, data, bytes);
  } else {
    auto blob = internal_pop(root, seq);
    if (blob.size() != bytes)
      throw TransportError("bcast size mismatch from rank " +
                           std::to_string(root));
    if (bytes > 0) std::memcpy(data, blob.data(), bytes);
  }
}

std::vector<std::vector<std::uint8_t>> TcpTransport::alltoallv(
    const std::vector<std::vector<std::uint8_t>>& send) {
  const int seq = static_cast<int>(op_seq_.fetch_add(1));
  std::vector<std::vector<std::uint8_t>> recv(
      static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r) {
    if (r == rank_) continue;
    const auto& blob = send[static_cast<std::size_t>(r)];
    internal_send(r, seq, blob.data(), blob.size());
  }
  recv[static_cast<std::size_t>(rank_)] = send[static_cast<std::size_t>(rank_)];
  for (int r = 0; r < world_; ++r)
    if (r != rank_) recv[static_cast<std::size_t>(r)] = internal_pop(r, seq);
  return recv;
}

void TcpTransport::receiver_loop() {
  std::vector<PeerRx> rx(static_cast<std::size_t>(world_));
  for (int r = 0; r < world_; ++r)
    rx[static_cast<std::size_t>(r)].open =
        peer_fd_[static_cast<std::size_t>(r)] >= 0;

  std::vector<std::uint8_t> chunk(std::size_t{1} << 18);  // 256 KiB reads

  // Dispatch every complete frame at the head of `peer`'s buffer.
  // Returns false on a protocol violation (already reported).
  const auto drain_frames = [&](int peer, PeerRx& state) -> bool {
    std::size_t offset = 0;
    while (state.buf.size() - offset >= sizeof(FrameHeader)) {
      FrameHeader header;
      std::memcpy(&header, state.buf.data() + offset, sizeof(header));
      if (header.magic != kMagic || header.size > kMaxFrameBytes) {
        remote_abort(TransportFault::kProtocol, peer,
                     "framing violation from rank " + std::to_string(peer));
        return false;
      }
      if (state.buf.size() - offset - sizeof(header) < header.size)
        break;  // payload still in flight
      const auto* payload = state.buf.data() + offset + sizeof(header);
      const auto size = static_cast<std::size_t>(header.size);
      switch (header.kind) {
        case kData:
          inbox_.push(peer, header.tag,
                      std::vector<std::uint8_t>(payload, payload + size));
          break;
        case kInternal:
          internal_.push(peer, header.tag,
                         std::vector<std::uint8_t>(payload, payload + size));
          break;
        case kBye: {
          std::lock_guard<std::mutex> lock(state_mutex_);
          bye_seen_[static_cast<std::size_t>(peer)] = true;
          state_cv_.notify_all();
          break;
        }
        case kAbort:
          // Peer-initiated abort: surface as plain AbortedError (the
          // peer's own exception is the one worth reporting), unlike the
          // remote_abort paths below, which diagnose transport failures.
          abort();
          return false;
        case kHeartbeat:
          break;  // liveness beacon: receiving it already reset the clock
        default:
          remote_abort(TransportFault::kProtocol, peer,
                       "unknown frame kind from rank " +
                           std::to_string(peer));
          return false;
      }
      offset += sizeof(header) + size;
    }
    if (offset > 0)
      state.buf.erase(state.buf.begin(),
                      state.buf.begin() +
                          static_cast<std::ptrdiff_t>(offset));
    return true;
  };

  // Liveness bookkeeping lives entirely on this thread: RX clocks reset
  // on every byte that arrives, heartbeats go out on the poll cadence.
  std::vector<Clock::time_point> last_rx(static_cast<std::size_t>(world_),
                                         Clock::now());
  auto last_beat = Clock::now();
  const bool liveness_on = liveness_timeout_s_ > 0.0 && world_ > 1;
  int poll_ms = 200;
  if (heartbeat_interval_s_ > 0.0)
    poll_ms = std::min(
        poll_ms,
        std::max(1, static_cast<int>(heartbeat_interval_s_ * 1000.0 / 2.0)));
  if (liveness_on)
    poll_ms = std::min(
        poll_ms,
        std::max(1, static_cast<int>(liveness_timeout_s_ * 1000.0 / 4.0)));

  // Emit one heartbeat frame per open peer every heartbeat_interval_s_.
  // Best-effort: a peer whose send lock is busy has data in flight (which
  // keeps us live on its clock anyway), a full kernel buffer is skipped,
  // and a dead channel is left for the read path to diagnose.
  const auto beat = [&](Clock::time_point now) {
    if (heartbeat_interval_s_ <= 0.0 || aborted()) return;
    if (!heartbeats_enabled_.load(std::memory_order_relaxed)) return;
    if (now - last_beat <
        std::chrono::duration<double>(heartbeat_interval_s_))
      return;
    last_beat = now;
    FrameHeader hb{kMagic, kHeartbeat, {0, 0, 0}, kHeartbeatTag, 0};
    for (int r = 0; r < world_; ++r) {
      if (r == rank_ || !rx[static_cast<std::size_t>(r)].open) continue;
      const int fd = peer_fd_[static_cast<std::size_t>(r)];
      if (fd < 0) continue;
      std::unique_lock<std::mutex> lock(
          *send_mutex_[static_cast<std::size_t>(r)], std::try_to_lock);
      if (!lock.owns_lock()) continue;
      // Checked under the peer's send lock: once our goodbye to this
      // peer is out, nothing may follow it on the wire.
      if (bye_sent_.load(std::memory_order_acquire)) return;
      const ssize_t n = ::send(fd, &hb, sizeof(hb), MSG_NOSIGNAL);
      if (n > 0 && n < static_cast<ssize_t>(sizeof(hb))) {
        // The frame must not be torn: finish the straggling tail bytes
        // (at most 23) so the stream stays parseable.
        write_fully_blocking(
            fd, reinterpret_cast<const std::uint8_t*>(&hb) + n,
            sizeof(hb) - static_cast<std::size_t>(n));
      }
    }
  };

  // Declare lost any peer silent past the deadline — unless it already
  // said goodbye (a departed peer owes us nothing).
  const auto check_liveness = [&](Clock::time_point now) {
    if (!liveness_on) return;
    for (int r = 0; r < world_; ++r) {
      PeerRx& state = rx[static_cast<std::size_t>(r)];
      if (r == rank_ || !state.open) continue;
      if (now - last_rx[static_cast<std::size_t>(r)] <=
          std::chrono::duration<double>(liveness_timeout_s_))
        continue;
      bool departed;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        departed = bye_seen_[static_cast<std::size_t>(r)];
      }
      if (departed) continue;
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "rank %d missed its liveness deadline (no traffic for "
                    "%.3f s)",
                    r, liveness_timeout_s_);
      remote_abort(TransportFault::kPeerLost, r, detail);
      state.open = false;  // stop polling the wedged stream
    }
  };

  while (!shutting_down_.load(std::memory_order_acquire)) {
    std::vector<struct pollfd> pfds;
    std::vector<int> owners;
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    owners.push_back(-1);
    for (int r = 0; r < world_; ++r) {
      if (!rx[static_cast<std::size_t>(r)].open) continue;
      pfds.push_back({peer_fd_[static_cast<std::size_t>(r)], POLLIN, 0});
      owners.push_back(r);
    }
    if (pfds.size() == 1 && aborted()) break;  // every stream closed
    const int ready = ::poll(pfds.data(), pfds.size(), poll_ms);
    if (ready < 0 && errno != EINTR) break;
    {
      const auto now = Clock::now();
      beat(now);
      check_liveness(now);
    }
    if (ready <= 0) continue;

    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const int peer = owners[i];
      PeerRx& state = rx[static_cast<std::size_t>(peer)];
      const int fd = peer_fd_[static_cast<std::size_t>(peer)];
      for (;;) {
        const ssize_t n = ::recv(fd, chunk.data(), chunk.size(), 0);
        if (n > 0) {
          last_rx[static_cast<std::size_t>(peer)] = Clock::now();
          state.buf.insert(state.buf.end(), chunk.data(), chunk.data() + n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        state.open = false;  // EOF or hard error
        break;
      }
      // Dispatch every frame that fully arrived — on EOF this may include
      // the peer's goodbye or abort frame, which decides the diagnosis
      // below (frames and the close often land in the same poll round).
      const bool frames_ok = drain_frames(peer, state);
      if (state.open) {
        if (!frames_ok) state.open = false;
        continue;
      }
      if (!frames_ok) continue;  // violation/abort already reported
      // Stream ended: clean only after this peer's goodbye (or our own
      // teardown).  A partial frame left in state.buf is discarded — it
      // is never delivered.
      bool clean;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        clean = bye_seen_[static_cast<std::size_t>(peer)];
      }
      if (!clean && bye_sent_.load(std::memory_order_acquire)) {
        // Our goodbyes are already on the wire, so nothing is owed in
        // either direction: a peer dropping in this window departed
        // abruptly (goodbye-then-close), it did not crash our run.
        std::lock_guard<std::mutex> lock(state_mutex_);
        bye_seen_[static_cast<std::size_t>(peer)] = true;
        state_cv_.notify_all();
        clean = true;
      }
      if (!clean && !shutting_down_.load(std::memory_order_acquire) &&
          !aborted())
        remote_abort(TransportFault::kPeerLost, peer,
                     "rank " + std::to_string(peer) +
                         " disconnected mid-stream" +
                         (state.buf.empty() ? ""
                                            : " (partial frame dropped)"));
    }
  }
}

}  // namespace v6d::comm
