// Schema-versioned performance reports (the BENCH_*.json / perf.json
// format).
//
// One reporter serves both producers of timing data: the bench harness
// (bench/harness.hpp wraps it with phase timing and rate computation) and
// the simulation driver (per-phase TimerRegistry buckets from a real run).
// Consumers — the CI perf-smoke job, tools/check_bench_schema.py, and
// cross-PR trajectory comparisons — parse only this schema:
//
//   {
//     "schema": "v6d-perf/1",
//     "name": "<report name>",
//     "context": { "<key>": "<string value>", ... },
//     "phases": [
//       { "name": "...", "seconds": <total>, "reps": <n>,
//         "seconds_per_rep": <t>, "cells": <per rep>, "bytes": <per rep>,
//         "cell_updates_per_s": <rate>, "gb_per_s": <rate> }, ...
//     ],
//     "metrics": [ { "name": "...", "value": <v>, "unit": "..." }, ... ]
//   }
//
// "cells"/"bytes" and the derived rates are emitted only when nonzero.
// The schema string is bumped on any backwards-incompatible change.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace v6d::io {

inline constexpr const char* kPerfSchema = "v6d-perf/1";

/// One timed phase.  `seconds` is the total over `reps` repetitions;
/// `cells` / `bytes` describe the work of a single repetition (cell
/// updates performed, bytes moved) and feed the derived rates.
struct PerfPhase {
  std::string name;
  double seconds = 0.0;
  long reps = 1;
  double cells = 0.0;
  double bytes = 0.0;
};

/// A named scalar result (speedups, errors, counts) with a free-form unit.
struct PerfMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct PerfReport {
  std::string name;
  std::map<std::string, std::string> context;
  std::vector<PerfPhase> phases;
  std::vector<PerfMetric> metrics;

  void add_phase(const std::string& phase_name, double seconds, long reps = 1,
                 double cells = 0.0, double bytes = 0.0);
  void add_metric(const std::string& metric_name, double value,
                  const std::string& unit = "");
  /// Import every bucket of a TimerRegistry as a phase named
  /// `prefix + bucket` (one rep, no work counters).
  void add_timers(const TimerRegistry& timers, const std::string& prefix = "");

  std::string to_json() const;
  /// Serialize to `path`; false (with *error set) on I/O failure.
  bool write(const std::string& path, std::string* error = nullptr) const;
};

/// A report pre-filled with the shared execution context: ISA name and
/// fp32 width, FMA availability, OpenMP thread count, quick-mode flag.
PerfReport make_perf_report(const std::string& name);

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& text);

}  // namespace v6d::io
