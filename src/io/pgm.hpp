// Grayscale PGM output for the density-map figures (4, 6, 8).
#pragma once

#include <string>

#include "diagnostics/projections.hpp"

namespace v6d::io {

/// Write a map as 8-bit PGM, linearly scaled between lo and hi (values
/// outside are clamped).  Returns false on I/O failure.
bool write_pgm(const std::string& path, const diag::Map2D& map, double lo,
               double hi);

/// Auto-scaled variant (min..max of the map).
bool write_pgm(const std::string& path, const diag::Map2D& map);

/// Write a map as CSV (one row per x index).
bool write_csv(const std::string& path, const diag::Map2D& map);

}  // namespace v6d::io
