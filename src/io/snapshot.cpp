#include "io/snapshot.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace v6d::io {

namespace {

constexpr std::uint32_t kParticlesMagic = 0x76364e42;  // "v6NB"
constexpr std::uint32_t kPhaseSpaceMagic = 0x76365653;  // "v6VS"
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* fp) const {
    if (fp) std::fclose(fp);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <class T>
bool write_raw(std::FILE* fp, const T* data, std::size_t count) {
  return std::fwrite(data, sizeof(T), count, fp) == count;
}
template <class T>
bool read_raw(std::FILE* fp, T* data, std::size_t count) {
  return std::fread(data, sizeof(T), count, fp) == count;
}

}  // namespace

bool write_particles(const std::string& path,
                     const nbody::Particles& particles) {
  FilePtr fp(std::fopen(path.c_str(), "wb"));
  if (!fp) return false;
  const std::uint32_t magic = kParticlesMagic, version = kVersion;
  const std::uint64_t n = particles.size();
  if (!write_raw(fp.get(), &magic, 1) || !write_raw(fp.get(), &version, 1) ||
      !write_raw(fp.get(), &n, 1) ||
      !write_raw(fp.get(), &particles.mass, 1))
    return false;
  for (const auto* v : {&particles.x, &particles.y, &particles.z,
                        &particles.ux, &particles.uy, &particles.uz})
    if (!write_raw(fp.get(), v->data(), v->size())) return false;
  return write_raw(fp.get(), particles.id.data(), particles.id.size());
}

bool read_particles(const std::string& path, nbody::Particles& particles) {
  FilePtr fp(std::fopen(path.c_str(), "rb"));
  if (!fp) return false;
  std::uint32_t magic = 0, version = 0;
  std::uint64_t n = 0;
  if (!read_raw(fp.get(), &magic, 1) || magic != kParticlesMagic) return false;
  if (!read_raw(fp.get(), &version, 1) || version != kVersion) return false;
  if (!read_raw(fp.get(), &n, 1)) return false;
  particles.resize(static_cast<std::size_t>(n));
  if (!read_raw(fp.get(), &particles.mass, 1)) return false;
  for (auto* v : {&particles.x, &particles.y, &particles.z, &particles.ux,
                  &particles.uy, &particles.uz})
    if (!read_raw(fp.get(), v->data(), v->size())) return false;
  return read_raw(fp.get(), particles.id.data(), particles.id.size());
}

bool write_phase_space(const std::string& path, const vlasov::PhaseSpace& f) {
  FilePtr fp(std::fopen(path.c_str(), "wb"));
  if (!fp) return false;
  const std::uint32_t magic = kPhaseSpaceMagic, version = kVersion;
  const auto& d = f.dims();
  const std::int32_t dims[7] = {d.nx, d.ny, d.nz, d.nux, d.nuy, d.nuz,
                                d.ghost};
  const auto& g = f.geom();
  const double geom[10] = {g.x0, g.y0, g.z0,  g.dx,  g.dy,
                           g.dz, g.umax, g.dux, g.duy, g.duz};
  if (!write_raw(fp.get(), &magic, 1) || !write_raw(fp.get(), &version, 1) ||
      !write_raw(fp.get(), dims, 7) || !write_raw(fp.get(), geom, 10))
    return false;
  // Interior blocks only (ghosts are reconstructed).
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz)
        if (!write_raw(fp.get(), f.block(ix, iy, iz), f.block_size()))
          return false;
  return true;
}

bool read_phase_space(const std::string& path, vlasov::PhaseSpace& f) {
  FilePtr fp(std::fopen(path.c_str(), "rb"));
  if (!fp) return false;
  std::uint32_t magic = 0, version = 0;
  std::int32_t dims[7];
  double geom[10];
  if (!read_raw(fp.get(), &magic, 1) || magic != kPhaseSpaceMagic)
    return false;
  if (!read_raw(fp.get(), &version, 1) || version != kVersion) return false;
  if (!read_raw(fp.get(), dims, 7) || !read_raw(fp.get(), geom, 10))
    return false;
  vlasov::PhaseSpaceDims d;
  d.nx = dims[0];
  d.ny = dims[1];
  d.nz = dims[2];
  d.nux = dims[3];
  d.nuy = dims[4];
  d.nuz = dims[5];
  d.ghost = dims[6];
  vlasov::PhaseSpaceGeometry g;
  g.x0 = geom[0];
  g.y0 = geom[1];
  g.z0 = geom[2];
  g.dx = geom[3];
  g.dy = geom[4];
  g.dz = geom[5];
  g.umax = geom[6];
  g.dux = geom[7];
  g.duy = geom[8];
  g.duz = geom[9];
  f = vlasov::PhaseSpace(d, g);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz)
        if (!read_raw(fp.get(), f.block(ix, iy, iz), f.block_size()))
          return false;
  return true;
}

}  // namespace v6d::io
