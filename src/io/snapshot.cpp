#include "io/snapshot.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace v6d::io {

namespace {

constexpr std::uint32_t kParticlesMagic = 0x76364e42;   // "v6NB"
constexpr std::uint32_t kPhaseSpaceMagic = 0x76365653;  // "v6VS"
constexpr std::uint32_t kVersion = 1;

// Upper bound on any single payload we will allocate for (1 TiB); header
// counts beyond this are treated as corruption, not as a real request.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 40;

struct FileCloser {
  void operator()(std::FILE* fp) const {
    if (fp) std::fclose(fp);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <class T>
bool write_raw(std::FILE* fp, const T* data, std::size_t count) {
  return std::fwrite(data, sizeof(T), count, fp) == count;
}
template <class T>
bool read_raw(std::FILE* fp, T* data, std::size_t count) {
  return std::fread(data, sizeof(T), count, fp) == count;
}

/// Size of the file behind `fp` without disturbing the read position.
long file_size(std::FILE* fp) {
  const long pos = std::ftell(fp);
  if (pos < 0 || std::fseek(fp, 0, SEEK_END) != 0) return -1;
  const long size = std::ftell(fp);
  if (std::fseek(fp, pos, SEEK_SET) != 0) return -1;
  return size;
}

/// acc *= factor with an overflow-safe bound against kMaxPayloadBytes.
bool mul_within_cap(std::uint64_t& acc, std::uint64_t factor) {
  if (factor == 0 || acc > kMaxPayloadBytes / factor) return false;
  acc *= factor;
  return true;
}

/// Common magic/version prologue for both readers.
SnapshotStatus read_prologue(std::FILE* fp, std::uint32_t expected_magic) {
  std::uint32_t magic = 0, version = 0;
  if (!read_raw(fp, &magic, 1)) return SnapshotStatus::kShortRead;
  if (magic != expected_magic) return SnapshotStatus::kBadMagic;
  if (!read_raw(fp, &version, 1)) return SnapshotStatus::kShortRead;
  if (version != kVersion) return SnapshotStatus::kVersionMismatch;
  return SnapshotStatus::kOk;
}

}  // namespace

const char* to_string(SnapshotStatus status) {
  switch (status) {
    case SnapshotStatus::kOk:
      return "ok";
    case SnapshotStatus::kOpenFailed:
      return "open-failed";
    case SnapshotStatus::kBadMagic:
      return "bad-magic";
    case SnapshotStatus::kVersionMismatch:
      return "version-mismatch";
    case SnapshotStatus::kBadHeader:
      return "bad-header";
    case SnapshotStatus::kShortRead:
      return "short-read";
    case SnapshotStatus::kWriteFailed:
      return "write-failed";
  }
  return "unknown";
}

unsigned snapshot_version() { return kVersion; }

SnapshotStatus write_particles(const std::string& path,
                               const nbody::Particles& particles) {
  FilePtr fp(std::fopen(path.c_str(), "wb"));
  if (!fp) return SnapshotStatus::kOpenFailed;
  const std::uint32_t magic = kParticlesMagic, version = kVersion;
  const std::uint64_t n = particles.size();
  if (!write_raw(fp.get(), &magic, 1) || !write_raw(fp.get(), &version, 1) ||
      !write_raw(fp.get(), &n, 1) ||
      !write_raw(fp.get(), &particles.mass, 1))
    return SnapshotStatus::kWriteFailed;
  for (const auto* v : {&particles.x, &particles.y, &particles.z,
                        &particles.ux, &particles.uy, &particles.uz})
    if (!write_raw(fp.get(), v->data(), v->size()))
      return SnapshotStatus::kWriteFailed;
  if (!write_raw(fp.get(), particles.id.data(), particles.id.size()))
    return SnapshotStatus::kWriteFailed;
  return SnapshotStatus::kOk;
}

SnapshotStatus read_particles(const std::string& path,
                              nbody::Particles& particles) {
  FilePtr fp(std::fopen(path.c_str(), "rb"));
  if (!fp) return SnapshotStatus::kOpenFailed;
  const SnapshotStatus prologue = read_prologue(fp.get(), kParticlesMagic);
  if (prologue != SnapshotStatus::kOk) return prologue;
  std::uint64_t n = 0;
  if (!read_raw(fp.get(), &n, 1)) return SnapshotStatus::kShortRead;
  // 6 coordinate arrays of doubles + ids + mass; validate the advertised
  // count against both the sanity cap and the actual file size before
  // allocating anything.
  const std::uint64_t per_particle = 6 * sizeof(double) + sizeof(std::uint64_t);
  if (n > kMaxPayloadBytes / per_particle) return SnapshotStatus::kBadHeader;
  const std::uint64_t header_bytes = 2 * sizeof(std::uint32_t) +
                                     sizeof(std::uint64_t) + sizeof(double);
  const long size = file_size(fp.get());
  if (size >= 0 &&
      static_cast<std::uint64_t>(size) < header_bytes + n * per_particle)
    return SnapshotStatus::kShortRead;
  particles.resize(static_cast<std::size_t>(n));
  if (!read_raw(fp.get(), &particles.mass, 1))
    return SnapshotStatus::kShortRead;
  for (auto* v : {&particles.x, &particles.y, &particles.z, &particles.ux,
                  &particles.uy, &particles.uz})
    if (!read_raw(fp.get(), v->data(), v->size()))
      return SnapshotStatus::kShortRead;
  if (!read_raw(fp.get(), particles.id.data(), particles.id.size()))
    return SnapshotStatus::kShortRead;
  return SnapshotStatus::kOk;
}

SnapshotStatus write_phase_space(const std::string& path,
                                 const vlasov::PhaseSpace& f) {
  FilePtr fp(std::fopen(path.c_str(), "wb"));
  if (!fp) return SnapshotStatus::kOpenFailed;
  const std::uint32_t magic = kPhaseSpaceMagic, version = kVersion;
  const auto& d = f.dims();
  const std::int32_t dims[7] = {d.nx, d.ny, d.nz, d.nux, d.nuy, d.nuz,
                                d.ghost};
  const auto& g = f.geom();
  const double geom[10] = {g.x0, g.y0, g.z0,  g.dx,  g.dy,
                           g.dz, g.umax, g.dux, g.duy, g.duz};
  if (!write_raw(fp.get(), &magic, 1) || !write_raw(fp.get(), &version, 1) ||
      !write_raw(fp.get(), dims, 7) || !write_raw(fp.get(), geom, 10))
    return SnapshotStatus::kWriteFailed;
  // Interior blocks only (ghosts are reconstructed).
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz)
        if (!write_raw(fp.get(), f.block(ix, iy, iz), f.block_size()))
          return SnapshotStatus::kWriteFailed;
  return SnapshotStatus::kOk;
}

SnapshotStatus read_phase_space(const std::string& path,
                                vlasov::PhaseSpace& f) {
  FilePtr fp(std::fopen(path.c_str(), "rb"));
  if (!fp) return SnapshotStatus::kOpenFailed;
  const SnapshotStatus prologue = read_prologue(fp.get(), kPhaseSpaceMagic);
  if (prologue != SnapshotStatus::kOk) return prologue;
  std::int32_t dims[7];
  double geom[10];
  if (!read_raw(fp.get(), dims, 7) || !read_raw(fp.get(), geom, 10))
    return SnapshotStatus::kShortRead;
  for (int i = 0; i < 6; ++i)
    if (dims[i] <= 0) return SnapshotStatus::kBadHeader;
  // Ghost layers are a property of the stencil, not the problem size; a
  // large value is corruption and would blow up the (n + 2g)^3 allocation.
  if (dims[6] < 0 || dims[6] > 16) return SnapshotStatus::kBadHeader;
  // Bound what PhaseSpace will allocate (interior + ghost blocks), with
  // overflow-safe products.
  std::uint64_t interior = sizeof(float), alloc = sizeof(float);
  for (int i = 0; i < 6; ++i)
    if (!mul_within_cap(interior, static_cast<std::uint64_t>(dims[i])))
      return SnapshotStatus::kBadHeader;
  for (int i = 0; i < 3; ++i)
    if (!mul_within_cap(alloc,
                        static_cast<std::uint64_t>(dims[i]) + 2 * dims[6]))
      return SnapshotStatus::kBadHeader;
  for (int i = 3; i < 6; ++i)
    if (!mul_within_cap(alloc, static_cast<std::uint64_t>(dims[i])))
      return SnapshotStatus::kBadHeader;
  const std::uint64_t header_bytes = 2 * sizeof(std::uint32_t) +
                                     7 * sizeof(std::int32_t) +
                                     10 * sizeof(double);
  const long size = file_size(fp.get());
  if (size >= 0 && static_cast<std::uint64_t>(size) < header_bytes + interior)
    return SnapshotStatus::kShortRead;
  vlasov::PhaseSpaceDims d;
  d.nx = dims[0];
  d.ny = dims[1];
  d.nz = dims[2];
  d.nux = dims[3];
  d.nuy = dims[4];
  d.nuz = dims[5];
  d.ghost = dims[6];
  vlasov::PhaseSpaceGeometry g;
  g.x0 = geom[0];
  g.y0 = geom[1];
  g.z0 = geom[2];
  g.dx = geom[3];
  g.dy = geom[4];
  g.dz = geom[5];
  g.umax = geom[6];
  g.dux = geom[7];
  g.duy = geom[8];
  g.duz = geom[9];
  f = vlasov::PhaseSpace(d, g);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz)
        if (!read_raw(fp.get(), f.block(ix, iy, iz), f.block_size()))
          return SnapshotStatus::kShortRead;
  return SnapshotStatus::kOk;
}

}  // namespace v6d::io
