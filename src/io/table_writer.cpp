#include "io/table_writer.hpp"

#include <algorithm>
#include <cstdio>

namespace v6d::io {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TableWriter& TableWriter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "  ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : "";
      os << text << std::string(widths[c] - text.size() + 2, ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 2;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TableWriter::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision + 2, value);
  return buf;
}

std::string TableWriter::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

}  // namespace v6d::io
