// Aligned text tables for the bench harness output (the "same rows the
// paper reports" requirement).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace v6d::io {

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  TableWriter& row(std::vector<std::string> cells);
  /// Render with aligned columns to the stream (default stdout).
  void print(std::ostream& os = std::cout) const;

  static std::string fmt(double value, int precision = 3);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace v6d::io
