#include "io/pgm.hpp"

#include <algorithm>
#include <cstdio>

namespace v6d::io {

bool write_pgm(const std::string& path, const diag::Map2D& map, double lo,
               double hi) {
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (!fp) return false;
  std::fprintf(fp, "P5\n%d %d\n255\n", map.ny, map.nx);
  const double span = hi > lo ? hi - lo : 1.0;
  for (int i = 0; i < map.nx; ++i)
    for (int j = 0; j < map.ny; ++j) {
      const double t = std::clamp((map.at(i, j) - lo) / span, 0.0, 1.0);
      const unsigned char byte = static_cast<unsigned char>(255.0 * t);
      std::fwrite(&byte, 1, 1, fp);
    }
  std::fclose(fp);
  return true;
}

bool write_pgm(const std::string& path, const diag::Map2D& map) {
  return write_pgm(path, map, map.min(), map.max());
}

bool write_csv(const std::string& path, const diag::Map2D& map) {
  std::FILE* fp = std::fopen(path.c_str(), "w");
  if (!fp) return false;
  for (int i = 0; i < map.nx; ++i) {
    for (int j = 0; j < map.ny; ++j)
      std::fprintf(fp, "%g%c", map.at(i, j), j + 1 < map.ny ? ',' : '\n');
  }
  std::fclose(fp);
  return true;
}

}  // namespace v6d::io
