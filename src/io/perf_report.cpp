#include "io/perf_report.hpp"

#include <cstdio>
#include <sstream>

#include "common/options.hpp"
#include "simd/dispatch.hpp"

namespace v6d::io {

namespace {

/// %.17g keeps doubles text-round-trip exact and stays valid JSON (no
/// infinities/NaNs are ever produced by the timers; guard anyway).
std::string fmt_double(double v) {
  if (!(v == v)) return "0";            // NaN
  if (v > 1e308 || v < -1e308) return "0";  // +-inf
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PerfReport::add_phase(const std::string& phase_name, double seconds,
                           long reps, double cells, double bytes) {
  phases.push_back({phase_name, seconds, reps, cells, bytes});
}

void PerfReport::add_metric(const std::string& metric_name, double value,
                            const std::string& unit) {
  metrics.push_back({metric_name, value, unit});
}

void PerfReport::add_timers(const TimerRegistry& timers,
                            const std::string& prefix) {
  for (const auto& bucket : timers.buckets())
    add_phase(prefix + bucket, timers.total(bucket));
}

std::string PerfReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"" << kPerfSchema << "\",\n";
  os << "  \"name\": \"" << json_escape(name) << "\",\n";

  os << "  \"context\": {";
  bool first = true;
  for (const auto& [key, value] : context) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(key) << "\": \""
       << json_escape(value) << "\"";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"phases\": [";
  first = true;
  for (const auto& p : phases) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    { \"name\": \"" << json_escape(p.name)
       << "\", \"seconds\": " << fmt_double(p.seconds)
       << ", \"reps\": " << p.reps;
    const double per_rep = p.reps > 0 ? p.seconds / p.reps : p.seconds;
    os << ", \"seconds_per_rep\": " << fmt_double(per_rep);
    if (p.cells > 0.0) {
      os << ", \"cells\": " << fmt_double(p.cells);
      if (per_rep > 0.0)
        os << ", \"cell_updates_per_s\": " << fmt_double(p.cells / per_rep);
    }
    if (p.bytes > 0.0) {
      os << ", \"bytes\": " << fmt_double(p.bytes);
      if (per_rep > 0.0)
        os << ", \"gb_per_s\": " << fmt_double(p.bytes / per_rep / 1e9);
    }
    os << " }";
  }
  os << (first ? "" : "\n  ") << "],\n";

  os << "  \"metrics\": [";
  first = true;
  for (const auto& m : metrics) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    { \"name\": \"" << json_escape(m.name)
       << "\", \"value\": " << fmt_double(m.value) << ", \"unit\": \""
       << json_escape(m.unit) << "\" }";
  }
  os << (first ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

bool PerfReport::write(const std::string& path, std::string* error) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  const bool closed = std::fclose(out) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

PerfReport make_perf_report(const std::string& name) {
  PerfReport report;
  report.name = name;
  const auto isa = simd::isa_info();
  report.context["isa"] = isa.name;
  report.context["float_width"] = std::to_string(isa.float_width);
  // std::string temporaries sidestep a GCC 12 -O3 -Wrestrict false
  // positive on const char* assignment into map-stored strings.
  report.context["fma"] = std::string(isa.has_fma ? "1" : "0");
  report.context["threads"] = std::to_string(simd::thread_count());
  report.context["quick"] = std::string(quick_mode() ? "1" : "0");
  // Simulated-MPI rank count; producers that fan out overwrite this.
  report.context["ranks"] = std::string("1");
  return report;
}

}  // namespace v6d::io
