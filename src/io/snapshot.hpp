// Binary snapshot / checkpoint files for particles and phase space.
//
// Format: fixed little-endian header (magic, version, payload dims)
// followed by raw arrays.  The paper's end-to-end timing includes I/O
// (§7.2); the TTS bench writes these snapshots for the same reason.
#pragma once

#include <string>

#include "nbody/particles.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::io {

bool write_particles(const std::string& path,
                     const nbody::Particles& particles);
bool read_particles(const std::string& path, nbody::Particles& particles);

bool write_phase_space(const std::string& path, const vlasov::PhaseSpace& f);
bool read_phase_space(const std::string& path, vlasov::PhaseSpace& f);

}  // namespace v6d::io
