// Binary snapshot / checkpoint files for particles and phase space.
//
// Format: fixed little-endian header (magic, version, payload dims)
// followed by raw arrays.  The paper's end-to-end timing includes snapshot
// I/O (§7.2); the TTS bench writes these snapshots for the same reason,
// and the driver subsystem builds its checkpoint/restart on them.
//
// Readers validate the header before touching the payload and report what
// went wrong: a truncated file (kShortRead) is distinguishable from a file
// written by a different format version (kVersionMismatch) or a corrupted
// header (kBadMagic / kBadHeader), so restart tooling can tell "retry the
// previous checkpoint" apart from "wrong file entirely".
#pragma once

#include <string>

#include "nbody/particles.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::io {

enum class SnapshotStatus {
  kOk = 0,
  kOpenFailed,       // file missing / unreadable / uncreatable
  kBadMagic,         // header present but not a snapshot of this kind
  kVersionMismatch,  // recognized file, unsupported format version
  kBadHeader,        // dims/counts fail validation (corrupt or hostile)
  kShortRead,        // header OK but the payload is truncated
  kWriteFailed,      // fwrite fell short (disk full, etc.)
};

/// Human-readable status name ("ok", "short-read", ...).
const char* to_string(SnapshotStatus status);

/// Format version written by this build (bumped on layout changes).
unsigned snapshot_version();

SnapshotStatus write_particles(const std::string& path,
                               const nbody::Particles& particles);
SnapshotStatus read_particles(const std::string& path,
                              nbody::Particles& particles);

SnapshotStatus write_phase_space(const std::string& path,
                                 const vlasov::PhaseSpace& f);
SnapshotStatus read_phase_space(const std::string& path,
                                vlasov::PhaseSpace& f);

}  // namespace v6d::io
