#include "cosmology/background.hpp"

#include <cmath>

namespace v6d::cosmo {

namespace {
// 16-point Gauss-Legendre nodes/weights on [-1, 1].
constexpr int kGaussN = 16;
constexpr double kGx[kGaussN] = {
    -0.9894009349916499, -0.9445750230732326, -0.8656312023878318,
    -0.7554044083550030, -0.6178762444026438, -0.4580167776572274,
    -0.2816035507792589, -0.0950125098376374, 0.0950125098376374,
    0.2816035507792589,  0.4580167776572274,  0.6178762444026438,
    0.7554044083550030,  0.8656312023878318,  0.9445750230732326,
    0.9894009349916499};
constexpr double kGw[kGaussN] = {
    0.0271524594117541, 0.0622535239386479, 0.0951585116824928,
    0.1246289712555339, 0.1495959888165767, 0.1691565193950025,
    0.1826034150449236, 0.1894506104550685, 0.1894506104550685,
    0.1826034150449236, 0.1691565193950025, 0.1495959888165767,
    0.1246289712555339, 0.0951585116824928, 0.0622535239386479,
    0.0271524594117541};
}  // namespace

template <class Fn>
double Background::integrate(double a0, double a1, Fn&& fn) const {
  // Panelled Gauss-Legendre; panels keep accuracy through the steep early
  // epoch where the integrands scale like fractional powers of a.
  const int panels = 48;
  const double da = (a1 - a0) / panels;
  double total = 0.0;
  for (int p = 0; p < panels; ++p) {
    const double lo = a0 + p * da;
    const double mid = lo + 0.5 * da;
    const double half = 0.5 * da;
    double acc = 0.0;
    for (int i = 0; i < kGaussN; ++i) acc += kGw[i] * fn(mid + half * kGx[i]);
    total += acc * half;
  }
  return total;
}

double Background::hubble(double a) const {
  const double a3 = a * a * a;
  const double omega_k =
      1.0 - params_.omega_m - params_.omega_lambda;  // usually 0
  return std::sqrt(params_.omega_m / a3 + params_.omega_lambda +
                   omega_k / (a * a));
}

double Background::time_of(double a) const {
  return integrate(1e-8, a, [this](double aa) {
    return 1.0 / (aa * hubble(aa));
  });
}

double Background::a_of_time(double t) const {
  double lo = 1e-8, hi = 2.0;
  for (int it = 0; it < 80; ++it) {
    const double mid = 0.5 * (lo + hi);
    (time_of(mid) < t ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double Background::drift_factor(double a0, double a1) const {
  return integrate(a0, a1, [this](double a) {
    return 1.0 / (a * a * a * hubble(a));
  });
}

double Background::kick_factor(double a0, double a1) const {
  return integrate(a0, a1, [this](double a) {
    return 1.0 / (a * hubble(a));
  });
}

double Background::growth_unnormalized(double a) const {
  // D(a) = (5 Omega_m / 2) H(a) Integral_0^a da' / (a' H(a'))^3.
  const double integral = integrate(1e-8, a, [this](double aa) {
    const double ah = aa * hubble(aa);
    return 1.0 / (ah * ah * ah);
  });
  return 2.5 * params_.omega_m * hubble(a) * integral;
}

double Background::growth_factor(double a) const {
  return growth_unnormalized(a) / growth_unnormalized(1.0);
}

double Background::growth_rate(double a) const {
  const double eps = 1e-4;
  const double d_lo = growth_unnormalized(a * (1.0 - eps));
  const double d_hi = growth_unnormalized(a * (1.0 + eps));
  return (std::log(d_hi) - std::log(d_lo)) /
         (std::log(1.0 + eps) - std::log(1.0 - eps));
}

}  // namespace v6d::cosmo
