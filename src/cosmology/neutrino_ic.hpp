// Initial conditions for the massive-neutrino component.
//
// Vlasov form:  f(x, u) = Omega_nu [1 + delta_nu(x)] g(u - u_bulk(x)),
// with g the frozen Fermi-Dirac profile (fermi_dirac.hpp), delta_nu the
// matter field suppressed below the free-streaming scale, and u_bulk the
// linear velocity field.  g is renormalized cell-by-cell on the discrete
// velocity grid so the 0th moment equals Omega_nu (1 + delta_nu) exactly.
//
// N-body form (the TianNu-style comparison baseline): particles on a
// lattice, Zel'dovich-displaced with the neutrino transfer, plus an
// individually sampled Fermi-Dirac thermal velocity.
#pragma once

#include <cstdint>

#include "cosmology/fermi_dirac.hpp"
#include "cosmology/power_spectrum.hpp"
#include "mesh/grid.hpp"
#include "nbody/particles.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::cosmo {

struct NeutrinoIcOptions {
  double a_init = 1.0 / 11.0;
  std::uint64_t seed = 12345;   // must match the CDM seed: same realization
  bool bulk_velocity = true;    // imprint the linear flow on f
  double umax_over_uth = 8.0;   // velocity-space extent (paper-like cutoff)
};

/// Fill `f` (already sized) for a single-rank (whole-box) phase space.
/// delta_nu and the bulk velocity grids must share f's spatial grid size.
void initialize_neutrino_phase_space(
    vlasov::PhaseSpace& f, const Params& params, double u_th,
    const mesh::Grid3D<double>& delta_nu, const mesh::Grid3D<double>* bulk_x,
    const mesh::Grid3D<double>* bulk_y, const mesh::Grid3D<double>* bulk_z,
    int x_offset = 0, int y_offset = 0, int z_offset = 0);

/// Realize delta_nu (free-streaming-suppressed) and linear bulk velocity
/// on an n^3 grid at a_init, from the same seed (hence same realization)
/// as the CDM ICs.
struct NeutrinoFields {
  mesh::Grid3D<double> delta;
  mesh::Grid3D<double> bulk_x, bulk_y, bulk_z;
};
NeutrinoFields neutrino_linear_fields(const PowerSpectrum& ps, double box,
                                      int grid,
                                      const NeutrinoIcOptions& options);

/// Sample N-body neutrino particles: Zel'dovich positions/flows from the
/// nu-suppressed spectrum plus Fermi-Dirac thermal velocities.
nbody::Particles sample_neutrino_particles(const PowerSpectrum& ps,
                                           double box, int particles_per_side,
                                           double u_th,
                                           const NeutrinoIcOptions& options);

}  // namespace v6d::cosmo
