#include "cosmology/transfer.hpp"

#include <cmath>

namespace v6d::cosmo {

Transfer::Transfer(const Params& params, TransferShape shape)
    : params_(params), shape_(shape) {
  const double t27 = params.t_cmb / 2.7;
  theta_cmb2_ = t27 * t27;
  const double om_h2 = params.omega_m * params.h * params.h;
  const double ob_h2 = params.omega_b * params.h * params.h;
  // EH98 Eq. 26: approximate sound horizon in Mpc.
  sound_horizon_ = 44.5 * std::log(9.83 / om_h2) /
                   std::sqrt(1.0 + 10.0 * std::pow(ob_h2, 0.75));
  // EH98 Eq. 31: baryon suppression of the effective shape parameter.
  const double fb = params.omega_b / params.omega_m;
  alpha_gamma_ = 1.0 - 0.328 * std::log(431.0 * om_h2) * fb +
                 0.38 * std::log(22.3 * om_h2) * fb * fb;
}

double Transfer::eh98_nowiggle(double k) const {
  // k in h/Mpc; EH98 "zero baryon / no wiggle" form (their §4.2).
  if (k <= 0.0) return 1.0;
  const double om_h2 = params_.omega_m * params_.h * params_.h;
  const double k_mpc = k * params_.h;  // 1/Mpc
  // Effective shape with baryon suppression (EH98 Eq. 30).
  const double gamma_eff =
      params_.omega_m * params_.h *
      (alpha_gamma_ +
       (1.0 - alpha_gamma_) / (1.0 + std::pow(0.43 * k_mpc * sound_horizon_, 4)));
  const double q = k * theta_cmb2_ / gamma_eff;
  const double l0 = std::log(2.0 * M_E + 1.8 * q);
  const double c0 = 14.2 + 731.0 / (1.0 + 62.5 * q);
  (void)om_h2;
  return l0 / (l0 + c0 * q * q);
}

double Transfer::bbks(double k) const {
  if (k <= 0.0) return 1.0;
  const double gamma = params_.omega_m * params_.h *
                       std::exp(-params_.omega_b -
                                std::sqrt(2.0 * params_.h) * params_.omega_b /
                                    params_.omega_m);
  const double q = k / gamma;
  return std::log(1.0 + 2.34 * q) / (2.34 * q) *
         std::pow(1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                      std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4),
                  -0.25);
}

double Transfer::matter(double k) const {
  return shape_ == TransferShape::kEisensteinHu98 ? eh98_nowiggle(k)
                                                  : bbks(k);
}

double Transfer::k_freestream(double a) const {
  if (params_.m_nu_total_ev <= 0.0) return 1e30;  // no suppression
  const double m_per_species = params_.m_nu_total_ev / 3.0;
  // Standard fit: k_fs = 0.82 sqrt(OmL + Om/a^3) a^2 (m_nu / 1 eV) h/Mpc.
  const double e = std::sqrt(params_.omega_lambda +
                             params_.omega_m / (a * a * a));
  return 0.82 * e * a * a * m_per_species;
}

double Transfer::neutrino_suppression(double k, double a) const {
  const double x = k / k_freestream(a);
  const double d = 1.0 + x * x;
  return 1.0 / (d * d);
}

}  // namespace v6d::cosmo
