#include "cosmology/zeldovich.hpp"

#include <cmath>

#include "mesh/deposit.hpp"

namespace v6d::cosmo {

ZeldovichResult zeldovich_ics(const PowerSpectrum& ps, double box,
                              const ZeldovichOptions& options) {
  const int np = options.particles_per_side;
  const int ng = options.field_grid > 0 ? options.field_grid : np;
  const double a = options.a_init;
  const Background& bg = ps.background();

  ZeldovichResult result{
      nbody::Particles(static_cast<std::size_t>(np) * np * np),
      mesh::Grid3D<double>(ng, ng, ng, 1),
      mesh::Grid3D<double>(ng, ng, ng, 1),
      mesh::Grid3D<double>(ng, ng, ng, 1),
      mesh::Grid3D<double>(ng, ng, ng, 1)};

  GaussianField grf(ng, box, options.seed);
  grf.realize_with_displacement(
      [&](double k) { return ps.matter(k, a); }, result.delta, result.psix,
      result.psiy, result.psiz);
  result.delta.fill_ghosts_periodic();
  result.psix.fill_ghosts_periodic();
  result.psiy.fill_ghosts_periodic();
  result.psiz.fill_ghosts_periodic();

  mesh::MeshPatch patch;
  patch.box = box;
  patch.n_global = ng;

  // u = a^2 dx/dt with dx/dt = dD/dt psi_0 = H f psi(a).
  const double vel_factor =
      a * a * bg.hubble(a) * bg.growth_rate(a);
  const double spacing = box / np;

  auto& p = result.particles;
  const Params& params = ps.background().params();
  p.mass = params.omega_cdm() * box * box * box / p.size();

  std::size_t idx = 0;
  for (int i = 0; i < np; ++i)
    for (int j = 0; j < np; ++j)
      for (int k = 0; k < np; ++k, ++idx) {
        const double qx = (i + 0.5) * spacing;
        const double qy = (j + 0.5) * spacing;
        const double qz = (k + 0.5) * spacing;
        const double dx =
            mesh::interpolate(result.psix, patch, qx, qy, qz,
                              mesh::Assignment::kCic);
        const double dy =
            mesh::interpolate(result.psiy, patch, qx, qy, qz,
                              mesh::Assignment::kCic);
        const double dz =
            mesh::interpolate(result.psiz, patch, qx, qy, qz,
                              mesh::Assignment::kCic);
        p.x[idx] = qx + dx;
        p.y[idx] = qy + dy;
        p.z[idx] = qz + dz;
        p.ux[idx] = vel_factor * dx;
        p.uy[idx] = vel_factor * dy;
        p.uz[idx] = vel_factor * dz;
        p.id[idx] = idx;
      }
  p.wrap_positions(box);
  return result;
}

}  // namespace v6d::cosmo
