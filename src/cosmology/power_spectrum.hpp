// Linear matter power spectrum P(k) = A k^ns T(k)^2, normalized to sigma8.
#pragma once

#include "cosmology/background.hpp"
#include "cosmology/transfer.hpp"

namespace v6d::cosmo {

class PowerSpectrum {
 public:
  PowerSpectrum(const Params& params,
                TransferShape shape = TransferShape::kEisensteinHu98);

  /// Linear total-matter P(k) at z = 0; k in h/Mpc, P in (h^-1 Mpc)^3.
  double matter_z0(double k) const;
  /// Linear matter P(k) at scale factor a (growth-scaled).
  double matter(double k, double a) const;
  /// Linear *neutrino* component power at scale factor a (free-streaming
  /// suppressed).
  double neutrino(double k, double a) const;

  /// rms of top-hat-filtered density at radius r [h^-1 Mpc], z=0.
  double sigma_r(double r) const;

  const Transfer& transfer() const { return transfer_; }
  const Background& background() const { return background_; }
  double amplitude() const { return amplitude_; }

 private:
  Params params_;
  Transfer transfer_;
  Background background_;
  double amplitude_;
};

}  // namespace v6d::cosmo
