// Linear transfer functions.
//
// Two shapes for the matter transfer function:
//  * Eisenstein & Hu (1998) zero-baryon "no-wiggle" form (default — smooth,
//    accurate shape for P(k) normalization), and
//  * BBKS (Bardeen et al. 1986) for cross-checks.
//
// Massive-neutrino treatment: the *neutrino* density transfer is the matter
// one suppressed below the free-streaming scale,
//   T_nu(k, a) = T_m(k) / (1 + (k / k_fs(a))^2)^2,
// with k_fs the standard free-streaming wavenumber; the total-matter power
// is suppressed by the usual Delta P / P ~ -8 f_nu on small scales.  These
// fits replace a Boltzmann solver (CAMB/CLASS), which the paper's IC
// pipeline would use — adequate here because the experiments compare
// *relative* clustering between components and neutrino masses.
#pragma once

#include "cosmology/params.hpp"

namespace v6d::cosmo {

enum class TransferShape { kEisensteinHu98, kBbks };

class Transfer {
 public:
  Transfer(const Params& params, TransferShape shape = TransferShape::kEisensteinHu98);

  /// Matter transfer function T(k), k in h/Mpc, normalized T(0) = 1.
  double matter(double k) const;

  /// Free-streaming wavenumber of the neutrinos at scale factor a [h/Mpc]
  /// (m_nu per species = total/3).
  double k_freestream(double a) const;

  /// Neutrino density transfer relative to matter at scale factor a.
  double neutrino_suppression(double k, double a) const;
  double neutrino(double k, double a) const {
    return matter(k) * neutrino_suppression(k, a);
  }

 private:
  double eh98_nowiggle(double k) const;
  double bbks(double k) const;

  Params params_;
  TransferShape shape_;
  double theta_cmb2_;     // (T_cmb / 2.7)^2
  double sound_horizon_;  // EH98 approximate sound horizon [Mpc]
  double alpha_gamma_;
};

}  // namespace v6d::cosmo
