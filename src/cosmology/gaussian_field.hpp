// Gaussian random field realization on a periodic grid.
//
// delta_k modes are drawn with <|delta_k|^2> = P(k)/V and Hermitian
// symmetry so delta(x) is real.  Every mode's random numbers are seeded by
// hashing (seed, canonical mode triple), which makes realizations
// *deterministic and decomposition-independent*: the same seed produces
// bit-identical fields regardless of rank count or traversal order.
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <vector>

#include "mesh/grid.hpp"

namespace v6d::cosmo {

class GaussianField {
 public:
  /// n^3 grid over a periodic box of length `box` [h^-1 Mpc].
  GaussianField(int n, double box, std::uint64_t seed);

  /// Realize delta(x) from the power spectrum pk(k) [k in h/Mpc].
  void realize(const std::function<double(double)>& pk,
               mesh::Grid3D<double>& delta) const;

  /// Realize delta and the displacement field psi with
  /// psi_k = (i k / k^2) delta_k (Zel'dovich kernel).
  void realize_with_displacement(const std::function<double(double)>& pk,
                                 mesh::Grid3D<double>& delta,
                                 mesh::Grid3D<double>& psix,
                                 mesh::Grid3D<double>& psiy,
                                 mesh::Grid3D<double>& psiz) const;

  int n() const { return n_; }
  double box() const { return box_; }

 private:
  void fill_modes(const std::function<double(double)>& pk,
                  std::vector<std::complex<double>>& modes) const;

  int n_;
  double box_;
  std::uint64_t seed_;
};

}  // namespace v6d::cosmo
