#include "cosmology/neutrino_ic.hpp"

#include <cmath>
#include <vector>

#include "cosmology/gaussian_field.hpp"
#include "cosmology/zeldovich.hpp"
#include "mesh/deposit.hpp"

namespace v6d::cosmo {

void initialize_neutrino_phase_space(
    vlasov::PhaseSpace& f, const Params& params, double u_th,
    const mesh::Grid3D<double>& delta_nu, const mesh::Grid3D<double>* bulk_x,
    const mesh::Grid3D<double>* bulk_y, const mesh::Grid3D<double>* bulk_z,
    int x_offset, int y_offset, int z_offset) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double du3 = g.du3();
  std::vector<double> profile(f.block_size());

  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const int gx = ix + x_offset, gy = iy + y_offset, gz = iz + z_offset;
        const double delta = delta_nu.at(gx, gy, gz);
        const double ubx = bulk_x ? bulk_x->at(gx, gy, gz) : 0.0;
        const double uby = bulk_y ? bulk_y->at(gx, gy, gz) : 0.0;
        const double ubz = bulk_z ? bulk_z->at(gx, gy, gz) : 0.0;

        // Evaluate the shifted FD profile, then renormalize discretely so
        // the 0th moment is exact on this velocity grid.
        double sum = 0.0;
        std::size_t v = 0;
        for (int a = 0; a < d.nux; ++a)
          for (int b = 0; b < d.nuy; ++b)
            for (int c = 0; c < d.nuz; ++c, ++v) {
              const double dux = g.ux(a) - ubx;
              const double duy = g.uy(b) - uby;
              const double duz = g.uz(c) - ubz;
              const double s =
                  std::sqrt(dux * dux + duy * duy + duz * duz);
              profile[v] = fd_density(s, u_th);
              sum += profile[v];
            }
        const double target = params.omega_nu * (1.0 + delta);
        const double scale = sum > 0.0 ? target / (sum * du3) : 0.0;
        float* block = f.block(ix, iy, iz);
        for (v = 0; v < f.block_size(); ++v)
          block[v] = static_cast<float>(profile[v] * scale);
      }
}

NeutrinoFields neutrino_linear_fields(const PowerSpectrum& ps, double box,
                                      int grid,
                                      const NeutrinoIcOptions& options) {
  NeutrinoFields fields{mesh::Grid3D<double>(grid, grid, grid, 1),
                        mesh::Grid3D<double>(grid, grid, grid, 1),
                        mesh::Grid3D<double>(grid, grid, grid, 1),
                        mesh::Grid3D<double>(grid, grid, grid, 1)};
  const double a = options.a_init;
  GaussianField grf(grid, box, options.seed);
  mesh::Grid3D<double> psix(grid, grid, grid, 1), psiy(grid, grid, grid, 1),
      psiz(grid, grid, grid, 1);
  grf.realize_with_displacement(
      [&](double k) { return ps.neutrino(k, a); }, fields.delta, psix, psiy,
      psiz);
  // Linear bulk flow u = a^2 H f psi (same relation as Zel'dovich).
  const Background& bg = ps.background();
  const double vel_factor = a * a * bg.hubble(a) * bg.growth_rate(a);
  for (int i = 0; i < grid; ++i)
    for (int j = 0; j < grid; ++j)
      for (int k = 0; k < grid; ++k) {
        fields.bulk_x.at(i, j, k) = vel_factor * psix.at(i, j, k);
        fields.bulk_y.at(i, j, k) = vel_factor * psiy.at(i, j, k);
        fields.bulk_z.at(i, j, k) = vel_factor * psiz.at(i, j, k);
      }
  fields.delta.fill_ghosts_periodic();
  fields.bulk_x.fill_ghosts_periodic();
  fields.bulk_y.fill_ghosts_periodic();
  fields.bulk_z.fill_ghosts_periodic();
  return fields;
}

nbody::Particles sample_neutrino_particles(const PowerSpectrum& ps,
                                           double box, int particles_per_side,
                                           double u_th,
                                           const NeutrinoIcOptions& options) {
  // Zel'dovich flow from the nu-suppressed spectrum...
  const int np = particles_per_side;
  const int ng = np;
  const double a = options.a_init;
  mesh::Grid3D<double> delta(ng, ng, ng, 1), psix(ng, ng, ng, 1),
      psiy(ng, ng, ng, 1), psiz(ng, ng, ng, 1);
  GaussianField grf(ng, box, options.seed);
  grf.realize_with_displacement(
      [&](double k) { return ps.neutrino(k, a); }, delta, psix, psiy, psiz);
  psix.fill_ghosts_periodic();
  psiy.fill_ghosts_periodic();
  psiz.fill_ghosts_periodic();

  mesh::MeshPatch patch;
  patch.box = box;
  patch.n_global = ng;
  const Background& bg = ps.background();
  const double vel_factor = a * a * bg.hubble(a) * bg.growth_rate(a);
  const double spacing = box / np;

  nbody::Particles p(static_cast<std::size_t>(np) * np * np);
  const Params& params = ps.background().params();
  p.mass = params.omega_nu * box * box * box / p.size();

  // ...plus individually sampled thermal velocities.
  FermiDiracSampler sampler(u_th);
  Xoshiro256 rng(hash_mix(options.seed ^ 0x6e75ULL));
  std::size_t idx = 0;
  for (int i = 0; i < np; ++i)
    for (int j = 0; j < np; ++j)
      for (int k = 0; k < np; ++k, ++idx) {
        const double qx = (i + 0.5) * spacing;
        const double qy = (j + 0.5) * spacing;
        const double qz = (k + 0.5) * spacing;
        const double dx = mesh::interpolate(psix, patch, qx, qy, qz,
                                            mesh::Assignment::kCic);
        const double dy = mesh::interpolate(psiy, patch, qx, qy, qz,
                                            mesh::Assignment::kCic);
        const double dz = mesh::interpolate(psiz, patch, qx, qy, qz,
                                            mesh::Assignment::kCic);
        double tx, ty, tz;
        sampler.sample_velocity(rng, tx, ty, tz);
        p.x[idx] = qx + dx;
        p.y[idx] = qy + dy;
        p.z[idx] = qz + dz;
        p.ux[idx] = vel_factor * dx + tx;
        p.uy[idx] = vel_factor * dy + ty;
        p.uz[idx] = vel_factor * dz + tz;
        p.id[idx] = idx;
      }
  p.wrap_positions(box);
  return p;
}

}  // namespace v6d::cosmo
