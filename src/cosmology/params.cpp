#include "cosmology/params.hpp"

namespace v6d::cosmo {

double Params::omega_nu_from_mass(double m_nu_total_ev, double h) {
  return m_nu_total_ev / (93.14 * h * h);
}

void Params::set_neutrino_mass(double m_nu_total_ev_in) {
  m_nu_total_ev = m_nu_total_ev_in;
  omega_nu = omega_nu_from_mass(m_nu_total_ev_in, h);
}

Params Params::planck2015(double m_nu_total_ev_in) {
  Params p;
  p.omega_m = 0.3089;
  p.omega_b = 0.0486;
  p.omega_lambda = 1.0 - p.omega_m;
  p.h = 0.6774;
  p.sigma8 = 0.8159;
  p.n_s = 0.9667;
  p.set_neutrino_mass(m_nu_total_ev_in);
  return p;
}

}  // namespace v6d::cosmo
