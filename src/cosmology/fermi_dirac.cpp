#include "cosmology/fermi_dirac.hpp"

#include <cmath>
#include <vector>

#include "cosmology/params.hpp"

namespace v6d::cosmo {

namespace {

// Integral_0^inf x^2 / (e^x + 1) dx = (3/2) zeta(3).
constexpr double kFd2 = 1.8030853547393952;

double fd_speed_moment(double power) {
  // Integral x^power / (e^x + 1) dx on [0, ~60] by Simpson; the integrand
  // decays like e^-x so 60 thermal units is far past double precision.
  const int n = 6000;
  const double xmax = 60.0;
  const double h = xmax / n;
  double acc = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double x = i * h;
    const double f = std::pow(x, power) / (std::exp(x) + 1.0);
    const double w = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
    acc += w * f;
  }
  return acc * h / 3.0;
}

}  // namespace

double neutrino_thermal_velocity(double m_nu_ev, double t_cmb) {
  const double t_nu0 = std::cbrt(4.0 / 11.0) * t_cmb;  // K
  const double kb_t_ev = 8.617333262e-5 * t_nu0;       // eV
  return kSpeedOfLight * kb_t_ev / m_nu_ev;            // code units
}

double fd_density(double u, double u_th) {
  const double norm = 4.0 * M_PI * u_th * u_th * u_th * kFd2;
  return 1.0 / (norm * (std::exp(std::fabs(u) / u_th) + 1.0));
}

double fd_mean_speed(double u_th) {
  return u_th * fd_speed_moment(3.0) / kFd2;
}

double fd_rms_speed(double u_th) {
  return u_th * std::sqrt(fd_speed_moment(4.0) / kFd2);
}

FermiDiracSampler::FermiDiracSampler(double u_th, int table_size)
    : u_th_(u_th), u_max_(25.0 * u_th) {
  // Build the CDF of p(u) ~ u^2/(e^{u/uth}+1) on [0, u_max], then invert
  // onto uniform CDF nodes.
  const int n = 16384;
  std::vector<double> cdf(static_cast<std::size_t>(n) + 1, 0.0);
  const double h = u_max_ / n;
  for (int i = 1; i <= n; ++i) {
    const double u0 = (i - 1) * h, u1 = i * h;
    auto p = [&](double u) {
      const double x = u / u_th_;
      return u * u / (std::exp(x) + 1.0);
    };
    cdf[static_cast<std::size_t>(i)] =
        cdf[static_cast<std::size_t>(i) - 1] +
        0.5 * h * (p(u0) + p(u1));
  }
  const double total = cdf[static_cast<std::size_t>(n)];
  inverse_cdf_.resize(static_cast<std::size_t>(table_size) + 1);
  int j = 0;
  for (int t = 0; t <= table_size; ++t) {
    const double target = total * t / table_size;
    while (j < n && cdf[static_cast<std::size_t>(j) + 1] < target) ++j;
    if (j >= n) {
      inverse_cdf_[static_cast<std::size_t>(t)] = u_max_;
      continue;
    }
    const double c0 = cdf[static_cast<std::size_t>(j)];
    const double c1 = cdf[static_cast<std::size_t>(j) + 1];
    const double frac = c1 > c0 ? (target - c0) / (c1 - c0) : 0.0;
    inverse_cdf_[static_cast<std::size_t>(t)] = (j + frac) * h;
  }
}

double FermiDiracSampler::sample_speed(Xoshiro256& rng) const {
  const double r = rng.next_double() * (inverse_cdf_.size() - 1);
  const auto idx = static_cast<std::size_t>(r);
  const double frac = r - static_cast<double>(idx);
  if (idx + 1 >= inverse_cdf_.size()) return inverse_cdf_.back();
  return inverse_cdf_[idx] * (1.0 - frac) + inverse_cdf_[idx + 1] * frac;
}

void FermiDiracSampler::sample_velocity(Xoshiro256& rng, double& ux,
                                        double& uy, double& uz) const {
  const double speed = sample_speed(rng);
  const double mu = 2.0 * rng.next_double() - 1.0;
  const double phi = 2.0 * M_PI * rng.next_double();
  const double s = std::sqrt(1.0 - mu * mu);
  ux = speed * s * std::cos(phi);
  uy = speed * s * std::sin(phi);
  uz = speed * mu;
}

}  // namespace v6d::cosmo
