#include "cosmology/power_spectrum.hpp"

#include <cmath>

namespace v6d::cosmo {

namespace {

double tophat_window(double x) {
  if (x < 1e-4) return 1.0 - x * x / 10.0;
  return 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
}

}  // namespace

PowerSpectrum::PowerSpectrum(const Params& params, TransferShape shape)
    : params_(params),
      transfer_(params, shape),
      background_(params),
      amplitude_(1.0) {
  // Normalize so sigma_r(8) = sigma8.
  const double s8 = sigma_r(8.0);
  amplitude_ = params.sigma8 * params.sigma8 / (s8 * s8);
}

double PowerSpectrum::matter_z0(double k) const {
  if (k <= 0.0) return 0.0;
  const double t = transfer_.matter(k);
  return amplitude_ * std::pow(k, params_.n_s) * t * t;
}

double PowerSpectrum::matter(double k, double a) const {
  const double d = background_.growth_factor(a);
  return matter_z0(k) * d * d;
}

double PowerSpectrum::neutrino(double k, double a) const {
  const double s = transfer_.neutrino_suppression(k, a);
  return matter(k, a) * s * s;
}

double PowerSpectrum::sigma_r(double r) const {
  // sigma^2 = (1/2 pi^2) Integral k^2 P(k) W(kr)^2 dk, log-k trapezoid.
  const int n = 600;
  const double lk0 = std::log(1e-5), lk1 = std::log(1e3);
  const double dlk = (lk1 - lk0) / n;
  double acc = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double k = std::exp(lk0 + i * dlk);
    const double w = tophat_window(k * r);
    const double t = transfer_.matter(k);
    const double p = amplitude_ * std::pow(k, params_.n_s) * t * t;
    const double integrand = k * k * k * p * w * w;  // extra k: dlnk measure
    acc += (i == 0 || i == n ? 0.5 : 1.0) * integrand;
  }
  return std::sqrt(acc * dlk / (2.0 * M_PI * M_PI));
}

}  // namespace v6d::cosmo
