#include "cosmology/gaussian_field.hpp"

#include <cmath>
#include <complex>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "fft/fft3d.hpp"

namespace v6d::cosmo {

namespace {

inline int signed_mode(int i, int n) { return i <= n / 2 ? i : i - n; }
inline int wrap_mode(int m, int n) { return ((m % n) + n) % n; }

/// True if FFT bin triple is its own complex conjugate (all components are
/// 0 or Nyquist).
inline bool self_conjugate(int i, int j, int k, int n) {
  auto sc = [n](int m) { return m == 0 || (n % 2 == 0 && m == n / 2); };
  return sc(i) && sc(j) && sc(k);
}

}  // namespace

GaussianField::GaussianField(int n, double box, std::uint64_t seed)
    : n_(n), box_(box), seed_(seed) {}

void GaussianField::fill_modes(const std::function<double(double)>& pk,
                               std::vector<std::complex<double>>& modes) const {
  const int n = n_;
  const double volume = box_ * box_ * box_;
  const double two_pi_over_l = 2.0 * M_PI / box_;
  const double n3 = static_cast<double>(n) * n * n;
  modes.assign(static_cast<std::size_t>(n) * n * n, {0.0, 0.0});

  auto index = [n](int i, int j, int k) {
    return (static_cast<std::size_t>(i) * n + j) * n + k;
  };

  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) {
        // Canonical representative of the conjugate pair: the
        // lexicographically smaller of (i,j,k) and its conjugate.
        const int ci = wrap_mode(-signed_mode(i, n), n);
        const int cj = wrap_mode(-signed_mode(j, n), n);
        const int ck = wrap_mode(-signed_mode(k, n), n);
        const bool canonical =
            std::tie(i, j, k) <= std::tie(ci, cj, ck);
        if (!canonical) continue;

        const double kx = two_pi_over_l * signed_mode(i, n);
        const double ky = two_pi_over_l * signed_mode(j, n);
        const double kz = two_pi_over_l * signed_mode(k, n);
        const double kk = std::sqrt(kx * kx + ky * ky + kz * kz);
        if (kk == 0.0) continue;  // mean mode zero

        // Per-mode deterministic stream.
        const std::uint64_t h = hash_mix(
            seed_ ^ hash_mix((static_cast<std::uint64_t>(i) << 42) ^
                             (static_cast<std::uint64_t>(j) << 21) ^
                             static_cast<std::uint64_t>(k)));
        Xoshiro256 rng(h);
        // FFT convention: delta(x) = (1/N^3) sum delta_k e^{ikx} after
        // inverse_normalized, so scale amplitudes by N^3.
        const double sigma = std::sqrt(pk(kk) / volume) * n3;
        if (self_conjugate(i, j, k, n)) {
          modes[index(i, j, k)] = {sigma * rng.next_normal(), 0.0};
        } else {
          const double re = sigma * M_SQRT1_2 * rng.next_normal();
          const double im = sigma * M_SQRT1_2 * rng.next_normal();
          modes[index(i, j, k)] = {re, im};
          modes[index(ci, cj, ck)] = {re, -im};
        }
      }
}

void GaussianField::realize(const std::function<double(double)>& pk,
                            mesh::Grid3D<double>& delta) const {
  std::vector<std::complex<double>> modes;
  fill_modes(pk, modes);
  fft::Fft3D fft(n_, n_, n_);
  fft.inverse_normalized(modes.data());
  std::size_t o = 0;
  for (int i = 0; i < n_; ++i)
    for (int j = 0; j < n_; ++j)
      for (int k = 0; k < n_; ++k) delta.at(i, j, k) = modes[o++].real();
}

void GaussianField::realize_with_displacement(
    const std::function<double(double)>& pk, mesh::Grid3D<double>& delta,
    mesh::Grid3D<double>& psix, mesh::Grid3D<double>& psiy,
    mesh::Grid3D<double>& psiz) const {
  std::vector<std::complex<double>> modes;
  fill_modes(pk, modes);

  const int n = n_;
  const double two_pi_over_l = 2.0 * M_PI / box_;
  std::vector<std::complex<double>> mx(modes.size()), my(modes.size()),
      mz(modes.size());
  std::size_t o = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k, ++o) {
        const double kx = two_pi_over_l * signed_mode(i, n);
        const double ky = two_pi_over_l * signed_mode(j, n);
        const double kz = two_pi_over_l * signed_mode(k, n);
        const double k2 = kx * kx + ky * ky + kz * kz;
        if (k2 == 0.0) continue;
        const std::complex<double> ik_over_k2(0.0, 1.0 / k2);
        mx[o] = ik_over_k2 * kx * modes[o];
        my[o] = ik_over_k2 * ky * modes[o];
        mz[o] = ik_over_k2 * kz * modes[o];
      }

  fft::Fft3D fft(n, n, n);
  auto unpack = [&](std::vector<std::complex<double>>& m,
                    mesh::Grid3D<double>& g) {
    fft.inverse_normalized(m.data());
    std::size_t q = 0;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        for (int k = 0; k < n; ++k) g.at(i, j, k) = m[q++].real();
  };
  unpack(modes, delta);
  unpack(mx, psix);
  unpack(my, psiy);
  unpack(mz, psiz);
}

}  // namespace v6d::cosmo
