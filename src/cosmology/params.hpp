// Cosmological parameters and internal code units.
//
// Code units (documented here once; used consistently everywhere):
//   length   : 1 h^-1 Mpc (comoving)
//   time     : 1 / H0            =>  H0 = 1
//   velocity : H0 * h^-1 Mpc     =  100 km/s
//   density  : rho_crit,0        =>  4 pi G rho_crit,0 = (3/2) H0^2 = 3/2
//
// With comoving density fields Omega(x) = rho_comoving / rho_crit,0 the
// Poisson equation (paper Eq. 2) becomes
//   laplacian(phi) = (3/2) / a * (Omega(x) - Omega_m),
// and particle/Vlasov kicks use du/dt = -grad(phi) with the canonical
// velocity u = a^2 dx/dt.
#pragma once

namespace v6d::cosmo {

/// Speed of light in code velocity units (km/s / 100).
inline constexpr double kSpeedOfLight = 2997.92458;

struct Params {
  double omega_m = 0.31;       // total matter (CDM + baryons + neutrinos)
  double omega_b = 0.048;      // baryons (lumped with CDM dynamically)
  double omega_lambda = 0.69;  // cosmological constant
  double omega_nu = 0.0;       // massive neutrinos (from m_nu if set)
  double h = 0.67;             // H0 / (100 km/s/Mpc)
  double sigma8 = 0.815;       // power normalization
  double n_s = 0.965;          // primordial spectral index
  double m_nu_total_ev = 0.0;  // sum of neutrino masses [eV]
  double t_cmb = 2.7255;       // CMB temperature [K]

  /// CDM(+baryon) fraction of matter.
  double omega_cdm() const { return omega_m - omega_nu; }
  double f_nu() const { return omega_m > 0.0 ? omega_nu / omega_m : 0.0; }

  /// Omega_nu h^2 = sum(m_nu) / 93.14 eV (standard relic abundance).
  static double omega_nu_from_mass(double m_nu_total_ev, double h);
  /// Fill omega_nu from m_nu_total_ev (keeps omega_m fixed; CDM shrinks).
  void set_neutrino_mass(double m_nu_total_ev_in);

  /// Planck-2015-like fiducial used in the paper's runs (Mnu = 0.4 eV is
  /// their headline choice; pass 0.2 for the comparison panel of Fig. 4).
  static Params planck2015(double m_nu_total_ev_in = 0.4);
};

}  // namespace v6d::cosmo
