// Relic-neutrino Fermi-Dirac velocity distribution.
//
// In canonical velocity u = a^2 dx/dt the relic distribution is frozen:
// the comoving momentum q = a m v_pec = m u is conserved, so
//   f_0(u) \propto 1 / (exp(|u| / u_th) + 1),
//   u_th = (k_B T_nu,0 / m_nu c^2) * c    (time-independent!),
// with T_nu,0 = (4/11)^(1/3) T_cmb.  This is the distribution the Vlasov
// ICs discretize and the N-body comparison runs sample.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace v6d::cosmo {

/// u_th in code velocity units (100 km/s) for one neutrino species of mass
/// m_nu_ev (eV).  t_cmb in K.
double neutrino_thermal_velocity(double m_nu_ev, double t_cmb = 2.7255);

/// Isotropic normalized distribution: g(|u|) with Integral g d^3u = 1.
double fd_density(double u, double u_th);

/// Moments of the speed distribution (computed by quadrature).
double fd_mean_speed(double u_th);
double fd_rms_speed(double u_th);

/// Inverse-CDF sampler of the speed |u| (for N-body neutrino particles).
class FermiDiracSampler {
 public:
  explicit FermiDiracSampler(double u_th, int table_size = 4096);

  double u_th() const { return u_th_; }
  /// Draw a speed from p(u) du \propto u^2 / (exp(u/u_th)+1) du.
  double sample_speed(Xoshiro256& rng) const;
  /// Draw a full isotropic velocity vector.
  void sample_velocity(Xoshiro256& rng, double& ux, double& uy,
                       double& uz) const;

 private:
  double u_th_;
  double u_max_;
  std::vector<double> inverse_cdf_;  // speed at uniform CDF nodes
};

}  // namespace v6d::cosmo
