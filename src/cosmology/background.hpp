// Homogeneous background evolution: H(a), t(a), drift/kick factors, linear
// growth.  All in code units (H0 = 1; see params.hpp).
#pragma once

#include "cosmology/params.hpp"

namespace v6d::cosmo {

class Background {
 public:
  explicit Background(const Params& params) : params_(params) {}

  const Params& params() const { return params_; }

  /// Hubble rate H(a)/H0 for flat LCDM (radiation neglected; matter
  /// includes neutrinos, which are non-relativistic for the redshifts the
  /// simulations cover).
  double hubble(double a) const;

  /// Age of the universe at scale factor a (integral of da / (a H)).
  double time_of(double a) const;
  /// Inverse of time_of (bisection; a in (0, 2]).
  double a_of_time(double t) const;

  /// Leapfrog factors between scale factors a0 < a1:
  ///   drift = Integral dt / a^2   (positions: dx = u * drift)
  ///   kick  = Integral dt        (velocities: du = -grad(phi) * kick)
  double drift_factor(double a0, double a1) const;
  double kick_factor(double a0, double a1) const;

  /// Linear growth factor, normalized so D(a=1) = 1.
  double growth_factor(double a) const;
  /// Growth rate f = dlnD / dlna.
  double growth_rate(double a) const;

 private:
  /// Gauss-Legendre integral of fn(a) da over [a0, a1].
  template <class Fn>
  double integrate(double a0, double a1, Fn&& fn) const;
  double growth_unnormalized(double a) const;

  Params params_;
};

}  // namespace v6d::cosmo
