// Zel'dovich-approximation initial conditions for particles.
//
// Particles start on a uniform lattice and are displaced by the linear
// displacement field:  x = q + psi(q, a),  u = a^2 H(a) f(a) psi(q, a),
// where psi is realized at the starting epoch (its delta_k already carry
// the growth factor via the epoch-evaluated P(k)).
#pragma once

#include <cstdint>

#include "cosmology/background.hpp"
#include "cosmology/gaussian_field.hpp"
#include "cosmology/power_spectrum.hpp"
#include "nbody/particles.hpp"

namespace v6d::cosmo {

struct ZeldovichOptions {
  int particles_per_side = 16;
  double a_init = 1.0 / 11.0;  // z = 10, the paper's starting epoch
  std::uint64_t seed = 12345;
  /// Density field resolution used to realize psi (defaults to
  /// particles_per_side when 0).
  int field_grid = 0;
};

struct ZeldovichResult {
  nbody::Particles particles;
  /// The realized (epoch-scaled) density contrast on the field grid — kept
  /// so neutrino ICs can be built from the same realization.
  mesh::Grid3D<double> delta;
  mesh::Grid3D<double> psix, psiy, psiz;
};

/// Generate CDM particle ICs in a periodic box of length `box`.
/// Particle mass is set to Omega_cdm * box^3 / N (critical-density units).
ZeldovichResult zeldovich_ics(const PowerSpectrum& ps, double box,
                              const ZeldovichOptions& options);

}  // namespace v6d::cosmo
