// Lightweight non-owning multi-dimensional views over contiguous storage.
//
// All fields in vlasov6d (3-D meshes, 6-D phase-space blocks) live in flat
// aligned buffers; these views provide bounds-checked-in-debug indexing with
// row-major ("C") layout, i.e. the *last* index is memory-contiguous.  The
// Vlasov kernels depend on that layout: the uz axis of the velocity block is
// the contiguous one, which is exactly the axis the paper's LAT method
// targets (paper §5.3, List 1).
#pragma once

#include <cassert>
#include <cstddef>

namespace v6d {

template <class T>
class View1D {
 public:
  View1D() = default;
  View1D(T* data, std::ptrdiff_t n, std::ptrdiff_t stride = 1)
      : data_(data), n_(n), stride_(stride) {}

  T& operator()(std::ptrdiff_t i) const {
    assert(i >= 0 && i < n_);
    return data_[i * stride_];
  }
  T& operator[](std::ptrdiff_t i) const { return (*this)(i); }

  std::ptrdiff_t size() const { return n_; }
  std::ptrdiff_t stride() const { return stride_; }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::ptrdiff_t n_ = 0;
  std::ptrdiff_t stride_ = 1;
};

template <class T>
class View2D {
 public:
  View2D() = default;
  View2D(T* data, std::ptrdiff_t n0, std::ptrdiff_t n1)
      : data_(data), n0_(n0), n1_(n1) {}

  T& operator()(std::ptrdiff_t i, std::ptrdiff_t j) const {
    assert(i >= 0 && i < n0_ && j >= 0 && j < n1_);
    return data_[i * n1_ + j];
  }
  View1D<T> row(std::ptrdiff_t i) const {
    assert(i >= 0 && i < n0_);
    return View1D<T>(data_ + i * n1_, n1_, 1);
  }
  View1D<T> col(std::ptrdiff_t j) const {
    assert(j >= 0 && j < n1_);
    return View1D<T>(data_ + j, n0_, n1_);
  }

  std::ptrdiff_t extent0() const { return n0_; }
  std::ptrdiff_t extent1() const { return n1_; }
  std::ptrdiff_t size() const { return n0_ * n1_; }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::ptrdiff_t n0_ = 0, n1_ = 0;
};

template <class T>
class View3D {
 public:
  View3D() = default;
  View3D(T* data, std::ptrdiff_t n0, std::ptrdiff_t n1, std::ptrdiff_t n2)
      : data_(data), n0_(n0), n1_(n1), n2_(n2) {}

  T& operator()(std::ptrdiff_t i, std::ptrdiff_t j, std::ptrdiff_t k) const {
    assert(i >= 0 && i < n0_ && j >= 0 && j < n1_ && k >= 0 && k < n2_);
    return data_[(i * n1_ + j) * n2_ + k];
  }

  std::ptrdiff_t extent(int axis) const {
    return axis == 0 ? n0_ : axis == 1 ? n1_ : n2_;
  }
  std::ptrdiff_t size() const { return n0_ * n1_ * n2_; }
  /// Memory stride (in elements) between successive indices along `axis`.
  std::ptrdiff_t stride(int axis) const {
    return axis == 0 ? n1_ * n2_ : axis == 1 ? n2_ : 1;
  }
  T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::ptrdiff_t n0_ = 0, n1_ = 0, n2_ = 0;
};

}  // namespace v6d
