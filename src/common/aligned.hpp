// Aligned heap allocation for SIMD-friendly buffers.
//
// Phase-space blocks and mesh fields are allocated with 64-byte alignment so
// that SIMD loads in the advection kernels never straddle cache lines and the
// LAT transpose can use aligned register loads.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace v6d {

inline constexpr std::size_t kSimdAlign = 64;

/// Allocator usable with std::vector that guarantees kSimdAlign alignment.
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = std::aligned_alloc(kSimdAlign, round_up(n * sizeof(T)));
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }

 private:
  // aligned_alloc requires the size to be a multiple of the alignment.
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kSimdAlign - 1) / kSimdAlign * kSimdAlign;
  }
};

template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace v6d
