// Deterministic, splittable pseudo-random numbers (xoshiro256**).
//
// Initial-condition generation must be reproducible across rank counts: the
// Gaussian random field and particle displacements are seeded per mode /
// per particle id, never per rank, so decompositions of the same problem
// produce identical realizations.
#pragma once

#include <cstdint>

namespace v6d {

class Xoshiro256 {
 public:
  /// Full generator state, exposed so checkpoints can round-trip a stream
  /// mid-sequence (the Box-Muller cache is part of the sequence).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next_u64();
  /// Uniform in [0, 1).
  double next_double();
  /// Standard normal via Box-Muller (consumes two uniforms per pair).
  double next_normal();
  /// New generator whose stream is decorrelated from this one.
  Xoshiro256 split();

  /// 2^128 stream jump; used to derive independent per-object streams.
  void jump();

  State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stateless 64-bit mix (splitmix64 finalizer); used to hash (seed, id)
/// pairs into per-mode RNG seeds.
std::uint64_t hash_mix(std::uint64_t x);

}  // namespace v6d
