// Minimal leveled logging to stderr.
//
// Rank-aware: when running under the simulated communicator, set_rank() tags
// each line so interleaved output from rank threads stays attributable.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace v6d::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_level(Level level);
Level level();
/// Tag subsequent messages from this thread with a rank id (-1 = untagged).
void set_rank(int rank);

/// Redirect formatted lines (no trailing newline) away from stderr, e.g.
/// for test capture.  Pass nullptr to restore stderr.  The sink runs under
/// the logging mutex, so it must not log.
void set_sink(std::function<void(const std::string&)> sink);

/// Format `[seconds-since-start][LEVEL][rank N] message` and emit it as one
/// write under a single mutex — concurrent rank lines cannot tear mid-line.
void write(Level level, const std::string& message);

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <class... Args>
void debug(Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <class... Args>
void info(Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <class... Args>
void warn(Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <class... Args>
void error(Args&&... args) {
  write(Level::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace v6d::log
