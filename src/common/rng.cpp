#include "common/rng.hpp"

#include <cmath>

namespace v6d {

std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seed the four lanes through splitmix64 per the xoshiro authors'
  // recommendation; guarantees a non-zero state.
  for (auto& lane : s_) {
    seed = hash_mix(seed);
    lane = seed | 1ULL;
  }
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Xoshiro256::next_normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; reject u1 == 0 to avoid log(0).
  double u1 = 0.0;
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

void Xoshiro256::jump() {
  static const std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                        0xd5a61266f0c9392cULL,
                                        0xa9582618e03fc9aaULL,
                                        0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Xoshiro256::State Xoshiro256::state() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.have_cached_normal = have_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Xoshiro256::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  have_cached_normal_ = state.have_cached_normal;
  cached_normal_ = state.cached_normal;
}

Xoshiro256 Xoshiro256::split() {
  Xoshiro256 child = *this;
  child.jump();
  child.have_cached_normal_ = false;
  // Advance self so successive split() calls yield distinct children.
  next_u64();
  return child;
}

}  // namespace v6d
