#include "common/options.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace v6d {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    values_[token.substr(0, eq)] = token.substr(eq + 1);
  }
}

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  std::string env_key = "V6D_" + key;
  std::transform(env_key.begin(), env_key.end(), env_key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (const char* env = std::getenv(env_key.c_str())) return env;
  return def;
}

int Options::get_int(const std::string& key, int def) const {
  const std::string v = get(key, "");
  return v.empty() ? def : std::atoi(v.c_str());
}

double Options::get_double(const std::string& key, double def) const {
  const std::string v = get(key, "");
  return v.empty() ? def : std::atof(v.c_str());
}

bool Options::get_bool(const std::string& key, bool def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

void Options::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool quick_mode() {
  const char* env = std::getenv("V6D_QUICK");
  return env && std::string(env) != "0";
}

}  // namespace v6d
