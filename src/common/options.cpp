#include "common/options.hpp"

#include <algorithm>
#include <cctype>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace v6d {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Options::Options(int argc, char** argv) {
  *this = parse_cli(argc, argv).options;
}

CliArgs parse_cli(int argc, char** argv) {
  CliArgs cli;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "-h" || token == "--help") {
      cli.help = true;
      continue;
    }
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      cli.positional.push_back(token);
      continue;
    }
    cli.options.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return cli;
}

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  if (it != values_.end()) return it->second;
  std::string env_key = "V6D_" + key;
  std::transform(env_key.begin(), env_key.end(), env_key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (const char* env = std::getenv(env_key.c_str())) return env;
  return def;
}

int Options::get_int(const std::string& key, int def) const {
  // strtol, not atoi: atoi has undefined behaviour on out-of-range text
  // and cannot distinguish "0" from garbage.  Unparseable values fall
  // back to the default instead of silently becoming zero.
  const std::string v = get(key, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str()) return def;
  if (parsed < INT_MIN) return INT_MIN;
  if (parsed > INT_MAX) return INT_MAX;
  return static_cast<int>(parsed);
}

double Options::get_double(const std::string& key, double def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  return end == v.c_str() ? def : parsed;
}

bool Options::get_bool(const std::string& key, bool def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

void Options::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Options::set_default(const std::string& key, const std::string& value) {
  values_.emplace(key, value);
}

bool Options::load_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open config file: " + path;
    return false;
  }
  std::string line, section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error) {
        std::ostringstream oss;
        oss << path << ":" << lineno << ": expected 'key = value', got '"
            << line << "'";
        *error = oss.str();
      }
      return false;
    }
    std::string key = trim(line.substr(0, eq));
    if (!section.empty()) key = section + "." + key;
    set_default(key, trim(line.substr(eq + 1)));
  }
  return true;
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

bool quick_mode() {
  const char* env = std::getenv("V6D_QUICK");
  return env && std::string(env) != "0";
}

}  // namespace v6d
