// Tiny key=value option parsing for the driver CLI, examples and benches.
//
// Accepts "key=value" tokens on the command line plus environment-variable
// fallbacks, so the bench harness can be run as-is or scaled via e.g.
// `V6D_QUICK=1 ./bench/fig4_density_maps` without editing sources.  The
// driver subsystem layers INI-style config files underneath the same map:
// precedence is command line > config file > environment > defaults.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace v6d {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  /// Value lookup order: command line, then environment variable
  /// `V6D_<KEY>` (upper-cased), then the supplied default.
  std::string get(const std::string& key, const std::string& def) const;
  /// Checked numeric reads (strtol/strtod, not atoi): values with no
  /// numeric prefix fall back to `def`; out-of-range ints saturate to
  /// INT_MIN/INT_MAX instead of invoking undefined behaviour.
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  bool has(const std::string& key) const;
  void set(const std::string& key, const std::string& value);
  /// Insert only if the key is absent (lower-precedence source).
  void set_default(const std::string& key, const std::string& value);

  /// Load an INI-style config file: one `key = value` per line, `#`/`;`
  /// comments, optional `[section]` headers prefixing keys as
  /// `section.key`.  File values never override keys already present
  /// (command-line overrides win).  Returns false if the file cannot be
  /// opened or a non-blank line has no '='; *error describes the failure.
  bool load_file(const std::string& path, std::string* error = nullptr);

  /// All keys currently set, sorted (serialization / debugging).
  std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

/// The one argv parser shared by the `v6d` CLI and every example/bench:
/// `key=value` tokens populate `options`, `-h`/`--help` sets `help`, and
/// anything else (config paths, subcommands) lands in `positional`.
struct CliArgs {
  Options options;
  std::vector<std::string> positional;
  bool help = false;
};
CliArgs parse_cli(int argc, char** argv);

/// True when the harness should favour short runtimes (env V6D_QUICK=1).
bool quick_mode();

}  // namespace v6d
