// Tiny key=value option parsing for examples and benches.
//
// Accepts "key=value" tokens on the command line plus environment-variable
// fallbacks, so the bench harness can be run as-is or scaled via e.g.
// `V6D_QUICK=1 ./bench/fig4_density_maps` without editing sources.
#pragma once

#include <map>
#include <string>

namespace v6d {

class Options {
 public:
  Options() = default;
  Options(int argc, char** argv);

  /// Value lookup order: command line, then environment variable
  /// `V6D_<KEY>` (upper-cased), then the supplied default.
  std::string get(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  bool has(const std::string& key) const;
  void set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
};

/// True when the harness should favour short runtimes (env V6D_QUICK=1).
bool quick_mode();

}  // namespace v6d
