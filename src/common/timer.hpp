// Wall-clock timers with named accumulation buckets.
//
// The paper measures per-part elapsed times (Vlasov / tree / PM / comm) with
// clock_gettime and reports medians over 40 steps (§6.1).  TimerRegistry
// reproduces that workflow: scoped timers accumulate into named buckets, and
// the scaling benches query per-bucket totals and per-step samples.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/trace.hpp"

namespace v6d {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates elapsed time into named buckets; one instance per rank.
class TimerRegistry {
 public:
  void add(const std::string& bucket, double seconds);
  /// Record one per-step sample (used for the median-of-40-steps metric).
  void add_sample(const std::string& bucket, double seconds);

  double total(const std::string& bucket) const;
  /// Median of the recorded per-step samples (0 if none recorded).
  double median_sample(const std::string& bucket) const;
  const std::vector<double>& samples(const std::string& bucket) const;

  std::vector<std::string> buckets() const;
  void clear();

  /// Fold another registry into this one, bucket names prefixed with
  /// `prefix` (totals add, samples append).  Lets the driver surface its
  /// own buckets and the solver's through one report.
  void merge(const TimerRegistry& other, const std::string& prefix = "");

 private:
  std::map<std::string, double> totals_;
  std::map<std::string, std::vector<double>> samples_;
  static const std::vector<double> empty_;
};

/// RAII timer: adds elapsed wall time to `registry[bucket]` on destruction.
/// When tracing is enabled the same interval is also emitted as a trace
/// span named after the bucket, so every timer bucket doubles as a
/// timeline lane; when tracing is off the extra cost is one relaxed load.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& registry, std::string bucket)
      : registry_(registry),
        bucket_(std::move(bucket)),
        trace_t0_(trace::enabled() ? trace::now_ns() : trace::detail::kOff) {}
  ~ScopedTimer() {
    if (trace_t0_ != trace::detail::kOff)
      trace::emit_span(bucket_.c_str(), trace_t0_, trace::now_ns());
    registry_.add(bucket_, watch_.seconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& registry_;
  std::string bucket_;
  std::uint64_t trace_t0_;
  Stopwatch watch_;
};

}  // namespace v6d
