// Per-thread event tracing with Chrome trace_event JSON output.
//
// The paper's performance analysis (§6.1) needs to know *when* each phase of
// a step ran on each rank, not just its accumulated total: did the halo sends
// posted by HaloPlan::begin_axis actually fly while the interior sweeps ran,
// or did finish_axis stall?  TimerRegistry answers "how much", this answers
// "when".  Every rank thread records spans/instants/counters into its own
// fixed-capacity buffer (single-writer, no locks on the hot path) and the
// driver flushes the merged stream as Chrome trace_event JSON, loadable in
// Perfetto / chrome://tracing.
//
// Cost model: when tracing is disabled (the default), every emit call is one
// relaxed atomic load and a branch — cheap enough to leave the
// instrumentation in the production hot path permanently.  When enabled, a
// record is a strncpy + a handful of stores into a preallocated slot; a full
// buffer drops new events (counted) rather than blocking or reallocating.
//
// Threading contract: recording is safe from any number of threads
// concurrently (each writes only its own buffer).  enable() / disable() /
// reset() / collect() are *control-plane* calls — they must run while no
// other thread is recording (before comm::run starts the rank threads or
// after it joins them; thread create/join gives the happens-before edge).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace v6d::trace {

enum class Kind : std::uint8_t { kSpan = 0, kInstant = 1, kCounter = 2 };

/// One recorded event.  `name` is truncated to fit; timestamps are
/// nanoseconds since the enable() epoch (steady clock).
struct Event {
  char name[40];
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;  // == t0_ns for instants/counters
  double value;         // counters only
  std::int32_t rank;    // -1 when the thread never called set_rank()
  std::int32_t tid;     // registration order, unique per thread
  Kind kind;
};

namespace detail {
extern std::atomic<bool> g_enabled;
constexpr std::uint64_t kOff = ~std::uint64_t{0};
std::uint64_t now_ns_impl();
void record(Kind kind, const char* name, std::uint64_t t0, std::uint64_t t1,
            double value);
}  // namespace detail

/// True when tracing is active.  Relaxed load; the only cost paid when off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds since the enable() epoch (steady clock).
inline std::uint64_t now_ns() { return detail::now_ns_impl(); }

/// Start tracing.  Sets the timestamp epoch to "now" and (re)sizes each
/// idle per-thread buffer to `events_per_thread` slots.  Control-plane.
void enable(std::size_t events_per_thread = std::size_t{1} << 16);

/// Stop tracing.  Already-recorded events stay available to collect().
void disable();

/// Drop all recorded events and clear drop counters.  Control-plane.
void reset();

/// Tag subsequent events from this thread with a rank id (mirrors
/// log::set_rank; -1 = untagged).
void set_rank(int rank);

/// Record a completed span [t0, t1] (values from now_ns()).
inline void emit_span(const char* name, std::uint64_t t0, std::uint64_t t1) {
  if (enabled()) detail::record(Kind::kSpan, name, t0, t1, 0.0);
}

/// Record a zero-duration marker at "now".
inline void instant(const char* name) {
  if (enabled()) {
    const std::uint64_t t = now_ns();
    detail::record(Kind::kInstant, name, t, t, 0.0);
  }
}

/// Record a counter sample (rendered as a track in Perfetto).
inline void counter(const char* name, double value) {
  if (enabled()) {
    const std::uint64_t t = now_ns();
    detail::record(Kind::kCounter, name, t, t, value);
  }
}

/// RAII span: records [construction, destruction] under `name`.  When
/// tracing is off the constructor is one relaxed load.  `name` must outlive
/// the span (string literals; ScopedTimer keeps its bucket string alive).
class Span {
 public:
  explicit Span(const char* name)
      : name_(name), t0_(enabled() ? now_ns() : detail::kOff) {}
  ~Span() {
    if (t0_ != detail::kOff) detail::record(Kind::kSpan, name_, t0_, now_ns(), 0.0);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t t0_;
};

struct Stats {
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::size_t threads = 0;
};

/// Snapshot of recording volume across all registered threads.
Stats stats();

/// Copy out every recorded event (all threads, unsorted).  Control-plane.
std::vector<Event> collect();

/// Serialize events as Chrome trace_event JSON ({"traceEvents": [...]}):
/// B/E pairs for spans, "i" instants, "C" counters; pid = rank, tid =
/// per-thread registration id, ts in microseconds.  Events are sorted so
/// file order is monotonic in ts with nesting-consistent tie-breaks.
/// Returns false (with `error` set) on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<Event>& events,
                        std::string* error = nullptr);

}  // namespace v6d::trace
