#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

namespace v6d::trace {

namespace {

// Single-writer ring (drop-new, not wrap): the owning thread is the only
// writer of `events` and the only one to advance `count`; collect()/stats()
// read `count` with acquire to pair with the writer's release store, which
// publishes the slot contents written before it.
struct ThreadBuffer {
  std::vector<Event> events;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::int32_t tid = 0;
};

std::mutex g_registry_mutex;
std::size_t g_capacity = std::size_t{1} << 16;
std::atomic<std::uint64_t> g_epoch_ns{0};
thread_local ThreadBuffer* t_buf = nullptr;
thread_local std::int32_t t_rank = -1;

std::vector<std::unique_ptr<ThreadBuffer>>& registry() {
  // Buffers outlive their owning threads (rank threads join before the
  // driver collects), so the registry owns them for the process lifetime.
  static std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  return buffers;
}

ThreadBuffer* register_thread() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  auto buf = std::make_unique<ThreadBuffer>();
  buf->tid = static_cast<std::int32_t>(registry().size());
  buf->events.resize(g_capacity);
  t_buf = buf.get();
  registry().push_back(std::move(buf));
  return t_buf;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof hex, "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns_impl() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
  const std::uint64_t epoch = g_epoch_ns.load(std::memory_order_relaxed);
  return ns > epoch ? ns - epoch : 0;
}

void record(Kind kind, const char* name, std::uint64_t t0, std::uint64_t t1,
            double value) {
  ThreadBuffer* buf = t_buf;
  if (buf == nullptr) buf = register_thread();
  const std::size_t n = buf->count.load(std::memory_order_relaxed);
  if (n >= buf->events.size()) {
    buf->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = buf->events[n];
  std::strncpy(e.name, name, sizeof e.name - 1);
  e.name[sizeof e.name - 1] = '\0';
  e.t0_ns = t0;
  e.t1_ns = t1 < t0 ? t0 : t1;
  e.value = value;
  e.rank = t_rank;
  e.tid = buf->tid;
  e.kind = kind;
  buf->count.store(n + 1, std::memory_order_release);
}

}  // namespace detail

void enable(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  if (events_per_thread == 0) events_per_thread = 1;
  g_capacity = events_per_thread;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  g_epoch_ns.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now).count()),
      std::memory_order_relaxed);
  for (auto& buf : registry()) {
    if (buf->count.load(std::memory_order_relaxed) == 0)
      buf->events.resize(g_capacity);
  }
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void disable() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void reset() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (auto& buf : registry()) {
    buf->count.store(0, std::memory_order_relaxed);
    buf->dropped.store(0, std::memory_order_relaxed);
    buf->events.resize(g_capacity);
  }
}

void set_rank(int rank) { t_rank = rank; }

Stats stats() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  Stats s;
  s.threads = registry().size();
  for (const auto& buf : registry()) {
    s.recorded += buf->count.load(std::memory_order_acquire);
    s.dropped += buf->dropped.load(std::memory_order_relaxed);
  }
  return s;
}

std::vector<Event> collect() {
  std::lock_guard<std::mutex> lock(g_registry_mutex);
  std::vector<Event> out;
  for (const auto& buf : registry()) {
    const std::size_t n = buf->count.load(std::memory_order_acquire);
    out.insert(out.end(), buf->events.begin(),
               buf->events.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<Event>& events, std::string* error) {
  // Flatten spans into B/E records, then sort so the file is monotonic in
  // ts and, within a tie, keeps each thread's stack balanced.  Events are
  // recorded at span *end* (destructor order), so within one thread a child
  // span has a smaller record index than its parent.  Tie-break rules:
  //   - E before B before i/C at the same ts (close-then-open never
  //     produces a negative stack);
  //   - B ties: longer span (parent) opens first, then larger index first
  //     (the parent was recorded later);
  //   - E ties: later-started span (child) closes first, then smaller
  //     index first (the child was recorded earlier).
  struct Rec {
    std::uint64_t ts;
    int phase;  // 0 = E, 1 = B, 2 = i/C
    std::uint64_t other;
    std::size_t index;
    const Event* ev;
  };
  std::vector<Rec> recs;
  recs.reserve(events.size() * 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.kind == Kind::kSpan) {
      // Clamp zero-length spans to 1 ns so B and E stay ordered.
      const std::uint64_t t1 = std::max(e.t1_ns, e.t0_ns + 1);
      recs.push_back({e.t0_ns, 1, t1, i, &e});
      recs.push_back({t1, 0, e.t0_ns, i, &e});
    } else {
      recs.push_back({e.t0_ns, 2, 0, i, &e});
    }
  }
  std::sort(recs.begin(), recs.end(), [](const Rec& a, const Rec& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.phase != b.phase) return a.phase < b.phase;
    if (a.phase == 1) {  // B: parent (longer, later-recorded) first
      if (a.other != b.other) return a.other > b.other;
      return a.index > b.index;
    }
    if (a.phase == 0) {  // E: child (later-started, earlier-recorded) first
      if (a.other != b.other) return a.other > b.other;
      return a.index < b.index;
    }
    return a.index < b.index;
  });

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "trace: cannot open " + path;
    return false;
  }
  std::uint64_t dropped = stats().dropped;
  std::string line;
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":\"%llu\"},\n\"traceEvents\":[\n",
               static_cast<unsigned long long>(dropped));
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Event& e = *recs[i].ev;
    line.clear();
    line += "{\"name\":\"";
    json_escape_into(line, e.name);
    line += "\",\"ph\":\"";
    char num[96];
    const double ts_us = static_cast<double>(recs[i].ts) / 1000.0;
    switch (recs[i].phase) {
      case 1:
        line += 'B';
        break;
      case 0:
        line += 'E';
        break;
      default:
        line += (e.kind == Kind::kCounter) ? 'C' : 'i';
        break;
    }
    std::snprintf(num, sizeof num, "\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f",
                  e.rank, e.tid, ts_us);
    line += num;
    if (recs[i].phase == 2) {
      if (e.kind == Kind::kCounter) {
        std::snprintf(num, sizeof num, ",\"args\":{\"value\":%.17g}", e.value);
        line += num;
      } else {
        line += ",\"s\":\"t\"";
      }
    }
    line += '}';
    if (i + 1 < recs.size()) line += ',';
    line += '\n';
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      if (error != nullptr) *error = "trace: short write to " + path;
      return false;
    }
  }
  std::fprintf(f, "]}\n");
  if (std::fclose(f) != 0) {
    if (error != nullptr) *error = "trace: close failed for " + path;
    return false;
  }
  return true;
}

}  // namespace v6d::trace
