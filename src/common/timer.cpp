#include "common/timer.hpp"

#include <algorithm>

namespace v6d {

const std::vector<double> TimerRegistry::empty_{};

void TimerRegistry::add(const std::string& bucket, double seconds) {
  totals_[bucket] += seconds;
}

void TimerRegistry::add_sample(const std::string& bucket, double seconds) {
  totals_[bucket] += seconds;
  samples_[bucket].push_back(seconds);
}

double TimerRegistry::total(const std::string& bucket) const {
  auto it = totals_.find(bucket);
  return it == totals_.end() ? 0.0 : it->second;
}

double TimerRegistry::median_sample(const std::string& bucket) const {
  auto it = samples_.find(bucket);
  if (it == samples_.end() || it->second.empty()) return 0.0;
  std::vector<double> v = it->second;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

const std::vector<double>& TimerRegistry::samples(
    const std::string& bucket) const {
  auto it = samples_.find(bucket);
  return it == samples_.end() ? empty_ : it->second;
}

std::vector<std::string> TimerRegistry::buckets() const {
  std::vector<std::string> names;
  names.reserve(totals_.size());
  for (const auto& [name, _] : totals_) names.push_back(name);
  return names;
}

void TimerRegistry::clear() {
  totals_.clear();
  samples_.clear();
}

void TimerRegistry::merge(const TimerRegistry& other,
                          const std::string& prefix) {
  for (const auto& [name, seconds] : other.totals_)
    totals_[prefix + name] += seconds;
  for (const auto& [name, samples] : other.samples_) {
    auto& dst = samples_[prefix + name];
    dst.insert(dst.end(), samples.begin(), samples.end());
  }
}

}  // namespace v6d
