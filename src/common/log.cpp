#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace v6d::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};
thread_local int t_rank = -1;
std::mutex g_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_mutex

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
  }
  return "?";
}

double seconds_since_start() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}
}  // namespace

void set_level(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }
void set_rank(int rank) { t_rank = rank; }

void set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void write(Level level, const std::string& message) {
  char prefix[64];
  if (t_rank >= 0) {
    std::snprintf(prefix, sizeof prefix, "[%.3f][%s][rank %d] ",
                  seconds_since_start(), level_name(level), t_rank);
  } else {
    std::snprintf(prefix, sizeof prefix, "[%.3f][%s] ",
                  seconds_since_start(), level_name(level));
  }
  std::string line = prefix;
  line += message;

  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(line);
    return;
  }
  line += '\n';
  // One fwrite per line: stderr is unbuffered, but separate fprintf calls
  // for prefix and body could still interleave across processes sharing
  // the stream.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace v6d::log
