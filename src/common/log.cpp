#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace v6d::log {

namespace {
std::atomic<Level> g_level{Level::kInfo};
thread_local int t_rank = -1;
std::mutex g_mutex;

const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_level(Level level) { g_level.store(level); }
Level level() { return g_level.load(); }
void set_rank(int rank) { t_rank = rank; }

void write(Level level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (t_rank >= 0) {
    std::fprintf(stderr, "[%s][rank %d] %s\n", level_name(level), t_rank,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  }
}

}  // namespace v6d::log
