#include "fft/fft1d.hpp"

#include <cassert>
#include <cmath>

namespace v6d::fft {

namespace {

// Factor n into radices from {2, 3, 5, 7}; returns empty if impossible.
std::vector<int> factorize(int n) {
  std::vector<int> radices;
  for (int r : {7, 5, 3, 2}) {
    while (n % r == 0) {
      radices.push_back(r);
      n /= r;
    }
  }
  if (n != 1) return {};
  return radices;
}

int next_pow2(int n) {
  // Widen before doubling: for n just above 2^30 the signed `p *= 2`
  // would overflow (undefined behaviour) one step before the loop exits.
  long long p = 1;
  while (p < n) p *= 2;
  assert(p <= (1LL << 30) && "transform length out of supported range");
  return static_cast<int>(p);
}

}  // namespace

struct FftPlan::Impl {
  std::vector<int> radices;        // empty => Bluestein
  std::vector<cplx> twiddle;       // e^{-2 pi i j / n}, j = 0..n-1
  // Bluestein machinery (only when radices is empty).
  std::unique_ptr<FftPlan> conv_plan;          // power-of-two length m
  std::vector<cplx> chirp;                     // b_j = e^{+pi i j^2 / n}
  std::vector<cplx> chirp_fft;                 // FFT of zero-padded chirp

  void build(int n);
  void run(cplx* x, int n, bool inverse) const;
  void run_mixed_radix(cplx* x, int n, bool inverse) const;
  void run_bluestein(cplx* x, int n, bool inverse) const;
};

void FftPlan::Impl::build(int n) {
  radices = factorize(n);
  twiddle.resize(n);
  for (int j = 0; j < n; ++j) {
    const double ang = -2.0 * M_PI * j / n;
    twiddle[j] = cplx(std::cos(ang), std::sin(ang));
  }
  if (radices.empty() && n > 1) {
    // Bluestein: x_k convolved with chirp; convolution length >= 2n-1,
    // rounded to a power of two so the inner plan is mixed-radix.
    const int m = next_pow2(2 * n - 1);
    conv_plan = std::make_unique<FftPlan>(m);
    chirp.resize(n);
    for (int j = 0; j < n; ++j) {
      // j^2 mod 2n keeps the argument small for large j.
      const long long j2 = (static_cast<long long>(j) * j) % (2LL * n);
      const double ang = M_PI * static_cast<double>(j2) / n;
      chirp[j] = cplx(std::cos(ang), std::sin(ang));  // e^{+i pi j^2 / n}
    }
    std::vector<cplx> b(m, cplx(0.0, 0.0));
    b[0] = chirp[0];
    for (int j = 1; j < n; ++j) b[j] = b[m - j] = chirp[j];
    conv_plan->forward(b.data());
    chirp_fft = std::move(b);
  }
}

void FftPlan::Impl::run_mixed_radix(cplx* x, int n, bool inverse) const {
  // Recursive decimation-in-time over the precomputed radix sequence.
  // At each level of size len = r * m:
  //   X[k + p*m] = sum_q W_len^{q(k + p*m)} Y_q[k]
  //              = sum_q (W_len^{qk} Y_q[k]) W_r^{qp}.
  std::vector<cplx> scratch(n);
  struct Rec {
    const std::vector<cplx>& tw;  // top-level twiddles, size N
    int N;
    bool inverse;

    cplx w(long long num, int den) const {
      // e^{-2 pi i num/den} via the top-level table (den divides N).
      long long idx = (num % den) * (N / den);
      idx %= N;
      const cplx t = tw[static_cast<std::size_t>(idx)];
      return inverse ? std::conj(t) : t;
    }

    void fft(int len, int stride, const cplx* in, cplx* out,
             const int* radix, cplx* tmp) const {
      if (len == 1) {
        out[0] = in[0];
        return;
      }
      const int r = *radix;
      const int m = len / r;
      for (int q = 0; q < r; ++q)
        fft(m, stride * r, in + static_cast<std::ptrdiff_t>(q) * stride,
            out + static_cast<std::ptrdiff_t>(q) * m, radix + 1, tmp);
      // Combine r sub-transforms; small DFT of size r per output k.
      for (int k = 0; k < m; ++k) {
        cplx t[8];  // radices <= 7
        for (int q = 0; q < r; ++q)
          t[q] = out[static_cast<std::ptrdiff_t>(q) * m + k] *
                 w(static_cast<long long>(q) * k, len);
        for (int p = 0; p < r; ++p) {
          cplx acc(0.0, 0.0);
          for (int q = 0; q < r; ++q)
            acc += t[q] * w(static_cast<long long>(q) * p, r);
          tmp[static_cast<std::ptrdiff_t>(p) * m + k] = acc;
        }
      }
      for (int i = 0; i < len; ++i) out[i] = tmp[i];
    }
  };
  Rec rec{twiddle, n, inverse};
  std::vector<cplx> out(n), tmp(n);
  rec.fft(n, 1, x, out.data(), radices.data(), tmp.data());
  for (int i = 0; i < n; ++i) x[i] = out[i];
}

void FftPlan::Impl::run_bluestein(cplx* x, int n, bool inverse) const {
  // X_k = conj(c_k) * sum_j (x_j conj(c_j)) c_{k-j}, c_j = e^{+i pi j^2/n}
  // (forward). The sum is a circular convolution evaluated by FFT.
  const int m = conv_plan->size();
  std::vector<cplx> a(m, cplx(0.0, 0.0));
  for (int j = 0; j < n; ++j) {
    const cplx c = inverse ? chirp[j] : std::conj(chirp[j]);
    a[j] = x[j] * c;
  }
  conv_plan->forward(a.data());
  if (inverse) {
    // Convolution kernel for the inverse transform is conj(chirp): its FFT
    // equals conj(FFT(chirp)) reversed; easier to just recompute once.
    std::vector<cplx> b(m, cplx(0.0, 0.0));
    b[0] = std::conj(chirp[0]);
    for (int j = 1; j < n; ++j) b[j] = b[m - j] = std::conj(chirp[j]);
    conv_plan->forward(b.data());
    for (int i = 0; i < m; ++i) a[i] *= b[i];
  } else {
    for (int i = 0; i < m; ++i) a[i] *= chirp_fft[i];
  }
  conv_plan->inverse_normalized(a.data());
  for (int k = 0; k < n; ++k) {
    const cplx c = inverse ? chirp[k] : std::conj(chirp[k]);
    x[k] = a[k] * c;
  }
}

void FftPlan::Impl::run(cplx* x, int n, bool inverse) const {
  if (n == 1) return;
  if (!radices.empty())
    run_mixed_radix(x, n, inverse);
  else
    run_bluestein(x, n, inverse);
}

FftPlan::FftPlan(int n) : n_(n), impl_(std::make_unique<Impl>()) {
  assert(n >= 1);
  impl_->build(n);
}

FftPlan::~FftPlan() = default;
FftPlan::FftPlan(FftPlan&&) noexcept = default;
FftPlan& FftPlan::operator=(FftPlan&&) noexcept = default;

void FftPlan::forward(cplx* x) const { impl_->run(x, n_, false); }
void FftPlan::inverse(cplx* x) const { impl_->run(x, n_, true); }
void FftPlan::inverse_normalized(cplx* x) const {
  impl_->run(x, n_, true);
  const double scale = 1.0 / n_;
  for (int i = 0; i < n_; ++i) x[i] *= scale;
}

void dft_forward(std::vector<cplx>& x) {
  FftPlan plan(static_cast<int>(x.size()));
  plan.forward(x.data());
}

void dft_inverse_normalized(std::vector<cplx>& x) {
  FftPlan plan(static_cast<int>(x.size()));
  plan.inverse_normalized(x.data());
}

std::vector<cplx> dft_reference(const std::vector<cplx>& x, bool inverse) {
  const int n = static_cast<int>(x.size());
  std::vector<cplx> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (int k = 0; k < n; ++k) {
    cplx acc(0.0, 0.0);
    for (int j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI * j * k / n;
      acc += x[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace v6d::fft
