#include "fft/rfft.hpp"

namespace v6d::fft {

void RealFft3D::forward(const double* real, cplx* spec) const {
  const std::size_t n = fft_.size();
  for (std::size_t i = 0; i < n; ++i) spec[i] = cplx(real[i], 0.0);
  fft_.forward(spec);
}

void RealFft3D::inverse(const cplx* spec, double* real) const {
  const std::size_t n = fft_.size();
  std::vector<cplx> work(spec, spec + n);
  fft_.inverse_normalized(work.data());
  for (std::size_t i = 0; i < n; ++i) real[i] = work[i].real();
}

}  // namespace v6d::fft
