#include "fft/fft3d.hpp"

#include <vector>

namespace v6d::fft {

Fft3D::Fft3D(int nx, int ny, int nz)
    : nx_(nx), ny_(ny), nz_(nz), px_(nx), py_(ny), pz_(nz) {}

void Fft3D::transform_axis(cplx* data, int axis, bool inverse) const {
  const std::ptrdiff_t sy = nz_;
  const std::ptrdiff_t sx = static_cast<std::ptrdiff_t>(ny_) * nz_;
  const FftPlan& plan = axis == 0 ? px_ : axis == 1 ? py_ : pz_;
  const int n = plan.size();

  if (axis == 2) {
    // Contiguous lines.
    for (int i = 0; i < nx_; ++i)
      for (int j = 0; j < ny_; ++j) {
        cplx* line = data + i * sx + j * sy;
        if (inverse)
          plan.inverse(line);
        else
          plan.forward(line);
      }
    return;
  }

  std::vector<cplx> line(static_cast<std::size_t>(n));
  const std::ptrdiff_t stride = axis == 0 ? sx : sy;
  const int n_outer = axis == 0 ? ny_ : nx_;
  const int n_inner = nz_;
  for (int o = 0; o < n_outer; ++o)
    for (int k = 0; k < n_inner; ++k) {
      cplx* base = axis == 0 ? data + o * sy + k : data + o * sx + k;
      for (int m = 0; m < n; ++m) line[static_cast<std::size_t>(m)] = base[m * stride];
      if (inverse)
        plan.inverse(line.data());
      else
        plan.forward(line.data());
      for (int m = 0; m < n; ++m) base[m * stride] = line[static_cast<std::size_t>(m)];
    }
}

void Fft3D::forward(cplx* data) const {
  transform_axis(data, 2, false);
  transform_axis(data, 1, false);
  transform_axis(data, 0, false);
}

void Fft3D::inverse_normalized(cplx* data) const {
  transform_axis(data, 0, true);
  transform_axis(data, 1, true);
  transform_axis(data, 2, true);
  const double scale = 1.0 / static_cast<double>(size());
  const std::size_t total = size();
  for (std::size_t i = 0; i < total; ++i) data[i] *= scale;
}

}  // namespace v6d::fft
