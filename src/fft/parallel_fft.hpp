// Distributed 3-D complex FFT over the simulated MPI runtime.
//
// Slab decomposition: rank r owns x-planes [offset, offset + local_n).
// forward(): (1) 2-D FFT over each local (y, z) plane, (2) global
// transpose (alltoallv) to y-slabs, (3) 1-D FFT along x.  The spectrum is
// left in transposed (y-slab) layout; inverse_normalized() reverses the
// pipeline.  This is the communication pattern whose alltoall volume makes
// the paper's PM part the worst-scaling one (Tables 3-4); the fft_scaling
// bench measures it directly.  (The paper's SSL II library uses a 2-D
// pencil decomposition; a slab is the P-ranks special case of that layout
// and exhibits the same volume-per-rank scaling law.)
#pragma once

#include <vector>

#include "comm/communicator.hpp"
#include "fft/fft1d.hpp"

namespace v6d::fft {

class ParallelFft3D {
 public:
  /// Cubic n^3 transform across comm.size() ranks; n need not divide
  /// evenly (remainder planes go to low ranks).
  ParallelFft3D(comm::Communicator& comm, int n);

  int n() const { return n_; }
  int local_nx() const { return local_nx_; }     // x-planes owned (real layout)
  int x_offset() const { return x_offset_; }
  int local_ny() const { return local_ny_; }     // y-planes owned (spectrum)
  int y_offset() const { return y_offset_; }

  /// In-place forward transform of the local x-slab
  /// (local_nx * n * n, z contiguous).  On return `local` holds the
  /// transposed spectrum (local_ny * n * n: index [y_local][x][z]).
  void forward(std::vector<cplx>& local);
  /// Inverse of forward (including 1/n^3 normalization); restores x-slab
  /// layout.
  void inverse_normalized(std::vector<cplx>& local);

  /// Iterate over the local spectrum entries as (kx_bin, ky_bin, kz_bin,
  /// value&) — valid between forward() and inverse_normalized().
  template <class Fn>
  void for_each_mode(std::vector<cplx>& spectrum, Fn&& fn) const {
    for (int y = 0; y < local_ny_; ++y)
      for (int x = 0; x < n_; ++x)
        for (int z = 0; z < n_; ++z)
          fn(x, y_offset_ + y, z,
             spectrum[(static_cast<std::size_t>(y) * n_ + x) * n_ + z]);
  }

 private:
  void transpose_x_to_y(std::vector<cplx>& local);
  void transpose_y_to_x(std::vector<cplx>& local);

  comm::Communicator& comm_;
  int n_;
  int local_nx_, x_offset_;
  int local_ny_, y_offset_;
  FftPlan plan_;
};

}  // namespace v6d::fft
