// 1-D complex FFT: iterative mixed-radix Cooley-Tukey for lengths whose
// factors are {2, 3, 5, 7}, with a Bluestein (chirp-z) fallback for any
// other length.  Substrate for the PM Poisson solver; plays the role the
// Fujitsu SSL II library plays in the paper.
//
// Conventions: forward uses exp(-2*pi*i*jk/n), inverse uses exp(+2*pi*i*jk/n)
// and is unnormalized; inverse_normalized() divides by n so that
// inverse_normalized(forward(x)) == x.
#pragma once

#include <complex>
#include <memory>
#include <vector>

namespace v6d::fft {

using cplx = std::complex<double>;

class FftPlan {
 public:
  explicit FftPlan(int n);
  ~FftPlan();
  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;

  int size() const { return n_; }

  /// In-place transforms on a contiguous array of size() elements.
  /// Thread-safe: per-call scratch.
  void forward(cplx* x) const;
  void inverse(cplx* x) const;
  void inverse_normalized(cplx* x) const;

 private:
  struct Impl;
  int n_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience transforms.
void dft_forward(std::vector<cplx>& x);
void dft_inverse_normalized(std::vector<cplx>& x);

/// Reference O(n^2) DFT used by tests.
std::vector<cplx> dft_reference(const std::vector<cplx>& x, bool inverse);

}  // namespace v6d::fft
