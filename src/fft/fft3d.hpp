// Serial 3-D complex FFT over row-major (z-contiguous) arrays.
#pragma once

#include "fft/fft1d.hpp"

namespace v6d::fft {

class Fft3D {
 public:
  Fft3D(int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t size() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }

  /// In-place transforms; data is nx*ny*nz row-major, z contiguous.
  void forward(cplx* data) const;
  void inverse_normalized(cplx* data) const;

 private:
  void transform_axis(cplx* data, int axis, bool inverse) const;

  int nx_, ny_, nz_;
  FftPlan px_, py_, pz_;
};

}  // namespace v6d::fft
