#include "fft/parallel_fft.hpp"

#include <cstring>

namespace v6d::fft {

namespace {

int share(int total, int parts, int coord) {
  const int base = total / parts;
  const int extra = total % parts;
  return base + (coord < extra ? 1 : 0);
}

int share_offset(int total, int parts, int coord) {
  const int base = total / parts;
  const int extra = total % parts;
  return coord * base + (coord < extra ? coord : extra);
}

}  // namespace

ParallelFft3D::ParallelFft3D(comm::Communicator& comm, int n)
    : comm_(comm), n_(n), plan_(n) {
  const int p = comm.size();
  const int r = comm.rank();
  local_nx_ = share(n, p, r);
  x_offset_ = share_offset(n, p, r);
  local_ny_ = share(n, p, r);
  y_offset_ = share_offset(n, p, r);
}

void ParallelFft3D::transpose_x_to_y(std::vector<cplx>& local) {
  // From [x_loc][y][z] to [y_loc][x][z]:
  // send to rank d the block {my x rows} x {d's y rows} x {all z}.
  const int p = comm_.size();
  std::vector<std::vector<std::uint8_t>> send(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const int ny_d = share(n_, p, d);
    const int oy_d = share_offset(n_, p, d);
    auto& buf = send[static_cast<std::size_t>(d)];
    buf.resize(static_cast<std::size_t>(local_nx_) * ny_d * n_ *
               sizeof(cplx));
    std::size_t o = 0;
    for (int x = 0; x < local_nx_; ++x)
      for (int y = 0; y < ny_d; ++y) {
        const cplx* src =
            local.data() +
            (static_cast<std::size_t>(x) * n_ + (oy_d + y)) * n_;
        std::memcpy(buf.data() + o, src, n_ * sizeof(cplx));
        o += static_cast<std::size_t>(n_) * sizeof(cplx);
      }
  }
  auto recv = comm_.alltoallv(send);
  std::vector<cplx> out(static_cast<std::size_t>(local_ny_) * n_ * n_);
  for (int r = 0; r < p; ++r) {
    const int nx_r = share(n_, p, r);
    const int ox_r = share_offset(n_, p, r);
    const auto& buf = recv[static_cast<std::size_t>(r)];
    std::size_t o = 0;
    for (int x = 0; x < nx_r; ++x)
      for (int y = 0; y < local_ny_; ++y) {
        cplx* dst = out.data() +
                    (static_cast<std::size_t>(y) * n_ + (ox_r + x)) * n_;
        std::memcpy(dst, buf.data() + o, n_ * sizeof(cplx));
        o += static_cast<std::size_t>(n_) * sizeof(cplx);
      }
  }
  local = std::move(out);
}

void ParallelFft3D::transpose_y_to_x(std::vector<cplx>& local) {
  // Inverse of transpose_x_to_y: from [y_loc][x][z] to [x_loc][y][z].
  const int p = comm_.size();
  std::vector<std::vector<std::uint8_t>> send(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const int nx_d = share(n_, p, d);
    const int ox_d = share_offset(n_, p, d);
    auto& buf = send[static_cast<std::size_t>(d)];
    buf.resize(static_cast<std::size_t>(nx_d) * local_ny_ * n_ *
               sizeof(cplx));
    std::size_t o = 0;
    for (int x = 0; x < nx_d; ++x)
      for (int y = 0; y < local_ny_; ++y) {
        const cplx* src =
            local.data() +
            (static_cast<std::size_t>(y) * n_ + (ox_d + x)) * n_;
        std::memcpy(buf.data() + o, src, n_ * sizeof(cplx));
        o += static_cast<std::size_t>(n_) * sizeof(cplx);
      }
  }
  auto recv = comm_.alltoallv(send);
  std::vector<cplx> out(static_cast<std::size_t>(local_nx_) * n_ * n_);
  for (int r = 0; r < p; ++r) {
    const int ny_r = share(n_, p, r);
    const int oy_r = share_offset(n_, p, r);
    const auto& buf = recv[static_cast<std::size_t>(r)];
    std::size_t o = 0;
    for (int x = 0; x < local_nx_; ++x)
      for (int y = 0; y < ny_r; ++y) {
        cplx* dst = out.data() +
                    (static_cast<std::size_t>(x) * n_ + (oy_r + y)) * n_;
        std::memcpy(dst, buf.data() + o, n_ * sizeof(cplx));
        o += static_cast<std::size_t>(n_) * sizeof(cplx);
      }
  }
  local = std::move(out);
}

void ParallelFft3D::forward(std::vector<cplx>& local) {
  std::vector<cplx> line(static_cast<std::size_t>(n_));
  // (1) per-plane 2-D FFT: z lines (contiguous) then y lines (stride n).
  for (int x = 0; x < local_nx_; ++x) {
    cplx* plane = local.data() + static_cast<std::size_t>(x) * n_ * n_;
    for (int y = 0; y < n_; ++y)
      plan_.forward(plane + static_cast<std::size_t>(y) * n_);
    for (int z = 0; z < n_; ++z) {
      for (int y = 0; y < n_; ++y)
        line[static_cast<std::size_t>(y)] =
            plane[static_cast<std::size_t>(y) * n_ + z];
      plan_.forward(line.data());
      for (int y = 0; y < n_; ++y)
        plane[static_cast<std::size_t>(y) * n_ + z] =
            line[static_cast<std::size_t>(y)];
    }
  }
  // (2) global transpose to y-slabs.
  transpose_x_to_y(local);
  // (3) x lines (stride n in the transposed layout).
  for (int y = 0; y < local_ny_; ++y) {
    cplx* plane = local.data() + static_cast<std::size_t>(y) * n_ * n_;
    for (int z = 0; z < n_; ++z) {
      for (int x = 0; x < n_; ++x)
        line[static_cast<std::size_t>(x)] =
            plane[static_cast<std::size_t>(x) * n_ + z];
      plan_.forward(line.data());
      for (int x = 0; x < n_; ++x)
        plane[static_cast<std::size_t>(x) * n_ + z] =
            line[static_cast<std::size_t>(x)];
    }
  }
}

void ParallelFft3D::inverse_normalized(std::vector<cplx>& local) {
  std::vector<cplx> line(static_cast<std::size_t>(n_));
  for (int y = 0; y < local_ny_; ++y) {
    cplx* plane = local.data() + static_cast<std::size_t>(y) * n_ * n_;
    for (int z = 0; z < n_; ++z) {
      for (int x = 0; x < n_; ++x)
        line[static_cast<std::size_t>(x)] =
            plane[static_cast<std::size_t>(x) * n_ + z];
      plan_.inverse(line.data());
      for (int x = 0; x < n_; ++x)
        plane[static_cast<std::size_t>(x) * n_ + z] =
            line[static_cast<std::size_t>(x)];
    }
  }
  transpose_y_to_x(local);
  for (int x = 0; x < local_nx_; ++x) {
    cplx* plane = local.data() + static_cast<std::size_t>(x) * n_ * n_;
    // Undo the per-plane 2-D transform: y lines (strided), then z lines.
    for (int z = 0; z < n_; ++z) {
      for (int y = 0; y < n_; ++y)
        line[static_cast<std::size_t>(y)] =
            plane[static_cast<std::size_t>(y) * n_ + z];
      plan_.inverse(line.data());
      for (int y = 0; y < n_; ++y)
        plane[static_cast<std::size_t>(y) * n_ + z] =
            line[static_cast<std::size_t>(y)];
    }
    for (int y = 0; y < n_; ++y)
      plan_.inverse(plane + static_cast<std::size_t>(y) * n_);
  }
  const double scale =
      1.0 / (static_cast<double>(n_) * n_ * n_);
  for (auto& v : local) v *= scale;
}

}  // namespace v6d::fft
