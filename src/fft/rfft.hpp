// Real-field convenience wrappers around the complex 3-D FFT.
//
// PM meshes are real; these helpers embed a real field into a complex array,
// transform, and extract.  The spectrum is kept full-size (no Hermitian
// packing) — PM grids in this reproduction are small and the full spectrum
// keeps the Green-function multiply trivial.
#pragma once

#include <vector>

#include "fft/fft3d.hpp"

namespace v6d::fft {

class RealFft3D {
 public:
  RealFft3D(int nx, int ny, int nz) : fft_(nx, ny, nz) {}

  const Fft3D& complex_fft() const { return fft_; }

  /// real (nx*ny*nz, row-major) -> full complex spectrum (same shape).
  void forward(const double* real, cplx* spec) const;
  /// spectrum -> real field (takes the real part; imaginary residue of a
  /// Hermitian spectrum is FP noise).
  void inverse(const cplx* spec, double* real) const;

 private:
  Fft3D fft_;
};

}  // namespace v6d::fft
