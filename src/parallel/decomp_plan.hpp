// Rank-decomposition planning for distributed runs.
//
// A plan maps `ranks` onto a 3-D Cartesian topology subject to the
// constraints the distributed solver needs:
//   * every decomposed axis divides the Vlasov spatial extent evenly (the
//     local bricks of the Vlasov grid and the PM mesh must cover the same
//     physical region, so remainder cells are rejected rather than
//     silently misaligned);
//   * the local Vlasov extent of a decomposed axis is at least the sweep
//     ghost width (kStencilGhost), and the local PM extent at least the
//     mesh ghost width — smaller bricks would corrupt the halo exchange
//     (see mesh/halo.cpp);
//   * the PM mesh divides evenly along decomposed axes as well.
//
// choose_decomp() enumerates all factorizations of `ranks` and picks the
// feasible one with the smallest halo surface; parse_decomp() accepts an
// explicit "DXxDYxDZ" spec from the `decomp=` config key.
#pragma once

#include <array>
#include <string>

namespace v6d::parallel {

/// Constraints of one distributed run.
struct DecompConstraints {
  std::array<int, 3> vlasov{0, 0, 0};  // global Vlasov spatial extents
                                       // ({0,0,0} = no phase space)
  int pm_grid = 0;                     // PM mesh per side
  int vlasov_ghost = 3;                // spatial ghost width of f
  int pm_ghost = 2;                    // ghost width of the PM grids
};

/// Parse "DXxDYxDZ" (e.g. "2x2x1").  "" and "auto" return {0, 0, 0},
/// meaning "let choose_decomp pick".  Throws std::invalid_argument on
/// malformed specs.
std::array<int, 3> parse_decomp(const std::string& spec);

/// Throws std::invalid_argument unless `dims` multiplies to `ranks` and
/// satisfies every constraint above.
void validate_decomp(const std::array<int, 3>& dims, int ranks,
                     const DecompConstraints& c);

/// The feasible factorization of `ranks` with the smallest local halo
/// surface (most-cubic bricks).  Throws std::invalid_argument when no
/// factorization is feasible for the given grids.
std::array<int, 3> choose_decomp(int ranks, const DecompConstraints& c);

/// parse + validate, or choose when the spec is empty/"auto".
std::array<int, 3> resolve_decomp(const std::string& spec, int ranks,
                                  const DecompConstraints& c);

}  // namespace v6d::parallel
