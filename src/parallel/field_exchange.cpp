#include "parallel/field_exchange.hpp"

#include <algorithm>
#include <cstring>

#include "common/timer.hpp"
#include "common/trace.hpp"

namespace v6d::parallel {

namespace {

/// Brick geometry of an arbitrary rank, reconstructed from the cart
/// topology (every rank can compute every other rank's extents).
struct BrickOf {
  int lo[3], n[3];  // global offset and extent per axis
};

BrickOf brick_of(int rank, const mesh::BrickDecomposition& dec,
                 comm::CartTopology& cart) {
  const auto coords = cart.coords_of(rank);
  const auto global = dec.global();
  const auto dims = dec.dims();
  BrickOf b{};
  for (int a = 0; a < 3; ++a) {
    const auto i = static_cast<std::size_t>(a);
    b.lo[a] = mesh::BrickDecomposition::share_offset(global[i], dims[i],
                                                     coords[i]);
    b.n[a] = mesh::BrickDecomposition::share(global[i], dims[i], coords[i]);
  }
  return b;
}

/// Slab rows of the parallel FFT owned by `rank` (same splitting rule as
/// ParallelFft3D).
void slab_of(int rank, int n, int nranks, int& offset, int& count) {
  count = mesh::BrickDecomposition::share(n, nranks, rank);
  offset = mesh::BrickDecomposition::share_offset(n, nranks, rank);
}

}  // namespace

std::vector<fft::cplx> brick_to_slab(const mesh::Grid3D<double>& brick,
                                     const mesh::BrickDecomposition& dec,
                                     const fft::ParallelFft3D& pfft,
                                     comm::CartTopology& cart) {
  auto& comm = cart.comm();
  const int p = comm.size();
  const int n = pfft.n();
  const BrickOf mine = brick_of(comm.rank(), dec, cart);

  // Pack, for every destination rank, my brick rows whose global x index
  // falls in that rank's slab: x ascending, then y, then z (contiguous).
  std::vector<std::vector<std::uint8_t>> send(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    int so = 0, sn = 0;
    slab_of(d, n, p, so, sn);
    const int x0 = std::max(mine.lo[0], so);
    const int x1 = std::min(mine.lo[0] + mine.n[0], so + sn);
    if (x0 >= x1) continue;
    auto& buf = send[static_cast<std::size_t>(d)];
    buf.resize(static_cast<std::size_t>(x1 - x0) * mine.n[1] * mine.n[2] *
               sizeof(double));
    std::size_t o = 0;
    for (int gx = x0; gx < x1; ++gx)
      for (int ly = 0; ly < mine.n[1]; ++ly)
        for (int lz = 0; lz < mine.n[2]; ++lz) {
          const double v = brick.at(gx - mine.lo[0], ly, lz);
          std::memcpy(buf.data() + o, &v, sizeof(double));
          o += sizeof(double);
        }
  }
  const auto recv = comm.alltoallv(send);

  // Unpack every source rank's footprint into my slab.
  int my_so = 0, my_sn = 0;
  slab_of(comm.rank(), n, p, my_so, my_sn);
  std::vector<fft::cplx> slab(static_cast<std::size_t>(my_sn) * n * n,
                              fft::cplx(0.0, 0.0));
  for (int r = 0; r < p; ++r) {
    const auto& buf = recv[static_cast<std::size_t>(r)];
    if (buf.empty()) continue;
    const BrickOf src = brick_of(r, dec, cart);
    const int x0 = std::max(src.lo[0], my_so);
    const int x1 = std::min(src.lo[0] + src.n[0], my_so + my_sn);
    std::size_t o = 0;
    for (int gx = x0; gx < x1; ++gx)
      for (int ly = 0; ly < src.n[1]; ++ly)
        for (int lz = 0; lz < src.n[2]; ++lz) {
          double v = 0.0;
          std::memcpy(&v, buf.data() + o, sizeof(double));
          o += sizeof(double);
          slab[(static_cast<std::size_t>(gx - my_so) * n +
                (src.lo[1] + ly)) *
                   n +
               (src.lo[2] + lz)] = fft::cplx(v, 0.0);
        }
  }
  return slab;
}

void slab_to_brick(const std::vector<fft::cplx>& slab,
                   const fft::ParallelFft3D& pfft,
                   const mesh::BrickDecomposition& dec,
                   comm::CartTopology& cart, mesh::Grid3D<double>& brick) {
  auto& comm = cart.comm();
  const int p = comm.size();
  const int n = pfft.n();
  int my_so = 0, my_sn = 0;
  slab_of(comm.rank(), n, p, my_so, my_sn);

  // Pack, for every destination brick, the slab rows it covers restricted
  // to its (y, z) footprint.
  std::vector<std::vector<std::uint8_t>> send(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const BrickOf dst = brick_of(d, dec, cart);
    const int x0 = std::max(dst.lo[0], my_so);
    const int x1 = std::min(dst.lo[0] + dst.n[0], my_so + my_sn);
    if (x0 >= x1) continue;
    auto& buf = send[static_cast<std::size_t>(d)];
    buf.resize(static_cast<std::size_t>(x1 - x0) * dst.n[1] * dst.n[2] *
               sizeof(double));
    std::size_t o = 0;
    for (int gx = x0; gx < x1; ++gx)
      for (int ly = 0; ly < dst.n[1]; ++ly)
        for (int lz = 0; lz < dst.n[2]; ++lz) {
          const double v =
              slab[(static_cast<std::size_t>(gx - my_so) * n +
                    (dst.lo[1] + ly)) *
                       n +
                   (dst.lo[2] + lz)]
                  .real();
          std::memcpy(buf.data() + o, &v, sizeof(double));
          o += sizeof(double);
        }
  }
  const auto recv = comm.alltoallv(send);

  const BrickOf mine = brick_of(comm.rank(), dec, cart);
  for (int r = 0; r < p; ++r) {
    const auto& buf = recv[static_cast<std::size_t>(r)];
    if (buf.empty()) continue;
    int so = 0, sn = 0;
    slab_of(r, n, p, so, sn);
    const int x0 = std::max(mine.lo[0], so);
    const int x1 = std::min(mine.lo[0] + mine.n[0], so + sn);
    std::size_t o = 0;
    for (int gx = x0; gx < x1; ++gx)
      for (int ly = 0; ly < mine.n[1]; ++ly)
        for (int lz = 0; lz < mine.n[2]; ++lz) {
          double v = 0.0;
          std::memcpy(&v, buf.data() + o, sizeof(double));
          o += sizeof(double);
          brick.at(gx - mine.lo[0], ly, lz) = v;
        }
  }
}

// ---------------------------------------------------------------------------
// SlabExchange — split p2p redistribution with precomputed footprints
// ---------------------------------------------------------------------------

SlabExchange::SlabExchange(const mesh::BrickDecomposition& dec,
                           const fft::ParallelFft3D& pfft,
                           comm::CartTopology& cart, int tag_base)
    : cart_(&cart), pfft_(&pfft), tag_base_(tag_base) {
  auto& comm = cart.comm();
  const int p = comm.size();
  const int n = pfft.n();
  const BrickOf mine = brick_of(comm.rank(), dec, cart);
  for (int a = 0; a < 3; ++a) my_lo_[a] = mine.lo[a];
  slab_of(comm.rank(), n, p, my_so_, my_sn_);

  std::size_t max_msg = 0;
  for (int r = 0; r < p; ++r) {
    // My brick rows landing in rank r's slab ...
    int so = 0, sn = 0;
    slab_of(r, n, p, so, sn);
    int x0 = std::max(mine.lo[0], so);
    int x1 = std::min(mine.lo[0] + mine.n[0], so + sn);
    if (x0 < x1)
      brick_rows_.push_back({r, x0, x1, mine.n[1], mine.n[2], 0, 0});
    // ... and rank r's brick rows landing in my slab.  The slab -> brick
    // direction moves exactly these intersections the other way, so the
    // two lists serve both directions.
    const BrickOf src = brick_of(r, dec, cart);
    x0 = std::max(src.lo[0], my_so_);
    x1 = std::min(src.lo[0] + src.n[0], my_so_ + my_sn_);
    if (x0 < x1)
      slab_rows_.push_back({r, x0, x1, src.n[1], src.n[2], src.lo[1],
                            src.lo[2]});
  }
  for (const auto& f : brick_rows_)
    max_msg = std::max(
        max_msg, static_cast<std::size_t>(f.x1 - f.x0) * f.ny * f.nz);
  for (const auto& f : slab_rows_)
    max_msg = std::max(
        max_msg, static_cast<std::size_t>(f.x1 - f.x0) * f.ny * f.nz);
  send_buf_.resize(std::max(brick_rows_.size(), slab_rows_.size()));
  recv_buf_.reserve(max_msg);
  slab_.resize(static_cast<std::size_t>(my_sn_) * n * n, fft::cplx(0.0, 0.0));
}

void SlabExchange::begin_to_slab(const mesh::Grid3D<double>& brick) {
  trace::Span span("slab-begin");
  auto& comm = cart_->comm();
  for (std::size_t s = 0; s < brick_rows_.size(); ++s) {
    const auto& fp = brick_rows_[s];
    auto& buf = send_buf_[s];
    buf.resize(static_cast<std::size_t>(fp.x1 - fp.x0) * fp.ny * fp.nz);
    const std::size_t row = sizeof(double) * static_cast<std::size_t>(fp.nz);
    std::size_t o = 0;
    // Brick z-rows are contiguous and the buffer is [x][y][z]: one memcpy
    // per (x, y) row instead of per-cell index churn.
    for (int gx = fp.x0; gx < fp.x1; ++gx)
      for (int ly = 0; ly < fp.ny; ++ly, o += fp.nz)
        std::memcpy(buf.data() + o, &brick.at(gx - my_lo_[0], ly, 0), row);
    comm.send(fp.rank, tag_base_, buf.data(), buf.size());
  }
  pending_.clear();
  for (const auto& fp : slab_rows_)
    pending_.push_back(comm.irecv(fp.rank, tag_base_));
}

std::vector<fft::cplx>& SlabExchange::finish_to_slab() {
  trace::Span span("slab-finish");
  const int n = pfft_->n();
  for (std::size_t s = 0; s < slab_rows_.size(); ++s) {
    const auto& fp = slab_rows_[s];
    const std::size_t count =
        static_cast<std::size_t>(fp.x1 - fp.x0) * fp.ny * fp.nz;
    recv_buf_.resize(count);
    {
      trace::Span wait_span("slab-wait");
      Stopwatch w;
      pending_[s].wait_into(recv_buf_.data(), count);
      wait_s_ += w.seconds();
    }
    std::size_t o = 0;
    for (int gx = fp.x0; gx < fp.x1; ++gx)
      for (int ly = 0; ly < fp.ny; ++ly)
        for (int lz = 0; lz < fp.nz; ++lz)
          slab_[(static_cast<std::size_t>(gx - my_so_) * n + (fp.lo1 + ly)) *
                    n +
                (fp.lo2 + lz)] = fft::cplx(recv_buf_[o++], 0.0);
  }
  return slab_;
}

void SlabExchange::begin_to_brick(const std::vector<fft::cplx>& slab) {
  trace::Span span("slab-begin");
  auto& comm = cart_->comm();
  const int n = pfft_->n();
  for (std::size_t s = 0; s < slab_rows_.size(); ++s) {
    const auto& fp = slab_rows_[s];
    auto& buf = send_buf_[s];
    buf.resize(static_cast<std::size_t>(fp.x1 - fp.x0) * fp.ny * fp.nz);
    std::size_t o = 0;
    for (int gx = fp.x0; gx < fp.x1; ++gx)
      for (int ly = 0; ly < fp.ny; ++ly)
        for (int lz = 0; lz < fp.nz; ++lz)
          buf[o++] = slab[(static_cast<std::size_t>(gx - my_so_) * n +
                           (fp.lo1 + ly)) *
                              n +
                          (fp.lo2 + lz)]
                         .real();
    comm.send(fp.rank, tag_base_ + 1, buf.data(), buf.size());
  }
  pending_.clear();
  for (const auto& fp : brick_rows_)
    pending_.push_back(comm.irecv(fp.rank, tag_base_ + 1));
}

void SlabExchange::finish_to_brick(mesh::Grid3D<double>& brick) {
  trace::Span span("slab-finish");
  for (std::size_t s = 0; s < brick_rows_.size(); ++s) {
    const auto& fp = brick_rows_[s];
    const std::size_t count =
        static_cast<std::size_t>(fp.x1 - fp.x0) * fp.ny * fp.nz;
    recv_buf_.resize(count);
    {
      trace::Span wait_span("slab-wait");
      Stopwatch w;
      pending_[s].wait_into(recv_buf_.data(), count);
      wait_s_ += w.seconds();
    }
    const std::size_t row = sizeof(double) * static_cast<std::size_t>(fp.nz);
    std::size_t o = 0;
    for (int gx = fp.x0; gx < fp.x1; ++gx)
      for (int ly = 0; ly < fp.ny; ++ly, o += fp.nz)
        std::memcpy(&brick.at(gx - my_lo_[0], ly, 0), recv_buf_.data() + o,
                    row);
  }
}

void allgather_bricks(const mesh::Grid3D<double>& brick,
                      const mesh::BrickDecomposition& dec,
                      comm::Communicator& comm,
                      mesh::Grid3D<double>& global) {
  global.fill(0.0);
  for (int i = 0; i < dec.local_n(0); ++i)
    for (int j = 0; j < dec.local_n(1); ++j)
      for (int k = 0; k < dec.local_n(2); ++k)
        global.at(dec.offset(0) + i, dec.offset(1) + j, dec.offset(2) + k) =
            brick.at(i, j, k);
  // Bricks are disjoint, so the sum assembles values exactly (x + 0 == x).
  comm.allreduce_sum(global.raw(), global.raw_size());
}

}  // namespace v6d::parallel
