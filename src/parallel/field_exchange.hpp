// Layout changes between the brick decomposition (mesh/decomposition.hpp)
// and the x-slab layout of the distributed FFT (fft/parallel_fft.hpp).
//
// The PM density is deposited into per-rank bricks (matching the Vlasov
// decomposition, paper §5.1.3) but the parallel FFT wants contiguous
// x-slabs; these helpers move interiors between the two layouts with one
// personalized all-to-all each way — the same communication shape as the
// paper's "slab redistribution before the SSL II FFT".
#pragma once

#include <vector>

#include "comm/cart.hpp"
#include "fft/parallel_fft.hpp"
#include "mesh/decomposition.hpp"
#include "mesh/grid.hpp"

namespace v6d::parallel {

/// Redistribute the interior of a brick-decomposed scalar field into this
/// rank's x-slab of the parallel FFT (complex [x_local][y][z] layout,
/// z contiguous).  `dec` describes the local brick of the cubic
/// pfft.n()^3 mesh; every rank must call collectively.
std::vector<fft::cplx> brick_to_slab(const mesh::Grid3D<double>& brick,
                                     const mesh::BrickDecomposition& dec,
                                     const fft::ParallelFft3D& pfft,
                                     comm::CartTopology& cart);

/// Inverse redistribution: scatter the real parts of this rank's x-slab
/// back into the brick interiors (ghosts untouched).
void slab_to_brick(const std::vector<fft::cplx>& slab,
                   const fft::ParallelFft3D& pfft,
                   const mesh::BrickDecomposition& dec,
                   comm::CartTopology& cart, mesh::Grid3D<double>& brick);

/// Assemble the full global field from disjoint brick interiors on every
/// rank (allreduce of a zero-padded global grid).  Used by diagnostics and
/// the checkpoint force gather; `global` must be pre-sized to the global
/// extents (any ghost width; ghosts are left zero).
void allgather_bricks(const mesh::Grid3D<double>& brick,
                      const mesh::BrickDecomposition& dec,
                      comm::Communicator& comm, mesh::Grid3D<double>& global);

/// Split (overlappable) brick <-> x-slab redistribution.
///
/// The blocking helpers above run one barrier-synchronized alltoallv; this
/// plan moves the same bytes through buffered point-to-point sends so the
/// caller can compute (Green-function tables, the next spectral component)
/// while messages are in flight.  Footprint intersections are precomputed
/// at construction and pack buffers persist, so steady-state begin/finish
/// pairs allocate nothing.  Pack/unpack loop orders match the blocking
/// versions, making the redistributed fields bit-identical.
///
/// Only one exchange (either direction) may be in flight per instance;
/// distinct instances on the same communicator need distinct `tag_base`s.
class SlabExchange {
 public:
  SlabExchange() = default;
  SlabExchange(const mesh::BrickDecomposition& dec,
               const fft::ParallelFft3D& pfft, comm::CartTopology& cart,
               int tag_base);

  /// Pack this rank's brick rows for every destination slab and post the
  /// sends + receive handles.  `brick` may be reused immediately.
  void begin_to_slab(const mesh::Grid3D<double>& brick);
  /// Complete the receives; returns the persistent slab buffer (valid
  /// until the next begin_to_slab on this instance).
  std::vector<fft::cplx>& finish_to_slab();

  /// Inverse direction: scatter this rank's slab rows toward the bricks.
  /// `slab` may be reused immediately after return.
  void begin_to_brick(const std::vector<fft::cplx>& slab);
  void finish_to_brick(mesh::Grid3D<double>& brick);

  /// Seconds spent blocked waiting for messages since the last call.
  double take_wait() {
    const double w = wait_s_;
    wait_s_ = 0.0;
    return w;
  }

 private:
  struct Footprint {
    int rank = 0;
    int x0 = 0, x1 = 0;       // global x-row intersection
    int ny = 0, nz = 0;       // transverse extents of the brick side
    int lo1 = 0, lo2 = 0;     // that brick's global (y, z) offsets
  };

  comm::CartTopology* cart_ = nullptr;
  const fft::ParallelFft3D* pfft_ = nullptr;
  int tag_base_ = 0;
  int my_so_ = 0, my_sn_ = 0;         // my slab rows
  int my_lo_[3] = {0, 0, 0};          // my brick offsets
  // The two directions move the same intersections in opposite senses, so
  // two footprint lists serve both: brick_rows_ = my brick ∩ each rank's
  // slab (sent in to-slab, received in to-brick); slab_rows_ = each
  // rank's brick ∩ my slab (received in to-slab, sent in to-brick).
  std::vector<Footprint> brick_rows_, slab_rows_;
  std::vector<std::vector<double>> send_buf_;  // one per send footprint
  std::vector<comm::Communicator::RecvHandle> pending_;
  std::vector<double> recv_buf_;
  std::vector<fft::cplx> slab_;
  double wait_s_ = 0.0;
};

}  // namespace v6d::parallel
