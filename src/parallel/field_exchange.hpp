// Layout changes between the brick decomposition (mesh/decomposition.hpp)
// and the x-slab layout of the distributed FFT (fft/parallel_fft.hpp).
//
// The PM density is deposited into per-rank bricks (matching the Vlasov
// decomposition, paper §5.1.3) but the parallel FFT wants contiguous
// x-slabs; these helpers move interiors between the two layouts with one
// personalized all-to-all each way — the same communication shape as the
// paper's "slab redistribution before the SSL II FFT".
#pragma once

#include <vector>

#include "comm/cart.hpp"
#include "fft/parallel_fft.hpp"
#include "mesh/decomposition.hpp"
#include "mesh/grid.hpp"

namespace v6d::parallel {

/// Redistribute the interior of a brick-decomposed scalar field into this
/// rank's x-slab of the parallel FFT (complex [x_local][y][z] layout,
/// z contiguous).  `dec` describes the local brick of the cubic
/// pfft.n()^3 mesh; every rank must call collectively.
std::vector<fft::cplx> brick_to_slab(const mesh::Grid3D<double>& brick,
                                     const mesh::BrickDecomposition& dec,
                                     const fft::ParallelFft3D& pfft,
                                     comm::CartTopology& cart);

/// Inverse redistribution: scatter the real parts of this rank's x-slab
/// back into the brick interiors (ghosts untouched).
void slab_to_brick(const std::vector<fft::cplx>& slab,
                   const fft::ParallelFft3D& pfft,
                   const mesh::BrickDecomposition& dec,
                   comm::CartTopology& cart, mesh::Grid3D<double>& brick);

/// Assemble the full global field from disjoint brick interiors on every
/// rank (allreduce of a zero-padded global grid).  Used by diagnostics and
/// the checkpoint force gather; `global` must be pre-sized to the global
/// extents (any ghost width; ghosts are left zero).
void allgather_bricks(const mesh::Grid3D<double>& brick,
                      const mesh::BrickDecomposition& dec,
                      comm::Communicator& comm, mesh::Grid3D<double>& global);

}  // namespace v6d::parallel
