// Distributed hybrid Vlasov / N-body solver — the paper's execution model
// (§5.1.3) on the in-process rank runtime (comm::run).
//
// Each rank owns one brick of the Vlasov spatial grid (velocity space is
// never decomposed) plus the matching brick of the PM mesh.  One KDK step
// runs the same sequence as the serial HybridSolver, with the
// communication seams the paper describes:
//
//   * position sweeps read neighbor bricks through the spatial halo
//     (the dominant Vlasov communication);
//   * density deposits spill into ghost cells and are folded onto the
//     owning neighbor;
//   * the Poisson solve runs on the distributed FFT
//     (fft::ParallelFft3D) after a brick -> x-slab redistribution
//     (parallel/field_exchange.hpp);
//   * the CFL step search and the conservation diagnostics are
//     allreduce-d so every rank takes identical steps.
//
// Two stepping modes share this skeleton (ctor flag / `overlap=` config):
//
//   * synchronous (the reference): every exchange is a blocking call
//     before or after the compute it serves — exactly the PR-4 path;
//   * overlapped (default): communication is split into begin/finish
//     halves and hidden behind independent compute, the paper's central
//     scaling technique.  Position sweeps advect the ghost-independent
//     interior while the single-axis face messages fly, then sweep the
//     ghost-width boundary shells (vlasov range-restricted entry points +
//     mesh::HaloPlan); the CDM ghost fold flies during the Vlasov moment
//     accumulation (mesh::GridFoldPlan); the brick -> x-slab FFT
//     redistribution flies during Green-function table prep, and each
//     force component's slab -> brick return flies during the next
//     component's spectral work (parallel::SlabExchange).
//
// The two modes are bit-identical: every restructured stage performs the
// same floating-point operations in the same order, only earlier relative
// to the communication (tests/test_parallel.cpp asserts exact equality).
// Exposed (un-hidden) communication time is tracked separately in the
// "halo-wait" / "fold-wait" / "slab-wait" timer buckets, and the
// interior/boundary sweep split in "sweep-interior" / "sweep-boundary" —
// bench/table3 turns these into the halo_overlap_efficiency metric.
//
// Deliberate deviation from the paper, documented in docs/ARCHITECTURE.md:
// CDM particles are *replicated* on every rank (each rank deposits only
// the particles inside its brick, mesh forces are allreduce-d, and the
// short-range tree runs redundantly).  The paper's headline scaling axis
// is the Vlasov part; a particle-exchange layer can land on this seam
// later without touching the Vlasov side.
//
// Construction shards an already built (serial) HybridSolver, so scenario
// factories and checkpoints keep a single source of truth for initial
// conditions; gather_into() writes the evolved state back.
#pragma once

#include <array>
#include <vector>

#include "comm/cart.hpp"
#include "common/timer.hpp"
#include "fft/parallel_fft.hpp"
#include "gravity/poisson.hpp"
#include "hybrid/hybrid_solver.hpp"
#include "mesh/decomposition.hpp"
#include "mesh/halo_plan.hpp"
#include "parallel/field_exchange.hpp"
#include "vlasov/sweeps.hpp"

namespace v6d::parallel {

class DistributedHybridSolver {
 public:
  /// Shard rank-local state out of the fully built global solver; the
  /// global object is only read during construction.  `decomp` must
  /// multiply to comm.size() and satisfy parallel::validate_decomp.
  /// A fresh force cache on the global solver is sharded too, so a
  /// resumed run continues bit-identically.  `overlap` selects the
  /// overlapped stepping pipeline (bit-identical to the synchronous
  /// reference; default on).
  DistributedHybridSolver(const hybrid::HybridSolver& global,
                          comm::Communicator& comm,
                          std::array<int, 3> decomp, bool overlap = true);

  /// One KDK step from a0 to a1 (collective; all ranks must agree on the
  /// interval — use suggest_next_a).
  void step(double a0, double a1);

  /// CFL-limited step choice; the shift bound is allreduce-d so the
  /// result is identical on every rank (collective).
  double suggest_next_a(double a0, double da_max);

  /// Global total mass (allreduce-d conservation diagnostic; collective).
  double total_mass();

  vlasov::PhaseSpace& local_f() { return f_; }
  const vlasov::PhaseSpace& local_f() const { return f_; }
  const nbody::Particles& cdm() const { return cdm_; }
  comm::CartTopology& cart() { return cart_; }
  const mesh::BrickDecomposition& decomposition() const { return dec_; }
  bool has_neutrinos() const { return has_nu_; }
  bool overlap_enabled() const { return overlap_; }
  const cosmo::Background& background() const { return background_; }

  /// The step-boundary force cache in *global* layout: the Vlasov-grid
  /// acceleration bricks are assembled across ranks (collective), the
  /// replicated particle accelerations are copied.  Feeds checkpoints and
  /// gather_into.
  hybrid::HybridSolver::StepForces export_step_forces_global();
  /// Slice a global-layout force cache back onto this rank (resume path).
  /// Throws std::runtime_error on shape mismatch.
  void import_step_forces_global(const hybrid::HybridSolver::StepForces& sf);

  /// Write the evolved state back into the global solver: every rank
  /// copies its f brick (disjoint), rank 0 restores particles and the
  /// force cache (collective).  With `via_messages` the ranks do not share
  /// the global solver's address space (multi-process transports): bricks
  /// travel to rank 0 as point-to-point messages and only rank 0's
  /// `global` is assembled — the other ranks' globals are left untouched.
  void gather_into(hybrid::HybridSolver& global, bool via_messages = false);

  TimerRegistry& timers() { return timers_; }

 private:
  void compute_forces(double a);
  bool owns_particle(std::size_t i) const;
  void deposit_cdm_local();
  void deposit_cdm_density();
  void compute_nu_moment();
  void inject_nu_density();
  void deposit_nu_density();
  void prepare_green_tables(const gravity::PoissonOptions& cdm_long,
                            const gravity::PoissonOptions& cdm_short,
                            const gravity::PoissonOptions& nu_opts);
  void drift(double drift_factor);
  vlasov::HaloFiller halo_filler();

  comm::Communicator& comm_;
  comm::CartTopology cart_;
  mesh::BrickDecomposition dec_;     // Vlasov spatial grid bricks
  mesh::BrickDecomposition pm_dec_;  // PM mesh bricks
  fft::ParallelFft3D pfft_;

  vlasov::PhaseSpace f_;   // local brick (+ ghosts)
  nbody::Particles cdm_;   // replicated
  double box_;
  cosmo::Background background_;
  hybrid::HybridOptions options_;

  mesh::MeshPatch patch_;  // local PM brick in global coordinates
  hybrid::TreePmDerived treepm_derived_;

  mesh::Grid3D<double> rho_cdm_, rho_nu_;          // local PM bricks
  mesh::Grid3D<double> gx_cdm_, gy_cdm_, gz_cdm_;  // filtered (particles)
  mesh::Grid3D<double> gx_nu_, gy_nu_, gz_nu_;     // full (Vlasov kicks)
  mesh::Grid3D<double> nu_ax_, nu_ay_, nu_az_;     // accel on local f grid
  mesh::Grid3D<double> rho_v_;                     // nu moment scratch
  std::vector<double> ax_, ay_, az_;               // particle accelerations
  std::vector<std::size_t> owned_;  // this rank's ownership split, refreshed
                                    // once per force assembly
  bool forces_fresh_ = false;
  bool has_nu_ = false;
  bool overlap_ = true;
  bool split_sweeps_ = true;  // interior/boundary split inside overlap mode
                              // (V6D_OVERLAP_SPLIT=on|off|auto; auto engages
                              // it only when hardware threads can actually
                              // run ranks concurrently — the split re-reads
                              // stencil margins, which pays only when there
                              // is real concurrency to hide latency behind)

  // Overlap pipeline state: precomputed plans + persistent buffers (no
  // steady-state allocation on the stepping path).
  mesh::HaloPlan ps_plan_;                   // split phase-space faces
  mesh::GridFoldPlan fold_cdm_, fold_nu_;    // split deposit folds
  SlabExchange slab_cdm_x_, slab_nu_x_;      // brick -> slab (densities)
  SlabExchange slab_out_;                    // slab -> brick (forces)
  vlasov::PositionBoundarySlabs boundary_;   // pre-sweep shell windows
  std::vector<double> green_long_, green_short_, green_nu_;  // mode tables
  std::vector<fft::cplx> slab_cdm_sync_, slab_nu_sync_;      // sync path
  std::vector<fft::cplx> phi_, spec_;

  TimerRegistry timers_;
};

}  // namespace v6d::parallel
