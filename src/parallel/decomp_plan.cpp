#include "parallel/decomp_plan.hpp"

#include <limits>
#include <stdexcept>

namespace v6d::parallel {

namespace {

std::string dims_str(const std::array<int, 3>& d) {
  return std::to_string(d[0]) + "x" + std::to_string(d[1]) + "x" +
         std::to_string(d[2]);
}

/// Whether axis `a` of the constraints tolerates being split `parts` ways.
bool axis_feasible(int a, int parts, const DecompConstraints& c) {
  if (parts == 1) return true;
  const int nv = c.vlasov[static_cast<std::size_t>(a)];
  if (nv > 0) {
    if (nv % parts != 0) return false;
    if (nv / parts < c.vlasov_ghost) return false;
  }
  if (c.pm_grid > 0) {
    if (c.pm_grid % parts != 0) return false;
    if (c.pm_grid / parts < c.pm_ghost) return false;
  }
  return true;
}

/// Halo surface of the local brick (the per-step communication volume is
/// proportional to it) — smaller is better, zero when nothing is split.
double halo_surface(const std::array<int, 3>& dims,
                    const DecompConstraints& c) {
  double lx = 1.0, ly = 1.0, lz = 1.0;
  if (c.vlasov[0] > 0) {
    lx = static_cast<double>(c.vlasov[0]) / dims[0];
    ly = static_cast<double>(c.vlasov[1]) / dims[1];
    lz = static_cast<double>(c.vlasov[2]) / dims[2];
  } else if (c.pm_grid > 0) {
    lx = static_cast<double>(c.pm_grid) / dims[0];
    ly = static_cast<double>(c.pm_grid) / dims[1];
    lz = static_cast<double>(c.pm_grid) / dims[2];
  }
  double s = 0.0;
  if (dims[0] > 1) s += ly * lz;
  if (dims[1] > 1) s += lx * lz;
  if (dims[2] > 1) s += lx * ly;
  return s;
}

}  // namespace

std::array<int, 3> parse_decomp(const std::string& spec) {
  if (spec.empty() || spec == "auto") return {0, 0, 0};
  std::array<int, 3> dims{0, 0, 0};
  std::size_t pos = 0;
  for (int a = 0; a < 3; ++a) {
    std::size_t used = 0;
    int value = 0;
    try {
      value = std::stoi(spec.substr(pos), &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("decomp: cannot parse '" + spec +
                                  "' (expected DXxDYxDZ, e.g. 2x2x1)");
    }
    if (value <= 0)
      throw std::invalid_argument("decomp: non-positive factor in '" + spec +
                                  "'");
    dims[static_cast<std::size_t>(a)] = value;
    pos += used;
    if (a < 2) {
      if (pos >= spec.size() || spec[pos] != 'x')
        throw std::invalid_argument("decomp: cannot parse '" + spec +
                                    "' (expected DXxDYxDZ, e.g. 2x2x1)");
      ++pos;
    }
  }
  if (pos != spec.size())
    throw std::invalid_argument("decomp: trailing characters in '" + spec +
                                "'");
  return dims;
}

void validate_decomp(const std::array<int, 3>& dims, int ranks,
                     const DecompConstraints& c) {
  if (dims[0] * dims[1] * dims[2] != ranks)
    throw std::invalid_argument("decomp " + dims_str(dims) +
                                " does not multiply to ranks=" +
                                std::to_string(ranks));
  for (int a = 0; a < 3; ++a) {
    if (axis_feasible(a, dims[static_cast<std::size_t>(a)], c)) continue;
    const int nv = c.vlasov[static_cast<std::size_t>(a)];
    throw std::invalid_argument(
        "decomp " + dims_str(dims) + ": axis " + std::to_string(a) +
        " cannot be split " +
        std::to_string(dims[static_cast<std::size_t>(a)]) +
        " ways (Vlasov extent " + std::to_string(nv) + ", PM grid " +
        std::to_string(c.pm_grid) +
        "; decomposed axes must divide evenly and keep local extents >= " +
        "the ghost widths " + std::to_string(c.vlasov_ghost) + "/" +
        std::to_string(c.pm_ghost) + ")");
  }
}

std::array<int, 3> choose_decomp(int ranks, const DecompConstraints& c) {
  std::array<int, 3> best{0, 0, 0};
  double best_surface = std::numeric_limits<double>::max();
  for (int dx = 1; dx <= ranks; ++dx) {
    if (ranks % dx != 0) continue;
    const int rest = ranks / dx;
    for (int dy = 1; dy <= rest; ++dy) {
      if (rest % dy != 0) continue;
      const int dz = rest / dy;
      const std::array<int, 3> dims{dx, dy, dz};
      bool ok = true;
      for (int a = 0; a < 3 && ok; ++a)
        ok = axis_feasible(a, dims[static_cast<std::size_t>(a)], c);
      if (!ok) continue;
      const double surface = halo_surface(dims, c);
      if (surface < best_surface) {
        best_surface = surface;
        best = dims;
      }
    }
  }
  if (best[0] == 0)
    throw std::invalid_argument(
        "no feasible decomposition of " + std::to_string(ranks) +
        " ranks for Vlasov grid " + dims_str(c.vlasov) + " and PM grid " +
        std::to_string(c.pm_grid) +
        " (decomposed axes must divide evenly and keep local extents >= "
        "the ghost widths); use fewer ranks or a larger grid");
  return best;
}

std::array<int, 3> resolve_decomp(const std::string& spec, int ranks,
                                  const DecompConstraints& c) {
  const auto parsed = parse_decomp(spec);
  if (parsed[0] == 0) return choose_decomp(ranks, c);
  validate_decomp(parsed, ranks, c);
  return parsed;
}

}  // namespace v6d::parallel
