#include "parallel/distributed_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/trace.hpp"
#include "mesh/halo.hpp"
#include "mesh/interp.hpp"
#include "parallel/decomp_plan.hpp"
#include "vlasov/splitting.hpp"

namespace v6d::parallel {

namespace {

// Message-tag bases of the overlapped exchanges; distinct from each other
// and from the blocking exchanges in mesh/halo.cpp (100/150/200), so an
// in-flight overlapped message can never be claimed by a blocking call.
constexpr int kPsHaloTagBase = 300;   // phase-space faces (axis*4 + dir)
constexpr int kFoldCdmTagBase = 340;  // CDM density fold
constexpr int kFoldNuTagBase = 360;   // neutrino density fold
constexpr int kSlabCdmTagBase = 380;  // rho_cdm brick -> slab
constexpr int kSlabNuTagBase = 384;   // rho_nu brick -> slab
constexpr int kSlabOutTagBase = 388;  // force slab -> brick

/// Should the overlapped drift split sweeps into interior + boundary
/// shells?  The split buys latency hiding at the price of re-reading the
/// stencil margins (up to (n + 6g) / (n + 2g) more strided loads per
/// line), so it only pays when rank threads actually run concurrently.
/// V6D_OVERLAP_SPLIT=on|off overrides; auto (default) asks the hardware.
bool resolve_split_sweeps() {
  if (const char* env = std::getenv("V6D_OVERLAP_SPLIT")) {
    const std::string v(env);
    if (v == "on" || v == "1") return true;
    if (v == "off" || v == "0") return false;
  }
  return std::thread::hardware_concurrency() > 1;
}

/// Local phase-space brick of the global f: same geometry with the origin
/// shifted to this rank's offset, interior blocks copied.
vlasov::PhaseSpace make_local_brick(const vlasov::PhaseSpace& global,
                                    const mesh::BrickDecomposition& dec) {
  vlasov::PhaseSpaceDims dims = global.dims();
  dims.nx = dec.local_n(0);
  dims.ny = dec.local_n(1);
  dims.nz = dec.local_n(2);
  vlasov::PhaseSpaceGeometry geom = global.geom();
  geom.x0 += dec.offset(0) * geom.dx;
  geom.y0 += dec.offset(1) * geom.dy;
  geom.z0 += dec.offset(2) * geom.dz;
  vlasov::PhaseSpace local(dims, geom);
  const std::size_t bytes = global.block_size() * sizeof(float);
  for (int i = 0; i < dims.nx; ++i)
    for (int j = 0; j < dims.ny; ++j)
      for (int k = 0; k < dims.nz; ++k)
        std::memcpy(local.block(i, j, k),
                    global.block(dec.offset(0) + i, dec.offset(1) + j,
                                 dec.offset(2) + k),
                    bytes);
  return local;
}

}  // namespace

DistributedHybridSolver::DistributedHybridSolver(
    const hybrid::HybridSolver& global, comm::Communicator& comm,
    std::array<int, 3> decomp, bool overlap)
    : comm_(comm),
      cart_(comm, decomp),
      pfft_(comm, global.options().pm_grid),
      cdm_(global.cdm()),
      box_(global.box()),
      background_(global.background()),
      options_(global.options()),
      overlap_(overlap),
      split_sweeps_(overlap && resolve_split_sweeps()) {
  const auto& gd = global.neutrinos().dims();
  has_nu_ = gd.total_interior() > 0;

  DecompConstraints constraints;
  if (has_nu_) constraints.vlasov = {gd.nx, gd.ny, gd.nz};
  constraints.pm_grid = options_.pm_grid;
  constraints.vlasov_ghost = gd.ghost;
  validate_decomp(decomp, comm.size(), constraints);

  dec_ = mesh::BrickDecomposition({gd.nx, gd.ny, gd.nz}, decomp,
                                  cart_.coords());
  pm_dec_ = mesh::BrickDecomposition(
      {options_.pm_grid, options_.pm_grid, options_.pm_grid}, decomp,
      cart_.coords());

  if (has_nu_) f_ = make_local_brick(global.neutrinos(), dec_);

  patch_.box = box_;
  patch_.n_global = options_.pm_grid;
  for (int a = 0; a < 3; ++a) patch_.offset[a] = pm_dec_.offset(a);

  treepm_derived_ = hybrid::TreePmDerived::from(options_, box_);

  const int lx = pm_dec_.local_n(0), ly = pm_dec_.local_n(1),
            lz = pm_dec_.local_n(2);
  rho_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  rho_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gx_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gy_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gz_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gx_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gy_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gz_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  nu_ax_ = mesh::Grid3D<double>(dec_.local_n(0), dec_.local_n(1),
                                dec_.local_n(2));
  nu_ay_ = nu_ax_;
  nu_az_ = nu_ax_;
  if (has_nu_) {
    rho_v_ = mesh::Grid3D<double>(dec_.local_n(0), dec_.local_n(1),
                                  dec_.local_n(2));
    ps_plan_ = mesh::HaloPlan(cart_, f_.dims(), kPsHaloTagBase);
  }

  // Overlap plans (constructed unconditionally: cheap, and the sync path
  // never touches them).
  fold_cdm_ = mesh::GridFoldPlan(cart_, kFoldCdmTagBase);
  fold_nu_ = mesh::GridFoldPlan(cart_, kFoldNuTagBase);
  slab_cdm_x_ = SlabExchange(pm_dec_, pfft_, cart_, kSlabCdmTagBase);
  if (has_nu_) slab_nu_x_ = SlabExchange(pm_dec_, pfft_, cart_, kSlabNuTagBase);
  slab_out_ = SlabExchange(pm_dec_, pfft_, cart_, kSlabOutTagBase);

  // Carry a fresh step-boundary force cache across the serial/distributed
  // seam (resume path): recomputing it would only match to rounding.
  const auto sf = global.export_step_forces();
  if (sf.fresh) import_step_forces_global(sf);
}

vlasov::HaloFiller DistributedHybridSolver::halo_filler() {
  return [this](vlasov::PhaseSpace& f) {
    ScopedTimer t(timers_, "halo");
    mesh::exchange_phase_space_halo(f, cart_);
  };
}

bool DistributedHybridSolver::owns_particle(std::size_t i) const {
  // Ownership by the containing PM cell: a disjoint, exhaustive split of
  // the replicated particle set.  Both the deposit and the force gather
  // must use exactly this rule or allreduce-summed contributions would be
  // dropped or doubled.
  const int n = options_.pm_grid;
  const double inv_h = n / box_;
  const double pos[3] = {cdm_.x[i], cdm_.y[i], cdm_.z[i]};
  for (int axis = 0; axis < 3; ++axis) {
    double c = pos[axis] * inv_h;
    c -= n * std::floor(c / n);
    const int cell = std::min(n - 1, static_cast<int>(std::floor(c)));
    if (cell < pm_dec_.offset(axis) ||
        cell >= pm_dec_.offset(axis) + pm_dec_.local_n(axis))
      return false;
  }
  return true;
}

void DistributedHybridSolver::deposit_cdm_local() {
  trace::Span span("deposit");
  rho_cdm_.fill(0.0);
  if (cdm_.size() == 0) return;
  // Particles are replicated; each rank deposits only the ones it owns
  // (owned_ is refreshed once per force assembly), spilling CIC weight
  // into ghosts that the fold hands to the owning neighbor.
  std::vector<double> px, py, pz;
  px.reserve(owned_.size());
  py.reserve(owned_.size());
  pz.reserve(owned_.size());
  for (const std::size_t i : owned_) {
    px.push_back(cdm_.x[i]);
    py.push_back(cdm_.y[i]);
    pz.push_back(cdm_.z[i]);
  }
  mesh::deposit(rho_cdm_, patch_, px, py, pz, cdm_.mass,
                mesh::Assignment::kCic);
}

void DistributedHybridSolver::deposit_cdm_density() {
  deposit_cdm_local();
  mesh::fold_grid_halo(rho_cdm_, cart_);
}

void DistributedHybridSolver::compute_nu_moment() {
  // 0th moment of the local brick (heavy: reduces the full velocity cube
  // per spatial cell — the overlap partner of the CDM ghost fold).
  vlasov::compute_density(f_, rho_v_);
}

void DistributedHybridSolver::inject_nu_density() {
  trace::Span span("deposit");
  // Inject the moment onto the local PM brick cell by cell (mirrors
  // HybridSolver::deposit_nu_density; cell centers are global coordinates
  // because the brick geometry origin is shifted).
  const auto& d = f_.dims();
  const auto& g = f_.geom();
  rho_nu_.fill(0.0);
  const double cell_mass_factor = g.dvol();
  std::vector<double> px(1), py(1), pz(1);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        px[0] = g.x(ix);
        py[0] = g.y(iy);
        pz[0] = g.z(iz);
        const double mass = rho_v_.at(ix, iy, iz) * cell_mass_factor;
        mesh::deposit(rho_nu_, patch_, px, py, pz, mass,
                      mesh::Assignment::kCic);
      }
}

void DistributedHybridSolver::deposit_nu_density() {
  compute_nu_moment();
  inject_nu_density();
  mesh::fold_grid_halo(rho_nu_, cart_);
}

void DistributedHybridSolver::prepare_green_tables(
    const gravity::PoissonOptions& cdm_long,
    const gravity::PoissonOptions& cdm_short,
    const gravity::PoissonOptions& nu_opts) {
  // Per-mode Green x window multipliers in for_each_mode order.  The
  // tables hold exactly the doubles the inline evaluation would produce,
  // so using them changes nothing numerically — it only moves the
  // transcendental-heavy loop off the communication's critical path (the
  // overlapped mode computes them while the brick -> slab messages fly).
  const int n = options_.pm_grid;
  const int lny = pfft_.local_ny();
  const std::size_t modes = static_cast<std::size_t>(lny) * n * n;
  green_long_.resize(modes);
  green_short_.resize(modes);
  if (has_nu_) green_nu_.resize(modes);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
  for (int y = 0; y < lny; ++y)
    for (int x = 0; x < n; ++x) {
      const int by = pfft_.y_offset() + y;
      std::size_t m = (static_cast<std::size_t>(y) * n + x) * n;
      for (int z = 0; z < n; ++z, ++m) {
        green_long_[m] = gravity::green_times_window(x, by, z, n, n, n, box_,
                                                     box_, box_, cdm_long);
        green_short_[m] = gravity::green_times_window(x, by, z, n, n, n,
                                                      box_, box_, box_,
                                                      cdm_short);
        if (has_nu_)
          green_nu_[m] = gravity::green_times_window(x, by, z, n, n, n, box_,
                                                     box_, box_, nu_opts);
      }
    }
}

void DistributedHybridSolver::compute_forces(double a) {
  const double prefactor = hybrid::HybridSolver::poisson_prefactor(a);
  const int n = options_.pm_grid;

  // Ownership split of the replicated particle set, computed once per
  // force assembly (positions are fixed between the deposit and the
  // gather below).
  owned_.clear();
  for (std::size_t i = 0; i < cdm_.size(); ++i)
    if (owns_particle(i)) owned_.push_back(i);

  gravity::PoissonOptions cdm_opts;
  cdm_opts.prefactor = prefactor;
  cdm_opts.deconvolve_order = 2;  // CIC
  cdm_opts.green = gravity::GreenFunction::kExactK2;
  gravity::PoissonOptions cdm_long = cdm_opts;
  cdm_long.longrange_split_rs = options_.enable_tree ? treepm_derived_.rs : 0.0;
  gravity::PoissonOptions nu_opts;
  nu_opts.prefactor = prefactor;
  nu_opts.deconvolve_order = 0;

  // --- densities (deposit + ghost fold) ---
  if (!overlap_) {
    {
      ScopedTimer t(timers_, "pm");
      deposit_cdm_density();
    }
    if (has_nu_) {
      ScopedTimer t(timers_, "vlasov-moments");
      deposit_nu_density();
    }
    {
      ScopedTimer t(timers_, "pm");
      prepare_green_tables(cdm_long, cdm_opts, nu_opts);
    }
  } else {
    // Post the CDM ghost-fold sends, accumulate the (heavy, local) Vlasov
    // moment while they fly, then complete the fold.
    {
      ScopedTimer t(timers_, "pm");
      deposit_cdm_local();
      fold_cdm_.begin(rho_cdm_);
    }
    if (has_nu_) {
      ScopedTimer t(timers_, "vlasov-moments");
      compute_nu_moment();
    }
    {
      ScopedTimer t(timers_, "pm");
      fold_cdm_.finish(rho_cdm_);
    }
    if (has_nu_) {
      {
        ScopedTimer t(timers_, "vlasov-moments");
        inject_nu_density();
      }
      ScopedTimer t(timers_, "pm");
      fold_nu_.begin(rho_nu_);
    }
  }

  {
    ScopedTimer t(timers_, "pm");
    // Bricks -> x-slabs, then the distributed forward transforms.
    std::vector<fft::cplx>* slab_cdm = nullptr;
    std::vector<fft::cplx>* slab_nu = nullptr;
    if (!overlap_) {
      slab_cdm_sync_ = brick_to_slab(rho_cdm_, pm_dec_, pfft_, cart_);
      {
        trace::Span fft_span("fft-forward");
        pfft_.forward(slab_cdm_sync_);
      }
      slab_cdm = &slab_cdm_sync_;
      if (has_nu_) {
        slab_nu_sync_ = brick_to_slab(rho_nu_, pm_dec_, pfft_, cart_);
        {
          trace::Span fft_span("fft-forward");
          pfft_.forward(slab_nu_sync_);
        }
        slab_nu = &slab_nu_sync_;
      }
    } else {
      // The CDM redistribution (and the still-flying nu fold) overlap the
      // Green-function tables; the nu redistribution overlaps the CDM
      // forward transform.
      slab_cdm_x_.begin_to_slab(rho_cdm_);
      prepare_green_tables(cdm_long, cdm_opts, nu_opts);
      if (has_nu_) {
        fold_nu_.finish(rho_nu_);
        slab_nu_x_.begin_to_slab(rho_nu_);
      }
      slab_cdm = &slab_cdm_x_.finish_to_slab();
      {
        trace::Span fft_span("fft-forward");
        pfft_.forward(*slab_cdm);
      }
      if (has_nu_) {
        slab_nu = &slab_nu_x_.finish_to_slab();
        trace::Span fft_span("fft-forward");
        pfft_.forward(*slab_nu);
      }
    }

    // One force set = the combined potential of both species under the
    // given CDM green table, differentiated spectrally (-i k_d) and
    // brought back to brick layout per component.  phi_k is evaluated once
    // per mode (as in the serial PoissonSolver::solve_forces); only the
    // cheap -i k_d multiply runs per direction.  In overlapped mode each
    // component's slab -> brick return flies during the next component's
    // spectral multiply + inverse FFT.
    auto solve_set = [&](const std::vector<double>& green,
                         mesh::Grid3D<double>& gx, mesh::Grid3D<double>& gy,
                         mesh::Grid3D<double>& gz) {
      phi_.resize(slab_cdm->size());
      std::size_t m = 0;
      pfft_.for_each_mode(*slab_cdm, [&](int, int, int, fft::cplx& value) {
        fft::cplx phi_k = value * green[m];
        if (has_nu_) phi_k += (*slab_nu)[m] * green_nu_[m];
        phi_[m] = phi_k;
        ++m;
      });
      mesh::Grid3D<double>* outs[3] = {&gx, &gy, &gz};
      for (int d = 0; d < 3; ++d) {
        spec_.resize(phi_.size());
        m = 0;
        pfft_.for_each_mode(spec_, [&](int bx, int by, int bz, fft::cplx& s) {
          const int bin = d == 0 ? bx : d == 1 ? by : bz;
          const double k_d = gravity::fft_wavenumber(bin, n, box_);
          s = fft::cplx(0.0, -1.0) * k_d * phi_[m];
          ++m;
        });
        {
          trace::Span fft_span("fft-inverse");
          pfft_.inverse_normalized(spec_);
        }
        if (!overlap_) {
          slab_to_brick(spec_, pfft_, pm_dec_, cart_, *outs[d]);
        } else {
          if (d > 0) {
            slab_out_.finish_to_brick(*outs[d - 1]);
            mesh::exchange_grid_halo(*outs[d - 1], cart_);
          }
          slab_out_.begin_to_brick(spec_);
        }
      }
      if (!overlap_) {
        mesh::exchange_grid_halo(gx, cart_);
        mesh::exchange_grid_halo(gy, cart_);
        mesh::exchange_grid_halo(gz, cart_);
      } else {
        slab_out_.finish_to_brick(*outs[2]);
        mesh::exchange_grid_halo(*outs[2], cart_);
      }
    };
    solve_set(green_long_, gx_cdm_, gy_cdm_, gz_cdm_);
    solve_set(green_short_, gx_nu_, gy_nu_, gz_nu_);

    // Particle long-range gather: each rank interpolates at the particles
    // its brick owns (the same split as the deposit), the disjoint
    // contributions are summed into the replicated acceleration arrays.
    ax_.assign(cdm_.size(), 0.0);
    ay_.assign(cdm_.size(), 0.0);
    az_.assign(cdm_.size(), 0.0);
    if (cdm_.size() > 0) {
      for (const std::size_t i : owned_) {
        ax_[i] = mesh::interpolate(gx_cdm_, patch_, cdm_.x[i], cdm_.y[i],
                                   cdm_.z[i], mesh::Assignment::kCic);
        ay_[i] = mesh::interpolate(gy_cdm_, patch_, cdm_.x[i], cdm_.y[i],
                                   cdm_.z[i], mesh::Assignment::kCic);
        az_[i] = mesh::interpolate(gz_cdm_, patch_, cdm_.x[i], cdm_.y[i],
                                   cdm_.z[i], mesh::Assignment::kCic);
      }
      comm_.allreduce_sum(ax_.data(), ax_.size());
      comm_.allreduce_sum(ay_.data(), ay_.size());
      comm_.allreduce_sum(az_.data(), az_.size());
    }

    // Vlasov-grid acceleration sampling on the local brick.
    if (has_nu_) {
      const auto& d = f_.dims();
      const auto& g = f_.geom();
      for (int ix = 0; ix < d.nx; ++ix)
        for (int iy = 0; iy < d.ny; ++iy)
          for (int iz = 0; iz < d.nz; ++iz) {
            const double x = g.x(ix), y = g.y(iy), z = g.z(iz);
            nu_ax_.at(ix, iy, iz) = mesh::interpolate(
                gx_nu_, patch_, x, y, z, mesh::Assignment::kCic);
            nu_ay_.at(ix, iy, iz) = mesh::interpolate(
                gy_nu_, patch_, x, y, z, mesh::Assignment::kCic);
            nu_az_.at(ix, iy, iz) = mesh::interpolate(
                gz_nu_, patch_, x, y, z, mesh::Assignment::kCic);
          }
    }
  }
  if (overlap_) {
    timers_.add("fold-wait", fold_cdm_.take_wait() + fold_nu_.take_wait());
    timers_.add("slab-wait", slab_cdm_x_.take_wait() +
                                 slab_nu_x_.take_wait() +
                                 slab_out_.take_wait());
  }

  // --- tree short-range: replicated over the replicated particle set,
  //     identical on every rank (the serial solver's exact block) ---
  if (options_.enable_tree && cdm_.size() > 0) {
    ScopedTimer t(timers_, "tree");
    hybrid::add_tree_accelerations(cdm_, box_, options_, treepm_derived_,
                                   prefactor, ax_, ay_, az_);
  }
  forces_fresh_ = true;
}

void DistributedHybridSolver::drift(double drift_factor) {
  if (drift_factor == 0.0) return;
  if (!overlap_) {
    // Synchronous reference: full (3-axis, transitively extended) halo
    // refill before every axis sweep.
    vlasov::drift_full(f_, drift_factor, options_.kernel, halo_filler());
    return;
  }
  // Overlapped pipeline, same operator sequence and subcycling as
  // vlasov::drift_full: per axis, post the single-axis face exchange,
  // advect the ghost-independent interior while the messages fly, then
  // complete the exchange and sweep the two boundary shells from their
  // pre-sweep windows.  Bit-identical to the reference because a position
  // sweep along an axis reads only that axis' ghosts at interior
  // transverse positions, and every restricted range sees the same
  // stencil values as the full-line sweep.
  const double max_shift = vlasov::max_position_shift(f_, drift_factor);
  const int cycles =
      std::max(1, static_cast<int>(std::ceil(max_shift / 0.999)));
  const double sub = drift_factor / cycles;
  const int g = f_.dims().ghost;
  for (int axis : {2, 1, 0}) {
    const auto& ap = ps_plan_.axis(axis);
    for (int c = 0; c < cycles; ++c) {
      if (!ap.split || !split_sweeps_) {
        // Undecomposed (local wrap), thinner than 2*ghost, or the split
        // heuristic disengaged: run the lean exchange blocking, then the
        // full-line sweep.  Timed under its own bucket so the
        // interior/boundary metrics always describe the split pipeline
        // alone.
        {
          ScopedTimer t(timers_, "halo");
          ps_plan_.begin_axis(f_, axis);
          ps_plan_.finish_axis(f_, axis);
        }
        ScopedTimer t(timers_, "sweep-full");
        vlasov::advect_position_axis(f_, axis, sub, options_.kernel);
        continue;
      }
      {
        ScopedTimer t(timers_, "halo");
        ps_plan_.begin_axis(f_, axis);
      }
      {
        ScopedTimer t(timers_, "sweep-boundary");
        vlasov::save_position_boundary(f_, axis, boundary_);
      }
      {
        ScopedTimer t(timers_, "sweep-interior");
        vlasov::advect_position_axis_range(f_, axis, sub, options_.kernel, g,
                                           ap.n - g);
      }
      {
        // Faces land straight in the boundary windows (same layout as the
        // packed payload), skipping the f-ghost unpack + window reload.
        ScopedTimer t(timers_, "halo");
        ps_plan_.finish_axis_into(
            boundary_.lo.data(),
            boundary_.hi.data() + 2 * ap.face_floats, axis);
      }
      {
        ScopedTimer t(timers_, "sweep-boundary");
        vlasov::advect_position_axis_boundary(f_, axis, sub, options_.kernel,
                                              boundary_);
      }
    }
  }
  timers_.add("halo-wait", ps_plan_.take_wait());
}

void DistributedHybridSolver::step(double a0, double a1) {
  const double a_mid = 0.5 * (a0 + a1);
  if (!forces_fresh_) compute_forces(a0);

  const double kick_pre = background_.kick_factor(a0, a_mid);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    trace::Span kick_span("kick");
    vlasov::kick_half(f_, nu_ax_, nu_ay_, nu_az_, kick_pre, options_.kernel);
  }
  nbody::kick(cdm_, ax_, ay_, az_, kick_pre);

  const double drift_f = background_.drift_factor(a0, a1);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    drift(drift_f);
  }
  nbody::drift(cdm_, drift_f, box_);

  compute_forces(a1);

  const double kick_post = background_.kick_factor(a_mid, a1);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    trace::Span kick_span("kick");
    vlasov::kick_half(f_, nu_ax_, nu_ay_, nu_az_, kick_post, options_.kernel);
  }
  nbody::kick(cdm_, ax_, ay_, az_, kick_post);
}

double DistributedHybridSolver::suggest_next_a(double a0, double da_max) {
  if (!has_nu_) return a0 + da_max;
  // Same backoff iteration as the serial solver; the local shift bound is
  // geometry-only today, but the allreduce keeps every rank's decision
  // identical by construction even if it becomes state-dependent.
  return hybrid::cfl_limited_step(a0, da_max, options_.cfl, [&](double a1) {
    return comm_.allreduce_max(
        vlasov::max_position_shift(f_, background_.drift_factor(a0, a1)));
  });
}

double DistributedHybridSolver::total_mass() {
  const double local = has_nu_ ? f_.total_mass() : 0.0;
  double mass = comm_.allreduce_sum(local);
  mass += cdm_.mass * static_cast<double>(cdm_.size());
  return mass;
}

hybrid::HybridSolver::StepForces
DistributedHybridSolver::export_step_forces_global() {
  hybrid::HybridSolver::StepForces out;
  out.fresh = forces_fresh_;
  if (!forces_fresh_) return out;
  const auto global = dec_.global();
  out.nu_ax = mesh::Grid3D<double>(global[0], global[1], global[2]);
  out.nu_ay = out.nu_ax;
  out.nu_az = out.nu_ax;
  if (has_nu_) {
    allgather_bricks(nu_ax_, dec_, comm_, out.nu_ax);
    allgather_bricks(nu_ay_, dec_, comm_, out.nu_ay);
    allgather_bricks(nu_az_, dec_, comm_, out.nu_az);
  }
  out.ax = ax_;
  out.ay = ay_;
  out.az = az_;
  return out;
}

void DistributedHybridSolver::import_step_forces_global(
    const hybrid::HybridSolver::StepForces& sf) {
  if (!sf.fresh) {
    forces_fresh_ = false;
    return;
  }
  const auto global = dec_.global();
  if (sf.nu_ax.nx() != global[0] || sf.nu_ax.ny() != global[1] ||
      sf.nu_ax.nz() != global[2] || sf.ax.size() != cdm_.size())
    throw std::runtime_error(
        "distributed force cache does not match the configured shape");
  for (int i = 0; i < dec_.local_n(0); ++i)
    for (int j = 0; j < dec_.local_n(1); ++j)
      for (int k = 0; k < dec_.local_n(2); ++k) {
        const int gi = dec_.offset(0) + i, gj = dec_.offset(1) + j,
                  gk = dec_.offset(2) + k;
        nu_ax_.at(i, j, k) = sf.nu_ax.at(gi, gj, gk);
        nu_ay_.at(i, j, k) = sf.nu_ay.at(gi, gj, gk);
        nu_az_.at(i, j, k) = sf.nu_az.at(gi, gj, gk);
      }
  ax_ = sf.ax;
  ay_ = sf.ay;
  az_ = sf.az;
  forces_fresh_ = true;
}

void DistributedHybridSolver::gather_into(hybrid::HybridSolver& global,
                                          bool via_messages) {
  if (has_nu_ && !via_messages) {
    // Thread ranks share the global solver: each writes its own disjoint
    // brick in place.
    vlasov::PhaseSpace& gf = global.neutrinos();
    const std::size_t bytes = gf.block_size() * sizeof(float);
    for (int i = 0; i < dec_.local_n(0); ++i)
      for (int j = 0; j < dec_.local_n(1); ++j)
        for (int k = 0; k < dec_.local_n(2); ++k)
          std::memcpy(gf.block(dec_.offset(0) + i, dec_.offset(1) + j,
                               dec_.offset(2) + k),
                      f_.block(i, j, k), bytes);
  } else if (has_nu_) {
    // Process ranks do not: ship each brick to rank 0 as one message —
    // [6 x int32 placement header][blocks in i,j,k order] — and let rank 0
    // place them by the sender's own offsets (mirrors the shard-resume
    // placement logic, so the two paths agree on layout).
    constexpr int kGatherTag = 0x6a7;
    const std::size_t block_floats = f_.block_size();
    const auto pack = [&](std::vector<std::uint8_t>& buf) {
      const std::int32_t header[6] = {dec_.offset(0), dec_.offset(1),
                                      dec_.offset(2), dec_.local_n(0),
                                      dec_.local_n(1), dec_.local_n(2)};
      const std::size_t bytes = block_floats * sizeof(float);
      buf.resize(sizeof(header) + static_cast<std::size_t>(dec_.local_n(0)) *
                                      dec_.local_n(1) * dec_.local_n(2) *
                                      bytes);
      std::memcpy(buf.data(), header, sizeof(header));
      std::size_t at = sizeof(header);
      for (int i = 0; i < dec_.local_n(0); ++i)
        for (int j = 0; j < dec_.local_n(1); ++j)
          for (int k = 0; k < dec_.local_n(2); ++k) {
            std::memcpy(buf.data() + at, f_.block(i, j, k), bytes);
            at += bytes;
          }
    };
    if (comm_.rank() == 0) {
      vlasov::PhaseSpace& gf = global.neutrinos();
      const std::size_t bytes = gf.block_size() * sizeof(float);
      for (int i = 0; i < dec_.local_n(0); ++i)
        for (int j = 0; j < dec_.local_n(1); ++j)
          for (int k = 0; k < dec_.local_n(2); ++k)
            std::memcpy(gf.block(dec_.offset(0) + i, dec_.offset(1) + j,
                                 dec_.offset(2) + k),
                        f_.block(i, j, k), bytes);
      for (int r = 1; r < comm_.size(); ++r) {
        const auto buf = comm_.recv_bytes(r, kGatherTag);
        std::int32_t header[6];
        if (buf.size() < sizeof(header))
          throw std::runtime_error("gather_into: truncated brick message");
        std::memcpy(header, buf.data(), sizeof(header));
        std::size_t at = sizeof(header);
        if (buf.size() != sizeof(header) +
                              static_cast<std::size_t>(header[3]) *
                                  header[4] * header[5] * bytes)
          throw std::runtime_error("gather_into: brick message size "
                                   "disagrees with its placement header");
        for (int i = 0; i < header[3]; ++i)
          for (int j = 0; j < header[4]; ++j)
            for (int k = 0; k < header[5]; ++k) {
              std::memcpy(gf.block(header[0] + i, header[1] + j,
                                   header[2] + k),
                          buf.data() + at, bytes);
              at += bytes;
            }
      }
    } else {
      std::vector<std::uint8_t> buf;
      pack(buf);
      comm_.send_bytes(0, kGatherTag, buf.data(), buf.size());
    }
  }
  const auto forces = export_step_forces_global();  // collective
  if (comm_.rank() == 0) {
    global.cdm() = cdm_;
    if (forces.fresh) global.import_step_forces(forces);
  }
  comm_.barrier();
}

}  // namespace v6d::parallel
