#include "parallel/distributed_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "gravity/poisson.hpp"
#include "mesh/halo.hpp"
#include "mesh/interp.hpp"
#include "parallel/decomp_plan.hpp"
#include "parallel/field_exchange.hpp"
#include "vlasov/splitting.hpp"

namespace v6d::parallel {

namespace {

/// Local phase-space brick of the global f: same geometry with the origin
/// shifted to this rank's offset, interior blocks copied.
vlasov::PhaseSpace make_local_brick(const vlasov::PhaseSpace& global,
                                    const mesh::BrickDecomposition& dec) {
  vlasov::PhaseSpaceDims dims = global.dims();
  dims.nx = dec.local_n(0);
  dims.ny = dec.local_n(1);
  dims.nz = dec.local_n(2);
  vlasov::PhaseSpaceGeometry geom = global.geom();
  geom.x0 += dec.offset(0) * geom.dx;
  geom.y0 += dec.offset(1) * geom.dy;
  geom.z0 += dec.offset(2) * geom.dz;
  vlasov::PhaseSpace local(dims, geom);
  const std::size_t bytes = global.block_size() * sizeof(float);
  for (int i = 0; i < dims.nx; ++i)
    for (int j = 0; j < dims.ny; ++j)
      for (int k = 0; k < dims.nz; ++k)
        std::memcpy(local.block(i, j, k),
                    global.block(dec.offset(0) + i, dec.offset(1) + j,
                                 dec.offset(2) + k),
                    bytes);
  return local;
}

}  // namespace

DistributedHybridSolver::DistributedHybridSolver(
    const hybrid::HybridSolver& global, comm::Communicator& comm,
    std::array<int, 3> decomp)
    : comm_(comm),
      cart_(comm, decomp),
      pfft_(comm, global.options().pm_grid),
      cdm_(global.cdm()),
      box_(global.box()),
      background_(global.background()),
      options_(global.options()) {
  const auto& gd = global.neutrinos().dims();
  has_nu_ = gd.total_interior() > 0;

  DecompConstraints constraints;
  if (has_nu_) constraints.vlasov = {gd.nx, gd.ny, gd.nz};
  constraints.pm_grid = options_.pm_grid;
  constraints.vlasov_ghost = gd.ghost;
  validate_decomp(decomp, comm.size(), constraints);

  dec_ = mesh::BrickDecomposition({gd.nx, gd.ny, gd.nz}, decomp,
                                  cart_.coords());
  pm_dec_ = mesh::BrickDecomposition(
      {options_.pm_grid, options_.pm_grid, options_.pm_grid}, decomp,
      cart_.coords());

  if (has_nu_) f_ = make_local_brick(global.neutrinos(), dec_);

  patch_.box = box_;
  patch_.n_global = options_.pm_grid;
  for (int a = 0; a < 3; ++a) patch_.offset[a] = pm_dec_.offset(a);

  treepm_derived_ = hybrid::TreePmDerived::from(options_, box_);

  const int lx = pm_dec_.local_n(0), ly = pm_dec_.local_n(1),
            lz = pm_dec_.local_n(2);
  rho_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  rho_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gx_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gy_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gz_cdm_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gx_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gy_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  gz_nu_ = mesh::Grid3D<double>(lx, ly, lz, 2);
  nu_ax_ = mesh::Grid3D<double>(dec_.local_n(0), dec_.local_n(1),
                                dec_.local_n(2));
  nu_ay_ = nu_ax_;
  nu_az_ = nu_ax_;

  // Carry a fresh step-boundary force cache across the serial/distributed
  // seam (resume path): recomputing it would only match to rounding.
  const auto sf = global.export_step_forces();
  if (sf.fresh) import_step_forces_global(sf);
}

vlasov::HaloFiller DistributedHybridSolver::halo_filler() {
  return [this](vlasov::PhaseSpace& f) {
    ScopedTimer t(timers_, "halo");
    mesh::exchange_phase_space_halo(f, cart_);
  };
}

bool DistributedHybridSolver::owns_particle(std::size_t i) const {
  // Ownership by the containing PM cell: a disjoint, exhaustive split of
  // the replicated particle set.  Both the deposit and the force gather
  // must use exactly this rule or allreduce-summed contributions would be
  // dropped or doubled.
  const int n = options_.pm_grid;
  const double inv_h = n / box_;
  const double pos[3] = {cdm_.x[i], cdm_.y[i], cdm_.z[i]};
  for (int axis = 0; axis < 3; ++axis) {
    double c = pos[axis] * inv_h;
    c -= n * std::floor(c / n);
    const int cell = std::min(n - 1, static_cast<int>(std::floor(c)));
    if (cell < pm_dec_.offset(axis) ||
        cell >= pm_dec_.offset(axis) + pm_dec_.local_n(axis))
      return false;
  }
  return true;
}

void DistributedHybridSolver::deposit_cdm_density() {
  rho_cdm_.fill(0.0);
  if (cdm_.size() == 0) {
    mesh::fold_grid_halo(rho_cdm_, cart_);
    return;
  }
  // Particles are replicated; each rank deposits only the ones it owns
  // (owned_ is refreshed once per force assembly), spilling CIC weight
  // into ghosts that fold_grid_halo hands to the owning neighbor.
  std::vector<double> px, py, pz;
  px.reserve(owned_.size());
  py.reserve(owned_.size());
  pz.reserve(owned_.size());
  for (const std::size_t i : owned_) {
    px.push_back(cdm_.x[i]);
    py.push_back(cdm_.y[i]);
    pz.push_back(cdm_.z[i]);
  }
  mesh::deposit(rho_cdm_, patch_, px, py, pz, cdm_.mass,
                mesh::Assignment::kCic);
  mesh::fold_grid_halo(rho_cdm_, cart_);
}

void DistributedHybridSolver::deposit_nu_density() {
  // 0th moment of the local brick, injected onto the local PM brick cell
  // by cell (mirrors HybridSolver::deposit_nu_density; cell centers are
  // global coordinates because the brick geometry origin is shifted).
  const auto& d = f_.dims();
  const auto& g = f_.geom();
  mesh::Grid3D<double> rho_v(d.nx, d.ny, d.nz);
  vlasov::compute_density(f_, rho_v);

  rho_nu_.fill(0.0);
  const double cell_mass_factor = g.dvol();
  std::vector<double> px(1), py(1), pz(1);
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        px[0] = g.x(ix);
        py[0] = g.y(iy);
        pz[0] = g.z(iz);
        const double mass = rho_v.at(ix, iy, iz) * cell_mass_factor;
        mesh::deposit(rho_nu_, patch_, px, py, pz, mass,
                      mesh::Assignment::kCic);
      }
  mesh::fold_grid_halo(rho_nu_, cart_);
}

void DistributedHybridSolver::compute_forces(double a) {
  const double prefactor = hybrid::HybridSolver::poisson_prefactor(a);
  const int n = options_.pm_grid;

  // Ownership split of the replicated particle set, computed once per
  // force assembly (positions are fixed between the deposit and the
  // gather below).
  owned_.clear();
  for (std::size_t i = 0; i < cdm_.size(); ++i)
    if (owns_particle(i)) owned_.push_back(i);

  // --- densities (deposit + ghost fold) ---
  {
    ScopedTimer t(timers_, "pm");
    deposit_cdm_density();
  }
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov-moments");
    deposit_nu_density();
  }

  {
    ScopedTimer t(timers_, "pm");
    // Bricks -> x-slabs, then the distributed forward transforms.
    auto slab_cdm = brick_to_slab(rho_cdm_, pm_dec_, pfft_, cart_);
    pfft_.forward(slab_cdm);
    std::vector<fft::cplx> slab_nu;
    if (has_nu_) {
      slab_nu = brick_to_slab(rho_nu_, pm_dec_, pfft_, cart_);
      pfft_.forward(slab_nu);
    }

    gravity::PoissonOptions cdm_opts;
    cdm_opts.prefactor = prefactor;
    cdm_opts.deconvolve_order = 2;  // CIC
    cdm_opts.green = gravity::GreenFunction::kExactK2;
    gravity::PoissonOptions cdm_long = cdm_opts;
    cdm_long.longrange_split_rs =
        options_.enable_tree ? treepm_derived_.rs : 0.0;
    gravity::PoissonOptions nu_opts;
    nu_opts.prefactor = prefactor;
    nu_opts.deconvolve_order = 0;

    // One force set = the combined potential of both species under the
    // given CDM green function, differentiated spectrally (-i k_d) and
    // brought back to brick layout per component.  phi_k is evaluated once
    // per mode (as in the serial PoissonSolver::solve_forces); only the
    // cheap -i k_d multiply runs per direction.
    auto solve_set = [&](const gravity::PoissonOptions& c_opts,
                         mesh::Grid3D<double>& gx, mesh::Grid3D<double>& gy,
                         mesh::Grid3D<double>& gz) {
      std::vector<fft::cplx> phi(slab_cdm.size());
      std::size_t m = 0;
      pfft_.for_each_mode(
          slab_cdm, [&](int bx, int by, int bz, fft::cplx& value) {
            fft::cplx phi_k =
                value * gravity::green_times_window(bx, by, bz, n, n, n,
                                                    box_, box_, box_, c_opts);
            if (has_nu_)
              phi_k += slab_nu[m] *
                       gravity::green_times_window(bx, by, bz, n, n, n, box_,
                                                   box_, box_, nu_opts);
            phi[m] = phi_k;
            ++m;
          });
      for (int d = 0; d < 3; ++d) {
        std::vector<fft::cplx> spec(phi.size());
        m = 0;
        pfft_.for_each_mode(
            slab_cdm, [&](int bx, int by, int bz, fft::cplx&) {
              const int bin = d == 0 ? bx : d == 1 ? by : bz;
              const double k_d = gravity::fft_wavenumber(bin, n, box_);
              spec[m] = fft::cplx(0.0, -1.0) * k_d * phi[m];
              ++m;
            });
        pfft_.inverse_normalized(spec);
        auto& out = d == 0 ? gx : d == 1 ? gy : gz;
        slab_to_brick(spec, pfft_, pm_dec_, cart_, out);
      }
      mesh::exchange_grid_halo(gx, cart_);
      mesh::exchange_grid_halo(gy, cart_);
      mesh::exchange_grid_halo(gz, cart_);
    };
    solve_set(cdm_long, gx_cdm_, gy_cdm_, gz_cdm_);
    solve_set(cdm_opts, gx_nu_, gy_nu_, gz_nu_);

    // Particle long-range gather: each rank interpolates at the particles
    // its brick owns (the same split as the deposit), the disjoint
    // contributions are summed into the replicated acceleration arrays.
    ax_.assign(cdm_.size(), 0.0);
    ay_.assign(cdm_.size(), 0.0);
    az_.assign(cdm_.size(), 0.0);
    if (cdm_.size() > 0) {
      for (const std::size_t i : owned_) {
        ax_[i] = mesh::interpolate(gx_cdm_, patch_, cdm_.x[i], cdm_.y[i],
                                   cdm_.z[i], mesh::Assignment::kCic);
        ay_[i] = mesh::interpolate(gy_cdm_, patch_, cdm_.x[i], cdm_.y[i],
                                   cdm_.z[i], mesh::Assignment::kCic);
        az_[i] = mesh::interpolate(gz_cdm_, patch_, cdm_.x[i], cdm_.y[i],
                                   cdm_.z[i], mesh::Assignment::kCic);
      }
      comm_.allreduce_sum(ax_.data(), ax_.size());
      comm_.allreduce_sum(ay_.data(), ay_.size());
      comm_.allreduce_sum(az_.data(), az_.size());
    }

    // Vlasov-grid acceleration sampling on the local brick.
    if (has_nu_) {
      const auto& d = f_.dims();
      const auto& g = f_.geom();
      for (int ix = 0; ix < d.nx; ++ix)
        for (int iy = 0; iy < d.ny; ++iy)
          for (int iz = 0; iz < d.nz; ++iz) {
            const double x = g.x(ix), y = g.y(iy), z = g.z(iz);
            nu_ax_.at(ix, iy, iz) = mesh::interpolate(
                gx_nu_, patch_, x, y, z, mesh::Assignment::kCic);
            nu_ay_.at(ix, iy, iz) = mesh::interpolate(
                gy_nu_, patch_, x, y, z, mesh::Assignment::kCic);
            nu_az_.at(ix, iy, iz) = mesh::interpolate(
                gz_nu_, patch_, x, y, z, mesh::Assignment::kCic);
          }
    }
  }

  // --- tree short-range: replicated over the replicated particle set,
  //     identical on every rank (the serial solver's exact block) ---
  if (options_.enable_tree && cdm_.size() > 0) {
    ScopedTimer t(timers_, "tree");
    hybrid::add_tree_accelerations(cdm_, box_, options_, treepm_derived_,
                                   prefactor, ax_, ay_, az_);
  }
  forces_fresh_ = true;
}

void DistributedHybridSolver::step(double a0, double a1) {
  const double a_mid = 0.5 * (a0 + a1);
  if (!forces_fresh_) compute_forces(a0);

  const double kick_pre = background_.kick_factor(a0, a_mid);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    vlasov::kick_half(f_, nu_ax_, nu_ay_, nu_az_, kick_pre, options_.kernel);
  }
  nbody::kick(cdm_, ax_, ay_, az_, kick_pre);

  const double drift_f = background_.drift_factor(a0, a1);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    vlasov::drift_full(f_, drift_f, options_.kernel, halo_filler());
  }
  nbody::drift(cdm_, drift_f, box_);

  compute_forces(a1);

  const double kick_post = background_.kick_factor(a_mid, a1);
  if (has_nu_) {
    ScopedTimer t(timers_, "vlasov");
    vlasov::kick_half(f_, nu_ax_, nu_ay_, nu_az_, kick_post, options_.kernel);
  }
  nbody::kick(cdm_, ax_, ay_, az_, kick_post);
}

double DistributedHybridSolver::suggest_next_a(double a0, double da_max) {
  if (!has_nu_) return a0 + da_max;
  // Same backoff iteration as the serial solver; the local shift bound is
  // geometry-only today, but the allreduce keeps every rank's decision
  // identical by construction even if it becomes state-dependent.
  return hybrid::cfl_limited_step(a0, da_max, options_.cfl, [&](double a1) {
    return comm_.allreduce_max(
        vlasov::max_position_shift(f_, background_.drift_factor(a0, a1)));
  });
}

double DistributedHybridSolver::total_mass() {
  const double local = has_nu_ ? f_.total_mass() : 0.0;
  double mass = comm_.allreduce_sum(local);
  mass += cdm_.mass * static_cast<double>(cdm_.size());
  return mass;
}

hybrid::HybridSolver::StepForces
DistributedHybridSolver::export_step_forces_global() {
  hybrid::HybridSolver::StepForces out;
  out.fresh = forces_fresh_;
  if (!forces_fresh_) return out;
  const auto global = dec_.global();
  out.nu_ax = mesh::Grid3D<double>(global[0], global[1], global[2]);
  out.nu_ay = out.nu_ax;
  out.nu_az = out.nu_ax;
  if (has_nu_) {
    allgather_bricks(nu_ax_, dec_, comm_, out.nu_ax);
    allgather_bricks(nu_ay_, dec_, comm_, out.nu_ay);
    allgather_bricks(nu_az_, dec_, comm_, out.nu_az);
  }
  out.ax = ax_;
  out.ay = ay_;
  out.az = az_;
  return out;
}

void DistributedHybridSolver::import_step_forces_global(
    const hybrid::HybridSolver::StepForces& sf) {
  if (!sf.fresh) {
    forces_fresh_ = false;
    return;
  }
  const auto global = dec_.global();
  if (sf.nu_ax.nx() != global[0] || sf.nu_ax.ny() != global[1] ||
      sf.nu_ax.nz() != global[2] || sf.ax.size() != cdm_.size())
    throw std::runtime_error(
        "distributed force cache does not match the configured shape");
  for (int i = 0; i < dec_.local_n(0); ++i)
    for (int j = 0; j < dec_.local_n(1); ++j)
      for (int k = 0; k < dec_.local_n(2); ++k) {
        const int gi = dec_.offset(0) + i, gj = dec_.offset(1) + j,
                  gk = dec_.offset(2) + k;
        nu_ax_.at(i, j, k) = sf.nu_ax.at(gi, gj, gk);
        nu_ay_.at(i, j, k) = sf.nu_ay.at(gi, gj, gk);
        nu_az_.at(i, j, k) = sf.nu_az.at(gi, gj, gk);
      }
  ax_ = sf.ax;
  ay_ = sf.ay;
  az_ = sf.az;
  forces_fresh_ = true;
}

void DistributedHybridSolver::gather_into(hybrid::HybridSolver& global) {
  if (has_nu_) {
    vlasov::PhaseSpace& gf = global.neutrinos();
    const std::size_t bytes = gf.block_size() * sizeof(float);
    for (int i = 0; i < dec_.local_n(0); ++i)
      for (int j = 0; j < dec_.local_n(1); ++j)
        for (int k = 0; k < dec_.local_n(2); ++k)
          std::memcpy(gf.block(dec_.offset(0) + i, dec_.offset(1) + j,
                               dec_.offset(2) + k),
                      f_.block(i, j, k), bytes);
  }
  const auto forces = export_step_forces_global();  // collective
  if (comm_.rank() == 0) {
    global.cdm() = cdm_;
    if (forces.fresh) global.import_step_forces(forces);
  }
  comm_.barrier();
}

}  // namespace v6d::parallel
