#include "vlasov/sl_mpp5.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace v6d::vlasov {

namespace {

inline float minmod(float a, float b) {
  if (a * b <= 0.0f) return 0.0f;
  return std::fabs(a) < std::fabs(b) ? a : b;
}

inline float minmod4(float a, float b, float c, float d) {
  return minmod(minmod(a, b), minmod(c, d));
}

inline float median(float a, float b, float c) {
  return a + minmod(b - a, c - a);
}

}  // namespace

FluxWeights FluxWeights::compute(double theta) {
  // Derived from the degree-5 Lagrange interpolant of the primitive function
  // on interfaces {i-5/2 .. i+5/2}; see sl_mpp5.hpp.  Each weight vanishes
  // at theta = 0 and the set satisfies sum w_k = theta (constant preserved)
  // and w = (0,0,1,0,0) at theta = 1 (whole-cell shift is exact).
  const double t = theta;
  const double t2 = t * t;
  FluxWeights fw;
  fw.w[0] = t * (1.0 - t2) * (4.0 - t2) / 120.0;
  fw.w[1] = t * (1.0 - t2) * (4.0 * t2 - 5.0 * t - 26.0) / 120.0;
  fw.w[2] =
      t * (((6.0 * t - 15.0) * t - 40.0) * t2 + 75.0 * t + 94.0) / 120.0;
  fw.w[3] = t * (3.0 - t) * (1.0 - t) * (18.0 - t - 4.0 * t2) / 120.0;
  fw.w[4] = -t * (3.0 - t) * (2.0 - t) * (1.0 - t2) / 120.0;
  return fw;
}

int required_ghost(double xi) {
  const int s = static_cast<int>(std::floor(xi));
  const double theta = xi - s;
  // Exact integer shift: the update only reads c[i - s].
  if (theta == 0.0) return std::abs(s);
  // Fractional flux at interface i+1/2 reads donor stencil cells
  // [-s-3, n+1-s]: s+3 left ghosts and 2-s right ghosts.  The symmetric
  // requirement max(s+3, 2-s) is 3 for every |xi| <= 1, which is why the
  // production halo width equals kStencilGhost.
  return std::max(s + kStencilGhost, 2 - s);
}

float mp5_interface_value(float fm2, float fm1, float f0, float fp1,
                          float fp2) {
  return (2.0f * fm2 - 13.0f * fm1 + 47.0f * f0 + 27.0f * fp1 - 3.0f * fp2) /
         60.0f;
}

// The scalar kernel is the paper's "w/o SIMD instructions" baseline, so it
// is pinned to scalar codegen: letting the compiler auto-vectorize it would
// silently turn the baseline into a (worse) SIMD implementation and destroy
// the Table-1 comparison.
__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
float mp_limit(float g, float fm2, float fm1, float f0, float fp1, float fp2,
               float alpha) {
  // Quick accept: candidate already between f0 and the monotonicity bound.
  const float f_mp = f0 + minmod(fp1 - f0, alpha * (f0 - fm1));
  if ((g - f0) * (g - f_mp) <= 1e-20f) return g;

  // Curvatures and the M4 bound of Suresh & Huynh (1997).
  const float dm1 = fm2 - 2.0f * fm1 + f0;
  const float d0 = fm1 - 2.0f * f0 + fp1;
  const float dp1 = f0 - 2.0f * fp1 + fp2;
  const float d_half_p =
      minmod4(4.0f * d0 - dp1, 4.0f * dp1 - d0, d0, dp1);  // at i+1/2
  const float d_half_m =
      minmod4(4.0f * dm1 - d0, 4.0f * d0 - dm1, dm1, d0);  // at i-1/2

  const float f_ul = f0 + alpha * (f0 - fm1);
  const float f_av = 0.5f * (f0 + fp1);
  const float f_md = f_av - 0.5f * d_half_p;
  const float f_lc = f0 + 0.5f * std::min(1.0f, alpha) * (f0 - fm1) +
                     (alpha / 3.0f) * d_half_m;

  const float f_min = std::max(std::min({f0, fp1, f_md}),
                               std::min({f0, f_ul, f_lc}));
  const float f_max = std::min(std::max({f0, fp1, f_md}),
                               std::max({f0, f_ul, f_lc}));
  return median(g, f_min, f_max);
}

__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
void advect_line_scalar(const float* in, float* out, int n, int ghost,
                        double xi, Limiter limiter) {
  assert(ghost >= required_ghost(xi));
  const int s = static_cast<int>(std::floor(xi));
  const double theta = xi - s;
  if (theta == 0.0) {
    // Exact whole-cell translation (the semi-Lagrangian scheme is exact
    // for integer shifts; no flux computation needed).
    const float* c = in + ghost;
    for (int i = 0; i < n; ++i) out[i] = c[i - s];
    return;
  }
  const FluxWeights fw = FluxWeights::compute(theta);
  const float w0 = static_cast<float>(fw.w[0]);
  const float w1 = static_cast<float>(fw.w[1]);
  const float w2 = static_cast<float>(fw.w[2]);
  const float w3 = static_cast<float>(fw.w[3]);
  const float w4 = static_cast<float>(fw.w[4]);
  const float theta_f = static_cast<float>(theta);
  const float inv_theta =
      theta > 1e-12 ? static_cast<float>(1.0 / theta) : 0.0f;
  const float alpha = mp_alpha_for(theta);

  const float* c = in + ghost;  // c[i] = cell i
  // Fractional flux through the right interface of shifted cell j = i - s,
  // for interfaces i + 1/2 with i = -1 .. n-1 (stored at index i + 1).
  std::vector<float> flux(static_cast<std::size_t>(n) + 1);
  for (int i = -1; i < n; ++i) {
    const int j = i - s;
    float F = w0 * c[j - 2] + w1 * c[j - 1] + w2 * c[j] + w3 * c[j + 1] +
              w4 * c[j + 2];
    if (limiter != Limiter::kNone && theta > 1e-12) {
      const float g = F * inv_theta;
      const float g_lim =
          mp_limit(g, c[j - 2], c[j - 1], c[j], c[j + 1], c[j + 2], alpha);
      F = theta_f * g_lim;
    }
    if (limiter == Limiter::kMpp) {
      // Positivity: the donor cell j has exactly one outgoing (fractional)
      // flux, so 0 <= F <= f_j keeps every updated average non-negative.
      F = std::max(0.0f, std::min(F, c[j]));
    }
    flux[static_cast<std::size_t>(i) + 1] = F;
  }
  for (int i = 0; i < n; ++i) {
    out[i] = c[i - s] - flux[static_cast<std::size_t>(i) + 1] +
             flux[static_cast<std::size_t>(i)];
  }
}

void advect_line_periodic(float* f, int n, double xi, Limiter limiter) {
  const int ghost = required_ghost(xi);
  std::vector<float> padded(static_cast<std::size_t>(n) + 2 * ghost);
  for (int i = -ghost; i < n + ghost; ++i) {
    int j = ((i % n) + n) % n;
    padded[static_cast<std::size_t>(i + ghost)] = f[j];
  }
  advect_line_scalar(padded.data(), f, n, ghost, xi, limiter);
}

namespace {

// Semi-discrete RHS for the Eulerian MP5 baseline: L(f)_i =
// -xi * (fhat_{i+1/2} - fhat_{i-1/2}) with upwind MP5 interface values.
// Periodic in i; positive xi orientation (callers mirror for xi < 0).
void mp5_rhs(const std::vector<float>& f, std::vector<float>& rhs, int n,
             float xi) {
  auto at = [&](int i) { return f[static_cast<std::size_t>(((i % n) + n) % n)]; };
  std::vector<float> fhat(static_cast<std::size_t>(n));  // fhat[i] = f_{i+1/2}
  for (int i = 0; i < n; ++i) {
    const float g = mp5_interface_value(at(i - 2), at(i - 1), at(i), at(i + 1),
                                        at(i + 2));
    fhat[static_cast<std::size_t>(i)] =
        mp_limit(g, at(i - 2), at(i - 1), at(i), at(i + 1), at(i + 2));
  }
  for (int i = 0; i < n; ++i) {
    const float fm = fhat[static_cast<std::size_t>(((i - 1) % n + n) % n)];
    rhs[static_cast<std::size_t>(i)] =
        -xi * (fhat[static_cast<std::size_t>(i)] - fm);
  }
}

}  // namespace

void advect_line_periodic_rk3_mp5(float* f, int n, double xi) {
  assert(std::fabs(xi) <= 1.0);
  // Mirror leftward flows onto the positive-velocity code path.
  if (xi < 0.0) {
    std::reverse(f, f + n);
    advect_line_periodic_rk3_mp5(f, n, -xi);
    std::reverse(f, f + n);
    return;
  }
  const float x = static_cast<float>(xi);
  std::vector<float> u0(f, f + n), u1(static_cast<std::size_t>(n)),
      u2(static_cast<std::size_t>(n)), rhs(static_cast<std::size_t>(n));

  mp5_rhs(u0, rhs, n, x);
  for (int i = 0; i < n; ++i)
    u1[static_cast<std::size_t>(i)] =
        u0[static_cast<std::size_t>(i)] + rhs[static_cast<std::size_t>(i)];

  mp5_rhs(u1, rhs, n, x);
  for (int i = 0; i < n; ++i)
    u2[static_cast<std::size_t>(i)] = 0.75f * u0[static_cast<std::size_t>(i)] +
                                      0.25f * (u1[static_cast<std::size_t>(i)] +
                                               rhs[static_cast<std::size_t>(i)]);

  mp5_rhs(u2, rhs, n, x);
  for (int i = 0; i < n; ++i)
    f[i] = (1.0f / 3.0f) * u0[static_cast<std::size_t>(i)] +
           (2.0f / 3.0f) * (u2[static_cast<std::size_t>(i)] +
                            rhs[static_cast<std::size_t>(i)]);
}

}  // namespace v6d::vlasov
