#include "vlasov/splitting.hpp"

#include <algorithm>
#include <cmath>

namespace v6d::vlasov {

HaloFiller periodic_halo_filler() {
  return [](PhaseSpace& f) { f.fill_ghosts_periodic(); };
}

void kick_half(PhaseSpace& f, const mesh::Grid3D<double>& gx,
               const mesh::Grid3D<double>& gy,
               const mesh::Grid3D<double>& gz, double dt,
               SweepKernel kernel) {
  if (dt == 0.0) return;
  // Eq. (5) applies Dux, then Duy, then Duz (rightmost operator first).
  // The fused kick runs all three sweeps per cache-hot velocity block; it
  // is bit-identical to three sequential advect_velocity_axis passes
  // because velocity sweeps never couple spatial cells.
  advect_velocity_all(f, gx, gy, gz, dt, kernel);
}

void drift_full(PhaseSpace& f, double drift_factor, SweepKernel kernel,
                const HaloFiller& halo) {
  if (drift_factor == 0.0) return;
  // The fixed spatial halo (3 layers) supports |xi| < 1; larger drifts are
  // subcycled with a halo refill per pass.  Production steps are CFL-
  // limited below 1 anyway, so this is a safety net, not a hot path.
  const double max_shift = max_position_shift(f, drift_factor);
  const int cycles = std::max(1, static_cast<int>(std::ceil(max_shift / 0.999)));
  const double sub = drift_factor / cycles;
  // Eq. (5) order: Dz, then Dy, then Dx (rightmost first).  Each sweep
  // invalidates ghosts, so the halo filler runs before every axis.
  for (int axis : {2, 1, 0}) {
    for (int c = 0; c < cycles; ++c) {
      halo(f);
      advect_position_axis(f, axis, sub, kernel);
    }
  }
}

void split_step_fixed_accel(PhaseSpace& f, const mesh::Grid3D<double>& gx,
                            const mesh::Grid3D<double>& gy,
                            const mesh::Grid3D<double>& gz,
                            const SplitStepConfig& config,
                            const HaloFiller& halo) {
  kick_half(f, gx, gy, gz, config.kick_pre, config.kernel);
  drift_full(f, config.drift, config.kernel, halo);
  kick_half(f, gx, gy, gz, config.kick_post, config.kernel);
}

}  // namespace v6d::vlasov
