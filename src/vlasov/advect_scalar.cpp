#include "vlasov/advect_kernels.hpp"

namespace v6d::vlasov {

void AdvectWorkspace::ensure(int n, int ghost, int lanes) {
  const std::size_t need_in =
      static_cast<std::size_t>(n + 2 * ghost) * lanes;
  const std::size_t need_out = static_cast<std::size_t>(n) * lanes;
  const std::size_t need_flux = static_cast<std::size_t>(n + 1) * lanes;
  if (in.size() < need_in) in.resize(need_in);
  if (out.size() < need_out) out.resize(need_out);
  if (flux.size() < need_flux) flux.resize(need_flux);
}

void advect_line_strided_scalar(const float* src, std::ptrdiff_t stride,
                                float* dst, std::ptrdiff_t dst_stride, int n,
                                double xi, Limiter limiter, GhostMode ghosts,
                                AdvectWorkspace& ws) {
  const int ghost = required_ghost(xi);
  ws.ensure(n, ghost, 1);
  float* in = ws.in.data();
  for (int k = -ghost; k < n + ghost; ++k) {
    const bool interior = k >= 0 && k < n;
    in[k + ghost] = (interior || ghosts == GhostMode::kFromSource)
                        ? src[k * stride]
                        : 0.0f;
  }
  advect_line_scalar(in, ws.out.data(), n, ghost, xi, limiter);
  for (int i = 0; i < n; ++i) dst[i * dst_stride] = ws.out[i];
}

}  // namespace v6d::vlasov
