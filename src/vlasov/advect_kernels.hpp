// Line-sweep kernels for the six split advection directions (§5.3).
//
// Every sweep in the 6-D solver reduces to: advance a batch of 1-D lines by
// a common shift xi.  Three implementations are provided:
//
//  * scalar  — one line at a time; the correctness reference.
//  * simd    — L lines whose *lanes* are adjacent in memory (the paper's
//              Fig. 1 case: vectorize across the contiguous uz index while
//              sweeping any other axis).  Every stencil access is one
//              contiguous vector load.
//  * lat     — the sweep axis itself is the contiguous one (the paper's
//              Fig. 2 problem).  L whole lines are staged through an
//              in-register transpose ("load and transpose", Fig. 3) so the
//              inner loop still performs contiguous vector loads.
//
// All three materialize the line batch into a ghost-padded workspace, run
// the shared SL-MPP5 flux kernel, and write back — ghost values come either
// from the source array (position sweeps, where halo exchange has filled
// spatial ghosts) or are zero (velocity sweeps, where f has compact support
// inside the velocity cube).
#pragma once

#include <cstddef>

#include "common/aligned.hpp"
#include "simd/pack.hpp"
#include "vlasov/sl_mpp5.hpp"

namespace v6d::vlasov {

/// Lanes processed per SIMD/LAT call.  Capped at 8 so that production
/// velocity grids (>= 8 cells per axis) always form full lane groups; the
/// paper's SVE kernels use 16 lanes against 64-cell velocity grids, the
/// same groups-per-line ratio.
inline constexpr int kLanes =
    simd::kNativeFloatWidth < 8 ? simd::kNativeFloatWidth : 8;

enum class GhostMode {
  kFromSource,  // ghost cells exist in the source array at the same stride
  kZero,        // out-of-range cells are zero (velocity-space boundary)
};

/// Reusable scratch for the sweep kernels; ensure() grows buffers as needed.
struct AdvectWorkspace {
  AlignedVector<float> in;    // (n + 2*ghost) * lanes
  AlignedVector<float> out;   // n * lanes
  AlignedVector<float> flux;  // (n + 1) * lanes

  void ensure(int n, int ghost, int lanes);
};

/// Scalar reference: one strided line. src/dst address cell 0; cells are
/// `stride` floats apart. src and dst may alias.
void advect_line_strided_scalar(const float* src, std::ptrdiff_t stride,
                                float* dst, std::ptrdiff_t dst_stride, int n,
                                double xi, Limiter limiter, GhostMode ghosts,
                                AdvectWorkspace& ws);

/// SIMD: kLanes lines whose lane index is memory-contiguous. src addresses
/// (cell 0, lane 0); cells are `cell_stride` floats apart; lane l of cell i
/// lives at src + i*cell_stride + l. src and dst may alias.
void advect_lines_simd(const float* src, std::ptrdiff_t cell_stride,
                       float* dst, std::ptrdiff_t dst_cell_stride, int n,
                       double xi, Limiter limiter, GhostMode ghosts,
                       AdvectWorkspace& ws);

/// Like advect_lines_simd but with a distinct shift per lane (the spatial z
/// sweep: lanes run over uz whose velocity varies).  Vectorizes when all
/// lanes share floor(xi); otherwise falls back to per-lane scalar sweeps.
void advect_lines_simd_multi(const float* src, std::ptrdiff_t cell_stride,
                             float* dst, std::ptrdiff_t dst_cell_stride,
                             int n, const double* xi_per_lane,
                             Limiter limiter, GhostMode ghosts,
                             AdvectWorkspace& ws);

/// LAT: kLanes lines along the contiguous axis. Line l starts at
/// src + l*line_stride; cells within a line are adjacent floats.
/// src and dst may alias.
void advect_lines_lat(const float* src, std::ptrdiff_t line_stride,
                      float* dst, std::ptrdiff_t dst_line_stride, int n,
                      double xi, Limiter limiter, GhostMode ghosts,
                      AdvectWorkspace& ws);

/// "Naive SIMD" variant of the LAT case used by the Table-1 bench: lanes are
/// gathered element-by-element from strided lines (the slow data layout of
/// the paper's Fig. 2) instead of transposed in registers.
void advect_lines_lat_gather(const float* src, std::ptrdiff_t line_stride,
                             float* dst, std::ptrdiff_t dst_line_stride,
                             int n, double xi, Limiter limiter,
                             GhostMode ghosts, AdvectWorkspace& ws);

}  // namespace v6d::vlasov
