#include <cmath>

#include "vlasov/advect_kernels.hpp"
#include "vlasov/advect_vec_impl.hpp"

namespace v6d::vlasov {

namespace {

using VS = detail::VecShift<kLanes>;

void run_vec(const float* src, std::ptrdiff_t cell_stride, float* dst,
             std::ptrdiff_t dst_cell_stride, int n, const VS& vs,
             Limiter limiter, GhostMode ghosts, AdvectWorkspace& ws) {
  using P = simd::Pack<float, kLanes>;
  const int ghost = vs.max_ghost;
  ws.ensure(n, ghost, kLanes);

  if (ghosts == GhostMode::kFromSource) {
    // Ghost cells are materialized in the source at the same stride
    // (position sweeps after halo exchange): feed the kernel in place.
    detail::sl_mpp5_kernel_vec<kLanes>(
        src - static_cast<std::ptrdiff_t>(ghost) * cell_stride, cell_stride,
        ws.out.data(), kLanes, n, ghost, vs, limiter, ws.flux.data());
  } else {
    // Velocity-space boundary: stage through a zero-padded scratch block.
    float* in = ws.in.data();
    const P zero = P::zero();
    for (int k = -ghost; k < 0; ++k) zero.store(in + (k + ghost) * kLanes);
    for (int k = 0; k < n; ++k)
      P::load(src + static_cast<std::ptrdiff_t>(k) * cell_stride)
          .store(in + (k + ghost) * kLanes);
    for (int k = n; k < n + ghost; ++k)
      zero.store(in + (k + ghost) * kLanes);
    detail::sl_mpp5_kernel_vec<kLanes>(in, kLanes, ws.out.data(), kLanes, n,
                                       ghost, vs, limiter, ws.flux.data());
  }

  for (int i = 0; i < n; ++i)
    P::load(ws.out.data() + static_cast<std::ptrdiff_t>(i) * kLanes)
        .store(dst + static_cast<std::ptrdiff_t>(i) * dst_cell_stride);
}

}  // namespace

void advect_lines_simd(const float* src, std::ptrdiff_t cell_stride,
                       float* dst, std::ptrdiff_t dst_cell_stride, int n,
                       double xi, Limiter limiter, GhostMode ghosts,
                       AdvectWorkspace& ws) {
  const VS vs = VS::uniform(xi, limiter);
  run_vec(src, cell_stride, dst, dst_cell_stride, n, vs, limiter, ghosts, ws);
}

void advect_lines_simd_multi(const float* src, std::ptrdiff_t cell_stride,
                             float* dst, std::ptrdiff_t dst_cell_stride,
                             int n, const double* xi_per_lane,
                             Limiter limiter, GhostMode ghosts,
                             AdvectWorkspace& ws) {
  bool uniform_floor = true;
  const int s0 = static_cast<int>(std::floor(xi_per_lane[0]));
  for (int l = 1; l < kLanes; ++l)
    if (static_cast<int>(std::floor(xi_per_lane[l])) != s0) {
      uniform_floor = false;
      break;
    }
  if (uniform_floor) {
    const VS vs = VS::per_lane(xi_per_lane, limiter);
    run_vec(src, cell_stride, dst, dst_cell_stride, n, vs, limiter, ghosts,
            ws);
    return;
  }
  // Mixed integer shifts across lanes (the group straddles u = 0 with
  // |xi| near 1): per-lane scalar fallback.
  for (int l = 0; l < kLanes; ++l)
    advect_line_strided_scalar(src + l, cell_stride, dst + l,
                               dst_cell_stride, n, xi_per_lane[l], limiter,
                               ghosts, ws);
}

}  // namespace v6d::vlasov
