#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "vlasov/sweeps.hpp"

namespace v6d::vlasov {

// Position sweeps (paper Eq. 3): advection speed along spatial axis i is
// u_i / a^2; drift_factor carries the time integral of dt/a^2.  For the x
// and y sweeps the speed is constant across the contiguous uz lanes (it
// depends on the iux / iuy index), so lane groups share one xi.  For the z
// sweep the speed varies per lane (it *is* u_z), so the per-lane-shift
// kernel is used.
//
// The per-line shift depends only on the velocity index, never on the
// spatial line, so the whole shift table is computed once per sweep and
// shared by every thread — the hot loop reduces to table lookups plus the
// line kernels.  Threading is over spatial lines (collapse(2)); each
// thread keeps one reusable AdvectWorkspace so the kernels never allocate
// in steady state.
//
// All entry points (full line, interior range, boundary shells) funnel
// through sweep_lines below, which updates axis cells [lo, hi) of every
// interior line reading from a caller-supplied source base — f itself for
// the full/interior sweeps, the pre-sweep boundary windows for the
// overlapped boundary sweep.  The flux at every interface is a pure
// function of its local stencil, so any partition of a line into ranges
// with correct source values reproduces the full-line result bit for bit.

namespace {

// Interior transverse extents of `axis` in ascending-axis order.
inline void transverse_extents(const PhaseSpaceDims& d, int axis, int& t1n,
                               int& t2n) {
  t1n = axis == 0 ? d.ny : d.nx;
  t2n = axis == 2 ? d.ny : d.nz;
}

// Block of spatial cell with coordinate `a` along `axis` and transverse
// coordinates (t1, t2) in ascending-axis order.
inline float* block_at(PhaseSpace& f, int axis, int a, int t1, int t2) {
  int idx[3];
  idx[axis] = a;
  int tpos = 0;
  for (int t = 0; t < 3; ++t) {
    if (t == axis) continue;
    idx[t] = tpos == 0 ? t1 : t2;
    ++tpos;
  }
  return f.block(idx[0], idx[1], idx[2]);
}

// Core sweep: advect axis cells [lo, hi) of every interior line, writing f
// in place.  src_at(t1, t2) returns the *source* pointer of axis cell `lo`
// for line (t1, t2); source cells are src_stride floats apart and must
// expose valid values over [lo - required_ghost, hi + required_ghost).
template <class SrcAt>
void sweep_lines(PhaseSpace& f, int axis, double drift_factor,
                 SweepKernel kernel, int lo, int hi, SrcAt&& src_at,
                 std::ptrdiff_t src_stride) {
  if (hi <= lo) return;
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double dx = axis == 0 ? g.dx : axis == 1 ? g.dy : g.dz;
  const std::ptrdiff_t dst_stride =
      static_cast<std::ptrdiff_t>(axis == 0   ? f.block_stride_x()
                                  : axis == 1 ? f.block_stride_y()
                                              : f.block_stride_z()) *
      static_cast<std::ptrdiff_t>(f.block_size());

  int t1n = 0, t2n = 0;
  transverse_extents(d, axis, t1n, t2n);
  const SweepKernel resolved =
      simd::resolve_sweep_kernel(kernel, /*contiguous_axis=*/false);
  const bool scalar = resolved == SweepKernel::kScalar;
  const double inv_dx_drift = drift_factor / dx;
  const int n_cells = hi - lo;

  // Shift tables, hoisted out of the spatial loops: for the x/y sweeps xi
  // is indexed by iux (resp. iuy); for the z sweep it is indexed by iuz
  // (one entry per lane of a group).
  std::vector<double> xi_table;
  if (axis == 0) {
    xi_table.resize(static_cast<std::size_t>(d.nux));
    for (int a = 0; a < d.nux; ++a) xi_table[a] = g.ux(a) * inv_dx_drift;
  } else if (axis == 1) {
    xi_table.resize(static_cast<std::size_t>(d.nuy));
    for (int b = 0; b < d.nuy; ++b) xi_table[b] = g.uy(b) * inv_dx_drift;
  } else {
    xi_table.resize(static_cast<std::size_t>(d.nuz));
    for (int c = 0; c < d.nuz; ++c) xi_table[c] = g.uz(c) * inv_dx_drift;
  }

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    AdvectWorkspace ws;
#ifdef _OPENMP
#pragma omp for collapse(2) schedule(static)
#endif
    for (int t1 = 0; t1 < t1n; ++t1) {
      for (int t2 = 0; t2 < t2n; ++t2) {
        float* dst_block = block_at(f, axis, lo, t1, t2);
        const float* src_block = src_at(t1, t2);
        for (int a = 0; a < d.nux; ++a) {
          for (int b = 0; b < d.nuy; ++b) {
            if (axis == 0 || axis == 1) {
              const double xi = xi_table[axis == 0 ? a : b];
              int c = 0;
              for (; !scalar && c + kLanes <= d.nuz; c += kLanes) {
                const std::size_t vi = f.velocity_index(a, b, c);
                advect_lines_simd(src_block + vi, src_stride, dst_block + vi,
                                  dst_stride, n_cells, xi, Limiter::kMpp,
                                  GhostMode::kFromSource, ws);
              }
              for (; c < d.nuz; ++c) {
                const std::size_t vi = f.velocity_index(a, b, c);
                advect_line_strided_scalar(src_block + vi, src_stride,
                                           dst_block + vi, dst_stride,
                                           n_cells, xi, Limiter::kMpp,
                                           GhostMode::kFromSource, ws);
              }
            } else {
              // z sweep: xi varies across the uz lanes.
              int c = 0;
              for (; !scalar && c + kLanes <= d.nuz; c += kLanes) {
                const std::size_t vi = f.velocity_index(a, b, c);
                advect_lines_simd_multi(src_block + vi, src_stride,
                                        dst_block + vi, dst_stride, n_cells,
                                        &xi_table[c], Limiter::kMpp,
                                        GhostMode::kFromSource, ws);
              }
              for (; c < d.nuz; ++c) {
                const std::size_t vi = f.velocity_index(a, b, c);
                advect_line_strided_scalar(src_block + vi, src_stride,
                                           dst_block + vi, dst_stride,
                                           n_cells, xi_table[c], Limiter::kMpp,
                                           GhostMode::kFromSource, ws);
              }
            }
          }
        }
      }
    }
  }
}

// Copy axis cells [cell_lo, cell_lo + count) at interior transverse
// positions out of f into a boundary window buffer whose axis index starts
// at window cell `win_lo`.
void copy_to_window(const PhaseSpace& f, int axis, int cell_lo, int count,
                    AlignedVector<float>& window, int win_lo) {
  const auto& d = f.dims();
  int t1n = 0, t2n = 0;
  transverse_extents(d, axis, t1n, t2n);
  const std::size_t block = f.block_size();
  const std::size_t needed =
      static_cast<std::size_t>(3 * d.ghost) * t1n * t2n * block;
  if (window.size() < needed) window.resize(needed);
  const std::size_t bytes = block * sizeof(float);
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
  for (int w = 0; w < count; ++w)
    for (int t1 = 0; t1 < t1n; ++t1) {
      std::size_t o =
          (static_cast<std::size_t>(win_lo + w) * t1n + t1) * t2n * block;
      for (int t2 = 0; t2 < t2n; ++t2, o += block) {
        int idx[3];
        idx[axis] = cell_lo + w;
        int tpos = 0;
        for (int t = 0; t < 3; ++t) {
          if (t == axis) continue;
          idx[t] = tpos == 0 ? t1 : t2;
          ++tpos;
        }
        std::memcpy(window.data() + o, f.block(idx[0], idx[1], idx[2]),
                    bytes);
      }
    }
}

void require_splittable(const PhaseSpaceDims& d, int axis, int n,
                        const char* fn) {
  if (n < 2 * d.ghost)
    throw std::invalid_argument(
        std::string(fn) + ": axis " + std::to_string(axis) + " extent " +
        std::to_string(n) + " is below 2*ghost = " +
        std::to_string(2 * d.ghost) +
        "; use the full-line sweep for this axis");
}

inline int axis_extent(const PhaseSpaceDims& d, int axis) {
  return axis == 0 ? d.nx : axis == 1 ? d.ny : d.nz;
}

}  // namespace

void advect_position_axis(PhaseSpace& f, int axis, double drift_factor,
                          SweepKernel kernel) {
  const int n = axis_extent(f.dims(), axis);
  advect_position_axis_range(f, axis, drift_factor, kernel, 0, n);
}

void advect_position_axis_range(PhaseSpace& f, int axis, double drift_factor,
                                SweepKernel kernel, int lo, int hi) {
  const std::ptrdiff_t stride =
      static_cast<std::ptrdiff_t>(axis == 0   ? f.block_stride_x()
                                  : axis == 1 ? f.block_stride_y()
                                              : f.block_stride_z()) *
      static_cast<std::ptrdiff_t>(f.block_size());
  sweep_lines(
      f, axis, drift_factor, kernel, lo, hi,
      [&](int t1, int t2) -> const float* {
        return block_at(f, axis, lo, t1, t2);
      },
      stride);
}

void save_position_boundary(const PhaseSpace& f, int axis,
                            PositionBoundarySlabs& slabs) {
  const auto& d = f.dims();
  const int g = d.ghost;
  const int n = axis_extent(d, axis);
  require_splittable(d, axis, n, "save_position_boundary");
  // Windows cover axis cells [-g, 2g) (lo) and [n-2g, n+g) (hi); the
  // interior 2g-cell parts are snapshotted here, before the in-place
  // interior sweep overwrites [g, n-g).
  copy_to_window(f, axis, 0, 2 * g, slabs.lo, g);
  copy_to_window(f, axis, n - 2 * g, 2 * g, slabs.hi, 0);
}

void load_position_boundary_ghosts(const PhaseSpace& f, int axis,
                                   PositionBoundarySlabs& slabs) {
  const auto& d = f.dims();
  const int g = d.ghost;
  const int n = axis_extent(d, axis);
  require_splittable(d, axis, n, "load_position_boundary_ghosts");
  copy_to_window(f, axis, -g, g, slabs.lo, 0);
  copy_to_window(f, axis, n, g, slabs.hi, 2 * g);
}

void advect_position_axis_boundary(PhaseSpace& f, int axis,
                                   double drift_factor, SweepKernel kernel,
                                   const PositionBoundarySlabs& slabs) {
  const auto& d = f.dims();
  const int g = d.ghost;
  const int n = axis_extent(d, axis);
  require_splittable(d, axis, n, "advect_position_axis_boundary");
  int t1n = 0, t2n = 0;
  transverse_extents(d, axis, t1n, t2n);
  const std::size_t block = f.block_size();
  const std::ptrdiff_t win_stride =
      static_cast<std::ptrdiff_t>(t1n) * t2n * block;
  // Window axis index g holds the first swept cell of each shell (cell 0
  // for the low shell, cell n-g for the high one).
  auto window_at = [&](const AlignedVector<float>& win, int t1, int t2) {
    return win.data() +
           (static_cast<std::size_t>(g) * t1n + t1) * t2n * block +
           static_cast<std::size_t>(t2) * block;
  };
  sweep_lines(
      f, axis, drift_factor, kernel, 0, g,
      [&](int t1, int t2) -> const float* {
        return window_at(slabs.lo, t1, t2);
      },
      win_stride);
  sweep_lines(
      f, axis, drift_factor, kernel, n - g, n,
      [&](int t1, int t2) -> const float* {
        return window_at(slabs.hi, t1, t2);
      },
      win_stride);
}

double max_position_shift(const PhaseSpace& f, double drift_factor) {
  const auto& g = f.geom();
  const double dmin = std::min({g.dx, g.dy, g.dz});
  // Largest |u| at cell centers is umax - du/2 along each axis.
  const double umax_eff = g.umax - 0.5 * std::min({g.dux, g.duy, g.duz});
  return std::fabs(umax_eff * drift_factor) / dmin;
}

}  // namespace v6d::vlasov
