#include <algorithm>
#include <cmath>
#include <vector>

#include "vlasov/sweeps.hpp"

namespace v6d::vlasov {

// Position sweeps (paper Eq. 3): advection speed along spatial axis i is
// u_i / a^2; drift_factor carries the time integral of dt/a^2.  For the x
// and y sweeps the speed is constant across the contiguous uz lanes (it
// depends on the iux / iuy index), so lane groups share one xi.  For the z
// sweep the speed varies per lane (it *is* u_z), so the per-lane-shift
// kernel is used.
//
// The per-line shift depends only on the velocity index, never on the
// spatial line, so the whole shift table is computed once per sweep and
// shared by every thread — the hot loop reduces to table lookups plus the
// line kernels.  Threading is over spatial lines (collapse(2)); each
// thread keeps one reusable AdvectWorkspace so the kernels never allocate
// in steady state.
void advect_position_axis(PhaseSpace& f, int axis, double drift_factor,
                          SweepKernel kernel) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double dx = axis == 0 ? g.dx : axis == 1 ? g.dy : g.dz;
  const int n = axis == 0 ? d.nx : axis == 1 ? d.ny : d.nz;
  const std::ptrdiff_t cell_stride =
      static_cast<std::ptrdiff_t>(axis == 0   ? f.block_stride_x()
                                  : axis == 1 ? f.block_stride_y()
                                              : f.block_stride_z()) *
      static_cast<std::ptrdiff_t>(f.block_size());

  const int t1n = axis == 0 ? d.ny : d.nx;
  const int t2n = axis == 2 ? d.ny : d.nz;
  const SweepKernel resolved =
      simd::resolve_sweep_kernel(kernel, /*contiguous_axis=*/false);
  const bool scalar = resolved == SweepKernel::kScalar;
  const double inv_dx_drift = drift_factor / dx;

  // Shift tables, hoisted out of the spatial loops: for the x/y sweeps xi
  // is indexed by iux (resp. iuy); for the z sweep it is indexed by iuz
  // (one entry per lane of a group).
  std::vector<double> xi_table;
  if (axis == 0) {
    xi_table.resize(static_cast<std::size_t>(d.nux));
    for (int a = 0; a < d.nux; ++a) xi_table[a] = g.ux(a) * inv_dx_drift;
  } else if (axis == 1) {
    xi_table.resize(static_cast<std::size_t>(d.nuy));
    for (int b = 0; b < d.nuy; ++b) xi_table[b] = g.uy(b) * inv_dx_drift;
  } else {
    xi_table.resize(static_cast<std::size_t>(d.nuz));
    for (int c = 0; c < d.nuz; ++c) xi_table[c] = g.uz(c) * inv_dx_drift;
  }

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    AdvectWorkspace ws;
#ifdef _OPENMP
#pragma omp for collapse(2) schedule(static)
#endif
    for (int t1 = 0; t1 < t1n; ++t1) {
      for (int t2 = 0; t2 < t2n; ++t2) {
        int ix = 0, iy = 0, iz = 0;
        if (axis == 0) {
          iy = t1;
          iz = t2;
        } else if (axis == 1) {
          ix = t1;
          iz = t2;
        } else {
          ix = t1;
          iy = t2;
        }
        float* base_block = f.block(ix, iy, iz);
        for (int a = 0; a < d.nux; ++a) {
          for (int b = 0; b < d.nuy; ++b) {
            if (axis == 0 || axis == 1) {
              const double xi = xi_table[axis == 0 ? a : b];
              int c = 0;
              for (; !scalar && c + kLanes <= d.nuz; c += kLanes) {
                float* line0 = base_block + f.velocity_index(a, b, c);
                advect_lines_simd(line0, cell_stride, line0, cell_stride, n,
                                  xi, Limiter::kMpp, GhostMode::kFromSource,
                                  ws);
              }
              for (; c < d.nuz; ++c) {
                float* line0 = base_block + f.velocity_index(a, b, c);
                advect_line_strided_scalar(line0, cell_stride, line0,
                                           cell_stride, n, xi, Limiter::kMpp,
                                           GhostMode::kFromSource, ws);
              }
            } else {
              // z sweep: xi varies across the uz lanes.
              int c = 0;
              for (; !scalar && c + kLanes <= d.nuz; c += kLanes) {
                float* line0 = base_block + f.velocity_index(a, b, c);
                advect_lines_simd_multi(line0, cell_stride, line0,
                                        cell_stride, n, &xi_table[c],
                                        Limiter::kMpp, GhostMode::kFromSource,
                                        ws);
              }
              for (; c < d.nuz; ++c) {
                float* line0 = base_block + f.velocity_index(a, b, c);
                advect_line_strided_scalar(line0, cell_stride, line0,
                                           cell_stride, n, xi_table[c],
                                           Limiter::kMpp,
                                           GhostMode::kFromSource, ws);
              }
            }
          }
        }
      }
    }
  }
}

double max_position_shift(const PhaseSpace& f, double drift_factor) {
  const auto& g = f.geom();
  const double dmin = std::min({g.dx, g.dy, g.dz});
  // Largest |u| at cell centers is umax - du/2 along each axis.
  const double umax_eff = g.umax - 0.5 * std::min({g.dux, g.duy, g.duz});
  return std::fabs(umax_eff * drift_factor) / dmin;
}

}  // namespace v6d::vlasov
