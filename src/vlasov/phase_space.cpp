#include "vlasov/phase_space.hpp"

#include <algorithm>
#include <cstring>

namespace v6d::vlasov {

PhaseSpace::PhaseSpace(const PhaseSpaceDims& dims,
                       const PhaseSpaceGeometry& geom)
    : dims_(dims), geom_(geom) {
  const int g = dims.ghost;
  const std::size_t blocks = std::size_t(dims.nx + 2 * g) *
                             (dims.ny + 2 * g) * (dims.nz + 2 * g);
  data_.assign(blocks * dims.velocity_cells(), 0.0f);
}

double PhaseSpace::total_mass() const {
  double sum = 0.0;
  for (int ix = 0; ix < dims_.nx; ++ix)
    for (int iy = 0; iy < dims_.ny; ++iy)
      for (int iz = 0; iz < dims_.nz; ++iz) {
        const float* b = block(ix, iy, iz);
        double cell = 0.0;
        for (std::size_t v = 0; v < block_size(); ++v) cell += b[v];
        sum += cell;
      }
  return sum * geom_.du3() * geom_.dvol();
}

float PhaseSpace::min_interior() const {
  float m = 0.0f;
  bool first = true;
  for (int ix = 0; ix < dims_.nx; ++ix)
    for (int iy = 0; iy < dims_.ny; ++iy)
      for (int iz = 0; iz < dims_.nz; ++iz) {
        const float* b = block(ix, iy, iz);
        for (std::size_t v = 0; v < block_size(); ++v) {
          if (first || b[v] < m) {
            m = b[v];
            first = false;
          }
        }
      }
  return m;
}

void PhaseSpace::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void PhaseSpace::fill_ghosts_periodic() {
  const int g = dims_.ghost;
  const auto wrap = [](int i, int n) { return ((i % n) + n) % n; };
  for (int ix = -g; ix < dims_.nx + g; ++ix)
    for (int iy = -g; iy < dims_.ny + g; ++iy)
      for (int iz = -g; iz < dims_.nz + g; ++iz) {
        const bool interior = ix >= 0 && ix < dims_.nx && iy >= 0 &&
                              iy < dims_.ny && iz >= 0 && iz < dims_.nz;
        if (interior) continue;
        const float* src = block(wrap(ix, dims_.nx), wrap(iy, dims_.ny),
                                 wrap(iz, dims_.nz));
        std::memcpy(block(ix, iy, iz), src, block_size() * sizeof(float));
      }
}

}  // namespace v6d::vlasov
