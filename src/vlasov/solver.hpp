// Self-contained Vlasov-Poisson solver (non-cosmological, a = 1).
//
// Drives the 6-D phase space with self-gravity (or a fixed external
// acceleration), using the Eq.(5) splitting.  This is the configuration of
// the paper's §5.2-5.3 kernel studies and of classic collisionless test
// problems; the cosmological production path (expansion factors, CDM
// coupling) lives in hybrid/HybridSolver.
#pragma once

#include <memory>
#include <optional>

#include "common/timer.hpp"
#include "gravity/poisson.hpp"
#include "vlasov/moments.hpp"
#include "vlasov/splitting.hpp"

namespace v6d::vlasov {

struct VlasovSolverOptions {
  SweepKernel kernel = SweepKernel::kAuto;
  /// 4 pi G in the problem's units (Poisson prefactor on rho - mean).
  double four_pi_g = 1.0;
  bool self_gravity = true;
  double cfl = 0.9;  // bound on the position-sweep |xi|
};

class VlasovSolver {
 public:
  VlasovSolver(PhaseSpace f, double box, const VlasovSolverOptions& options);

  PhaseSpace& phase_space() { return f_; }
  const PhaseSpace& phase_space() const { return f_; }

  /// Largest dt satisfying the position CFL bound.
  double max_dt() const;

  /// One Eq.(5) step; recomputes the self-gravity between the kick halves
  /// (kick-drift-kick).  Returns the dt actually taken (= dt).
  double step(double dt);

  /// External acceleration mode: fixed fields owned by the caller.
  void set_external_accel(const mesh::Grid3D<double>* gx,
                          const mesh::Grid3D<double>* gy,
                          const mesh::Grid3D<double>* gz);

  const mesh::Grid3D<double>& density() const { return rho_; }
  const mesh::Grid3D<double>& potential() const { return phi_; }
  TimerRegistry& timers() { return timers_; }

  /// Recompute rho and the self-gravity fields from the current f.
  void refresh_gravity();

 private:
  PhaseSpace f_;
  double box_;
  VlasovSolverOptions options_;
  gravity::PoissonSolver poisson_;
  mesh::Grid3D<double> rho_, phi_, gx_, gy_, gz_;
  const mesh::Grid3D<double>*ext_gx_ = nullptr, *ext_gy_ = nullptr,
                            *ext_gz_ = nullptr;
  TimerRegistry timers_;
};

}  // namespace v6d::vlasov
