// The Strang-split update sequence of paper Eq. (5):
//
//   f^{n+1} = Duz(dt/2) Duy(dt/2) Dux(dt/2)
//             Dx(dt) Dy(dt) Dz(dt)
//             Duz(dt/2) Duy(dt/2) Dux(dt/2) f^n
//
// i.e. half kick in velocity space, full drift in position space, half
// kick again — symmetric (2nd-order in time) while each 1-D operator is
// 5th-order in its own coordinate and integrated in a single stage.
#pragma once

#include <functional>

#include "vlasov/sweeps.hpp"

namespace v6d::vlasov {

/// Fills spatial ghosts before the position sweeps: the serial default is
/// the periodic self-copy; parallel runs plug in halo exchange.
using HaloFiller = std::function<void(PhaseSpace&)>;

HaloFiller periodic_halo_filler();

struct SplitStepConfig {
  double drift = 0.0;      // time integral of dt/a^2 over the step
  double kick_pre = 0.0;   // dt of the leading half kick
  double kick_post = 0.0;  // dt of the trailing half kick
  SweepKernel kernel = SweepKernel::kAuto;
};

/// One Eq.(5) step with *fixed* acceleration fields (gx, gy, gz =
/// -grad(phi) on the spatial grid).  Self-consistent solvers interleave
/// Poisson solves between the kick halves themselves; this helper serves
/// kinematic tests, examples, and the ablation benches.
void split_step_fixed_accel(PhaseSpace& f, const mesh::Grid3D<double>& gx,
                            const mesh::Grid3D<double>& gy,
                            const mesh::Grid3D<double>& gz,
                            const SplitStepConfig& config,
                            const HaloFiller& halo);

/// The kick half-sequence Dux Duy Duz (order per Eq. 5).
void kick_half(PhaseSpace& f, const mesh::Grid3D<double>& gx,
               const mesh::Grid3D<double>& gy,
               const mesh::Grid3D<double>& gz, double dt,
               SweepKernel kernel);

/// The drift sequence Dx Dy Dz; requires filled ghosts per axis — the
/// halo filler runs before each axis (ghosts are invalidated by sweeps).
void drift_full(PhaseSpace& f, double drift_factor, SweepKernel kernel,
                const HaloFiller& halo);

}  // namespace v6d::vlasov
