// Shared width-templated SL-MPP5 flux kernel (included by the advect_*.cpp
// translation units only).  Mirrors advect_line_scalar in sl_mpp5.cpp; any
// change here must be reflected there — the test suite pins scalar/SIMD/LAT
// equivalence to catch divergence.
//
// The kernel is parameterized by per-lane weights: most sweeps broadcast a
// single shift xi to all lanes, but the spatial z sweep vectorizes across
// the contiguous uz index whose velocity (hence xi) differs per lane.  The
// integer part of the shift must be lane-uniform (callers split lane groups
// at the velocity sign boundary); the fractional weights may vary freely.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

#include "simd/pack.hpp"
#include "vlasov/sl_mpp5.hpp"

namespace v6d::vlasov::detail {

template <int L>
inline simd::Pack<float, L> mp_limit_vec(simd::Pack<float, L> g,
                                         simd::Pack<float, L> fm2,
                                         simd::Pack<float, L> fm1,
                                         simd::Pack<float, L> f0,
                                         simd::Pack<float, L> fp1,
                                         simd::Pack<float, L> fp2,
                                         simd::Pack<float, L> alpha,
                                         simd::Pack<float, L> alpha_third) {
  using P = simd::Pack<float, L>;
  const P half = P::broadcast(0.5f);
  const P one = P::broadcast(1.0f);
  const P eps = P::broadcast(1e-20f);

  const P f_mp = f0 + simd::minmod(fp1 - f0, alpha * (f0 - fm1));
  const auto accept = ((g - f0) * (g - f_mp)) <= eps;

  const P two = P::broadcast(2.0f);
  const P dm1 = fm2 - two * fm1 + f0;
  const P d0 = fm1 - two * f0 + fp1;
  const P dp1 = f0 - two * fp1 + fp2;
  const P four = P::broadcast(4.0f);
  const P d_half_p = simd::minmod4(four * d0 - dp1, four * dp1 - d0, d0, dp1);
  const P d_half_m = simd::minmod4(four * dm1 - d0, four * d0 - dm1, dm1, d0);

  const P f_ul = f0 + alpha * (f0 - fm1);
  const P f_av = half * (f0 + fp1);
  const P f_md = f_av - half * d_half_p;
  // alpha_third is the pre-rounded alpha / 3.0f so the result stays
  // bit-identical to the scalar reference (which divides; a * (1/3)
  // rounds differently).
  const P f_lc = f0 + half * simd::min(one, alpha) * (f0 - fm1) +
                 alpha_third * d_half_m;

  const P f_min =
      simd::max(simd::min(simd::min(f0, fp1), f_md),
                simd::min(simd::min(f0, f_ul), f_lc));
  const P f_max =
      simd::min(simd::max(simd::max(f0, fp1), f_md),
                simd::max(simd::max(f0, f_ul), f_lc));
  const P limited = simd::median(g, f_min, f_max);
  return simd::select<float, L>(accept, g, limited);
}

/// Per-lane flux configuration for the vector kernel.
template <int L>
struct VecShift {
  using P = simd::Pack<float, L>;
  P w0, w1, w2, w3, w4;  // fractional flux weights per lane
  P theta, inv_theta;    // fractional shift per lane (inv 0 when theta ~ 0)
  P alpha;               // per-lane adaptive Suresh-Huynh alpha
  P alpha_third;         // alpha / 3.0f (pre-rounded, matches scalar)
  int s = 0;             // lane-uniform integer shift
  bool limit = false;    // apply the MP limiter (any lane has theta > 0)
  bool pure_shift = false;  // every lane is an exact whole-cell translation
  int max_ghost = 0;     // ghost cells this configuration requires

  /// Uniform xi across lanes.
  static VecShift uniform(double xi, Limiter limiter) {
    double lanes[L];
    for (int l = 0; l < L; ++l) lanes[l] = xi;
    return per_lane(lanes, limiter);
  }

  /// Per-lane xi; all floor(xi) must agree (callers guarantee).
  static VecShift per_lane(const double* xi, Limiter limiter) {
    VecShift vs;
    vs.s = static_cast<int>(std::floor(xi[0]));
    vs.limit = false;
    vs.pure_shift = true;
    for (int l = 0; l < L; ++l)
      if (xi[l] - std::floor(xi[l]) != 0.0) vs.pure_shift = false;
    for (int l = 0; l < L; ++l) {
      assert(static_cast<int>(std::floor(xi[l])) == vs.s);
      const double theta = xi[l] - vs.s;
      const FluxWeights fw = FluxWeights::compute(theta);
      vs.w0.set(l, static_cast<float>(fw.w[0]));
      vs.w1.set(l, static_cast<float>(fw.w[1]));
      vs.w2.set(l, static_cast<float>(fw.w[2]));
      vs.w3.set(l, static_cast<float>(fw.w[3]));
      vs.w4.set(l, static_cast<float>(fw.w[4]));
      vs.theta.set(l, static_cast<float>(theta));
      vs.inv_theta.set(
          l, theta > 1e-12 ? static_cast<float>(1.0 / theta) : 0.0f);
      const float alpha = mp_alpha_for(theta);
      vs.alpha.set(l, alpha);
      vs.alpha_third.set(l, alpha / 3.0f);
      if (limiter != Limiter::kNone && theta > 1e-12) vs.limit = true;
      vs.max_ghost = std::max(vs.max_ghost, required_ghost(xi[l]));
    }
    if (limiter == Limiter::kNone) vs.limit = false;
    return vs;
  }
};

// in: (cell -ghost, lane 0); cells are `cs` floats apart, lanes contiguous.
// out: (cell 0, lane 0); cells `os` floats apart.  flux: (n+1)*L scratch.
// in and out must not alias (callers stage through workspace buffers).
template <int L>
void sl_mpp5_kernel_vec(const float* in, std::ptrdiff_t cs, float* out,
                        std::ptrdiff_t os, int n, int ghost,
                        const VecShift<L>& vs, Limiter limiter, float* flux) {
  using P = simd::Pack<float, L>;
  assert(ghost >= vs.max_ghost);
  const P zero = P::zero();
  const int s = vs.s;

  const float* c0 = in + static_cast<std::ptrdiff_t>(ghost) * cs;
  if (vs.pure_shift) {
    for (int i = 0; i < n; ++i)
      P::load(c0 + static_cast<std::ptrdiff_t>(i - s) * cs)
          .store(out + static_cast<std::ptrdiff_t>(i) * os);
    return;
  }
  for (int i = -1; i < n; ++i) {
    const int j = i - s;
    const P fm2 = P::load(c0 + static_cast<std::ptrdiff_t>(j - 2) * cs);
    const P fm1 = P::load(c0 + static_cast<std::ptrdiff_t>(j - 1) * cs);
    const P f0 = P::load(c0 + static_cast<std::ptrdiff_t>(j) * cs);
    const P fp1 = P::load(c0 + static_cast<std::ptrdiff_t>(j + 1) * cs);
    const P fp2 = P::load(c0 + static_cast<std::ptrdiff_t>(j + 2) * cs);
    P F = simd::fma(vs.w4, fp2,
                    simd::fma(vs.w3, fp1,
                              simd::fma(vs.w2, f0,
                                        simd::fma(vs.w1, fm1, vs.w0 * fm2))));
    if (vs.limit) {
      const P g = F * vs.inv_theta;
      const P g_lim =
          mp_limit_vec<L>(g, fm2, fm1, f0, fp1, fp2, vs.alpha,
                          vs.alpha_third);
      // Lanes with theta ~ 0 keep their (zero) raw flux.
      const auto active = vs.theta > P::broadcast(1e-12f);
      F = simd::select<float, L>(active, vs.theta * g_lim, F);
    }
    if (limiter == Limiter::kMpp) {
      F = simd::max(zero, simd::min(F, f0));
    }
    F.store(flux + static_cast<std::ptrdiff_t>(i + 1) * L);
  }
  for (int i = 0; i < n; ++i) {
    const P v = P::load(c0 + static_cast<std::ptrdiff_t>(i - s) * cs) -
                P::load(flux + static_cast<std::ptrdiff_t>(i + 1) * L) +
                P::load(flux + static_cast<std::ptrdiff_t>(i) * L);
    v.store(out + static_cast<std::ptrdiff_t>(i) * os);
  }
}

}  // namespace v6d::vlasov::detail
