#include "simd/transpose.hpp"
#include "vlasov/advect_kernels.hpp"
#include "vlasov/advect_vec_impl.hpp"

namespace v6d::vlasov {

namespace {

// Stage kLanes contiguous lines into a cell-major [n + 2g][kLanes] block.
// Interior cells move through in-register LxL transposes (the LAT step);
// the <= 2*ghost boundary cells per line are filled scalar.
void fill_transposed(const float* src, std::ptrdiff_t line_stride, float* in,
                     int n, int ghost, GhostMode ghosts) {
  constexpr int L = kLanes;
  int t = 0;
  for (; t + L <= n; t += L)
    simd::transpose_tile<float, L>(src + t, line_stride,
                                   in + static_cast<std::ptrdiff_t>(ghost + t) * L, L);
  for (; t < n; ++t)
    for (int l = 0; l < L; ++l)
      in[static_cast<std::ptrdiff_t>(ghost + t) * L + l] =
          src[static_cast<std::ptrdiff_t>(l) * line_stride + t];
  for (int k = 1; k <= ghost; ++k) {
    for (int l = 0; l < L; ++l) {
      in[static_cast<std::ptrdiff_t>(ghost - k) * L + l] =
          ghosts == GhostMode::kFromSource
              ? src[static_cast<std::ptrdiff_t>(l) * line_stride - k]
              : 0.0f;
      in[static_cast<std::ptrdiff_t>(ghost + n - 1 + k) * L + l] =
          ghosts == GhostMode::kFromSource
              ? src[static_cast<std::ptrdiff_t>(l) * line_stride + n - 1 + k]
              : 0.0f;
    }
  }
}

void write_back_transposed(const float* out, float* dst,
                           std::ptrdiff_t dst_line_stride, int n) {
  constexpr int L = kLanes;
  int t = 0;
  for (; t + L <= n; t += L)
    simd::transpose_tile<float, L>(out + static_cast<std::ptrdiff_t>(t) * L, L,
                                   dst + t, dst_line_stride);
  for (; t < n; ++t)
    for (int l = 0; l < L; ++l)
      dst[static_cast<std::ptrdiff_t>(l) * dst_line_stride + t] =
          out[static_cast<std::ptrdiff_t>(t) * L + l];
}

}  // namespace

void advect_lines_lat(const float* src, std::ptrdiff_t line_stride,
                      float* dst, std::ptrdiff_t dst_line_stride, int n,
                      double xi, Limiter limiter, GhostMode ghosts,
                      AdvectWorkspace& ws) {
  const auto vs = detail::VecShift<kLanes>::uniform(xi, limiter);
  const int ghost = vs.max_ghost;
  ws.ensure(n, ghost, kLanes);
  fill_transposed(src, line_stride, ws.in.data(), n, ghost, ghosts);
  detail::sl_mpp5_kernel_vec<kLanes>(ws.in.data(), kLanes, ws.out.data(),
                                     kLanes, n, ghost, vs, limiter,
                                     ws.flux.data());
  write_back_transposed(ws.out.data(), dst, dst_line_stride, n);
}

void advect_lines_lat_gather(const float* src, std::ptrdiff_t line_stride,
                             float* dst, std::ptrdiff_t dst_line_stride,
                             int n, double xi, Limiter limiter,
                             GhostMode ghosts, AdvectWorkspace& ws) {
  constexpr int L = kLanes;
  const auto vs = detail::VecShift<L>::uniform(xi, limiter);
  const int ghost = vs.max_ghost;
  ws.ensure(n, ghost, L);
  // The paper's Fig.-2 data layout: pack lanes one element at a time from
  // strided lines.  Same arithmetic as advect_lines_lat, inefficient loads.
  float* in = ws.in.data();
  for (int k = -ghost; k < n + ghost; ++k) {
    const bool interior = k >= 0 && k < n;
    for (int l = 0; l < L; ++l)
      in[static_cast<std::ptrdiff_t>(k + ghost) * L + l] =
          (interior || ghosts == GhostMode::kFromSource)
              ? src[static_cast<std::ptrdiff_t>(l) * line_stride + k]
              : 0.0f;
  }
  detail::sl_mpp5_kernel_vec<L>(in, L, ws.out.data(), L, n, ghost, vs,
                                limiter, ws.flux.data());
  for (int t = 0; t < n; ++t)
    for (int l = 0; l < L; ++l)
      dst[static_cast<std::ptrdiff_t>(l) * dst_line_stride + t] =
          ws.out[static_cast<std::ptrdiff_t>(t) * L + l];
}

}  // namespace v6d::vlasov
