#include <algorithm>
#include <cmath>

#include "vlasov/sweeps.hpp"

namespace v6d::vlasov {

// Velocity sweeps (paper Eq. 4): advection speed along velocity axis i is
// the acceleration -dphi/dx_i, constant over a spatial cell's whole
// velocity block — so every lane group shares one xi, all three axes
// vectorize cleanly, and no communication is ever needed (§5.1.3).
//
// Kernel choice per axis (paper Table 1, applied by simd::resolve_sweep_
// kernel):
//   ux, uy : multi-lane SIMD across the contiguous uz index;
//   uz     : the sweep axis *is* the contiguous one -> LAT (in-register
//            transpose).  kSimd on uz deliberately selects the slow
//            gather-style variant, reproducing the paper's "w/ SIMD inst."
//            column; kAuto selects LAT.
//
// Both entry points funnel into advect_block_axis, which updates one
// spatial cell's velocity block in place.  Blocks are independent, which
// is what makes the fused kick (advect_velocity_all) bit-identical to
// three sequential per-axis passes.

namespace {

/// Sweep one velocity block along `axis` by shift xi.  `kernel` must be
/// concrete (resolved, never kAuto).
void advect_block_axis(float* block, const PhaseSpace& f, int axis,
                       double xi, SweepKernel kernel, AdvectWorkspace& ws) {
  const auto& d = f.dims();
  const int n = axis == 0 ? d.nux : axis == 1 ? d.nuy : d.nuz;
  const bool vector = kernel != SweepKernel::kScalar;

  if (axis == 0) {
    // Lines along iux, stride nuy*nuz; lanes over contiguous iuz.
    const std::ptrdiff_t stride = static_cast<std::ptrdiff_t>(d.nuy) * d.nuz;
    for (int b = 0; b < d.nuy; ++b) {
      int c = 0;
      for (; vector && c + kLanes <= d.nuz; c += kLanes)
        advect_lines_simd(block + f.velocity_index(0, b, c), stride,
                          block + f.velocity_index(0, b, c), stride, n, xi,
                          Limiter::kMpp, GhostMode::kZero, ws);
      for (; c < d.nuz; ++c)
        advect_line_strided_scalar(block + f.velocity_index(0, b, c), stride,
                                   block + f.velocity_index(0, b, c), stride,
                                   n, xi, Limiter::kMpp, GhostMode::kZero,
                                   ws);
    }
  } else if (axis == 1) {
    // Lines along iuy, stride nuz; lanes over contiguous iuz.
    const std::ptrdiff_t stride = d.nuz;
    for (int a = 0; a < d.nux; ++a) {
      int c = 0;
      for (; vector && c + kLanes <= d.nuz; c += kLanes)
        advect_lines_simd(block + f.velocity_index(a, 0, c), stride,
                          block + f.velocity_index(a, 0, c), stride, n, xi,
                          Limiter::kMpp, GhostMode::kZero, ws);
      for (; c < d.nuz; ++c)
        advect_line_strided_scalar(block + f.velocity_index(a, 0, c), stride,
                                   block + f.velocity_index(a, 0, c), stride,
                                   n, xi, Limiter::kMpp, GhostMode::kZero,
                                   ws);
    }
  } else {
    // Lines along the contiguous iuz axis; kLanes adjacent iuy lines per
    // LAT call (line stride nuz).
    const std::ptrdiff_t line_stride = d.nuz;
    for (int a = 0; a < d.nux; ++a) {
      int b = 0;
      for (; vector && b + kLanes <= d.nuy; b += kLanes) {
        float* lines0 = block + f.velocity_index(a, b, 0);
        if (kernel == SweepKernel::kSimd)
          advect_lines_lat_gather(lines0, line_stride, lines0, line_stride,
                                  n, xi, Limiter::kMpp, GhostMode::kZero, ws);
        else
          advect_lines_lat(lines0, line_stride, lines0, line_stride, n, xi,
                           Limiter::kMpp, GhostMode::kZero, ws);
      }
      for (; b < d.nuy; ++b)
        advect_line_strided_scalar(block + f.velocity_index(a, b, 0), 1,
                                   block + f.velocity_index(a, b, 0), 1, n,
                                   xi, Limiter::kMpp, GhostMode::kZero, ws);
    }
  }
}

}  // namespace

void advect_velocity_axis(PhaseSpace& f, int axis,
                          const mesh::Grid3D<double>& accel, double dt,
                          SweepKernel kernel) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double du = axis == 0 ? g.dux : axis == 1 ? g.duy : g.duz;
  const double dt_over_du = dt / du;
  const SweepKernel resolved =
      simd::resolve_sweep_kernel(kernel, /*contiguous_axis=*/axis == 2);

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    AdvectWorkspace ws;
#ifdef _OPENMP
#pragma omp for collapse(2) schedule(static)
#endif
    for (int ix = 0; ix < d.nx; ++ix) {
      for (int iy = 0; iy < d.ny; ++iy) {
        for (int iz = 0; iz < d.nz; ++iz) {
          const double xi = accel.at(ix, iy, iz) * dt_over_du;
          if (xi == 0.0) continue;
          advect_block_axis(f.block(ix, iy, iz), f, axis, xi, resolved, ws);
        }
      }
    }
  }
}

void advect_velocity_all(PhaseSpace& f, const mesh::Grid3D<double>& gx,
                         const mesh::Grid3D<double>& gy,
                         const mesh::Grid3D<double>& gz, double dt,
                         SweepKernel kernel) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double dt_du[3] = {dt / g.dux, dt / g.duy, dt / g.duz};
  SweepKernel resolved[3];
  for (int axis = 0; axis < 3; ++axis)
    resolved[axis] =
        simd::resolve_sweep_kernel(kernel, /*contiguous_axis=*/axis == 2);

  // Cache blocking: one spatial cell's velocity block (nux*nuy*nuz floats)
  // is the natural tile.  All three axis sweeps run on it back-to-back
  // while it is resident, so the kick reads/writes the 6-D array once
  // instead of three times.  Eq. (5) order (Dux, then Duy, then Duz) is
  // preserved within each block, and blocks do not couple.
#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    AdvectWorkspace ws;
#ifdef _OPENMP
#pragma omp for collapse(3) schedule(static)
#endif
    for (int ix = 0; ix < d.nx; ++ix) {
      for (int iy = 0; iy < d.ny; ++iy) {
        for (int iz = 0; iz < d.nz; ++iz) {
          float* block = f.block(ix, iy, iz);
          const double a_cell[3] = {gx.at(ix, iy, iz), gy.at(ix, iy, iz),
                                    gz.at(ix, iy, iz)};
          for (int axis = 0; axis < 3; ++axis) {
            const double xi = a_cell[axis] * dt_du[axis];
            if (xi == 0.0) continue;
            advect_block_axis(block, f, axis, xi, resolved[axis], ws);
          }
        }
      }
    }
  }
}

double max_velocity_shift(const PhaseSpace& f,
                          const mesh::Grid3D<double>& gx,
                          const mesh::Grid3D<double>& gy,
                          const mesh::Grid3D<double>& gz, double dt) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  double worst = 0.0;
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        worst = std::max(worst,
                         std::fabs(gx.at(ix, iy, iz) * dt / g.dux));
        worst = std::max(worst,
                         std::fabs(gy.at(ix, iy, iz) * dt / g.duy));
        worst = std::max(worst,
                         std::fabs(gz.at(ix, iy, iz) * dt / g.duz));
      }
  return worst;
}

}  // namespace v6d::vlasov
