// Discretized 6-D distribution function f(x, y, z, ux, uy, uz).
//
// Layout follows the paper's List 1: one velocity block of
// nux * nuy * nuz single-precision values per spatial cell, spatial cells
// outermost, uz the memory-contiguous axis.  (The paper stores the cached
// density / mean-velocity scalars inline in the per-cell struct; we keep
// them in separate arrays so velocity blocks stay 64-byte aligned for the
// SIMD kernels — noted as a deliberate deviation in DESIGN.md.)
//
// Spatial cells carry `ghost` layers of ghost blocks on every side; the
// position sweeps read through them after halo exchange (or periodic
// self-fill in serial runs).  Velocity space carries no ghosts — f has
// compact support inside the velocity cube and the sweep kernels zero-pad.
#pragma once

#include <cstddef>

#include "common/aligned.hpp"
#include "vlasov/sl_mpp5.hpp"

namespace v6d::vlasov {

/// Uniform-grid geometry of the local phase-space box.
struct PhaseSpaceGeometry {
  // Physical extents (comoving length and canonical velocity units).
  double x0 = 0.0, y0 = 0.0, z0 = 0.0;  // local box origin
  double dx = 1.0, dy = 1.0, dz = 1.0;  // spatial cell sizes
  double umax = 1.0;                    // velocity domain is [-umax, umax)
  double dux = 1.0, duy = 1.0, duz = 1.0;

  /// Cell-center coordinates.
  double x(int i) const { return x0 + (i + 0.5) * dx; }
  double y(int j) const { return y0 + (j + 0.5) * dy; }
  double z(int k) const { return z0 + (k + 0.5) * dz; }
  double ux(int a) const { return -umax + (a + 0.5) * dux; }
  double uy(int b) const { return -umax + (b + 0.5) * duy; }
  double uz(int c) const { return -umax + (c + 0.5) * duz; }

  double du3() const { return dux * duy * duz; }
  double dvol() const { return dx * dy * dz; }
};

struct PhaseSpaceDims {
  int nx = 0, ny = 0, nz = 0;     // local interior spatial cells
  int nux = 0, nuy = 0, nuz = 0;  // velocity cells (never decomposed)
  int ghost = kStencilGhost;      // spatial ghost layers

  std::size_t spatial_cells() const {
    return std::size_t(nx) * ny * nz;
  }
  std::size_t velocity_cells() const {
    return std::size_t(nux) * nuy * nuz;
  }
  std::size_t total_interior() const {
    return spatial_cells() * velocity_cells();
  }
};

class PhaseSpace {
 public:
  PhaseSpace() = default;
  PhaseSpace(const PhaseSpaceDims& dims, const PhaseSpaceGeometry& geom);

  const PhaseSpaceDims& dims() const { return dims_; }
  const PhaseSpaceGeometry& geom() const { return geom_; }
  PhaseSpaceGeometry& geom() { return geom_; }

  /// Velocity block of spatial cell (ix, iy, iz); interior indices are
  /// 0..n-1, ghosts extend to -ghost..n+ghost-1.
  float* block(int ix, int iy, int iz) {
    return data_.data() + block_index(ix, iy, iz) * block_size();
  }
  const float* block(int ix, int iy, int iz) const {
    return data_.data() + block_index(ix, iy, iz) * block_size();
  }

  /// f at a full 6-D index (interior or ghost spatial cell).
  float& at(int ix, int iy, int iz, int a, int b, int c) {
    return block(ix, iy, iz)[velocity_index(a, b, c)];
  }
  float at(int ix, int iy, int iz, int a, int b, int c) const {
    return block(ix, iy, iz)[velocity_index(a, b, c)];
  }

  std::size_t velocity_index(int a, int b, int c) const {
    return (std::size_t(a) * dims_.nuy + b) * dims_.nuz + c;
  }
  std::size_t block_size() const { return dims_.velocity_cells(); }
  /// Stride (in blocks) between spatial cells along each axis.
  std::size_t block_stride_x() const {
    return std::size_t(dims_.ny + 2 * dims_.ghost) *
           (dims_.nz + 2 * dims_.ghost);
  }
  std::size_t block_stride_y() const {
    return std::size_t(dims_.nz + 2 * dims_.ghost);
  }
  std::size_t block_stride_z() const { return 1; }

  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }
  std::size_t raw_size() const { return data_.size(); }

  /// Total mass sum over interior cells: sum f * du^3 * dx^3 (double acc).
  double total_mass() const;
  /// Minimum of f over the interior (positivity checks).
  float min_interior() const;

  void fill(float value);
  /// Copy all interior spatial ghost blocks from the periodic image of the
  /// interior (serial / single-rank runs; multi-rank uses halo exchange).
  void fill_ghosts_periodic();

 private:
  std::size_t block_index(int ix, int iy, int iz) const {
    const int g = dims_.ghost;
    return (std::size_t(ix + g) * (dims_.ny + 2 * g) + (iy + g)) *
               (dims_.nz + 2 * g) +
           (iz + g);
  }

  PhaseSpaceDims dims_;
  PhaseSpaceGeometry geom_;
  AlignedVector<float> data_;
};

}  // namespace v6d::vlasov
