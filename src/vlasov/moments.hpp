// Velocity moments of the distribution function.
//
// Because velocity space is never decomposed (paper §5.1.3), every moment
// is a purely local reduction over each spatial cell's velocity block — no
// communication.  Accumulation is in double even though f is float.
#pragma once

#include "mesh/grid.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::vlasov {

/// rho(x) = sum_u f du^3 into the interior of `rho` (sized like f's
/// spatial grid, any ghost width).
void compute_density(const PhaseSpace& f, mesh::Grid3D<double>& rho);

struct MomentFields {
  mesh::Grid3D<double> density;
  mesh::Grid3D<double> mean_ux, mean_uy, mean_uz;
  // Velocity dispersion tensor components sigma_ij^2 = <u_i u_j> - <u_i><u_j>.
  mesh::Grid3D<double> sigma_xx, sigma_yy, sigma_zz;
  mesh::Grid3D<double> sigma_xy, sigma_xz, sigma_yz;

  explicit MomentFields(int nx, int ny, int nz)
      : density(nx, ny, nz), mean_ux(nx, ny, nz), mean_uy(nx, ny, nz),
        mean_uz(nx, ny, nz), sigma_xx(nx, ny, nz), sigma_yy(nx, ny, nz),
        sigma_zz(nx, ny, nz), sigma_xy(nx, ny, nz), sigma_xz(nx, ny, nz),
        sigma_yz(nx, ny, nz) {}

  /// Scalar dispersion sigma = sqrt(trace / 3) at a cell.
  double sigma(int i, int j, int k) const;
  /// |mean velocity| at a cell.
  double speed(int i, int j, int k) const;
};

/// Full moment set (density, mean velocity, dispersion tensor).
void compute_moments(const PhaseSpace& f, MomentFields& m);

}  // namespace v6d::vlasov
