// High-level directional sweeps over the 6-D phase space (paper Eq. 3-5).
//
// Position sweeps advect along x/y/z with per-velocity-cell speed
// u_i / a^2 (the caller folds the 1/a^2 time integral into drift_factor);
// spatial ghost blocks must be filled (halo exchange) beforehand.
// Velocity sweeps advect along ux/uy/uz with the spatially varying
// acceleration -grad(phi); they are communication-free (§5.1.3).
//
// Every sweep can run with three interchangeable kernels (scalar reference,
// multi-lane SIMD, LAT); kAuto resolves through simd::resolve_sweep_kernel
// (V6D_KERNEL override, then the paper's Table-1 choice: SIMD for the five
// non-contiguous axes, LAT for uz, the memory-contiguous axis).
#pragma once

#include "mesh/grid.hpp"
#include "simd/dispatch.hpp"
#include "vlasov/advect_kernels.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::vlasov {

/// Kernel policy for the sweeps; resolution lives in simd/dispatch so the
/// whole stack (sweeps, hybrid solver, benches) shares one dispatch point.
using SweepKernel = simd::SweepKernel;

/// Advect along spatial axis (0=x, 1=y, 2=z).  xi per line is
/// u_axis(velocity index) * drift_factor / dx_axis; requires |xi| <= 1
/// (enforce via timestep control) and filled spatial ghosts.
void advect_position_axis(PhaseSpace& f, int axis, double drift_factor,
                          SweepKernel kernel);

/// Range-restricted position sweep: update only axis cells [lo, hi) of
/// every interior line, in place.  The stencil reads axis cells
/// [lo - ghost, hi + ghost) of f, so the caller must ensure those hold
/// valid pre-sweep values (for the interior range [ghost, n - ghost) they
/// are all interior — no halo needed).  Bit-identical to the same cells of
/// a full-line sweep: the flux at every interface is a pure function of
/// its local stencil.
void advect_position_axis_range(PhaseSpace& f, int axis, double drift_factor,
                                SweepKernel kernel, int lo, int hi);

/// Pre-sweep copies of the two boundary shells of a position sweep, used
/// to overlap the halo exchange with the interior update:
///
///   save() snapshots axis cells [0, 2*ghost) and [n - 2*ghost, n) before
///   the in-place interior sweep overwrites [ghost, n - ghost);
///   load_ghosts() copies the (by then exchanged) axis ghosts in;
///   the boundary sweep then advects cells [0, ghost) and [n - ghost, n)
///   reading exclusively from these windows.
///
/// Buffers are reused across calls (zero steady-state allocation).
/// Requires n >= 2*ghost along the swept axis.
struct PositionBoundarySlabs {
  AlignedVector<float> lo, hi;  // [3*ghost][t1][t2][velocity block]
};

void save_position_boundary(const PhaseSpace& f, int axis,
                            PositionBoundarySlabs& slabs);
void load_position_boundary_ghosts(const PhaseSpace& f, int axis,
                                   PositionBoundarySlabs& slabs);
/// Advect the two ghost-width boundary shells of `axis`, reading pre-sweep
/// values from `slabs` and writing f in place.  Call after the interior
/// range sweep and after load_position_boundary_ghosts().
void advect_position_axis_boundary(PhaseSpace& f, int axis,
                                   double drift_factor, SweepKernel kernel,
                                   const PositionBoundarySlabs& slabs);

/// Advect along velocity axis (0=ux, 1=uy, 2=uz) with acceleration field
/// `accel` (= -dphi/dx_axis on the spatial grid) over time dt.
void advect_velocity_axis(PhaseSpace& f, int axis,
                          const mesh::Grid3D<double>& accel, double dt,
                          SweepKernel kernel);

/// Fused velocity kick: apply all three velocity-axis sweeps to each
/// spatial cell's velocity block while it is cache-hot (one pass over the
/// 6-D array instead of three).  Velocity sweeps are independent across
/// spatial cells, so the result is bit-identical to calling
/// advect_velocity_axis for axes 0, 1, 2 in sequence — the fusion only
/// changes the memory-traffic pattern.  This is the production kick path.
void advect_velocity_all(PhaseSpace& f, const mesh::Grid3D<double>& gx,
                         const mesh::Grid3D<double>& gy,
                         const mesh::Grid3D<double>& gz, double dt,
                         SweepKernel kernel);

/// Largest |xi| any position sweep would see for the given drift factor
/// (used for CFL-limited timestep selection).
double max_position_shift(const PhaseSpace& f, double drift_factor);

/// Largest |xi| a velocity sweep would see for acceleration fields g.
double max_velocity_shift(const PhaseSpace& f,
                          const mesh::Grid3D<double>& gx,
                          const mesh::Grid3D<double>& gy,
                          const mesh::Grid3D<double>& gz, double dt);

}  // namespace v6d::vlasov
