// High-level directional sweeps over the 6-D phase space (paper Eq. 3-5).
//
// Position sweeps advect along x/y/z with per-velocity-cell speed
// u_i / a^2 (the caller folds the 1/a^2 time integral into drift_factor);
// spatial ghost blocks must be filled (halo exchange) beforehand.
// Velocity sweeps advect along ux/uy/uz with the spatially varying
// acceleration -grad(phi); they are communication-free (§5.1.3).
//
// Every sweep can run with three interchangeable kernels (scalar reference,
// multi-lane SIMD, LAT); kAuto picks SIMD for the five non-contiguous axes
// and LAT for uz, the memory-contiguous axis (paper Table 1).
#pragma once

#include "mesh/grid.hpp"
#include "vlasov/advect_kernels.hpp"
#include "vlasov/phase_space.hpp"

namespace v6d::vlasov {

enum class SweepKernel { kScalar, kSimd, kLat, kAuto };

/// Advect along spatial axis (0=x, 1=y, 2=z).  xi per line is
/// u_axis(velocity index) * drift_factor / dx_axis; requires |xi| <= 1
/// (enforce via timestep control) and filled spatial ghosts.
void advect_position_axis(PhaseSpace& f, int axis, double drift_factor,
                          SweepKernel kernel);

/// Advect along velocity axis (0=ux, 1=uy, 2=uz) with acceleration field
/// `accel` (= -dphi/dx_axis on the spatial grid) over time dt.
void advect_velocity_axis(PhaseSpace& f, int axis,
                          const mesh::Grid3D<double>& accel, double dt,
                          SweepKernel kernel);

/// Largest |xi| any position sweep would see for the given drift factor
/// (used for CFL-limited timestep selection).
double max_position_shift(const PhaseSpace& f, double drift_factor);

/// Largest |xi| a velocity sweep would see for acceleration fields g.
double max_velocity_shift(const PhaseSpace& f,
                          const mesh::Grid3D<double>& gx,
                          const mesh::Grid3D<double>& gy,
                          const mesh::Grid3D<double>& gz, double dt);

}  // namespace v6d::vlasov
