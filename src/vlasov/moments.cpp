#include "vlasov/moments.hpp"

#include <cmath>

namespace v6d::vlasov {

void compute_density(const PhaseSpace& f, mesh::Grid3D<double>& rho) {
  const auto& d = f.dims();
  const double du3 = f.geom().du3();
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* b = f.block(ix, iy, iz);
        double acc = 0.0;
        const std::size_t n = f.block_size();
        for (std::size_t v = 0; v < n; ++v) acc += b[v];
        rho.at(ix, iy, iz) = acc * du3;
      }
}

double MomentFields::sigma(int i, int j, int k) const {
  const double tr = sigma_xx.at(i, j, k) + sigma_yy.at(i, j, k) +
                    sigma_zz.at(i, j, k);
  return std::sqrt(std::max(0.0, tr / 3.0));
}

double MomentFields::speed(int i, int j, int k) const {
  const double x = mean_ux.at(i, j, k), y = mean_uy.at(i, j, k),
               z = mean_uz.at(i, j, k);
  return std::sqrt(x * x + y * y + z * z);
}

void compute_moments(const PhaseSpace& f, MomentFields& m) {
  const auto& d = f.dims();
  const auto& g = f.geom();
  const double du3 = g.du3();
#ifdef _OPENMP
#pragma omp parallel for collapse(2) schedule(static)
#endif
  for (int ix = 0; ix < d.nx; ++ix)
    for (int iy = 0; iy < d.ny; ++iy)
      for (int iz = 0; iz < d.nz; ++iz) {
        const float* b = f.block(ix, iy, iz);
        double s0 = 0.0;
        double sx = 0.0, sy = 0.0, sz = 0.0;
        double sxx = 0.0, syy = 0.0, szz = 0.0;
        double sxy = 0.0, sxz = 0.0, syz = 0.0;
        std::size_t v = 0;
        for (int a = 0; a < d.nux; ++a) {
          const double ux = g.ux(a);
          for (int bb = 0; bb < d.nuy; ++bb) {
            const double uy = g.uy(bb);
            for (int c = 0; c < d.nuz; ++c, ++v) {
              const double w = b[v];
              const double uz = g.uz(c);
              s0 += w;
              sx += w * ux;
              sy += w * uy;
              sz += w * uz;
              sxx += w * ux * ux;
              syy += w * uy * uy;
              szz += w * uz * uz;
              sxy += w * ux * uy;
              sxz += w * ux * uz;
              syz += w * uy * uz;
            }
          }
        }
        const double rho = s0 * du3;
        m.density.at(ix, iy, iz) = rho;
        if (s0 > 0.0) {
          const double mx = sx / s0, my = sy / s0, mz = sz / s0;
          m.mean_ux.at(ix, iy, iz) = mx;
          m.mean_uy.at(ix, iy, iz) = my;
          m.mean_uz.at(ix, iy, iz) = mz;
          m.sigma_xx.at(ix, iy, iz) = sxx / s0 - mx * mx;
          m.sigma_yy.at(ix, iy, iz) = syy / s0 - my * my;
          m.sigma_zz.at(ix, iy, iz) = szz / s0 - mz * mz;
          m.sigma_xy.at(ix, iy, iz) = sxy / s0 - mx * my;
          m.sigma_xz.at(ix, iy, iz) = sxz / s0 - mx * mz;
          m.sigma_yz.at(ix, iy, iz) = syz / s0 - my * mz;
        } else {
          m.mean_ux.at(ix, iy, iz) = 0.0;
          m.mean_uy.at(ix, iy, iz) = 0.0;
          m.mean_uz.at(ix, iy, iz) = 0.0;
          m.sigma_xx.at(ix, iy, iz) = 0.0;
          m.sigma_yy.at(ix, iy, iz) = 0.0;
          m.sigma_zz.at(ix, iy, iz) = 0.0;
          m.sigma_xy.at(ix, iy, iz) = 0.0;
          m.sigma_xz.at(ix, iy, iz) = 0.0;
          m.sigma_yz.at(ix, iy, iz) = 0.0;
        }
      }
}

}  // namespace v6d::vlasov
