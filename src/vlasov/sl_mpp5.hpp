// SL-MPP5: the paper's core numerical scheme (§5.2; Tanaka et al. 2017).
//
// One-dimensional constant-coefficient advection  df/dt + v df/dx = 0  on a
// uniform grid of cell averages is advanced in a single stage:
//
//   f_i^{n+1} = f_i^n - (F_{i+1/2} - F_{i-1/2}),
//   F_{i+1/2} = (1/dx) * Integral of the reconstruction over
//               [x_{i+1/2} - v dt, x_{i+1/2}]              (a mass fraction).
//
// The reconstruction is the degree-5 interpolant of the primitive function
// through six interfaces, which makes the flux a closed-form quintic in the
// shift xi = v dt / dx and the scheme spatially 5th-order accurate.  Because
// the flux integrates the departure interval *exactly in time*, no Runge-
// Kutta sub-stages are needed: this is the paper's "spatially high-order
// scheme with a single-stage time integration", and it is stable for any
// |xi| (the integer part of the shift is applied as an exact index shift;
// only the fractional part goes through the flux).
//
// Monotonicity: the time-averaged interface value g = F/theta is limited
// with the Suresh-Huynh MP5 bounds (accurate at smooth extrema, clips
// spurious oscillations).  Positivity: the fractional flux is clamped to
// [0, f_donor], which bounds the single outgoing flux of each donor cell and
// hence keeps cell averages non-negative.  Both limiters modify only the
// *flux*, so conservation is structural.
//
// Sign convention: we always decompose xi = s + theta with s = floor(xi) and
// theta in [0,1).  After the exact shift by s, the residual displacement is
// rightward, so a single (positive-velocity) flux code path serves both flow
// directions.
#pragma once

#include <array>
#include <cstddef>

#include "common/aligned.hpp"

namespace v6d::vlasov {

/// Ghost cells needed on each side for the fractional flux + MP limiter.
inline constexpr int kStencilGhost = 3;

/// Estimated floating-point operations per updated cell for the limited
/// kernel; used by the Table-1 bench to convert cell rates into Gflop/s
/// (the paper reports Gflops for the same sweep).
inline constexpr double kFlopsPerCellMpp = 45.0;

enum class Limiter {
  kNone,  // raw 5th-order semi-Lagrangian flux (linear scheme)
  kMp,    // + Suresh-Huynh monotonicity-preserving bounds
  kMpp,   // + positivity clamp (the paper's production scheme)
};

/// Closed-form 5th-order semi-Lagrangian flux weights for fractional shift
/// theta in [0,1]:  F_{i+1/2} = sum_k w[k] f_{i-2+k}  (cells i-2 .. i+2).
struct FluxWeights {
  std::array<double, 5> w;

  static FluxWeights compute(double theta);
};

/// Ghost width required by advect_line_* for shift xi.
int required_ghost(double xi);

/// Scalar reference kernel.
///
/// `in` holds n + 2*ghost values, with in[ghost + i] = cell i; `out` receives
/// n updated cell averages.  Requires ghost >= required_ghost(xi).
void advect_line_scalar(const float* in, float* out, int n, int ghost,
                        double xi, Limiter limiter);

/// Convenience periodic wrapper (serial grids and tests): updates f in
/// place over a periodic line of n cells.
void advect_line_periodic(float* f, int n, double xi, Limiter limiter);

/// Eulerian baseline for the ablation bench (§5.2 cost comparison): MP5
/// reconstruction + 3-stage SSP-RK3, periodic line, requires |xi| <= 1.
/// Performs three flux computations per step versus SL-MPP5's one.
void advect_line_periodic_rk3_mp5(float* f, int n, double xi);

/// Point-value MP5 reconstruction at interface i+1/2 from cells i-2..i+2
/// (positive-velocity orientation).  Exposed for tests.
float mp5_interface_value(float fm2, float fm1, float f0, float fp1,
                          float fp2);

/// Apply the Suresh-Huynh MP bounds to a candidate interface value `g`
/// given the five-cell stencil; returns the limited value.  Exposed for
/// tests and shared by the scalar and vector kernels.
///
/// `alpha` is the curvature-relaxation parameter; monotonicity is
/// guaranteed when the effective CFL (the fractional shift theta in the
/// SL setting) satisfies theta * (1 + alpha) <= 1, so the SL kernels pass
/// alpha = min(4, 1/theta - 1) (see mp_alpha_for).
float mp_limit(float g, float fm2, float fm1, float f0, float fp1, float fp2,
               float alpha = 4.0f);

/// Adaptive Suresh-Huynh alpha keeping the scheme monotone at shift theta.
inline float mp_alpha_for(double theta) {
  if (theta <= 0.2) return 4.0f;
  return static_cast<float>(1.0 / theta - 1.0);
}

}  // namespace v6d::vlasov
