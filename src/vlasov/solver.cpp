#include "vlasov/solver.hpp"

namespace v6d::vlasov {

VlasovSolver::VlasovSolver(PhaseSpace f, double box,
                           const VlasovSolverOptions& options)
    : f_(std::move(f)),
      box_(box),
      options_(options),
      poisson_(f_.dims().nx, f_.dims().ny, f_.dims().nz,
               f_.dims().nx * f_.geom().dx, f_.dims().ny * f_.geom().dy,
               f_.dims().nz * f_.geom().dz),
      rho_(f_.dims().nx, f_.dims().ny, f_.dims().nz),
      phi_(f_.dims().nx, f_.dims().ny, f_.dims().nz, 2),
      gx_(f_.dims().nx, f_.dims().ny, f_.dims().nz),
      gy_(f_.dims().nx, f_.dims().ny, f_.dims().nz),
      gz_(f_.dims().nx, f_.dims().ny, f_.dims().nz) {
  if (options_.self_gravity) refresh_gravity();
}

void VlasovSolver::set_external_accel(const mesh::Grid3D<double>* gx,
                                      const mesh::Grid3D<double>* gy,
                                      const mesh::Grid3D<double>* gz) {
  ext_gx_ = gx;
  ext_gy_ = gy;
  ext_gz_ = gz;
  options_.self_gravity = false;
}

void VlasovSolver::refresh_gravity() {
  ScopedTimer timer(timers_, "poisson");
  compute_density(f_, rho_);
  gravity::PoissonOptions popt;
  popt.prefactor = options_.four_pi_g;
  popt.green = gravity::GreenFunction::kExactK2;
  poisson_.solve_forces(rho_, gx_, gy_, gz_, popt);
  poisson_.solve(rho_, phi_, popt);
}

double VlasovSolver::max_dt() const {
  const double shift = max_position_shift(f_, 1.0);  // |xi| per unit dt
  return shift > 0.0 ? options_.cfl / shift : 1e30;
}

double VlasovSolver::step(double dt) {
  const auto& gx = ext_gx_ ? *ext_gx_ : gx_;
  const auto& gy = ext_gy_ ? *ext_gy_ : gy_;
  const auto& gz = ext_gz_ ? *ext_gz_ : gz_;

  {
    ScopedTimer timer(timers_, "vlasov");
    kick_half(f_, gx, gy, gz, 0.5 * dt, options_.kernel);
    drift_full(f_, dt, options_.kernel, periodic_halo_filler());
  }
  if (options_.self_gravity) refresh_gravity();
  {
    ScopedTimer timer(timers_, "vlasov");
    kick_half(f_, gx, gy, gz, 0.5 * dt, options_.kernel);
  }
  return dt;
}

}  // namespace v6d::vlasov
