#include "driver/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

#include "common/trace.hpp"
#include "driver/checkpoint.hpp"
#include "driver/distributed.hpp"
#include "driver/scenario.hpp"
#include "driver/telemetry.hpp"
#include "io/perf_report.hpp"
#include "vlasov/sweeps.hpp"

namespace v6d::driver {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kFinished:
      return "finished";
    case StopReason::kMaxSteps:
      return "max-steps";
    case StopReason::kWallBudget:
      return "wall-budget";
  }
  return "unknown";
}

Driver::Driver(const SimulationConfig& cfg) : Driver(cfg, /*with_ics=*/true) {}

Driver::Driver(const SimulationConfig& cfg, bool with_ics)
    : cfg_(cfg), rng_(cfg.seed), a_(cfg.a_init) {
  if (cfg_.transport == "tcp") {
    // This process is one rank of a multi-process world: every process
    // builds the same global problem (same seed -> same ICs) and the
    // distributed path shards it by cfg_.rank.
    if (cfg_.world <= 0)
      throw std::invalid_argument(
          "transport=tcp requires world=N (total processes)");
    if (cfg_.rank < 0 || cfg_.rank >= cfg_.world)
      throw std::invalid_argument("transport=tcp requires 0 <= rank < world");
    if (cfg_.transport_hosts.empty())
      throw std::invalid_argument(
          "transport=tcp requires transport_hosts= (a host:port,... list or "
          "a shared rendezvous directory; env V6D_TRANSPORT_HOSTS works too)");
    cfg_.ranks = cfg_.world;
  } else if (cfg_.transport != "inproc") {
    throw std::invalid_argument("unknown transport '" + cfg_.transport +
                                "' (expected inproc or tcp)");
  }
  const Scenario* scenario = find_scenario(cfg_.scenario);
  if (!scenario)
    throw std::invalid_argument("unknown scenario: " + cfg_.scenario);
  solver_ = scenario->build(cfg_, with_ics);
}

Driver Driver::resume(const std::string& dir, const Options& overrides) {
  Checkpoint meta;
  std::string detail;
  auto status = read_checkpoint_meta(dir, meta, &detail);
  if (status != io::SnapshotStatus::kOk)
    throw std::runtime_error("cannot read checkpoint meta (" +
                             std::string(io::to_string(status)) +
                             "): " + detail);
  // A meta that references missing or short payloads is torn — resuming
  // from it would rebuild garbage state, so refuse before reading any.
  status = validate_checkpoint_payloads(dir, meta, &detail);
  if (status != io::SnapshotStatus::kOk)
    throw std::runtime_error("refusing to resume (" +
                             std::string(io::to_string(status)) +
                             "): " + detail);
  // Apply only keys the caller set explicitly.  A plain apply() would let
  // stray V6D_* environment variables override the checkpointed config
  // for every key the caller left alone — silently breaking bit-identical
  // continuation.  The checkpoint echo outranks the environment.
  auto kv = meta.config.to_kv();
  for (const auto& key : overrides.keys())
    kv[key] = overrides.get(key, "");
  meta.config = SimulationConfig::from_kv(kv);

  Driver driver(meta.config, /*with_ics=*/false);

  // The scenario was rebuilt with an empty phase space; a neutrino run
  // whose meta carries neither a global payload nor shards would silently
  // continue from all-zero f, so refuse it here.
  if (driver.solver_->neutrinos().dims().total_interior() > 0 &&
      !meta.has_phase_space && meta.shard_files.empty())
    throw std::runtime_error(
        "checkpoint has no phase-space payload (global or shards) but the "
        "configured scenario has neutrinos — corrupt or truncated meta");

  // The scenario rebuild fixes the expected shapes; the payload must
  // agree or the config was overridden incompatibly.
  const auto expected_dims = driver.solver_->neutrinos().dims();
  hybrid::HybridSolver::StepForces forces;
  status = read_checkpoint_payload(dir, meta, &driver.solver_->neutrinos(),
                                   &driver.solver_->cdm(), &forces, &detail);
  if (status != io::SnapshotStatus::kOk)
    throw std::runtime_error("cannot read checkpoint payload (" +
                             std::string(io::to_string(status)) +
                             "): " + detail);
  if (!meta.shard_files.empty()) {
    // Distributed checkpoint: assemble the global phase space from the
    // per-rank shards; the next run() re-shards it (bit-identically when
    // ranks/decomp are unchanged).
    status = assemble_phase_space_shards(dir, meta,
                                         driver.solver_->neutrinos(), &detail);
    if (status != io::SnapshotStatus::kOk)
      throw std::runtime_error("cannot read checkpoint shards (" +
                               std::string(io::to_string(status)) +
                               "): " + detail);
  }
  if (meta.has_forces && !driver.solver_->import_step_forces(forces))
    throw std::runtime_error(
        "checkpoint force cache does not match the configured scenario "
        "shape (physics keys must not change across a resume)");
  const auto& dims = driver.solver_->neutrinos().dims();
  if (dims.nx != expected_dims.nx || dims.ny != expected_dims.ny ||
      dims.nz != expected_dims.nz || dims.nux != expected_dims.nux ||
      dims.nuy != expected_dims.nuy || dims.nuz != expected_dims.nuz ||
      dims.ghost != expected_dims.ghost)
    throw std::runtime_error(
        "checkpoint phase space does not match the configured scenario "
        "shape (physics keys must not change across a resume)");

  driver.a_ = meta.a;
  driver.steps_ = meta.step;
  driver.rng_.set_state(meta.rng);
  return driver;
}

void Driver::write_checkpoint(const std::string& dir) const {
  Checkpoint meta;
  meta.config = cfg_;
  meta.a = a_;
  meta.step = steps_;
  meta.rng = rng_.state();
  meta.has_phase_space = solver_->neutrinos().dims().total_interior() > 0;
  meta.has_particles = solver_->cdm().size() > 0;
  const auto forces = solver_->export_step_forces();
  meta.has_forces = forces.fresh;
  std::string detail;
  const auto status = driver::write_checkpoint(
      dir, meta, meta.has_phase_space ? &solver_->neutrinos() : nullptr,
      meta.has_particles ? &solver_->cdm() : nullptr,
      meta.has_forces ? &forces : nullptr, &detail);
  if (status != io::SnapshotStatus::kOk)
    throw std::runtime_error("cannot write checkpoint (" +
                             std::string(io::to_string(status)) +
                             "): " + detail);
}

RunResult Driver::run() {
  if (cfg_.ranks > 1 || cfg_.transport == "tcp") return run_distributed();
  if (!cfg_.trace.empty()) {
    trace::reset();
    trace::enable();
    trace::set_rank(0);
  }
  Stopwatch wall;
  RunResult result;
  const auto stop_with_checkpoint = [&](StopReason reason) {
    result.reason = reason;
    if (!cfg_.checkpoint_dir.empty()) {
      ScopedTimer t(timers_, "checkpoint-io");
      write_checkpoint(cfg_.checkpoint_dir);
      result.checkpoint = cfg_.checkpoint_dir;
    }
  };

  TelemetryStream telemetry;
  double mass0 = 0.0;
  if (!cfg_.telemetry.empty()) {
    std::string error;
    if (!telemetry.open(cfg_.telemetry, &error))
      throw std::runtime_error(error);
    mass0 = solver_->total_mass();
  }
  // Per-step phase increments for the heartbeat = deltas of the merged
  // (driver + solver) bucket totals around the step.
  const auto phase_snapshot = [&] {
    TimerRegistry merged;
    merged.merge(timers_);
    merged.merge(solver_->timers(), "solver:");
    return timer_totals(merged);
  };

  while (a_ < cfg_.a_final - 1e-12) {
    if (cfg_.max_steps > 0 && steps_ >= cfg_.max_steps) {
      stop_with_checkpoint(StopReason::kMaxSteps);
      break;
    }
    if (cfg_.wall_budget_s > 0.0 && wall.seconds() >= cfg_.wall_budget_s) {
      stop_with_checkpoint(StopReason::kWallBudget);
      break;
    }

    double a1;
    {
      ScopedTimer t(timers_, "step-control");
      a1 = std::min(solver_->suggest_next_a(a_, cfg_.da_max), cfg_.a_final);
    }
    std::map<std::string, double> phases_before;
    if (telemetry.is_open()) phases_before = phase_snapshot();
    double step_seconds;
    {
      // Per-step samples feed the paper's median-of-steps metric in the
      // perf report alongside the accumulated total.
      trace::Span step_span("step");
      Stopwatch step_watch;
      solver_->step(a_, a1);
      step_seconds = step_watch.seconds();
      timers_.add_sample("step", step_seconds);
    }
    if (telemetry.is_open()) {
      Heartbeat hb;
      hb.step = steps_ + 1;
      hb.a = a1;
      hb.da = a1 - a_;
      if (solver_->neutrinos().dims().total_interior() > 0)
        hb.cfl_shift = vlasov::max_position_shift(
            solver_->neutrinos(), solver_->background().drift_factor(a_, a1));
      hb.mass = solver_->total_mass();
      hb.mass_drift = mass0 != 0.0 ? (hb.mass - mass0) / mass0 : 0.0;
      hb.step_seconds = step_seconds;
      hb.phase_seconds = timer_delta(phases_before, phase_snapshot());
      hb.comm_bytes = 0;  // serial: no p2p traffic
      hb.rss_mb = current_rss_mb();
      telemetry.write(hb);
      trace::counter("mass-drift", hb.mass_drift);
    }
    a_ = a1;
    ++steps_;
    ++result.steps;

    if (cfg_.progress_every > 0 && steps_ % cfg_.progress_every == 0)
      std::printf("  [%s] step %lld  a = %.4f\n", cfg_.scenario.c_str(),
                  static_cast<long long>(steps_), a_);

    if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_dir.empty() &&
        steps_ % cfg_.checkpoint_every == 0) {
      ScopedTimer t(timers_, "checkpoint-io");
      write_checkpoint(cfg_.checkpoint_dir);
      result.checkpoint = cfg_.checkpoint_dir;
    }
  }

  result.a = a_;
  result.total_steps = steps_;
  if (!cfg_.perf_report.empty()) write_perf_report(cfg_.perf_report);
  if (!cfg_.trace.empty()) write_trace_file(cfg_.trace);
  return result;
}

void Driver::write_perf_report(const std::string& path) const {
  auto report = io::make_perf_report("driver:" + cfg_.scenario);
  report.context["scenario"] = cfg_.scenario;
  report.context["a"] = std::to_string(a_);
  report.context["steps"] = std::to_string(static_cast<long long>(steps_));
  report.context["ranks"] = std::to_string(cfg_.ranks);
  report.context["transport"] = cfg_.transport;

  // Driver buckets (step / step-control / checkpoint-io) and the solver's
  // force/sweep buckets (vlasov / pm / tree / vlasov-moments) share one
  // report; phase-space cell counts turn the step total into a rate.
  TimerRegistry merged;
  merged.merge(timers_);
  merged.merge(solver_->timers(), "solver:");
  report.add_timers(merged);
  const double step_median = timers_.median_sample("step");
  if (step_median > 0.0)
    report.add_metric("step_median_seconds", step_median, "s");
  // Rate over the steps *this* process actually timed (a resumed run's
  // steps_ includes pre-resume steps whose time it never saw).
  const double cells =
      static_cast<double>(solver_->neutrinos().dims().total_interior());
  const double step_total = timers_.total("step");
  const auto timed_steps =
      static_cast<double>(timers_.samples("step").size());
  if (cells > 0.0 && step_total > 0.0 && timed_steps > 0.0)
    report.add_metric("cell_updates_per_s", cells * timed_steps / step_total,
                      "1/s");

  std::string error;
  if (!report.write(path, &error))
    throw std::runtime_error("cannot write perf report: " + error);
}

}  // namespace v6d::driver
