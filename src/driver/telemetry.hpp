// Run-health telemetry: a JSONL heartbeat written by the driver.
//
// One JSON object per completed step (`telemetry=` config key), flushed
// immediately so an external watcher — or a post-mortem on a crashed run —
// always sees the latest state: scale factor, dt, CFL shift, mass drift,
// per-phase seconds for the step, communication bytes, and resident-set
// size.  tools/trace_summary.py consumes the stream alongside the Chrome
// trace.  Mass/energy drift was the paper's own per-step health metric
// (§5.3); this makes it watchable live instead of discovered at run end.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "common/timer.hpp"

namespace v6d::driver {

/// One heartbeat row.  `phase_seconds` holds this step's *increment* per
/// timer bucket (the driver snapshots totals around the step and
/// subtracts).
struct Heartbeat {
  std::int64_t step = 0;
  double a = 0.0;
  double da = 0.0;
  double cfl_shift = 0.0;    // max |xi| of the step's position sweeps
  double mass = 0.0;
  double mass_drift = 0.0;   // (mass - mass0) / mass0
  double step_seconds = 0.0;
  std::map<std::string, double> phase_seconds;
  std::uint64_t comm_bytes = 0;  // p2p bytes sent, all ranks, cumulative
  double rss_mb = 0.0;
};

/// Line-oriented JSONL writer (truncates on open, fflush per row).
class TelemetryStream {
 public:
  TelemetryStream() = default;
  ~TelemetryStream() { close(); }
  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  bool open(const std::string& path, std::string* error = nullptr);
  bool is_open() const { return out_ != nullptr; }
  void write(const Heartbeat& hb);
  void close();

 private:
  std::FILE* out_ = nullptr;
};

/// Resident-set size of this process in MiB (0 where unsupported).
double current_rss_mb();

/// Snapshot every bucket total of `timers` (helper for per-step deltas).
std::map<std::string, double> timer_totals(const TimerRegistry& timers);

/// after[bucket] - before[bucket] for every bucket in `after`, dropping
/// zero increments — the per-step phase cost.
std::map<std::string, double> timer_delta(
    const std::map<std::string, double>& before,
    const std::map<std::string, double>& after);

}  // namespace v6d::driver
